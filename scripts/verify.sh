#!/bin/sh
# CI gate: vet + the cdpcvet invariant lint, docs, build, the full
# test suite, the race detector over the whole module, audited
# experiment runs, and the cdpcd end-to-end smoke. Everything must
# pass before a change lands.
set -eux

go vet ./...

# cdpcvet: the repo's own static analyzers (determinism, statsconserve,
# guardedby, errcode, pow2geom, and the interprocedural quartet:
# memokey, cancelpoll, topoaccess, scaleconserve). Any diagnostic is a
# hard failure — the tool exits 1 when it reports anything — and the
# analysis itself (module load + all nine analyzers, excluding the go
# toolchain's compile of cdpcvet) must finish inside a 10s wall budget
# so the lint gate stays cheap enough to run on every change.
go run ./cmd/cdpcvet -budget 10s ./...

# Every internal package (and the root package) must carry a doc.go
# with a package comment — the documentation contract of the repo.
for d in internal/*/; do
    pkg=$(basename "$d")
    test -f "${d}doc.go" || { echo "missing ${d}doc.go"; exit 1; }
    grep -q "^// Package ${pkg}" "${d}doc.go" || { echo "${d}doc.go lacks a '// Package ${pkg}' comment"; exit 1; }
done
test -f doc.go || { echo "missing root doc.go"; exit 1; }
grep -q "^// Package" doc.go || { echo "root doc.go lacks a package comment"; exit 1; }

go build ./...
go test ./...
go test -race ./...

# Program-text parser fuzz seeds: replay the checked-in corpus (plus the
# F.Add seeds) as deterministic regression tests.
go test -run=FuzzParse ./internal/ir

# Binary-trace decoder fuzz seeds: same replay discipline for the
# CDPCTRC1 decoder (malformed/truncated inputs must error, never panic).
go test -run=FuzzDecodeTrace ./internal/trace

# Simulator-throughput regression guard: re-time one tomcatv run through
# the full simulator and compare against the baseline recorded in
# BENCH_harness.json (make bench regenerates it). More than 25% slower
# is a hard failure.
base_ns=$(sed -n 's/.*"sim_throughput_ns_per_op": \([0-9][0-9]*\).*/\1/p' BENCH_harness.json)
test -n "$base_ns" || { echo "BENCH_harness.json lacks sim_throughput_ns_per_op; run make bench"; exit 1; }
now_ns=$(go test -run='^$' -bench='^BenchmarkSimulatorThroughput$' -benchtime=3x . \
    | awk '/^BenchmarkSimulatorThroughput/ { print int($3); exit }')
test -n "$now_ns" || { echo "could not parse BenchmarkSimulatorThroughput output"; exit 1; }
awk -v now="$now_ns" -v base="$base_ns" 'BEGIN {
    ratio = now / base
    printf "sim throughput: %d ns/op vs baseline %d ns/op (%.2fx)\n", now, base, ratio
    exit (ratio > 1.25) ? 1 : 0
}' || { echo "simulator throughput regressed more than 25% against BENCH_harness.json"; exit 1; }

# Same guard for the phase-sampled mode: its whole point is throughput,
# so a silent slowdown is a regression even if results stay correct.
base_samp_ns=$(sed -n 's/.*"sampled_throughput_ns_per_op": \([0-9][0-9]*\).*/\1/p' BENCH_harness.json)
test -n "$base_samp_ns" || { echo "BENCH_harness.json lacks sampled_throughput_ns_per_op; run make bench"; exit 1; }
now_samp_ns=$(go test -run='^$' -bench='^BenchmarkSimulatorThroughputSampled$' -benchtime=3x . \
    | awk '/^BenchmarkSimulatorThroughputSampled/ { print int($3); exit }')
test -n "$now_samp_ns" || { echo "could not parse BenchmarkSimulatorThroughputSampled output"; exit 1; }
awk -v now="$now_samp_ns" -v base="$base_samp_ns" 'BEGIN {
    ratio = now / base
    printf "sampled throughput: %d ns/op vs baseline %d ns/op (%.2fx)\n", now, base, ratio
    exit (ratio > 1.25) ? 1 : 0
}' || { echo "sampled simulator throughput regressed more than 25% against BENCH_harness.json"; exit 1; }

# Trace-decode regression guard: the input path of trace-driven
# simulation (DESIGN.md §15.2). BenchmarkTraceDecode reports a ns/ref
# metric; compare it against the recorded per-reference baseline.
base_ref_ns=$(sed -n 's/.*"trace_decode_ns_per_ref": \([0-9.][0-9.]*\).*/\1/p' BENCH_harness.json)
test -n "$base_ref_ns" || { echo "BENCH_harness.json lacks trace_decode_ns_per_ref; run make bench"; exit 1; }
now_ref_ns=$(go test -run='^$' -bench='^BenchmarkTraceDecode$' -benchtime=3x . \
    | awk '/^BenchmarkTraceDecode/ { for (i = 2; i <= NF; i++) if ($i == "ns/ref") { print $(i-1); exit } }')
test -n "$now_ref_ns" || { echo "could not parse BenchmarkTraceDecode ns/ref output"; exit 1; }
awk -v now="$now_ref_ns" -v base="$base_ref_ns" 'BEGIN {
    ratio = now / base
    printf "trace decode: %.2f ns/ref vs baseline %.2f ns/ref (%.2fx)\n", now, base, ratio
    exit (ratio > 1.25) ? 1 : 0
}' || { echo "trace decoding regressed more than 25% against BENCH_harness.json"; exit 1; }

# Sampled-fidelity smoke: one workload sampled vs full through cdpcsim;
# the MCPI deviation must stay inside the 2% error budget (the Go test
# TestSampledFidelity asserts it for all ten workloads; this catches a
# broken sampled path without rerunning the suite).
full_mcpi=$(go run ./cmd/cdpcsim -workload hydro2d -cpus 2 | awk '/MCPI/ { print $2; exit }')
samp_mcpi=$(go run ./cmd/cdpcsim -workload hydro2d -cpus 2 -sampled -audit > /tmp/cdpc-sampled-smoke.txt \
    && awk '/MCPI/ { print $2; exit }' /tmp/cdpc-sampled-smoke.txt)
grep -q '^fidelity   sampled' /tmp/cdpc-sampled-smoke.txt || { echo "cdpcsim -sampled did not report sampled fidelity"; exit 1; }
rm -f /tmp/cdpc-sampled-smoke.txt
awk -v full="$full_mcpi" -v samp="$samp_mcpi" 'BEGIN {
    err = (samp > full) ? (samp - full) / full : (full - samp) / full
    printf "sampled MCPI %.4f vs full %.4f (%.2f%% error)\n", samp, full, 100 * err
    exit (err > 0.02) ? 1 : 0
}' || { echo "sampled MCPI deviates more than 2% from full fidelity"; exit 1; }

# Audited smoke runs: conservation invariants (cycles, miss classes,
# bus occupancy) checked on every simulation; violations exit non-zero.
# fig6 covers the paper's headline sweep, ext-pressure the raw-simulator
# path that bypasses the scheduler.
go run ./cmd/experiments -id fig6 -quick -audit > /dev/null
go run ./cmd/experiments -id ext-pressure -quick -audit > /dev/null

# cdpcd end-to-end: start the daemon on an ephemeral port, run sync and
# async jobs, saturate the bounded queue with 64 concurrent mixed
# repeated/unique submissions (429s observed, zero accepted jobs
# dropped, repeats served from the memo cache), check /metrics moved,
# then SIGTERM and require a clean drain within the deadline.
go build -o /tmp/cdpcd-verify ./cmd/cdpcd
go run ./scripts/smoke -bin /tmp/cdpcd-verify
rm -f /tmp/cdpcd-verify

# Isolation smoke: a 2-way color-partitioned mix must report exactly
# zero cross-domain evictions (audit invariant 12 also checks this, so
# the run is audited too — the grep catches a silent wiring break
# between the simulator counter and the printed line).
go run ./cmd/cdpcsim -workload tomcatv -scale 32 -procs 2 -isolate -audit > /tmp/cdpc-isolate-smoke.txt
grep -q '^isolation: color-partitioned domains; cross-domain evictions 0 ' /tmp/cdpc-isolate-smoke.txt \
    || { echo "isolated 2-way run did not report zero cross-domain evictions"; cat /tmp/cdpc-isolate-smoke.txt; exit 1; }
rm -f /tmp/cdpc-isolate-smoke.txt

# Topology smoke: a 2-way co-schedule on the hash-sliced LLC must pass
# the audit (invariant 13 holds the per-slice miss split to the
# machine-wide total on the multiprocess path) and print the split.
go run ./cmd/cdpcsim -workload tomcatv -scale 32 -cpus 8 -procs 2 -topology sliced-llc4 -audit > /tmp/cdpc-topology-smoke.txt
grep -q 'sliced-llc4' /tmp/cdpc-topology-smoke.txt || { echo "sliced run does not carry the topology name"; cat /tmp/cdpc-topology-smoke.txt; exit 1; }
grep -q 'slice split' /tmp/cdpc-topology-smoke.txt || { echo "sliced run did not print the per-slice miss split"; cat /tmp/cdpc-topology-smoke.txt; exit 1; }
rm -f /tmp/cdpc-topology-smoke.txt

# Trace smoke: convert the bundled irregular text trace to the binary
# format and replay it under first-touch and the online-summarizer cdpc
# variant, audited. The conservation invariants must hold on both runs,
# and the summarizer's hints must eliminate at least 90% of
# first-touch's conflict misses (the tentpole acceptance criterion;
# TestTraceOnlineSummarizerBeatsFirstTouch asserts the same in-process).
go run ./cmd/traceconv -o /tmp/cdpc-trace-smoke.trc examples/traces/irregular.txt
go run ./cmd/cdpcsim -trace-file /tmp/cdpc-trace-smoke.trc -variant first-touch -audit > /tmp/cdpc-trace-ft.txt
go run ./cmd/cdpcsim -trace-file /tmp/cdpc-trace-smoke.trc -variant cdpc -audit > /tmp/cdpc-trace-cdpc.txt
grep -q 'audit: all conservation invariants hold' /tmp/cdpc-trace-ft.txt \
    || { echo "first-touch trace replay failed the audit"; cat /tmp/cdpc-trace-ft.txt; exit 1; }
grep -q 'audit: all conservation invariants hold' /tmp/cdpc-trace-cdpc.txt \
    || { echo "cdpc trace replay failed the audit"; cat /tmp/cdpc-trace-cdpc.txt; exit 1; }
grep -q 'CDPC hints' /tmp/cdpc-trace-cdpc.txt \
    || { echo "cdpc trace replay reported no hint activity"; cat /tmp/cdpc-trace-cdpc.txt; exit 1; }
ft_conf=$(sed -n 's/.*conflict \([0-9][0-9]*\),.*/\1/p' /tmp/cdpc-trace-ft.txt)
cd_conf=$(sed -n 's/.*conflict \([0-9][0-9]*\),.*/\1/p' /tmp/cdpc-trace-cdpc.txt)
awk -v ft="$ft_conf" -v cd="$cd_conf" 'BEGIN {
    printf "trace conflict misses: first-touch %d, cdpc (online summarizer) %d\n", ft, cd
    exit (ft >= 1000 && cd * 10 <= ft) ? 0 : 1
}' || { echo "online summarizer did not eliminate >=90% of first-touch conflict misses on the bundled trace"; exit 1; }
rm -f /tmp/cdpc-trace-smoke.trc /tmp/cdpc-trace-ft.txt /tmp/cdpc-trace-cdpc.txt
