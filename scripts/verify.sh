#!/bin/sh
# CI gate: vet, build, the full test suite, and the race detector over
# the concurrent experiment scheduler. Everything must pass before a
# change lands.
set -eux

go vet ./...
go build ./...
go test ./...
go test -race ./internal/harness/...

# Audited smoke runs: conservation invariants (cycles, miss classes,
# bus occupancy) checked on every simulation; violations exit non-zero.
# fig6 covers the paper's headline sweep, ext-pressure the raw-simulator
# path that bypasses the scheduler.
go run ./cmd/experiments -id fig6 -quick -audit > /dev/null
go run ./cmd/experiments -id ext-pressure -quick -audit > /dev/null
