// Command smoke is the verify.sh end-to-end exercise for cdpcd. It
// starts a freshly built daemon on an ephemeral port and drives the
// full acceptance scenario from outside the process boundary:
//
//  1. readiness via /readyz,
//  2. one synchronous and one polled asynchronous job,
//  3. 64 concurrent submissions of mixed repeated/unique specs
//     against a deliberately small queue — 429s must be observed
//     (bounded-queue backpressure), every accepted job must reach a
//     terminal state (zero dropped), and repeated specs must be
//     served from the memo cache,
//  4. /metrics counters must have moved accordingly,
//  5. SIGTERM must drain gracefully within the deadline (exit 0).
//
// Usage: go run ./scripts/smoke -bin /path/to/cdpcd
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/trace"
)

var bin = flag.String("bin", "", "path to a built cdpcd binary")

func main() {
	flag.Parse()
	if *bin == "" {
		fatalf("usage: smoke -bin /path/to/cdpcd")
	}
	if err := run(); err != nil {
		fatalf("%v", err)
	}
	fmt.Println("smoke: all checks passed")
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "smoke: "+format+"\n", args...)
	os.Exit(1)
}

func run() error {
	// Small queue and pool so 64 concurrent submissions reliably
	// saturate admission.
	cmd := exec.Command(*bin, "-addr", "127.0.0.1:0", "-workers", "4", "-queue", "8", "-quiet")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return err
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("starting cdpcd: %w", err)
	}
	defer cmd.Process.Kill() //nolint:errcheck // no-op after a clean Wait

	base, err := readBaseURL(stdout)
	if err != nil {
		return err
	}
	go io.Copy(io.Discard, stdout) //nolint:errcheck // drain remaining output
	if err := waitReady(base); err != nil {
		return err
	}
	fmt.Printf("smoke: cdpcd up at %s\n", base)

	if err := checkSync(base); err != nil {
		return err
	}
	if err := checkAsync(base); err != nil {
		return err
	}
	if err := checkBackpressure(base); err != nil {
		return err
	}
	if err := checkTrace(base); err != nil {
		return err
	}
	if err := checkMetrics(base); err != nil {
		return err
	}
	return checkShutdown(cmd)
}

// checkTrace drives the trace-driven path from outside: upload a small
// binary trace, replay it by trace_id, and require unknown ids to be
// rejected with the documented code.
func checkTrace(base string) error {
	enc, err := trace.NewEncoder(2)
	if err != nil {
		return err
	}
	for cpu := 0; cpu < 2; cpu++ {
		addr := uint64(cpu)<<24 | 0x1000
		for i := 0; i < 4096; i++ {
			kind := trace.Read
			if i%5 == 0 {
				kind = trace.Write
			}
			if err := enc.Add(cpu, trace.Ref{Kind: kind, VAddr: addr, Size: 8}); err != nil {
				return err
			}
			addr += 64
			if i%512 == 511 {
				addr -= 16384
			}
		}
	}
	var img bytes.Buffer
	if _, err := enc.File().WriteTo(&img); err != nil {
		return err
	}
	resp, err := http.Post(base+"/v1/traces", "application/octet-stream", &img)
	if err != nil {
		return err
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusCreated {
		return fmt.Errorf("trace upload: %d: %s", resp.StatusCode, data)
	}
	var info struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(data, &info); err != nil || info.ID == "" {
		return fmt.Errorf("trace upload: bad body: %s", data)
	}

	body, _ := json.Marshal(map[string]any{"trace_id": info.ID, "variant": "cdpc"})
	resp, data, err = postJSON(base+"/v1/simulate", body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("trace simulate: %d: %s", resp.StatusCode, data)
	}
	var res struct {
		WallCycles uint64 `json:"wall_cycles"`
		CPUs       int    `json:"cpus"`
	}
	if err := json.Unmarshal(data, &res); err != nil {
		return fmt.Errorf("trace simulate: bad body: %w", err)
	}
	if res.WallCycles == 0 || res.CPUs != 2 {
		return fmt.Errorf("trace simulate: implausible result: %s", data)
	}

	body, _ = json.Marshal(map[string]any{"trace_id": strings.Repeat("0", 64)})
	resp, data, err = postJSON(base+"/v1/simulate", body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(string(data), "unknown_trace") {
		return fmt.Errorf("unknown trace_id: want 400 unknown_trace, got %d: %s", resp.StatusCode, data)
	}
	fmt.Println("smoke: trace upload + replay ok")
	return nil
}

// readBaseURL parses the "cdpcd listening on http://..." line the
// daemon prints on startup.
func readBaseURL(r io.Reader) (string, error) {
	buf := make([]byte, 256)
	var line strings.Builder
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		n, err := r.Read(buf)
		line.Write(buf[:n])
		if i := strings.Index(line.String(), "http://"); i >= 0 {
			s := line.String()[i:]
			if j := strings.IndexAny(s, " \n"); j >= 0 {
				return strings.TrimSpace(s[:j]), nil
			}
		}
		if err != nil {
			return "", fmt.Errorf("cdpcd exited before printing its address: %w", err)
		}
	}
	return "", fmt.Errorf("timed out waiting for listen address (got %q)", line.String())
}

func waitReady(base string) error {
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	return fmt.Errorf("readyz never returned 200")
}

// fastBody is the quick spec every repeated submission uses (~20 ms).
// Fidelity is pinned to full: async jobs otherwise default to sampled,
// which finishes too fast for the saturation phase to ever catch the
// queue at capacity.
func fastBody(scale int) []byte {
	b, _ := json.Marshal(map[string]any{
		"workload": "tomcatv", "cpus": 1, "scale": scale, "fidelity": "full",
	})
	return b
}

func postJSON(url string, body []byte) (*http.Response, []byte, error) {
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	return resp, data, err
}

func checkSync(base string) error {
	resp, data, err := postJSON(base+"/v1/simulate", fastBody(64))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("sync simulate: %d: %s", resp.StatusCode, data)
	}
	var res struct {
		MCPI       float64 `json:"mcpi"`
		WallCycles uint64  `json:"wall_cycles"`
		Cached     bool    `json:"cached"`
	}
	if err := json.Unmarshal(data, &res); err != nil {
		return fmt.Errorf("sync simulate: bad body: %w", err)
	}
	if res.WallCycles == 0 {
		return fmt.Errorf("sync simulate: zero wall_cycles")
	}
	// Submit the same spec again: must be a memo hit.
	resp, data, err = postJSON(base+"/v1/simulate", fastBody(64))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("repeat simulate: %d: %s", resp.StatusCode, data)
	}
	if err := json.Unmarshal(data, &res); err != nil {
		return err
	}
	if !res.Cached {
		return fmt.Errorf("repeat simulate not served from memo cache")
	}
	fmt.Println("smoke: sync simulate ok (repeat was cached)")
	return nil
}

func checkAsync(base string) error {
	resp, data, err := postJSON(base+"/v1/jobs", fastBody(32))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusAccepted {
		return fmt.Errorf("submit: %d: %s", resp.StatusCode, data)
	}
	var st struct {
		ID    string `json:"id"`
		State string `json:"state"`
	}
	if err := json.Unmarshal(data, &st); err != nil {
		return err
	}
	loc := resp.Header.Get("Location")
	if loc == "" {
		return fmt.Errorf("submit: no Location header")
	}
	state, err := poll(base+loc, 30*time.Second)
	if err != nil {
		return err
	}
	if state != "done" {
		return fmt.Errorf("async job %s finished %q, want done", st.ID, state)
	}
	fmt.Printf("smoke: async job %s done\n", st.ID)
	return nil
}

func poll(url string, timeout time.Duration) (string, error) {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		resp, err := http.Get(url)
		if err != nil {
			return "", err
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return "", err
		}
		var st struct {
			State string `json:"state"`
		}
		if err := json.Unmarshal(data, &st); err != nil {
			return "", fmt.Errorf("poll %s: bad body %q", url, data)
		}
		switch st.State {
		case "done", "failed", "canceled":
			return st.State, nil
		}
		time.Sleep(50 * time.Millisecond)
	}
	return "", fmt.Errorf("poll %s: no terminal state within %s", url, timeout)
}

// checkBackpressure fires 64 concurrent submissions — half repeats of
// one fast spec, half unique specs — at a queue of 8. It requires at
// least one 429, retries every 429 until accepted (so all 64 are
// eventually admitted), and then requires every accepted job to reach
// "done": bounded queue, zero dropped accepted jobs.
func checkBackpressure(base string) error {
	const n = 64
	var rejected atomic.Uint64
	ids := make([]string, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Even submissions repeat one spec (memo-cache traffic);
			// odd ones are unique (scale varies ⇒ distinct spec keys).
			body := fastBody(64)
			if i%2 == 1 {
				body = fastBody(64 + i)
			}
			for attempt := 0; ; attempt++ {
				resp, data, err := postJSON(base+"/v1/jobs", body)
				if err != nil {
					errs[i] = err
					return
				}
				switch resp.StatusCode {
				case http.StatusAccepted:
					var st struct {
						ID string `json:"id"`
					}
					if err := json.Unmarshal(data, &st); err != nil {
						errs[i] = err
						return
					}
					ids[i] = st.ID
					return
				case http.StatusTooManyRequests:
					rejected.Add(1)
					if resp.Header.Get("Retry-After") == "" {
						errs[i] = fmt.Errorf("429 without Retry-After")
						return
					}
					if attempt > 400 {
						errs[i] = fmt.Errorf("still 429 after %d attempts", attempt)
						return
					}
					time.Sleep(25 * time.Millisecond)
				default:
					errs[i] = fmt.Errorf("submit %d: unexpected %d: %s", i, resp.StatusCode, data)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	if rejected.Load() == 0 {
		return fmt.Errorf("no 429 observed across %d concurrent submissions on a queue of 8; backpressure untested", n)
	}
	// Zero dropped: every accepted job reaches a terminal state, and
	// that state is done.
	for i, id := range ids {
		state, err := poll(base+"/v1/jobs/"+id, 60*time.Second)
		if err != nil {
			return fmt.Errorf("accepted job %s (submission %d) lost: %w", id, i, err)
		}
		if state != "done" {
			return fmt.Errorf("accepted job %s finished %q, want done", id, state)
		}
	}
	fmt.Printf("smoke: backpressure ok (%d submissions accepted, %d transient 429s, zero dropped)\n",
		n, rejected.Load())
	return nil
}

func checkMetrics(base string) error {
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		return err
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return err
	}
	text := string(data)
	for _, metric := range []string{
		"cdpcd_jobs_accepted_total", "cdpcd_jobs_rejected_total",
		"cdpcd_jobs_completed_total", "cdpcd_scheduler_cache_hits_total",
		"cdpcd_simulation_seconds_count", "cdpcd_http_requests_total",
	} {
		if !strings.Contains(text, metric) {
			return fmt.Errorf("/metrics missing %s", metric)
		}
	}
	for _, check := range []struct{ metric, why string }{
		{"cdpcd_jobs_accepted_total", "jobs were accepted"},
		{"cdpcd_jobs_rejected_total", "429s were returned"},
		{"cdpcd_jobs_completed_total", "jobs completed"},
		{"cdpcd_scheduler_cache_hits_total", "repeated specs hit the memo cache"},
	} {
		v, err := metricValue(text, check.metric)
		if err != nil {
			return err
		}
		if v <= 0 {
			return fmt.Errorf("%s = %v but %s", check.metric, v, check.why)
		}
	}
	fmt.Println("smoke: metrics moved (accepted, rejected, completed, cache hits all > 0)")
	return nil
}

func metricValue(text, name string) (float64, error) {
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, name+" ") {
			var v float64
			if _, err := fmt.Sscanf(line[len(name)+1:], "%g", &v); err != nil {
				return 0, fmt.Errorf("parsing %q: %w", line, err)
			}
			return v, nil
		}
	}
	return 0, fmt.Errorf("/metrics has no sample for %s", name)
}

// checkShutdown sends SIGTERM and requires a clean exit (drained)
// within the daemon's 30s default drain deadline plus slack.
func checkShutdown(cmd *exec.Cmd) error {
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return err
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			return fmt.Errorf("cdpcd exited non-zero after SIGTERM: %w", err)
		}
	case <-time.After(40 * time.Second):
		return fmt.Errorf("cdpcd did not exit within the drain deadline")
	}
	fmt.Println("smoke: graceful shutdown ok (exit 0 within drain deadline)")
	return nil
}
