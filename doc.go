// Package repro is a full reproduction of "Compiler-Directed Page
// Coloring for Multiprocessors" (Bugnion, Anderson, Mowry, Rosenblum,
// Lam — ASPLOS 1996) as a Go library.
//
// The paper's technique, CDPC, has the parallelizing compiler summarize
// each processor's array access patterns; a runtime turns the summaries
// plus machine parameters into a preferred color for every virtual page;
// and the operating system honors those colors as hints when mapping
// pages, eliminating conflict misses in physically indexed caches.
//
// This package is the public facade. It re-exports the pieces a user
// composes:
//
//   - Programs are written in the affine loop-nest IR (Program, Array,
//     Nest, Access) or taken from the bundled SPEC95fp-analog workloads
//     (Workloads, Workload).
//   - Compile runs the SUIF-style pipeline: data layout with alignment
//     and padding, access-pattern summarization, optional prefetch
//     insertion.
//   - ComputeHints runs the paper's five-step CDPC algorithm (§5.2).
//   - Simulate executes the program on the machine simulator standing in
//     for SimOS: per-CPU caches, coherence, a finite-bandwidth bus, and
//     the simulated OS's page mapping policies.
//
// The one-call path for comparisons is Run:
//
//	res, err := repro.Run(repro.Spec{Workload: "tomcatv", CPUs: 8, Variant: repro.CDPC})
//
// See examples/ for full programs and cmd/experiments for the
// reproduction of every table and figure in the paper.
package repro
