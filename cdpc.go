package repro

import (
	"repro/internal/arch"
	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/ir"
	"repro/internal/sim"
	"repro/internal/vm"
	"repro/internal/workloads"
)

// Program is an application in the affine loop-nest IR.
type Program = ir.Program

// Array is one program data structure.
type Array = ir.Array

// Nest is a loop nest (outer distributed loop + inner loop + accesses).
type Nest = ir.Nest

// Access is an affine array reference.
type Access = ir.Access

// Phase is a weighted steady-state region.
type Phase = ir.Phase

// Schedule is a static parallel-loop schedule.
type Schedule = ir.Schedule

// Load and Store are the access kinds; Blocked and Even the partition
// policies (§5.1).
const (
	Load    = ir.Load
	Store   = ir.Store
	Blocked = ir.Blocked
	Even    = ir.Even
)

// MachineConfig describes the simulated hardware.
type MachineConfig = arch.Config

// BaseMachine returns the paper's SimOS configuration (§3.2) scaled by
// 1/scale.
func BaseMachine(ncpu, scale int) MachineConfig { return arch.Base(ncpu, scale) }

// AlphaMachine returns the AlphaServer 8400 validation configuration
// (§7) scaled by 1/scale.
func AlphaMachine(ncpu, scale int) MachineConfig { return arch.Alpha(ncpu, scale) }

// Summary is the compiler's access-pattern summary (§5.1): array
// partitionings, communication patterns and group-access pairs.
type Summary = compiler.Summary

// Hints is the CDPC output: per-page preferred colors and the page
// ordering used for touch-order emulation.
type Hints = core.Hints

// CompileOptions controls the compiler pipeline.
type CompileOptions struct {
	// Unaligned disables the §5.4 alignment and padding pass.
	Unaligned bool
	// Prefetch runs the §6.2 prefetch-insertion pass.
	Prefetch bool
}

// Compile lays out the program's data for the machine, optionally
// inserts prefetches, and returns the access-pattern summary. It must
// run before ComputeHints or Simulate.
func Compile(p *Program, m MachineConfig, opts CompileOptions) (*Summary, error) {
	layout := compiler.DefaultLayout(m.Topo().LLC().Geom.LineSize, m.L1D.Size, m.PageSize)
	if opts.Unaligned {
		layout.Align = false
		layout.Pad = false
	}
	if err := compiler.Layout(p, layout); err != nil {
		return nil, err
	}
	if opts.Prefetch {
		compiler.InsertPrefetches(p, compiler.DefaultPrefetch())
	}
	return compiler.Summarize(p), nil
}

// ComputeHints runs the five-step CDPC algorithm (§5.2) for a compiled
// program on the given machine.
func ComputeHints(p *Program, s *Summary, m MachineConfig) (*Hints, error) {
	return core.ComputeHints(p, s, core.Params{
		NumCPUs:   m.NumCPUs,
		NumColors: m.Colors(),
		PageSize:  m.PageSize,
	})
}

// Policy names for Simulate.
type Policy string

// The page mapping policies of §2.1.
const (
	// PolicyPageColoring maps consecutive virtual pages to consecutive
	// colors (IRIX).
	PolicyPageColoring Policy = "page-coloring"
	// PolicyBinHopping cycles colors in fault order (Digital UNIX).
	PolicyBinHopping Policy = "bin-hopping"
)

// SimOptions configures a simulation.
type SimOptions struct {
	Policy Policy
	// Hints, if non-nil, is installed via the madvise-like interface.
	Hints *Hints
	// TouchOrder, if true with Hints set, realizes the hints by touching
	// pages in order over bin hopping (the Digital UNIX path, §5.3).
	TouchOrder bool
}

// Result is a simulation outcome; see its methods for MCPI, bus
// utilization and the Figure 2 cycle breakdowns.
type Result = sim.Result

// CPUStats is one processor's cycle accounting.
type CPUStats = sim.CPUStats

// Simulate runs a compiled program on the machine.
func Simulate(p *Program, m MachineConfig, opts SimOptions) (*Result, error) {
	simOpts := sim.Options{Config: m}
	colors := m.Colors()
	switch opts.Policy {
	case PolicyBinHopping:
		simOpts.Policy = &vm.BinHopping{Colors: colors}
	default:
		simOpts.Policy = vm.PageColoring{Colors: colors}
	}
	if opts.Hints != nil {
		if opts.TouchOrder {
			simOpts.Policy = &vm.BinHopping{Colors: colors}
			simOpts.TouchOrder = opts.Hints.Order
		} else {
			simOpts.Hints = opts.Hints.Colors
		}
	}
	m2, err := sim.New(simOpts)
	if err != nil {
		return nil, err
	}
	return m2.Run(p)
}

// Spec and Run are the one-call experiment path (delegating to the
// internal harness used by cmd/experiments).
type Spec = harness.Spec

// Variant selects the page mapping configuration for Run.
type Variant = harness.Variant

// The variants the paper compares (Figures 6–9).
const (
	PageColoring        = harness.PageColoring
	BinHopping          = harness.BinHopping
	BinHoppingUnaligned = harness.BinHoppingUnaligned
	CDPC                = harness.CDPC
	CDPCTouch           = harness.CDPCTouch
	ColoringTouch       = harness.ColoringTouch
	DynamicRecoloring   = harness.DynamicRecoloring
	PaddedColoring      = harness.PaddedColoring
	PaddedBinHopping    = harness.PaddedBinHopping
)

// RunProgram executes a custom program (e.g. parsed from the text
// format) under the spec's machine and variant.
func RunProgram(p *Program, s Spec) (*Result, error) { return harness.RunProgram(p, s) }

// ParseProgram reads a program in the text format (see
// examples/progfile/solver.cdp for the grammar by example).
func ParseProgram(src string) (*Program, error) { return ir.ParseString(src) }

// FormatProgram renders a program in the text format.
func FormatProgram(p *Program) string { return ir.Format(p) }

// Run executes one workload/machine/policy specification end to end.
func Run(s Spec) (*Result, error) { return harness.Run(s) }

// Workload describes one bundled SPEC95fp-analog program.
type Workload = workloads.Meta

// Workloads lists the ten bundled SPEC95fp-analog workloads.
func Workloads() []Workload { return workloads.Registry() }

// WorkloadByName returns the named bundled workload.
func WorkloadByName(name string) (Workload, error) { return workloads.ByName(name) }

// DefaultScale is the default machine/data scaling divisor (1/16).
const DefaultScale = workloads.DefaultScale
