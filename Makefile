GO ?= go

.PHONY: build test vet race bench audit verify

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The scheduler is the only concurrent subsystem; run its package (and
# the simulator it drives) under the race detector.
race:
	$(GO) test -race ./internal/harness/...

# Scheduler + simulator benchmarks, plus the machine-readable
# BENCH_harness.json dump (serial vs pooled Figure 6).
bench:
	$(GO) test -run xxx -bench 'BenchmarkParallelExperiments|BenchmarkSimulatorThroughput' -benchtime 3x .
	WRITE_BENCH=1 $(GO) test -run TestWriteHarnessBench -v .

# Audited experiment sweep: every simulation's cycle/miss/bus
# conservation invariants are checked; any violation exits non-zero.
audit:
	$(GO) run ./cmd/experiments -quick -audit

verify:
	./scripts/verify.sh
