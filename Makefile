GO ?= go

.PHONY: build test vet lint race bench bench-sampled audit serve smoke topology-matrix verify

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Standard vet plus cdpcvet, the repo's own analyzers for the
# determinism, accounting and locking invariants (see DESIGN.md §10).
lint: vet
	$(GO) run ./cmd/cdpcvet ./...

# The whole module runs under the race detector; the scheduler, the
# cdpcd server and the metrics registry are the concurrent hot spots.
race:
	$(GO) test -race ./...

# Scheduler + simulator benchmarks, plus the machine-readable
# BENCH_harness.json dump (serial vs pooled Figure 6).
bench:
	$(GO) test -run xxx -bench 'BenchmarkParallelExperiments|BenchmarkSimulatorThroughput' -benchtime 3x .
	WRITE_BENCH=1 $(GO) test -run TestWriteHarnessBench -v .

# Phase-sampled throughput next to the full-fidelity baseline, plus the
# ten-workload sampled-vs-full error-budget table (ext-sampling).
bench-sampled:
	$(GO) test -run xxx -bench 'BenchmarkSimulatorThroughput(Sampled)?$$' -benchtime 3x .
	$(GO) run ./cmd/experiments -id ext-sampling

# Audited experiment sweep: every simulation's cycle/miss/bus
# conservation invariants are checked; any violation exits non-zero.
audit:
	$(GO) run ./cmd/experiments -quick -audit

# Page mapping policies across cache topologies (default, clustered-l3,
# sliced-llc4 — see MACHINES.md), audited. The full matrix of the
# ext-topology extension study.
topology-matrix:
	$(GO) run ./cmd/experiments -id ext-topology -audit

# Run the simulation daemon (see API.md for the HTTP surface).
serve:
	$(GO) run ./cmd/cdpcd -addr :8080

# End-to-end daemon exercise: build cdpcd, drive sync/async jobs,
# saturate the queue (429s), check metrics, SIGTERM drain.
smoke:
	$(GO) build -o /tmp/cdpcd-smoke ./cmd/cdpcd
	$(GO) run ./scripts/smoke -bin /tmp/cdpcd-smoke

verify:
	./scripts/verify.sh
