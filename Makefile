GO ?= go

.PHONY: build test vet race bench audit serve smoke verify

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The concurrent subsystems — the experiment scheduler and the cdpcd
# server in front of it — run under the race detector.
race:
	$(GO) test -race ./internal/harness/... ./internal/server/...

# Scheduler + simulator benchmarks, plus the machine-readable
# BENCH_harness.json dump (serial vs pooled Figure 6).
bench:
	$(GO) test -run xxx -bench 'BenchmarkParallelExperiments|BenchmarkSimulatorThroughput' -benchtime 3x .
	WRITE_BENCH=1 $(GO) test -run TestWriteHarnessBench -v .

# Audited experiment sweep: every simulation's cycle/miss/bus
# conservation invariants are checked; any violation exits non-zero.
audit:
	$(GO) run ./cmd/experiments -quick -audit

# Run the simulation daemon (see API.md for the HTTP surface).
serve:
	$(GO) run ./cmd/cdpcd -addr :8080

# End-to-end daemon exercise: build cdpcd, drive sync/async jobs,
# saturate the queue (429s), check metrics, SIGTERM drain.
smoke:
	$(GO) build -o /tmp/cdpcd-smoke ./cmd/cdpcd
	$(GO) run ./scripts/smoke -bin /tmp/cdpcd-smoke

verify:
	./scripts/verify.sh
