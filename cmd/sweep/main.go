// Command sweep runs a grid of simulations (workloads × CPU counts ×
// mapping variants) and emits the results as CSV or JSON for external
// plotting — the machine-readable companion to cmd/experiments.
//
// Usage:
//
//	sweep -workloads tomcatv,swim -cpus 1,4,8,16 -variants page-coloring,cdpc
//	sweep -workloads all -cpus 8 -variants all -format json > results.json
//	sweep -workloads tomcatv -cpus 8 -variants cdpc -prefetch -machine alpha
//	sweep -workloads all -cpus 1,8 -variants all -workers 8   # parallel grid
//
// The grid runs on a memoizing parallel worker pool by default
// (-parallel=false forces serial); rows are always emitted in grid
// order, so the output is identical either way.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/harness"
	"repro/internal/report"
	"repro/internal/workloads"
)

func main() {
	var (
		workloadsFlag = flag.String("workloads", "tomcatv", "comma-separated workload names, or 'all'")
		cpusFlag      = flag.String("cpus", "1,8", "comma-separated CPU counts")
		variantsFlag  = flag.String("variants", "page-coloring,cdpc", "comma-separated mapping variants, or 'all'")
		machine       = flag.String("machine", "base", "machine preset (base, alpha)")
		scale         = flag.Int("scale", workloads.DefaultScale, "scale divisor")
		prefetch      = flag.Bool("prefetch", false, "enable compiler-inserted prefetching")
		format        = flag.String("format", "csv", "output format (csv, json)")
		parallel      = flag.Bool("parallel", true, "run the grid on a parallel worker pool")
		workers       = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	)
	flag.Parse()

	names := strings.Split(*workloadsFlag, ",")
	if *workloadsFlag == "all" {
		names = workloads.Names()
	}
	var variants []harness.Variant
	if *variantsFlag == "all" {
		variants = harness.Variants()
	} else {
		for _, v := range strings.Split(*variantsFlag, ",") {
			variants = append(variants, harness.Variant(strings.TrimSpace(v)))
		}
	}
	var cpus []int
	for _, c := range strings.Split(*cpusFlag, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(c))
		if err != nil {
			fmt.Fprintln(os.Stderr, "sweep: bad cpu count:", c)
			os.Exit(1)
		}
		cpus = append(cpus, n)
	}

	var specs []harness.Spec
	for _, name := range names {
		for _, p := range cpus {
			for _, v := range variants {
				specs = append(specs, harness.Spec{
					Workload: strings.TrimSpace(name),
					Scale:    *scale,
					CPUs:     p,
					Machine:  harness.MachineKind(*machine),
					Variant:  v,
					Prefetch: *prefetch,
				})
			}
		}
	}

	// Warm the grid on the worker pool, then emit rows in grid order from
	// the memo cache: row order (and bytes) never depend on completion order.
	sched := harness.NewScheduler(*workers)
	if *parallel {
		sched.Warm(specs)
	}
	var rows []report.Row
	for _, s := range specs {
		res, err := sched.Run(s)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sweep:", err)
			os.Exit(1)
		}
		rows = append(rows, report.FromResult(res, *prefetch))
	}

	var err error
	switch *format {
	case "json":
		err = report.WriteJSON(os.Stdout, rows)
	default:
		err = report.WriteCSV(os.Stdout, rows)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
}
