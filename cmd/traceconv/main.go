// Command traceconv converts memory reference traces from the common
// text form to the compact binary trace format the simulator ingests
// (cdpcsim -trace-file, POST /v1/traces; format spec in DESIGN.md §15).
//
// The text form is one reference per line:
//
//	cpu addr op [size [work]]
//
// where cpu is the 0-based stream index, addr a hex (0x...) or decimal
// virtual address, op one of r/read, w/write, i/inst, p/prefetch, size
// the access width in bytes (default 8), and work the number of
// non-memory execution cycles attributed before the reference (default
// 0). '#' starts a comment; blank lines are skipped.
//
// Usage:
//
//	traceconv -o app.trc app.txt
//	traceconv app.txt            # writes app.trc next to the input
//	traceconv -info app.trc      # print a binary trace's shape
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/trace"
)

func main() {
	var (
		out  = flag.String("o", "", "output path (default: input with a .trc extension)")
		info = flag.Bool("info", false, "treat the input as a binary trace and print its shape instead of converting")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "traceconv: exactly one input file required")
		os.Exit(1)
	}
	in := flag.Arg(0)
	f, err := os.Open(in)
	if err != nil {
		fmt.Fprintln(os.Stderr, "traceconv:", err)
		os.Exit(1)
	}
	defer f.Close()

	if *info {
		tf, err := trace.Decode(f)
		if err != nil {
			fmt.Fprintf(os.Stderr, "traceconv: %s: %v\n", in, err)
			os.Exit(1)
		}
		fmt.Printf("%s: %d cpus, %d refs, %d bytes encoded, sha256 %s\n",
			in, tf.NumCPUs(), tf.TotalRefs(), tf.EncodedSize(), tf.Hash())
		for cpu := 0; cpu < tf.NumCPUs(); cpu++ {
			fmt.Printf("  cpu%02d: %d refs\n", cpu, tf.Refs(cpu))
		}
		return
	}

	tf, err := trace.ConvertText(f)
	if err != nil {
		fmt.Fprintf(os.Stderr, "traceconv: %s: %v\n", in, err)
		os.Exit(1)
	}
	dst := *out
	if dst == "" {
		dst = strings.TrimSuffix(in, ".txt") + ".trc"
		if dst == in {
			dst = in + ".trc"
		}
	}
	w, err := os.Create(dst)
	if err != nil {
		fmt.Fprintln(os.Stderr, "traceconv:", err)
		os.Exit(1)
	}
	if _, err := tf.WriteTo(w); err != nil {
		fmt.Fprintln(os.Stderr, "traceconv:", err)
		os.Exit(1)
	}
	if err := w.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "traceconv:", err)
		os.Exit(1)
	}
	fmt.Printf("%s: %d cpus, %d refs -> %s (%d bytes, sha256 %s)\n",
		in, tf.NumCPUs(), tf.TotalRefs(), dst, tf.EncodedSize(), tf.Hash())
}
