// Command cdpcsim runs one workload on the simulated multiprocessor
// under a chosen page mapping configuration and prints the paper-style
// statistics: execution breakdown, MCPI by miss class, bus utilization
// and hint effectiveness.
//
// Usage:
//
//	cdpcsim -workload tomcatv -cpus 8 -variant cdpc
//	cdpcsim -workload swim -cpus 16 -variant page-coloring -prefetch
//	cdpcsim -workload applu -machine alpha -variant bin-hopping
//	cdpcsim -workload hydro2d -cpus 8 -sampled
//
// Multiprogramming (space-shared co-scheduling; per-process and
// machine-total statistics):
//
//	cdpcsim -workload tomcatv -cpus 8 -variant cdpc -procs 2
//	cdpcsim -workload tomcatv -corun swim/first-touch -sched partition
//	cdpcsim -workload swim -procs 4 -sched timeslice -quantum 250000
//	cdpcsim -workload swim -procs 2 -isolate -audit
//
// Trace-driven runs (replay a recorded address stream; convert the
// common text form with cmd/traceconv):
//
//	cdpcsim -trace-file app.trc -variant cdpc -audit
//	cdpcsim -trace-file app.trc -variant first-touch -attr
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/arch"
	"repro/internal/harness"
	"repro/internal/ir"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workloads"
)

func main() {
	var (
		workload = flag.String("workload", "tomcatv", "workload name ("+strings.Join(workloads.Names(), ", ")+")")
		cpus     = flag.Int("cpus", 8, "number of processors (1-16)")
		scale    = flag.Int("scale", workloads.DefaultScale, "machine+data scale divisor")
		variant  = flag.String("variant", "page-coloring", "mapping variant (page-coloring, bin-hopping, bin-hopping-unaligned, cdpc, cdpc-touch, coloring-touch, dynamic-recoloring, padded-coloring, padded-bin-hopping, first-touch)")
		machine  = flag.String("machine", "base", "machine preset (base, alpha)")
		prefetch = flag.Bool("prefetch", false, "enable compiler-inserted prefetching")
		fast     = flag.Bool("fast", false, "cache-counting-only fast simulator (SimOS's high-speed mode, §3.2)")
		progFile = flag.String("program", "", "run a custom program from a text-format file instead of a bundled workload")
		machFile = flag.String("machine-file", "", "load a custom machine configuration from a JSON file")
		dumpMach = flag.Bool("dump-machine", false, "print the resolved machine configuration as JSON and exit")
		attr     = flag.Bool("attr", false, "collect and print per-color/per-page miss attribution and the color-by-set miss heatmap")
		traceN   = flag.Int("trace", 0, "keep the last N observability events (faults, hint outcomes, recolorings, conflict bursts) and print them")
		audit    = flag.Bool("audit", false, "check conservation invariants after the run; violations exit non-zero")
		sampled  = flag.Bool("sampled", false, "phase-sampled execution: detail-simulate one representative window per phase with functional warm-up (~10x faster, <2% MCPI error)")
		procs    = flag.Int("procs", 1, "co-schedule N identical instances of the workload on one machine")
		corun    = flag.String("corun", "", "comma-separated co-runners, each workload[/variant]; empty fields inherit the primary")
		schedF   = flag.String("sched", "", "space-sharing discipline for multiprocess runs (timeslice, partition; default timeslice)")
		quantum  = flag.Uint64("quantum", 0, "time-slice quantum in cycles for multiprocess runs (0 = simulator default)")
		isolate  = flag.Bool("isolate", false, "color-partition multiprocess runs: each process allocates only from its isolation domain's exclusive color subset")
		topology = flag.String("topology", "", "cache topology ("+strings.Join(arch.TopologyNames(), ", ")+"; empty = default)")
		topoFile = flag.String("topology-file", "", "load a cache topology from a JSON file and select it (overrides -topology when that is empty)")
		trcFile  = flag.String("trace-file", "", "replay a binary reference trace instead of simulating a workload (convert text traces with cmd/traceconv)")
	)
	flag.Parse()

	if *topoFile != "" {
		topo, err := arch.LoadTopologyFile(*topoFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cdpcsim:", err)
			os.Exit(1)
		}
		if err := arch.RegisterTopology(topo); err != nil {
			fmt.Fprintln(os.Stderr, "cdpcsim:", err)
			os.Exit(1)
		}
		if *topology == "" {
			*topology = topo.Name
		}
	}

	spec := harness.Spec{
		Workload: *workload,
		Scale:    *scale,
		CPUs:     *cpus,
		Machine:  harness.MachineKind(*machine),
		Variant:  harness.Variant(*variant),
		Prefetch: *prefetch,
		Topology: *topology,
	}
	for i := 1; i < *procs; i++ {
		spec.CoRunners = append(spec.CoRunners, harness.CoRunner{})
	}
	if *corun != "" {
		for _, f := range strings.Split(*corun, ",") {
			cr, err := parseCoRunner(f)
			if err != nil {
				fmt.Fprintln(os.Stderr, "cdpcsim:", err)
				os.Exit(1)
			}
			spec.CoRunners = append(spec.CoRunners, cr)
		}
	}
	multi := len(spec.CoRunners) > 0
	if multi {
		spec.Sched = harness.SchedKind(*schedF)
		spec.Quantum = *quantum
		spec.Isolate = *isolate
		if *progFile != "" || *fast {
			fmt.Fprintln(os.Stderr, "cdpcsim: -procs/-corun need a bundled workload on the full simulator (no -program, no -fast)")
			os.Exit(1)
		}
	} else if *schedF != "" || *quantum != 0 || *isolate {
		fmt.Fprintln(os.Stderr, "cdpcsim: -sched/-quantum/-isolate only apply to multiprocess runs (-procs or -corun)")
		os.Exit(1)
	}
	if *sampled {
		// Mirror the server's bad_fidelity rules: these modes need the
		// full reference stream, so silently degrading would mislead.
		switch {
		case *attr || *traceN > 0:
			fmt.Fprintln(os.Stderr, "cdpcsim: -sampled is incompatible with -attr/-trace (attribution needs the full reference trace)")
			os.Exit(1)
		case multi:
			fmt.Fprintln(os.Stderr, "cdpcsim: -sampled is incompatible with -procs/-corun (co-scheduled runs cannot be sampled)")
			os.Exit(1)
		case *fast:
			fmt.Fprintln(os.Stderr, "cdpcsim: -sampled is incompatible with -fast (the fast simulator has no detailed windows to sample)")
			os.Exit(1)
		case spec.Variant == harness.DynamicRecoloring:
			fmt.Fprintln(os.Stderr, "cdpcsim: -sampled is incompatible with -variant dynamic-recoloring (the policy reacts to per-page miss counts the sampled run skips)")
			os.Exit(1)
		}
		spec.Sampled = true
	}
	if *trcFile != "" {
		switch {
		case *progFile != "":
			fmt.Fprintln(os.Stderr, "cdpcsim: -trace-file and -program are mutually exclusive")
			os.Exit(1)
		case *fast:
			fmt.Fprintln(os.Stderr, "cdpcsim: -trace-file needs the full simulator (no -fast)")
			os.Exit(1)
		case multi:
			fmt.Fprintln(os.Stderr, "cdpcsim: trace runs are single-process (no -procs/-corun)")
			os.Exit(1)
		case *sampled:
			fmt.Fprintln(os.Stderr, "cdpcsim: traces have no phase structure to sample (no -sampled)")
			os.Exit(1)
		case *prefetch:
			fmt.Fprintln(os.Stderr, "cdpcsim: -prefetch needs a compiled program; traces record their reference stream")
			os.Exit(1)
		}
		f, err := os.Open(*trcFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cdpcsim:", err)
			os.Exit(1)
		}
		tf, err := trace.Decode(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "cdpcsim: %s: %v\n", *trcFile, err)
			os.Exit(1)
		}
		spec.Workload = ""
		spec.Trace = harness.NewTraceWorkload(filepath.Base(*trcFile), tf)
		// Unless -cpus was given explicitly, size the machine to the
		// trace's own stream count.
		cpusSet := false
		flag.Visit(func(fl *flag.Flag) {
			if fl.Name == "cpus" {
				cpusSet = true
			}
		})
		if !cpusSet {
			spec.CPUs = 0
		}
	}
	var ring *obs.Ring
	if *traceN > 0 {
		ring = obs.NewRing(*traceN)
	}
	if *attr || ring != nil {
		var o obs.Options
		if ring != nil {
			o.Tracer = ring // assign only when non-nil: a typed-nil Tracer is not a nil interface
		}
		spec.Obs = obs.NewCollector(o)
	}
	post := func(res *sim.Result) {
		if *attr {
			fmt.Println()
			fmt.Print(spec.Obs.Report(10))
		}
		if ring != nil {
			events := ring.Events()
			fmt.Printf("\nevent trace (last %d of %d):\n", len(events), uint64(len(events))+ring.Dropped())
			for _, e := range events {
				fmt.Println(" ", e)
			}
		}
		if *audit {
			if vs := res.Audit(); len(vs) > 0 {
				fmt.Fprintln(os.Stderr, "cdpcsim:", obs.AuditError(vs))
				os.Exit(2)
			}
			fmt.Println("\naudit: all conservation invariants hold")
		}
	}
	if *machFile != "" {
		cfg, err := arch.LoadConfigFile(*machFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cdpcsim:", err)
			os.Exit(1)
		}
		spec.ConfigOverride = &cfg
	}
	if *dumpMach {
		cfg := spec.Config()
		if err := cfg.WriteJSON(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "cdpcsim:", err)
			os.Exit(1)
		}
		return
	}
	if *progFile != "" {
		f, err := os.Open(*progFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cdpcsim:", err)
			os.Exit(1)
		}
		prog, err := ir.Parse(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "cdpcsim: %s: %v\n", *progFile, err)
			os.Exit(1)
		}
		res, err := harness.RunProgram(prog, spec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cdpcsim:", err)
			os.Exit(1)
		}
		print(res, spec)
		post(res)
		return
	}
	if *fast {
		if *attr || ring != nil || *audit {
			fmt.Fprintln(os.Stderr, "cdpcsim: -attr/-trace/-audit need the full simulator; ignored in -fast mode")
		}
		if err := runFast(spec); err != nil {
			fmt.Fprintln(os.Stderr, "cdpcsim:", err)
			os.Exit(1)
		}
		return
	}
	if multi {
		mr, err := harness.RunMulti(spec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cdpcsim:", err)
			os.Exit(1)
		}
		printMulti(mr, spec)
		if *attr {
			fmt.Println()
			fmt.Print(spec.Obs.Report(10))
		}
		if ring != nil {
			events := ring.Events()
			fmt.Printf("\nevent trace (last %d of %d):\n", len(events), uint64(len(events))+ring.Dropped())
			for _, e := range events {
				fmt.Println(" ", e)
			}
		}
		if *audit {
			if vs := mr.Audit(); len(vs) > 0 {
				fmt.Fprintln(os.Stderr, "cdpcsim:", obs.AuditError(vs))
				os.Exit(2)
			}
			fmt.Println("\naudit: all conservation invariants hold")
		}
		return
	}
	res, err := harness.Run(spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cdpcsim:", err)
		os.Exit(1)
	}
	print(res, spec)
	post(res)
}

// parseCoRunner parses one -corun field of the form workload[/variant];
// an empty workload or variant inherits the primary spec's.
func parseCoRunner(f string) (harness.CoRunner, error) {
	f = strings.TrimSpace(f)
	name, variant, _ := strings.Cut(f, "/")
	cr := harness.CoRunner{Workload: strings.TrimSpace(name), Variant: harness.Variant(strings.TrimSpace(variant))}
	if cr.Workload == "" && cr.Variant == "" && f != "" && f != "/" {
		return cr, fmt.Errorf("bad -corun entry %q (want workload[/variant])", f)
	}
	return cr, nil
}

// printMulti prints the per-process table, then the machine total in
// the single-process layout.
func printMulti(mr *sim.MultiResult, spec harness.Spec) {
	cfg := spec.Config()
	fmt.Printf("multiprogramming: %d processes on %s (%d CPUs, %d colors, %s scheduling)\n",
		len(mr.PerProcess), mr.Total.Machine, mr.Total.NumCPUs, cfg.Colors(), mr.Sched)
	fmt.Printf("machine wall %d cycles (%.2f ms at %d MHz)\n\n",
		mr.Total.WallCycles, float64(mr.Total.WallCycles)/float64(cfg.ClockMHz)/1000, cfg.ClockMHz)

	wlW, polW := len("workload"), len("policy")
	for _, r := range append([]*sim.Result{mr.Total}, mr.PerProcess...) {
		wlW = max(wlW, len(r.Workload))
		polW = max(polW, len(r.Policy))
	}
	fmt.Printf("%-5s %-*s %-*s %10s %8s %10s %8s %7s\n",
		"proc", wlW, "workload", polW, "policy", "wall(M)", "MCPI", "conflicts", "faults", "ctxsw")
	row := func(label string, r *sim.Result) {
		fmt.Printf("%-5s %-*s %-*s %10.1f %8.3f %10d %8d %7d\n",
			label, wlW, r.Workload, polW, r.Policy,
			float64(r.WallCycles)/1e6, r.MCPI(),
			r.Total(func(s *sim.CPUStats) uint64 { return s.ConflictMisses }),
			r.Total(func(s *sim.CPUStats) uint64 { return s.PageFaults }),
			r.Total(func(s *sim.CPUStats) uint64 { return s.ContextSwitches }))
	}
	for i, r := range mr.PerProcess {
		row(fmt.Sprint(i+1), r)
	}
	row("total", mr.Total)

	// Additive so unpartitioned output stays byte-identical.
	if mr.Total.Isolated {
		fmt.Printf("\nisolation: color-partitioned domains; cross-domain evictions %d (invariant 12: exactly 0)\n",
			mr.Total.Total(func(s *sim.CPUStats) uint64 { return s.CrossDomainConflicts }))
	}

	fmt.Println("\nmachine total:")
	print(mr.Total, spec)
}

// runFast positions the workload with the cache-counting simulator.
func runFast(spec harness.Spec) error {
	res, err := harness.FastRun(spec)
	if err != nil {
		return err
	}
	fmt.Printf("fast mode: %s on %d CPUs (%s)\n", res.Workload, res.NumCPUs, spec.Config().Name)
	fmt.Printf("  refs        %d\n", res.Refs)
	fmt.Printf("  L1 hits     %d (%.1f%%)\n", res.L1Hits, 100*float64(res.L1Hits)/float64(res.Refs))
	fmt.Printf("  L2 hits     %d\n", res.L2Hits)
	fmt.Printf("  L2 misses   %d (miss ratio %.4f)\n", res.L2Misses, res.MissRatio())
	fmt.Printf("  page faults %d, TLB misses %d, footprint %d pages\n", res.PageFaults, res.TLBMisses, res.PagesTouched)
	return nil
}

func print(res *sim.Result, spec harness.Spec) {
	cfg := spec.Config()
	fmt.Printf("workload   %s on %s (%d CPUs, %d colors, %s)\n",
		res.Workload, res.Machine, res.NumCPUs, cfg.Colors(), res.Policy)
	if res.Fidelity == sim.FidelitySampled {
		fmt.Printf("fidelity   sampled (%d windows, %d of %d outer iterations detailed, %d warm-up refs)\n",
			res.SampledWindows, res.SampledIters, res.RepresentedIters, res.WarmupRefs)
	}
	fmt.Printf("wall clock %d cycles (%.2f ms at %d MHz)\n",
		res.WallCycles, float64(res.WallCycles)/float64(cfg.ClockMHz)/1000, cfg.ClockMHz)
	fmt.Printf("combined   %.1f Mcycles over all CPUs\n", float64(res.CombinedCycles())/1e6)

	tot := func(f func(*sim.CPUStats) uint64) uint64 { return res.Total(f) }
	comb := float64(res.CombinedCycles())
	pct := func(x uint64) float64 { return 100 * float64(x) / comb }

	fmt.Println("\ncycle breakdown (% of combined time):")
	fmt.Printf("  execution    %6.1f%%\n", pct(tot(func(s *sim.CPUStats) uint64 { return s.ExecCycles })))
	fmt.Printf("  memory stall %6.1f%%\n", pct(tot((*sim.CPUStats).MemStallCycles)))
	fmt.Printf("  kernel       %6.1f%%\n", pct(tot(func(s *sim.CPUStats) uint64 { return s.KernelCycles })))
	fmt.Printf("  imbalance    %6.1f%%\n", pct(tot(func(s *sim.CPUStats) uint64 { return s.ImbalanceCycles })))
	fmt.Printf("  sequential   %6.1f%%\n", pct(tot(func(s *sim.CPUStats) uint64 { return s.SequentialCycles })))
	fmt.Printf("  suppressed   %6.1f%%\n", pct(tot(func(s *sim.CPUStats) uint64 { return s.SuppressedCycles })))
	fmt.Printf("  synchroniz.  %6.1f%%\n", pct(tot(func(s *sim.CPUStats) uint64 { return s.SyncCycles })))

	fmt.Println("\nmemory system:")
	fmt.Printf("  MCPI            %.3f\n", res.MCPI())
	fmt.Printf("  off-chip misses %d (cold %d, conflict %d, capacity %d, true-share %d, false-share %d)\n",
		tot(func(s *sim.CPUStats) uint64 { return s.L2Misses }),
		tot(func(s *sim.CPUStats) uint64 { return s.ColdMisses }),
		tot(func(s *sim.CPUStats) uint64 { return s.ConflictMisses }),
		tot(func(s *sim.CPUStats) uint64 { return s.CapacityMisses }),
		tot(func(s *sim.CPUStats) uint64 { return s.TrueShareMisses }),
		tot(func(s *sim.CPUStats) uint64 { return s.FalseShareMisses }))
	fmt.Printf("  bus utilization %.0f%% (data %.1fM, writeback %.1fM, upgrade %.1fM cycles)\n",
		100*res.BusUtilization(), float64(res.Bus.DataCycles)/1e6,
		float64(res.Bus.WritebackCycles)/1e6, float64(res.Bus.UpgradeCycles)/1e6)

	if len(res.SliceMisses) > 0 {
		var st uint64
		for _, n := range res.SliceMisses {
			st += n
		}
		fmt.Printf("  slice split    ")
		for s, n := range res.SliceMisses {
			p := 0.0
			if st > 0 {
				p = 100 * float64(n) / float64(st)
			}
			fmt.Printf(" s%d=%d (%.1f%%)", s, n, p)
		}
		fmt.Println()
	}
	if pf := tot(func(s *sim.CPUStats) uint64 { return s.PrefetchesIssued }); pf > 0 {
		fmt.Printf("  prefetches      %d issued, %d dropped on TLB miss, %d demand hits on in-flight lines\n",
			pf,
			tot(func(s *sim.CPUStats) uint64 { return s.PrefetchesDropped }),
			tot(func(s *sim.CPUStats) uint64 { return s.PrefetchedHits }))
	}
	if res.HintedFaults > 0 {
		fmt.Printf("\nCDPC hints: %d faults hinted, %d honored (%.0f%%)\n",
			res.HintedFaults, res.HonoredHints, 100*float64(res.HonoredHints)/float64(res.HintedFaults))
	}
}
