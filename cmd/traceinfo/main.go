// Command traceinfo analyzes a workload's memory reference stream
// without simulating timing: footprint, reference counts, and the
// working-set curve (fully-associative LRU miss ratio vs cache size)
// computed from LRU stack distances. The curve separates capacity
// pressure — which no page mapping policy can fix — from the conflict
// misses CDPC eliminates: the gap between the fully-associative curve at
// the machine's cache size and the direct-mapped simulation's miss count
// is the conflict opportunity.
//
// Usage:
//
//	traceinfo -workload tomcatv -cpus 8
//	traceinfo -workload swim -cpus 16 -percpu
//	traceinfo -trace app.trc -percpu
//
// With -trace the stream comes from a recorded binary trace file
// instead of a bundled workload; the reuse-distance analysis is
// identical, against the same machine geometry flags.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/harness"
	"repro/internal/ir"
	"repro/internal/trace"
	"repro/internal/workloads"
)

func main() {
	var (
		workload = flag.String("workload", "tomcatv", "workload name")
		cpus     = flag.Int("cpus", 8, "number of processors")
		scale    = flag.Int("scale", workloads.DefaultScale, "scale divisor")
		perCPU   = flag.Bool("percpu", false, "analyze each CPU's stream separately")
		trcFile  = flag.String("trace", "", "analyze a recorded binary trace file instead of a bundled workload")
	)
	flag.Parse()

	var prog *ir.Program
	var tf *trace.File
	if *trcFile != "" {
		f, err := os.Open(*trcFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "traceinfo:", err)
			os.Exit(1)
		}
		tf, err = trace.Decode(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "traceinfo: %s: %v\n", *trcFile, err)
			os.Exit(1)
		}
		*cpus = tf.NumCPUs()
	}
	spec := harness.Spec{Workload: *workload, Scale: *scale, CPUs: max(*cpus, 1)}
	if tf != nil {
		// Only the machine geometry matters for a trace; no program is
		// built or laid out.
		spec.Workload = ""
		spec.Trace = harness.NewTraceWorkload(*trcFile, tf)
	}
	cfg := spec.Config()
	if tf == nil {
		var err error
		prog, _, cfg, err = harness.Prepare(spec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "traceinfo:", err)
			os.Exit(1)
		}
	}
	// Geometry of the effective LLC: line size for reuse distances, and
	// the whole cache instance (all slices) for the capacity marker.
	llc := cfg.Topo().LLC()
	lineSize := llc.Geom.LineSize
	cacheLines := llc.TotalSize() / lineSize

	analyze := func(label string, s trace.Stream) {
		h := trace.LineDistances(s, lineSize)
		fmt.Printf("%s: %d refs, footprint %d lines (%d KB)\n",
			label, h.Total, h.DistinctLines(), h.DistinctLines()*uint64(lineSize)/1024)
		fmt.Println("  fully-associative LRU miss ratio by cache size:")
		for lines := 64; lines <= 8*cacheLines; lines *= 2 {
			marker := "  "
			if lines == cacheLines {
				marker = "<- machine cache"
			}
			fmt.Printf("    %6d KB: %.4f %s\n", lines*lineSize/1024, h.MissRatioAt(lines), marker)
		}
	}

	if tf != nil {
		if *perCPU {
			for cpu := 0; cpu < tf.NumCPUs(); cpu++ {
				analyze(fmt.Sprintf("cpu%02d", cpu), tf.Stream(cpu))
			}
			return
		}
		// Whole-trace stream, CPU-major, mirroring the IR whole-program
		// analysis.
		streams := make([]trace.Stream, tf.NumCPUs())
		for cpu := range streams {
			streams[cpu] = tf.Stream(cpu)
		}
		analyze(*trcFile, trace.Concat(streams...))
		return
	}
	if *perCPU {
		for cpu := 0; cpu < *cpus; cpu++ {
			analyze(fmt.Sprintf("cpu%02d", cpu), cpuStream(prog, *cpus, cpu))
		}
		return
	}
	// Whole-program stream: all CPUs' steady-state references, CPU-major
	// (capacity analysis is per-CPU cache anyway; use -percpu for that).
	analyze(prog.Name, cpuStream(prog, 1, 0))
}

// cpuStream concatenates one CPU's steady-state nest streams.
func cpuStream(prog *ir.Program, ncpu, cpu int) trace.Stream {
	var streams []trace.Stream
	for _, ph := range prog.Phases {
		for _, n := range ph.Nests {
			streams = append(streams, ir.NestStream(prog, n, ncpu, cpu))
		}
	}
	return trace.Concat(streams...)
}
