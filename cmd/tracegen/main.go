// Command tracegen emits synthetic address-trace workloads in the text
// trace form (convert with cmd/traceconv, replay with cdpcsim
// -trace-file). Its "irregular" pattern reproduces the pathology
// compiler-directed page coloring targets, in trace form: a small set
// of hot pages whose virtual page numbers are congruent modulo the
// color count, first-touched interleaved with cold filler pages so a
// color-blind allocator stacks them on few colors — a conflict-miss
// storm on a direct-mapped external cache that vanishes when the hot
// pages are spread across colors. It is the fixture behind
// examples/traces/irregular.txt (regenerate with `make` arguments
// below) and the verify.sh trace smoke.
//
// Usage:
//
//	tracegen > irregular.txt
//	tracegen -cpus 2 -hot 12 -rounds 400 -colors 16 > irregular.txt
//
// The defaults match the base machine at the default 1/16 scale:
// 16 page colors (64 KB direct-mapped external cache, 4 KB pages),
// 12 hot pages per CPU (48 KB, comfortably under capacity so repeat
// misses classify as conflict, not capacity).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
)

func main() {
	var (
		cpus   = flag.Int("cpus", 2, "per-CPU streams to generate")
		hot    = flag.Int("hot", 12, "hot pages per CPU (all congruent mod -colors)")
		rounds = flag.Int("rounds", 400, "measured rounds; each touches every hot page once")
		colors = flag.Int("colors", 16, "page colors of the target machine (hot-page VPN spacing)")
		page   = flag.Int("page", 4096, "page size in bytes")
		line   = flag.Int("line", 128, "external-cache line size in bytes (round offsets step by this)")
	)
	flag.Parse()

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	fmt.Fprintf(w, "# tracegen: %d cpus, %d hot pages/cpu spaced %d pages apart, %d rounds\n",
		*cpus, *hot, *colors, *rounds)
	fmt.Fprintf(w, "# hot footprint %d KB/cpu; intro interleaves %d cold fillers between hot first-touches\n",
		*hot**page/1024, *colors-1)

	hotAddr := func(cpu, i int) uint64 {
		// Per-CPU disjoint ranges; hot VPNs congruent mod colors, so a
		// vpn-mod-colors mapping (or sequential frames spaced by the
		// filler count) stacks them all on one color.
		return uint64(cpu)<<30 + uint64(i**colors**page)
	}

	// Intro: first-touch order poisons a color-blind allocator. Each hot
	// page's fault is followed by colors-1 cold filler faults, so
	// consecutive hot pages land colors-1+1 = colors frames apart —
	// the same color under sequential frame allocation.
	filler := 0
	for i := 0; i < *hot; i++ {
		for cpu := 0; cpu < *cpus; cpu++ {
			fmt.Fprintf(w, "%d 0x%x r\n", cpu, hotAddr(cpu, i))
		}
		for k := 0; k < *colors-1; k++ {
			for cpu := 0; cpu < *cpus; cpu++ {
				addr := uint64(cpu)<<30 + 1<<28 + uint64(filler+k)*uint64(*page)
				fmt.Fprintf(w, "%d 0x%x r\n", cpu, addr)
			}
		}
		filler += *colors - 1
	}

	// Measured rounds: every hot page once per round, at a per-round
	// line offset walked with a coprime stride so lines are revisited
	// irregularly rather than sequentially.
	lines := *page / *line
	for r := 0; r < *rounds; r++ {
		off := uint64((r*5 + 3) % lines * *line)
		for i := 0; i < *hot; i++ {
			op := "r"
			if (r+i)%7 == 0 {
				op = "w"
			}
			for cpu := 0; cpu < *cpus; cpu++ {
				fmt.Fprintf(w, "%d 0x%x %s\n", cpu, hotAddr(cpu, i)+off, op)
			}
		}
	}
}
