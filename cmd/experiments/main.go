// Command experiments regenerates every table and figure of the paper's
// evaluation (Table 1, Figures 2–3 and 5–9, Table 2) on the simulated
// machine.
//
// Usage:
//
//	experiments              # run everything (minutes)
//	experiments -id fig6     # one experiment
//	experiments -quick       # reduced CPU counts and workload set
//	experiments -list        # list experiment ids
//	experiments -parallel=false   # force fully serial execution
//	experiments -workers 4        # cap the simulation worker pool
//
// By default simulations run on a memoizing parallel scheduler sized to
// GOMAXPROCS; output is byte-identical to a serial run (rendering is
// decoupled from execution order, and results are deterministic).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/arch"
	"repro/internal/harness"
)

func main() {
	var (
		id       = flag.String("id", "", "experiment id (empty = all)")
		quick    = flag.Bool("quick", false, "reduced sweep for fast runs")
		scale    = flag.Int("scale", 0, "machine+data scale divisor (0 = default 16)")
		list     = flag.Bool("list", false, "list experiment ids and exit")
		outDir   = flag.String("o", "", "also write each experiment's output to <dir>/<id>.txt")
		parallel = flag.Bool("parallel", true, "run simulations on a parallel worker pool with memoization")
		workers  = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		audit    = flag.Bool("audit", false, "check conservation invariants on every simulation; violations exit non-zero")
		procsN   = flag.Int("procs", 0, "override the co-scheduling degree swept by ext-multiprog (0 = default sweep)")
		sampled  = flag.Bool("sampled", false, "run compatible simulations phase-sampled (~10x faster, <2% MCPI error; incompatible specs keep full fidelity)")
		topology = flag.String("topology", "", "cache topology for every simulation (see MACHINES.md; specs that pin their own, like ext-topology, keep it)")
	)
	flag.Parse()

	if !arch.KnownTopology(*topology) {
		fmt.Fprintf(os.Stderr, "experiments: unknown topology %q (have %s)\n",
			*topology, strings.Join(arch.TopologyNames(), ", "))
		os.Exit(1)
	}

	if *list {
		for _, e := range harness.Experiments() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}

	opts := harness.ExpOptions{Scale: *scale, Quick: *quick, Audit: *audit, Procs: *procsN, Sampled: *sampled, Topology: *topology}
	if *parallel {
		// One scheduler across all experiments: identical specs (e.g. the
		// page-coloring baselines shared by Figures 2, 6 and 8) simulate once.
		opts.Runner = harness.NewScheduler(*workers)
	}
	var exps []harness.Experiment
	if *id != "" {
		e, err := harness.ExperimentByID(*id)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		exps = []harness.Experiment{e}
	} else {
		exps = harness.Experiments()
	}

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
	}
	for _, e := range exps {
		start := time.Now()
		out, err := e.Run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Printf("================ %s — %s (%.1fs) ================\n\n%s\n",
			e.ID, e.Title, time.Since(start).Seconds(), out)
		if *outDir != "" {
			path := filepath.Join(*outDir, e.ID+".txt")
			if err := os.WriteFile(path, []byte(out), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				os.Exit(1)
			}
		}
	}
}
