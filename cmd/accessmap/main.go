// Command accessmap plots which virtual pages each processor touches
// during a workload's steady state — the reproduction of Figure 3
// (virtual-address order, the sparse patterns that defeat page coloring)
// and Figure 5 (CDPC coloring order, dense per-CPU runs). It also prints
// each page's assigned color under the chosen policy.
//
// Usage:
//
//	accessmap -workload tomcatv -cpus 16 -order virtual
//	accessmap -workload swim -cpus 16 -order cdpc -colors
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/harness"
	"repro/internal/ir"
	"repro/internal/workloads"
)

func main() {
	var (
		workload   = flag.String("workload", "tomcatv", "workload name")
		cpus       = flag.Int("cpus", 16, "number of processors")
		scale      = flag.Int("scale", workloads.DefaultScale, "scale divisor")
		order      = flag.String("order", "virtual", "page order: virtual or cdpc")
		showColors = flag.Bool("colors", false, "print the CDPC color of each ordered page")
		quality    = flag.Bool("quality", false, "print per-CPU color-balance metrics for the hints")
	)
	flag.Parse()

	spec := harness.Spec{Workload: *workload, Scale: *scale, CPUs: *cpus, Variant: harness.CDPC}
	hints, prog, err := harness.Hints(spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "accessmap:", err)
		os.Exit(1)
	}
	cfg := spec.Config()

	var pages []uint64
	switch *order {
	case "cdpc":
		pages = hints.Order
	case "virtual":
		pages = virtualOrder(prog, cfg.PageSize)
	default:
		fmt.Fprintf(os.Stderr, "accessmap: unknown order %q\n", *order)
		os.Exit(1)
	}
	pos := make(map[uint64]int, len(pages))
	for i, vpn := range pages {
		pos[vpn] = i
	}

	fmt.Printf("%s: %d pages, %d CPUs, %d colors, %s order\n",
		*workload, len(pages), *cpus, cfg.Colors(), *order)
	for cpu := 0; cpu < *cpus; cpu++ {
		touched := ir.TouchedPages(prog, *cpus, cpu, cfg.PageSize)
		row := make([]byte, len(pages))
		for i := range row {
			row[i] = '.'
		}
		for vpn := range touched {
			if i, ok := pos[vpn]; ok {
				row[i] = '#'
			}
		}
		fmt.Printf("cpu%02d |%s|\n", cpu, row)
	}
	if *quality {
		fmt.Println()
		fmt.Print(hints.Evaluate(*cpus))
	}
	if *showColors {
		fmt.Println("\npage -> color (coloring order):")
		for i, vpn := range hints.Order {
			fmt.Printf("  #%-4d vpn %-6d color %d\n", i, vpn, hints.Colors[vpn])
		}
	}
}

// virtualOrder lists the data pages in ascending virtual order.
func virtualOrder(prog *ir.Program, pageSize int) []uint64 {
	var vpns []uint64
	ps := uint64(pageSize)
	for _, a := range prog.Arrays {
		for vpn := a.Base / ps; vpn*ps < a.EndAddr(); vpn++ {
			if len(vpns) > 0 && vpns[len(vpns)-1] == vpn {
				continue
			}
			vpns = append(vpns, vpn)
		}
	}
	return vpns
}
