// Command cdpcvet runs the repo's static-analysis suite (package
// internal/lint) over a Go module and prints every diagnostic in
// file:line:col form, exiting 1 when anything is found. With no
// arguments it analyzes the module containing the current directory;
// "cdpcvet ./..." and an explicit directory argument do the same thing
// (analysis is always whole-module, since the invariants it checks
// couple packages to each other and to API.md).
//
// Suppress an individual finding with a trailing or preceding
// "//lint:allow <analyzer> (reason)" comment; the reason is mandatory
// in spirit — it is what the reviewer reads.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: cdpcvet [-list] [dir | ./...]\n\nAnalyzers:\n")
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(os.Stderr, "  %-14s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	dir := "."
	if args := flag.Args(); len(args) > 0 {
		// Accept the idiomatic "./..." spelling; analysis is whole-module
		// either way.
		dir = strings.TrimSuffix(args[0], "...")
		if dir == "" {
			dir = "."
		}
	}

	prog, err := lint.Load(dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cdpcvet: %v\n", err)
		os.Exit(2)
	}
	diags := lint.RunAnalyzers(prog, lint.Analyzers())
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "cdpcvet: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
