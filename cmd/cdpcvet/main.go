// Command cdpcvet runs the repo's static-analysis suite (package
// internal/lint) over a Go module and prints every diagnostic in
// file:line:col form, exiting 1 when anything is found. With no
// arguments it analyzes the module containing the current directory;
// "cdpcvet ./..." and an explicit directory argument do the same thing
// (analysis is always whole-module, since the invariants it checks
// couple packages to each other and to API.md).
//
// -json emits the diagnostics as a JSON array (stable order, one
// object per finding) for machine consumption; -budget fails the run
// when load + analysis exceed a wall-clock budget, the CI guard that
// keeps whole-module analysis cheap enough to gate every change.
//
// Suppress an individual finding with a trailing or preceding
// "//lint:allow <analyzer> (reason)" comment, scoped to exactly the
// one statement the comment sits on (or directly above); the reason is
// mandatory in spirit — it is what the reviewer reads.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/lint"
)

// jsonDiag is the machine-readable form of one finding.
type jsonDiag struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Message  string `json:"message"`
}

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	asJSON := flag.Bool("json", false, "emit findings as a JSON array on stdout")
	budget := flag.Duration("budget", 0, "fail if load+analysis exceed this wall-clock duration (0 = no budget)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: cdpcvet [-list] [-json] [-budget dur] [dir | ./...]\n\nAnalyzers:\n")
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(os.Stderr, "  %-14s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	dir := "."
	if args := flag.Args(); len(args) > 0 {
		// Accept the idiomatic "./..." spelling; analysis is whole-module
		// either way.
		dir = strings.TrimSuffix(args[0], "...")
		if dir == "" {
			dir = "."
		}
	}

	// The budget clock covers load + analysis only, not the go toolchain
	// compiling cdpcvet itself — "go run" cost is not an analysis
	// regression.
	start := time.Now()
	prog, err := lint.Load(dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cdpcvet: %v\n", err)
		os.Exit(2)
	}
	diags := lint.RunAnalyzers(prog, lint.Analyzers())
	elapsed := time.Since(start)

	if *asJSON {
		out := make([]jsonDiag, 0, len(diags))
		for _, d := range diags {
			out = append(out, jsonDiag{
				Analyzer: d.Analyzer,
				File:     d.Pos.Filename,
				Line:     d.Pos.Line,
				Column:   d.Pos.Column,
				Message:  d.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(os.Stderr, "cdpcvet: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}

	failed := false
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "cdpcvet: %d finding(s)\n", len(diags))
		failed = true
	}
	if *budget > 0 && elapsed > *budget {
		fmt.Fprintf(os.Stderr, "cdpcvet: analysis took %v, over the %v budget\n",
			elapsed.Round(time.Millisecond), *budget)
		failed = true
	}
	if failed {
		os.Exit(1)
	}
}
