// Command cdpcd is the simulation-as-a-service daemon: a long-running
// HTTP/JSON server that accepts simulation jobs (bundled workload or
// custom affine program, machine config, mapping policy) and executes
// them on the memoizing parallel scheduler, so repeated specs are
// served from cache and independent jobs fan out across a bounded
// worker pool.
//
// Usage:
//
//	cdpcd                               # listen on :8080
//	cdpcd -addr 127.0.0.1:0             # pick a free port (printed on stdout)
//	cdpcd -workers 4 -queue 32          # 4 simulators, 32 queued jobs max
//	cdpcd -timeout 30s -drain 60s       # per-job cap, shutdown drain deadline
//
// Endpoints (full reference in API.md): POST /v1/simulate (blocking),
// POST /v1/jobs + GET /v1/jobs/{id} (async), DELETE /v1/jobs/{id}
// (cancel), GET /v1/workloads, /metrics, /healthz, /readyz. A full
// queue answers 429 with Retry-After; SIGINT/SIGTERM drains in-flight
// jobs before exiting.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/arch"
	"repro/internal/server"
)

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address (host:port; port 0 picks a free port)")
		workers = flag.Int("workers", 0, "simulation worker-pool size (0 = GOMAXPROCS)")
		queueN  = flag.Int("queue", server.DefaultQueueCapacity, "bounded admission-queue capacity; a full queue answers 429")
		timeout = flag.Duration("timeout", server.DefaultJobTimeout, "default per-job simulation deadline (requests may lower it via timeout_ms)")
		maxTO   = flag.Duration("max-timeout", server.DefaultMaxTimeout, "upper clamp on request-supplied timeouts")
		drain   = flag.Duration("drain", 30*time.Second, "graceful-shutdown drain deadline for accepted jobs")
		quiet   = flag.Bool("quiet", false, "suppress per-request log lines")
		topoF   = flag.String("topology-file", "", "load a cache topology from a JSON file and add it to the selectable set (requests pick it by name)")
	)
	flag.Parse()

	logger := log.New(os.Stderr, "cdpcd ", log.LstdFlags|log.Lmsgprefix)
	if *topoF != "" {
		topo, err := arch.LoadTopologyFile(*topoF)
		if err != nil {
			logger.Fatalf("-topology-file: %v", err)
		}
		if err := arch.RegisterTopology(topo); err != nil {
			logger.Fatalf("-topology-file: %v", err)
		}
		logger.Printf("registered topology %q from %s", topo.Name, *topoF)
	}
	var reqLog *log.Logger
	if !*quiet {
		reqLog = logger
	}
	srv := server.New(server.Config{
		Workers:        *workers,
		QueueCapacity:  *queueN,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTO,
		Log:            reqLog,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Fatalf("listen %s: %v", *addr, err)
	}
	// The bound address goes to stdout so scripts (scripts/smoke,
	// verify.sh) can discover a port-0 binding.
	fmt.Printf("cdpcd listening on http://%s\n", listenHost(ln.Addr()))
	os.Stdout.Sync() //nolint:errcheck

	hs := &http.Server{Handler: srv.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- hs.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case got := <-sig:
		logger.Printf("received %v; draining (deadline %s)", got, *drain)
	case err := <-errCh:
		logger.Fatalf("serve: %v", err)
	}

	// Drain: stop accepting, let accepted jobs finish, then close the
	// HTTP listener. Job drain comes first so status polls keep working
	// while jobs complete.
	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		logger.Printf("drain incomplete: %v", err)
		hs.Close() //nolint:errcheck
		os.Exit(1)
	}
	httpCtx, cancelHTTP := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancelHTTP()
	hs.Shutdown(httpCtx) //nolint:errcheck
	logger.Printf("drained cleanly")
}

// listenHost renders a bound address dialable: a wildcard host
// (":8080") is rewritten to 127.0.0.1.
func listenHost(a net.Addr) string {
	tcp, ok := a.(*net.TCPAddr)
	if !ok {
		return a.String()
	}
	if tcp.IP == nil || tcp.IP.IsUnspecified() {
		return fmt.Sprintf("127.0.0.1:%d", tcp.Port)
	}
	return a.String()
}
