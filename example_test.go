package repro_test

import (
	"fmt"

	repro "repro"
)

// Example runs the paper's headline comparison — page coloring vs CDPC
// on the tomcatv analog at 16 processors — through the one-call API.
func Example() {
	base, err := repro.Run(repro.Spec{Workload: "tomcatv", CPUs: 16, Variant: repro.PageColoring})
	if err != nil {
		panic(err)
	}
	cdpc, err := repro.Run(repro.Spec{Workload: "tomcatv", CPUs: 16, Variant: repro.CDPC})
	if err != nil {
		panic(err)
	}
	fmt.Printf("CDPC eliminates conflicts: %v\n", cdpc.Speedup(base) > 2)
	fmt.Printf("CDPC relieves the bus: %v\n", cdpc.BusUtilization() < base.BusUtilization())
	// Output:
	// CDPC eliminates conflicts: true
	// CDPC relieves the bus: true
}

// ExampleComputeHints shows the three-stage CDPC pipeline of §5 on a
// hand-built program: compile (layout + summaries), compute hints, and
// inspect the per-page colors the OS would receive.
func ExampleComputeHints() {
	const elems = 8 * 512 // 8 pages
	a := &repro.Array{Name: "a", ElemSize: 8, Elems: elems}
	b := &repro.Array{Name: "b", ElemSize: 8, Elems: elems}
	prog := &repro.Program{
		Name:   "example",
		Arrays: []*repro.Array{a, b},
		Phases: []*repro.Phase{{Name: "main", Occurrences: 1, Nests: []*repro.Nest{{
			Name: "sweep", Parallel: true, Iterations: 8, InnerIters: 512,
			Accesses: []repro.Access{
				{Array: a, Kind: repro.Load, OuterStride: 512, InnerStride: 1},
				{Array: b, Kind: repro.Store, OuterStride: 512, InnerStride: 1},
			},
			WorkPerIter: 4,
			Sched:       repro.Schedule{Kind: repro.Even},
		}}}},
	}
	machine := repro.BaseMachine(2, 64) // 2 CPUs, 16KB cache, 4 colors
	summary, err := repro.Compile(prog, machine, repro.CompileOptions{})
	if err != nil {
		panic(err)
	}
	hints, err := repro.ComputeHints(prog, summary, machine)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%d pages hinted across %d colors\n", len(hints.Order), hints.NumColors)
	fmt.Printf("first page color: %d\n", hints.Colors[hints.Order[0]])
	// Output:
	// 17 pages hinted across 4 colors
	// first page color: 0
}

// ExampleWorkloads lists the bundled SPEC95fp analogs.
func ExampleWorkloads() {
	for _, w := range repro.Workloads()[:3] {
		fmt.Printf("%s (%.0f MB in the paper)\n", w.Name, w.PaperDataMB)
	}
	// Output:
	// tomcatv (14 MB in the paper)
	// swim (14 MB in the paper)
	// su2cor (23 MB in the paper)
}
