// Prefetchstudy reproduces the §6.2 complementarity decomposition: on
// tomcatv with four processors the paper measures CDPC alone at +29%,
// prefetching alone at +24%, and the two combined at +88% — each
// technique makes the other work better. This example runs the four
// configurations and reports the same decomposition.
package main

import (
	"fmt"
	"log"

	repro "repro"
)

func main() {
	const cpus = 4
	type cfg struct {
		label    string
		variant  repro.Variant
		prefetch bool
	}
	configs := []cfg{
		{"page coloring (baseline)", repro.PageColoring, false},
		{"CDPC only", repro.CDPC, false},
		{"prefetching only", repro.PageColoring, true},
		{"CDPC + prefetching", repro.CDPC, true},
	}

	fmt.Printf("tomcatv on %d CPUs — CDPC and prefetching are complementary (§6.2)\n\n", cpus)
	var base *repro.Result
	for _, c := range configs {
		res, err := repro.Run(repro.Spec{
			Workload: "tomcatv",
			CPUs:     cpus,
			Variant:  c.variant,
			Prefetch: c.prefetch,
		})
		if err != nil {
			log.Fatalf("%s: %v", c.label, err)
		}
		if base == nil {
			base = res
		}
		extra := ""
		if pf := res.Total(func(s *repro.CPUStats) uint64 { return s.PrefetchesIssued }); pf > 0 {
			extra = fmt.Sprintf("  (%d prefetches, %d dropped on TLB miss)",
				pf, res.Total(func(s *repro.CPUStats) uint64 { return s.PrefetchesDropped }))
		}
		fmt.Printf("  %-26s %8.1f Mcycles  speedup %+5.1f%%%s\n",
			c.label, float64(res.WallCycles)/1e6, 100*(res.Speedup(base)-1), extra)
	}
	fmt.Println("\npaper (tomcatv, 4 CPUs): CDPC +29%, prefetching +24%, combined +88%")
	fmt.Println("note: prefetching alone can LOSE here because the page-coloring baseline")
	fmt.Println("displaces prefetched lines before use and doubles bus traffic — the exact")
	fmt.Println("mechanism §6.2 gives for why CDPC improves prefetching. The combined run")
	fmt.Println("being far better than the sum of parts is the paper's complementarity claim.")
}
