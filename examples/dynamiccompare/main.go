// Dynamiccompare runs the extension study the paper leaves open (§2.1):
// how does a dynamic page recoloring policy — reactive conflict
// detection via miss counters, page moves with copy and TLB-shootdown
// costs — fare against CDPC's compile-time placement on a multiprocessor?
package main

import (
	"fmt"
	"log"

	repro "repro"
)

func main() {
	const cpus = 8
	for _, workload := range []string{"tomcatv", "swim"} {
		base, err := repro.Run(repro.Spec{Workload: workload, CPUs: cpus, Variant: repro.PageColoring})
		if err != nil {
			log.Fatal(err)
		}
		dyn, err := repro.Run(repro.Spec{Workload: workload, CPUs: cpus, Variant: repro.DynamicRecoloring})
		if err != nil {
			log.Fatal(err)
		}
		cdpc, err := repro.Run(repro.Spec{Workload: workload, CPUs: cpus, Variant: repro.CDPC})
		if err != nil {
			log.Fatal(err)
		}
		recolors := dyn.Total(func(s *repro.CPUStats) uint64 { return s.Recolorings })
		fmt.Printf("%s on %d CPUs:\n", workload, cpus)
		fmt.Printf("  page coloring      %8.1f Mcycles (baseline)\n", float64(base.WallCycles)/1e6)
		fmt.Printf("  dynamic recoloring %8.1f Mcycles (%.2fx, %d weighted page moves)\n",
			float64(dyn.WallCycles)/1e6, dyn.Speedup(base), recolors)
		fmt.Printf("  CDPC               %8.1f Mcycles (%.2fx)\n\n",
			float64(cdpc.WallCycles)/1e6, cdpc.Speedup(base))
	}
	fmt.Println("The paper dismissed dynamic policies for multiprocessors on cost grounds")
	fmt.Println("(§2.1); the reactive policy's copies, shootdowns and misplaced guesses")
	fmt.Println("confirm it: compile-time knowledge wins.")
}
