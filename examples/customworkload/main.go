// Customworkload shows how to describe your own parallel program in the
// loop-nest IR and compare every page mapping policy on it. The program
// is a red/black Gauss-Seidel-style solver with four arrays sized to
// collide in color space under page coloring — the situation CDPC is
// built for.
package main

import (
	"fmt"
	"log"

	repro "repro"
)

func main() {
	machine := repro.BaseMachine(8, repro.DefaultScale)

	// Four arrays, each exactly one external-cache span, so all four
	// start on the same page color under the OS's page coloring policy.
	span := machine.Topo().LLC().TotalSize()
	elems := span / 8
	const unitCols = 64
	iters := elems / unitCols

	build := func() *repro.Program {
		grid := &repro.Array{Name: "grid", ElemSize: 8, Elems: elems}
		rhs := &repro.Array{Name: "rhs", ElemSize: 8, Elems: elems}
		res := &repro.Array{Name: "res", ElemSize: 8, Elems: elems}
		tmp := &repro.Array{Name: "tmp", ElemSize: 8, Elems: elems}

		relax := &repro.Nest{
			Name:       "relax",
			Parallel:   true,
			Iterations: iters,
			InnerIters: unitCols,
			Accesses: []repro.Access{
				{Array: grid, Kind: repro.Load, OuterStride: unitCols, InnerStride: 1, Offset: -unitCols},
				{Array: grid, Kind: repro.Load, OuterStride: unitCols, InnerStride: 1},
				{Array: grid, Kind: repro.Load, OuterStride: unitCols, InnerStride: 1, Offset: unitCols},
				{Array: rhs, Kind: repro.Load, OuterStride: unitCols, InnerStride: 1},
				{Array: tmp, Kind: repro.Store, OuterStride: unitCols, InnerStride: 1},
			},
			WorkPerIter: 20,
			Sched:       repro.Schedule{Kind: repro.Even},
		}
		residual := &repro.Nest{
			Name:       "residual",
			Parallel:   true,
			Iterations: iters,
			InnerIters: unitCols,
			Accesses: []repro.Access{
				{Array: tmp, Kind: repro.Load, OuterStride: unitCols, InnerStride: 1},
				{Array: rhs, Kind: repro.Load, OuterStride: unitCols, InnerStride: 1},
				{Array: res, Kind: repro.Store, OuterStride: unitCols, InnerStride: 1},
				{Array: grid, Kind: repro.Store, OuterStride: unitCols, InnerStride: 1},
			},
			WorkPerIter: 16,
			Sched:       repro.Schedule{Kind: repro.Even},
		}
		return &repro.Program{
			Name:   "redblack",
			Arrays: []*repro.Array{grid, rhs, res, tmp},
			Phases: []*repro.Phase{{Name: "solve", Occurrences: 50, Nests: []*repro.Nest{relax, residual}}},
		}
	}

	type config struct {
		label string
		run   func() (*repro.Result, error)
	}
	configs := []config{
		{"page coloring", func() (*repro.Result, error) {
			p := build()
			if _, err := repro.Compile(p, machine, repro.CompileOptions{}); err != nil {
				return nil, err
			}
			return repro.Simulate(p, machine, repro.SimOptions{Policy: repro.PolicyPageColoring})
		}},
		{"bin hopping", func() (*repro.Result, error) {
			p := build()
			if _, err := repro.Compile(p, machine, repro.CompileOptions{}); err != nil {
				return nil, err
			}
			return repro.Simulate(p, machine, repro.SimOptions{Policy: repro.PolicyBinHopping})
		}},
		{"CDPC (kernel hints)", func() (*repro.Result, error) {
			p := build()
			s, err := repro.Compile(p, machine, repro.CompileOptions{})
			if err != nil {
				return nil, err
			}
			h, err := repro.ComputeHints(p, s, machine)
			if err != nil {
				return nil, err
			}
			return repro.Simulate(p, machine, repro.SimOptions{Policy: repro.PolicyPageColoring, Hints: h})
		}},
		{"CDPC (touch order)", func() (*repro.Result, error) {
			p := build()
			s, err := repro.Compile(p, machine, repro.CompileOptions{})
			if err != nil {
				return nil, err
			}
			h, err := repro.ComputeHints(p, s, machine)
			if err != nil {
				return nil, err
			}
			return repro.Simulate(p, machine, repro.SimOptions{Policy: repro.PolicyBinHopping, Hints: h, TouchOrder: true})
		}},
	}

	fmt.Printf("red/black solver, 4 span-sized arrays, 8 CPUs, %d colors\n\n", machine.Colors())
	var baseline *repro.Result
	for _, c := range configs {
		res, err := c.run()
		if err != nil {
			log.Fatalf("%s: %v", c.label, err)
		}
		if baseline == nil {
			baseline = res
		}
		conflicts := res.Total(func(s *repro.CPUStats) uint64 { return s.ConflictMisses })
		fmt.Printf("  %-20s %8.1f Mcycles  MCPI %.2f  conflicts %-8d speedup %.2fx\n",
			c.label, float64(res.WallCycles)/1e6, res.MCPI(), conflicts, res.Speedup(baseline))
	}
}
