// Algorithmwalk reproduces the paper's Figure 4: a step-by-step trace of
// the CDPC algorithm on a small two-array, two-CPU example. It prints the
// uniform access segments (step 1), the ordered access sets (step 2), the
// segment order within each set (step 3), and the final cyclic page
// ordering with round-robin colors (steps 4–5), showing how the two
// arrays' starting pages end up on different colors.
package main

import (
	"fmt"
	"log"
	"math/bits"

	repro "repro"
)

func main() {
	// Two arrays of 8 pages each, partitioned across 2 CPUs, accessed
	// together with a +1 boundary shift — the shape of Figure 4.
	const (
		pages    = 8
		pageSize = 4096
		elems    = pages * pageSize / 8
		iters    = 16
		unit     = elems / iters
	)
	a := &repro.Array{Name: "A", ElemSize: 8, Elems: elems}
	b := &repro.Array{Name: "B", ElemSize: 8, Elems: elems}
	nest := &repro.Nest{
		Name:       "sweep",
		Parallel:   true,
		Iterations: iters,
		InnerIters: unit,
		Accesses: []repro.Access{
			{Array: a, Kind: repro.Load, OuterStride: unit, InnerStride: 1},
			{Array: a, Kind: repro.Load, OuterStride: unit, InnerStride: 1, Offset: 1},
			{Array: b, Kind: repro.Store, OuterStride: unit, InnerStride: 1},
		},
		WorkPerIter: 2,
		Sched:       repro.Schedule{Kind: repro.Even},
	}
	prog := &repro.Program{
		Name:   "fig4",
		Arrays: []*repro.Array{a, b},
		Phases: []*repro.Phase{{Name: "main", Occurrences: 1, Nests: []*repro.Nest{nest}}},
	}

	machine := repro.BaseMachine(2, 64) // tiny machine: 16KB cache, 4 colors
	summary, err := repro.Compile(prog, machine, repro.CompileOptions{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Step 0 — compiler summary (§5.1):")
	for _, ps := range summary.Partitions {
		fmt.Printf("  partition: array %s, unit %d elems, %d iterations, %s\n",
			ps.Array.Name, ps.UnitElems, ps.Iterations, ps.Sched.Kind)
	}
	for _, c := range summary.Comms {
		fmt.Printf("  communication: array %s, shift %+d elements\n", c.Array.Name, c.OffsetElems)
	}
	for _, g := range summary.Groups {
		fmt.Printf("  group access: %s with %s\n", g.A, g.B)
	}

	hints, err := repro.ComputeHints(prog, summary, machine)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nSteps 1-3 — uniform access segments, in final placement order:")
	for i, seg := range hints.Segments {
		fmt.Printf("  segment %d: array %s pages [%d,%d), CPUs %s\n",
			i, seg.Array.Name, seg.LoVPN, seg.HiVPN, cpuSet(seg.CPUSet))
	}

	fmt.Printf("\nSteps 4-5 — page order and colors (%d colors):\n", hints.NumColors)
	for i, vpn := range hints.Order {
		fmt.Printf("  position %2d: page %3d -> color %d\n", i, vpn, hints.Colors[vpn])
	}

	aStart := a.Base / pageSize
	bStart := b.Base / pageSize
	fmt.Printf("\nstarting pages: %s page %d -> color %d, %s page %d -> color %d\n",
		a.Name, aStart, hints.Colors[aStart], b.Name, bStart, hints.Colors[bStart])
	if hints.Colors[aStart] == hints.Colors[bStart] {
		fmt.Println("!! group-accessed starts share a color (step 4 should prevent this)")
	} else {
		fmt.Println("group-accessed starting locations map to different colors, as in Figure 4(c).")
	}
}

func cpuSet(mask uint64) string {
	s := "{"
	first := true
	for mask != 0 {
		cpu := bits.TrailingZeros64(mask)
		if !first {
			s += ","
		}
		s += fmt.Sprint(cpu)
		first = false
		mask &^= 1 << uint(cpu)
	}
	return s + "}"
}
