// Quickstart: run the paper's headline comparison on one bundled
// workload — page coloring versus compiler-directed page coloring on an
// 8-CPU machine — using only the public API.
package main

import (
	"fmt"
	"log"

	repro "repro"
)

func main() {
	meta, err := repro.WorkloadByName("tomcatv")
	if err != nil {
		log.Fatal(err)
	}
	machine := repro.BaseMachine(8, repro.DefaultScale)

	// Baseline: IRIX-style page coloring.
	baseProg := meta.Build(repro.DefaultScale)
	if _, err := repro.Compile(baseProg, machine, repro.CompileOptions{}); err != nil {
		log.Fatal(err)
	}
	base, err := repro.Simulate(baseProg, machine, repro.SimOptions{Policy: repro.PolicyPageColoring})
	if err != nil {
		log.Fatal(err)
	}

	// CDPC: compile, compute hints from the access-pattern summary, and
	// hand them to the simulated OS through the madvise-like interface.
	prog := meta.Build(repro.DefaultScale)
	summary, err := repro.Compile(prog, machine, repro.CompileOptions{})
	if err != nil {
		log.Fatal(err)
	}
	hints, err := repro.ComputeHints(prog, summary, machine)
	if err != nil {
		log.Fatal(err)
	}
	cdpc, err := repro.Simulate(prog, machine, repro.SimOptions{
		Policy: repro.PolicyPageColoring,
		Hints:  hints,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("tomcatv on 8 CPUs (%d page colors)\n", machine.Colors())
	fmt.Printf("  page coloring: %8.1f Mcycles  MCPI %.2f  bus %.0f%%\n",
		float64(base.WallCycles)/1e6, base.MCPI(), 100*base.BusUtilization())
	fmt.Printf("  CDPC:          %8.1f Mcycles  MCPI %.2f  bus %.0f%%\n",
		float64(cdpc.WallCycles)/1e6, cdpc.MCPI(), 100*cdpc.BusUtilization())
	fmt.Printf("  speedup:       %.2fx (%d of %d page hints honored)\n",
		cdpc.Speedup(base), cdpc.HonoredHints, cdpc.HintedFaults)
}
