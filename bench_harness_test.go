// Scheduler benchmarks: serial vs pooled execution of a full experiment
// through the harness scheduler, plus a machine-readable dump
// (BENCH_harness.json) for tracking across commits.
package repro_test

import (
	"encoding/json"
	"os"
	"testing"

	"repro/internal/harness"
)

// fig6QuickSims is the number of simulations one quick Figure 6 render
// performs: 3 workloads x 2 CPU counts x 2 variants.
const fig6QuickSims = 12

// BenchmarkParallelExperiments compares a fully serial Figure 6 (quick)
// against the same experiment on the memoizing worker pool. Each
// iteration uses a fresh scheduler so memoization across iterations
// cannot flatter the parallel number; within an iteration the scheduler
// behaves exactly as cmd/experiments does.
func BenchmarkParallelExperiments(b *testing.B) {
	e, err := harness.ExperimentByID("fig6")
	if err != nil {
		b.Fatal(err)
	}
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := e.Run(harness.ExpOptions{Quick: true}); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(fig6QuickSims*b.N)/b.Elapsed().Seconds(), "sims/sec")
	})
	b.Run("parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			opts := harness.ExpOptions{Quick: true, Runner: harness.NewScheduler(0)}
			if _, err := e.Run(opts); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(fig6QuickSims*b.N)/b.Elapsed().Seconds(), "sims/sec")
	})
}

// harnessBench is the schema of BENCH_harness.json.
type harnessBench struct {
	Benchmark          string  `json:"benchmark"`
	Workers            int     `json:"workers"`
	SimsPerOp          int     `json:"sims_per_op"`
	SerialNsPerOp      int64   `json:"serial_ns_per_op"`
	ParallelNsPerOp    int64   `json:"parallel_ns_per_op"`
	SerialSimsPerSec   float64 `json:"serial_sims_per_sec"`
	ParallelSimsPerSec float64 `json:"parallel_sims_per_sec"`
	// Speedup is serial/parallel wall time. Omitted when the pool has a
	// single worker: a 1-worker "parallel" run is the serial path plus
	// scheduler overhead, and recording its ratio as a speedup would
	// bake a meaningless ~0.97x into the regression baseline.
	Speedup float64 `json:"speedup,omitempty"`
	// SimThroughputNsPerOp is one BenchmarkSimulatorThroughput iteration
	// (tomcatv on 1 CPU through the full simulator). scripts/verify.sh
	// re-times that benchmark and fails if it regresses more than 25%
	// against this baseline.
	SimThroughputNsPerOp int64 `json:"sim_throughput_ns_per_op"`
	// SampledThroughputNsPerOp is the same run in phase-sampled mode
	// (BenchmarkSimulatorThroughputSampled); the issue budget is >=10x
	// over SimThroughputNsPerOp, and verify.sh guards it against >25%
	// regression like the full-fidelity number.
	SampledThroughputNsPerOp int64 `json:"sampled_throughput_ns_per_op"`
	// TraceDecodeNsPerRef is the per-reference cost of decoding and
	// draining the BenchmarkTraceDecode fixture — the input path of
	// trace-driven simulation (DESIGN.md §15.2). verify.sh re-times the
	// benchmark's ns/ref metric and fails on a >25% regression.
	TraceDecodeNsPerRef float64 `json:"trace_decode_ns_per_ref"`
}

// TestRecordedSampledSpeedup asserts the issue's throughput budget on
// the recorded baselines: phase-sampled simulation must be at least
// 10x faster than full fidelity (both numbers come from the same
// `make bench` run on the same machine, so the ratio is
// noise-resistant in a way a live re-timing would not be). The <2%
// accuracy half of the budget is TestSampledFidelity's.
func TestRecordedSampledSpeedup(t *testing.T) {
	data, err := os.ReadFile("BENCH_harness.json")
	if err != nil {
		t.Fatalf("reading baseline: %v (run make bench)", err)
	}
	var rec harnessBench
	if err := json.Unmarshal(data, &rec); err != nil {
		t.Fatal(err)
	}
	if rec.SimThroughputNsPerOp == 0 || rec.SampledThroughputNsPerOp == 0 {
		t.Fatal("BENCH_harness.json lacks throughput baselines; run make bench")
	}
	speedup := float64(rec.SimThroughputNsPerOp) / float64(rec.SampledThroughputNsPerOp)
	t.Logf("recorded sampled speedup: %.1fx (full %d ns/op, sampled %d ns/op)",
		speedup, rec.SimThroughputNsPerOp, rec.SampledThroughputNsPerOp)
	if speedup < 10 {
		t.Errorf("sampled mode is %.1fx faster than full fidelity, want >= 10x", speedup)
	}
}

// TestWriteHarnessBench times serial vs pooled Figure 6 (quick) and
// writes BENCH_harness.json next to the module root. Gated behind
// WRITE_BENCH=1 (the Makefile `bench` target sets it) so the regular
// test suite stays fast.
func TestWriteHarnessBench(t *testing.T) {
	if os.Getenv("WRITE_BENCH") == "" {
		t.Skip("set WRITE_BENCH=1 to time the scheduler and write BENCH_harness.json")
	}
	e, err := harness.ExperimentByID("fig6")
	if err != nil {
		t.Fatal(err)
	}
	serial := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := e.Run(harness.ExpOptions{Quick: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
	// Record the worker count the pooled runs actually use, not a guess
	// at it: NewScheduler(0) sizes to GOMAXPROCS at construction time.
	workers := harness.NewScheduler(0).Workers()
	pooled := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			opts := harness.ExpOptions{Quick: true, Runner: harness.NewScheduler(0)}
			if _, err := e.Run(opts); err != nil {
				b.Fatal(err)
			}
		}
	})
	throughput := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := harness.Run(harness.Spec{Workload: "tomcatv", CPUs: 1}); err != nil {
				b.Fatal(err)
			}
		}
	})
	sampled := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := harness.Run(harness.Spec{Workload: "tomcatv", CPUs: 1, Sampled: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
	traceDecode := testing.Benchmark(BenchmarkTraceDecode)
	perSec := func(r testing.BenchmarkResult) float64 {
		return float64(fig6QuickSims) / (float64(r.NsPerOp()) / 1e9)
	}
	out := harnessBench{
		Benchmark:                "fig6-quick",
		Workers:                  workers,
		SimsPerOp:                fig6QuickSims,
		SerialNsPerOp:            serial.NsPerOp(),
		ParallelNsPerOp:          pooled.NsPerOp(),
		SerialSimsPerSec:         perSec(serial),
		ParallelSimsPerSec:       perSec(pooled),
		SimThroughputNsPerOp:     throughput.NsPerOp(),
		SampledThroughputNsPerOp: sampled.NsPerOp(),
		TraceDecodeNsPerRef:      float64(traceDecode.NsPerOp()) / benchTraceRefs,
	}
	if workers > 1 {
		out.Speedup = float64(serial.NsPerOp()) / float64(pooled.NsPerOp())
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_harness.json", append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("serial %v/op, parallel %v/op, speedup %.2fx on %d workers; throughput full %v/op, sampled %v/op (%.1fx)",
		serial.NsPerOp(), pooled.NsPerOp(), out.Speedup, out.Workers,
		throughput.NsPerOp(), sampled.NsPerOp(),
		float64(throughput.NsPerOp())/float64(sampled.NsPerOp()))
}
