// Benchmarks regenerating every table and figure of the paper's
// evaluation, plus ablations of the design choices called out in
// DESIGN.md. Each experiment benchmark runs the same code path as
// cmd/experiments; quick mode keeps `go test -bench=.` bounded while the
// command reproduces the full sweeps.
//
// Reported custom metrics carry the headline results into the benchmark
// output (e.g. cdpc-speedup-x on the Figure 6 benchmark).
package repro_test

import (
	"testing"

	repro "repro"
	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// quickOpts bounds experiment benchmarks: 2 CPU counts, 3 workloads.
var quickOpts = harness.ExpOptions{Quick: true}

func benchExperiment(b *testing.B, id string) string {
	e, err := harness.ExperimentByID(id)
	if err != nil {
		b.Fatal(err)
	}
	var out string
	for i := 0; i < b.N; i++ {
		out, err = e.Run(quickOpts)
		if err != nil {
			b.Fatal(err)
		}
	}
	return out
}

// BenchmarkTable1DataSetSizes regenerates Table 1.
func BenchmarkTable1DataSetSizes(b *testing.B) {
	benchExperiment(b, "table1")
}

// BenchmarkFig2Characterization regenerates Figure 2's four views.
func BenchmarkFig2Characterization(b *testing.B) {
	benchExperiment(b, "fig2")
}

// BenchmarkFig3AccessPatterns regenerates Figure 3 (virtual order).
func BenchmarkFig3AccessPatterns(b *testing.B) {
	benchExperiment(b, "fig3")
}

// BenchmarkFig5AccessPatternsCDPC regenerates Figure 5 (coloring order).
func BenchmarkFig5AccessPatternsCDPC(b *testing.B) {
	benchExperiment(b, "fig5")
}

// BenchmarkFig6CDPCImpact regenerates Figure 6 and reports the tomcatv
// 16-CPU CDPC speedup as a metric.
func BenchmarkFig6CDPCImpact(b *testing.B) {
	for i := 0; i < b.N; i++ {
		base, err := harness.Run(harness.Spec{Workload: "tomcatv", CPUs: 16, Variant: harness.PageColoring})
		if err != nil {
			b.Fatal(err)
		}
		cdpc, err := harness.Run(harness.Spec{Workload: "tomcatv", CPUs: 16, Variant: harness.CDPC})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(cdpc.Speedup(base), "cdpc-speedup-x")
	}
}

// BenchmarkFig7Associativity regenerates Figure 7 (2-way and 4MB-class
// caches).
func BenchmarkFig7Associativity(b *testing.B) {
	benchExperiment(b, "fig7")
}

// BenchmarkFig8Prefetching regenerates Figure 8 (CDPC + prefetching).
func BenchmarkFig8Prefetching(b *testing.B) {
	benchExperiment(b, "fig8")
}

// BenchmarkFig9Alpha regenerates Figure 9 (AlphaServer validation).
func BenchmarkFig9Alpha(b *testing.B) {
	benchExperiment(b, "fig9")
}

// BenchmarkTable2SpecRatio regenerates Table 2 and the headline
// percentage improvements.
func BenchmarkTable2SpecRatio(b *testing.B) {
	benchExperiment(b, "table2")
}

// BenchmarkHintComputation measures the pure CDPC algorithm (§5.2) on
// the largest workload — the cost an application pays at start-up.
func BenchmarkHintComputation(b *testing.B) {
	prog, sum, cfg, err := harness.Prepare(harness.Spec{Workload: "wave5", CPUs: 16})
	if err != nil {
		b.Fatal(err)
	}
	params := core.Params{NumCPUs: cfg.NumCPUs, NumColors: cfg.Colors(), PageSize: cfg.PageSize}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.ComputeHints(prog, sum, params); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompilerSummarize measures the §5.1 summary extraction.
func BenchmarkCompilerSummarize(b *testing.B) {
	meta, err := workloads.ByName("swim")
	if err != nil {
		b.Fatal(err)
	}
	prog := meta.Build(workloads.DefaultScale)
	cfg := repro.BaseMachine(8, workloads.DefaultScale)
	if err := compiler.Layout(prog, compiler.DefaultLayout(cfg.L2.LineSize, cfg.L1D.Size, cfg.PageSize)); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		compiler.Summarize(prog)
	}
}

// BenchmarkSimulatorThroughput measures raw simulation speed
// (references per second) on a uniprocessor tomcatv run. Compared
// against BenchmarkSimulatorThroughputObserved, it also guards the
// observability layer's disabled-path overhead (untaken nil checks
// only; the issue budget is <2%).
func BenchmarkSimulatorThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := harness.Run(harness.Spec{Workload: "tomcatv", CPUs: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulatorThroughputSampled is the same uniprocessor tomcatv
// run under phase-sampled execution — representative windows with
// functional warm-up instead of the full trace. The issue budget is
// ≥10x over the recorded full-fidelity baseline at <2% MCPI error
// (asserted by TestSampledFidelity and the verify.sh smoke run).
func BenchmarkSimulatorThroughputSampled(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := harness.Run(harness.Spec{Workload: "tomcatv", CPUs: 1, Sampled: true})
		if err != nil {
			b.Fatal(err)
		}
		if r.Fidelity != sim.FidelitySampled {
			b.Fatalf("fidelity = %q, want %q", r.Fidelity, sim.FidelitySampled)
		}
	}
}

// BenchmarkTraceDecode measures binary-trace replay speed: decode a
// CDPCTRC1 image and drain every per-CPU stream. This is the input
// path of trace-driven simulation (DESIGN.md §15.2), so it reports
// ns/ref alongside the per-image ns/op; verify.sh guards the recorded
// trace_decode_ns_per_ref baseline in BENCH_harness.json against
// regression.
func BenchmarkTraceDecode(b *testing.B) {
	data, refs := benchTraceImage(b)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := trace.DecodeBytes(data)
		if err != nil {
			b.Fatal(err)
		}
		var r trace.Ref
		var n uint64
		for cpu := 0; cpu < f.NumCPUs(); cpu++ {
			s := f.Stream(cpu)
			for s.Next(&r) {
				n++
			}
		}
		if n != refs {
			b.Fatalf("drained %d refs, want %d", n, refs)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(uint64(b.N)*refs), "ns/ref")
}

// benchTraceRefs is the reference count of the benchTraceImage fixture;
// TestWriteHarnessBench divides the per-image decode time by it to
// record trace_decode_ns_per_ref.
const benchTraceRefs = benchTraceCPUs * benchTracePerCPU

const benchTraceCPUs, benchTracePerCPU = 4, 1 << 16

// benchTraceImage encodes a deterministic 4-CPU trace (mixed strides,
// sizes and work so every encoder feature is on the decode path).
func benchTraceImage(b *testing.B) ([]byte, uint64) {
	b.Helper()
	const ncpus, perCPU = benchTraceCPUs, benchTracePerCPU
	e, err := trace.NewEncoder(ncpus)
	if err != nil {
		b.Fatal(err)
	}
	for cpu := 0; cpu < ncpus; cpu++ {
		addr := uint64(cpu) << 30
		for i := 0; i < perCPU; i++ {
			r := trace.Ref{Kind: trace.Kind(i % 3), VAddr: addr, Size: 8}
			if i%5 == 0 {
				r.Size = 4
			}
			if i%7 == 0 {
				r.Work = uint32(i % 11)
			}
			if err := e.Add(cpu, r); err != nil {
				b.Fatal(err)
			}
			addr += uint64(1 + i%3*64)
			if i%64 == 63 {
				addr -= 4096
			}
		}
	}
	f := e.File()
	return f.AppendBinary(nil), f.TotalRefs()
}

// BenchmarkSimulatorThroughputObserved is the same run with a fresh
// collector and event ring attached — the price of full attribution.
func BenchmarkSimulatorThroughputObserved(b *testing.B) {
	for i := 0; i < b.N; i++ {
		col := obs.NewCollector(obs.Options{Tracer: obs.NewRing(1024)})
		if _, err := harness.Run(harness.Spec{Workload: "tomcatv", CPUs: 1, Obs: col}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations (DESIGN.md §5) ---

// ablationSpeedup runs tomcatv@16 CDPC with the given algorithm options
// and reports its speedup over page coloring.
func ablationSpeedup(b *testing.B, opts core.Options) {
	for i := 0; i < b.N; i++ {
		base, err := harness.Run(harness.Spec{Workload: "tomcatv", CPUs: 16, Variant: harness.PageColoring})
		if err != nil {
			b.Fatal(err)
		}
		cdpc, err := harness.Run(harness.Spec{Workload: "tomcatv", CPUs: 16, Variant: harness.CDPC, CDPCOptions: opts})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(cdpc.Speedup(base), "speedup-x")
	}
}

// BenchmarkAblationFullAlgorithm is the reference point for the other
// ablations.
func BenchmarkAblationFullAlgorithm(b *testing.B) {
	ablationSpeedup(b, core.Options{})
}

// BenchmarkAblationNoCyclicStart disables step 4 (cyclic page ordering
// within segments).
func BenchmarkAblationNoCyclicStart(b *testing.B) {
	ablationSpeedup(b, core.Options{DisableCyclicStart: true})
}

// BenchmarkAblationNoGroupOrdering disables step 3 (group-access
// ordering of segments within a set).
func BenchmarkAblationNoGroupOrdering(b *testing.B) {
	ablationSpeedup(b, core.Options{DisableGroupOrdering: true})
}

// BenchmarkAblationNoSetOrdering disables step 2 (greedy path over
// access sets).
func BenchmarkAblationNoSetOrdering(b *testing.B) {
	ablationSpeedup(b, core.Options{DisableSetOrdering: true})
}

// BenchmarkAblationNoClassification measures the simulation-speed cost
// of the shadow-cache conflict/capacity classifier.
func BenchmarkAblationNoClassification(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := harness.Run(harness.Spec{Workload: "tomcatv", CPUs: 8, DisableClassification: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationWithClassification is the classified counterpart.
func BenchmarkAblationWithClassification(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := harness.Run(harness.Spec{Workload: "tomcatv", CPUs: 8}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtDynamicRecoloring runs the dynamic-recoloring extension
// study (quick form) and reports the dynamic policy's speedup over page
// coloring next to CDPC's.
func BenchmarkExtDynamicRecoloring(b *testing.B) {
	for i := 0; i < b.N; i++ {
		base, err := harness.Run(harness.Spec{Workload: "tomcatv", CPUs: 8, Variant: harness.PageColoring})
		if err != nil {
			b.Fatal(err)
		}
		dyn, err := harness.Run(harness.Spec{Workload: "tomcatv", CPUs: 8, Variant: harness.DynamicRecoloring})
		if err != nil {
			b.Fatal(err)
		}
		cdpc, err := harness.Run(harness.Spec{Workload: "tomcatv", CPUs: 8, Variant: harness.CDPC})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(dyn.Speedup(base), "dynamic-speedup-x")
		b.ReportMetric(cdpc.Speedup(base), "cdpc-speedup-x")
	}
}

// BenchmarkExtPhaseVariation runs the §3.2 representative-window
// validation.
func BenchmarkExtPhaseVariation(b *testing.B) {
	benchExperiment(b, "ext-phases")
}

// BenchmarkExtPadding runs the §2.2 padding-baseline study and reports
// padding's effect under each static policy.
func BenchmarkExtPadding(b *testing.B) {
	benchExperiment(b, "ext-padding")
}

// BenchmarkExtPressure runs the memory-pressure degradation study.
func BenchmarkExtPressure(b *testing.B) {
	benchExperiment(b, "ext-pressure")
}

// BenchmarkAblationImprovedSetOrdering measures the extension's
// cost-minimizing insertion variant of step 2 (DESIGN.md §6).
func BenchmarkAblationImprovedSetOrdering(b *testing.B) {
	ablationSpeedup(b, core.Options{ImprovedSetOrdering: true})
}
