package sim

import (
	"math/rand"
	"testing"
)

// randomStats builds one CPU's stats satisfying every per-CPU audit
// invariant: instructions equal exec cycles, the six miss classes sum
// to L2Misses, remote supplies and bus queueing stay inside their
// bounds, and positive stall buckets carry their witness events.
func randomStats(rng *rand.Rand) CPUStats {
	u := func(n uint64) uint64 { return uint64(rng.Int63n(int64(n))) }
	var s CPUStats
	s.ExecCycles = 1 + u(1e7)
	s.Instructions = s.ExecCycles
	s.ColdMisses = u(1e4)
	s.ConflictMisses = u(1e4)
	s.CapacityMisses = u(1e4)
	s.TrueShareMisses = u(1e3)
	s.FalseShareMisses = u(1e3)
	s.InstMisses = u(1e3)
	s.L2Misses = s.ColdMisses + s.ConflictMisses + s.CapacityMisses +
		s.TrueShareMisses + s.FalseShareMisses + s.InstMisses
	s.StallOnChip = u(1e6)
	s.StallCold = s.ColdMisses * 40
	s.StallConflict = s.ConflictMisses * 40
	s.StallCapacity = s.CapacityMisses * 40
	s.StallTrue = s.TrueShareMisses * 50
	s.StallFalse = s.FalseShareMisses * 50
	s.StallInst = s.InstMisses * 40
	s.StallWriteBuffer = u(1e5)
	if rng.Intn(2) == 0 {
		s.Upgrades = 1 + u(1e3)
		s.StallUpgrade = s.Upgrades * 12
	}
	if rng.Intn(2) == 0 {
		s.PrefetchesIssued = 1 + u(s.Instructions/4+1)
		s.PrefetchesDropped = u(s.Instructions / 4)
		s.PrefetchedHits = u(s.PrefetchesIssued + 1)
		s.StallPrefetch = u(1e4)
	}
	if s.RemoteSupplies = u(s.L2Misses + 1); s.RemoteSupplies > s.L2Misses {
		s.RemoteSupplies = s.L2Misses
	}
	missStall := s.StallCold + s.StallConflict + s.StallCapacity +
		s.StallTrue + s.StallFalse + s.StallInst
	s.BusQueueCycles = u(missStall + 1)
	s.TLBMisses = u(1e4)
	s.PageFaults = u(1e3)
	if rng.Intn(4) == 0 {
		s.Recolorings = u(100)
	}
	if s.TLBMisses+s.PageFaults+s.Recolorings+s.ContextSwitches > 0 {
		s.KernelCycles = u(1e5)
	}
	s.SyncCycles = u(1e5)
	s.ImbalanceCycles = u(1e5)
	s.SequentialCycles = u(1e5)
	s.SuppressedCycles = u(1e5)
	return s
}

// randomResult assembles an audit-clean sampled result: per-CPU stats
// from randomStats, the wall clock set to the slowest CPU with the
// difference booked as barrier imbalance on the others, bus occupancy
// inside the wall, nested hint counts, and sampling counters with at
// least one window and SampledIters <= RepresentedIters.
func randomResult(rng *rand.Rand) *Result {
	ncpu := 1 + rng.Intn(8)
	r := &Result{
		Workload: "random", Machine: "test", Policy: "page-coloring",
		NumCPUs:  ncpu,
		Fidelity: FidelitySampled,
		PerCPU:   make([]CPUStats, ncpu),
	}
	for i := range r.PerCPU {
		r.PerCPU[i] = randomStats(rng)
		if t := r.PerCPU[i].TotalCycles(); t > r.WallCycles {
			r.WallCycles = t
		}
	}
	for i := range r.PerCPU {
		r.PerCPU[i].ImbalanceCycles += r.WallCycles - r.PerCPU[i].TotalCycles()
	}
	u := func(n uint64) uint64 { return uint64(rng.Int63n(int64(n))) }
	r.Bus.DataCycles = u(r.WallCycles/2 + 1)
	r.Bus.WritebackCycles = u(r.WallCycles/4 + 1)
	r.Bus.UpgradeCycles = u(r.WallCycles/4 + 1)
	r.PageFaults = u(1e4)
	r.HintedFaults = u(r.PageFaults + 1)
	r.HonoredHints = u(r.HintedFaults + 1)
	r.WarmupRefs = u(1e6)
	r.SampledWindows = 1 + u(100)
	r.SampledIters = 1 + u(1e4)
	r.RepresentedIters = r.SampledIters + u(1e6)
	return r
}

// TestScalePreservesInvariants is the property test for the sampling
// extrapolator's core contract: scaling any audit-clean result by any
// rational num/den with num >= den >= 1 must leave every conservation
// invariant intact — exact equalities (cycle, miss, instruction
// conservation) as well as the bounds (remote-supply, bus-queue,
// bus-occupancy, hint and sampling accounting). Plain per-counter
// flooring breaks several of these; the generator exercises the
// re-derivation and clamping paths of Result.Scale against 200 random
// results x weights, including identity and large skewed rationals.
func TestScalePreservesInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(20260807))
	for trial := 0; trial < 200; trial++ {
		r := randomResult(rng)
		if vs := r.Audit(); len(vs) != 0 {
			t.Fatalf("trial %d: generator produced violations before Scale: %v", trial, vs)
		}
		den := uint64(1 + rng.Int63n(97))
		num := den + uint64(rng.Int63n(10007))
		if trial%10 == 0 {
			num = den // identity must be a no-op that stays clean
		}
		wall := r.WallCycles
		r.Scale(num, den)
		if vs := r.Audit(); len(vs) != 0 {
			t.Fatalf("trial %d: Scale(%d, %d) broke invariants: %v", trial, num, den, vs)
		}
		if want := wall * num / den; r.WallCycles != want {
			t.Fatalf("trial %d: Scale(%d, %d) wall = %d, want %d", trial, num, den, r.WallCycles, want)
		}
	}
}

// TestScaleRejectsShrinking pins the precondition: windows only ever
// extrapolate up, so a shrinking or zero-denominator weight is a
// programming error, not a data condition.
func TestScaleRejectsShrinking(t *testing.T) {
	for _, bad := range [][2]uint64{{1, 2}, {0, 1}, {5, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Scale(%d, %d) did not panic", bad[0], bad[1])
				}
			}()
			r := &Result{WallCycles: 100}
			r.Scale(bad[0], bad[1])
		}()
	}
}
