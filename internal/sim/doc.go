// Package sim is the machine simulator that stands in for the paper's
// SimOS environment (§3.2): an event-driven, trace-driven model of a
// bus-based shared-memory multiprocessor. Each CPU has virtually indexed
// on-chip caches and a physically indexed external cache; the external
// caches are kept coherent by an invalidation protocol and share a
// finite-bandwidth split-transaction bus. Virtual-to-physical mappings
// come from the vm subsystem, so page mapping policy decides where pages
// land in the external caches — the mechanism the whole paper is about.
//
// The simulator executes an ir.Program's phase structure directly:
// parallel nests run on all CPUs interleaved in global time order
// (a min-clock event loop), sequential and suppressed nests run on the
// master while the slaves' idle time is charged to the matching overhead
// bucket, and per-phase statistics are weighted by phase occurrence
// counts, the paper's representative-execution-window method (§3.2).
package sim
