package sim

import (
	"fmt"
	"strings"

	"repro/internal/bus"
	"repro/internal/ir"
	"repro/internal/obs"
	"repro/internal/vm"
)

// SchedPolicy selects how the space-sharing scheduler multiplexes
// processes onto the machine.
type SchedPolicy int

const (
	// SchedTimeSlice gang-schedules one process at a time across every
	// CPU, round-robin by ascending pid, switching at the first nest
	// boundary after the quantum expires. Context switches flush the
	// virtually indexed on-chip caches, the TLBs and the translation
	// caches; the physically tagged external caches keep their contents,
	// so cross-process interference happens through L2 tags, the shared
	// bus and the shared frame pools — exactly the state a real
	// multiprogrammed machine shares.
	SchedTimeSlice SchedPolicy = iota
	// SchedPartition space-partitions the machine: each process owns a
	// contiguous equal block of CPUs for its whole lifetime. No context
	// switches; processes interfere only through the shared bus and the
	// shared frame allocator (color competition and pressure fallback).
	SchedPartition
)

// String implements fmt.Stringer.
func (s SchedPolicy) String() string {
	switch s {
	case SchedPartition:
		return "partition"
	default:
		return "timeslice"
	}
}

// DefaultQuantum is the time-slice length in cycles when
// SchedOptions.Quantum is zero: long enough that switch costs stay a
// small overhead, short enough that co-runners genuinely interleave
// within a run.
const DefaultQuantum = 500_000

// contextSwitchCycles is the kernel cost of one time-slice switch per
// CPU (state save/restore plus the flush work), charged to the
// incoming process.
const contextSwitchCycles = 1000

// SchedOptions configures the space-sharing scheduler.
type SchedOptions struct {
	Policy SchedPolicy
	// Quantum is the SchedTimeSlice slice length in cycles; 0 uses
	// DefaultQuantum. Slices end at nest boundaries (the machine's
	// natural preemption points), so a long nest can overrun its slice.
	Quantum uint64
}

// ProcessOptions describes one program entering the process table.
type ProcessOptions struct {
	Prog *ir.Program
	// Policy is the process's page-placement policy; nil defaults to
	// page coloring at the machine's color count.
	Policy vm.Policy
	// Hints, if non-nil, is installed through the process's address
	// space before execution (the CDPC path).
	Hints map[uint64]int
	// Domain groups processes into isolation domains when
	// Options.Isolate is on: processes with the same Domain > 0 share a
	// color partition, Domain 0 means "own domain". Ignored (and must be
	// 0 or positive) without Isolate.
	Domain int
}

// Process is one entry of the machine's process table: its own address
// space and placement policy, its own parallel-region counter, and its
// own per-CPU stats bank. All processes draw frames from the machine's
// single shared allocator.
type Process struct {
	Pid  int
	Name string

	as   *vm.AddressSpace
	prog *ir.Program

	// cpus is the CPU gang the process runs on: a partition block under
	// SchedPartition, every CPU under SchedTimeSlice.
	cpus []*cpuState
	// bank holds per-CPU stats while the process is descheduled
	// (SchedTimeSlice swaps it with cpuState.stats at dispatch).
	bank []CPUStats
	// regions seeds the per-region fork-skew hash; per process, so a
	// program's dispatch jitter does not depend on its co-runners'
	// region counts.
	regions uint64
	// ran is the process's scheduled wall time: the sum of its
	// time-slice windows, or the partition's finish clock.
	ran uint64

	nests []*ir.Nest // flattened init + steady-state nest sequence
	next  int
	done  bool
}

// MultiResult is the outcome of a multiprocess run: one Result per
// process (its scheduled time and its own counters, auditable in
// isolation) plus the machine-wide total.
type MultiResult struct {
	Sched string
	// PerProcess is indexed by process table order (pid - 1).
	PerProcess []*Result
	// Total aggregates every process plus inter-process idle time; its
	// Bus stats are the machine totals (per-process bus shares are not
	// separable on a single shared bus).
	Total *Result
}

// Audit runs the Result conservation audit on every per-process result
// and on the machine total, prefixing violations with their scope.
func (mr *MultiResult) Audit() []obs.Violation {
	var vs []obs.Violation
	for i, r := range mr.PerProcess {
		for _, v := range r.Audit() {
			v.Detail = fmt.Sprintf("proc %d (%s): %s", i+1, r.Workload, v.Detail)
			vs = append(vs, v)
		}
	}
	for _, v := range mr.Total.Audit() {
		v.Detail = "total: " + v.Detail
		vs = append(vs, v)
	}
	return vs
}

// RunProcesses executes the given processes under the space-sharing
// scheduler on a fresh machine. A single process with no explicit
// policy or hints runs through the legacy single-process path
// (warm-up, phase weighting, the machine's configured policy) and is
// byte-identical to Run. Multiprocess runs measure every executed
// cycle — there is no warm-up discard, and each phase runs once,
// unweighted — because co-runners share the timeline and a per-process
// measured window cannot be cut out of it.
func (m *Machine) RunProcesses(procs []ProcessOptions, sched SchedOptions) (*MultiResult, error) {
	if len(procs) == 0 {
		return nil, fmt.Errorf("sim: no processes to run")
	}
	for _, po := range procs {
		if po.Prog == nil {
			return nil, fmt.Errorf("sim: nil program in process list")
		}
		if err := po.Prog.Validate(); err != nil {
			return nil, err
		}
		if po.Domain < 0 {
			return nil, fmt.Errorf("sim: negative isolation domain %d", po.Domain)
		}
	}
	if len(procs) == 1 && procs[0].Policy == nil && procs[0].Hints == nil && !m.opts.Isolate {
		res, err := m.runSingle(procs[0].Prog)
		if err != nil {
			return nil, err
		}
		return &MultiResult{Sched: sched.Policy.String(), PerProcess: []*Result{res}, Total: res}, nil
	}
	if m.opts.Recolor != nil {
		return nil, fmt.Errorf("sim: dynamic recoloring is not supported in multiprocess runs")
	}
	if m.opts.Hints != nil || m.opts.TouchOrder != nil {
		return nil, fmt.Errorf("sim: machine-level hints/touch-order apply to the single-process path; use ProcessOptions")
	}
	if m.opts.Isolate {
		if err := m.alloc.AssignDomains(resolveDomains(procs)); err != nil {
			return nil, err
		}
	}
	m.crossCheck = len(procs) > 1 || m.opts.Isolate
	table := make([]*Process, len(procs))
	for i, po := range procs {
		pid := i + 1
		policy := po.Policy
		if policy == nil {
			policy = vm.PageColoring{Colors: m.colors}
		}
		bindPolicy(policy, m.alloc, pid)
		as := vm.NewAddressSpaceProc(pid, m.cfg.PageSize, m.alloc, policy)
		if m.obs != nil {
			as.OnFault = m.obsFaultHook()
		}
		if po.Hints != nil {
			as.Advise(po.Hints)
		}
		table[i] = &Process{
			Pid:   pid,
			Name:  po.Prog.Name,
			as:    as,
			prog:  po.Prog,
			nests: flattenNests(po.Prog),
		}
	}
	var err error
	switch sched.Policy {
	case SchedPartition:
		err = m.runPartitioned(table)
	default:
		err = m.runTimeSliced(table, sched.Quantum)
	}
	if err != nil {
		return nil, err
	}
	mr := m.collectMulti(table, sched)
	if m.obs != nil {
		m.finalizeObsMulti(table)
	}
	return mr, nil
}

// resolveDomains maps each table pid to its isolation domain: explicit
// equal Domain labels group, Domain 0 means a domain of one's own, and
// the distinct labels are renumbered 1..D by first appearance in pid
// order — a pure function of the resolved co-runner mix, so the color
// blocks AssignDomains hands out are reproducible from the spec alone.
func resolveDomains(procs []ProcessOptions) map[int]int {
	pids := make(map[int]int, len(procs))
	labels := map[int]int{} // user label -> renumbered domain
	next := 1
	for i, po := range procs {
		d := 0
		if po.Domain > 0 {
			if got, ok := labels[po.Domain]; ok {
				d = got
			} else {
				d = next
				labels[po.Domain] = d
				next++
			}
		} else {
			d = next
			next++
		}
		pids[i+1] = d
	}
	return pids
}

// flattenNests returns the program's nest sequence for a multiprocess
// run: initialization followed by each steady-state phase once.
func flattenNests(prog *ir.Program) []*ir.Nest {
	var out []*ir.Nest
	if prog.Init != nil {
		out = append(out, prog.Init.Nests...)
	}
	for _, ph := range prog.Phases {
		out = append(out, ph.Nests...)
	}
	return out
}

// runTimeSliced gang-schedules the whole machine across processes,
// round-robin by ascending pid. Every window runs whole nests until the
// quantum is spent; at a switch the incoming process pays the kernel
// switch cost and the virtually indexed per-CPU state is flushed (TLB,
// on-chip caches, translation caches) while the physically tagged
// external caches, prefetch arrivals and write buffers survive.
func (m *Machine) runTimeSliced(table []*Process, quantum uint64) error {
	if quantum == 0 {
		quantum = DefaultQuantum
	}
	for _, p := range table {
		p.cpus = m.cpus
		p.bank = make([]CPUStats, len(m.cpus))
	}
	current := -1 // pid on the CPUs; -1 before the first dispatch
	remaining := len(table)
	for remaining > 0 {
		// Round-robin order is the fixed ascending-pid table order —
		// derived from process ids, never from map iteration.
		for _, p := range table {
			if p.done {
				continue
			}
			t0 := m.wallClock()
			switching := current != -1 && current != p.Pid
			for i, c := range m.cpus {
				c.as = p.as
				c.pid = p.Pid
				c.stats = p.bank[i]
				if switching {
					c.l1d.Flush()
					c.l1i.Flush()
					c.tlb.Flush()
					c.tcData = transCache{}
					c.tcInst = transCache{}
					c.stats.ContextSwitches++
					c.stats.KernelCycles += contextSwitchCycles
					c.clock += contextSwitchCycles
				}
			}
			for !p.done && m.wallClock()-t0 < quantum {
				if err := m.runNestOn(m.cpus, p.prog, p.nests[p.next], &p.regions); err != nil {
					return err
				}
				p.next++
				if p.next == len(p.nests) {
					p.done = true
				}
			}
			for i, c := range m.cpus {
				p.bank[i] = c.stats
			}
			p.ran += m.wallClock() - t0
			current = p.Pid
			if p.done {
				remaining--
				m.alloc.ReleaseOwned(p.Pid)
			}
		}
	}
	return nil
}

// runPartitioned gives each process an equal contiguous block of CPUs
// for its whole lifetime and interleaves the partitions' nests in
// global time order (earliest partition clock runs its next nest; ties
// break toward the lowest pid). The shared bus orders transactions by
// timestamp, so cross-partition contention is modeled even though each
// nest is simulated to completion.
func (m *Machine) runPartitioned(table []*Process) error {
	n := len(table)
	if n > len(m.cpus) {
		return fmt.Errorf("sim: %d processes exceed %d CPUs", n, len(m.cpus))
	}
	if len(m.cpus)%n != 0 {
		return fmt.Errorf("sim: %d CPUs not divisible into %d equal partitions", len(m.cpus), n)
	}
	width := len(m.cpus) / n
	for i, p := range table {
		p.cpus = m.cpus[i*width : (i+1)*width]
		for _, c := range p.cpus {
			c.as = p.as
			c.pid = p.Pid
		}
	}
	for {
		var pick *Process
		for _, p := range table {
			if p.done {
				continue
			}
			if pick == nil || clockMax(p.cpus) < clockMax(pick.cpus) {
				pick = p
			}
		}
		if pick == nil {
			return nil
		}
		if err := m.runNestOn(pick.cpus, pick.prog, pick.nests[pick.next], &pick.regions); err != nil {
			return err
		}
		pick.next++
		if pick.next == len(pick.nests) {
			pick.done = true
			pick.ran = clockMax(pick.cpus)
			for i := range pick.cpus {
				pick.bank = append(pick.bank, pick.cpus[i].stats)
			}
			m.alloc.ReleaseOwned(pick.Pid)
		}
	}
}

// collectMulti assembles per-process results and the machine total.
func (m *Machine) collectMulti(table []*Process, sched SchedOptions) *MultiResult {
	mr := &MultiResult{Sched: sched.Policy.String()}
	var names, policies []string
	for _, p := range table {
		res := &Result{
			Workload:     p.Name,
			Machine:      m.cfg.Name,
			Policy:       p.as.PolicyName(),
			NumCPUs:      len(p.cpus),
			Fidelity:     FidelityFull,
			WallCycles:   p.ran,
			PerCPU:       append([]CPUStats(nil), p.bank...),
			PageFaults:   p.as.Faults,
			HintedFaults: p.as.HintedFaults,
			HonoredHints: p.as.HonoredHints,
			Isolated:     m.alloc.Partitioned(),
		}
		mr.PerProcess = append(mr.PerProcess, res)
		names = append(names, p.Name)
		policies = append(policies, p.as.PolicyName())
	}
	total := &Result{
		Workload:   strings.Join(names, "+"),
		Machine:    m.cfg.Name,
		Policy:     strings.Join(policies, "+"),
		NumCPUs:    len(m.cpus),
		Fidelity:   FidelityFull,
		WallCycles: m.wallClock(),
		PerCPU:     make([]CPUStats, len(m.cpus)),
		Isolated:   m.alloc.Partitioned(),
	}
	if mr.Sched == "partition" {
		// Each CPU ran exactly one process; pad early finishers with
		// idle time to the machine wall so the total conserves cycles.
		width := len(m.cpus) / len(table)
		for pi, p := range table {
			for j := range p.bank {
				s := p.bank[j]
				s.SequentialCycles += total.WallCycles - p.ran
				total.PerCPU[pi*width+j] = s
			}
		}
	} else {
		// Time-slice windows tile the timeline exactly, so the per-CPU
		// banks sum to the machine wall.
		for i := range total.PerCPU {
			for _, p := range table {
				total.PerCPU[i].add(&p.bank[i], 1)
			}
		}
	}
	for _, r := range mr.PerProcess {
		total.PageFaults += r.PageFaults
		total.HintedFaults += r.HintedFaults
		total.HonoredHints += r.HonoredHints
	}
	total.Bus = BusStats{
		DataCycles:      m.bus.Occupancy(bus.Data),
		WritebackCycles: m.bus.Occupancy(bus.Writeback),
		UpgradeCycles:   m.bus.Occupancy(bus.Upgrade),
	}
	// Multiprocess runs measure every executed cycle, so the machine-
	// lifetime per-slice counters equal the total's miss split exactly.
	if m.sliceMiss != nil {
		total.SliceMisses = append([]uint64(nil), m.sliceMiss...)
	}
	mr.Total = total
	return mr
}

// finalizeObsMulti snapshots the set profiles and the combined VM and
// allocator color state over every process at the end of a
// multiprocess run.
func (m *Machine) finalizeObsMulti(table []*Process) {
	m.recordSetProfiles()
	mapped := make([]int, m.colors)
	var faults, hinted, honored uint64
	for _, p := range table {
		for c, n := range p.as.ColorOccupancy() {
			mapped[c] += n
		}
		faults += p.as.Faults
		hinted += p.as.HintedFaults
		honored += p.as.HonoredHints
	}
	m.obs.RecordAllocation(mapped, m.alloc.FreeByColor(), faults, hinted, honored)
}
