package sim

import (
	"fmt"

	"repro/internal/bus"
	"repro/internal/ir"
	"repro/internal/trace"
)

// Source is the engine's workload abstraction: the contract that was
// implicit in runSingle/runNestStreams/ir.NestStream, made explicit so
// reference streams need not come from an ir.Program. A source
// describes its execution structure (unmeasured initialization
// regions, then steady-state phases weighted by occurrence counts),
// supplies the per-CPU reference stream of each region on demand, and
// optionally carries page-color preferences (compiler summaries for
// IR workloads, the online summarizer's inference for external
// traces).
//
// The engine may ask for a region's streams more than once — the
// warm-up pass re-runs every phase — so WarmupPass must be false for
// sources that cannot replay cheaply or whose methodology measures
// the whole stream (external traces: a finite recorded stream run
// twice would double-count its cold faults into the warm-up).
type Source interface {
	// Name labels the workload in results.
	Name() string
	// Validate checks the source against the machine shape before any
	// simulation state is touched.
	Validate(numCPUs int) error
	// InitRegions returns the unmeasured initialization regions, run
	// once before the warm-up pass (where first-touch faulting happens
	// for sources with an init phase).
	InitRegions() []Region
	// Phases returns the steady-state phases in execution order.
	Phases() []SourcePhase
	// WarmupPass reports whether the engine should run every phase once
	// unmeasured first (the paper's §3.2 warm-up discard).
	WarmupPass() bool
	// Hints returns optional per-page preferred colors (VPN → color),
	// consulted only when Options.Hints is nil. IR sources return nil —
	// their compiler summaries arrive through Options — while trace
	// sources carry the online summarizer's output here.
	Hints() map[uint64]int
}

// SourcePhase is one steady-state phase: its regions run in order,
// and the measured pass weights the phase's statistics by Occurrences.
type SourcePhase struct {
	Name        string
	Occurrences int
	Regions     []Region
}

// Region is one barrier-delimited execution region: the unit of
// fork/dispatch, min-clock interleaving and the closing barrier. The
// engine calls Stream once per participating CPU per execution; p is
// the gang width and cpu the gang-local CPU index.
type Region interface {
	// Parallel reports whether the region forks across the gang;
	// sequential regions run on the master while slaves idle.
	Parallel() bool
	// Suppressed marks a parallel region executed sequentially
	// (suppressed parallelization); slave idle time is booked as
	// SuppressedCycles rather than SequentialCycles.
	Suppressed() bool
	// Stream returns CPU cpu's reference stream for one execution of
	// the region.
	Stream(p, cpu int) trace.Stream
}

// ProgramSource adapts an ir.Program to the Source interface; it is
// the IR half of the refactor and reproduces the exact region
// structure runSingle always had, so IR results are byte-identical to
// the pre-source engine.
func ProgramSource(prog *ir.Program) Source { return &programSource{prog: prog} }

type programSource struct {
	prog *ir.Program
}

func (p *programSource) Name() string               { return p.prog.Name }
func (p *programSource) Validate(numCPUs int) error { return p.prog.Validate() }
func (p *programSource) WarmupPass() bool           { return true }
func (p *programSource) Hints() map[uint64]int      { return nil }

func (p *programSource) InitRegions() []Region {
	if p.prog.Init == nil {
		return nil
	}
	return p.regions(p.prog.Init.Nests)
}

func (p *programSource) Phases() []SourcePhase {
	phases := make([]SourcePhase, len(p.prog.Phases))
	for i, ph := range p.prog.Phases {
		phases[i] = SourcePhase{Name: ph.Name, Occurrences: ph.Occurrences, Regions: p.regions(ph.Nests)}
	}
	return phases
}

func (p *programSource) regions(nests []*ir.Nest) []Region {
	regions := make([]Region, len(nests))
	for i, n := range nests {
		regions[i] = nestRegion{prog: p.prog, n: n}
	}
	return regions
}

// nestRegion is one loop nest as a Region; its streams are exactly the
// ir.NestStream decomposition runNestOn always built.
type nestRegion struct {
	prog *ir.Program
	n    *ir.Nest
}

func (r nestRegion) Parallel() bool   { return r.n.Parallel }
func (r nestRegion) Suppressed() bool { return r.n.Suppressed }
func (r nestRegion) Stream(p, cpu int) trace.Stream {
	return ir.NestStream(r.prog, r.n, p, cpu)
}

// NewTraceSource wraps a decoded binary trace as a Source: one
// steady-state phase holding one parallel region whose per-CPU streams
// decode lazily from the trace's compressed blocks (the run never
// materializes the reference slice). There is no init region and no
// warm-up pass — a recorded stream is finite and is measured whole,
// cold faults included, like the multiprocess paths. hints, usually
// trace.PreferredColors' output, rides along as the source's optional
// page-color summary.
func NewTraceSource(name string, f *trace.File, hints map[uint64]int) Source {
	return &traceSource{name: name, f: f, hints: hints}
}

type traceSource struct {
	name  string
	f     *trace.File
	hints map[uint64]int
}

func (t *traceSource) Name() string          { return t.name }
func (t *traceSource) InitRegions() []Region { return nil }
func (t *traceSource) WarmupPass() bool      { return false }
func (t *traceSource) Hints() map[uint64]int { return t.hints }

func (t *traceSource) Validate(numCPUs int) error {
	if n := t.f.NumCPUs(); n > numCPUs {
		return fmt.Errorf("sim: trace %q carries %d CPU streams but the machine has %d CPUs", t.name, n, numCPUs)
	}
	return nil
}

func (t *traceSource) Phases() []SourcePhase {
	return []SourcePhase{{Name: "trace", Occurrences: 1, Regions: []Region{traceRegion{f: t.f}}}}
}

// traceRegion replays the whole trace as a single parallel region: CPU
// i of the gang drains trace stream i; machine CPUs beyond the trace's
// width idle (trace.File.Stream hands them the empty stream).
type traceRegion struct {
	f *trace.File
}

func (r traceRegion) Parallel() bool                 { return true }
func (r traceRegion) Suppressed() bool               { return false }
func (r traceRegion) Stream(p, cpu int) trace.Stream { return r.f.Stream(cpu) }

// RunSource executes an abstract workload source on the machine and
// returns the weighted result; Run/runSingle is exactly this with a
// ProgramSource. Cancellation is polled at every region boundary and,
// for sources whose regions are long (a whole external trace is one
// region), every 2^20 references inside the interleave loops, so the
// server's drain bound holds for trace jobs too.
func (m *Machine) RunSource(src Source) (*Result, error) {
	if err := src.Validate(m.cfg.NumCPUs); err != nil {
		return nil, err
	}
	return m.runSource(src)
}

// runSource is the engine's main sequence, verbatim from the classic
// single-process path: advise hints, optional serialized touch-order
// faulting, unmeasured init, warm-up pass, clock sync, then the
// measured pass with per-phase stat/bus/wall deltas weighted by
// occurrence counts.
func (m *Machine) runSource(src Source) (*Result, error) {
	hints := m.opts.Hints
	if hints == nil {
		hints = src.Hints()
	}
	if hints != nil {
		m.as.Advise(hints)
	}
	if m.opts.TouchOrder != nil {
		faults, err := m.as.TouchInOrder(m.opts.TouchOrder, 0)
		if err != nil {
			return nil, fmt.Errorf("sim: touch-order faulting: %w", err)
		}
		// All faults are serialized on the master at startup — the §5.3
		// drawback of the user-level Digital UNIX implementation.
		m.cpus[0].stats.KernelCycles += uint64(faults) * uint64(m.cfg.PageFaultCycles)
		m.cpus[0].stats.PageFaults += uint64(faults)
		m.cpus[0].clock += uint64(faults) * uint64(m.cfg.PageFaultCycles)
	}

	// Initialization: executed once, unmeasured; this is where first-touch
	// page faults happen for sources with an init phase.
	for _, reg := range src.InitRegions() {
		if err := m.runRegion(reg); err != nil {
			return nil, err
		}
	}
	phases := src.Phases()
	// Warm-up pass: run every phase once and discard the stats, the
	// paper's "discard the results from the first phases executed with
	// the detailed simulator" (§3.2). Sources that measure their whole
	// stream (external traces) opt out.
	if src.WarmupPass() && !m.opts.SkipWarmup {
		for _, ph := range phases {
			for _, reg := range ph.Regions {
				if err := m.runRegion(reg); err != nil {
					return nil, err
				}
			}
		}
	}

	// Synchronize clocks before measuring. A CPU can lag the global
	// clock here only when startup work was serialized on the master and
	// no init or warm-up pass absorbed the skew (touch-order faulting
	// with SkipWarmup); the lag is slave idle time, booked as such so
	// every measured phase starts from a common origin — the audit's
	// cycle-conservation invariant depends on it.
	sync := m.wallClock()
	for _, c := range m.cpus {
		if c.clock < sync {
			c.stats.SequentialCycles += sync - c.clock
			c.clock = sync
		}
	}

	// Attribution covers the measured region only, mirroring the Result:
	// drop per-color/per-page counts and set profiles from init and
	// warm-up. (Phases with Occurrences > 1 are still attributed once,
	// unweighted, where the Result multiplies them out.)
	if m.obs != nil {
		m.obs.ResetAttribution()
		m.enableSetProfiles()
	}

	res := &Result{
		Workload: src.Name(),
		Machine:  m.cfg.Name,
		Policy:   m.as.PolicyName(),
		NumCPUs:  m.cfg.NumCPUs,
		PerCPU:   make([]CPUStats, m.cfg.NumCPUs),
	}

	// Measured pass: each phase once, weighted by its occurrence count.
	if m.sliceMiss != nil {
		res.SliceMisses = make([]uint64, len(m.sliceMiss))
	}
	sliceBefore := make([]uint64, len(m.sliceMiss))
	for _, ph := range phases {
		before := make([]CPUStats, len(m.cpus))
		for i, c := range m.cpus {
			before[i] = c.stats
		}
		busBefore := [3]uint64{m.bus.Occupancy(bus.Data), m.bus.Occupancy(bus.Writeback), m.bus.Occupancy(bus.Upgrade)}
		wallBefore := m.wallClock()
		copy(sliceBefore, m.sliceMiss)

		for _, reg := range ph.Regions {
			if err := m.runRegion(reg); err != nil {
				return nil, err
			}
		}

		w := uint64(ph.Occurrences)
		for i, c := range m.cpus {
			delta := c.stats.sub(before[i])
			res.PerCPU[i].add(&delta, w)
		}
		res.Bus.DataCycles += (m.bus.Occupancy(bus.Data) - busBefore[0]) * w
		res.Bus.WritebackCycles += (m.bus.Occupancy(bus.Writeback) - busBefore[1]) * w
		res.Bus.UpgradeCycles += (m.bus.Occupancy(bus.Upgrade) - busBefore[2]) * w
		res.WallCycles += (m.wallClock() - wallBefore) * w
		// Per-slice miss split, phase-weighted like everything else so
		// audit invariant 13 (sum == total L2 misses) holds exactly.
		for s := range res.SliceMisses {
			res.SliceMisses[s] += (m.sliceMiss[s] - sliceBefore[s]) * w
		}
	}

	res.Fidelity = FidelityFull
	res.PageFaults = m.as.Faults
	res.HintedFaults = m.as.HintedFaults
	res.HonoredHints = m.as.HonoredHints
	if m.obs != nil {
		m.finalizeObs()
	}
	return res, nil
}

// runRegion executes one source region to the barrier at its end on
// the whole machine.
func (m *Machine) runRegion(reg Region) error {
	return m.runRegionStreams(m.cpus, reg.Parallel(), reg.Suppressed(), &m.regions, reg.Stream)
}
