package sim

import (
	"reflect"
	"testing"

	"repro/internal/ir"
	"repro/internal/obs"
	"repro/internal/vm"
)

// TestRemoteSupplyCleansOwner exercises the writeback double-count fix:
// when a dirty line is flushed to memory to supply a remote read, the
// owner's cached copy must be marked clean, or its eventual eviction
// charges the bus for a writeback whose data already went to memory.
func TestRemoteSupplyCleansOwner(t *testing.T) {
	m, err := New(Options{Config: smallConfig(2)})
	if err != nil {
		t.Fatal(err)
	}
	paddr := uint64(0x4000)
	m.cpus[1].llc.slices[0].Access(paddr, true) // CPU1 holds the line dirty
	m.dir.Access(1, paddr, true)

	out := m.dir.Access(0, paddr, false)
	if !out.DirtyRemote || out.Downgraded != 1 {
		t.Fatalf("read of dirty remote: DirtyRemote=%v Downgraded=%d, want true/1",
			out.DirtyRemote, out.Downgraded)
	}
	m.applyDowngrade(paddr, out.Downgraded)
	if present, dirty := m.cpus[1].llc.slices[0].Invalidate(paddr); !present || dirty {
		t.Errorf("owner line after downgrade: present=%v dirty=%v, want clean and resident",
			present, dirty)
	}
}

// codeThrashProgram builds a single-CPU program whose instruction
// footprint (4 code pages) aliases in the external cache with a data
// sweep covering every color, so code pages take repeated conflict
// misses.
func codeThrashProgram() *ir.Program {
	elems := 16 * 4096 / 8 // 16 data pages: one per color of smallConfig
	a := &ir.Array{Name: "a", ElemSize: 8, Elems: elems}
	nest := &ir.Nest{
		Name: "hotcode", Parallel: false, Iterations: 16, InnerIters: elems / 16,
		Accesses:      []ir.Access{{Array: a, Kind: ir.Load, OuterStride: elems / 16, InnerStride: 1}},
		InstFootprint: 16 << 10, // 4 code pages, refetched every iteration
	}
	return &ir.Program{Name: "hotcode", Arrays: []*ir.Array{a},
		Phases:   []*ir.Phase{{Name: "p", Occurrences: 1, Nests: []*ir.Nest{nest}}},
		CodeSize: 16 << 10}
}

// TestHotCodePageRecolors is the regression test for the instruction
// path never feeding the dynamic recoloring policy: a thrashing hot
// code page must be observed and moved just like a data page.
func TestHotCodePageRecolors(t *testing.T) {
	cfg := smallConfig(1)
	prog := codeThrashProgram()
	if err := compilerLayout(prog, cfg); err != nil {
		t.Fatal(err)
	}
	ring := obs.NewRing(256)
	col := obs.NewCollector(obs.Options{Tracer: ring})
	policy := vm.RecolorPolicy{MissThreshold: 16, MaxRecolorings: 2}
	m, err := New(Options{
		Config:     cfg,
		Policy:     vm.PageColoring{Colors: cfg.Colors()},
		Recolor:    &policy,
		Obs:        col,
		SkipWarmup: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run(prog)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Total(func(s *CPUStats) uint64 { return s.Recolorings }); got == 0 {
		t.Fatal("no recolorings under code/data thrash")
	}

	codeLo := prog.CodeBase >> 12
	codeHi := (prog.CodeBase + uint64(prog.CodeSize) - 1) >> 12
	recoloredCode := false
	for _, ev := range ring.Events() {
		if ev.Kind == obs.EvRecolor && ev.VPN >= codeLo && ev.VPN <= codeHi {
			recoloredCode = true
			if ev.Color == ev.Prev {
				t.Errorf("recolor event with unchanged color: %+v", ev)
			}
		}
	}
	if !recoloredCode {
		t.Errorf("no code page (vpn %d-%d) was recolored; events: %v",
			codeLo, codeHi, ring.Events())
	}
	if vs := res.Audit(); len(vs) != 0 {
		t.Errorf("audit violations after recoloring run: %v", vs)
	}
}

// TestObservationLeavesResultIdentical checks the collector is passive:
// an instrumented run produces a Result deeply equal to a bare one.
func TestObservationLeavesResultIdentical(t *testing.T) {
	cfg := smallConfig(4)
	bare := mustRun(t, makeProgram(8, 32, 1), Options{Config: cfg})
	col := obs.NewCollector(obs.Options{Tracer: obs.NewRing(64)})
	observed := mustRun(t, makeProgram(8, 32, 1), Options{Config: cfg, Obs: col})
	if !reflect.DeepEqual(bare, observed) {
		t.Errorf("observation perturbed the result:\nbare     %+v\nobserved %+v", bare, observed)
	}
	// And the collector actually collected.
	total := uint64(0)
	for _, cc := range col.PerColor() {
		total += cc.Total()
	}
	if total == 0 {
		t.Error("collector attributed no misses on a missing workload")
	}
	if total != observed.Total(func(s *CPUStats) uint64 { return s.L2Misses }) {
		t.Errorf("attributed %d misses, result has %d", total,
			observed.Total(func(s *CPUStats) uint64 { return s.L2Misses }))
	}
}

// TestAuditDetectsCounterDrift corrupts each conserved quantity of a
// clean result and checks the matching invariant trips.
func TestAuditDetectsCounterDrift(t *testing.T) {
	res := mustRun(t, makeProgram(8, 16, 1), Options{Config: smallConfig(2)})
	if vs := res.Audit(); len(vs) != 0 {
		t.Fatalf("clean run has violations: %v", vs)
	}
	find := func(vs []obs.Violation, check string) bool {
		for _, v := range vs {
			if v.Check == check {
				return true
			}
		}
		return false
	}

	drift := *res
	drift.PerCPU = append([]CPUStats(nil), res.PerCPU...)
	drift.PerCPU[0].ExecCycles++
	if vs := drift.Audit(); !find(vs, "cycle-conservation") {
		t.Errorf("exec-cycle drift not caught: %v", vs)
	}

	drift = *res
	drift.PerCPU = append([]CPUStats(nil), res.PerCPU...)
	drift.PerCPU[1].ColdMisses++
	if vs := drift.Audit(); !find(vs, "miss-conservation") {
		t.Errorf("miss drift not caught: %v", vs)
	}

	drift = *res
	drift.Bus.DataCycles += drift.WallCycles + 1
	if vs := drift.Audit(); !find(vs, "bus-occupancy") {
		t.Errorf("bus over-occupancy not caught: %v", vs)
	}
}
