package sim

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/vm"
)

// makeProgram builds a simple partitioned two-array stencil sized in
// pages per array. offset != 0 adds a load of the neighbor's boundary
// element of b (shift communication: b is also written, so boundary
// reads are genuine producer→consumer sharing).
func makeProgram(pagesPerArray, iters int, offset int) *ir.Program {
	elems := pagesPerArray * 4096 / 8
	unit := elems / iters
	a := &ir.Array{Name: "a", ElemSize: 8, Elems: elems}
	b := &ir.Array{Name: "b", ElemSize: 8, Elems: elems}
	accesses := []ir.Access{
		{Array: a, Kind: ir.Load, OuterStride: unit, InnerStride: 1},
		{Array: b, Kind: ir.Store, OuterStride: unit, InnerStride: 1},
	}
	if offset != 0 {
		accesses = append(accesses, ir.Access{Array: b, Kind: ir.Load, OuterStride: unit, InnerStride: 1, Offset: offset})
	}
	nest := &ir.Nest{
		Name:        "sweep",
		Parallel:    true,
		Iterations:  iters,
		InnerIters:  unit,
		Accesses:    accesses,
		WorkPerIter: 2,
		Sched:       ir.Schedule{Kind: ir.Even},
	}
	prog := &ir.Program{
		Name:   "simtest",
		Arrays: []*ir.Array{a, b},
		Phases: []*ir.Phase{{Name: "main", Occurrences: 1, Nests: []*ir.Nest{nest}}},
	}
	return prog
}

func smallConfig(ncpu int) arch.Config {
	cfg := arch.Base(ncpu, 16) // 64KB L2, 16 colors
	return cfg
}

func mustRun(t *testing.T, prog *ir.Program, opts Options) *Result {
	t.Helper()
	if err := compilerLayout(prog, opts.Config); err != nil {
		t.Fatal(err)
	}
	m, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run(prog)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func compilerLayout(prog *ir.Program, cfg arch.Config) error {
	return compiler.Layout(prog, compiler.DefaultLayout(cfg.L2.LineSize, cfg.L1D.Size, cfg.PageSize))
}

func TestRunProducesSaneResult(t *testing.T) {
	prog := makeProgram(8, 16, 0)
	res := mustRun(t, prog, Options{Config: smallConfig(4), SkipWarmup: true})
	if res.NumCPUs != 4 || len(res.PerCPU) != 4 {
		t.Fatalf("cpu counts wrong: %+v", res)
	}
	if res.WallCycles == 0 {
		t.Error("zero wall clock")
	}
	inst := res.Total(func(s *CPUStats) uint64 { return s.Instructions })
	// 16 iters * 256 inner * (2 refs + 2 work)... at least refs count.
	if inst == 0 {
		t.Error("no instructions executed")
	}
	if res.PageFaults == 0 {
		t.Error("no page faults: first touches must fault")
	}
}

func TestCycleAccountingInvariant(t *testing.T) {
	// Every cycle a CPU's clock advances must be booked into exactly one
	// stats bucket: final clock == TotalCycles.
	prog := makeProgram(8, 16, 1)
	prog.Phases[0].Nests = append(prog.Phases[0].Nests, &ir.Nest{
		Name: "serial", Parallel: false, Iterations: 4, InnerIters: 16,
		Accesses:    []ir.Access{{Array: prog.Arrays[0], Kind: ir.Load, OuterStride: 16, InnerStride: 1}},
		WorkPerIter: 1,
	})
	cfg := smallConfig(4)
	if err := compilerLayout(prog, cfg); err != nil {
		t.Fatal(err)
	}
	m, err := New(Options{Config: cfg, SkipWarmup: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(prog); err != nil {
		t.Fatal(err)
	}
	for _, c := range m.cpus {
		if c.clock != c.stats.TotalCycles() {
			t.Errorf("cpu %d: clock %d != booked %d (diff %d)", c.id, c.clock, c.stats.TotalCycles(), int64(c.clock)-int64(c.stats.TotalCycles()))
		}
	}
}

func TestSequentialNestChargesSlaves(t *testing.T) {
	prog := makeProgram(4, 8, 0)
	prog.Phases[0].Nests[0].Parallel = false
	res := mustRun(t, prog, Options{Config: smallConfig(4), SkipWarmup: true})
	if res.PerCPU[0].SequentialCycles != 0 {
		t.Error("master charged sequential idle")
	}
	for cpu := 1; cpu < 4; cpu++ {
		if res.PerCPU[cpu].SequentialCycles == 0 {
			t.Errorf("slave %d has no sequential time", cpu)
		}
	}
}

func TestSuppressedNestChargesSuppressed(t *testing.T) {
	prog := makeProgram(4, 8, 0)
	prog.Phases[0].Nests[0].Suppressed = true
	res := mustRun(t, prog, Options{Config: smallConfig(4), SkipWarmup: true})
	for cpu := 1; cpu < 4; cpu++ {
		if res.PerCPU[cpu].SuppressedCycles == 0 {
			t.Errorf("slave %d has no suppressed time", cpu)
		}
	}
}

func TestLoadImbalanceFromUnevenIterations(t *testing.T) {
	// 5 iterations on 4 CPUs (even schedule): one CPU does 2, others 1.
	prog := makeProgram(8, 5, 0)
	res := mustRun(t, prog, Options{Config: smallConfig(4), SkipWarmup: true})
	imb := res.Total(func(s *CPUStats) uint64 { return s.ImbalanceCycles })
	if imb == 0 {
		t.Error("no load imbalance for 5 iterations on 4 CPUs")
	}
}

func TestBalancedNestHasLowImbalance(t *testing.T) {
	prog := makeProgram(8, 16, 0) // 4 iterations per CPU exactly
	res := mustRun(t, prog, Options{Config: smallConfig(4), SkipWarmup: true})
	imb := res.Total(func(s *CPUStats) uint64 { return s.ImbalanceCycles })
	wall := res.WallCycles * 4
	if float64(imb) > 0.2*float64(wall) {
		t.Errorf("imbalance %d is more than 20%% of combined time %d", imb, wall)
	}
}

func TestPhaseWeighting(t *testing.T) {
	prog1 := makeProgram(4, 8, 0)
	prog2 := makeProgram(4, 8, 0)
	prog2.Phases[0].Occurrences = 10
	r1 := mustRun(t, prog1, Options{Config: smallConfig(2), SkipWarmup: true})
	r2 := mustRun(t, prog2, Options{Config: smallConfig(2), SkipWarmup: true})
	// Same single execution, 10x the weight.
	if r2.WallCycles <= 5*r1.WallCycles {
		t.Errorf("weighted wall %d vs %d: want ~10x", r2.WallCycles, r1.WallCycles)
	}
}

func TestWarmupDiscardsColdMisses(t *testing.T) {
	prog := makeProgram(4, 8, 0)
	cold := func(skip bool) uint64 {
		p := makeProgram(4, 8, 0)
		r := mustRun(t, p, Options{Config: smallConfig(2), SkipWarmup: skip})
		_ = prog
		return r.Total(func(s *CPUStats) uint64 { return s.ColdMisses })
	}
	if c := cold(false); c != 0 {
		t.Errorf("cold misses survive warmup: %d", c)
	}
	if c := cold(true); c == 0 {
		t.Error("no cold misses without warmup")
	}
}

func TestPageColoringConflictVsCDPC(t *testing.T) {
	// Two arrays of exactly one cache span (16 pages) each: page i of a
	// and page i of b have the same color under page coloring, so the
	// a-load and b-store streams thrash each other at every position —
	// the paper's under-utilization pathology. CDPC interleaves the two
	// chunks in color space.
	cfg := smallConfig(2)
	colors := cfg.Colors() // 16 pages of 4KB = 64KB cache
	prog := makeProgram(16, 16, 0)

	base := mustRun(t, prog, Options{Config: cfg, Policy: vm.PageColoring{Colors: colors}})
	baseConf := base.Total(func(s *CPUStats) uint64 { return s.ConflictMisses })
	if baseConf == 0 {
		t.Fatal("expected conflict misses under page coloring with colliding arrays")
	}

	prog2 := makeProgram(16, 16, 0)
	if err := compilerLayout(prog2, cfg); err != nil {
		t.Fatal(err)
	}
	sum := compiler.Summarize(prog2)
	h, err := core.ComputeHints(prog2, sum, core.Params{NumCPUs: 2, NumColors: colors, PageSize: cfg.PageSize})
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(Options{Config: cfg, Policy: vm.PageColoring{Colors: colors}, Hints: h.Colors})
	if err != nil {
		t.Fatal(err)
	}
	cdpc, err := m.Run(prog2)
	if err != nil {
		t.Fatal(err)
	}
	cdpcConf := cdpc.Total(func(s *CPUStats) uint64 { return s.ConflictMisses })
	if cdpcConf*2 >= baseConf {
		t.Errorf("CDPC conflicts %d not well below page coloring's %d", cdpcConf, baseConf)
	}
	if cdpc.WallCycles >= base.WallCycles {
		t.Errorf("CDPC wall %d not faster than page coloring %d", cdpc.WallCycles, base.WallCycles)
	}
}

func TestPrefetchingHidesLatency(t *testing.T) {
	// Big streaming sweep with capacity misses: prefetching should cut
	// the demand miss stall substantially. Enough work per iteration
	// keeps the bus under capacity so latency can actually be hidden.
	// 72-page arrays put a's and b's chunks 8 colors apart under page
	// coloring, so the streams do not thrash each other: the remaining
	// misses are pure capacity misses, the kind prefetching hides. (With
	// colliding colors, prefetched lines are displaced before use — the
	// §6.2 interaction the combined CDPC+prefetch experiment measures.)
	cfg := smallConfig(1)
	mk := func() *ir.Program {
		p := makeProgram(72, 18, 0) // 576KB > 64KB cache
		p.Phases[0].Nests[0].WorkPerIter = 16
		return p
	}
	plain := mustRun(t, mk(), Options{Config: cfg})

	pf := mk()
	compiler.InsertPrefetches(pf, compiler.DefaultPrefetch())
	pres := mustRun(t, pf, Options{Config: cfg})

	if pres.Total(func(s *CPUStats) uint64 { return s.PrefetchesIssued }) == 0 {
		t.Fatal("no prefetches issued")
	}
	plainRepl := plain.Total((*CPUStats).ReplacementStall)
	pfRepl := pres.Total((*CPUStats).ReplacementStall)
	if pfRepl*2 >= plainRepl {
		t.Errorf("prefetch replacement stall %d not well below %d", pfRepl, plainRepl)
	}
	if pres.WallCycles >= plain.WallCycles {
		t.Errorf("prefetching did not speed up: %d vs %d", pres.WallCycles, plain.WallCycles)
	}
}

func TestPrefetchDroppedOnUnmappedTLB(t *testing.T) {
	// Large stride across many pages: TLB coverage is small, so many
	// prefetches hit unmapped TLB entries and are dropped (§6.2).
	cfg := smallConfig(1)
	cfg.TLBEntries = 4
	elems := 64 * 4096 / 8
	a := &ir.Array{Name: "a", ElemSize: 8, Elems: elems}
	nest := &ir.Nest{
		Name: "strided", Parallel: true, Iterations: 16, InnerIters: elems / 16 / 64,
		Accesses: []ir.Access{{Array: a, Kind: ir.Load, OuterStride: elems / 16, InnerStride: 64, Prefetch: true, PrefetchDistance: 8}},
		Sched:    ir.Schedule{Kind: ir.Even},
	}
	prog := &ir.Program{Name: "strided", Arrays: []*ir.Array{a},
		Phases: []*ir.Phase{{Name: "p", Occurrences: 1, Nests: []*ir.Nest{nest}}}}
	res := mustRun(t, prog, Options{Config: cfg, SkipWarmup: true})
	if res.Total(func(s *CPUStats) uint64 { return s.PrefetchesDropped }) == 0 {
		t.Error("expected dropped prefetches with a tiny TLB and page-crossing strides")
	}
}

func TestBusUtilizationGrowsWithCPUs(t *testing.T) {
	mk := func() *ir.Program { return makeProgram(64, 64, 0) }
	u1 := mustRun(t, mk(), Options{Config: smallConfig(1), SkipWarmup: true}).BusUtilization()
	u8 := mustRun(t, mk(), Options{Config: smallConfig(8), SkipWarmup: true}).BusUtilization()
	if u8 <= u1 {
		t.Errorf("bus utilization did not grow: 1cpu=%.3f 8cpu=%.3f", u1, u8)
	}
}

func TestTouchOrderSerializesFaults(t *testing.T) {
	cfg := smallConfig(2)
	prog := makeProgram(8, 16, 0)
	if err := compilerLayout(prog, cfg); err != nil {
		t.Fatal(err)
	}
	var order []uint64
	for _, a := range prog.Arrays {
		for vpn := a.Base / 4096; vpn*4096 < a.EndAddr(); vpn++ {
			order = append(order, vpn)
		}
	}
	m, err := New(Options{Config: cfg, Policy: &vm.BinHopping{Colors: cfg.Colors()}, TouchOrder: order, SkipWarmup: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run(prog)
	if err != nil {
		t.Fatal(err)
	}
	_ = res
	// Touch-order faulting is a startup cost: it lands on the master's
	// raw stats, not in the measured steady state.
	if m.cpus[0].stats.PageFaults == 0 {
		t.Error("touch-order faults not charged to the master")
	}
	if m.cpus[0].stats.KernelCycles == 0 {
		t.Error("serialized fault time not booked as kernel time")
	}
	// All data pages were pre-faulted: the run itself faults only code pages.
	if got := m.as.Faults; got < uint64(len(order)) {
		t.Errorf("faults %d < touched pages %d", got, len(order))
	}
}

func TestTrueSharingDetected(t *testing.T) {
	// Neighbor-shift stencil: each CPU reads its right neighbor's
	// boundary element every outer iteration.
	prog := makeProgram(8, 32, 1)
	res := mustRun(t, prog, Options{Config: smallConfig(4)})
	ts := res.Total(func(s *CPUStats) uint64 { return s.TrueShareMisses })
	if ts == 0 {
		t.Error("no true sharing detected for boundary communication")
	}
}

func TestMCPIPositiveUnderMisses(t *testing.T) {
	prog := makeProgram(64, 16, 0) // working set 4x the cache
	res := mustRun(t, prog, Options{Config: smallConfig(1)})
	if res.MCPI() <= 0 {
		t.Errorf("MCPI = %v, want > 0 for an out-of-cache sweep", res.MCPI())
	}
}

func TestDisableClassification(t *testing.T) {
	prog := makeProgram(64, 16, 0)
	res := mustRun(t, prog, Options{Config: smallConfig(1), DisableClassification: true})
	if res.Total(func(s *CPUStats) uint64 { return s.ConflictMisses }) != 0 {
		t.Error("conflict misses reported with classification disabled")
	}
	if res.Total(func(s *CPUStats) uint64 { return s.CapacityMisses }) == 0 {
		t.Error("replacement misses should land in capacity with classification off")
	}
}

func TestInstructionStreamStalls(t *testing.T) {
	// fpppp-style: huge instruction footprint per iteration.
	cfg := smallConfig(1)
	a := &ir.Array{Name: "a", ElemSize: 8, Elems: 512}
	nest := &ir.Nest{
		Name: "bigcode", Parallel: false, Iterations: 4, InnerIters: 8,
		Accesses:      []ir.Access{{Array: a, Kind: ir.Load, OuterStride: 8, InnerStride: 1}},
		InstFootprint: 16 << 10, // 16KB of code per iteration > 4KB L1I
	}
	prog := &ir.Program{Name: "fppppish", Arrays: []*ir.Array{a},
		Phases:   []*ir.Phase{{Name: "p", Occurrences: 1, Nests: []*ir.Nest{nest}}},
		CodeSize: 32 << 10}
	res := mustRun(t, prog, Options{Config: cfg, SkipWarmup: true})
	if res.Total(func(s *CPUStats) uint64 { return s.StallInst }) == 0 {
		t.Error("no instruction stall for a 16KB loop body on a 2KB L1I")
	}
}

func TestResultHelpers(t *testing.T) {
	prog := makeProgram(8, 16, 0)
	res := mustRun(t, prog, Options{Config: smallConfig(2), SkipWarmup: true})
	if res.CombinedCycles() != res.WallCycles*2 {
		t.Error("CombinedCycles mismatch")
	}
	if res.Speedup(res) != 1.0 {
		t.Error("self speedup != 1")
	}
}

func TestDynamicRecoloringReducesConflicts(t *testing.T) {
	// Same colliding-arrays setup as the CDPC test: dynamic recoloring
	// should detect the thrash and move pages to colder colors.
	// 12-page arrays: per CPU, two of the six a-pages collide with two
	// b-pages while ten colors stay free — detectable conflicts that a
	// page move can fix (unlike pure capacity pressure, which recoloring
	// cannot help).
	cfg := smallConfig(2)
	colors := cfg.Colors()
	mk := func() *ir.Program { return makeProgram(12, 12, 0) }

	base := mustRun(t, mk(), Options{Config: cfg, Policy: vm.PageColoring{Colors: colors}})
	baseConf := base.Total(func(s *CPUStats) uint64 { return s.ConflictMisses })
	if baseConf == 0 {
		t.Fatal("expected conflicts in the baseline")
	}

	// A lower threshold than the default lets the reactive policy
	// converge within the short test run.
	policy := vm.RecolorPolicy{MissThreshold: 16, MaxRecolorings: 4}
	prog := mk()
	if err := compilerLayout(prog, cfg); err != nil {
		t.Fatal(err)
	}
	m, err := New(Options{Config: cfg, Policy: vm.PageColoring{Colors: colors}, Recolor: &policy})
	if err != nil {
		t.Fatal(err)
	}
	dyn, err := m.Run(prog)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.recolorer.Recolorings(); got == 0 {
		t.Fatal("no recolorings happened")
	}
	dynConf := dyn.Total(func(s *CPUStats) uint64 { return s.ConflictMisses })
	if dynConf*2 > baseConf {
		t.Errorf("recoloring did not cut conflicts: %d vs %d", dynConf, baseConf)
	}
	// The fix is not free: over this short window the copies, TLB
	// shootdowns and invalidations outweigh the saved misses — the
	// paper's §2.1 argument against dynamic policies on multiprocessors.
	// The overhead must at least be visible as kernel time.
	if dyn.Total(func(s *CPUStats) uint64 { return s.KernelCycles }) <=
		base.Total(func(s *CPUStats) uint64 { return s.KernelCycles }) {
		t.Error("recoloring overhead not charged as kernel time")
	}
}

func TestDynamicRecoloringChargesCosts(t *testing.T) {
	cfg := smallConfig(4)
	policy := vm.RecolorPolicy{MissThreshold: 16, MaxRecolorings: 8}
	prog := makeProgram(16, 16, 0)
	if err := compilerLayout(prog, cfg); err != nil {
		t.Fatal(err)
	}
	m, err := New(Options{Config: cfg, Policy: vm.PageColoring{Colors: cfg.Colors()}, Recolor: &policy, SkipWarmup: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run(prog)
	if err != nil {
		t.Fatal(err)
	}
	rec := res.Total(func(s *CPUStats) uint64 { return s.Recolorings })
	if rec == 0 {
		t.Skip("no recolorings in measured window")
	}
	kern := res.Total(func(s *CPUStats) uint64 { return s.KernelCycles })
	if kern < rec*recolorKernelCycles {
		t.Errorf("kernel cycles %d do not cover %d recolorings", kern, rec)
	}
	// Cycle accounting must still balance.
	for _, c := range m.cpus {
		if c.clock != c.stats.TotalCycles() {
			t.Errorf("cpu %d: clock %d != booked %d after recolorings", c.id, c.clock, c.stats.TotalCycles())
		}
	}
}

func TestFastRunAgreesWithDetailed(t *testing.T) {
	// The fast simulator must see the same footprint and a similar miss
	// picture as the detailed one (it skips warm-up discarding, stores
	// through L1 and coherence, so counts differ in detail but not in
	// magnitude).
	cfg := smallConfig(4)
	prog := makeProgram(16, 16, 0)
	if err := compilerLayout(prog, cfg); err != nil {
		t.Fatal(err)
	}
	fast, err := FastRun(prog, Options{Config: cfg, Policy: vm.PageColoring{Colors: cfg.Colors()}})
	if err != nil {
		t.Fatal(err)
	}
	if fast.Refs == 0 || fast.L1Hits == 0 {
		t.Fatalf("fast run saw nothing: %+v", fast)
	}
	if fast.PageFaults == 0 || fast.PagesTouched == 0 {
		t.Error("fast run must fault pages in")
	}
	if fast.MissRatio() <= 0 || fast.MissRatio() >= 1 {
		t.Errorf("miss ratio %v out of range", fast.MissRatio())
	}

	detailed := mustRun(t, makeProgram(16, 16, 0), Options{Config: cfg, Policy: vm.PageColoring{Colors: cfg.Colors()}, SkipWarmup: true})
	dm := detailed.Total(func(s *CPUStats) uint64 { return s.L2Misses })
	if fast.L2Misses == 0 || dm == 0 {
		t.Fatal("no misses to compare")
	}
	ratio := float64(fast.L2Misses) / float64(dm)
	if ratio < 0.3 || ratio > 3 {
		t.Errorf("fast misses %d vs detailed %d: ratio %.2f out of band", fast.L2Misses, dm, ratio)
	}
}

func TestFastRunRespectsHints(t *testing.T) {
	cfg := smallConfig(2)
	mk := func() *ir.Program {
		p := makeProgram(16, 16, 0)
		// A second sweep creates cross-pass reuse: under page coloring the
		// colliding chunks evict each other between passes; under CDPC the
		// 16 per-CPU pages fit the 16 colors and the second pass hits.
		p.Phases = append(p.Phases, p.Phases[0])
		return p
	}
	base := mk()
	if err := compilerLayout(base, cfg); err != nil {
		t.Fatal(err)
	}
	plain, err := FastRun(base, Options{Config: cfg, Policy: vm.PageColoring{Colors: cfg.Colors()}})
	if err != nil {
		t.Fatal(err)
	}

	hinted := mk()
	if err := compilerLayout(hinted, cfg); err != nil {
		t.Fatal(err)
	}
	sum := compiler.Summarize(hinted)
	h, err := core.ComputeHints(hinted, sum, core.Params{NumCPUs: 2, NumColors: cfg.Colors(), PageSize: cfg.PageSize})
	if err != nil {
		t.Fatal(err)
	}
	cdpc, err := FastRun(hinted, Options{Config: cfg, Policy: vm.PageColoring{Colors: cfg.Colors()}, Hints: h.Colors})
	if err != nil {
		t.Fatal(err)
	}
	if cdpc.L2Misses >= plain.L2Misses {
		t.Errorf("fast mode should see CDPC's miss reduction: %d vs %d", cdpc.L2Misses, plain.L2Misses)
	}
}

func TestWriteBufferTransparentOnBlockingCPU(t *testing.T) {
	// A microarchitectural result the model makes visible: on a
	// single-issue CPU with blocking demand misses, every path that
	// evicts a dirty line is throttled by something slower than the
	// write-back drain (the miss stall itself, or the 4-outstanding
	// prefetch limit), so even a 1-entry write buffer never blocks. The
	// mechanism exists for faster CPU models; here it must be free.
	mk := func(entries int) uint64 {
		cfg := smallConfig(8)
		cfg.WriteBufferEntries = entries
		prog := makeProgram(64, 16, 0) // streaming stores: heavy writebacks
		compiler.InsertPrefetches(prog, compiler.DefaultPrefetch())
		res := mustRun(t, prog, Options{Config: cfg, SkipWarmup: true})
		return res.Total(func(s *CPUStats) uint64 { return s.StallWriteBuffer })
	}
	for _, entries := range []int{0, 1, 8} {
		if got := mk(entries); got != 0 {
			t.Errorf("write buffer (%d entries) stalled %d cycles on a blocking-load CPU", entries, got)
		}
	}
}

func TestWriteBufferMechanism(t *testing.T) {
	// Drive the buffer bookkeeping directly: two dirty evictions in the
	// same cycle with a 1-entry buffer must stall the second until the
	// first write-back's bus transaction completes.
	cfg := smallConfig(1)
	cfg.WriteBufferEntries = 1
	m, err := New(Options{Config: cfg})
	if err != nil {
		t.Fatal(err)
	}
	c := m.cpus[0]
	m.handleLLCEviction(c, true, 0x10000, true)
	if c.stats.StallWriteBuffer != 0 {
		t.Fatal("first eviction must not stall")
	}
	m.handleLLCEviction(c, true, 0x20000, true)
	if c.stats.StallWriteBuffer == 0 {
		t.Error("second same-cycle eviction should stall on the full buffer")
	}
	if c.clock != c.stats.StallWriteBuffer {
		t.Errorf("stall not reflected in clock: clock=%d stall=%d", c.clock, c.stats.StallWriteBuffer)
	}
}
