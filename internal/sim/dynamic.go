package sim

import (
	"repro/internal/bus"
	"repro/internal/vm"
)

// Dynamic page recoloring support: the simulator reports external-cache
// misses to a vm.Recolorer and, when it moves a page, charges the costs
// the paper predicts make the approach expensive on multiprocessors
// (§2.1): the page copy over the shared bus, a TLB shootdown on every
// processor, and invalidation of the old frame's cached lines.

// Dynamic recoloring cost parameters, in cycles. These follow the
// paper's qualitative argument ("the TLB state of each processor must be
// individually flushed and the recoloring operation may generate
// significant inter-processor communication") with magnitudes in line
// with the kernel costs of the base configuration.
const (
	// recolorKernelCycles is the detecting CPU's kernel work per
	// recoloring (allocation, table updates) beyond the copy itself.
	recolorKernelCycles = 2000
	// shootdownCycles is each other CPU's interrupt + TLB invalidate.
	shootdownCycles = 400
)

// maybeRecolor feeds one data miss to the dynamic policy and applies a
// resulting recoloring.
func (m *Machine) maybeRecolor(c *cpuState, vaddr uint64) error {
	ev, err := m.recolorer.ObserveMiss(c.id, vaddr)
	if err != nil {
		return err
	}
	if ev == nil {
		return nil
	}
	m.applyRecoloring(c, ev)
	return nil
}

// applyRecoloring charges a recoloring's costs and keeps the caches,
// shadow caches, TLBs and directory consistent with the page move.
func (m *Machine) applyRecoloring(c *cpuState, ev *RecolorEvent) {
	pageSize := uint64(m.cfg.PageSize)
	lineSize := uint64(m.llcLine)

	// The old frame's lines cease to back the page: drop them from every
	// LLC unit, intermediate level, shadow cache and the directory.
	oldBase := ev.OldFrameBase
	for off := uint64(0); off < pageSize; off += lineSize {
		paddr := oldBase + off
		m.dir.Forget(paddr)
		for _, u := range m.llcUnits {
			u.cacheFor(paddr).Invalidate(paddr)
			u.shadow.Remove(paddr)
		}
		for _, o := range m.cpus {
			for _, mc := range o.mids {
				mc.Invalidate(paddr)
			}
			delete(o.pending, paddr)
		}
	}
	// On-chip caches are virtually indexed; the virtual lines survive the
	// move only if their data were copied, which the kernel does — but
	// their backing physical line changed, so conservatively drop them.
	vbase := ev.VPN * pageSize
	step := uint64(m.cfg.L1D.LineSize)
	for off := uint64(0); off < pageSize; off += step {
		for _, o := range m.cpus {
			o.l1d.Invalidate(vbase + off)
			o.l1i.Invalidate(vbase + off)
		}
	}

	// Costs: page copy over the bus (read + write) charged to the
	// detecting CPU as kernel time; every other CPU takes a shootdown
	// interrupt; every TLB loses the translation.
	done := m.bus.Acquire(c.clock, 2*int(pageSize), bus.Writeback)
	copyCycles := done - c.clock
	c.stats.KernelCycles += copyCycles + recolorKernelCycles
	c.clock += copyCycles + recolorKernelCycles
	c.stats.Recolorings++
	if m.obs != nil {
		m.obs.RecordRecolor(c.id, c.clock, ev.VPN, m.frameColor(ev.OldFrameBase), ev.NewColor)
	}

	for _, o := range m.cpus {
		o.tlb.Invalidate(ev.VPN)
		// The page moved to a new frame: drop any one-entry translation
		// cache holding the stale mapping alongside the TLB entry.
		if o.tcData.vpn == ev.VPN {
			o.tcData.valid = false
		}
		if o.tcInst.vpn == ev.VPN {
			o.tcInst.valid = false
		}
		if o != c {
			o.stats.KernelCycles += shootdownCycles
			o.clock += shootdownCycles
		}
	}
}

// RecolorEvent augments the VM-level event with the old frame's physical
// base, which the simulator needs to sweep stale lines.
type RecolorEvent struct {
	VPN          uint64
	OldFrameBase uint64
	NewColor     int
}

// recolorAdapter bridges vm.Recolorer (which reports vm.RecolorEvent
// without physical addresses) to the simulator's needs by capturing the
// old translation before the move.
type recolorAdapter struct {
	as       *vm.AddressSpace
	inner    *vm.Recolorer
	pageSize uint64
}

func newRecolorAdapter(as *vm.AddressSpace, ncpu int, policy vm.RecolorPolicy, pageSize int) *recolorAdapter {
	return &recolorAdapter{
		as:       as,
		inner:    vm.NewRecolorer(as, ncpu, policy),
		pageSize: uint64(pageSize),
	}
}

// ObserveMiss wraps the VM policy, translating before the potential move
// so the old frame base is known.
func (r *recolorAdapter) ObserveMiss(cpu int, vaddr uint64) (*RecolorEvent, error) {
	oldPaddr, ok := r.as.TranslateNoFault(vaddr)
	if !ok {
		return nil, nil
	}
	ev, err := r.inner.ObserveMiss(cpu, vaddr)
	if err != nil || ev == nil {
		return nil, err
	}
	return &RecolorEvent{
		VPN:          ev.VPN,
		OldFrameBase: oldPaddr &^ (r.pageSize - 1),
		NewColor:     ev.NewColor,
	}, nil
}

// Recolorings reports how many recolorings the policy performed.
func (r *recolorAdapter) Recolorings() uint64 { return r.inner.Recolorings }
