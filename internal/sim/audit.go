package sim

import (
	"fmt"

	"repro/internal/obs"
)

// Audit checks the result's conservation invariants and returns every
// violation found (nil when the accounting is sound):
//
//  1. Cycle conservation, per CPU: ExecCycles + MemStallCycles +
//     OverheadCycles == WallCycles. Every simulated cycle is booked into
//     exactly one bucket; CPUs synchronize at nest barriers, so each
//     processor's accounted time must equal the wall clock.
//  2. Miss conservation, per CPU: Cold + Conflict + Capacity +
//     TrueShare + FalseShare + InstMisses == L2Misses. Every external-
//     cache miss lands in exactly one class.
//  3. Bus occupancy: Bus.Total() <= WallCycles. A single shared bus
//     cannot be busy for more cycles than elapse; exceeding the wall
//     clock means some transaction was charged twice (the writeback-
//     after-remote-supply double count this audit originally caught).
//  4. Instruction conservation, per CPU: Instructions == ExecCycles.
//     The machine is single-issue at 1 IPC: every retired instruction is
//     exactly one useful-execution cycle, so the two counters move in
//     lockstep or one of them leaked.
//  5. Upgrade accounting, per CPU: StallUpgrade > 0 requires
//     Upgrades > 0. Upgrade stall is only ever charged at an ownership-
//     upgrade event, which increments the counter in the same breath.
//  6. Prefetch accounting, per CPU: PrefetchesIssued +
//     PrefetchesDropped <= Instructions (every prefetch outcome
//     corresponds to one retired prefetch instruction), and
//     StallPrefetch > 0 requires PrefetchedHits + PrefetchesIssued > 0
//     (prefetch stall arises only while issuing past the outstanding
//     limit or awaiting an in-flight line's arrival).
//  7. Remote supply, per CPU: RemoteSupplies <= L2Misses. A dirty
//     remote supply services exactly one demand miss.
//  8. Bus queueing, per CPU: BusQueueCycles <= the demand-miss stall
//     buckets (cold + conflict + capacity + true + false + inst).
//     Queueing delay is a component of miss stall, never booked beyond
//     it.
//  9. Kernel attribution, machine-wide: KernelCycles > 0 requires
//     TLBMisses + PageFaults + Recolorings + ContextSwitches > 0.
//     Kernel time comes only from TLB refills, page-fault service,
//     recoloring work (copies and shootdowns, which some other CPU's
//     Recolorings counter records) and time-slice context switches.
//  10. Hint accounting: HonoredHints <= HintedFaults <= PageFaults.
//     Hint outcomes are nested subsets of the fault stream.
//  11. Sampling accounting: a sampled result must record at least one
//     measured window, with SampledIters <= RepresentedIters (windows
//     only extrapolate up) and RepresentedIters > 0; a full-fidelity
//     result must carry zero sampling counters — extrapolation state
//     leaking into a full run means some path scaled counters it
//     should not have.
//  12. Cross-domain isolation: per CPU, CrossDomainConflicts <=
//     L2Misses-InstMisses (at most one cross-domain eviction is
//     attributed per data miss), and on an Isolated result the
//     machine-wide cross-domain total must be exactly zero. The second
//     half is the partitioning theorem made checkable: a page color is
//     the high bits of the external-cache set index, so frames from
//     disjoint per-domain color subsets can never map to the same set,
//     and an eviction can never displace a foreign domain's line. A
//     violation means the allocator leaked a frame across a partition.
//  13. Slice conservation: when the result carries a per-slice miss
//     split (sliced-LLC topologies at full fidelity), the split must
//     sum to the machine-wide L2Misses total — every miss is hashed to
//     exactly one slice.
//
// The invariants hold for weighted (phase-occurrence-scaled) results
// because each phase satisfies them individually, and for sampled
// results because Scale re-derives every dependent counter from the
// scaled independent ones (see Result.Scale).
func (r *Result) Audit() []obs.Violation {
	var vs []obs.Violation
	var kernel, tlbMisses, cpuFaults, recolorings, switches, crossDomain uint64
	for i := range r.PerCPU {
		s := &r.PerCPU[i]
		crossDomain += s.CrossDomainConflicts
		kernel += s.KernelCycles
		tlbMisses += s.TLBMisses
		cpuFaults += s.PageFaults
		recolorings += s.Recolorings
		switches += s.ContextSwitches
		if total := s.TotalCycles(); total != r.WallCycles {
			vs = append(vs, obs.Violation{
				Check: "cycle-conservation",
				Detail: fmt.Sprintf("cpu %d: exec+stall+overhead = %d but wall = %d (drift %+d)",
					i, total, r.WallCycles, int64(total)-int64(r.WallCycles)),
			})
		}
		split := s.ColdMisses + s.ConflictMisses + s.CapacityMisses +
			s.TrueShareMisses + s.FalseShareMisses + s.InstMisses
		if split != s.L2Misses {
			vs = append(vs, obs.Violation{
				Check: "miss-conservation",
				Detail: fmt.Sprintf("cpu %d: cold %d + conflict %d + capacity %d + true %d + false %d + inst %d = %d but L2 misses = %d",
					i, s.ColdMisses, s.ConflictMisses, s.CapacityMisses,
					s.TrueShareMisses, s.FalseShareMisses, s.InstMisses, split, s.L2Misses),
			})
		}
		if s.Instructions != s.ExecCycles {
			vs = append(vs, obs.Violation{
				Check: "instruction-conservation",
				Detail: fmt.Sprintf("cpu %d: instructions %d != exec cycles %d on a single-issue machine",
					i, s.Instructions, s.ExecCycles),
			})
		}
		if s.StallUpgrade > 0 && s.Upgrades == 0 {
			vs = append(vs, obs.Violation{
				Check: "upgrade-accounting",
				Detail: fmt.Sprintf("cpu %d: %d upgrade stall cycles with zero upgrades",
					i, s.StallUpgrade),
			})
		}
		if outcomes := s.PrefetchesIssued + s.PrefetchesDropped; outcomes > s.Instructions {
			vs = append(vs, obs.Violation{
				Check: "prefetch-accounting",
				Detail: fmt.Sprintf("cpu %d: issued %d + dropped %d prefetches = %d outcomes > %d instructions",
					i, s.PrefetchesIssued, s.PrefetchesDropped, outcomes, s.Instructions),
			})
		}
		if s.StallPrefetch > 0 && s.PrefetchedHits+s.PrefetchesIssued == 0 {
			vs = append(vs, obs.Violation{
				Check: "prefetch-accounting",
				Detail: fmt.Sprintf("cpu %d: %d prefetch stall cycles with no prefetched hit or issue",
					i, s.StallPrefetch),
			})
		}
		if s.RemoteSupplies > s.L2Misses {
			vs = append(vs, obs.Violation{
				Check: "remote-supply",
				Detail: fmt.Sprintf("cpu %d: %d remote supplies > %d L2 misses",
					i, s.RemoteSupplies, s.L2Misses),
			})
		}
		missStall := s.StallCold + s.StallConflict + s.StallCapacity +
			s.StallTrue + s.StallFalse + s.StallInst
		if s.BusQueueCycles > missStall {
			vs = append(vs, obs.Violation{
				Check: "bus-queue",
				Detail: fmt.Sprintf("cpu %d: %d bus queue cycles > %d demand-miss stall cycles",
					i, s.BusQueueCycles, missStall),
			})
		}
		if s.CrossDomainConflicts+s.InstMisses > s.L2Misses {
			vs = append(vs, obs.Violation{
				Check: "cross-domain-isolation",
				Detail: fmt.Sprintf("cpu %d: %d cross-domain evictions > %d data misses",
					i, s.CrossDomainConflicts, s.L2Misses-s.InstMisses),
			})
		}
	}
	if r.Isolated && crossDomain > 0 {
		vs = append(vs, obs.Violation{
			Check: "cross-domain-isolation",
			Detail: fmt.Sprintf("%d cross-domain evictions on a color-partitioned run: a frame escaped its domain's partition",
				crossDomain),
		})
	}
	if kernel > 0 && tlbMisses+cpuFaults+recolorings+switches == 0 {
		vs = append(vs, obs.Violation{
			Check:  "kernel-attribution",
			Detail: fmt.Sprintf("%d kernel cycles with zero TLB misses, page faults, recolorings and context switches", kernel),
		})
	}
	if r.HintedFaults > r.PageFaults || r.HonoredHints > r.HintedFaults {
		vs = append(vs, obs.Violation{
			Check: "hint-accounting",
			Detail: fmt.Sprintf("honored %d <= hinted %d <= faults %d violated",
				r.HonoredHints, r.HintedFaults, r.PageFaults),
		})
	}
	if total := r.Bus.Total(); total > r.WallCycles {
		vs = append(vs, obs.Violation{
			Check: "bus-occupancy",
			Detail: fmt.Sprintf("bus busy %d cycles (data %d, writeback %d, upgrade %d) > wall %d: utilization %.3f",
				total, r.Bus.DataCycles, r.Bus.WritebackCycles, r.Bus.UpgradeCycles,
				r.WallCycles, r.BusUtilization()),
		})
	}
	if len(r.SliceMisses) > 0 {
		var bySlice, total uint64
		for _, n := range r.SliceMisses {
			bySlice += n
		}
		for i := range r.PerCPU {
			total += r.PerCPU[i].L2Misses
		}
		if bySlice != total {
			vs = append(vs, obs.Violation{
				Check: "slice-conservation",
				Detail: fmt.Sprintf("per-slice misses sum to %d but L2 misses total %d across %d slices",
					bySlice, total, len(r.SliceMisses)),
			})
		}
	}
	if r.Sampled() {
		if r.SampledWindows == 0 || r.RepresentedIters == 0 {
			vs = append(vs, obs.Violation{
				Check: "sampling-accounting",
				Detail: fmt.Sprintf("sampled result with %d measured windows representing %d iterations",
					r.SampledWindows, r.RepresentedIters),
			})
		}
		if r.SampledIters > r.RepresentedIters {
			vs = append(vs, obs.Violation{
				Check: "sampling-accounting",
				Detail: fmt.Sprintf("simulated %d outer iterations > %d represented: extrapolation weights below 1",
					r.SampledIters, r.RepresentedIters),
			})
		}
	} else if r.WarmupRefs+r.SampledWindows+r.SampledIters+r.RepresentedIters > 0 {
		vs = append(vs, obs.Violation{
			Check: "sampling-accounting",
			Detail: fmt.Sprintf("full-fidelity result carries sampling counters (warm refs %d, windows %d, iters %d/%d)",
				r.WarmupRefs, r.SampledWindows, r.SampledIters, r.RepresentedIters),
		})
	}
	return vs
}
