package sim

import (
	"fmt"

	"repro/internal/obs"
)

// Audit checks the result's conservation invariants and returns every
// violation found (nil when the accounting is sound):
//
//  1. Cycle conservation, per CPU: ExecCycles + MemStallCycles +
//     OverheadCycles == WallCycles. Every simulated cycle is booked into
//     exactly one bucket; CPUs synchronize at nest barriers, so each
//     processor's accounted time must equal the wall clock.
//  2. Miss conservation, per CPU: Cold + Conflict + Capacity +
//     TrueShare + FalseShare + InstMisses == L2Misses. Every external-
//     cache miss lands in exactly one class.
//  3. Bus occupancy: Bus.Total() <= WallCycles. A single shared bus
//     cannot be busy for more cycles than elapse; exceeding the wall
//     clock means some transaction was charged twice (the writeback-
//     after-remote-supply double count this audit originally caught).
//
// The invariants hold for weighted (phase-occurrence-scaled) results
// because each phase satisfies them individually.
func (r *Result) Audit() []obs.Violation {
	var vs []obs.Violation
	for i := range r.PerCPU {
		s := &r.PerCPU[i]
		if total := s.TotalCycles(); total != r.WallCycles {
			vs = append(vs, obs.Violation{
				Check: "cycle-conservation",
				Detail: fmt.Sprintf("cpu %d: exec+stall+overhead = %d but wall = %d (drift %+d)",
					i, total, r.WallCycles, int64(total)-int64(r.WallCycles)),
			})
		}
		split := s.ColdMisses + s.ConflictMisses + s.CapacityMisses +
			s.TrueShareMisses + s.FalseShareMisses + s.InstMisses
		if split != s.L2Misses {
			vs = append(vs, obs.Violation{
				Check: "miss-conservation",
				Detail: fmt.Sprintf("cpu %d: cold %d + conflict %d + capacity %d + true %d + false %d + inst %d = %d but L2 misses = %d",
					i, s.ColdMisses, s.ConflictMisses, s.CapacityMisses,
					s.TrueShareMisses, s.FalseShareMisses, s.InstMisses, split, s.L2Misses),
			})
		}
	}
	if total := r.Bus.Total(); total > r.WallCycles {
		vs = append(vs, obs.Violation{
			Check: "bus-occupancy",
			Detail: fmt.Sprintf("bus busy %d cycles (data %d, writeback %d, upgrade %d) > wall %d: utilization %.3f",
				total, r.Bus.DataCycles, r.Bus.WritebackCycles, r.Bus.UpgradeCycles,
				r.WallCycles, r.BusUtilization()),
		})
	}
	return vs
}
