package sim

import (
	"reflect"
	"testing"
)

func crossDomainTotal(r *Result) uint64 {
	return r.Total(func(s *CPUStats) uint64 { return s.CrossDomainConflicts })
}

func TestIsolatedRunZeroCrossDomain(t *testing.T) {
	sched := SchedOptions{Policy: SchedTimeSlice, Quantum: 50_000}

	shared := multiRun(t, Options{Config: smallConfig(4)}, twoProcs(true), sched)
	if shared.Total.Isolated {
		t.Error("unpartitioned run reports Isolated")
	}
	if crossDomainTotal(shared.Total) == 0 {
		t.Error("conflicting co-runners produced no cross-domain evictions unpartitioned; the counter is not firing")
	}

	iso := multiRun(t, Options{Config: smallConfig(4), Isolate: true}, twoProcs(true), sched)
	if vs := iso.Audit(); len(vs) != 0 {
		for _, v := range vs {
			t.Errorf("audit: %s: %s", v.Check, v.Detail)
		}
	}
	if !iso.Total.Isolated {
		t.Error("partitioned run does not report Isolated")
	}
	if got := crossDomainTotal(iso.Total); got != 0 {
		t.Errorf("%d cross-domain evictions on a partitioned run, want exactly 0", got)
	}
	for i, r := range iso.PerProcess {
		if !r.Isolated {
			t.Errorf("proc %d does not report Isolated", i+1)
		}
		if got := crossDomainTotal(r); got != 0 {
			t.Errorf("proc %d: %d cross-domain evictions, want 0", i+1, got)
		}
	}
}

func TestIsolatedRunDeterministic(t *testing.T) {
	sched := SchedOptions{Policy: SchedTimeSlice, Quantum: 40_000}
	a := multiRun(t, Options{Config: smallConfig(4), Isolate: true}, twoProcs(true), sched)
	b := multiRun(t, Options{Config: smallConfig(4), Isolate: true}, twoProcs(true), sched)
	if !reflect.DeepEqual(a, b) {
		t.Error("identical isolated runs diverged")
	}
}

func TestResolveDomainsGrouping(t *testing.T) {
	// Labels {7, 0, 7, 3}: pid 1 and 3 share a domain (first appearance
	// renumbers 7 -> 1), pid 2 gets its own, pid 4's label 3 renumbers
	// after pid 2's implicit domain.
	procs := []ProcessOptions{{Domain: 7}, {}, {Domain: 7}, {Domain: 3}}
	got := resolveDomains(procs)
	want := map[int]int{1: 1, 2: 2, 3: 1, 4: 3}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("resolveDomains = %v, want %v", got, want)
	}
}

func TestRunProcessesRejectsNegativeDomain(t *testing.T) {
	m, err := New(Options{Config: smallConfig(4)})
	if err != nil {
		t.Fatal(err)
	}
	procs := twoProcs(false)
	procs[1].Domain = -1
	if _, err := m.RunProcesses(procs, SchedOptions{Policy: SchedTimeSlice}); err == nil {
		t.Error("negative Domain accepted")
	}
}

// TestAuditCatchesCrossDomainLeak fabricates the two invariant-12
// violations on an otherwise-clean result: a nonzero machine-wide
// cross-domain total on an Isolated result (a frame escaped its
// partition), and a per-CPU count exceeding the data misses that could
// have carried it.
func TestAuditCatchesCrossDomainLeak(t *testing.T) {
	mr := multiRun(t, Options{Config: smallConfig(4), Isolate: true}, twoProcs(true),
		SchedOptions{Policy: SchedTimeSlice, Quantum: 50_000})
	hasCheck := func(r *Result, check string) bool {
		for _, v := range r.Audit() {
			if v.Check == check {
				return true
			}
		}
		return false
	}

	leaked := *mr.Total
	leaked.PerCPU = append([]CPUStats(nil), mr.Total.PerCPU...)
	leaked.PerCPU[0].CrossDomainConflicts = 1
	if !hasCheck(&leaked, "cross-domain-isolation") {
		t.Error("audit missed a cross-domain eviction on an Isolated result")
	}

	over := *mr.Total
	over.Isolated = false
	over.PerCPU = append([]CPUStats(nil), mr.Total.PerCPU...)
	over.PerCPU[0].CrossDomainConflicts = over.PerCPU[0].L2Misses + 1
	if !hasCheck(&over, "cross-domain-isolation") {
		t.Error("audit missed a cross-domain count exceeding the CPU's data misses")
	}
}
