package sim

import (
	"fmt"

	"repro/internal/bus"
	"repro/internal/coherence"
	"repro/internal/obs"
	"repro/internal/trace"
)

// step processes one reference on CPU c, advancing its clock.
func (m *Machine) step(c *cpuState, r *trace.Ref) error {
	switch r.Kind {
	case trace.Prefetch:
		return m.stepPrefetch(c, r)
	case trace.Inst:
		return m.stepInst(c, r)
	default:
		return m.stepData(c, r)
	}
}

// stepData handles a demand load or store.
func (m *Machine) stepData(c *cpuState, r *trace.Ref) error {
	work := uint64(r.Work) + 1 // the memory instruction itself plus its arithmetic
	c.stats.Instructions += work
	c.stats.ExecCycles += work
	c.clock += work

	// Address translation: TLB, then the one-entry translation cache,
	// then the page table (possibly faulting). The cached (VPN → page
	// base) entry short-circuits the page-table map lookup that would
	// otherwise be paid on every reference; recoloring invalidates it.
	vpn := r.VAddr >> m.pageShift
	if !c.tlb.Lookup(vpn) {
		c.stats.TLBMisses++
		c.stats.KernelCycles += uint64(m.cfg.TLBMissCycles)
		c.clock += uint64(m.cfg.TLBMissCycles)
	}
	var paddr uint64
	if c.tcData.valid && c.tcData.vpn == vpn {
		paddr = c.tcData.pbase | (r.VAddr & m.pageMask)
	} else {
		pbase, faulted, err := c.as.TranslateVPN(vpn, c.id)
		if err != nil {
			return fmt.Errorf("sim: cpu %d: %w", c.id, err)
		}
		if faulted {
			c.stats.PageFaults++
			c.stats.KernelCycles += uint64(m.cfg.PageFaultCycles)
			c.clock += uint64(m.cfg.PageFaultCycles)
		}
		c.tcData = transCache{vpn: vpn, pbase: pbase, valid: true}
		paddr = pbase | (r.VAddr & m.pageMask)
	}

	write := r.Kind == trace.Write
	l1 := c.l1d.Access(r.VAddr, write)
	if l1.Evicted && l1.VictimDirty {
		// The on-chip victim is written back into the inclusive external
		// cache (no bus traffic, no stall).
		if vp, ok := c.as.TranslateNoFault(l1.VictimAddr); ok {
			c.l2.MarkDirty(vp)
		}
	}
	if l1.Hit && !write {
		return nil // on-chip load hit: 1 cycle, already charged
	}

	// External-cache level. Stores always check the directory so that
	// upgrades and invalidations of shared lines are modeled even on
	// on-chip hits (inclusion guarantees the line is in L2 as well).
	out := m.dir.Access(c.id, paddr, write)
	m.applyDowngrade(paddr, out.Downgraded)
	m.applyInvalidations(c, paddr, out.Invalidated)

	shadowHit := false
	if !m.opts.DisableClassification {
		shadowHit = c.shadow.Access(paddr)
	}
	res := c.l2.Access(paddr, write)
	m.handleL2Eviction(c, res.Evicted, res.VictimAddr, res.VictimDirty)

	if res.Hit {
		if out.Upgrade {
			done := m.bus.Acquire(c.clock, 0, bus.Upgrade)
			c.stats.StallUpgrade += done - c.clock
			c.stats.Upgrades++
			c.clock = done
		}
		if !l1.Hit {
			la := m.cfg.L2.LineAddr(paddr)
			if ready, pending := c.pending[la]; pending {
				delete(c.pending, la)
				c.stats.PrefetchedHits++
				if ready > c.clock {
					c.stats.StallPrefetch += ready - c.clock
					c.clock = ready
				}
			}
			c.stats.StallOnChip += uint64(m.cfg.L2HitCycles)
			c.clock += uint64(m.cfg.L2HitCycles)
		}
		return nil
	}

	// Full external-cache miss.
	stall := m.missCycles(c, paddr, out.DirtyRemote)
	m.chargeMiss(c, out.Class, shadowHit, stall)
	// Cross-domain attribution: a data miss that displaced a victim
	// owned by a foreign isolation domain / process is a cache-set
	// conflict between domains — the co-scheduled collision pathology —
	// whatever class the accessor's own miss lands in (the incoming
	// process's first sweep over a co-runner's lines classifies cold or
	// capacity). Off (crossCheck false) for single-process runs.
	if m.crossCheck && res.Evicted && m.crossDomainVictim(c.pid, res.VictimAddr) {
		c.stats.CrossDomainConflicts++
		if m.obs != nil {
			m.obs.RecordCrossDomainPID(c.pid, c.id, c.clock, vpn, m.frameColor(res.VictimAddr))
		}
	}
	if m.obs != nil {
		m.obs.RecordMissPID(c.pid, c.id, c.clock, vpn, m.frameColor(paddr), obsClass(out.Class, shadowHit), stall)
	}
	c.clock += stall
	if m.recolorer != nil {
		return m.maybeRecolor(c, r.VAddr)
	}
	return nil
}

// stepInst handles an instruction fetch (one on-chip I-cache line worth
// of instructions; r.Work carries the instruction count).
func (m *Machine) stepInst(c *cpuState, r *trace.Ref) error {
	work := uint64(r.Work)
	c.stats.Instructions += work
	c.stats.ExecCycles += work
	c.clock += work

	if c.l1i.Access(r.VAddr, false).Hit {
		return nil
	}
	vpn := r.VAddr >> m.pageShift
	var paddr uint64
	if c.tcInst.valid && c.tcInst.vpn == vpn {
		paddr = c.tcInst.pbase | (r.VAddr & m.pageMask)
	} else {
		pbase, faulted, err := c.as.TranslateVPN(vpn, c.id)
		if err != nil {
			return fmt.Errorf("sim: cpu %d (inst): %w", c.id, err)
		}
		if faulted {
			c.stats.PageFaults++
			c.stats.KernelCycles += uint64(m.cfg.PageFaultCycles)
			c.clock += uint64(m.cfg.PageFaultCycles)
		}
		c.tcInst = transCache{vpn: vpn, pbase: pbase, valid: true}
		paddr = pbase | (r.VAddr & m.pageMask)
	}
	out := m.dir.Access(c.id, paddr, false)
	m.applyDowngrade(paddr, out.Downgraded)
	if !m.opts.DisableClassification {
		c.shadow.Access(paddr)
	}
	res := c.l2.Access(paddr, false)
	m.handleL2Eviction(c, res.Evicted, res.VictimAddr, res.VictimDirty)
	if res.Hit {
		// fpppp's signature cost: instruction fetches served by the
		// external cache (§4.1).
		c.stats.StallInst += uint64(m.cfg.L2HitCycles)
		c.clock += uint64(m.cfg.L2HitCycles)
		return nil
	}
	c.stats.L2Misses++
	c.stats.InstMisses++
	stall := m.missCycles(c, paddr, out.DirtyRemote)
	c.stats.StallInst += stall
	if m.obs != nil {
		m.obs.RecordMissPID(c.pid, c.id, c.clock, vpn, m.frameColor(paddr), obs.InstFetch, stall)
	}
	c.clock += stall
	// Code pages conflict-miss like data pages do; feed the dynamic
	// policy so a thrashing hot code page can be recolored too.
	if m.recolorer != nil {
		return m.maybeRecolor(c, r.VAddr)
	}
	return nil
}

// stepPrefetch handles a non-binding software prefetch (§6.2): dropped on
// a TLB miss, at most MaxOutstandingPrefetches in flight (one more stalls
// the CPU), fills the external cache only.
func (m *Machine) stepPrefetch(c *cpuState, r *trace.Ref) error {
	c.stats.Instructions++
	c.stats.ExecCycles++
	c.clock++

	vpn := r.VAddr >> m.pageShift
	if !c.tlb.Probe(vpn) {
		c.stats.PrefetchesDropped++
		return nil
	}
	var paddr uint64
	if c.tcData.valid && c.tcData.vpn == vpn {
		paddr = c.tcData.pbase | (r.VAddr & m.pageMask)
	} else {
		pa, ok := c.as.TranslateNoFault(r.VAddr)
		if !ok {
			c.stats.PrefetchesDropped++
			return nil
		}
		c.tcData = transCache{vpn: vpn, pbase: pa &^ m.pageMask, valid: true}
		paddr = pa
	}
	la := m.cfg.L2.LineAddr(paddr)
	if _, inflight := c.pending[la]; inflight || c.l2.Probe(paddr) {
		return nil // already resident or already coming
	}

	// Enforce the outstanding-prefetch limit: issuing a fifth prefetch
	// stalls the processor until a slot frees up.
	c.pruneOutstanding()
	if len(c.outstanding) >= m.cfg.MaxOutstandingPrefetches {
		earliest := c.outstanding[0]
		for _, t := range c.outstanding[1:] {
			if t < earliest {
				earliest = t
			}
		}
		if earliest > c.clock {
			c.stats.StallPrefetch += earliest - c.clock
			c.clock = earliest
		}
		c.pruneOutstanding()
	}

	out := m.dir.Access(c.id, paddr, false)
	m.applyDowngrade(paddr, out.Downgraded)
	m.applyInvalidations(c, paddr, out.Invalidated)
	latency := uint64(m.cfg.MemCycles)
	if out.DirtyRemote {
		latency = uint64(m.cfg.RemoteCycles)
	}
	done := m.bus.Acquire(c.clock, m.cfg.L2.LineSize, bus.Data)
	queue := done - c.clock - m.bus.HoldCycles(m.cfg.L2.LineSize)
	arrival := c.clock + queue + latency + c.memJitter(m.cfg.MemJitterCycles)

	if !m.opts.DisableClassification {
		c.shadow.Access(paddr)
	}
	res := c.l2.Access(paddr, false)
	m.handleL2Eviction(c, res.Evicted, res.VictimAddr, res.VictimDirty)

	c.pending[la] = arrival
	c.outstanding = append(c.outstanding, arrival)
	c.stats.PrefetchesIssued++
	return nil
}

// pruneOutstanding drops completed prefetches from the in-flight list.
func (c *cpuState) pruneOutstanding() {
	live := c.outstanding[:0]
	for _, t := range c.outstanding {
		if t > c.clock {
			live = append(live, t)
		}
	}
	c.outstanding = live
}

// missCycles charges the bus transaction for a line fetch and returns
// the total stall: queueing delay plus the (contention-free) latency
// plus a small deterministic jitter modeling DRAM timing variance.
func (m *Machine) missCycles(c *cpuState, paddr uint64, dirtyRemote bool) uint64 {
	if m.missTrace != nil {
		m.missTrace(c.id, c.clock, paddr)
	}
	latency := uint64(m.cfg.MemCycles)
	if dirtyRemote {
		latency = uint64(m.cfg.RemoteCycles)
		c.stats.RemoteSupplies++
	}
	done := m.bus.Acquire(c.clock, m.cfg.L2.LineSize, bus.Data)
	queue := done - c.clock - m.bus.HoldCycles(m.cfg.L2.LineSize)
	c.stats.BusQueueCycles += queue
	return queue + latency + c.memJitter(m.cfg.MemJitterCycles)
}

// memJitter returns a deterministic per-CPU, per-miss latency
// perturbation in [0, bound).
func (c *cpuState) memJitter(bound int) uint64 {
	if bound <= 0 {
		return 0
	}
	h := uint64(c.id)*0x9e3779b97f4a7c15 + c.stats.L2Misses*0x2545f4914f6cdd1d
	h ^= h >> 33
	return (h * 0x5851f42d4c957f2d >> 48) % uint64(bound)
}

// chargeMiss books a data miss's stall into the right class bucket.
func (m *Machine) chargeMiss(c *cpuState, class coherence.Class, shadowHit bool, stall uint64) {
	c.stats.L2Misses++
	switch class {
	case coherence.Cold:
		c.stats.ColdMisses++
		c.stats.StallCold += stall
	case coherence.TrueShare:
		c.stats.TrueShareMisses++
		c.stats.StallTrue += stall
	case coherence.FalseShare:
		c.stats.FalseShareMisses++
		c.stats.StallFalse += stall
	default: // Replacement (or a directory/cache disagreement: count it here)
		if shadowHit {
			c.stats.ConflictMisses++
			c.stats.StallConflict += stall
		} else {
			c.stats.CapacityMisses++
			c.stats.StallCapacity += stall
		}
	}
}

// obsClass maps the simulator's miss classification (coherence class
// plus the shadow-cache split chargeMiss applies) onto the attribution
// classes.
func obsClass(class coherence.Class, shadowHit bool) obs.MissClass {
	switch class {
	case coherence.Cold:
		return obs.Cold
	case coherence.TrueShare:
		return obs.TrueShare
	case coherence.FalseShare:
		return obs.FalseShare
	default:
		if shadowHit {
			return obs.Conflict
		}
		return obs.Capacity
	}
}

// applyDowngrade mirrors a directory read-downgrade into the supplying
// owner's external cache: flushing the dirty line to memory as part of
// the supply leaves the owner's copy clean. Without this, the owner's
// eventual eviction of the line charged a second writeback transaction
// for data memory already held — the bus-occupancy double count that
// pushed BusUtilization past 1 on sharing-heavy runs.
func (m *Machine) applyDowngrade(paddr uint64, owner int) {
	if owner >= 0 {
		m.cpus[owner].l2.Clean(paddr)
	}
}

// applyInvalidations mirrors directory invalidations into the other CPUs'
// external caches, shadow caches and (via the reverse map) their
// virtually indexed on-chip caches, preserving inclusion. The reverse
// map is the accessing CPU's current address space: under time-slicing
// every CPU runs the same process, and across space partitions a frame
// belongs to exactly one live process, so stale sharers from an exited
// process only need their physically indexed state dropped (their
// virtually indexed L1s were flushed when they switched out).
func (m *Machine) applyInvalidations(c *cpuState, paddr uint64, cpus []int) {
	if len(cpus) == 0 {
		return
	}
	vaddr, haveV := c.as.ReverseVAddr(paddr)
	la := m.cfg.L2.LineAddr(paddr)
	for _, p := range cpus {
		o := m.cpus[p]
		o.l2.Invalidate(paddr)
		o.shadow.Remove(paddr)
		delete(o.pending, la)
		if haveV {
			o.l1d.Invalidate(vaddr)
			o.l1i.Invalidate(vaddr)
		}
	}
}

// handleL2Eviction keeps the directory, the on-chip caches (inclusion)
// and the write-back traffic consistent with an external-cache eviction.
func (m *Machine) handleL2Eviction(c *cpuState, evicted bool, victim uint64, dirty bool) {
	if !evicted {
		return
	}
	m.dir.Evict(c.id, victim)
	delete(c.pending, m.cfg.L2.LineAddr(victim))
	// The victim may belong to a descheduled process (physical tags
	// survive context switches); c.as then has no reverse mapping and the
	// on-chip invalidation is skipped — those L1 lines were flushed when
	// the owning process switched out.
	if vaddr, ok := c.as.ReverseVAddr(victim); ok {
		// Inclusion: every on-chip line within the evicted external line
		// must go. On-chip lines are smaller; invalidate each.
		step := uint64(m.cfg.L1D.LineSize)
		for off := uint64(0); off < uint64(m.cfg.L2.LineSize); off += step {
			c.l1d.Invalidate(vaddr + off)
			c.l1i.Invalidate(vaddr + off)
		}
	}
	if dirty {
		// Write-back buffers hide the latency from the processor as long
		// as an entry is free; a full buffer stalls the CPU until the
		// oldest write-back's bus transaction completes.
		if n := m.cfg.WriteBufferEntries; n > 0 {
			live := c.writeBuffer[:0]
			for _, t := range c.writeBuffer {
				if t > c.clock {
					live = append(live, t)
				}
			}
			c.writeBuffer = live
			if len(c.writeBuffer) >= n {
				oldest := c.writeBuffer[0]
				for _, t := range c.writeBuffer[1:] {
					if t < oldest {
						oldest = t
					}
				}
				c.stats.StallWriteBuffer += oldest - c.clock
				c.clock = oldest
			}
		}
		done := m.bus.Acquire(c.clock, m.cfg.L2.LineSize, bus.Writeback)
		if m.cfg.WriteBufferEntries > 0 {
			c.writeBuffer = append(c.writeBuffer, done)
		}
	}
}
