package sim

import (
	"fmt"

	"repro/internal/bus"
	"repro/internal/coherence"
	"repro/internal/obs"
	"repro/internal/trace"
)

// step processes one reference on CPU c, advancing its clock.
func (m *Machine) step(c *cpuState, r *trace.Ref) error {
	switch r.Kind {
	case trace.Prefetch:
		return m.stepPrefetch(c, r)
	case trace.Inst:
		return m.stepInst(c, r)
	default:
		return m.stepData(c, r)
	}
}

// stepData handles a demand load or store.
func (m *Machine) stepData(c *cpuState, r *trace.Ref) error {
	work := uint64(r.Work) + 1 // the memory instruction itself plus its arithmetic
	c.stats.Instructions += work
	c.stats.ExecCycles += work
	c.clock += work

	// Address translation: TLB, then the one-entry translation cache,
	// then the page table (possibly faulting). The cached (VPN → page
	// base) entry short-circuits the page-table map lookup that would
	// otherwise be paid on every reference; recoloring invalidates it.
	vpn := r.VAddr >> m.pageShift
	if !c.tlb.Lookup(vpn) {
		c.stats.TLBMisses++
		c.stats.KernelCycles += uint64(m.cfg.TLBMissCycles)
		c.clock += uint64(m.cfg.TLBMissCycles)
	}
	var paddr uint64
	if c.tcData.valid && c.tcData.vpn == vpn {
		paddr = c.tcData.pbase | (r.VAddr & m.pageMask)
	} else {
		pbase, faulted, err := c.as.TranslateVPN(vpn, c.id)
		if err != nil {
			return fmt.Errorf("sim: cpu %d: %w", c.id, err)
		}
		if faulted {
			c.stats.PageFaults++
			c.stats.KernelCycles += uint64(m.cfg.PageFaultCycles)
			c.clock += uint64(m.cfg.PageFaultCycles)
		}
		c.tcData = transCache{vpn: vpn, pbase: pbase, valid: true}
		paddr = pbase | (r.VAddr & m.pageMask)
	}

	write := r.Kind == trace.Write
	l1 := c.l1d.Access(r.VAddr, write)
	if l1.Evicted && l1.VictimDirty {
		// The on-chip victim is written back into the innermost
		// physically indexed level holding it (no bus traffic, no stall).
		if vp, ok := c.as.TranslateNoFault(l1.VictimAddr); ok {
			m.markDirtyPhys(c, vp)
		}
	}
	if l1.Hit && !write {
		return nil // on-chip load hit: 1 cycle, already charged
	}

	// Physically indexed hierarchy. Stores always check the directory so
	// that upgrades and invalidations of shared lines are modeled even on
	// on-chip hits (inclusion guarantees the line is in the LLC as well).
	out := m.dir.Access(c.llc.id, paddr, write)
	m.applyDowngrade(paddr, out.Downgraded)
	m.applyInvalidations(c, paddr, out.Invalidated)

	// Intermediate levels, inner to outer: the innermost hit services
	// the access at that level's latency. The LLC is accessed either
	// way — it is the coherence point, and its tags must see every
	// physical reference to stay inclusive of the levels above.
	serviced := m.accessMids(c, paddr, write)

	shadowHit := false
	if !m.opts.DisableClassification {
		shadowHit = c.llc.shadow.Access(paddr)
	}
	res := c.llc.cacheFor(paddr).Access(paddr, write)
	m.handleLLCEviction(c, res.Evicted, res.VictimAddr, res.VictimDirty)

	if res.Hit || serviced >= 0 {
		if out.Upgrade {
			done := m.bus.Acquire(c.clock, 0, bus.Upgrade)
			c.stats.StallUpgrade += done - c.clock
			c.stats.Upgrades++
			c.clock = done
		}
		if !l1.Hit {
			la := m.llcLineAddr(paddr)
			if ready, pending := c.pending[la]; pending {
				delete(c.pending, la)
				c.stats.PrefetchedHits++
				if ready > c.clock {
					c.stats.StallPrefetch += ready - c.clock
					c.clock = ready
				}
			}
			hit := m.llcLevel.HitCycles
			if serviced >= 0 {
				hit = m.midLevels[serviced].HitCycles
			}
			c.stats.StallOnChip += uint64(hit)
			c.clock += uint64(hit)
		}
		return nil
	}

	// Full last-level-cache miss.
	stall := m.missCycles(c, paddr, out.DirtyRemote)
	m.chargeMiss(c, out.Class, shadowHit, stall)
	m.countSliceMiss(paddr)
	// Cross-domain attribution: a data miss that displaced a victim
	// owned by a foreign isolation domain / process is a cache-set
	// conflict between domains — the co-scheduled collision pathology —
	// whatever class the accessor's own miss lands in (the incoming
	// process's first sweep over a co-runner's lines classifies cold or
	// capacity). Off (crossCheck false) for single-process runs.
	if m.crossCheck && res.Evicted && m.crossDomainVictim(c.pid, res.VictimAddr) {
		c.stats.CrossDomainConflicts++
		if m.obs != nil {
			m.obs.RecordCrossDomainPID(c.pid, c.id, c.clock, vpn, m.frameColor(res.VictimAddr))
		}
	}
	if m.obs != nil {
		m.obs.RecordMissPID(c.pid, c.id, c.clock, vpn, m.frameColor(paddr), obsClass(out.Class, shadowHit), stall)
	}
	c.clock += stall
	if m.recolorer != nil {
		return m.maybeRecolor(c, r.VAddr)
	}
	return nil
}

// stepInst handles an instruction fetch (one on-chip I-cache line worth
// of instructions; r.Work carries the instruction count).
func (m *Machine) stepInst(c *cpuState, r *trace.Ref) error {
	work := uint64(r.Work)
	c.stats.Instructions += work
	c.stats.ExecCycles += work
	c.clock += work

	if c.l1i.Access(r.VAddr, false).Hit {
		return nil
	}
	vpn := r.VAddr >> m.pageShift
	var paddr uint64
	if c.tcInst.valid && c.tcInst.vpn == vpn {
		paddr = c.tcInst.pbase | (r.VAddr & m.pageMask)
	} else {
		pbase, faulted, err := c.as.TranslateVPN(vpn, c.id)
		if err != nil {
			return fmt.Errorf("sim: cpu %d (inst): %w", c.id, err)
		}
		if faulted {
			c.stats.PageFaults++
			c.stats.KernelCycles += uint64(m.cfg.PageFaultCycles)
			c.clock += uint64(m.cfg.PageFaultCycles)
		}
		c.tcInst = transCache{vpn: vpn, pbase: pbase, valid: true}
		paddr = pbase | (r.VAddr & m.pageMask)
	}
	out := m.dir.Access(c.llc.id, paddr, false)
	m.applyDowngrade(paddr, out.Downgraded)
	serviced := m.accessMids(c, paddr, false)
	if !m.opts.DisableClassification {
		c.llc.shadow.Access(paddr)
	}
	res := c.llc.cacheFor(paddr).Access(paddr, false)
	m.handleLLCEviction(c, res.Evicted, res.VictimAddr, res.VictimDirty)
	if res.Hit || serviced >= 0 {
		// fpppp's signature cost: instruction fetches served by the
		// external hierarchy (§4.1).
		hit := m.llcLevel.HitCycles
		if serviced >= 0 {
			hit = m.midLevels[serviced].HitCycles
		}
		c.stats.StallInst += uint64(hit)
		c.clock += uint64(hit)
		return nil
	}
	c.stats.L2Misses++
	c.stats.InstMisses++
	m.countSliceMiss(paddr)
	stall := m.missCycles(c, paddr, out.DirtyRemote)
	c.stats.StallInst += stall
	if m.obs != nil {
		m.obs.RecordMissPID(c.pid, c.id, c.clock, vpn, m.frameColor(paddr), obs.InstFetch, stall)
	}
	c.clock += stall
	// Code pages conflict-miss like data pages do; feed the dynamic
	// policy so a thrashing hot code page can be recolored too.
	if m.recolorer != nil {
		return m.maybeRecolor(c, r.VAddr)
	}
	return nil
}

// stepPrefetch handles a non-binding software prefetch (§6.2): dropped on
// a TLB miss, at most MaxOutstandingPrefetches in flight (one more stalls
// the CPU), fills the external cache only.
func (m *Machine) stepPrefetch(c *cpuState, r *trace.Ref) error {
	c.stats.Instructions++
	c.stats.ExecCycles++
	c.clock++

	vpn := r.VAddr >> m.pageShift
	if !c.tlb.Probe(vpn) {
		c.stats.PrefetchesDropped++
		return nil
	}
	var paddr uint64
	if c.tcData.valid && c.tcData.vpn == vpn {
		paddr = c.tcData.pbase | (r.VAddr & m.pageMask)
	} else {
		pa, ok := c.as.TranslateNoFault(r.VAddr)
		if !ok {
			c.stats.PrefetchesDropped++
			return nil
		}
		c.tcData = transCache{vpn: vpn, pbase: pa &^ m.pageMask, valid: true}
		paddr = pa
	}
	la := m.llcLineAddr(paddr)
	if _, inflight := c.pending[la]; inflight || c.llc.cacheFor(paddr).Probe(paddr) {
		return nil // already resident or already coming
	}

	// Enforce the outstanding-prefetch limit: issuing a fifth prefetch
	// stalls the processor until a slot frees up.
	c.pruneOutstanding()
	if len(c.outstanding) >= m.cfg.MaxOutstandingPrefetches {
		earliest := c.outstanding[0]
		for _, t := range c.outstanding[1:] {
			if t < earliest {
				earliest = t
			}
		}
		if earliest > c.clock {
			c.stats.StallPrefetch += earliest - c.clock
			c.clock = earliest
		}
		c.pruneOutstanding()
	}

	out := m.dir.Access(c.llc.id, paddr, false)
	m.applyDowngrade(paddr, out.Downgraded)
	m.applyInvalidations(c, paddr, out.Invalidated)
	latency := uint64(m.cfg.MemCycles)
	if out.DirtyRemote {
		latency = uint64(m.cfg.RemoteCycles)
	}
	done := m.bus.Acquire(c.clock, m.llcLine, bus.Data)
	queue := done - c.clock - m.bus.HoldCycles(m.llcLine)
	arrival := c.clock + queue + latency + c.memJitter(m.cfg.MemJitterCycles)

	if !m.opts.DisableClassification {
		c.llc.shadow.Access(paddr)
	}
	res := c.llc.cacheFor(paddr).Access(paddr, false)
	m.handleLLCEviction(c, res.Evicted, res.VictimAddr, res.VictimDirty)

	c.pending[la] = arrival
	c.outstanding = append(c.outstanding, arrival)
	c.stats.PrefetchesIssued++
	return nil
}

// pruneOutstanding drops completed prefetches from the in-flight list.
func (c *cpuState) pruneOutstanding() {
	live := c.outstanding[:0]
	for _, t := range c.outstanding {
		if t > c.clock {
			live = append(live, t)
		}
	}
	c.outstanding = live
}

// missCycles charges the bus transaction for a line fetch and returns
// the total stall: queueing delay plus the (contention-free) latency
// plus a small deterministic jitter modeling DRAM timing variance.
func (m *Machine) missCycles(c *cpuState, paddr uint64, dirtyRemote bool) uint64 {
	if m.missTrace != nil {
		m.missTrace(c.id, c.clock, paddr)
	}
	latency := uint64(m.cfg.MemCycles)
	if dirtyRemote {
		latency = uint64(m.cfg.RemoteCycles)
		c.stats.RemoteSupplies++
	}
	done := m.bus.Acquire(c.clock, m.llcLine, bus.Data)
	queue := done - c.clock - m.bus.HoldCycles(m.llcLine)
	c.stats.BusQueueCycles += queue
	return queue + latency + c.memJitter(m.cfg.MemJitterCycles)
}

// countSliceMiss books one LLC miss against its slice (sliced LLCs
// only; a nil counter vector keeps the default path to one branch).
func (m *Machine) countSliceMiss(paddr uint64) {
	if m.sliceMiss != nil {
		m.sliceMiss[m.llcLevel.Hash.SliceOf(paddr)]++
	}
}

// markDirtyPhys marks an on-chip victim's line dirty at the innermost
// physically indexed level holding it; dirtiness then migrates outward
// with each level's own evictions.
func (m *Machine) markDirtyPhys(c *cpuState, paddr uint64) {
	for _, mc := range c.mids {
		if mc.Probe(paddr) {
			mc.MarkDirty(paddr)
			return
		}
	}
	c.llc.cacheFor(paddr).MarkDirty(paddr)
}

// accessMids runs a physical access through the intermediate levels,
// inner to outer, returning the index of the innermost level that hit
// (-1 when none, including on the default mid-less topology). A dirty
// mid victim is written into the next level down — internal hierarchy
// traffic, no bus.
func (m *Machine) accessMids(c *cpuState, paddr uint64, write bool) int {
	serviced := -1
	for li, mc := range c.mids {
		r := mc.Access(paddr, write)
		if r.Evicted && r.VictimDirty {
			m.midWriteback(c, li, r.VictimAddr)
		}
		if r.Hit && serviced < 0 {
			serviced = li
		}
	}
	return serviced
}

// midWriteback propagates a dirty victim evicted from mid level li into
// the next level of the hierarchy that holds the line (ultimately the
// LLC, which inclusion guarantees holds it).
func (m *Machine) midWriteback(c *cpuState, li int, victim uint64) {
	for _, mc := range c.mids[li+1:] {
		if mc.Probe(victim) {
			mc.MarkDirty(victim)
			return
		}
	}
	c.llc.cacheFor(victim).MarkDirty(victim)
}

// memJitter returns a deterministic per-CPU, per-miss latency
// perturbation in [0, bound).
func (c *cpuState) memJitter(bound int) uint64 {
	if bound <= 0 {
		return 0
	}
	h := uint64(c.id)*0x9e3779b97f4a7c15 + c.stats.L2Misses*0x2545f4914f6cdd1d
	h ^= h >> 33
	return (h * 0x5851f42d4c957f2d >> 48) % uint64(bound)
}

// chargeMiss books a data miss's stall into the right class bucket.
func (m *Machine) chargeMiss(c *cpuState, class coherence.Class, shadowHit bool, stall uint64) {
	c.stats.L2Misses++
	switch class {
	case coherence.Cold:
		c.stats.ColdMisses++
		c.stats.StallCold += stall
	case coherence.TrueShare:
		c.stats.TrueShareMisses++
		c.stats.StallTrue += stall
	case coherence.FalseShare:
		c.stats.FalseShareMisses++
		c.stats.StallFalse += stall
	default: // Replacement (or a directory/cache disagreement: count it here)
		if shadowHit {
			c.stats.ConflictMisses++
			c.stats.StallConflict += stall
		} else {
			c.stats.CapacityMisses++
			c.stats.StallCapacity += stall
		}
	}
}

// obsClass maps the simulator's miss classification (coherence class
// plus the shadow-cache split chargeMiss applies) onto the attribution
// classes.
func obsClass(class coherence.Class, shadowHit bool) obs.MissClass {
	switch class {
	case coherence.Cold:
		return obs.Cold
	case coherence.TrueShare:
		return obs.TrueShare
	case coherence.FalseShare:
		return obs.FalseShare
	default:
		if shadowHit {
			return obs.Conflict
		}
		return obs.Capacity
	}
}

// applyDowngrade mirrors a directory read-downgrade into the supplying
// owner's LLC unit: flushing the dirty line to memory as part of the
// supply leaves the owner's copy clean. Without this, the owner's
// eventual eviction of the line charged a second writeback transaction
// for data memory already held — the bus-occupancy double count that
// pushed BusUtilization past 1 on sharing-heavy runs. The owner's
// intermediate levels may also hold the dirty line; clean them too
// (Clean is a no-op where the line is absent).
func (m *Machine) applyDowngrade(paddr uint64, owner int) {
	if owner < 0 {
		return
	}
	u := m.llcUnits[owner]
	u.cacheFor(paddr).Clean(paddr)
	for _, p := range u.cpus {
		for _, mc := range m.cpus[p].mids {
			mc.Clean(paddr)
		}
	}
}

// applyInvalidations mirrors directory invalidations into the other LLC
// units — slice tags, shadow caches — and, per member CPU, intermediate
// levels, pending prefetches, and (via the reverse map) the virtually
// indexed on-chip caches, preserving inclusion. The reverse map is the
// accessing CPU's current address space: under time-slicing every CPU
// runs the same process, and across space partitions a frame belongs to
// exactly one live process, so stale sharers from an exited process
// only need their physically indexed state dropped (their virtually
// indexed L1s were flushed when they switched out).
func (m *Machine) applyInvalidations(c *cpuState, paddr uint64, units []int) {
	if len(units) == 0 {
		return
	}
	vaddr, haveV := c.as.ReverseVAddr(paddr)
	la := m.llcLineAddr(paddr)
	for _, uid := range units {
		u := m.llcUnits[uid]
		u.cacheFor(paddr).Invalidate(paddr)
		u.shadow.Remove(paddr)
		for _, p := range u.cpus {
			o := m.cpus[p]
			for _, mc := range o.mids {
				mc.Invalidate(paddr)
			}
			delete(o.pending, la)
			if haveV {
				o.l1d.Invalidate(vaddr)
				o.l1i.Invalidate(vaddr)
			}
		}
	}
}

// handleLLCEviction keeps the directory, the inner levels (inclusion)
// and the write-back traffic consistent with a last-level-cache
// eviction. Every CPU sharing the evicting unit may hold the line
// on-chip or have a prefetch in flight for it; inclusive intermediate
// levels are back-invalidated, and a dirty copy surfaced there joins
// the victim's writeback.
func (m *Machine) handleLLCEviction(c *cpuState, evicted bool, victim uint64, dirty bool) {
	if !evicted {
		return
	}
	m.dir.Evict(c.llc.id, victim)
	la := m.llcLineAddr(victim)
	delete(c.pending, la)
	for _, p := range c.llc.cpus {
		o := m.cpus[p]
		delete(o.pending, la)
		for li, mc := range o.mids {
			if !m.midLevels[li].Inclusive {
				continue
			}
			step := uint64(m.midLevels[li].Geom.LineSize)
			for off := uint64(0); off < uint64(m.llcLine); off += step {
				if _, d := mc.Invalidate(la + off); d {
					dirty = true
				}
			}
		}
		// The victim may belong to a descheduled process (physical tags
		// survive context switches); o.as then has no reverse mapping and
		// the on-chip invalidation is skipped — those L1 lines were
		// flushed when the owning process switched out.
		if vaddr, ok := o.as.ReverseVAddr(victim); ok {
			// Inclusion: every on-chip line within the evicted LLC line
			// must go. On-chip lines are smaller; invalidate each.
			step := uint64(m.cfg.L1D.LineSize)
			for off := uint64(0); off < uint64(m.llcLine); off += step {
				o.l1d.Invalidate(vaddr + off)
				o.l1i.Invalidate(vaddr + off)
			}
		}
	}
	if dirty {
		// Write-back buffers hide the latency from the processor as long
		// as an entry is free; a full buffer stalls the CPU until the
		// oldest write-back's bus transaction completes.
		if n := m.cfg.WriteBufferEntries; n > 0 {
			live := c.writeBuffer[:0]
			for _, t := range c.writeBuffer {
				if t > c.clock {
					live = append(live, t)
				}
			}
			c.writeBuffer = live
			if len(c.writeBuffer) >= n {
				oldest := c.writeBuffer[0]
				for _, t := range c.writeBuffer[1:] {
					if t < oldest {
						oldest = t
					}
				}
				c.stats.StallWriteBuffer += oldest - c.clock
				c.clock = oldest
			}
		}
		done := m.bus.Acquire(c.clock, m.llcLine, bus.Writeback)
		if m.cfg.WriteBufferEntries > 0 {
			c.writeBuffer = append(c.writeBuffer, done)
		}
	}
}
