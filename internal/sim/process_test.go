package sim

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/ir"
	"repro/internal/vm"
)

// multiRun builds a fresh machine and runs the given process table.
func multiRun(t *testing.T, opts Options, procs []ProcessOptions, sched SchedOptions) *MultiResult {
	t.Helper()
	for _, po := range procs {
		if err := compilerLayout(po.Prog, opts.Config); err != nil {
			t.Fatal(err)
		}
	}
	m, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	mr, err := m.RunProcesses(procs, sched)
	if err != nil {
		t.Fatal(err)
	}
	return mr
}

// makeChunkedProgram is makeProgram split into `chunks` phases so the
// time-slice scheduler has multiple preemption points per program.
func makeChunkedProgram(pagesPerArray, iters, offset, chunks int) *ir.Program {
	prog := makeProgram(pagesPerArray, iters, offset)
	base := prog.Phases[0]
	prog.Phases = nil
	for i := 0; i < chunks; i++ {
		nest := *base.Nests[0]
		nest.Name = fmt.Sprintf("sweep%d", i)
		prog.Phases = append(prog.Phases, &ir.Phase{
			Name: nest.Name, Occurrences: 1, Nests: []*ir.Nest{&nest},
		})
	}
	return prog
}

func twoProcs(conflict bool) []ProcessOptions {
	offset := 0
	if conflict {
		offset = 8
	}
	return []ProcessOptions{
		{Prog: makeChunkedProgram(8, 16, offset, 6)},
		{Prog: makeChunkedProgram(8, 16, offset, 6)},
	}
}

func TestRunProcessesSingleMatchesRun(t *testing.T) {
	cfg := smallConfig(4)
	opts := Options{Config: cfg, SkipWarmup: true}
	single := mustRun(t, makeProgram(8, 16, 0), opts)
	mr := multiRun(t, opts, []ProcessOptions{{Prog: makeProgram(8, 16, 0)}}, SchedOptions{})
	if !reflect.DeepEqual(single, mr.Total) {
		t.Errorf("single-process RunProcesses diverged from Run:\n%+v\nvs\n%+v", mr.Total, single)
	}
	if len(mr.PerProcess) != 1 || !reflect.DeepEqual(mr.PerProcess[0], mr.Total) {
		t.Error("single-process MultiResult must alias the one result as the total")
	}
}

func TestTimeSliceAuditsClean(t *testing.T) {
	mr := multiRun(t, Options{Config: smallConfig(4)}, twoProcs(true),
		SchedOptions{Policy: SchedTimeSlice, Quantum: 50_000})
	if len(mr.PerProcess) != 2 {
		t.Fatalf("want 2 per-process results, got %d", len(mr.PerProcess))
	}
	if vs := mr.Audit(); len(vs) != 0 {
		for _, v := range vs {
			t.Errorf("audit: %s: %s", v.Check, v.Detail)
		}
	}
	for i, r := range mr.PerProcess {
		if r.WallCycles == 0 || r.Total(func(s *CPUStats) uint64 { return s.Instructions }) == 0 {
			t.Errorf("proc %d ran nothing: %+v", i, r)
		}
	}
	// With two co-runners at a 50k quantum there must be switches, and
	// the total must carry them.
	if sw := mr.Total.Total(func(s *CPUStats) uint64 { return s.ContextSwitches }); sw == 0 {
		t.Error("no context switches recorded under time-slicing")
	}
	// Windows tile the timeline: per-process wall times sum to the total.
	if got := mr.PerProcess[0].WallCycles + mr.PerProcess[1].WallCycles; got != mr.Total.WallCycles {
		t.Errorf("scheduled windows %d != machine wall %d", got, mr.Total.WallCycles)
	}
}

func TestPartitionAuditsClean(t *testing.T) {
	mr := multiRun(t, Options{Config: smallConfig(4)}, twoProcs(true),
		SchedOptions{Policy: SchedPartition})
	if vs := mr.Audit(); len(vs) != 0 {
		for _, v := range vs {
			t.Errorf("audit: %s: %s", v.Check, v.Detail)
		}
	}
	for i, r := range mr.PerProcess {
		if r.NumCPUs != 2 {
			t.Errorf("proc %d: partition width %d, want 2", i, r.NumCPUs)
		}
		if r.Total(func(s *CPUStats) uint64 { return s.ContextSwitches }) != 0 {
			t.Errorf("proc %d: context switches in partition mode", i)
		}
	}
	if mr.Total.WallCycles < mr.PerProcess[0].WallCycles ||
		mr.Total.WallCycles < mr.PerProcess[1].WallCycles {
		t.Error("machine wall below a partition's finish time")
	}
}

func TestMultiprocessDeterministic(t *testing.T) {
	for _, sched := range []SchedOptions{
		{Policy: SchedTimeSlice, Quantum: 40_000},
		{Policy: SchedPartition},
	} {
		a := multiRun(t, Options{Config: smallConfig(4)}, twoProcs(true), sched)
		b := multiRun(t, Options{Config: smallConfig(4)}, twoProcs(true), sched)
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: identical co-scheduled runs diverged", sched.Policy)
		}
	}
}

func TestTimeSliceFlushesOnSwitch(t *testing.T) {
	// A solo run of the same program must take fewer TLB misses than a
	// co-scheduled one: every context switch flushes the TLB, forcing
	// refills the solo run never pays.
	opts := Options{Config: smallConfig(2)}
	solo := multiRun(t, opts, []ProcessOptions{
		{Prog: makeChunkedProgram(8, 16, 0, 6), Policy: vm.PageColoring{Colors: 16}},
	}, SchedOptions{Policy: SchedTimeSlice, Quantum: 30_000})
	co := multiRun(t, Options{Config: smallConfig(2)}, twoProcs(false),
		SchedOptions{Policy: SchedTimeSlice, Quantum: 30_000})
	soloTLB := solo.PerProcess[0].Total(func(s *CPUStats) uint64 { return s.TLBMisses })
	coTLB := co.PerProcess[0].Total(func(s *CPUStats) uint64 { return s.TLBMisses })
	if coTLB <= soloTLB {
		t.Errorf("co-scheduled TLB misses %d not above solo %d despite switch flushes", coTLB, soloTLB)
	}
}

func TestProcessExitReturnsFrames(t *testing.T) {
	procs := twoProcs(false)
	for _, po := range procs {
		if err := compilerLayout(po.Prog, smallConfig(4)); err != nil {
			t.Fatal(err)
		}
	}
	m, err := New(Options{Config: smallConfig(4)})
	if err != nil {
		t.Fatal(err)
	}
	free := m.alloc.FreeFrames()
	if _, err := m.RunProcesses(procs, SchedOptions{Policy: SchedTimeSlice}); err != nil {
		t.Fatal(err)
	}
	if got := m.alloc.FreeFrames(); got != free {
		t.Errorf("free frames after both exits = %d, want %d (frames leaked)", got, free)
	}
	for pid := 1; pid <= 2; pid++ {
		if owned := m.alloc.OwnedFrames(pid); len(owned) != 0 {
			t.Errorf("pid %d still owns %d frames after exit", pid, len(owned))
		}
	}
}

func TestPartitionRejectsIndivisibleCPUs(t *testing.T) {
	procs := []ProcessOptions{
		{Prog: makeProgram(4, 8, 0)},
		{Prog: makeProgram(4, 8, 0)},
		{Prog: makeProgram(4, 8, 0)},
	}
	for _, po := range procs {
		if err := compilerLayout(po.Prog, smallConfig(4)); err != nil {
			t.Fatal(err)
		}
	}
	m, err := New(Options{Config: smallConfig(4)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.RunProcesses(procs, SchedOptions{Policy: SchedPartition}); err == nil {
		t.Error("3 processes on 4 CPUs must be rejected by the partition scheduler")
	}
}

func TestMultiprocessRejectsRecoloring(t *testing.T) {
	procs := twoProcs(false)
	for _, po := range procs {
		if err := compilerLayout(po.Prog, smallConfig(4)); err != nil {
			t.Fatal(err)
		}
	}
	rp := vm.DefaultRecolorPolicy()
	m, err := New(Options{Config: smallConfig(4), Recolor: &rp})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.RunProcesses(procs, SchedOptions{}); err == nil {
		t.Error("dynamic recoloring must be rejected in multiprocess runs")
	}
}
