package sim

import "fmt"

// CPUStats is one processor's cycle and event accounting. Cycle buckets
// partition the processor's total time the same way the paper's Figure 2
// does: useful execution, memory stall (split by miss class), and the
// overheads (kernel, sync, load imbalance, sequential, suppressed).
type CPUStats struct {
	Instructions uint64

	// ExecCycles is useful execution including L1 hits (1 cycle each).
	ExecCycles uint64

	// Memory stall buckets (data side).
	StallOnChip   uint64 // L1 miss that hit in the external cache
	StallCold     uint64
	StallConflict uint64
	StallCapacity uint64
	StallTrue     uint64 // true-sharing communication misses
	StallFalse    uint64 // false-sharing communication misses
	StallUpgrade  uint64 // ownership upgrades on shared lines
	StallPrefetch uint64 // stalled issuing a 5th prefetch or awaiting arrival
	StallInst     uint64 // instruction fetch misses (fpppp)
	// StallWriteBuffer counts cycles stalled on a full write-back buffer.
	StallWriteBuffer uint64

	// Overheads.
	KernelCycles     uint64 // TLB refills and page faults
	SyncCycles       uint64 // fork + barrier software cost
	ImbalanceCycles  uint64 // waiting at barriers for slower processors
	SequentialCycles uint64 // slave idle while master runs serial code
	SuppressedCycles uint64 // slave idle while master runs suppressed loops

	// Event counters.
	L2Misses         uint64
	ColdMisses       uint64
	ConflictMisses   uint64
	CapacityMisses   uint64
	TrueShareMisses  uint64
	FalseShareMisses uint64
	// InstMisses counts instruction-fetch external-cache misses; they
	// are included in L2Misses but belong to none of the data-side miss
	// classes, so the audit's miss-conservation sum needs them broken
	// out.
	InstMisses        uint64
	Upgrades          uint64
	PrefetchesIssued  uint64
	PrefetchesDropped uint64 // TLB-unmapped pages (§6.2)
	PrefetchedHits    uint64 // demand refs that found a prefetch in flight or landed
	TLBMisses         uint64
	PageFaults        uint64
	RemoteSupplies    uint64 // misses served dirty from another CPU's cache
	BusQueueCycles    uint64 // queueing component of miss stalls
	Recolorings       uint64 // dynamic-policy page moves triggered by this CPU
	// ContextSwitches counts time-slice process switches on this CPU;
	// the switch cost (TLB + on-chip flush, state save/restore) is booked
	// into KernelCycles of the incoming process.
	ContextSwitches uint64
	// CrossDomainConflicts counts data misses whose evicted victim
	// belonged to another isolation domain (or, unpartitioned, another
	// process) — each one is a cache-set conflict between domains, the
	// co-scheduled collision pathology made countable. At most one per
	// data miss (subset of L2Misses-InstMisses); exactly zero in
	// partitioned mode (audit invariant 12), because victim and accessor
	// share a set, hence a page color, hence a domain.
	CrossDomainConflicts uint64
}

// MemStallCycles returns all cycles lost to the memory system.
func (s *CPUStats) MemStallCycles() uint64 {
	return s.StallOnChip + s.StallCold + s.StallConflict + s.StallCapacity +
		s.StallTrue + s.StallFalse + s.StallUpgrade + s.StallPrefetch + s.StallInst +
		s.StallWriteBuffer
}

// ReplacementStall returns stall cycles from capacity+conflict misses,
// the paper's "replacement misses" category.
func (s *CPUStats) ReplacementStall() uint64 {
	return s.StallConflict + s.StallCapacity
}

// OverheadCycles returns all non-application cycles.
func (s *CPUStats) OverheadCycles() uint64 {
	return s.KernelCycles + s.SyncCycles + s.ImbalanceCycles + s.SequentialCycles + s.SuppressedCycles
}

// TotalCycles returns the processor's accounted time.
func (s *CPUStats) TotalCycles() uint64 {
	return s.ExecCycles + s.MemStallCycles() + s.OverheadCycles()
}

// MCPI returns memory cycles per instruction, the paper's §4.1 metric:
// memory stall during useful execution divided by instructions.
func (s *CPUStats) MCPI() float64 {
	if s.Instructions == 0 {
		return 0
	}
	return float64(s.MemStallCycles()) / float64(s.Instructions)
}

// add accumulates o (scaled by weight) into s.
func (s *CPUStats) add(o *CPUStats, weight uint64) {
	s.Instructions += o.Instructions * weight
	s.ExecCycles += o.ExecCycles * weight
	s.StallOnChip += o.StallOnChip * weight
	s.StallCold += o.StallCold * weight
	s.StallConflict += o.StallConflict * weight
	s.StallCapacity += o.StallCapacity * weight
	s.StallTrue += o.StallTrue * weight
	s.StallFalse += o.StallFalse * weight
	s.StallUpgrade += o.StallUpgrade * weight
	s.StallPrefetch += o.StallPrefetch * weight
	s.StallInst += o.StallInst * weight
	s.StallWriteBuffer += o.StallWriteBuffer * weight
	s.KernelCycles += o.KernelCycles * weight
	s.SyncCycles += o.SyncCycles * weight
	s.ImbalanceCycles += o.ImbalanceCycles * weight
	s.SequentialCycles += o.SequentialCycles * weight
	s.SuppressedCycles += o.SuppressedCycles * weight
	s.L2Misses += o.L2Misses * weight
	s.ColdMisses += o.ColdMisses * weight
	s.ConflictMisses += o.ConflictMisses * weight
	s.CapacityMisses += o.CapacityMisses * weight
	s.TrueShareMisses += o.TrueShareMisses * weight
	s.FalseShareMisses += o.FalseShareMisses * weight
	s.InstMisses += o.InstMisses * weight
	s.Upgrades += o.Upgrades * weight
	s.PrefetchesIssued += o.PrefetchesIssued * weight
	s.PrefetchesDropped += o.PrefetchesDropped * weight
	s.PrefetchedHits += o.PrefetchedHits * weight
	s.TLBMisses += o.TLBMisses * weight
	s.PageFaults += o.PageFaults * weight
	s.RemoteSupplies += o.RemoteSupplies * weight
	s.BusQueueCycles += o.BusQueueCycles * weight
	s.Recolorings += o.Recolorings * weight
	s.ContextSwitches += o.ContextSwitches * weight
	s.CrossDomainConflicts += o.CrossDomainConflicts * weight
}

// sub returns s - o (used for phase deltas).
func (s CPUStats) sub(o CPUStats) CPUStats {
	d := CPUStats{}
	d.Instructions = s.Instructions - o.Instructions
	d.ExecCycles = s.ExecCycles - o.ExecCycles
	d.StallOnChip = s.StallOnChip - o.StallOnChip
	d.StallCold = s.StallCold - o.StallCold
	d.StallConflict = s.StallConflict - o.StallConflict
	d.StallCapacity = s.StallCapacity - o.StallCapacity
	d.StallTrue = s.StallTrue - o.StallTrue
	d.StallFalse = s.StallFalse - o.StallFalse
	d.StallUpgrade = s.StallUpgrade - o.StallUpgrade
	d.StallPrefetch = s.StallPrefetch - o.StallPrefetch
	d.StallInst = s.StallInst - o.StallInst
	d.StallWriteBuffer = s.StallWriteBuffer - o.StallWriteBuffer
	d.KernelCycles = s.KernelCycles - o.KernelCycles
	d.SyncCycles = s.SyncCycles - o.SyncCycles
	d.ImbalanceCycles = s.ImbalanceCycles - o.ImbalanceCycles
	d.SequentialCycles = s.SequentialCycles - o.SequentialCycles
	d.SuppressedCycles = s.SuppressedCycles - o.SuppressedCycles
	d.L2Misses = s.L2Misses - o.L2Misses
	d.ColdMisses = s.ColdMisses - o.ColdMisses
	d.ConflictMisses = s.ConflictMisses - o.ConflictMisses
	d.CapacityMisses = s.CapacityMisses - o.CapacityMisses
	d.TrueShareMisses = s.TrueShareMisses - o.TrueShareMisses
	d.FalseShareMisses = s.FalseShareMisses - o.FalseShareMisses
	d.InstMisses = s.InstMisses - o.InstMisses
	d.Upgrades = s.Upgrades - o.Upgrades
	d.PrefetchesIssued = s.PrefetchesIssued - o.PrefetchesIssued
	d.PrefetchesDropped = s.PrefetchesDropped - o.PrefetchesDropped
	d.PrefetchedHits = s.PrefetchedHits - o.PrefetchedHits
	d.TLBMisses = s.TLBMisses - o.TLBMisses
	d.PageFaults = s.PageFaults - o.PageFaults
	d.RemoteSupplies = s.RemoteSupplies - o.RemoteSupplies
	d.BusQueueCycles = s.BusQueueCycles - o.BusQueueCycles
	d.Recolorings = s.Recolorings - o.Recolorings
	d.ContextSwitches = s.ContextSwitches - o.ContextSwitches
	d.CrossDomainConflicts = s.CrossDomainConflicts - o.CrossDomainConflicts
	return d
}

// BusStats is the weighted bus occupancy accounting.
type BusStats struct {
	DataCycles      uint64
	WritebackCycles uint64
	UpgradeCycles   uint64
}

// Total returns all occupied cycles.
func (b BusStats) Total() uint64 { return b.DataCycles + b.WritebackCycles + b.UpgradeCycles }

// Fidelity values for Result.Fidelity.
const (
	// FidelityFull marks a result from full-trace simulation.
	FidelityFull = "full"
	// FidelitySampled marks a result extrapolated from representative
	// windows (phase-sampled execution).
	FidelitySampled = "sampled"
)

// Result is the outcome of simulating one workload's steady state.
type Result struct {
	Workload string
	Machine  string
	Policy   string
	NumCPUs  int

	// Fidelity records how the result was produced: FidelityFull for
	// full-trace simulation, FidelitySampled for representative-window
	// extrapolation. Empty is treated as full (results assembled by
	// hand in tests).
	Fidelity string

	// WallCycles is the weighted steady-state wall-clock time.
	WallCycles uint64
	// PerCPU holds each processor's weighted stats.
	PerCPU []CPUStats
	// Bus holds the weighted bus occupancy.
	Bus BusStats

	// HintedFaults / HonoredHints carry the VM hint effectiveness through
	// to the experiment reports. They are whole-run address-space counts,
	// not steady-state rates, so Scale leaves them alone.
	PageFaults   uint64 //lint:allow scaleconserve (whole-run fault count, not a rate)
	HintedFaults uint64 //lint:allow scaleconserve (whole-run fault count, not a rate)
	HonoredHints uint64 //lint:allow scaleconserve (whole-run fault count, not a rate)

	// Isolated records that the run used color-partitioned isolation
	// domains: every process's frames were clamped to its domain's
	// exclusive color subset, and Audit enforces that cross-domain
	// conflicts are exactly zero (invariant 12).
	Isolated bool

	// SliceMisses splits L2Misses by LLC slice on sliced topologies
	// (index = slice id, phase-occurrence weighted like every event
	// counter; summed across units when several LLC units exist). Nil on
	// unsliced topologies and on sampled results — the warm-up windows
	// would pollute a machine-lifetime slice counter, so the sampled path
	// leaves the split unreported rather than wrong. When present, the
	// audit holds its sum to the machine-wide L2Misses total
	// (invariant 13).
	SliceMisses []uint64 `json:",omitempty"`

	// Sampling accounting, zero on full-fidelity results:
	// WarmupRefs counts functional references executed without booking
	// cycles (page-granularity fault pre-touch plus warm-up windows);
	// SampledWindows counts measured representative windows;
	// SampledIters / RepresentedIters are the detail-simulated and the
	// extrapolated-to outer-iteration totals (the extrapolation weight
	// sums: RepresentedIters / SampledIters is the mean scale factor).
	// They describe the extrapolation itself, so Scale must not inflate
	// them — a scaled SampledIters would claim detail the run never
	// simulated.
	WarmupRefs       uint64 //lint:allow scaleconserve (sampling metadata, describes the extrapolation)
	SampledWindows   uint64 //lint:allow scaleconserve (sampling metadata, describes the extrapolation)
	SampledIters     uint64 //lint:allow scaleconserve (sampling metadata, describes the extrapolation)
	RepresentedIters uint64 //lint:allow scaleconserve (sampling metadata, describes the extrapolation)
}

// Sampled reports whether the result was produced by phase-sampled
// (representative-window) execution.
func (r *Result) Sampled() bool { return r.Fidelity == FidelitySampled }

// CombinedCycles is the paper's Figure 2 metric: the sum of execution
// time over all processors (constant across CPU counts = linear speedup).
func (r *Result) CombinedCycles() uint64 {
	return r.WallCycles * uint64(r.NumCPUs)
}

// Total returns the sum of a per-CPU statistic over all processors.
func (r *Result) Total(f func(*CPUStats) uint64) uint64 {
	var t uint64
	for i := range r.PerCPU {
		t += f(&r.PerCPU[i])
	}
	return t
}

// MCPI returns the aggregate memory-cycles-per-instruction.
func (r *Result) MCPI() float64 {
	inst := r.Total(func(s *CPUStats) uint64 { return s.Instructions })
	if inst == 0 {
		return 0
	}
	return float64(r.Total((*CPUStats).MemStallCycles)) / float64(inst)
}

// BusUtilization returns the fraction of the steady state the bus was
// occupied. A value above 1 means bus cycles were booked twice (the
// kind of leak the old clamp here used to hide); Audit reports it as a
// violation instead of clamping it away.
func (r *Result) BusUtilization() float64 {
	if r.WallCycles == 0 {
		return 0
	}
	return float64(r.Bus.Total()) / float64(r.WallCycles)
}

// Speedup returns base.WallCycles / r.WallCycles.
func (r *Result) Speedup(base *Result) float64 {
	if r.WallCycles == 0 {
		return 0
	}
	return float64(base.WallCycles) / float64(r.WallCycles)
}

// Scale multiplies the result's cycle and event counters by the
// rational num/den, preserving every Audit invariant. The sampling
// extrapolator applies it to each measured window's delta with num =
// span iterations and den = window iterations (num >= den >= 1: windows
// only ever scale up).
//
// Plain per-counter flooring breaks the audit's exact equalities —
// floor is not additive, so the six scaled miss classes can drift from
// a separately scaled L2Misses — and its inequalities, since floor(R*s)
// can exceed the sum of floors bounding it. Scale therefore re-derives
// every dependent counter from the scaled independent ones:
//
//   - L2Misses is recomputed as the sum of the six scaled classes
//     (miss-conservation holds by construction);
//   - Instructions and ExecCycles scale identically from equal inputs
//     (instruction-conservation);
//   - RemoteSupplies and BusQueueCycles are clamped to their scaled
//     bounds (remote-supply, bus-queue);
//   - the per-CPU flooring residue against the scaled wall clock —
//     non-negative because floor is superadditive — is absorbed into
//     ImbalanceCycles (cycle-conservation);
//   - bus occupancy floors bucket-wise, and the sum of floors cannot
//     exceed the floored scaled wall (bus-occupancy).
//
// Positivity-conditioned invariants (upgrade, prefetch, kernel
// attribution) survive because num >= den makes scaling monotone:
// zero stays zero and positive stays positive. PageFaults /
// HintedFaults / HonoredHints are whole-run address-space counts, not
// steady-state rates, and are not scaled.
func (r *Result) Scale(num, den uint64) {
	if den == 0 || num < den {
		panic(fmt.Sprintf("sim: Scale(%d, %d): need num >= den >= 1", num, den))
	}
	if num == den {
		return
	}
	mul := func(x uint64) uint64 { return x * num / den }
	scaledWall := mul(r.WallCycles)
	for i := range r.PerCPU {
		s := &r.PerCPU[i]
		s.Instructions = mul(s.Instructions)
		s.ExecCycles = mul(s.ExecCycles)
		s.StallOnChip = mul(s.StallOnChip)
		s.StallCold = mul(s.StallCold)
		s.StallConflict = mul(s.StallConflict)
		s.StallCapacity = mul(s.StallCapacity)
		s.StallTrue = mul(s.StallTrue)
		s.StallFalse = mul(s.StallFalse)
		s.StallUpgrade = mul(s.StallUpgrade)
		s.StallPrefetch = mul(s.StallPrefetch)
		s.StallInst = mul(s.StallInst)
		s.StallWriteBuffer = mul(s.StallWriteBuffer)
		s.KernelCycles = mul(s.KernelCycles)
		s.SyncCycles = mul(s.SyncCycles)
		s.ImbalanceCycles = mul(s.ImbalanceCycles)
		s.SequentialCycles = mul(s.SequentialCycles)
		s.SuppressedCycles = mul(s.SuppressedCycles)
		s.ColdMisses = mul(s.ColdMisses)
		s.ConflictMisses = mul(s.ConflictMisses)
		s.CapacityMisses = mul(s.CapacityMisses)
		s.TrueShareMisses = mul(s.TrueShareMisses)
		s.FalseShareMisses = mul(s.FalseShareMisses)
		s.InstMisses = mul(s.InstMisses)
		s.L2Misses = s.ColdMisses + s.ConflictMisses + s.CapacityMisses +
			s.TrueShareMisses + s.FalseShareMisses + s.InstMisses
		s.Upgrades = mul(s.Upgrades)
		s.PrefetchesIssued = mul(s.PrefetchesIssued)
		s.PrefetchesDropped = mul(s.PrefetchesDropped)
		s.PrefetchedHits = mul(s.PrefetchedHits)
		s.TLBMisses = mul(s.TLBMisses)
		s.PageFaults = mul(s.PageFaults)
		s.Recolorings = mul(s.Recolorings)
		s.ContextSwitches = mul(s.ContextSwitches)
		if rs := mul(s.RemoteSupplies); rs <= s.L2Misses {
			s.RemoteSupplies = rs
		} else {
			s.RemoteSupplies = s.L2Misses
		}
		missStall := s.StallCold + s.StallConflict + s.StallCapacity +
			s.StallTrue + s.StallFalse + s.StallInst
		if bq := mul(s.BusQueueCycles); bq <= missStall {
			s.BusQueueCycles = bq
		} else {
			s.BusQueueCycles = missStall
		}
		// At most one cross-domain eviction per data miss; clamp the
		// scaled value so invariant 12's inequality survives flooring.
		dataMisses := s.L2Misses - s.InstMisses
		if cd := mul(s.CrossDomainConflicts); cd <= dataMisses {
			s.CrossDomainConflicts = cd
		} else {
			s.CrossDomainConflicts = dataMisses
		}
		// Flooring residue: per-bucket floors sum to at most the floored
		// scaled total, which pre-scale equaled the wall clock. Book the
		// shortfall as barrier imbalance so the CPU's accounted time
		// meets the scaled wall again.
		if total := s.TotalCycles(); total < scaledWall {
			s.ImbalanceCycles += scaledWall - total
		}
	}
	r.Bus.DataCycles = mul(r.Bus.DataCycles)
	r.Bus.WritebackCycles = mul(r.Bus.WritebackCycles)
	r.Bus.UpgradeCycles = mul(r.Bus.UpgradeCycles)
	// Per-slice splits cannot survive extrapolation: flooring each slice
	// independently would drift from the re-derived machine-wide
	// L2Misses and break invariant 13. A scaled result drops the split
	// (today only the sampled path scales, and it never fills one — this
	// keeps the declared nil-on-sampled contract true by construction).
	r.SliceMisses = nil
	r.WallCycles = scaledWall
}
