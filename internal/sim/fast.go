package sim

import (
	"repro/internal/cache"
	"repro/internal/ir"
	"repro/internal/tlb"
	"repro/internal/trace"
)

// Fast mode reproduces SimOS's simulator-speed/detail tradeoff (§3.2):
// "SimOS contains a set of simulators that trade off different
// simulation speeds against the level of simulation detail." The fast
// simulator counts cache events only — no bus, no coherence protocol, no
// cycle accounting — and is used to position workloads and validate
// configurations before paying for the detailed model, exactly as the
// paper used the high-speed simulator to reach the steady state.

// FastResult reports the cache-event counts of a fast run.
type FastResult struct {
	Workload string
	NumCPUs  int

	Refs       uint64 // demand data references executed
	L1Hits     uint64
	L2Hits     uint64
	L2Misses   uint64
	PageFaults uint64
	TLBMisses  uint64

	// PagesTouched is the total resident data footprint in pages.
	PagesTouched int
}

// MissRatio returns external-cache misses per demand reference.
func (f *FastResult) MissRatio() float64 {
	if f.Refs == 0 {
		return 0
	}
	return float64(f.L2Misses) / float64(f.Refs)
}

// FastRun executes the program's steady state (init + phases, once each)
// on a cache-counting-only model: per-CPU L1/L2 and TLB, the same page
// mapping machinery as the detailed simulator, but no timing, bus or
// coherence. It runs one CPU's stream at a time — without a protocol,
// interleaving cannot change the counts a CPU observes in its own
// caches. Typically 5-10x faster than Machine.Run.
func FastRun(prog *ir.Program, opts Options) (*FastResult, error) {
	cfg := opts.Config
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	m, err := New(opts) // reuse VM construction (policy, hints, allocator)
	if err != nil {
		return nil, err
	}
	as := m.as
	if opts.Hints != nil {
		as.Advise(opts.Hints)
	}
	if opts.TouchOrder != nil {
		if _, err := as.TouchInOrder(opts.TouchOrder, 0); err != nil {
			return nil, err
		}
	}

	// The external hierarchy follows the configured topology: shared LLC
	// units (with slice tags when sliced) plus any intermediate levels.
	// On the default topology this reduces to one private external cache
	// per CPU, matching the pre-topology fast model exactly.
	topo := cfg.Topo()
	llcLevel := topo.LLC()
	midLevels := topo.Levels[:len(topo.Levels)-1]
	type fastUnit struct {
		slices []*cache.Cache
	}
	units := make([]*fastUnit, cfg.NumCPUs/llcLevel.CPUsPerCache)
	for i := range units {
		u := &fastUnit{slices: make([]*cache.Cache, llcLevel.Slices)}
		for s := range u.slices {
			u.slices[s] = cache.New(llcLevel.Geom)
		}
		units[i] = u
	}
	midCaches := make([][]*cache.Cache, len(midLevels))
	for li, lvl := range midLevels {
		midCaches[li] = make([]*cache.Cache, cfg.NumCPUs/lvl.CPUsPerCache)
		for g := range midCaches[li] {
			midCaches[li][g] = cache.New(lvl.Geom)
		}
	}
	type fastCPU struct {
		l1   *cache.Cache
		mids []*cache.Cache
		llc  *fastUnit
		tlb  *tlb.TLB
	}
	cpus := make([]fastCPU, cfg.NumCPUs)
	for i := range cpus {
		mids := make([]*cache.Cache, len(midLevels))
		for li, lvl := range midLevels {
			mids[li] = midCaches[li][i/lvl.CPUsPerCache]
		}
		cpus[i] = fastCPU{
			l1:   cache.New(cfg.L1D),
			mids: mids,
			llc:  units[i/llcLevel.CPUsPerCache],
			tlb:  tlb.New(cfg.TLBEntries),
		}
	}
	sliceFor := func(u *fastUnit, paddr uint64) *cache.Cache {
		if llcLevel.Hash == nil {
			return u.slices[0]
		}
		return u.slices[llcLevel.Hash.SliceOf(paddr)]
	}

	res := &FastResult{Workload: prog.Name, NumCPUs: cfg.NumCPUs}
	step := func(cpu int, vaddr uint64, write bool) error {
		res.Refs++
		c := &cpus[cpu]
		if !c.tlb.Lookup(vaddr >> m.pageShift) {
			res.TLBMisses++
		}
		paddr, faulted, err := as.Translate(vaddr, cpu)
		if err != nil {
			return err
		}
		if faulted {
			res.PageFaults++
		}
		if c.l1.Access(vaddr, write).Hit {
			res.L1Hits++
			return nil
		}
		// Mirror the detailed model: every external level sees the miss,
		// and a hit at any of them is an external-hierarchy hit.
		external := false
		for _, mc := range c.mids {
			if mc.Access(paddr, write).Hit {
				external = true
			}
		}
		if sliceFor(c.llc, paddr).Access(paddr, write).Hit || external {
			res.L2Hits++
			return nil
		}
		res.L2Misses++
		return nil
	}

	phases := prog.Phases
	if prog.Init != nil {
		phases = append([]*ir.Phase{prog.Init}, prog.Phases...)
	}
	var r trace.Ref
	for _, ph := range phases {
		for _, n := range ph.Nests {
			for cpu := 0; cpu < cfg.NumCPUs; cpu++ {
				s := ir.NestStream(prog, n, cfg.NumCPUs, cpu)
				for s.Next(&r) {
					if r.Kind != trace.Read && r.Kind != trace.Write {
						continue
					}
					if err := step(cpu, r.VAddr, r.Kind == trace.Write); err != nil {
						return nil, err
					}
				}
			}
		}
	}
	res.PagesTouched = as.MappedPages()
	return res, nil
}
