package sim

import (
	"fmt"

	"repro/internal/bus"
	"repro/internal/ir"
	"repro/internal/trace"
)

// Phase-sampled simulation: instead of detail-simulating every outer
// iteration of every nest, the machine simulates one representative
// window per nest (per phase cluster) and extrapolates the window's
// statistics to the full span. Three mechanisms make the extrapolation
// honest:
//
//   - a page-granularity fault pre-touch replays the program's
//     first-touch pattern before any window runs, so the address space
//     ends up with the same page-to-frame (and therefore page-to-color)
//     assignment the full run produces, and the Result's fault counts
//     match;
//   - a functional warm-up window immediately before each measured
//     window reconstructs the cache, TLB and coherence state the skipped
//     iterations would have left behind, without booking any cycles;
//   - Result.Scale extrapolates each window's delta by span/window in a
//     derivation order that preserves every Audit invariant.
//
// Windows are placed per CPU inside that CPU's own span, so a window
// touches the same columns — and the same page colors — the full run
// would. Nests whose spans are too short to carve a window out of run
// at full detail (scale 1/1); the speedup comes from the long nests,
// which are also where the simulation time goes.

// Sampling parameter defaults; SamplingOptions zero values resolve to
// these.
const (
	// DefaultWindowIters is the measured outer iterations per CPU span.
	DefaultWindowIters = 10
	// DefaultWarmIters is the functional warm-up iterations preceding
	// each measured window.
	DefaultWarmIters = 4
	// DefaultMinSpanIters is the shortest per-CPU span worth sampling;
	// shorter spans run at full detail. Must exceed the window plus the
	// warm-up for the split to mean anything.
	DefaultMinSpanIters = 24
)

// SamplingOptions configures phase-sampled execution (Options.Sampling).
type SamplingOptions struct {
	// Enabled turns sampling on. It is honored only on the
	// single-process path without dynamic recoloring or an observability
	// collector; unsupported combinations silently run at full fidelity
	// (the Result's Fidelity field reports what actually happened).
	Enabled bool

	// WindowIters is the measured outer-iteration window per CPU span
	// (0 → DefaultWindowIters).
	WindowIters int
	// WarmIters is the functional warm-up window preceding each
	// measured window (0 → DefaultWarmIters).
	WarmIters int
	// MinSpanIters is the shortest per-CPU span that gets sampled;
	// shorter spans run at full detail (0 → DefaultMinSpanIters).
	MinSpanIters int

	// Clusters, if non-nil, partitions the program's phases into
	// signature-equal groups: only each cluster's representative phase
	// is simulated, weighted by the summed occurrences of its members.
	// Nil means identity clustering (every phase its own cluster),
	// which is always sound. The harness fills this from the compiler's
	// access-pattern signatures.
	Clusters []PhaseCluster
}

// windowIters/warmIters/minSpanIters resolve the zero-value defaults.
func (o SamplingOptions) windowIters() int {
	if o.WindowIters <= 0 {
		return DefaultWindowIters
	}
	return o.WindowIters
}

func (o SamplingOptions) warmIters() int {
	if o.WarmIters <= 0 {
		return DefaultWarmIters
	}
	return o.WarmIters
}

func (o SamplingOptions) minSpanIters() int {
	if o.MinSpanIters <= 0 {
		return DefaultMinSpanIters
	}
	return o.MinSpanIters
}

// PhaseCluster names one group of access-pattern-identical phases. Rep
// and Members index Program.Phases; the representative's nests are the
// ones simulated, and the extrapolated statistics are weighted by the
// summed occurrence counts of all members.
type PhaseCluster struct {
	Rep     int
	Members []int
}

// samplingSupported reports whether this machine configuration can run
// the sampled path. Dynamic recoloring reacts to per-page miss counts a
// window cannot reproduce, and the observability collector's event
// stream is defined over the full reference trace; both fall back to
// full fidelity.
func (m *Machine) samplingSupported() bool {
	return m.recolorer == nil && m.obs == nil
}

// identityClusters is the fallback clustering: every phase stands alone.
func identityClusters(prog *ir.Program) []PhaseCluster {
	out := make([]PhaseCluster, len(prog.Phases))
	for i := range prog.Phases {
		out[i] = PhaseCluster{Rep: i, Members: []int{i}}
	}
	return out
}

// windowPlan is one nest's per-CPU sampling decision: the functional
// warm-up range [warmLo, warmHi), the measured range [measLo, measHi)
// and the functional tail range [tailLo, spanHi) for each CPU, plus
// the uniform extrapolation weight num/den (total span iterations over
// total measured iterations, summed across CPUs so every CPU's delta
// scales by the same rational and barrier synchronization survives
// scaling).
//
// The tail range reconstructs inter-nest state: the only execution
// state a nest passes to its successor is its span's cache-sized tail
// (everything earlier has been evicted by the time the nest ends), so
// functionally sweeping the tail after the measured window leaves the
// next nest exactly the residue the full engine would. Without it, a
// consumer nest sees its producer's mid-span window instead of the
// producer's tail — mgrid's relax/residual chain was the visible
// casualty.
type windowPlan struct {
	warmLo, warmHi, measLo, measHi, tailLo, spanHi []int
	num, den                                       uint64
}

// warmItersFor sizes a nest's functional warm-up window: at least the
// configured minimum, and long enough that the warm-up's line
// footprint cycles the external cache twice. A warm-up that only
// grazes the cache leaves most ways invalid, so the measured window's
// early misses evict nothing — no dirty victims, no write-back bus
// traffic, and bus queueing (a real component of every miss's stall)
// comes out systematically low. Cycling the cache before measurement
// reconstructs the full run's steady state: every set full, dirty in
// the sweep's proportions.
func (m *Machine) warmItersFor(n *ir.Nest) int {
	warm := m.opts.Sampling.warmIters()
	line := m.llcLine
	f := 0 // bytes of distinct cache lines touched per outer iteration
	type group struct {
		arr          *ir.Array
		inner, outer int
	}
	seen := make(map[group]bool, len(n.Accesses))
	for i := range n.Accesses {
		ac := &n.Accesses[i]
		// Stencil offsets (same array, same strides, shifted start) slide
		// across outer iterations: the lines access i+1 reads now were
		// read by access i one iteration ago, so the group's marginal
		// footprint is a single access's worth. Counting each offset
		// separately overestimates f and makes the warm-up window too
		// short to cycle the external cache — stale residue then survives
		// into later nests' measured regions as phantom hits.
		g := group{arr: ac.Array, inner: ac.InnerStride, outer: ac.OuterStride}
		if seen[g] {
			continue
		}
		seen[g] = true
		b := ac.InnerStride * ac.Array.ElemSize
		if b < 0 {
			b = -b
		}
		if b > line {
			b = line
		}
		f += n.InnerIters * b
	}
	if f <= 0 {
		return warm
	}
	if need := (2*m.llcLevel.Slices*m.llcLevel.Geom.Size + f - 1) / f; need > warm {
		return need
	}
	return warm
}

// tailItersFor sizes a nest's functional tail sweep: enough iterations
// to cycle the external cache once. One full pass both deposits the
// residue the next nest inherits and evicts whatever older state the
// skipped iterations would have pushed out; the double pass the
// pre-window warm-up needs (for steady-state dirty proportions) buys
// nothing extra here.
func (m *Machine) tailItersFor(n *ir.Nest) int {
	t := m.warmItersFor(n) / 2
	if min := m.opts.Sampling.warmIters(); t < min {
		t = min
	}
	return t
}

// planWindows chooses each CPU's measured window for one nest on p
// processors. ord is the nest's ordinal in the sampled run: window
// positions stagger across nests (1/4, 2/4, 3/4 of the room after the
// warm-up) so that consecutive nests' windows cover different rows.
// Aligned windows manufacture producer-consumer locality the full run
// does not have — nest k+1's window would re-read exactly the lines
// nest k's window just brought into the external cache, deflating its
// miss count — while in the full run a consumer sweeps rows the
// producer touched long enough ago to have been evicted.
//
// Spans shorter than MinSpanIters — or too short to fit warm-up plus
// window — run at full detail with no self-warm and no tail: the
// measured sweep starts on whatever state the previous nest's tail
// left (exactly what the full engine's measured pass sees) and its own
// tail is part of the detailed sweep. Warming a fallback nest over its
// own span instead would let the measured sweep re-read lines the warm
// pass just cached — apsi's filter nest lost a third of its misses to
// exactly that artifact.
func (m *Machine) planWindows(n *ir.Nest, p, ord int) windowPlan {
	w := m.opts.Sampling.windowIters()
	warm := m.warmItersFor(n)
	minSpan := m.opts.Sampling.minSpanIters()
	plan := windowPlan{
		warmLo: make([]int, p),
		warmHi: make([]int, p),
		measLo: make([]int, p),
		measHi: make([]int, p),
		tailLo: make([]int, p),
		spanHi: make([]int, p),
	}
	for cpu := 0; cpu < p; cpu++ {
		lo, hi := ir.NestSpan(n, p, cpu)
		span := hi - lo
		if span <= 0 {
			plan.warmLo[cpu], plan.warmHi[cpu] = lo, lo
			plan.measLo[cpu], plan.measHi[cpu] = lo, lo
			plan.tailLo[cpu], plan.spanHi[cpu] = lo, lo
			continue
		}
		if span < minSpan || span <= w+warm {
			// Full detail; the tail is inside the measured sweep.
			plan.warmLo[cpu], plan.warmHi[cpu] = lo, lo
			plan.measLo[cpu], plan.measHi[cpu] = lo, hi
			plan.tailLo[cpu], plan.spanHi[cpu] = hi, hi
			plan.num += uint64(span)
			plan.den += uint64(span)
			continue
		}
		measLo := lo + warm + (span-warm-w)*(1+ord%3)/4
		plan.warmLo[cpu], plan.warmHi[cpu] = measLo-warm, measLo
		plan.measLo[cpu], plan.measHi[cpu] = measLo, measLo+w
		tail := hi - m.tailItersFor(n)
		if tail < measLo+w {
			tail = measLo + w
		}
		plan.tailLo[cpu], plan.spanHi[cpu] = tail, hi
		plan.num += uint64(span)
		plan.den += uint64(w)
	}
	if plan.den == 0 {
		// Nest with no iterations anywhere: scale by 1/1 (no-op).
		plan.num, plan.den = 1, 1
	}
	return plan
}

// runSampled is the phase-sampled counterpart of runSingle's full
// engine. The caller has validated prog and checked samplingSupported.
func (m *Machine) runSampled(prog *ir.Program) (*Result, error) {
	m.warmRefs = 0
	if m.opts.Hints != nil {
		m.as.Advise(m.opts.Hints)
	}
	if m.opts.TouchOrder != nil {
		faults, err := m.as.TouchInOrder(m.opts.TouchOrder, 0)
		if err != nil {
			return nil, fmt.Errorf("sim: touch-order faulting: %w", err)
		}
		m.cpus[0].stats.KernelCycles += uint64(faults) * uint64(m.cfg.PageFaultCycles)
		m.cpus[0].stats.PageFaults += uint64(faults)
		m.cpus[0].clock += uint64(faults) * uint64(m.cfg.PageFaultCycles)
	}

	clusters := m.opts.Sampling.Clusters
	if clusters == nil {
		clusters = identityClusters(prog)
	}
	if err := validateClusters(clusters, len(prog.Phases)); err != nil {
		return nil, err
	}

	// Fault pre-touch: replay the program's first-touch pattern at page
	// granularity — init phase first (it takes the first-touch faults in
	// the full engine), then every steady-state phase, CPUs interleaved
	// per outer iteration to approximate the full run's fault order
	// under first-touch placement. After this pass the measured windows
	// fault nothing, exactly like the full engine's measured pass over a
	// warmed address space.
	if err := m.touchProgramPages(prog); err != nil {
		return nil, err
	}

	// Emulate the full engine's warm-up discard pass at functional
	// fidelity: sweep every representative nest's cache-reaching tail in
	// program order. The discard pass's only lasting effect is the cache,
	// TLB and directory residue of each nest's final iterations —
	// everything earlier is evicted before the pass ends — so the tails
	// reproduce the state the measured pass starts from. Without this,
	// the first measured nest (and every full-detail fallback nest) runs
	// colder than the full engine's measured pass.
	if err := m.prewarmClusters(prog, clusters, len(m.cpus)); err != nil {
		return nil, err
	}

	// Synchronize clocks before measuring (mirrors runSingle): only
	// touch-order faulting can have skewed them here.
	sync := m.wallClock()
	for _, c := range m.cpus {
		if c.clock < sync {
			c.stats.SequentialCycles += sync - c.clock
			c.clock = sync
		}
	}

	res := &Result{
		Workload: prog.Name,
		Machine:  m.cfg.Name,
		Policy:   m.as.PolicyName(),
		NumCPUs:  m.cfg.NumCPUs,
		PerCPU:   make([]CPUStats, m.cfg.NumCPUs),
		Fidelity: FidelitySampled,
	}

	p := len(m.cpus)
	before := make([]CPUStats, p)
	tmp := &Result{PerCPU: make([]CPUStats, p)}
	for ci, cl := range clusters {
		var weight uint64
		for _, i := range cl.Members {
			weight += uint64(prog.Phases[i].Occurrences)
		}
		rep := prog.Phases[cl.Rep]
		for ni, n := range rep.Nests {
			plan := m.planWindows(n, p, ni)
			if err := m.warmRanges(prog, n, p, plan.warmLo, plan.warmHi); err != nil {
				return nil, err
			}

			for i, c := range m.cpus {
				before[i] = c.stats
			}
			busBefore := [3]uint64{m.bus.Occupancy(bus.Data), m.bus.Occupancy(bus.Writeback), m.bus.Occupancy(bus.Upgrade)}
			wallBefore := m.wallClock()

			err := m.runNestStreams(m.cpus, n, &m.regions, func(p, cpu int) trace.Stream {
				return ir.NestWindowStream(prog, n, p, cpu, plan.measLo[cpu], plan.measHi[cpu])
			})
			if err != nil {
				return nil, err
			}

			// Extrapolate the window's delta to the nest's full span, then
			// accumulate with the cluster's phase weight. The delta
			// satisfies the audit invariants on its own (it is one
			// barrier-to-barrier region), Scale preserves them, and add
			// multiplies every term uniformly.
			for i, c := range m.cpus {
				tmp.PerCPU[i] = c.stats.sub(before[i])
			}
			tmp.Bus.DataCycles = m.bus.Occupancy(bus.Data) - busBefore[0]
			tmp.Bus.WritebackCycles = m.bus.Occupancy(bus.Writeback) - busBefore[1]
			tmp.Bus.UpgradeCycles = m.bus.Occupancy(bus.Upgrade) - busBefore[2]
			tmp.WallCycles = m.wallClock() - wallBefore
			tmp.Scale(plan.num, plan.den)

			for i := range tmp.PerCPU {
				res.PerCPU[i].add(&tmp.PerCPU[i], weight)
			}
			res.Bus.DataCycles += tmp.Bus.DataCycles * weight
			res.Bus.WritebackCycles += tmp.Bus.WritebackCycles * weight
			res.Bus.UpgradeCycles += tmp.Bus.UpgradeCycles * weight
			res.WallCycles += tmp.WallCycles * weight

			res.SampledWindows++
			res.SampledIters += plan.den
			res.RepresentedIters += plan.num * weight

			// Functionally sweep the span's tail so the next nest starts
			// from the residue this nest's final iterations would leave —
			// the only state the full engine carries across a nest
			// boundary. The very last nest has no consumer, so its tail
			// sweep is skipped.
			if ci < len(clusters)-1 || ni < len(rep.Nests)-1 {
				if err := m.warmRanges(prog, n, p, plan.tailLo, plan.spanHi); err != nil {
					return nil, err
				}
			}
		}
	}

	res.WarmupRefs = m.warmRefs
	res.PageFaults = m.as.Faults
	res.HintedFaults = m.as.HintedFaults
	res.HonoredHints = m.as.HonoredHints
	return res, nil
}

// validateClusters checks that a caller-supplied clustering is a
// partition of [0, phases).
func validateClusters(clusters []PhaseCluster, phases int) error {
	seen := make([]bool, phases)
	for _, cl := range clusters {
		if cl.Rep < 0 || cl.Rep >= phases {
			return fmt.Errorf("sim: sampling cluster representative %d out of range [0,%d)", cl.Rep, phases)
		}
		for _, i := range cl.Members {
			if i < 0 || i >= phases {
				return fmt.Errorf("sim: sampling cluster member %d out of range [0,%d)", i, phases)
			}
			if seen[i] {
				return fmt.Errorf("sim: phase %d appears in two sampling clusters", i)
			}
			seen[i] = true
		}
	}
	for i, ok := range seen {
		if !ok {
			return fmt.Errorf("sim: phase %d missing from sampling clusters", i)
		}
	}
	return nil
}

// touchProgramPages faults every page the program touches, at page
// granularity, in approximate execution order.
func (m *Machine) touchProgramPages(prog *ir.Program) error {
	p := len(m.cpus)
	phases := prog.Phases
	if prog.Init != nil {
		phases = append([]*ir.Phase{prog.Init}, prog.Phases...)
	}
	code := false
	for _, ph := range phases {
		for _, n := range ph.Nests {
			if n.InstFootprint > 0 {
				code = true
			}
			if err := m.touchNestPages(n, p); err != nil {
				return err
			}
		}
	}
	// Code pages fault on the first instruction fetch in the full
	// engine, always on whichever CPU fetches first; attribute them to
	// CPU 0 (code is read-shared, so placement attribution is moot).
	if code && prog.CodeSize > 0 {
		for off := 0; off < prog.CodeSize; off += m.cfg.PageSize {
			if _, err := m.as.Touch((prog.CodeBase+uint64(off))>>m.pageShift, 0); err != nil {
				return fmt.Errorf("sim: sampling pre-touch (code): %w", err)
			}
			m.warmRefs++
		}
	}
	return nil
}

// touchNestPages walks one nest's data footprint page by page, CPUs
// interleaved per outer iteration so first-touch placement lands close
// to the full engine's min-clock interleave.
func (m *Machine) touchNestPages(n *ir.Nest, p int) error {
	// Pre-touch runs before any simulated nest, so this is the only
	// cancellation point a shutdown during warm-up can hit.
	if err := m.pollCancel(); err != nil {
		return err
	}
	spans := make([][2]int, p)
	maxSpan := 0
	for cpu := 0; cpu < p; cpu++ {
		lo, hi := ir.NestSpan(n, p, cpu)
		spans[cpu] = [2]int{lo, hi}
		if hi-lo > maxSpan {
			maxSpan = hi - lo
		}
	}
	for k := 0; k < maxSpan; k++ {
		for cpu := 0; cpu < p; cpu++ {
			i := spans[cpu][0] + k
			if i >= spans[cpu][1] {
				continue
			}
			for a := range n.Accesses {
				if err := m.touchAccessPages(&n.Accesses[a], i, n.InnerIters, cpu); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// touchAccessPages faults the pages access ac touches at outer
// iteration i, skipping inner iterations that stay on an already-seen
// page: from each touched address it jumps straight to the inner index
// that first crosses the next page boundary. For |stride| <= page size
// this enumerates exactly the pages the full run touches; a Wrap access
// can hide one boundary inside a jump at the wrap seam, which at worst
// defers that page's fault to the warm-up or measured window that
// touches it.
func (m *Machine) touchAccessPages(ac *ir.Access, i, inner, cpu int) error {
	stride := ac.InnerStride * ac.Array.ElemSize
	if stride < 0 {
		stride = -stride
	}
	for j := 0; j < inner; {
		va := ac.VAddr(i, j)
		if _, err := m.as.Touch(va>>m.pageShift, cpu); err != nil {
			return fmt.Errorf("sim: sampling pre-touch: %w", err)
		}
		m.warmRefs++
		if stride == 0 {
			break
		}
		step := int(uint64(m.cfg.PageSize)-(va&m.pageMask)+uint64(stride)-1) / stride
		if step < 1 {
			step = 1
		}
		j += step
	}
	return nil
}

// prewarmClusters reconstructs the state the full engine's warm-up
// discard pass leaves behind: the cache-reaching tail of the final
// nest it executes. Everything the discard pass did before that tail
// is evicted by the tail itself (the tail cycles the external cache),
// so sweeping just the last representative nest's final warmItersFor
// iterations hands the first measured nest the same starting state at
// a fraction of the cost.
func (m *Machine) prewarmClusters(prog *ir.Program, clusters []PhaseCluster, p int) error {
	var last *ir.Nest
	for _, cl := range clusters {
		if nests := prog.Phases[cl.Rep].Nests; len(nests) > 0 {
			last = nests[len(nests)-1]
		}
	}
	if last == nil {
		return nil
	}
	warm := m.warmItersFor(last)
	lo := make([]int, p)
	hi := make([]int, p)
	for cpu := 0; cpu < p; cpu++ {
		l, h := ir.NestSpan(last, p, cpu)
		if h-l > warm {
			l = h - warm
		}
		lo[cpu], hi[cpu] = l, h
	}
	return m.warmRanges(prog, last, p, lo, hi)
}

// warmRanges functionally executes each CPU's [lo, hi) outer-iteration
// range of one nest — caches, TLBs, translation caches, directory and
// prefetch-pending state update exactly as the detailed engine's
// would, but no cycles, stalls or event counters are booked and the
// bus is never touched. References interleave round-robin across CPUs,
// one reference each, standing in for the detailed engine's min-clock
// order.
func (m *Machine) warmRanges(prog *ir.Program, n *ir.Nest, p int, lo, hi []int) error {
	// One poll per warm sweep: a sweep covers at most warmItersFor
	// iterations of one nest, the same boundary granularity the
	// detailed engine polls at in runNestStreams.
	if err := m.pollCancel(); err != nil {
		return err
	}
	streams := make([]trace.Stream, 0, p)
	cpus := make([]*cpuState, 0, p)
	for cpu := 0; cpu < p; cpu++ {
		if lo[cpu] >= hi[cpu] {
			continue
		}
		// Warm at L1-line granularity: every structure the warm-up
		// populates holds line- or page-granular state, so one reference
		// per L1 line rebuilds the same state as a per-element sweep.
		streams = append(streams, ir.NestWarmStream(prog, n, p, cpu, lo[cpu], hi[cpu], m.llcLine))
		cpus = append(cpus, m.cpus[cpu])
	}
	var r trace.Ref
	for len(streams) > 0 {
		live := 0
		for i := range streams {
			if !streams[i].Next(&r) {
				continue
			}
			if err := m.warmRef(cpus[i], &r); err != nil {
				return err
			}
			streams[live], cpus[live] = streams[i], cpus[i]
			live++
		}
		streams, cpus = streams[:live], cpus[:live]
	}
	return nil
}

// warmRef applies one reference's state transitions without accounting.
func (m *Machine) warmRef(c *cpuState, r *trace.Ref) error {
	m.warmRefs++
	switch r.Kind {
	case trace.Prefetch:
		m.warmPrefetch(c, r)
		return nil
	case trace.Inst:
		return m.warmInst(c, r)
	default:
		return m.warmData(c, r)
	}
}

// warmTranslate resolves a data-side virtual address through the warm
// translation path: translation cache, then the page table. The pages
// were pre-touched, so this never faults in practice; a fault simply
// goes unbooked (the address-space counter still sees it, keeping
// Result.PageFaults honest about a wrap seam the pre-touch missed).
func (m *Machine) warmTranslate(c *cpuState, tc *transCache, vaddr uint64) (uint64, error) {
	vpn := vaddr >> m.pageShift
	if tc.valid && tc.vpn == vpn {
		return tc.pbase | (vaddr & m.pageMask), nil
	}
	pbase, _, err := c.as.TranslateVPN(vpn, c.id)
	if err != nil {
		return 0, fmt.Errorf("sim: cpu %d (warm): %w", c.id, err)
	}
	*tc = transCache{vpn: vpn, pbase: pbase, valid: true}
	return pbase | (vaddr & m.pageMask), nil
}

// warmData mirrors stepData: TLB, translation, on-chip and external
// lookups, coherence side effects — minus every clock and counter.
func (m *Machine) warmData(c *cpuState, r *trace.Ref) error {
	c.tlb.Lookup(r.VAddr >> m.pageShift)
	paddr, err := m.warmTranslate(c, &c.tcData, r.VAddr)
	if err != nil {
		return err
	}
	write := r.Kind == trace.Write
	l1 := c.l1d.Access(r.VAddr, write)
	if l1.Evicted && l1.VictimDirty {
		if vp, ok := c.as.TranslateNoFault(l1.VictimAddr); ok {
			m.markDirtyPhys(c, vp)
		}
	}
	if l1.Hit && !write {
		return nil
	}
	out := m.dir.Access(c.llc.id, paddr, write)
	m.applyDowngrade(paddr, out.Downgraded)
	m.applyInvalidations(c, paddr, out.Invalidated)
	serviced := m.accessMids(c, paddr, write)
	if !m.opts.DisableClassification {
		c.llc.shadow.Access(paddr)
	}
	res := c.llc.cacheFor(paddr).Access(paddr, write)
	m.warmEvict(c, res.Evicted, res.VictimAddr, res.VictimDirty)
	if (res.Hit || serviced >= 0) && !l1.Hit {
		delete(c.pending, m.llcLineAddr(paddr))
	}
	return nil
}

// warmInst mirrors stepInst's state transitions.
func (m *Machine) warmInst(c *cpuState, r *trace.Ref) error {
	if c.l1i.Access(r.VAddr, false).Hit {
		return nil
	}
	paddr, err := m.warmTranslate(c, &c.tcInst, r.VAddr)
	if err != nil {
		return err
	}
	out := m.dir.Access(c.llc.id, paddr, false)
	m.applyDowngrade(paddr, out.Downgraded)
	m.accessMids(c, paddr, false)
	if !m.opts.DisableClassification {
		c.llc.shadow.Access(paddr)
	}
	res := c.llc.cacheFor(paddr).Access(paddr, false)
	m.warmEvict(c, res.Evicted, res.VictimAddr, res.VictimDirty)
	return nil
}

// warmPrefetch mirrors stepPrefetch's fill effect: the line lands in
// the external cache and the pending map with an already-elapsed
// arrival time, so a demand hit in the measured window pays no arrival
// stall — matching a prefetch issued far enough ahead, which is what
// the warm-up window's lead distance amounts to.
func (m *Machine) warmPrefetch(c *cpuState, r *trace.Ref) {
	vpn := r.VAddr >> m.pageShift
	if !c.tlb.Probe(vpn) {
		return
	}
	var paddr uint64
	if c.tcData.valid && c.tcData.vpn == vpn {
		paddr = c.tcData.pbase | (r.VAddr & m.pageMask)
	} else {
		pa, ok := c.as.TranslateNoFault(r.VAddr)
		if !ok {
			return
		}
		c.tcData = transCache{vpn: vpn, pbase: pa &^ m.pageMask, valid: true}
		paddr = pa
	}
	la := m.llcLineAddr(paddr)
	if _, inflight := c.pending[la]; inflight || c.llc.cacheFor(paddr).Probe(paddr) {
		return
	}
	out := m.dir.Access(c.llc.id, paddr, false)
	m.applyDowngrade(paddr, out.Downgraded)
	m.applyInvalidations(c, paddr, out.Invalidated)
	if !m.opts.DisableClassification {
		c.llc.shadow.Access(paddr)
	}
	res := c.llc.cacheFor(paddr).Access(paddr, false)
	m.warmEvict(c, res.Evicted, res.VictimAddr, res.VictimDirty)
	c.pending[la] = c.clock
}

// warmEvict mirrors handleLLCEviction's state maintenance — directory,
// pending prefetches, inner-level inclusion — without the write-back
// buffer or bus transaction (no cycles exist to charge them against;
// the dirty bit therefore goes unused here).
func (m *Machine) warmEvict(c *cpuState, evicted bool, victim uint64, _ bool) {
	if !evicted {
		return
	}
	m.dir.Evict(c.llc.id, victim)
	la := m.llcLineAddr(victim)
	delete(c.pending, la)
	for _, p := range c.llc.cpus {
		o := m.cpus[p]
		delete(o.pending, la)
		for li, mc := range o.mids {
			if !m.midLevels[li].Inclusive {
				continue
			}
			step := uint64(m.midLevels[li].Geom.LineSize)
			for off := uint64(0); off < uint64(m.llcLine); off += step {
				mc.Invalidate(la + off)
			}
		}
		if vaddr, ok := o.as.ReverseVAddr(victim); ok {
			step := uint64(m.cfg.L1D.LineSize)
			for off := uint64(0); off < uint64(m.llcLine); off += step {
				o.l1d.Invalidate(vaddr + off)
				o.l1i.Invalidate(vaddr + off)
			}
		}
	}
}
