package sim

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/bus"
	"repro/internal/cache"
	"repro/internal/coherence"
	"repro/internal/ir"
	"repro/internal/memory"
	"repro/internal/obs"
	"repro/internal/tlb"
	"repro/internal/trace"
	"repro/internal/vm"
)

// Options configures a simulation run.
type Options struct {
	Config arch.Config

	// Policy constructs the page mapping policy; nil defaults to page
	// coloring (IRIX's policy, the paper's base configuration).
	Policy vm.Policy

	// Hints, if non-nil, is installed through the address space's Advise
	// call before execution (the CDPC path).
	Hints map[uint64]int

	// TouchOrder, if non-nil, faults these pages in order on CPU 0 before
	// execution — the paper's Digital UNIX emulation of page coloring and
	// CDPC on top of bin hopping (§5.3). The serialized fault time is
	// charged to the master's kernel bucket.
	TouchOrder []uint64

	// SkipWarmup skips the unmeasured warm-up pass over the phases; unit
	// tests use it, experiments leave it off so cold misses are discarded
	// as in the paper (§3.2).
	SkipWarmup bool

	// DisableClassification turns off the shadow-cache conflict/capacity
	// split (replacement misses all count as capacity); the ablation
	// benchmark measures its simulation cost.
	DisableClassification bool

	// Recolor, if non-nil, enables the dynamic page recoloring policy the
	// paper contrasts CDPC against (§2.1/§2.2): conflicting pages are
	// detected by miss counters and moved to colder colors at run time,
	// paying copy, TLB-shootdown and invalidation costs.
	Recolor *vm.RecolorPolicy

	// ExhaustColors drains the free-frame pools of the given colors
	// before execution, simulating memory pressure: faults preferring
	// those colors fall back to other pools and CDPC hints go unhonored
	// (§5 step 3: the OS "may not be able to honor the hints if the
	// machine is under memory pressure").
	ExhaustColors []int

	// Obs, when non-nil, collects per-color/per-page miss attribution,
	// per-set external-cache profiles and the structured event stream
	// during Run. Observation is passive: an instrumented run produces a
	// Result byte-identical to a plain one. Nil costs the hot path
	// nothing beyond untaken branches on the miss paths.
	Obs *obs.Collector

	// Cancel, when non-nil, is polled at nest boundaries during Run; a
	// non-nil return aborts the simulation with that error. The harness
	// wires a request's context.Context.Err here so a canceled or
	// timed-out job frees its worker at the next nest boundary instead
	// of running to completion. Nest boundaries are the natural
	// preemption points: all CPUs are synchronized there, so no partial
	// accounting escapes into a Result that is discarded anyway.
	Cancel func() error

	// Isolate enables color-partitioned isolation domains for
	// multiprocess runs: the frame allocator splits its color space into
	// per-domain exclusive subsets (one domain per process unless
	// ProcessOptions.Domain groups them) and every allocation — policy
	// preference, CDPC hint, pressure fallback — is clamped to the
	// owner's partition. Cross-domain conflict misses become impossible
	// by construction (audit invariant 12 proves it on every run).
	// Ignored on the single-process path; unpartitioned runs are
	// byte-identical with this off.
	Isolate bool

	// Sampling enables phase-sampled execution: representative windows
	// per nest with functional warm-up, extrapolated by span and phase
	// weights (see sampling.go). Active only on the single-process path
	// without dynamic recoloring or observability — unsupported
	// combinations silently run at full fidelity, which the Result's
	// Fidelity field reports.
	Sampling SamplingOptions
}

// llcUnit is one last-level-cache instance: its hash-selected slice
// caches, the shadow cache classifying its replacement misses, and the
// CPUs sharing it. The coherence directory tracks units — the agents
// that actually hold physically tagged state — so on the default
// topology (one private external cache per CPU) unit ids coincide with
// CPU ids and the pre-topology behavior is reproduced exactly.
type llcUnit struct {
	id     int
	slices []*cache.Cache
	shadow *cache.Shadow
	cpus   []int
	hash   *arch.SliceHash
}

// cacheFor returns the slice cache serving a physical address.
func (u *llcUnit) cacheFor(paddr uint64) *cache.Cache {
	if u.hash == nil {
		return u.slices[0]
	}
	return u.slices[u.hash.SliceOf(paddr)]
}

// sliceOf returns the slice index serving a physical address.
func (u *llcUnit) sliceOf(paddr uint64) int {
	if u.hash == nil {
		return 0
	}
	return u.hash.SliceOf(paddr)
}

// Machine is a configured simulator instance.
type Machine struct {
	cfg   arch.Config
	as    *vm.AddressSpace
	bus   *bus.Bus
	dir   *coherence.Directory
	alloc *memory.Allocator
	cpus  []*cpuState

	// Resolved cache topology (cfg.Topo()): the last level's geometry
	// and latency drive the miss path, the inner levels are latency
	// filters, and llcLine caches the LLC line size for the hot path's
	// line-address masking and bus transfer sizing.
	topo      arch.Topology
	llcLevel  arch.Level
	llcLine   int
	llcUnits  []*llcUnit
	midLevels []arch.Level

	// sliceMiss counts demand+instruction LLC misses per slice; nil
	// unless the LLC is sliced. Incremented wherever L2Misses is.
	sliceMiss []uint64

	// pageShift/pageMask are the division-free page-number split;
	// arch.Validate guarantees the page size is a power of two.
	pageShift uint
	pageMask  uint64
	// colors caches cfg.Colors() for frame→color attribution.
	colors int

	// obs is the optional observability collector (Options.Obs).
	obs *obs.Collector

	// recolorer is non-nil when dynamic recoloring is enabled.
	recolorer *recolorAdapter

	opts Options

	// missTrace, when set (tests only), observes every full external
	// cache miss as (cpu, issue cycle).
	missTrace func(cpu int, at uint64, paddr uint64)

	// crossCheck enables cross-domain victim attribution on the conflict
	// miss path. Set only for multiprocess or isolated runs so the
	// single-process hot path pays nothing.
	crossCheck bool

	// regions counts parallel regions executed, seeding the per-region
	// dispatch-order variation.
	regions uint64

	// warmRefs counts functional references executed by the sampling
	// path (fault pre-touch pages plus warm-up window references).
	warmRefs uint64

	// runners is the parallel event loop's reusable cursor buffer.
	runners []runner
}

// transCache is a one-entry VPN→physical-page-base cache. On a TLB hit
// the translation cannot have changed since the last reference to the
// page (recoloring shoots both down together), so the full page-table
// map lookup is skipped — the dominant cost of the per-reference hot
// path once the caches warm up.
type transCache struct {
	vpn   uint64
	pbase uint64
	valid bool
}

// cpuState is one processor's private state.
type cpuState struct {
	id    int
	clock uint64

	// as/pid identify the process currently scheduled on this CPU. A
	// single-process machine points every CPU at m.as (pid 0) forever;
	// the space-sharing scheduler re-points them at dispatch time.
	as  *vm.AddressSpace
	pid int

	l1d *cache.Cache
	l1i *cache.Cache
	tlb *tlb.TLB

	// llc is the CPU's last-level-cache unit (possibly shared with
	// other CPUs); mids are its intermediate physically indexed levels,
	// inner to outer, one cache instance per level (also possibly
	// shared). The default topology has no mids and a private
	// one-slice unit per CPU.
	llc  *llcUnit
	mids []*cache.Cache

	// tcData/tcInst are one-entry translation caches for the data and
	// instruction streams (separate so code fetches do not thrash the
	// data entry). Invalidated on page recoloring.
	tcData transCache
	tcInst transCache

	// Prefetch engine: completion times of in-flight prefetches and the
	// arrival time of each prefetched line not yet demanded.
	outstanding []uint64
	pending     map[uint64]uint64 // L2 line address -> arrival time

	// writeBuffer holds the bus-completion times of in-flight
	// write-backs; a full buffer stalls the CPU until the oldest drains.
	writeBuffer []uint64

	stats CPUStats
}

// New builds a machine for the given options.
func New(opts Options) (*Machine, error) {
	cfg := opts.Config
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	topo := cfg.Topo()
	llcLevel := topo.LLC()
	units := cfg.NumCPUs / llcLevel.CPUsPerCache
	frames := cfg.MemoryMB << 20 / cfg.PageSize
	// A hashed LLC redefines frame→color; the allocator's pools must be
	// built by the same function the cache indexes by. The nil function
	// keeps the modular default (and its exact pool layout).
	var colorOf func(uint64) int
	if llcLevel.Hash != nil {
		colorOf = func(f uint64) int { return llcLevel.FrameColor(f, cfg.PageSize) }
	}
	alloc := memory.NewWithColorOf(frames, cfg.Colors(), colorOf)
	policy := opts.Policy
	if policy == nil {
		policy = vm.PageColoring{Colors: cfg.Colors()}
	}
	bindPolicy(policy, alloc, 0)
	m := &Machine{
		cfg:       cfg,
		as:        vm.NewAddressSpace(cfg.PageSize, alloc, policy),
		bus:       bus.New(cfg.BusBytesPerCycle, cfg.BusOverhead),
		dir:       coherence.New(units, llcLevel.Geom.LineSize),
		alloc:     alloc,
		opts:      opts,
		pageShift: arch.Log2(cfg.PageSize),
		pageMask:  uint64(cfg.PageSize - 1),
		colors:    cfg.Colors(),
		obs:       opts.Obs,
		topo:      topo,
		llcLevel:  llcLevel,
		llcLine:   llcLevel.Geom.LineSize,
		midLevels: topo.Levels[:len(topo.Levels)-1],
	}
	if llcLevel.Slices > 1 {
		m.sliceMiss = make([]uint64, llcLevel.Slices)
	}
	for u := 0; u < units; u++ {
		unit := &llcUnit{id: u, hash: llcLevel.Hash}
		for s := 0; s < llcLevel.Slices; s++ {
			unit.slices = append(unit.slices, cache.New(llcLevel.Geom))
		}
		unit.shadow = cache.NewShadow(llcLevel.Slices*llcLevel.Geom.Lines(), llcLevel.Geom.LineSize)
		for p := u * llcLevel.CPUsPerCache; p < (u+1)*llcLevel.CPUsPerCache; p++ {
			unit.cpus = append(unit.cpus, p)
		}
		m.llcUnits = append(m.llcUnits, unit)
	}
	// Intermediate-level cache instances, shared by sharing-cluster.
	midCaches := make([][]*cache.Cache, len(m.midLevels))
	for li, lvl := range m.midLevels {
		n := cfg.NumCPUs / lvl.CPUsPerCache
		midCaches[li] = make([]*cache.Cache, n)
		for i := range midCaches[li] {
			midCaches[li][i] = cache.New(lvl.Geom)
		}
	}
	if opts.Recolor != nil {
		m.recolorer = newRecolorAdapter(m.as, cfg.NumCPUs, *opts.Recolor, cfg.PageSize)
	}
	for _, color := range opts.ExhaustColors {
		for alloc.FreeOfColor(color) > 0 {
			if _, _, err := alloc.Alloc(color); err != nil {
				return nil, err
			}
		}
	}
	for i := 0; i < cfg.NumCPUs; i++ {
		c := &cpuState{
			id:      i,
			as:      m.as,
			l1d:     cache.New(cfg.L1D),
			l1i:     cache.New(cfg.L1I),
			tlb:     tlb.New(cfg.TLBEntries),
			llc:     m.llcUnits[i/llcLevel.CPUsPerCache],
			pending: make(map[uint64]uint64),
		}
		for li, lvl := range m.midLevels {
			c.mids = append(c.mids, midCaches[li][i/lvl.CPUsPerCache])
		}
		m.cpus = append(m.cpus, c)
	}
	if m.obs != nil {
		m.obs.Init(m.colors, llcLevel.Slices*llcLevel.Geom.Sets(), cfg.PageSize/llcLevel.Geom.LineSize)
		if llcLevel.Slices > 1 {
			m.obs.InitSlices(llcLevel.Slices, llcLevel.Geom.Sets())
		}
		m.enableSetProfiles()
		m.as.OnFault = m.obsFaultHook()
	}
	return m, nil
}

// enableSetProfiles (re)arms per-set profiling on every LLC slice cache.
func (m *Machine) enableSetProfiles() {
	for _, u := range m.llcUnits {
		for _, sc := range u.slices {
			sc.EnableSetProfile()
		}
	}
}

// bindPolicy resolves allocator-dependent policies: a first-touch
// policy is constructed by the harness before the machine (and so
// before any allocator) exists, and is pointed at the machine's shared
// frame allocator and the owning process here (the pid scopes its
// free-list prediction to the process's color partition under
// isolation domains).
func bindPolicy(p vm.Policy, alloc *memory.Allocator, pid int) {
	if ft, ok := p.(*vm.FirstTouch); ok && ft.Alloc == nil {
		ft.Alloc = alloc
		ft.Pid = pid
	}
}

// obsFaultHook builds the address-space fault callback feeding the
// observability collector; every process's address space installs the
// same hook, distinguished by the pid the callback carries.
func (m *Machine) obsFaultHook() func(pid int, vpn uint64, cpu, color int, hinted, honored bool) {
	return func(pid int, vpn uint64, cpu, color int, hinted, honored bool) {
		var cycle uint64
		if cpu >= 0 && cpu < len(m.cpus) {
			cycle = m.cpus[cpu].clock
		}
		m.obs.RecordFaultPID(pid, cpu, cycle, vpn, color, hinted, honored)
	}
}

// frameColor returns the page color of paddr's frame: frame number mod
// color count on the default (unsliced) topology — the allocator's
// layout of contiguous physical memory — or the hash-aware slice-major
// color on a sliced LLC. The allocator holds the authoritative function.
func (m *Machine) frameColor(paddr uint64) int {
	return m.alloc.ColorOf(paddr >> m.pageShift)
}

// llcLineAddr rounds a physical address down to its LLC line boundary.
func (m *Machine) llcLineAddr(paddr uint64) uint64 {
	return paddr &^ uint64(m.llcLine-1)
}

// crossDomainVictim reports whether evicting the line at victim (a
// physical address) on behalf of pid crossed an isolation boundary. In
// partitioned mode the test is by color ownership — the victim frame's
// color belongs to another domain's exclusive subset — which is immune
// to frame-ownership staleness and provably never true (disjoint color
// subsets map to disjoint external-cache sets). Unpartitioned, each
// process is its own implicit domain and the test is by the victim
// frame's current owner: the PR 5 collision pathology made measurable.
func (m *Machine) crossDomainVictim(pid int, victim uint64) bool {
	if m.alloc.Partitioned() {
		return m.alloc.ColorDomain(m.frameColor(victim)) != m.alloc.DomainOf(pid)
	}
	owner, ok := m.alloc.OwnerOf(victim >> m.pageShift)
	return ok && owner != pid
}

// AddressSpace exposes the simulated application's address space (the
// access-map tool reads page colors from it).
func (m *Machine) AddressSpace() *vm.AddressSpace { return m.as }

// Run executes prog's steady state and returns the weighted result. It
// is a thin wrapper over RunProcesses with a one-entry process table;
// the single-process path keeps the paper's methodology (warm-up
// discard, phase-occurrence weighting) and its byte-identical output.
func (m *Machine) Run(prog *ir.Program) (*Result, error) {
	mr, err := m.RunProcesses([]ProcessOptions{{Prog: prog}}, SchedOptions{})
	if err != nil {
		return nil, err
	}
	return mr.Total, nil
}

// runSingle is the legacy single-process engine operating on the
// machine's own address space and configured policy. Since the
// source-abstraction refactor it is a thin shim: validate, pick the
// sampled path when eligible, then run the program as one Source
// implementation among others (runSource is the engine proper).
func (m *Machine) runSingle(prog *ir.Program) (*Result, error) {
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	if m.opts.Sampling.Enabled && m.samplingSupported() {
		return m.runSampled(prog)
	}
	return m.runSource(ProgramSource(prog))
}

// finalizeObs snapshots the per-set external-cache profile (summed over
// CPUs, occupancy averaged) and the VM/allocator color state into the
// collector at the end of a run.
func (m *Machine) finalizeObs() {
	m.recordSetProfiles()
	m.obs.RecordAllocation(m.as.ColorOccupancy(), m.alloc.FreeByColor(),
		m.as.Faults, m.as.HintedFaults, m.as.HonoredHints)
}

// recordSetProfiles aggregates the per-set LLC counters over cache
// units into the collector. Sets are numbered slice-major — slice s's
// sets occupy [s*sliceSets, (s+1)*sliceSets) — matching the slice-major
// color numbering, so the collector's color×set Heat reshape works
// unchanged on sliced topologies.
func (m *Machine) recordSetProfiles() {
	sliceSets := m.llcLevel.Geom.Sets()
	sets := m.llcLevel.Slices * sliceSets
	miss := make([]uint64, sets)
	evict := make([]uint64, sets)
	inval := make([]uint64, sets)
	occ := make([]float64, sets)
	for _, u := range m.llcUnits {
		for s, sc := range u.slices {
			base := s * sliceSets
			p := sc.Profile()
			for i := 0; i < sliceSets; i++ {
				miss[base+i] += p.Misses[i]
				evict[base+i] += p.Evictions[i]
				inval[base+i] += p.Invalidations[i]
			}
			for i, o := range sc.SetOccupancy() {
				occ[base+i] += o
			}
		}
	}
	for i := range occ {
		occ[i] /= float64(len(m.llcUnits))
	}
	m.obs.RecordSetProfile(miss, evict, inval, occ)
}

// wallClock returns the current global time (all CPUs are synchronized
// at nest boundaries, so any CPU's clock works; use the max defensively).
func (m *Machine) wallClock() uint64 {
	var w uint64
	for _, c := range m.cpus {
		if c.clock > w {
			w = c.clock
		}
	}
	return w
}

// runNest executes one nest to the barrier at its end on the whole
// machine (the single-process path).
func (m *Machine) runNest(prog *ir.Program, n *ir.Nest) error {
	return m.runNestOn(m.cpus, prog, n, &m.regions)
}

// runNestOn executes one nest to the barrier at its end on the given
// CPU subset (the scheduled process's gang). The subset is the whole
// machine for single-process and time-sliced runs and one partition for
// space-partitioned runs; stream decomposition and fork-skew hashing
// use process-local CPU indices so a process behaves identically at a
// given width wherever its partition sits. regions is the owning
// process's parallel-region counter, seeding the per-region dispatch
// skew.
// pollCancel runs the Options.Cancel hook, wrapping its error. Every
// nest-boundary-granularity loop — full-run nest dispatch, sampled
// windows, and the sampled mode's page pre-touch and functional
// warm-up — must reach it, so a canceled server job stops within one
// nest (or one warm-up nest) of the cancellation; cdpcd's drain
// deadline is sized to that bound.
func (m *Machine) pollCancel() error {
	if m.opts.Cancel != nil {
		if err := m.opts.Cancel(); err != nil {
			return fmt.Errorf("sim: run canceled: %w", err)
		}
	}
	return nil
}

func (m *Machine) runNestOn(cpus []*cpuState, prog *ir.Program, n *ir.Nest, regions *uint64) error {
	return m.runNestStreams(cpus, n, regions, func(p, cpu int) trace.Stream {
		return ir.NestStream(prog, n, p, cpu)
	})
}

// runNestStreams is runNestOn with the per-CPU reference streams
// supplied by the caller: the full run streams whole nests, the
// sampling path streams representative windows. Region semantics —
// catch-up, fork + dispatch skew, the min-clock interleave and the
// closing barrier — are identical either way, which is what lets a
// window's per-CPU stat delta equal its wall delta (the property
// Result.Scale needs).
func (m *Machine) runNestStreams(cpus []*cpuState, n *ir.Nest, regions *uint64, mk func(p, cpu int) trace.Stream) error {
	return m.runRegionStreams(cpus, n.Parallel, n.Suppressed, regions, mk)
}

// runRegionStreams is the engine's region primitive, shared by every
// source: the nest-shaped callers above and the abstract Regions of
// runSource. Only the parallel/suppressed structure of the region is
// needed — everything else comes from the streams.
func (m *Machine) runRegionStreams(cpus []*cpuState, parallel, suppressed bool, regions *uint64, mk func(p, cpu int) trace.Stream) error {
	if err := m.pollCancel(); err != nil {
		return err
	}
	p := len(cpus)
	start := clockMax(cpus)
	// Bring lagging CPUs up to the region start; they were idle waiting
	// for the master (e.g. after serialized touch-order faulting).
	for _, c := range cpus {
		if c.clock < start {
			c.stats.SequentialCycles += start - c.clock
			c.clock = start
		}
	}

	if !parallel || suppressed || p == 1 {
		// Master executes alone; slaves spin.
		master := cpus[0]
		if err := m.runStream(master, mk(p, 0)); err != nil {
			return err
		}
		end := master.clock
		for _, c := range cpus[1:] {
			// Idle from the slave's own clock, not the region start: a
			// recoloring shootdown interrupt delivered mid-nest already
			// advanced the slave's clock and kernel time, converting that
			// much idle spin into kernel work rather than extending it
			// (the audit's cycle-conservation invariant caught the
			// end-start version double-booking shootdown cycles).
			if end > c.clock {
				idle := end - c.clock
				switch {
				case suppressed:
					c.stats.SuppressedCycles += idle
				default:
					c.stats.SequentialCycles += idle
				}
				c.clock = end
			}
		}
		return nil
	}

	// Parallel region: master forks, everyone runs its partition, then a
	// barrier synchronizes.
	fork := uint64(m.cfg.ForkCycles)
	skew := uint64(m.cfg.ForkSkewCycles)
	*regions++
	streams := make([]trace.Stream, p)
	for cpu := 0; cpu < p; cpu++ {
		// The master releases slaves one at a time and in no fixed order
		// (spin-wait wakeups race): CPU i starts a pseudo-random fraction
		// of the dispatch window later, varying per region. Identical
		// per-CPU cache layouts (CDPC) would otherwise keep every CPU's
		// hit-run/miss-burst phases aligned region after region, driving
		// worst-case bus convoys no real machine sustains.
		lag := fork
		if skew > 0 && p > 1 {
			h := (uint64(cpu)+1)*0x9e3779b97f4a7c15 ^ *regions*0xbf58476d1ce4e5b9
			h ^= h >> 29
			lag += (h * 0x94d049bb133111eb >> 40) % (uint64(p) * skew)
		}
		cpus[cpu].clock = start + lag
		cpus[cpu].stats.SyncCycles += lag
		streams[cpu] = mk(p, cpu)
	}
	if err := m.runParallel(cpus, streams); err != nil {
		return err
	}

	// Barrier: everyone waits for the slowest, then pays the software
	// barrier cost.
	maxT := clockMax(cpus)
	for _, c := range cpus {
		c.stats.ImbalanceCycles += maxT - c.clock
		c.stats.SyncCycles += uint64(m.cfg.BarrierCycles)
		c.clock = maxT + uint64(m.cfg.BarrierCycles)
	}
	return nil
}

// clockMax returns the latest clock among the given CPUs.
func clockMax(cpus []*cpuState) uint64 {
	var w uint64
	for _, c := range cpus {
		if c.clock > w {
			w = c.clock
		}
	}
	return w
}

// cancelPollRefs is the in-region cancellation granularity: the
// interleave loops poll Options.Cancel every this many references.
// Nest-shaped sources already poll at every region boundary, but an
// external trace is one region — without the in-region poll, a long
// trace job would outlive the server's drain deadline. Power of two so
// the hot loops test with a mask.
const cancelPollRefs = 1 << 20

// runStream drains one CPU's stream (sequential regions).
func (m *Machine) runStream(c *cpuState, s trace.Stream) error {
	var r trace.Ref
	n := uint64(0)
	for s.Next(&r) {
		if err := m.step(c, &r); err != nil {
			return err
		}
		if n++; n&(cancelPollRefs-1) == 0 {
			if err := m.pollCancel(); err != nil {
				return err
			}
		}
	}
	return nil
}

// runner is one CPU's cursor in the parallel event loop; the trace.Ref
// inside is reused for every reference so the loop allocates nothing.
type runner struct {
	c    *cpuState
	s    trace.Stream
	r    trace.Ref
	done bool
}

// runParallel interleaves the per-CPU streams in global time order: the
// CPU with the smallest clock processes its next reference. This is what
// makes bus contention and coherence interactions honest.
func (m *Machine) runParallel(cpus []*cpuState, streams []trace.Stream) error {
	if cap(m.runners) < len(streams) {
		m.runners = make([]runner, len(streams))
	}
	runners := m.runners[:len(streams)]
	active := 0
	for i := range streams {
		runners[i] = runner{c: cpus[i], s: streams[i]}
		if !runners[i].s.Next(&runners[i].r) {
			runners[i].done = true
		} else {
			active++
		}
	}
	steps := uint64(0)
	for active > 0 {
		// Linear min scan: CPU counts are ≤ 64 and usually ≤ 16, where a
		// scan beats heap bookkeeping.
		best := -1
		for i := range runners {
			if runners[i].done {
				continue
			}
			if best < 0 || runners[i].c.clock < runners[best].c.clock {
				best = i
			}
		}
		ru := &runners[best]
		if err := m.step(ru.c, &ru.r); err != nil {
			return err
		}
		if !ru.s.Next(&ru.r) {
			ru.done = true
			active--
		}
		if steps++; steps&(cancelPollRefs-1) == 0 {
			if err := m.pollCancel(); err != nil {
				return err
			}
		}
	}
	return nil
}
