package sim

import (
	"math/rand"
	"testing"

	"repro/internal/compiler"
	"repro/internal/ir"
	"repro/internal/vm"
)

// randomProgram builds a bounded random program: 1-4 arrays, 1-2 phases,
// 1-3 nests each with random parallelism, offsets, strides and work.
func randomProgram(rng *rand.Rand) *ir.Program {
	narr := 1 + rng.Intn(4)
	arrays := make([]*ir.Array, narr)
	for i := range arrays {
		arrays[i] = &ir.Array{
			Name:     string(rune('a' + i)),
			ElemSize: 8,
			Elems:    512 * (1 + rng.Intn(16)), // 1-16 pages
		}
	}
	prog := &ir.Program{Name: "random", Arrays: arrays}
	nphases := 1 + rng.Intn(2)
	for p := 0; p < nphases; p++ {
		ph := &ir.Phase{Name: "ph", Occurrences: 1 + rng.Intn(5)}
		nnests := 1 + rng.Intn(3)
		for n := 0; n < nnests; n++ {
			a := arrays[rng.Intn(narr)]
			b := arrays[rng.Intn(narr)]
			iters := []int{4, 8, 16, 33}[rng.Intn(4)]
			unit := a.Elems / iters
			if unit < 1 {
				unit = 1
			}
			inner := 1 + rng.Intn(unit)
			nest := &ir.Nest{
				Name:       "n",
				Parallel:   rng.Intn(4) != 0,
				Iterations: iters,
				InnerIters: inner,
				Accesses: []ir.Access{
					{Array: a, Kind: ir.Load, OuterStride: unit, InnerStride: 1 + rng.Intn(3),
						Offset: rng.Intn(5) - 2, Wrap: rng.Intn(3) == 0},
					{Array: b, Kind: ir.Store, OuterStride: b.Elems / iters, InnerStride: 1},
				},
				WorkPerIter: rng.Intn(8),
				Tiled:       rng.Intn(4) == 0,
				Sched:       ir.Schedule{Kind: ir.PartitionKind(rng.Intn(2)), Reverse: rng.Intn(2) == 0},
			}
			if nest.Parallel && rng.Intn(5) == 0 {
				nest.Suppressed = true
			}
			ph.Nests = append(ph.Nests, nest)
		}
		prog.Phases = append(prog.Phases, ph)
	}
	return prog
}

// TestRandomProgramsInvariants fuzzes the whole pipeline: any valid
// random program, on any policy and CPU count, must simulate without
// error, book every cycle (clock == TotalCycles per CPU), and produce
// identical results when run twice (determinism).
func TestRandomProgramsInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(20260704))
	for trial := 0; trial < 40; trial++ {
		prog := randomProgram(rng)
		if err := prog.Validate(); err != nil {
			t.Fatalf("trial %d: random program invalid: %v", trial, err)
		}
		ncpu := []int{1, 2, 4, 8}[rng.Intn(4)]
		cfg := smallConfig(ncpu)
		if err := compilerLayout(prog, cfg); err != nil {
			t.Fatalf("trial %d: layout: %v", trial, err)
		}
		if rng.Intn(2) == 0 {
			compiler.InsertPrefetches(prog, compiler.DefaultPrefetch())
		}

		// Determinism requires identical options: fix SkipWarmup first.
		skip := rng.Intn(2) == 0
		mkRun := func() (*Result, *Machine) {
			m, err := New(Options{Config: cfg, Policy: vm.PageColoring{Colors: cfg.Colors()}, SkipWarmup: skip})
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			res, err := m.Run(prog)
			if err != nil {
				t.Fatalf("trial %d: run: %v", trial, err)
			}
			return res, m
		}
		r1, m1 := mkRun()
		r2, _ := mkRun()

		// Cycle accounting: every cycle booked exactly once.
		for _, c := range m1.cpus {
			if c.clock != c.stats.TotalCycles() {
				t.Fatalf("trial %d: cpu %d clock %d != booked %d", trial, c.id, c.clock, c.stats.TotalCycles())
			}
		}
		// Conservation invariants (cycles, misses, bus occupancy) must
		// hold for every random program on every policy.
		if vs := r1.Audit(); len(vs) != 0 {
			t.Fatalf("trial %d: audit violations: %v", trial, vs)
		}
		// Determinism.
		if r1.WallCycles != r2.WallCycles {
			t.Fatalf("trial %d: nondeterministic wall: %d vs %d", trial, r1.WallCycles, r2.WallCycles)
		}
		for i := range r1.PerCPU {
			if r1.PerCPU[i] != r2.PerCPU[i] {
				t.Fatalf("trial %d: cpu %d stats differ between identical runs", trial, i)
			}
		}
		// Conservation: instructions must be positive and identical
		// across policies for the same program (policies change timing,
		// never the instruction stream) — checked against a bin-hopping
		// run of the same program.
		mBH, err := New(Options{Config: cfg, Policy: &vm.BinHopping{Colors: cfg.Colors()}, SkipWarmup: skip})
		if err != nil {
			t.Fatal(err)
		}
		rBH, err := mBH.Run(prog)
		if err != nil {
			t.Fatalf("trial %d: binhop run: %v", trial, err)
		}
		i1 := r1.Total(func(s *CPUStats) uint64 { return s.Instructions })
		i2 := rBH.Total(func(s *CPUStats) uint64 { return s.Instructions })
		if i1 == 0 || i1 != i2 {
			t.Fatalf("trial %d: instruction counts differ across policies: %d vs %d", trial, i1, i2)
		}
		if vs := rBH.Audit(); len(vs) != 0 {
			t.Fatalf("trial %d: bin-hopping audit violations: %v", trial, vs)
		}
	}
}
