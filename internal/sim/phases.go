package sim

import "repro/internal/ir"

// PhaseSample records one phase occurrence's counts, used by the
// representative-execution-window validation (§3.2): the method is sound
// only if different occurrences of a phase behave alike.
type PhaseSample struct {
	Phase        string
	Instructions uint64
	L2Misses     uint64
	WallCycles   uint64
}

// SamplePhases executes the program's initialization and warm-up passes,
// then runs the steady-state phase sequence `repeats` times, recording
// each phase occurrence separately. This is the measurement behind the
// paper's claim that "in all but one case the standard deviation of both
// the number of instructions and the miss rate is less than 1% of the
// mean".
func (m *Machine) SamplePhases(prog *ir.Program, repeats int) ([][]PhaseSample, error) {
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	if m.opts.Hints != nil {
		m.as.Advise(m.opts.Hints)
	}
	if prog.Init != nil {
		for _, n := range prog.Init.Nests {
			if err := m.runNest(prog, n); err != nil {
				return nil, err
			}
		}
	}
	// One warm-up pass, as in Run.
	for _, ph := range prog.Phases {
		for _, n := range ph.Nests {
			if err := m.runNest(prog, n); err != nil {
				return nil, err
			}
		}
	}

	samples := make([][]PhaseSample, len(prog.Phases))
	for r := 0; r < repeats; r++ {
		for pi, ph := range prog.Phases {
			var instBefore, missBefore uint64
			for _, c := range m.cpus {
				instBefore += c.stats.Instructions
				missBefore += c.stats.L2Misses
			}
			wallBefore := m.wallClock()
			for _, n := range ph.Nests {
				if err := m.runNest(prog, n); err != nil {
					return nil, err
				}
			}
			var inst, miss uint64
			for _, c := range m.cpus {
				inst += c.stats.Instructions
				miss += c.stats.L2Misses
			}
			samples[pi] = append(samples[pi], PhaseSample{
				Phase:        ph.Name,
				Instructions: inst - instBefore,
				L2Misses:     miss - missBefore,
				WallCycles:   m.wallClock() - wallBefore,
			})
		}
	}
	return samples, nil
}
