// Package memory implements the physical frame allocator: free frames are
// kept in per-color pools so the virtual-memory subsystem can honor a
// policy's (or CDPC's) preferred color. Under memory pressure a request
// falls back to the richest other pool — the paper's "the operating
// system ... may not be able to honor the hints if the machine is under
// memory pressure" (§5, step 3).
package memory
