package memory

import (
	"testing"
	"testing/quick"
)

func TestPreferredColorHonored(t *testing.T) {
	a := New(64, 8)
	f, honored, err := a.Alloc(3)
	if err != nil || !honored {
		t.Fatalf("Alloc = (%d,%v,%v)", f, honored, err)
	}
	if a.ColorOf(f) != 3 {
		t.Errorf("color = %d, want 3", a.ColorOf(f))
	}
	if a.Honored != 1 || a.Fallback != 0 {
		t.Errorf("counters honored=%d fallback=%d", a.Honored, a.Fallback)
	}
}

func TestFallbackOnExhaustedColor(t *testing.T) {
	a := New(16, 8) // 2 frames per color
	a.Alloc(0)
	a.Alloc(0)
	f, honored, err := a.Alloc(0)
	if err != nil {
		t.Fatal(err)
	}
	if honored {
		t.Error("exhausted color reported honored")
	}
	if a.ColorOf(f) == 0 {
		t.Error("fallback returned a frame of the exhausted color")
	}
	if a.Fallback != 1 {
		t.Errorf("Fallback = %d, want 1", a.Fallback)
	}
}

func TestOutOfMemory(t *testing.T) {
	a := New(4, 2)
	for i := 0; i < 4; i++ {
		if _, _, err := a.Alloc(0); err != nil {
			t.Fatalf("alloc %d: %v", i, err)
		}
	}
	if _, _, err := a.Alloc(0); err != ErrOutOfMemory {
		t.Errorf("err = %v, want ErrOutOfMemory", err)
	}
}

func TestReleaseRecycles(t *testing.T) {
	a := New(8, 8) // one frame per color
	f, _, _ := a.Alloc(5)
	a.Release(f)
	f2, honored, err := a.Alloc(5)
	if err != nil || !honored || f2 != f {
		t.Errorf("recycled alloc = (%d,%v,%v), want (%d,true,nil)", f2, honored, err, f)
	}
}

func TestNegativeAndLargeColorWrap(t *testing.T) {
	a := New(64, 8)
	f, honored, _ := a.Alloc(11) // 11 % 8 = 3
	if !honored || a.ColorOf(f) != 3 {
		t.Errorf("wrapped color = %d honored=%v, want 3,true", a.ColorOf(f), honored)
	}
	f2, honored2, _ := a.Alloc(-1) // wraps to 7
	if !honored2 || a.ColorOf(f2) != 7 {
		t.Errorf("negative color = %d honored=%v, want 7,true", a.ColorOf(f2), honored2)
	}
}

func TestFramesAreUniqueProperty(t *testing.T) {
	f := func(prefs []uint8) bool {
		a := New(128, 16)
		seen := map[uint64]bool{}
		for _, p := range prefs {
			fr, _, err := a.Alloc(int(p))
			if err != nil {
				return a.FreeFrames() == 0
			}
			if seen[fr] {
				return false
			}
			seen[fr] = true
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestColorDistributionEven(t *testing.T) {
	a := New(64, 8)
	for c := 0; c < 8; c++ {
		if got := a.FreeOfColor(c); got != 8 {
			t.Errorf("color %d has %d free frames, want 8", c, got)
		}
	}
}

func TestFreeFramesAccounting(t *testing.T) {
	a := New(32, 4)
	if a.FreeFrames() != 32 {
		t.Fatalf("FreeFrames = %d, want 32", a.FreeFrames())
	}
	f, _, _ := a.Alloc(1)
	if a.FreeFrames() != 31 {
		t.Errorf("FreeFrames after alloc = %d, want 31", a.FreeFrames())
	}
	a.Release(f)
	if a.FreeFrames() != 32 {
		t.Errorf("FreeFrames after release = %d, want 32", a.FreeFrames())
	}
}

// Satellite: per-process ownership conservation. For every process,
// alloc - free == owned must hold at all times, including across
// recolor-style churn (alloc new + release old) and full process exit.
func TestOwnershipConservation(t *testing.T) {
	a := New(128, 8)
	conserve := func(pid int) {
		t.Helper()
		owned := uint64(len(a.OwnedFrames(pid)))
		if a.AllocCount(pid)-a.FreeCount(pid) != owned {
			t.Fatalf("pid %d: allocs %d - frees %d != owned %d",
				pid, a.AllocCount(pid), a.FreeCount(pid), owned)
		}
	}
	var held [][]uint64 // per pid
	for pid := 1; pid <= 3; pid++ {
		var frames []uint64
		for i := 0; i < 10+pid; i++ {
			f, _, err := a.AllocFor(pid, i)
			if err != nil {
				t.Fatal(err)
			}
			frames = append(frames, f)
		}
		held = append(held, frames)
		conserve(pid)
	}
	// Recolor churn on pid 2: replace each frame with a fresh one.
	for i, f := range held[1] {
		nf, _, err := a.AllocFor(2, int(f)+1)
		if err != nil {
			t.Fatal(err)
		}
		a.Release(f)
		held[1][i] = nf
		conserve(2)
	}
	// Cross-process isolation: releasing pid 2's frames must not move
	// pid 1's or pid 3's accounting.
	before1, before3 := len(a.OwnedFrames(1)), len(a.OwnedFrames(3))
	if n := a.ReleaseOwned(2); n != len(held[1]) {
		t.Fatalf("ReleaseOwned(2) = %d, want %d", n, len(held[1]))
	}
	conserve(1)
	conserve(2)
	conserve(3)
	if len(a.OwnedFrames(2)) != 0 {
		t.Errorf("pid 2 still owns %v after exit", a.OwnedFrames(2))
	}
	if len(a.OwnedFrames(1)) != before1 || len(a.OwnedFrames(3)) != before3 {
		t.Error("ReleaseOwned(2) disturbed another process's frames")
	}
	total := 0
	for pid := 0; pid <= 3; pid++ {
		total += len(a.OwnedFrames(pid))
	}
	if a.FreeFrames()+total != 128 {
		t.Errorf("pool leak: free %d + owned %d != 128", a.FreeFrames(), total)
	}
}

func TestOwnedFramesSortedAscending(t *testing.T) {
	a := New(64, 8)
	for i := 0; i < 9; i++ {
		if _, _, err := a.AllocFor(7, 8-i); err != nil {
			t.Fatal(err)
		}
	}
	frames := a.OwnedFrames(7)
	for i := 1; i < len(frames); i++ {
		if frames[i-1] >= frames[i] {
			t.Fatalf("OwnedFrames not strictly ascending: %v", frames)
		}
	}
}

// Satellite: allocator-pressure property. Fallback allocation must pick
// the richest pool with ties broken toward the lowest color, and
// honored + fallback must always equal total allocations.
func TestFallbackDeterministicProperty(t *testing.T) {
	f := func(prefs []uint8) bool {
		a := New(96, 8)
		var total uint64
		for _, p := range prefs {
			want := ((int(p) % 8) + 8) % 8
			// Predict the fallback pool before allocating: richest,
			// lowest color on ties.
			expect, expectLen := -1, 0
			for c, n := range a.FreeByColor() {
				if n > expectLen {
					expect, expectLen = c, n
				}
			}
			fr, honored, err := a.Alloc(int(p))
			if err != nil {
				return a.FreeFrames() == 0 && a.Honored+a.Fallback == total
			}
			total++
			if honored {
				if a.ColorOf(fr) != want {
					return false
				}
			} else if a.ColorOf(fr) != expect {
				return false
			}
			if a.Honored+a.Fallback != total {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 300}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Two identical allocation sequences must produce identical frame
// sequences — the allocator itself is part of the determinism contract.
func TestFallbackReplayIdentical(t *testing.T) {
	run := func() []uint64 {
		a := New(64, 8)
		var got []uint64
		for i := 0; i < 64; i++ {
			fr, _, err := a.Alloc(i % 3) // starves colors 3..7 into fallback
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, fr)
		}
		return got
	}
	x, y := run(), run()
	for i := range x {
		if x[i] != y[i] {
			t.Fatalf("replay diverged at %d: %d vs %d", i, x[i], y[i])
		}
	}
}

func TestFirstTouchColorTracksLowestFrame(t *testing.T) {
	a := New(32, 4)
	// Lowest free frame is 0 -> color 0; allocate it and the next
	// lowest (1 -> color 1) becomes the first-touch frame.
	for want := 0; want < 8; want++ {
		if got := a.FirstTouchColor(); got != want%4 {
			t.Fatalf("FirstTouchColor = %d, want %d", got, want%4)
		}
		fr, honored, err := a.Alloc(a.FirstTouchColor())
		if err != nil || !honored {
			t.Fatal(err)
		}
		if fr != uint64(want) {
			t.Fatalf("first-touch alloc got frame %d, want %d", fr, want)
		}
	}
}
