package memory

import (
	"testing"
	"testing/quick"
)

func TestPreferredColorHonored(t *testing.T) {
	a := New(64, 8)
	f, honored, err := a.Alloc(3)
	if err != nil || !honored {
		t.Fatalf("Alloc = (%d,%v,%v)", f, honored, err)
	}
	if a.ColorOf(f) != 3 {
		t.Errorf("color = %d, want 3", a.ColorOf(f))
	}
	if a.Honored != 1 || a.Fallback != 0 {
		t.Errorf("counters honored=%d fallback=%d", a.Honored, a.Fallback)
	}
}

func TestFallbackOnExhaustedColor(t *testing.T) {
	a := New(16, 8) // 2 frames per color
	a.Alloc(0)
	a.Alloc(0)
	f, honored, err := a.Alloc(0)
	if err != nil {
		t.Fatal(err)
	}
	if honored {
		t.Error("exhausted color reported honored")
	}
	if a.ColorOf(f) == 0 {
		t.Error("fallback returned a frame of the exhausted color")
	}
	if a.Fallback != 1 {
		t.Errorf("Fallback = %d, want 1", a.Fallback)
	}
}

func TestOutOfMemory(t *testing.T) {
	a := New(4, 2)
	for i := 0; i < 4; i++ {
		if _, _, err := a.Alloc(0); err != nil {
			t.Fatalf("alloc %d: %v", i, err)
		}
	}
	if _, _, err := a.Alloc(0); err != ErrOutOfMemory {
		t.Errorf("err = %v, want ErrOutOfMemory", err)
	}
}

func TestReleaseRecycles(t *testing.T) {
	a := New(8, 8) // one frame per color
	f, _, _ := a.Alloc(5)
	a.Release(f)
	f2, honored, err := a.Alloc(5)
	if err != nil || !honored || f2 != f {
		t.Errorf("recycled alloc = (%d,%v,%v), want (%d,true,nil)", f2, honored, err, f)
	}
}

func TestNegativeAndLargeColorWrap(t *testing.T) {
	a := New(64, 8)
	f, honored, _ := a.Alloc(11) // 11 % 8 = 3
	if !honored || a.ColorOf(f) != 3 {
		t.Errorf("wrapped color = %d honored=%v, want 3,true", a.ColorOf(f), honored)
	}
	f2, honored2, _ := a.Alloc(-1) // wraps to 7
	if !honored2 || a.ColorOf(f2) != 7 {
		t.Errorf("negative color = %d honored=%v, want 7,true", a.ColorOf(f2), honored2)
	}
}

func TestFramesAreUniqueProperty(t *testing.T) {
	f := func(prefs []uint8) bool {
		a := New(128, 16)
		seen := map[uint64]bool{}
		for _, p := range prefs {
			fr, _, err := a.Alloc(int(p))
			if err != nil {
				return a.FreeFrames() == 0
			}
			if seen[fr] {
				return false
			}
			seen[fr] = true
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestColorDistributionEven(t *testing.T) {
	a := New(64, 8)
	for c := 0; c < 8; c++ {
		if got := a.FreeOfColor(c); got != 8 {
			t.Errorf("color %d has %d free frames, want 8", c, got)
		}
	}
}

func TestFreeFramesAccounting(t *testing.T) {
	a := New(32, 4)
	if a.FreeFrames() != 32 {
		t.Fatalf("FreeFrames = %d, want 32", a.FreeFrames())
	}
	f, _, _ := a.Alloc(1)
	if a.FreeFrames() != 31 {
		t.Errorf("FreeFrames after alloc = %d, want 31", a.FreeFrames())
	}
	a.Release(f)
	if a.FreeFrames() != 32 {
		t.Errorf("FreeFrames after release = %d, want 32", a.FreeFrames())
	}
}
