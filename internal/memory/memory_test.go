package memory

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestPreferredColorHonored(t *testing.T) {
	a := New(64, 8)
	f, honored, err := a.Alloc(3)
	if err != nil || !honored {
		t.Fatalf("Alloc = (%d,%v,%v)", f, honored, err)
	}
	if a.ColorOf(f) != 3 {
		t.Errorf("color = %d, want 3", a.ColorOf(f))
	}
	if a.Honored != 1 || a.Fallback != 0 {
		t.Errorf("counters honored=%d fallback=%d", a.Honored, a.Fallback)
	}
}

func TestFallbackOnExhaustedColor(t *testing.T) {
	a := New(16, 8) // 2 frames per color
	a.Alloc(0)
	a.Alloc(0)
	f, honored, err := a.Alloc(0)
	if err != nil {
		t.Fatal(err)
	}
	if honored {
		t.Error("exhausted color reported honored")
	}
	if a.ColorOf(f) == 0 {
		t.Error("fallback returned a frame of the exhausted color")
	}
	if a.Fallback != 1 {
		t.Errorf("Fallback = %d, want 1", a.Fallback)
	}
}

func TestOutOfMemory(t *testing.T) {
	a := New(4, 2)
	for i := 0; i < 4; i++ {
		if _, _, err := a.Alloc(0); err != nil {
			t.Fatalf("alloc %d: %v", i, err)
		}
	}
	if _, _, err := a.Alloc(0); err != ErrOutOfMemory {
		t.Errorf("err = %v, want ErrOutOfMemory", err)
	}
}

func TestReleaseRecycles(t *testing.T) {
	a := New(8, 8) // one frame per color
	f, _, _ := a.Alloc(5)
	a.Release(f)
	f2, honored, err := a.Alloc(5)
	if err != nil || !honored || f2 != f {
		t.Errorf("recycled alloc = (%d,%v,%v), want (%d,true,nil)", f2, honored, err, f)
	}
}

func TestNegativeAndLargeColorWrap(t *testing.T) {
	a := New(64, 8)
	f, honored, _ := a.Alloc(11) // 11 % 8 = 3
	if !honored || a.ColorOf(f) != 3 {
		t.Errorf("wrapped color = %d honored=%v, want 3,true", a.ColorOf(f), honored)
	}
	f2, honored2, _ := a.Alloc(-1) // wraps to 7
	if !honored2 || a.ColorOf(f2) != 7 {
		t.Errorf("negative color = %d honored=%v, want 7,true", a.ColorOf(f2), honored2)
	}
}

func TestFramesAreUniqueProperty(t *testing.T) {
	f := func(prefs []uint8) bool {
		a := New(128, 16)
		seen := map[uint64]bool{}
		for _, p := range prefs {
			fr, _, err := a.Alloc(int(p))
			if err != nil {
				return a.FreeFrames() == 0
			}
			if seen[fr] {
				return false
			}
			seen[fr] = true
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestColorDistributionEven(t *testing.T) {
	a := New(64, 8)
	for c := 0; c < 8; c++ {
		if got := a.FreeOfColor(c); got != 8 {
			t.Errorf("color %d has %d free frames, want 8", c, got)
		}
	}
}

func TestFreeFramesAccounting(t *testing.T) {
	a := New(32, 4)
	if a.FreeFrames() != 32 {
		t.Fatalf("FreeFrames = %d, want 32", a.FreeFrames())
	}
	f, _, _ := a.Alloc(1)
	if a.FreeFrames() != 31 {
		t.Errorf("FreeFrames after alloc = %d, want 31", a.FreeFrames())
	}
	a.Release(f)
	if a.FreeFrames() != 32 {
		t.Errorf("FreeFrames after release = %d, want 32", a.FreeFrames())
	}
}

// Satellite: per-process ownership conservation. For every process,
// alloc - free == owned must hold at all times, including across
// recolor-style churn (alloc new + release old) and full process exit.
func TestOwnershipConservation(t *testing.T) {
	a := New(128, 8)
	conserve := func(pid int) {
		t.Helper()
		owned := uint64(len(a.OwnedFrames(pid)))
		if a.AllocCount(pid)-a.FreeCount(pid) != owned {
			t.Fatalf("pid %d: allocs %d - frees %d != owned %d",
				pid, a.AllocCount(pid), a.FreeCount(pid), owned)
		}
	}
	var held [][]uint64 // per pid
	for pid := 1; pid <= 3; pid++ {
		var frames []uint64
		for i := 0; i < 10+pid; i++ {
			f, _, err := a.AllocFor(pid, i)
			if err != nil {
				t.Fatal(err)
			}
			frames = append(frames, f)
		}
		held = append(held, frames)
		conserve(pid)
	}
	// Recolor churn on pid 2: replace each frame with a fresh one.
	for i, f := range held[1] {
		nf, _, err := a.AllocFor(2, int(f)+1)
		if err != nil {
			t.Fatal(err)
		}
		a.Release(f)
		held[1][i] = nf
		conserve(2)
	}
	// Cross-process isolation: releasing pid 2's frames must not move
	// pid 1's or pid 3's accounting.
	before1, before3 := len(a.OwnedFrames(1)), len(a.OwnedFrames(3))
	if n := a.ReleaseOwned(2); n != len(held[1]) {
		t.Fatalf("ReleaseOwned(2) = %d, want %d", n, len(held[1]))
	}
	conserve(1)
	conserve(2)
	conserve(3)
	if len(a.OwnedFrames(2)) != 0 {
		t.Errorf("pid 2 still owns %v after exit", a.OwnedFrames(2))
	}
	if len(a.OwnedFrames(1)) != before1 || len(a.OwnedFrames(3)) != before3 {
		t.Error("ReleaseOwned(2) disturbed another process's frames")
	}
	total := 0
	for pid := 0; pid <= 3; pid++ {
		total += len(a.OwnedFrames(pid))
	}
	if a.FreeFrames()+total != 128 {
		t.Errorf("pool leak: free %d + owned %d != 128", a.FreeFrames(), total)
	}
}

func TestOwnedFramesSortedAscending(t *testing.T) {
	a := New(64, 8)
	for i := 0; i < 9; i++ {
		if _, _, err := a.AllocFor(7, 8-i); err != nil {
			t.Fatal(err)
		}
	}
	frames := a.OwnedFrames(7)
	for i := 1; i < len(frames); i++ {
		if frames[i-1] >= frames[i] {
			t.Fatalf("OwnedFrames not strictly ascending: %v", frames)
		}
	}
}

// Satellite: allocator-pressure property. Fallback allocation must pick
// the richest pool with ties broken toward the lowest color, and
// honored + fallback must always equal total allocations.
func TestFallbackDeterministicProperty(t *testing.T) {
	f := func(prefs []uint8) bool {
		a := New(96, 8)
		var total uint64
		for _, p := range prefs {
			want := ((int(p) % 8) + 8) % 8
			// Predict the fallback pool before allocating: richest,
			// lowest color on ties.
			expect, expectLen := -1, 0
			for c, n := range a.FreeByColor() {
				if n > expectLen {
					expect, expectLen = c, n
				}
			}
			fr, honored, err := a.Alloc(int(p))
			if err != nil {
				return a.FreeFrames() == 0 && a.Honored+a.Fallback == total
			}
			total++
			if honored {
				if a.ColorOf(fr) != want {
					return false
				}
			} else if a.ColorOf(fr) != expect {
				return false
			}
			if a.Honored+a.Fallback != total {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 300}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Two identical allocation sequences must produce identical frame
// sequences — the allocator itself is part of the determinism contract.
func TestFallbackReplayIdentical(t *testing.T) {
	run := func() []uint64 {
		a := New(64, 8)
		var got []uint64
		for i := 0; i < 64; i++ {
			fr, _, err := a.Alloc(i % 3) // starves colors 3..7 into fallback
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, fr)
		}
		return got
	}
	x, y := run(), run()
	for i := range x {
		if x[i] != y[i] {
			t.Fatalf("replay diverged at %d: %d vs %d", i, x[i], y[i])
		}
	}
}

func TestFirstTouchColorTracksLowestFrame(t *testing.T) {
	a := New(32, 4)
	// Lowest free frame is 0 -> color 0; allocate it and the next
	// lowest (1 -> color 1) becomes the first-touch frame.
	for want := 0; want < 8; want++ {
		if got := a.FirstTouchColor(); got != want%4 {
			t.Fatalf("FirstTouchColor = %d, want %d", got, want%4)
		}
		fr, honored, err := a.Alloc(a.FirstTouchColor())
		if err != nil || !honored {
			t.Fatal(err)
		}
		if fr != uint64(want) {
			t.Fatalf("first-touch alloc got frame %d, want %d", fr, want)
		}
	}
}

// Satellite regression: a plain Release(frame) must clear the per-pid
// ownership record, not just refill the pool — a stale OwnedFrames
// entry would double-release on process exit.
func TestReleaseClearsOwnership(t *testing.T) {
	a := New(16, 4)
	f, _, err := a.AllocFor(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if pid, ok := a.OwnerOf(f); !ok || pid != 3 {
		t.Fatalf("OwnerOf(%d) = (%d,%v), want (3,true)", f, pid, ok)
	}
	a.Release(f)
	if pid, ok := a.OwnerOf(f); ok {
		t.Errorf("frame %d still owned by %d after Release", f, pid)
	}
	if got := a.OwnedFrames(3); len(got) != 0 {
		t.Errorf("OwnedFrames(3) = %v after Release, want empty", got)
	}
	if a.FreeCount(3) != 1 {
		t.Errorf("FreeCount(3) = %d, want 1", a.FreeCount(3))
	}
	if n := a.ReleaseOwned(3); n != 0 {
		t.Errorf("ReleaseOwned(3) released %d stale frames", n)
	}
	if a.FreeFrames() != 16 {
		t.Errorf("FreeFrames = %d, want 16 (double release?)", a.FreeFrames())
	}
}

// Satellite property: NormColor is the one sanctioned normalization and
// AllocFor, ColorOf and FreeOfColor must agree with it for any color,
// negatives included.
func TestNormColorConsistencyProperty(t *testing.T) {
	f := func(c int16) bool {
		const n = 8
		want := ((int(c) % n) + n) % n
		if NormColor(int(c), n) != want {
			return false
		}
		a := New(64, n)
		before := a.FreeOfColor(int(c))
		fr, honored, err := a.Alloc(int(c))
		if err != nil || !honored {
			return false
		}
		// The three color views agree: the frame's color, the pool that
		// shrank, and the normalized preference are the same color.
		return a.ColorOf(fr) == want && a.FreeOfColor(int(c)) == before-1
	}
	cfg := &quick.Config{MaxCount: 500}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestAssignDomainsDeterministicBlocks(t *testing.T) {
	a := New(128, 8)
	// Three domains over 8 colors: blocks 3/3/2, lower domains get the
	// extra color, contiguous and ascending.
	if err := a.AssignDomains(map[int]int{1: 1, 2: 2, 3: 3, 4: 1}); err != nil {
		t.Fatal(err)
	}
	if !a.Partitioned() {
		t.Fatal("allocator not partitioned after AssignDomains")
	}
	want := map[int][]int{1: {0, 1, 2}, 2: {3, 4, 5}, 3: {6, 7}}
	for pid, dom := range map[int]int{1: 1, 4: 1, 2: 2, 3: 3} {
		if a.DomainOf(pid) != dom {
			t.Errorf("DomainOf(%d) = %d, want %d", pid, a.DomainOf(pid), dom)
		}
		got := a.PartitionOf(pid)
		w := want[dom]
		if len(got) != len(w) {
			t.Fatalf("PartitionOf(%d) = %v, want %v", pid, got, w)
		}
		for i := range w {
			if got[i] != w[i] {
				t.Fatalf("PartitionOf(%d) = %v, want %v", pid, got, w)
			}
		}
	}
	for c := 0; c < 8; c++ {
		wantDom := 1
		switch {
		case c >= 6:
			wantDom = 3
		case c >= 3:
			wantDom = 2
		}
		if a.ColorDomain(c) != wantDom {
			t.Errorf("ColorDomain(%d) = %d, want %d", c, a.ColorDomain(c), wantDom)
		}
	}
	if err := a.AssignDomains(map[int]int{1: 1}); err == nil {
		t.Error("second AssignDomains succeeded")
	}
}

func TestAssignDomainsTooManyDomains(t *testing.T) {
	a := New(16, 2)
	err := a.AssignDomains(map[int]int{1: 1, 2: 2, 3: 3})
	if err == nil {
		t.Fatal("3 domains over 2 colors accepted")
	}
}

// In partitioned mode every allocation — preferred, folded hint, or
// pressure fallback — must land inside the owner's color subset.
func TestPartitionClampNeverEscapes(t *testing.T) {
	a := New(128, 8)
	if err := a.AssignDomains(map[int]int{1: 1, 2: 2}); err != nil {
		t.Fatal(err)
	}
	inPartition := func(pid int, c int) bool {
		for _, pc := range a.PartitionOf(pid) {
			if pc == c {
				return true
			}
		}
		return false
	}
	// Global-space preferences (the PR 5 pathology: both processes ask
	// for the same colors) fold into disjoint subsets.
	for i := 0; i < 32; i++ {
		for pid := 1; pid <= 2; pid++ {
			f, _, err := a.AllocFor(pid, i) // also drives fallback once pools dry up
			if err != nil {
				t.Fatalf("pid %d pref %d: %v", pid, i, err)
			}
			if !inPartition(pid, a.ColorOf(f)) {
				t.Fatalf("pid %d got color %d outside partition %v", pid, a.ColorOf(f), a.PartitionOf(pid))
			}
		}
	}
	// Identical preferences from the two pids now map to different
	// colors — the collision fix in one assertion.
	f1, _, _ := a.AllocFor(1, 0)
	f2, _, _ := a.AllocFor(2, 0)
	if a.ColorOf(f1) == a.ColorOf(f2) {
		t.Errorf("same preference, same color (%d) across domains", a.ColorOf(f1))
	}
}

// Satellite: a domain whose subset runs dry gets the typed partition
// error (ErrOutOfMemory family) and never borrows a foreign frame, even
// while the other partition still has plenty.
func TestPartitionExhaustionTyped(t *testing.T) {
	a := New(16, 4) // 4 frames per color; domain 1 gets colors {0,1} = 8 frames
	if err := a.AssignDomains(map[int]int{1: 1, 2: 2}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if _, _, err := a.AllocFor(1, i); err != nil {
			t.Fatalf("alloc %d: %v", i, err)
		}
	}
	_, _, err := a.AllocFor(1, 0)
	if err == nil {
		t.Fatal("9th allocation in an 8-frame partition succeeded")
	}
	var pe *PartitionExhaustedError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %T %v, want *PartitionExhaustedError", err, err)
	}
	if pe.Pid != 1 || pe.Domain != 1 {
		t.Errorf("error pid/domain = %d/%d, want 1/1", pe.Pid, pe.Domain)
	}
	if !errors.Is(err, ErrOutOfMemory) {
		t.Error("PartitionExhaustedError does not unwrap to ErrOutOfMemory")
	}
	// Domain 2's frames are untouched: it can still allocate all 8.
	for i := 0; i < 8; i++ {
		if _, _, err := a.AllocFor(2, i); err != nil {
			t.Fatalf("domain 2 alloc %d: %v", i, err)
		}
	}
}

// FirstTouchColorFor must predict a color the pid's own allocation can
// honor: partition-local in partitioned mode, identical to
// FirstTouchColor otherwise.
func TestFirstTouchColorForPartitionLocal(t *testing.T) {
	a := New(32, 4)
	if got, want := a.FirstTouchColorFor(9), a.FirstTouchColor(); got != want {
		t.Fatalf("unpartitioned FirstTouchColorFor = %d, want %d", got, want)
	}
	if err := a.AssignDomains(map[int]int{1: 1, 2: 2}); err != nil {
		t.Fatal(err)
	}
	// Domain 2 owns colors {2,3}; its lowest free frame is frame 2.
	if got := a.FirstTouchColorFor(2); got != 2 {
		t.Errorf("domain 2 first-touch color = %d, want 2", got)
	}
	// Allocating domain 2's predicted color must honor it every time.
	for i := 0; i < 16; i++ {
		c := a.FirstTouchColorFor(2)
		f, honored, err := a.AllocFor(2, c)
		if err != nil {
			t.Fatal(err)
		}
		if !honored || a.ColorOf(f) != c {
			t.Fatalf("first-touch alloc %d: color %d honored=%v, want %d", i, a.ColorOf(f), honored, c)
		}
	}
}

func TestNewWithColorOf(t *testing.T) {
	// A toy hash: swap the low two color bits.
	hash := func(f uint64) int { return int((f&1)<<1|(f>>1)&1) | int(f&^3)%4 }
	colorOf := func(f uint64) int { return hash(f) % 4 }
	a := NewWithColorOf(64, 4, colorOf)
	for c := 0; c < 4; c++ {
		if got := a.FreeOfColor(c); got != 16 {
			t.Fatalf("color %d: %d free frames, want 16", c, got)
		}
	}
	f, honored, err := a.Alloc(2)
	if err != nil || !honored {
		t.Fatalf("Alloc(2) = %v honored=%v", err, honored)
	}
	if got := a.ColorOf(f); got != 2 {
		t.Fatalf("allocated frame %d has color %d, want 2", f, got)
	}
	// Release must return the frame to the hash-selected pool.
	before := a.FreeOfColor(2)
	a.Release(f)
	if got := a.FreeOfColor(2); got != before+1 {
		t.Fatalf("release went to the wrong pool: color 2 has %d free, want %d", got, before+1)
	}
}
