package memory

import (
	"errors"
	"fmt"
	"sort"
)

// ErrOutOfMemory is returned when no free frame exists in any pool.
var ErrOutOfMemory = errors.New("memory: out of physical frames")

// Allocator hands out physical frames grouped by page color. Frames are
// owned by the process they were allocated for, so process exit can
// return exactly its frames and an audit can prove no pool counts leak.
type Allocator struct {
	numColors int
	free      [][]uint64 // per color, LIFO of frame numbers
	totalFree int

	owner  map[uint64]int // allocated frame -> owning process id
	allocs map[int]uint64 // pid -> frames granted
	frees  map[int]uint64 // pid -> frames returned

	// Honored counts allocations that got the preferred color; Fallback
	// counts those that did not (pressure or exhausted pool).
	Honored  uint64
	Fallback uint64
}

// New creates an allocator over totalFrames frames spread round-robin
// across numColors colors (frame f has color f % numColors, the natural
// layout of contiguous physical memory under a physically indexed cache).
func New(totalFrames, numColors int) *Allocator {
	if totalFrames <= 0 || numColors <= 0 {
		panic(fmt.Sprintf("memory: bad sizes frames=%d colors=%d", totalFrames, numColors))
	}
	a := &Allocator{
		numColors: numColors,
		free:      make([][]uint64, numColors),
		totalFree: totalFrames,
		owner:     map[uint64]int{},
		allocs:    map[int]uint64{},
		frees:     map[int]uint64{},
	}
	per := totalFrames/numColors + 1
	for c := range a.free {
		a.free[c] = make([]uint64, 0, per)
	}
	// Push in descending order so pops return ascending frame numbers.
	for f := totalFrames - 1; f >= 0; f-- {
		c := f % numColors
		a.free[c] = append(a.free[c], uint64(f))
	}
	return a
}

// NumColors returns the color count the allocator was built with.
func (a *Allocator) NumColors() int { return a.numColors }

// FreeFrames returns the total number of free frames.
func (a *Allocator) FreeFrames() int { return a.totalFree }

// FreeOfColor returns the number of free frames of color c.
func (a *Allocator) FreeOfColor(c int) int { return len(a.free[c%a.numColors]) }

// FreeByColor returns the free-frame count of every color pool.
func (a *Allocator) FreeByColor() []int {
	out := make([]int, a.numColors)
	for c := range a.free {
		out[c] = len(a.free[c])
	}
	return out
}

// ColorOf returns the color of a frame number.
func (a *Allocator) ColorOf(frame uint64) int { return int(frame % uint64(a.numColors)) }

// Alloc returns a free frame, preferring the given color. honored reports
// whether the preference was satisfied. The frame is owned by process 0
// (the single-process legacy owner).
func (a *Allocator) Alloc(preferredColor int) (frame uint64, honored bool, err error) {
	return a.AllocFor(0, preferredColor)
}

// AllocFor returns a free frame for the given process, preferring the
// given color. honored reports whether the preference was satisfied.
func (a *Allocator) AllocFor(pid, preferredColor int) (frame uint64, honored bool, err error) {
	if a.totalFree == 0 {
		return 0, false, ErrOutOfMemory
	}
	c := ((preferredColor % a.numColors) + a.numColors) % a.numColors
	if pool := a.free[c]; len(pool) > 0 {
		frame = pool[len(pool)-1]
		a.free[c] = pool[:len(pool)-1]
		a.totalFree--
		a.Honored++
		a.owner[frame] = pid
		a.allocs[pid]++
		return frame, true, nil
	}
	// Pressure fallback: take from the richest pool to keep future
	// preferences satisfiable. The scan keeps the first maximum, so ties
	// break toward the lowest color deterministically.
	best, bestLen := -1, 0
	for i, pool := range a.free {
		if len(pool) > bestLen {
			best, bestLen = i, len(pool)
		}
	}
	pool := a.free[best]
	frame = pool[len(pool)-1]
	a.free[best] = pool[:len(pool)-1]
	a.totalFree--
	a.Fallback++
	a.owner[frame] = pid
	a.allocs[pid]++
	return frame, false, nil
}

// Release returns a frame to its color pool and clears its ownership.
func (a *Allocator) Release(frame uint64) {
	if pid, ok := a.owner[frame]; ok {
		delete(a.owner, frame)
		a.frees[pid]++
	}
	c := a.ColorOf(frame)
	a.free[c] = append(a.free[c], frame)
	a.totalFree++
}

// OwnedFrames returns the frames currently owned by pid, ascending.
func (a *Allocator) OwnedFrames(pid int) []uint64 {
	var out []uint64
	for f, p := range a.owner {
		if p == pid {
			out = append(out, f)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// AllocCount returns the number of frames ever granted to pid.
func (a *Allocator) AllocCount(pid int) uint64 { return a.allocs[pid] }

// FreeCount returns the number of pid-owned frames returned so far.
func (a *Allocator) FreeCount(pid int) uint64 { return a.frees[pid] }

// ReleaseOwned returns every frame owned by pid to the pools and reports
// how many were released. Frames are pushed in descending order so later
// pops hand them back ascending, keeping reuse deterministic.
func (a *Allocator) ReleaseOwned(pid int) int {
	frames := a.OwnedFrames(pid)
	for i := len(frames) - 1; i >= 0; i-- {
		a.Release(frames[i])
	}
	return len(frames)
}

// FirstTouchColor returns the color of the frame a sequential free-list
// allocator would hand out next: the lowest-numbered free frame across
// all pools. With no free frames it returns 0 (the following allocation
// fails anyway).
func (a *Allocator) FirstTouchColor() int {
	var bestFrame uint64
	found := false
	for _, pool := range a.free {
		if len(pool) == 0 {
			continue
		}
		if top := pool[len(pool)-1]; !found || top < bestFrame {
			bestFrame, found = top, true
		}
	}
	if !found {
		return 0
	}
	return a.ColorOf(bestFrame)
}
