package memory

import (
	"errors"
	"fmt"
)

// ErrOutOfMemory is returned when no free frame exists in any pool.
var ErrOutOfMemory = errors.New("memory: out of physical frames")

// Allocator hands out physical frames grouped by page color.
type Allocator struct {
	numColors int
	free      [][]uint64 // per color, LIFO of frame numbers
	totalFree int

	// Honored counts allocations that got the preferred color; Fallback
	// counts those that did not (pressure or exhausted pool).
	Honored  uint64
	Fallback uint64
}

// New creates an allocator over totalFrames frames spread round-robin
// across numColors colors (frame f has color f % numColors, the natural
// layout of contiguous physical memory under a physically indexed cache).
func New(totalFrames, numColors int) *Allocator {
	if totalFrames <= 0 || numColors <= 0 {
		panic(fmt.Sprintf("memory: bad sizes frames=%d colors=%d", totalFrames, numColors))
	}
	a := &Allocator{
		numColors: numColors,
		free:      make([][]uint64, numColors),
		totalFree: totalFrames,
	}
	per := totalFrames/numColors + 1
	for c := range a.free {
		a.free[c] = make([]uint64, 0, per)
	}
	// Push in descending order so pops return ascending frame numbers.
	for f := totalFrames - 1; f >= 0; f-- {
		c := f % numColors
		a.free[c] = append(a.free[c], uint64(f))
	}
	return a
}

// NumColors returns the color count the allocator was built with.
func (a *Allocator) NumColors() int { return a.numColors }

// FreeFrames returns the total number of free frames.
func (a *Allocator) FreeFrames() int { return a.totalFree }

// FreeOfColor returns the number of free frames of color c.
func (a *Allocator) FreeOfColor(c int) int { return len(a.free[c%a.numColors]) }

// FreeByColor returns the free-frame count of every color pool.
func (a *Allocator) FreeByColor() []int {
	out := make([]int, a.numColors)
	for c := range a.free {
		out[c] = len(a.free[c])
	}
	return out
}

// ColorOf returns the color of a frame number.
func (a *Allocator) ColorOf(frame uint64) int { return int(frame % uint64(a.numColors)) }

// Alloc returns a free frame, preferring the given color. honored reports
// whether the preference was satisfied.
func (a *Allocator) Alloc(preferredColor int) (frame uint64, honored bool, err error) {
	if a.totalFree == 0 {
		return 0, false, ErrOutOfMemory
	}
	c := ((preferredColor % a.numColors) + a.numColors) % a.numColors
	if pool := a.free[c]; len(pool) > 0 {
		frame = pool[len(pool)-1]
		a.free[c] = pool[:len(pool)-1]
		a.totalFree--
		a.Honored++
		return frame, true, nil
	}
	// Pressure fallback: take from the richest pool to keep future
	// preferences satisfiable.
	best, bestLen := -1, 0
	for i, pool := range a.free {
		if len(pool) > bestLen {
			best, bestLen = i, len(pool)
		}
	}
	pool := a.free[best]
	frame = pool[len(pool)-1]
	a.free[best] = pool[:len(pool)-1]
	a.totalFree--
	a.Fallback++
	return frame, false, nil
}

// Release returns a frame to its color pool.
func (a *Allocator) Release(frame uint64) {
	c := a.ColorOf(frame)
	a.free[c] = append(a.free[c], frame)
	a.totalFree++
}
