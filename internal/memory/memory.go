package memory

import (
	"errors"
	"fmt"
	"sort"
)

// ErrOutOfMemory is returned when no free frame exists in any pool.
var ErrOutOfMemory = errors.New("memory: out of physical frames")

// PartitionExhaustedError reports that a process's isolation domain ran
// out of frames inside its exclusive color subset. A partitioned
// allocator never borrows a foreign-partition frame, so the failure is
// scoped to the domain even when other pools still hold frames. It
// unwraps to ErrOutOfMemory so existing errors.Is checks (and cdpcd's
// 422 mapping) treat it as the out-of-memory family.
type PartitionExhaustedError struct {
	Pid    int   // process whose allocation failed
	Domain int   // its isolation domain
	Colors []int // the exhausted color subset
}

func (e *PartitionExhaustedError) Error() string {
	return fmt.Sprintf("memory: isolation domain %d (pid %d) exhausted its color partition %v",
		e.Domain, e.Pid, e.Colors)
}

// Unwrap makes errors.Is(err, ErrOutOfMemory) hold.
func (e *PartitionExhaustedError) Unwrap() error { return ErrOutOfMemory }

// NormColor is the sanctioned color normalization: it maps any int,
// including negatives, onto [0, n). Every color-indexed path in the
// allocator (and the VM layer's occupancy accounting) must go through
// it so that a negative preferred color means the same pool everywhere.
func NormColor(c, n int) int { return ((c % n) + n) % n }

// Allocator hands out physical frames grouped by page color. Frames are
// owned by the process they were allocated for, so process exit can
// return exactly its frames and an audit can prove no pool counts leak.
type Allocator struct {
	numColors int
	free      [][]uint64 // per color, LIFO of frame numbers
	totalFree int

	owner  map[uint64]int // allocated frame -> owning process id
	allocs map[int]uint64 // pid -> frames granted
	frees  map[int]uint64 // pid -> frames returned

	// Honored counts allocations that got the preferred color; Fallback
	// counts those that did not (pressure or exhausted pool).
	Honored  uint64
	Fallback uint64

	// Partitioned mode: each isolation domain owns an exclusive,
	// contiguous color subset and allocations for its pids are clamped
	// to that subset. Empty maps mean unpartitioned (the default), in
	// which case every path below behaves exactly as before.
	domainOf    map[int]int   // pid -> isolation domain
	partition   map[int][]int // domain -> exclusive colors, ascending
	colorDomain []int         // color -> owning domain

	// colorOf is the frame→color function. Nil means the modular layout
	// of contiguous physical memory under a conventional physically
	// indexed cache (frame % numColors); a hashed/sliced LLC installs
	// its own function via NewWithColorOf.
	colorOf func(frame uint64) int
}

// New creates an allocator over totalFrames frames spread round-robin
// across numColors colors (frame f has color f % numColors, the natural
// layout of contiguous physical memory under a physically indexed cache).
func New(totalFrames, numColors int) *Allocator {
	return NewWithColorOf(totalFrames, numColors, nil)
}

// NewWithColorOf is New with an explicit frame→color function, for
// machines whose last-level cache selects sets by an address hash
// (sliced LLCs): the pools are built by colorOf, and ColorOf/Release
// consult it. colorOf must be a pure function returning values in
// [0, numColors); nil keeps the modular default.
func NewWithColorOf(totalFrames, numColors int, colorOf func(frame uint64) int) *Allocator {
	if totalFrames <= 0 || numColors <= 0 {
		panic(fmt.Sprintf("memory: bad sizes frames=%d colors=%d", totalFrames, numColors))
	}
	a := &Allocator{
		numColors: numColors,
		free:      make([][]uint64, numColors),
		totalFree: totalFrames,
		owner:     map[uint64]int{},
		allocs:    map[int]uint64{},
		frees:     map[int]uint64{},
		colorOf:   colorOf,
	}
	per := totalFrames/numColors + 1
	for c := range a.free {
		a.free[c] = make([]uint64, 0, per)
	}
	// Push in descending order so pops return ascending frame numbers.
	for f := totalFrames - 1; f >= 0; f-- {
		a.free[a.ColorOf(uint64(f))] = append(a.free[a.ColorOf(uint64(f))], uint64(f))
	}
	return a
}

// NumColors returns the color count the allocator was built with.
func (a *Allocator) NumColors() int { return a.numColors }

// FreeFrames returns the total number of free frames.
func (a *Allocator) FreeFrames() int { return a.totalFree }

// FreeOfColor returns the number of free frames of color c. Like every
// color-taking entry point it accepts any int and wraps via NormColor.
func (a *Allocator) FreeOfColor(c int) int { return len(a.free[NormColor(c, a.numColors)]) }

// FreeByColor returns the free-frame count of every color pool.
func (a *Allocator) FreeByColor() []int {
	out := make([]int, a.numColors)
	for c := range a.free {
		out[c] = len(a.free[c])
	}
	return out
}

// ColorOf returns the color of a frame number.
func (a *Allocator) ColorOf(frame uint64) int {
	if a.colorOf != nil {
		return a.colorOf(frame)
	}
	return int(frame % uint64(a.numColors))
}

// Alloc returns a free frame, preferring the given color. honored reports
// whether the preference was satisfied. The frame is owned by process 0
// (the single-process legacy owner).
func (a *Allocator) Alloc(preferredColor int) (frame uint64, honored bool, err error) {
	return a.AllocFor(0, preferredColor)
}

// AllocFor returns a free frame for the given process, preferring the
// given color. honored reports whether the preference was satisfied.
//
// In partitioned mode a pid with an isolation domain is clamped to the
// domain's exclusive color subset: the preference is folded into the
// subset (so policy preferences and CDPC hints land on a partition
// color instead of the global color space), the pressure fallback scans
// only partition pools, and exhaustion yields a typed
// PartitionExhaustedError — the allocator never borrows a frame from a
// foreign partition.
func (a *Allocator) AllocFor(pid, preferredColor int) (frame uint64, honored bool, err error) {
	if colors, domain, ok := a.domainColors(pid); ok {
		return a.allocWithin(pid, domain, preferredColor, colors)
	}
	if a.totalFree == 0 {
		return 0, false, ErrOutOfMemory
	}
	c := NormColor(preferredColor, a.numColors)
	if pool := a.free[c]; len(pool) > 0 {
		return a.take(pid, c, true), true, nil
	}
	// Pressure fallback: take from the richest pool to keep future
	// preferences satisfiable. The scan keeps the first maximum, so ties
	// break toward the lowest color deterministically.
	best, bestLen := -1, 0
	for i, pool := range a.free {
		if len(pool) > bestLen {
			best, bestLen = i, len(pool)
		}
	}
	return a.take(pid, best, false), false, nil
}

// allocWithin is the partition-clamped allocation path: fold the
// preference into the subset, fall back richest-within-partition (first
// maximum, so ties break toward the lowest partition color), and fail
// with a typed error once the subset runs dry.
func (a *Allocator) allocWithin(pid, domain, preferredColor int, colors []int) (frame uint64, honored bool, err error) {
	c := colors[NormColor(preferredColor, len(colors))]
	if len(a.free[c]) > 0 {
		return a.take(pid, c, true), true, nil
	}
	best, bestLen := -1, 0
	for _, pc := range colors {
		if n := len(a.free[pc]); n > bestLen {
			best, bestLen = pc, n
		}
	}
	if best < 0 {
		return 0, false, &PartitionExhaustedError{Pid: pid, Domain: domain, Colors: colors}
	}
	return a.take(pid, best, false), false, nil
}

// take pops the top frame of color c, books ownership and the honored
// or fallback counter. The caller guarantees the pool is non-empty.
func (a *Allocator) take(pid, c int, honored bool) uint64 {
	pool := a.free[c]
	frame := pool[len(pool)-1]
	a.free[c] = pool[:len(pool)-1]
	a.totalFree--
	if honored {
		a.Honored++
	} else {
		a.Fallback++
	}
	a.owner[frame] = pid
	a.allocs[pid]++
	return frame
}

// Release returns a frame to its color pool and clears its ownership.
func (a *Allocator) Release(frame uint64) {
	if pid, ok := a.owner[frame]; ok {
		delete(a.owner, frame)
		a.frees[pid]++
	}
	c := a.ColorOf(frame)
	a.free[c] = append(a.free[c], frame)
	a.totalFree++
}

// OwnedFrames returns the frames currently owned by pid, ascending.
func (a *Allocator) OwnedFrames(pid int) []uint64 {
	var out []uint64
	for f, p := range a.owner {
		if p == pid {
			out = append(out, f)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// AllocCount returns the number of frames ever granted to pid.
func (a *Allocator) AllocCount(pid int) uint64 { return a.allocs[pid] }

// FreeCount returns the number of pid-owned frames returned so far.
func (a *Allocator) FreeCount(pid int) uint64 { return a.frees[pid] }

// ReleaseOwned returns every frame owned by pid to the pools and reports
// how many were released. Frames are pushed in descending order so later
// pops hand them back ascending, keeping reuse deterministic.
func (a *Allocator) ReleaseOwned(pid int) int {
	frames := a.OwnedFrames(pid)
	for i := len(frames) - 1; i >= 0; i-- {
		a.Release(frames[i])
	}
	return len(frames)
}

// FirstTouchColor returns the color of the frame a sequential free-list
// allocator would hand out next: the lowest-numbered free frame across
// all pools. With no free frames it returns 0 (the following allocation
// fails anyway).
func (a *Allocator) FirstTouchColor() int { return a.FirstTouchColorFor(0) }

// FirstTouchColorFor is FirstTouchColor scoped to pid's color partition:
// in partitioned mode it scans only the pools the pid's domain owns, so
// a first-touch policy predicts a color its own allocation can honor.
// For an unpartitioned allocator (or a pid with no domain) it scans all
// pools and matches FirstTouchColor exactly.
func (a *Allocator) FirstTouchColorFor(pid int) int {
	pools := a.free
	if colors, _, ok := a.domainColors(pid); ok {
		pools = make([][]uint64, 0, len(colors))
		for _, c := range colors {
			pools = append(pools, a.free[c])
		}
	}
	var bestFrame uint64
	found := false
	for _, pool := range pools {
		if len(pool) == 0 {
			continue
		}
		if top := pool[len(pool)-1]; !found || top < bestFrame {
			bestFrame, found = top, true
		}
	}
	if !found {
		return 0
	}
	return a.ColorOf(bestFrame)
}

// OwnerOf reports the process currently owning an allocated frame.
func (a *Allocator) OwnerOf(frame uint64) (pid int, ok bool) {
	pid, ok = a.owner[frame]
	return pid, ok
}

// AssignDomains switches the allocator into partitioned mode. pids maps
// each process id to its isolation domain; processes sharing a domain
// id share a partition. The distinct domains, taken in ascending order,
// receive contiguous color blocks whose sizes differ by at most one
// (lower domains absorb the remainder), so the assignment is a pure
// function of the resolved co-runner mix. It fails when more domains
// than colors are requested, and must be called before any partitioned
// allocation (existing pid-0 allocations, e.g. an ExhaustColors drain,
// are unaffected).
func (a *Allocator) AssignDomains(pids map[int]int) error {
	if len(pids) == 0 {
		return fmt.Errorf("memory: AssignDomains needs at least one pid")
	}
	if a.colorDomain != nil {
		return fmt.Errorf("memory: domains already assigned")
	}
	domainSet := map[int]bool{}
	for _, d := range pids {
		domainSet[d] = true
	}
	domains := make([]int, 0, len(domainSet))
	for d := range domainSet {
		domains = append(domains, d)
	}
	sort.Ints(domains)
	if len(domains) > a.numColors {
		return fmt.Errorf("memory: %d isolation domains exceed %d colors", len(domains), a.numColors)
	}
	a.domainOf = make(map[int]int, len(pids))
	for pid, d := range pids {
		a.domainOf[pid] = d
	}
	a.partition = make(map[int][]int, len(domains))
	a.colorDomain = make([]int, a.numColors)
	per, extra := a.numColors/len(domains), a.numColors%len(domains)
	next := 0
	for i, d := range domains {
		n := per
		if i < extra {
			n++
		}
		colors := make([]int, 0, n)
		for j := 0; j < n; j++ {
			colors = append(colors, next)
			a.colorDomain[next] = d
			next++
		}
		a.partition[d] = colors
	}
	return nil
}

// Partitioned reports whether AssignDomains has split the color space.
func (a *Allocator) Partitioned() bool { return a.colorDomain != nil }

// DomainOf returns pid's isolation domain, or 0 when the allocator is
// unpartitioned or the pid was never assigned one.
func (a *Allocator) DomainOf(pid int) int { return a.domainOf[pid] }

// ColorDomain returns the domain owning a color (0 when unpartitioned).
func (a *Allocator) ColorDomain(color int) int {
	if a.colorDomain == nil {
		return 0
	}
	return a.colorDomain[NormColor(color, a.numColors)]
}

// PartitionOf returns a copy of the exclusive color subset pid's domain
// owns, or nil when the pid is unconstrained.
func (a *Allocator) PartitionOf(pid int) []int {
	colors, _, ok := a.domainColors(pid)
	if !ok {
		return nil
	}
	out := make([]int, len(colors))
	copy(out, colors)
	return out
}

// domainColors resolves the color subset constraining pid's allocations.
// ok is false when the allocator is unpartitioned or the pid has no
// domain (such a pid keeps the legacy global behavior).
func (a *Allocator) domainColors(pid int) (colors []int, domain int, ok bool) {
	if a.domainOf == nil {
		return nil, 0, false
	}
	domain, ok = a.domainOf[pid]
	if !ok {
		return nil, 0, false
	}
	return a.partition[domain], domain, true
}
