package core

import (
	"math/rand"
	"testing"
)

// clusteringCost measures how well an access-set ordering clusters each
// processor's pages: for each CPU, the span of positions of sets
// containing it minus the number of such sets (0 = perfectly
// contiguous). Lower is better — it is the quantity the paper's step-2
// path heuristic tries to minimize.
func clusteringCost(order []*accessSet, ncpu int) int {
	cost := 0
	for cpu := 0; cpu < ncpu; cpu++ {
		lo, hi, n := len(order), -1, 0
		for i, s := range order {
			if s.cpuSet&(1<<uint(cpu)) != 0 {
				if i < lo {
					lo = i
				}
				if i > hi {
					hi = i
				}
				n++
			}
		}
		if n > 0 {
			cost += (hi - lo + 1) - n
		}
	}
	return cost
}

// bestCost brute-forces all permutations of the sets (≤ 8!).
func bestCost(sets []*accessSet, ncpu int) int {
	n := len(sets)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	best := 1 << 30
	var recurse func(k int)
	ordered := make([]*accessSet, n)
	recurse = func(k int) {
		if k == n {
			for i, p := range perm {
				ordered[i] = sets[p]
			}
			if c := clusteringCost(ordered, ncpu); c < best {
				best = c
			}
			return
		}
		for i := k; i < n; i++ {
			perm[k], perm[i] = perm[i], perm[k]
			recurse(k + 1)
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	recurse(0)
	return best
}

// TestSetOrderingNearOptimal compares the paper's greedy step-2
// heuristic against exhaustive search on small random instances: the
// greedy ordering must stay close to the optimal clustering cost. This
// quantifies the "simple heuristic" claim of §5.2.
func TestSetOrderingNearOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const ncpu = 6
	var totalGreedy, totalBest int
	for trial := 0; trial < 60; trial++ {
		k := 3 + rng.Intn(5) // 3-7 sets
		seen := map[uint64]bool{}
		var sets []*accessSet
		for len(sets) < k {
			// Typical CDPC sets: singletons and small runs of adjacent CPUs.
			start := rng.Intn(ncpu)
			width := 1 + rng.Intn(3)
			var mask uint64
			for c := start; c < start+width && c < ncpu; c++ {
				mask |= 1 << uint(c)
			}
			if mask == 0 || seen[mask] {
				continue
			}
			seen[mask] = true
			sets = append(sets, &accessSet{cpuSet: mask})
		}
		optimal := bestCost(sets, ncpu)

		greedy := make([]*accessSet, len(sets))
		copy(greedy, sets)
		orderSets(greedy, Options{})
		g := clusteringCost(greedy, ncpu)

		if g < optimal {
			t.Fatalf("trial %d: greedy %d beat 'optimal' %d — brute force broken", trial, g, optimal)
		}
		totalGreedy += g
		totalBest += optimal
	}
	t.Logf("greedy total cost %d vs optimal %d over 60 instances", totalGreedy, totalBest)
	// Allow slack: the greedy heuristic should stay within 2x of optimal
	// plus a small constant on these instance sizes.
	if totalGreedy > 2*totalBest+30 {
		t.Errorf("greedy clustering cost %d too far above optimal %d", totalGreedy, totalBest)
	}
}

// TestClusteringCostMetric sanity-checks the metric itself.
func TestClusteringCostMetric(t *testing.T) {
	mk := func(masks ...uint64) []*accessSet {
		out := make([]*accessSet, len(masks))
		for i, m := range masks {
			out[i] = &accessSet{cpuSet: m}
		}
		return out
	}
	// Perfectly clustered: {0}, {0,1}, {1} — each CPU's sets contiguous.
	if c := clusteringCost(mk(1, 3, 2), 2); c != 0 {
		t.Errorf("clustered cost = %d, want 0", c)
	}
	// Split: {0}, {1}, {0} — CPU 0 spans 3 positions with 2 sets.
	if c := clusteringCost(mk(1, 2, 1), 2); c != 1 {
		t.Errorf("split cost = %d, want 1", c)
	}
}

// TestImprovedSetOrderingBeatsGreedy: the extension's cost-minimizing
// insertion must never do worse than the paper's max-overlap insertion,
// and should close most of the gap to optimal on small instances.
func TestImprovedSetOrderingBeatsGreedy(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const ncpu = 6
	var paperTotal, improvedTotal, optTotal int
	for trial := 0; trial < 60; trial++ {
		k := 3 + rng.Intn(5)
		seen := map[uint64]bool{}
		var sets []*accessSet
		for len(sets) < k {
			start := rng.Intn(ncpu)
			width := 1 + rng.Intn(3)
			var mask uint64
			for c := start; c < start+width && c < ncpu; c++ {
				mask |= 1 << uint(c)
			}
			if mask == 0 || seen[mask] {
				continue
			}
			seen[mask] = true
			sets = append(sets, &accessSet{cpuSet: mask})
		}
		optTotal += bestCost(sets, ncpu)

		paper := make([]*accessSet, len(sets))
		copy(paper, sets)
		orderSets(paper, Options{})
		paperTotal += clusteringCost(paper, ncpu)

		improved := make([]*accessSet, len(sets))
		copy(improved, sets)
		orderSets(improved, Options{ImprovedSetOrdering: true})
		improvedTotal += clusteringCost(improved, ncpu)
	}
	t.Logf("paper=%d improved=%d optimal=%d over 60 instances", paperTotal, improvedTotal, optTotal)
	if improvedTotal > paperTotal {
		t.Errorf("improved ordering (%d) worse than the paper's greedy (%d)", improvedTotal, paperTotal)
	}
}

func TestImprovedSetOrderingEndToEnd(t *testing.T) {
	prog := twoArrayProgram(64*512, 64, 512)
	h1 := hintsFor(t, prog, 8, 32, Options{ImprovedSetOrdering: true})
	if len(h1.Order) == 0 {
		t.Fatal("no hints with improved ordering")
	}
	// Still a valid coloring: no duplicates, colors in range.
	seen := map[uint64]bool{}
	for _, vpn := range h1.Order {
		if seen[vpn] {
			t.Fatal("duplicate page")
		}
		seen[vpn] = true
		if c := h1.Colors[vpn]; c < 0 || c >= h1.NumColors {
			t.Fatalf("color %d out of range", c)
		}
	}
}
