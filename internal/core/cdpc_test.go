package core

import (
	"math/bits"
	"strings"
	"testing"

	"repro/internal/compiler"
	"repro/internal/ir"
)

const pageSize = 4096

// twoArrayProgram reproduces the flavor of the paper's Figure 4 example:
// two arrays, partitioned across the CPUs with boundary communication.
func twoArrayProgram(elemsPerArray, iters, inner int) *ir.Program {
	a := &ir.Array{Name: "a", ElemSize: 8, Elems: elemsPerArray}
	b := &ir.Array{Name: "b", ElemSize: 8, Elems: elemsPerArray}
	unit := elemsPerArray / iters
	nest := &ir.Nest{
		Name:       "sweep",
		Parallel:   true,
		Iterations: iters,
		InnerIters: inner,
		Accesses: []ir.Access{
			{Array: a, Kind: ir.Load, OuterStride: unit, InnerStride: 1},
			{Array: a, Kind: ir.Load, OuterStride: unit, InnerStride: 1, Offset: 1},
			{Array: b, Kind: ir.Store, OuterStride: unit, InnerStride: 1},
		},
		WorkPerIter: 2,
		Sched:       ir.Schedule{Kind: ir.Even},
	}
	prog := &ir.Program{
		Name:   "fig4",
		Arrays: []*ir.Array{a, b},
		Phases: []*ir.Phase{{Name: "main", Occurrences: 1, Nests: []*ir.Nest{nest}}},
	}
	compiler.Layout(prog, compiler.DefaultLayout(128, 8<<10, pageSize))
	return prog
}

func hintsFor(t *testing.T, prog *ir.Program, ncpu, colors int, opts Options) *Hints {
	t.Helper()
	sum := compiler.Summarize(prog)
	h, err := ComputeHintsOpt(prog, sum, Params{NumCPUs: ncpu, NumColors: colors, PageSize: pageSize}, opts)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestParamsValidate(t *testing.T) {
	bad := []Params{
		{NumCPUs: 0, NumColors: 16, PageSize: 4096},
		{NumCPUs: 65, NumColors: 16, PageSize: 4096},
		{NumCPUs: 4, NumColors: 0, PageSize: 4096},
		{NumCPUs: 4, NumColors: 16, PageSize: 1000},
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("accepted %+v", p)
		}
	}
	if err := (Params{NumCPUs: 8, NumColors: 64, PageSize: 4096}).Validate(); err != nil {
		t.Errorf("rejected valid params: %v", err)
	}
}

func TestUniformSegmentsPartition(t *testing.T) {
	// 4 CPUs, 2 arrays of 32 pages each; no communication. Each array
	// splits into 4 segments of 8 pages with singleton CPU sets.
	prog := twoArrayProgram(32*512, 32, 512)
	prog.Phases[0].Nests[0].Accesses = prog.Phases[0].Nests[0].Accesses[:1] // drop comm + b
	sum := compiler.Summarize(prog)
	segs := UniformSegments(prog, sum, Params{NumCPUs: 4, NumColors: 16, PageSize: pageSize})
	if len(segs) != 4 {
		t.Fatalf("segments = %d, want 4: %v", len(segs), segs)
	}
	for i, s := range segs {
		if s.Pages() != 8 {
			t.Errorf("segment %d pages = %d, want 8", i, s.Pages())
		}
		if bits.OnesCount64(s.CPUSet) != 1 {
			t.Errorf("segment %d cpu set %#x, want singleton", i, s.CPUSet)
		}
	}
}

func TestUniformSegmentsBoundarySharing(t *testing.T) {
	// With +1 communication, boundary pages are accessed by two CPUs:
	// segments alternate singleton / pair sets. Use an unpadded layout so
	// array b stays page-aligned and only a's communication creates
	// shared pages.
	prog := twoArrayProgram(32*512, 32, 512)
	compiler.Layout(prog, compiler.LayoutOptions{Align: true, Pad: false, LineSize: 128, PageSize: pageSize})
	sum := compiler.Summarize(prog)
	segs := UniformSegments(prog, sum, Params{NumCPUs: 4, NumColors: 16, PageSize: pageSize})
	var pairSegs, singleSegs int
	for _, s := range segs {
		switch bits.OnesCount64(s.CPUSet) {
		case 1:
			singleSegs++
		case 2:
			pairSegs++
		default:
			t.Errorf("unexpected cpu set %#x", s.CPUSet)
		}
	}
	// Array a: 4 chunks with 3 internal boundaries → 3 pair segments.
	if pairSegs != 3 {
		t.Errorf("pair segments = %d, want 3", pairSegs)
	}
	if singleSegs == 0 {
		t.Error("no singleton segments")
	}
}

func TestUnanalyzableArrayGetsNoHints(t *testing.T) {
	prog := twoArrayProgram(32*512, 32, 512)
	prog.Arrays[1].Unanalyzable = true
	h := hintsFor(t, prog, 4, 16, Options{})
	bpages := map[uint64]bool{}
	b := prog.Arrays[1]
	for vpn := b.Base / pageSize; vpn < (b.EndAddr()+pageSize-1)/pageSize; vpn++ {
		bpages[vpn] = true
	}
	for _, vpn := range h.Order {
		if bpages[vpn] {
			t.Fatalf("hint emitted for unanalyzable array page %d", vpn)
		}
	}
}

func TestHintsCoverAllAnalyzablePages(t *testing.T) {
	prog := twoArrayProgram(64*512, 64, 512)
	h := hintsFor(t, prog, 8, 32, Options{})
	want := 0
	for _, a := range prog.Arrays {
		want += int((a.EndAddr()+pageSize-1)/pageSize - a.Base/pageSize)
	}
	if len(h.Order) != want {
		t.Errorf("ordered pages = %d, want %d", len(h.Order), want)
	}
	if len(h.Colors) != want {
		t.Errorf("colored pages = %d, want %d", len(h.Colors), want)
	}
}

func TestOrderHasNoDuplicates(t *testing.T) {
	prog := twoArrayProgram(64*512, 64, 512)
	h := hintsFor(t, prog, 8, 32, Options{})
	seen := map[uint64]bool{}
	for _, vpn := range h.Order {
		if seen[vpn] {
			t.Fatalf("page %d appears twice in order", vpn)
		}
		seen[vpn] = true
	}
}

func TestColorsFollowOrderRoundRobin(t *testing.T) {
	prog := twoArrayProgram(64*512, 64, 512)
	h := hintsFor(t, prog, 8, 32, Options{})
	for i, vpn := range h.Order {
		if h.Colors[vpn] != i%h.NumColors {
			t.Fatalf("order[%d] (vpn %d) color = %d, want %d", i, vpn, h.Colors[vpn], i%h.NumColors)
		}
	}
}

func TestPerCPUDataSpreadsAcrossColors(t *testing.T) {
	// The first objective of §5.2: data accessed by each processor maps
	// as contiguously as possible in color space. With per-CPU data ≤
	// cache, every page of a CPU should get a distinct color.
	ncpu, colors := 4, 32
	// 2 arrays × 32 pages / 4 cpus = 16 pages per cpu + boundaries ≤ 32 colors.
	prog := twoArrayProgram(32*512, 32, 512)
	h := hintsFor(t, prog, ncpu, colors, Options{})
	sum := compiler.Summarize(prog)
	segs := UniformSegments(prog, sum, Params{NumCPUs: ncpu, NumColors: colors, PageSize: pageSize})
	for cpu := 0; cpu < ncpu; cpu++ {
		used := map[int]int{}
		for _, s := range segs {
			if s.CPUSet&(1<<uint(cpu)) == 0 {
				continue
			}
			for vpn := s.LoVPN; vpn < s.HiVPN; vpn++ {
				used[h.Colors[vpn]]++
			}
		}
		for color, count := range used {
			if count > 1 {
				t.Errorf("cpu %d: color %d used by %d pages (conflict)", cpu, color, count)
			}
		}
	}
}

func TestCyclicStartSeparatesConflictingStarts(t *testing.T) {
	// Second objective of §5.2: starting locations of group-accessed
	// arrays get different colors. Force per-CPU data > colors so the
	// two arrays' chunks overlap in color space.
	ncpu, colors := 2, 8
	prog := twoArrayProgram(32*512, 32, 512) // 32 pages per array, 16/cpu
	h := hintsFor(t, prog, ncpu, colors, Options{})
	a, b := prog.Arrays[0], prog.Arrays[1]
	ca := h.Colors[a.Base/pageSize]
	cb := h.Colors[b.Base/pageSize]
	if ca == cb {
		t.Errorf("group-accessed array starts share color %d", ca)
	}

	// Ablation: with cyclic start disabled the starts collide (this is
	// what the ablation bench measures).
	h2 := hintsFor(t, prog, ncpu, colors, Options{DisableCyclicStart: true})
	ca2 := h2.Colors[a.Base/pageSize]
	cb2 := h2.Colors[b.Base/pageSize]
	if ca2 != cb2 {
		t.Skipf("layout happened to separate starts without step 4 (ca=%d cb=%d)", ca2, cb2)
	}
}

func TestSetOrderingClustersProcessors(t *testing.T) {
	// Pages of CPU 0 should be contiguous in the order: the singleton
	// {0} set and the pair {0,1} boundary set must be adjacent, not
	// separated by {2}, {3}...
	prog := twoArrayProgram(32*512, 32, 512)
	h := hintsFor(t, prog, 4, 64, Options{})
	// Find positions of pages accessed (solely or partly) by CPU 0.
	sum := compiler.Summarize(prog)
	segs := UniformSegments(prog, sum, Params{NumCPUs: 4, NumColors: 64, PageSize: pageSize})
	cpu0 := map[uint64]bool{}
	for _, s := range segs {
		if s.CPUSet&1 != 0 {
			for vpn := s.LoVPN; vpn < s.HiVPN; vpn++ {
				cpu0[vpn] = true
			}
		}
	}
	pos := map[uint64]int{}
	for i, vpn := range h.Order {
		pos[vpn] = i
	}
	lo, hi := len(h.Order), -1
	n := 0
	for vpn := range cpu0 {
		p, ok := pos[vpn]
		if !ok {
			t.Fatalf("page %d missing from order", vpn)
		}
		if p < lo {
			lo = p
		}
		if p > hi {
			hi = p
		}
		n++
	}
	// Clustering quality: the span occupied by CPU 0's pages should not
	// be much larger than the page count (allow boundary-pair slack).
	if hi-lo+1 > n*2 {
		t.Errorf("cpu0 pages spread over span %d for %d pages; poor clustering", hi-lo+1, n)
	}
}

func TestDeterminism(t *testing.T) {
	prog1 := twoArrayProgram(64*512, 64, 512)
	prog2 := twoArrayProgram(64*512, 64, 512)
	h1 := hintsFor(t, prog1, 8, 32, Options{})
	h2 := hintsFor(t, prog2, 8, 32, Options{})
	if len(h1.Order) != len(h2.Order) {
		t.Fatal("nondeterministic order length")
	}
	for i := range h1.Order {
		if h1.Order[i] != h2.Order[i] {
			t.Fatalf("order differs at %d: %d vs %d", i, h1.Order[i], h2.Order[i])
		}
	}
}

func TestSingleCPU(t *testing.T) {
	prog := twoArrayProgram(16*512, 16, 512)
	h := hintsFor(t, prog, 1, 16, Options{})
	if len(h.Order) == 0 {
		t.Fatal("no hints for single CPU")
	}
	for _, s := range h.Segments {
		if s.CPUSet != 1 {
			t.Errorf("segment %v has non-singleton set on 1 CPU", s)
		}
	}
}

func TestNoSummariesYieldsEmptyHints(t *testing.T) {
	prog := twoArrayProgram(16*512, 16, 512)
	for _, a := range prog.Arrays {
		a.Unanalyzable = true
	}
	h := hintsFor(t, prog, 4, 16, Options{})
	if len(h.Order) != 0 {
		t.Errorf("hints for fully unanalyzable program: %d pages", len(h.Order))
	}
}

func TestColorRangesOverlap(t *testing.T) {
	cases := []struct {
		s1, l1, s2, l2, c int
		want              bool
	}{
		{0, 4, 4, 4, 16, false},
		{0, 4, 2, 4, 16, true},
		{14, 4, 0, 2, 16, true},  // wraps
		{14, 4, 2, 2, 16, false}, // wrap ends at 2
		{0, 16, 8, 1, 16, true},  // full circle
		{5, 1, 5, 1, 16, true},
	}
	for _, tc := range cases {
		if got := colorRangesOverlap(tc.s1, tc.l1, tc.s2, tc.l2, tc.c); got != tc.want {
			t.Errorf("overlap(%d,%d,%d,%d,%d) = %v, want %v", tc.s1, tc.l1, tc.s2, tc.l2, tc.c, got, tc.want)
		}
	}
}

func TestCircDist(t *testing.T) {
	if circDist(0, 15, 16) != 1 {
		t.Error("wrap distance")
	}
	if circDist(3, 3, 16) != 0 {
		t.Error("zero distance")
	}
	if circDist(0, 8, 16) != 8 {
		t.Error("max distance")
	}
}

func TestRotateCommunicationWrapsSegments(t *testing.T) {
	// Periodic stencil: a[i-1] and a[i+1] with Wrap. CPU 0's first page
	// must also be in CPU p-1's set (and vice versa), unlike plain shift.
	build := func(wrap bool) *ir.Program {
		a := &ir.Array{Name: "a", ElemSize: 8, Elems: 32 * 512}
		b := &ir.Array{Name: "b", ElemSize: 8, Elems: 32 * 512}
		nest := &ir.Nest{
			Name: "periodic", Parallel: true, Iterations: 32, InnerIters: 512,
			Accesses: []ir.Access{
				{Array: a, Kind: ir.Load, OuterStride: 512, InnerStride: 1, Offset: -512, Wrap: wrap},
				{Array: a, Kind: ir.Load, OuterStride: 512, InnerStride: 1, Offset: 512, Wrap: wrap},
				{Array: b, Kind: ir.Store, OuterStride: 512, InnerStride: 1},
			},
			WorkPerIter: 2,
			Sched:       ir.Schedule{Kind: ir.Even},
		}
		prog := &ir.Program{Name: "periodic", Arrays: []*ir.Array{a, b},
			Phases: []*ir.Phase{{Name: "main", Occurrences: 1, Nests: []*ir.Nest{nest}}}}
		compiler.Layout(prog, compiler.LayoutOptions{Align: true, LineSize: 128, PageSize: pageSize})
		return prog
	}

	const ncpu = 4
	setsOf := func(prog *ir.Program) map[uint64]uint64 {
		sum := compiler.Summarize(prog)
		segs := UniformSegments(prog, sum, Params{NumCPUs: ncpu, NumColors: 16, PageSize: pageSize})
		out := map[uint64]uint64{}
		for _, s := range segs {
			if s.Array.Name != "a" {
				continue
			}
			for vpn := s.LoVPN; vpn < s.HiVPN; vpn++ {
				out[vpn] |= s.CPUSet
			}
		}
		return out
	}

	wrapped := setsOf(build(true))
	plain := setsOf(build(false))

	a := build(true).Arrays[0]
	first := a.Base / pageSize
	last := (a.EndAddr() - 1) / pageSize
	lastCPU := uint64(1) << (ncpu - 1)
	if wrapped[first]&lastCPU == 0 {
		t.Errorf("rotate: first page set %#x misses CPU %d", wrapped[first], ncpu-1)
	}
	if wrapped[last]&1 == 0 {
		t.Errorf("rotate: last page set %#x misses CPU 0", wrapped[last])
	}
	if plain[first]&lastCPU != 0 || plain[last]&1 != 0 {
		t.Errorf("plain shift must not wrap: first=%#x last=%#x", plain[first], plain[last])
	}
}

func TestWrapVAddr(t *testing.T) {
	a := &ir.Array{Name: "x", ElemSize: 8, Elems: 100, Base: 0x10000}
	ac := ir.Access{Array: a, OuterStride: 10, InnerStride: 1, Offset: -5, Wrap: true}
	if got := ac.VAddr(0, 0); got != 0x10000+95*8 {
		t.Errorf("wrap below: %#x, want element 95", got)
	}
	ac2 := ir.Access{Array: a, OuterStride: 10, InnerStride: 1, Offset: 5, Wrap: true}
	if got := ac2.VAddr(9, 9); got != 0x10000+4*8 {
		t.Errorf("wrap above: %#x, want element 4 (104 mod 100)", got)
	}
}

func TestQualityEvaluation(t *testing.T) {
	// 2 arrays x 32 pages on 4 CPUs with 32 colors: per-CPU ~16 pages +
	// boundaries should land on distinct colors (balance 1.0).
	prog := twoArrayProgram(32*512, 32, 512)
	h := hintsFor(t, prog, 4, 32, Options{})
	q := h.Evaluate(4)
	if len(q.PerCPU) != 4 {
		t.Fatalf("per-cpu entries = %d", len(q.PerCPU))
	}
	for cpu, c := range q.PerCPU {
		if c.Pages == 0 {
			t.Errorf("cpu %d has no pages", cpu)
		}
		if c.MaxLoad > 1 {
			t.Errorf("cpu %d: max load %d, want 1 (fits in colors)", cpu, c.MaxLoad)
		}
	}
	if q.WorstBalance() != 1.0 {
		t.Errorf("worst balance = %.2f, want 1.0", q.WorstBalance())
	}
	if !strings.Contains(q.String(), "cpu00") {
		t.Error("String() missing per-CPU rows")
	}
}

func TestQualityOversubscribed(t *testing.T) {
	// Same data on only 8 colors: per-CPU ~17 pages over 8 colors means
	// max load ≥ 3 somewhere but balance should stay reasonable.
	prog := twoArrayProgram(32*512, 32, 512)
	h := hintsFor(t, prog, 4, 8, Options{})
	q := h.Evaluate(4)
	for cpu, c := range q.PerCPU {
		if c.ColorsUsed != 8 {
			t.Errorf("cpu %d uses %d colors, want all 8", cpu, c.ColorsUsed)
		}
	}
	if q.WorstBalance() < 0.5 {
		t.Errorf("worst balance %.2f too uneven", q.WorstBalance())
	}
}

func TestSharedWith(t *testing.T) {
	prog := twoArrayProgram(32*512, 32, 512) // +1 comm on array a
	h := hintsFor(t, prog, 4, 32, Options{})
	// Interior CPUs share boundary pages with neighbors.
	if h.SharedWith(1) == 0 {
		t.Error("cpu 1 should share boundary pages")
	}
}
