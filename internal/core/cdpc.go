package core

import (
	"fmt"
	"math/bits"
	"sort"

	"repro/internal/compiler"
	"repro/internal/ir"
)

// Params are the machine-specific inputs known only at start-up time
// (§5, stage 2): processor count, cache configuration, page size.
type Params struct {
	NumCPUs   int
	NumColors int
	PageSize  int
}

// Validate checks the parameters.
func (p Params) Validate() error {
	if p.NumCPUs <= 0 || p.NumCPUs > 64 {
		return fmt.Errorf("core: NumCPUs %d out of range [1,64]", p.NumCPUs)
	}
	if p.NumColors <= 0 {
		return fmt.Errorf("core: NumColors must be positive, got %d", p.NumColors)
	}
	if p.PageSize <= 0 || p.PageSize&(p.PageSize-1) != 0 {
		return fmt.Errorf("core: PageSize %d must be a positive power of two", p.PageSize)
	}
	return nil
}

// Segment is a uniform access segment: a run of consecutive virtual
// pages of one array, all accessed by the same set of processors.
type Segment struct {
	Array  *ir.Array
	LoVPN  uint64 // first page, inclusive
	HiVPN  uint64 // last page, exclusive
	CPUSet uint64 // bitmask of accessing processors
}

// Pages returns the segment length in pages.
func (s Segment) Pages() int { return int(s.HiVPN - s.LoVPN) }

// String implements fmt.Stringer.
func (s Segment) String() string {
	return fmt.Sprintf("%s[%d,%d) cpus=%#x", s.Array.Name, s.LoVPN, s.HiVPN, s.CPUSet)
}

// Hints is the CDPC output: the page ordering and the per-page colors.
type Hints struct {
	// Order lists virtual page numbers in coloring order; adjacent pages
	// get adjacent colors. This is also the touch order used for the
	// Digital UNIX bin-hopping emulation (§5.3).
	Order []uint64
	// Colors maps each ordered page to its preferred color.
	Colors map[uint64]int
	// Segments records the step-1 segmentation, in final placement order
	// (exported for the Figure 4/5 visualizations and for tests).
	Segments []Segment

	NumColors int
}

// Options tunes algorithm variants for the ablation benchmarks; the
// zero value is the full paper algorithm.
type Options struct {
	// DisableCyclicStart skips step 4 (pages laid in ascending order).
	DisableCyclicStart bool
	// DisableGroupOrdering skips step 3 (segments within a set ordered by
	// virtual address only).
	DisableGroupOrdering bool
	// DisableSetOrdering skips step 2 (sets ordered by first appearance).
	DisableSetOrdering bool
	// ImprovedSetOrdering replaces the paper's step-2 insertion rule
	// (place each remaining set after the single node with maximum
	// processor-set overlap) with a position search that minimizes the
	// incremental clustering cost — an extension beyond the paper; the
	// quality tests show it narrowing the greedy-vs-optimal gap on
	// adversarial instances while matching the paper's heuristic on the
	// chain-structured sets real partitionings produce.
	ImprovedSetOrdering bool
}

// ComputeHints runs the full CDPC algorithm.
func ComputeHints(prog *ir.Program, sum *compiler.Summary, p Params) (*Hints, error) {
	return ComputeHintsOpt(prog, sum, p, Options{})
}

// ComputeHintsOpt runs CDPC with algorithm variants selectable for
// ablation studies.
func ComputeHintsOpt(prog *ir.Program, sum *compiler.Summary, p Params, opts Options) (*Hints, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	segs := UniformSegments(prog, sum, p) // step 1
	sets := groupByCPUSet(segs)
	orderSets(sets, opts) // step 2
	for _, set := range sets {
		orderSegments(set.segments, sum, opts) // step 3
	}
	h := &Hints{Colors: make(map[uint64]int), NumColors: p.NumColors}
	placeAndColor(h, sets, sum, opts) // steps 4 and 5
	return h, nil
}

// UniformSegments implements step 1: it splits every analyzable array
// into maximal page runs with a uniform processor set, derived from the
// partition summaries (widened by the communication patterns). Arrays
// without summaries — unanalyzable or purely sequential — produce no
// segments and keep the OS default mapping, as in the paper's su2cor
// discussion (§6.1).
func UniformSegments(prog *ir.Program, sum *compiler.Summary, p Params) []Segment {
	pageSize := uint64(p.PageSize)
	var segs []Segment
	for _, a := range prog.Arrays {
		var parts []compiler.PartitionSummary
		for _, ps := range sum.Partitions {
			if ps.Array == a {
				parts = append(parts, ps)
			}
		}
		if len(parts) == 0 {
			continue
		}
		loReach, hiReach := sum.CommReach(a)
		commLo := uint64(loReach * a.ElemSize)
		commHi := uint64(hiReach * a.ElemSize)
		rotate := sum.Rotates(a)
		loVPN := a.Base / pageSize
		hiVPN := (a.EndAddr() + pageSize - 1) / pageSize
		prevSet := uint64(0)
		runStart := loVPN
		for vpn := loVPN; vpn <= hiVPN; vpn++ {
			var set uint64
			if vpn < hiVPN {
				set = pageCPUSet(vpn, pageSize, parts, commLo, commHi, rotate, p.NumCPUs)
			}
			if vpn == loVPN {
				prevSet = set
				continue
			}
			if set != prevSet || vpn == hiVPN {
				if prevSet != 0 {
					segs = append(segs, Segment{Array: a, LoVPN: runStart, HiVPN: vpn, CPUSet: prevSet})
				}
				runStart = vpn
				prevSet = set
			}
		}
	}
	return segs
}

// pageCPUSet computes the set of processors accessing the page [vpn*ps,
// (vpn+1)*ps) under all partition summaries, each widened by the signed
// communication reach: a negative shift extends a processor's region
// downward, a positive shift upward. With rotate communication (§5.1),
// the widening wraps around the array, linking the first and last
// processors' boundary pages.
func pageCPUSet(vpn, pageSize uint64, parts []compiler.PartitionSummary, commLo, commHi uint64, rotate bool, ncpu int) uint64 {
	pLo := vpn * pageSize
	pHi := pLo + pageSize
	var set uint64
	for _, ps := range parts {
		aLo := ps.Array.Base
		aHi := ps.Array.EndAddr()
		for cpu := 0; cpu < ncpu; cpu++ {
			lo, hi := ps.Region(ncpu, cpu)
			if lo >= hi {
				continue
			}
			member := false
			if lo-aLo >= commLo {
				lo -= commLo
			} else {
				if rotate {
					// Downward reach wraps to the array tail.
					wrap := commLo - (lo - aLo)
					if aHi-wrap < pHi && pLo < aHi {
						member = true
					}
				}
				lo = aLo
			}
			over := uint64(0)
			hi += commHi
			if hi > aHi {
				over = hi - aHi
				hi = aHi
			}
			if rotate && over > 0 {
				// Wraps to the array head.
				if aLo < pHi && pLo < aLo+over {
					member = true
				}
			}
			if lo < pHi && pLo < hi {
				member = true
			}
			if member {
				set |= 1 << uint(cpu)
			}
		}
	}
	return set
}

// accessSet groups the segments sharing one processor set (a node of the
// step-2 graph).
type accessSet struct {
	cpuSet   uint64
	segments []Segment
}

func groupByCPUSet(segs []Segment) []*accessSet {
	index := map[uint64]*accessSet{}
	var sets []*accessSet
	for _, s := range segs {
		as, ok := index[s.CPUSet]
		if !ok {
			as = &accessSet{cpuSet: s.CPUSet}
			index[s.CPUSet] = as
			sets = append(sets, as)
		}
		as.segments = append(as.segments, s)
	}
	return sets
}

// orderSets implements step 2: build a path over the access-set graph
// (edges between intersecting processor sets) that clusters each
// processor's pages. The paper's heuristic: start from a singleton set,
// greedily extend to an unvisited adjacent node; nodes outside the
// one-or-two-member subgraph are inserted next to the visited node with
// maximal processor-set overlap.
func orderSets(sets []*accessSet, opts Options) {
	if opts.DisableSetOrdering || len(sets) < 2 {
		return
	}
	// Deterministic starting order: by popcount, then by set value.
	sort.Slice(sets, func(i, j int) bool {
		pi, pj := bits.OnesCount64(sets[i].cpuSet), bits.OnesCount64(sets[j].cpuSet)
		if pi != pj {
			return pi < pj
		}
		return sets[i].cpuSet < sets[j].cpuSet
	})

	small := func(s *accessSet) bool { return bits.OnesCount64(s.cpuSet) <= 2 }
	visited := make([]bool, len(sets))
	var path []*accessSet

	// Greedy path over the small-set subgraph.
	cur := -1
	for i, s := range sets {
		if small(s) {
			cur = i
			break
		}
	}
	for cur >= 0 {
		visited[cur] = true
		path = append(path, sets[cur])
		next := -1
		bestOverlap := 0
		for i, s := range sets {
			if visited[i] || !small(s) {
				continue
			}
			if ov := bits.OnesCount64(s.cpuSet & sets[cur].cpuSet); ov > bestOverlap {
				bestOverlap, next = ov, i
			}
		}
		if next < 0 {
			// No adjacent unvisited small node; take the next small one.
			for i, s := range sets {
				if !visited[i] && small(s) {
					next = i
					break
				}
			}
		}
		cur = next
	}

	// Insert the remaining (large) sets. The paper's rule places each
	// next to the path node with the maximum processor-set overlap; the
	// improved variant searches all insertion points for the one that
	// grows the clustering cost least.
	for i, s := range sets {
		if visited[i] {
			continue
		}
		var bestPos int
		if opts.ImprovedSetOrdering {
			bestPos = bestInsertion(path, s)
		} else {
			bestOverlap := -1
			for pos, ps := range path {
				if ov := bits.OnesCount64(s.cpuSet & ps.cpuSet); ov > bestOverlap {
					bestOverlap, bestPos = ov, pos
				}
			}
		}
		path = append(path, nil)
		copy(path[bestPos+2:], path[bestPos+1:])
		path[bestPos+1] = s
		visited[i] = true
	}
	copy(sets, path)
}

// bestInsertion returns the index after which inserting s into path
// yields the lowest clustering cost (ties to the earliest position).
func bestInsertion(path []*accessSet, s *accessSet) int {
	trial := make([]*accessSet, 0, len(path)+1)
	best, bestCost := len(path)-1, int(^uint(0)>>1)
	for pos := 0; pos < len(path); pos++ {
		trial = trial[:0]
		trial = append(trial, path[:pos+1]...)
		trial = append(trial, s)
		trial = append(trial, path[pos+1:]...)
		if c := pathClusteringCost(trial); c < bestCost {
			bestCost, best = c, pos
		}
	}
	return best
}

// pathClusteringCost is the step-2 objective: for each processor, the
// span of path positions whose sets contain it, minus the count of such
// sets (0 = the processor's sets are contiguous).
func pathClusteringCost(path []*accessSet) int {
	var union uint64
	for _, s := range path {
		union |= s.cpuSet
	}
	cost := 0
	for union != 0 {
		cpu := bits.TrailingZeros64(union)
		union &^= 1 << uint(cpu)
		lo, hi, n := len(path), -1, 0
		for i, s := range path {
			if s.cpuSet&(1<<uint(cpu)) != 0 {
				if i < lo {
					lo = i
				}
				if i > hi {
					hi = i
				}
				n++
			}
		}
		if n > 0 {
			cost += (hi - lo + 1) - n
		}
	}
	return cost
}

// orderSegments implements step 3: within an access set, build a greedy
// path over segments with edges given by the group-access information,
// so arrays used together are adjacent; ties go to the smallest virtual
// address, the paper's tie-break.
func orderSegments(segs []Segment, sum *compiler.Summary, opts Options) {
	sort.Slice(segs, func(i, j int) bool { return segs[i].LoVPN < segs[j].LoVPN })
	if opts.DisableGroupOrdering || len(segs) < 3 {
		return
	}
	visited := make([]bool, len(segs))
	out := make([]Segment, 0, len(segs))
	cur := 0 // smallest virtual address
	for {
		visited[cur] = true
		out = append(out, segs[cur])
		next := -1
		for i := range segs {
			if visited[i] {
				continue
			}
			if segs[i].Array != segs[cur].Array && sum.Grouped(segs[i].Array.Name, segs[cur].Array.Name) {
				next = i
				break // segs sorted by address: first match is smallest
			}
		}
		if next < 0 {
			for i := range segs {
				if !visited[i] {
					next = i
					break
				}
			}
		}
		if next < 0 {
			break
		}
		cur = next
	}
	copy(segs, out)
}

// placeAndColor implements steps 4 and 5: walk the ordered segments,
// choose each segment's cyclic start point to keep the starting
// locations of conflicting segments apart in color space, and assign
// colors round-robin over the final page sequence.
// placedSegment records where a segment's first page landed in color
// space, for later segments' conflict checks.
type placedSegment struct {
	seg        Segment
	startColor int // color of the segment's first virtual page
}

func placeAndColor(h *Hints, sets []*accessSet, sum *compiler.Summary, opts Options) {
	var done []placedSegment
	cursor := 0
	c := h.NumColors
	for _, set := range sets {
		for _, seg := range set.segments {
			// A page straddling two arrays appears in both arrays'
			// segments; it keeps the color of its first placement.
			pages := make([]uint64, 0, seg.Pages())
			for vpn := seg.LoVPN; vpn < seg.HiVPN; vpn++ {
				if _, dup := h.Colors[vpn]; !dup {
					pages = append(pages, vpn)
				}
			}
			n := len(pages)
			if n == 0 {
				continue
			}
			rot := 0
			if !opts.DisableCyclicStart {
				rot = chooseRotation(seg, n, cursor, c, done, sum)
			}
			// Page order: seg pages rotated left by rot; colors follow
			// cursor round-robin.
			for k := 0; k < n; k++ {
				vpn := pages[(rot+k)%n]
				color := (cursor + k) % c
				h.Order = append(h.Order, vpn)
				h.Colors[vpn] = color
			}
			firstPageColor := (cursor + ((n - rot) % n)) % c
			done = append(done, placedSegment{seg: seg, startColor: firstPageColor})
			h.Segments = append(h.Segments, seg)
			cursor = (cursor + n) % c
		}
	}
}

// chooseRotation picks the step-4 cyclic start point: among all
// rotations, maximize the minimum circular color distance between this
// segment's first page and the first pages of already-placed conflicting
// segments. Two segments conflict when (1) their arrays are used in the
// same loops, (2) their processor sets intersect, and (3) they (would)
// partially overlap in the cache (§5.2 step 4).
func chooseRotation(seg Segment, n, cursor, colors int, done []placedSegment, sum *compiler.Summary) int {
	var rivals []int // start colors of conflicting placed segments
	for _, d := range done {
		if d.seg.CPUSet&seg.CPUSet == 0 {
			continue
		}
		sameArray := d.seg.Array == seg.Array
		if !sameArray && !sum.Grouped(d.seg.Array.Name, seg.Array.Name) {
			continue
		}
		// Overlap in the cache: color ranges intersect. A segment of n
		// pages starting at cursor covers min(n, colors) colors.
		if !colorRangesOverlap(d.startColor, d.seg.Pages(), cursor, n, colors) {
			continue
		}
		rivals = append(rivals, d.startColor)
	}
	if len(rivals) == 0 {
		return 0
	}
	bestRot, bestDist := 0, -1
	for rot := 0; rot < n; rot++ {
		first := (cursor + ((n - rot) % n)) % colors
		dist := colors
		for _, r := range rivals {
			if d := circDist(first, r, colors); d < dist {
				dist = d
			}
		}
		if dist > bestDist {
			bestDist, bestRot = dist, rot
		}
	}
	return bestRot
}

// colorRangesOverlap reports whether two circular color ranges intersect.
func colorRangesOverlap(start1, len1, start2, len2, c int) bool {
	if len1 >= c || len2 >= c {
		return true
	}
	// Normalize and check on the circle.
	s1, s2 := start1%c, start2%c
	for _, pair := range [][2]int{{s1, s2}, {s2, s1}} {
		a, al := pair[0], len1
		b := pair[1]
		if pair[0] == s2 {
			al = len2
		}
		if (b-a+c)%c < al {
			return true
		}
	}
	return false
}

// circDist is the circular distance between two colors.
func circDist(a, b, c int) int {
	d := (a - b + c) % c
	if d > c-d {
		d = c - d
	}
	return d
}
