package core
