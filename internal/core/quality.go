package core

import (
	"fmt"
	"math/bits"
	"strings"
)

// Quality quantifies a hint set against the §5.2 objectives: how evenly
// each processor's pages spread across the colors (objective 1), and
// whether group-accessed starting locations were separated (objective 2
// is visible as MaxLoad staying near ceil(pages/colors)).
type Quality struct {
	NumCPUs   int
	NumColors int

	// PerCPU[i] summarizes processor i's color histogram.
	PerCPU []CPUQuality
}

// CPUQuality is one processor's color-balance summary.
type CPUQuality struct {
	Pages      int     // pages the processor accesses (incl. shared)
	ColorsUsed int     // distinct colors among them
	MaxLoad    int     // most pages on any single color
	Balance    float64 // ideal max load / actual max load, 1.0 = perfect
}

// Evaluate computes the quality of hints against the step-1 segments
// recorded in them.
func (h *Hints) Evaluate(ncpu int) *Quality {
	q := &Quality{NumCPUs: ncpu, NumColors: h.NumColors, PerCPU: make([]CPUQuality, ncpu)}
	for cpu := 0; cpu < ncpu; cpu++ {
		hist := make([]int, h.NumColors)
		pages := 0
		for _, seg := range h.Segments {
			if seg.CPUSet&(1<<uint(cpu)) == 0 {
				continue
			}
			for vpn := seg.LoVPN; vpn < seg.HiVPN; vpn++ {
				color, ok := h.Colors[vpn]
				if !ok {
					continue
				}
				hist[color]++
				pages++
			}
		}
		cq := CPUQuality{Pages: pages}
		for _, n := range hist {
			if n > 0 {
				cq.ColorsUsed++
			}
			if n > cq.MaxLoad {
				cq.MaxLoad = n
			}
		}
		if cq.MaxLoad > 0 {
			ideal := (pages + h.NumColors - 1) / h.NumColors
			cq.Balance = float64(ideal) / float64(cq.MaxLoad)
		}
		q.PerCPU[cpu] = cq
	}
	return q
}

// WorstBalance returns the minimum per-CPU balance (1.0 = every
// processor's pages spread perfectly).
func (q *Quality) WorstBalance() float64 {
	worst := 1.0
	for _, c := range q.PerCPU {
		if c.Pages > 0 && c.Balance < worst {
			worst = c.Balance
		}
	}
	return worst
}

// String renders a per-CPU summary table.
func (q *Quality) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "hint quality (%d colors):\n", q.NumColors)
	for cpu, c := range q.PerCPU {
		fmt.Fprintf(&b, "  cpu%02d: %3d pages on %2d colors, max %d per color (balance %.2f)\n",
			cpu, c.Pages, c.ColorsUsed, c.MaxLoad, c.Balance)
	}
	return b.String()
}

// SharedWith reports how many of cpu's pages it shares with other
// processors (boundary pages), a measure of communication exposure.
func (h *Hints) SharedWith(cpu int) int {
	shared := 0
	for _, seg := range h.Segments {
		if seg.CPUSet&(1<<uint(cpu)) == 0 {
			continue
		}
		if bits.OnesCount64(seg.CPUSet) > 1 {
			shared += seg.Pages()
		}
	}
	return shared
}
