// Package core implements compiler-directed page coloring (CDPC), the
// paper's contribution: the run-time algorithm of §5.2 that turns the
// compiler's access-pattern summaries plus machine-specific parameters
// into a preferred color for each virtual page. The resulting hints are
// handed to the operating system through vm.AddressSpace.Advise (the
// paper's single madvise-like system call) or realized by touching pages
// in hint order on top of a bin-hopping policy (the Digital UNIX path).
//
// The five steps, following the paper exactly:
//
//  1. Create the uniform access segments: maximal virtual-address ranges
//     accessed by a single set of processors, computed from the array
//     partitioning and communication summaries and start-up parameters.
//  2. Order the uniform access sets (groups of segments with identical
//     processor sets) along a greedy path that clusters each processor's
//     pages: sets with overlapping processor sets are placed adjacently.
//  3. Order the segments within each set so that group-accessed arrays
//     land near each other.
//  4. Order the pages within each segment cyclically, choosing the start
//     point to space the starting locations of conflicting segments
//     across the range of colors.
//  5. Assign colors to the final page sequence in round-robin order.
package core
