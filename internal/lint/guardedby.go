package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"regexp"
	"strings"
)

// GuardedByAnalyzer enforces the repo's mutex discipline. A struct
// field carrying a "// guarded by <mu>" comment may only be read or
// written while the named mutex field of the same struct value is
// held. The analyzer tracks lock state by walking each function body
// in order:
//
//   - x.mu.Lock() / x.mu.RLock() acquires x.mu; x.mu.Unlock() /
//     x.mu.RUnlock() releases it; "defer x.mu.Unlock()" leaves it held
//     for the rest of the function;
//   - branches of an if/switch are analyzed separately and the lock
//     sets are intersected where they rejoin; a branch that returns
//     does not constrain the code after the statement;
//   - function literals and go statements start with no locks held —
//     the goroutine does not inherit its creator's critical section;
//   - methods whose name ends in "Locked" are assumed to be called
//     with the receiver's mutexes held, the usual convention for
//     lock-free-internal helpers;
//   - composite-literal keys are construction, not access, and are
//     always allowed (the value does not yet escape).
//
// The analysis is intra-procedural and conservative: passing a guarded
// struct to a helper that locks internally reads as unguarded access
// at any field use inside the helper only if that helper itself
// touches the field outside a critical section.
var GuardedByAnalyzer = &Analyzer{
	Name: "guardedby",
	Doc:  "fields annotated \"guarded by mu\" must only be accessed with the named mutex held",
	Run:  runGuardedBy,
}

var guardedByRe = regexp.MustCompile(`(?i)guarded by (\w+)`)

// guardSpec records one annotated field: which struct it belongs to and
// which sibling field is its mutex.
type guardSpec struct {
	structObj types.Object // the struct's type name
	mutex     string       // sibling mutex field name
}

func runGuardedBy(pass *Pass) {
	guards := collectGuards(pass)
	if len(guards) == 0 {
		return
	}
	// structMutexes[structObj] = set of mutex field names used by its
	// annotations, for seeding *Locked methods.
	structMutexes := map[types.Object]map[string]bool{}
	for _, g := range guards {
		if structMutexes[g.structObj] == nil {
			structMutexes[g.structObj] = map[string]bool{}
		}
		structMutexes[g.structObj][g.mutex] = true
	}
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fl := &guardFlow{pass: pass, guards: guards}
			locks := lockSet{}
			if strings.HasSuffix(fd.Name.Name, "Locked") && fd.Recv != nil && len(fd.Recv.List) == 1 && len(fd.Recv.List[0].Names) == 1 {
				recv := fd.Recv.List[0].Names[0].Name
				if st := recvStructObj(pass, fd); st != nil {
					for mu := range structMutexes[st] {
						locks[recv+"."+mu] = true
					}
				}
			}
			fl.stmts(fd.Body.List, locks)
		}
	}
}

// collectGuards parses "guarded by <mu>" field comments into a map from
// field object to its guard spec, reporting annotations that name a
// mutex field the struct does not have.
func collectGuards(pass *Pass) map[*types.Var]guardSpec {
	guards := map[*types.Var]guardSpec{}
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				structObj := pass.Info().Defs[ts.Name]
				fieldNames := map[string]bool{}
				for _, fld := range st.Fields.List {
					for _, n := range fld.Names {
						fieldNames[n.Name] = true
					}
				}
				for _, fld := range st.Fields.List {
					mu := guardAnnotation(fld)
					if mu == "" {
						continue
					}
					if !fieldNames[mu] {
						pass.Reportf(fld.Pos(), "guarded-by annotation names %q but struct %s has no such field", mu, ts.Name.Name)
						continue
					}
					for _, n := range fld.Names {
						if v, ok := pass.Info().Defs[n].(*types.Var); ok {
							guards[v] = guardSpec{structObj: structObj, mutex: mu}
						}
					}
				}
			}
		}
	}
	return guards
}

// guardAnnotation extracts the mutex name from a field's doc or line
// comment, or "".
func guardAnnotation(fld *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{fld.Doc, fld.Comment} {
		if cg == nil {
			continue
		}
		if m := guardedByRe.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

// recvStructObj resolves a method's receiver to its struct type name.
func recvStructObj(pass *Pass, fd *ast.FuncDecl) types.Object {
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	// Strip generic instantiation if present.
	if ix, ok := t.(*ast.IndexExpr); ok {
		t = ix.X
	}
	id, ok := t.(*ast.Ident)
	if !ok {
		return nil
	}
	return pass.Info().Uses[id]
}

// lockSet maps a mutex path key ("j.mu", "s.store.mu") to held.
type lockSet map[string]bool

func (l lockSet) clone() lockSet {
	c := make(lockSet, len(l))
	for k, v := range l {
		c[k] = v
	}
	return c
}

func intersect(a, b lockSet) lockSet {
	out := lockSet{}
	for k := range a {
		if b[k] {
			out[k] = true
		}
	}
	return out
}

// guardFlow is the per-function walker.
type guardFlow struct {
	pass   *Pass
	guards map[*types.Var]guardSpec
}

// stmts flows a statement list; it returns the lock set at fall-through
// and whether the list always terminates (return/panic in every path).
func (fl *guardFlow) stmts(list []ast.Stmt, locks lockSet) (lockSet, bool) {
	for _, s := range list {
		var term bool
		locks, term = fl.stmt(s, locks)
		if term {
			return locks, true
		}
	}
	return locks, false
}

func (fl *guardFlow) stmt(s ast.Stmt, locks lockSet) (lockSet, bool) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if key, op := lockOp(s.X); key != "" {
			// Check the receiver chain itself, then apply the transition.
			switch op {
			case "Lock", "RLock":
				locks = locks.clone()
				locks[key] = true
			case "Unlock", "RUnlock":
				locks = locks.clone()
				delete(locks, key)
			}
			return locks, false
		}
		fl.expr(s.X, locks)
		return locks, fl.isTerminatingCall(s.X)
	case *ast.DeferStmt:
		if key, op := lockOp(s.Call); key != "" && (op == "Unlock" || op == "RUnlock") {
			// The unlock runs at function exit; the lock stays held here.
			return locks, false
		}
		fl.expr(s.Call, locks)
		return locks, false
	case *ast.GoStmt:
		fl.expr(s.Call, lockSet{})
		return locks, false
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			fl.expr(e, locks)
		}
		return locks, true
	case *ast.BranchStmt:
		// break/continue/goto: treat as terminating this path so the
		// fall-through merge is not polluted.
		return locks, true
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			fl.expr(e, locks)
		}
		for _, e := range s.Lhs {
			fl.expr(e, locks)
		}
		return locks, false
	case *ast.DeclStmt, *ast.IncDecStmt, *ast.SendStmt, *ast.LabeledStmt:
		fl.exprsIn(s, locks)
		if ls, ok := s.(*ast.LabeledStmt); ok {
			return fl.stmt(ls.Stmt, locks)
		}
		return locks, false
	case *ast.BlockStmt:
		return fl.stmts(s.List, locks)
	case *ast.IfStmt:
		if s.Init != nil {
			locks, _ = fl.stmt(s.Init, locks)
		}
		fl.expr(s.Cond, locks)
		thenOut, thenTerm := fl.stmts(s.Body.List, locks.clone())
		elseOut, elseTerm := locks, false
		if s.Else != nil {
			elseOut, elseTerm = fl.stmt(s.Else, locks.clone())
		}
		switch {
		case thenTerm && elseTerm:
			return locks, true
		case thenTerm:
			return elseOut, false
		case elseTerm:
			return thenOut, false
		default:
			return intersect(thenOut, elseOut), false
		}
	case *ast.ForStmt:
		if s.Init != nil {
			locks, _ = fl.stmt(s.Init, locks)
		}
		if s.Cond != nil {
			fl.expr(s.Cond, locks)
		}
		bodyOut, _ := fl.stmts(s.Body.List, locks.clone())
		if s.Post != nil {
			fl.stmt(s.Post, bodyOut)
		}
		if s.Cond == nil {
			// for {} only exits via break/return; locks after the loop are
			// whatever the body holds at its exits — be conservative.
			return intersect(locks, bodyOut), false
		}
		return intersect(locks, bodyOut), false
	case *ast.RangeStmt:
		fl.expr(s.X, locks)
		bodyOut, _ := fl.stmts(s.Body.List, locks.clone())
		return intersect(locks, bodyOut), false
	case *ast.SwitchStmt:
		if s.Init != nil {
			locks, _ = fl.stmt(s.Init, locks)
		}
		if s.Tag != nil {
			fl.expr(s.Tag, locks)
		}
		return fl.caseBodies(s.Body, locks, false)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			locks, _ = fl.stmt(s.Init, locks)
		}
		fl.exprsIn(s.Assign, locks)
		return fl.caseBodies(s.Body, locks, false)
	case *ast.SelectStmt:
		return fl.caseBodies(s.Body, locks, true)
	default:
		fl.exprsIn(s, locks)
		return locks, false
	}
}

// caseBodies flows each case clause from the same entry state and
// intersects the non-terminating exits. hasDefault-less switches can
// fall through with no case taken, so the entry state joins the merge
// unless the statement is a select (which always takes a case).
func (fl *guardFlow) caseBodies(body *ast.BlockStmt, locks lockSet, isSelect bool) (lockSet, bool) {
	var outs []lockSet
	hasDefault := false
	for _, cs := range body.List {
		var stmts []ast.Stmt
		switch cs := cs.(type) {
		case *ast.CaseClause:
			for _, e := range cs.List {
				fl.expr(e, locks)
			}
			if cs.List == nil {
				hasDefault = true
			}
			stmts = cs.Body
		case *ast.CommClause:
			if cs.Comm != nil {
				fl.stmt(cs.Comm, locks.clone())
			} else {
				hasDefault = true
			}
			stmts = cs.Body
		}
		out, term := fl.stmts(stmts, locks.clone())
		if !term {
			outs = append(outs, out)
		}
	}
	if !hasDefault && !isSelect {
		outs = append(outs, locks)
	}
	if len(outs) == 0 {
		return locks, true
	}
	merged := outs[0]
	for _, o := range outs[1:] {
		merged = intersect(merged, o)
	}
	return merged, false
}

// expr checks every guarded-field access inside e against the current
// lock set. Function literals passed directly to a call (sort.Slice
// comparators and the like) run synchronously and inherit the caller's
// locks; literals that are stored, returned or launched with go start
// with an empty set, since they may outlive the critical section.
func (fl *guardFlow) expr(e ast.Expr, locks lockSet) {
	if e == nil {
		return
	}
	syncLits := map[*ast.FuncLit]bool{}
	ast.Inspect(e, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if lit, ok := call.Fun.(*ast.FuncLit); ok {
				syncLits[lit] = true
			}
			for _, arg := range call.Args {
				if lit, ok := arg.(*ast.FuncLit); ok {
					syncLits[lit] = true
				}
			}
		}
		return true
	})
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			entry := lockSet{}
			if syncLits[n] {
				entry = locks.clone()
			}
			fl.stmts(n.Body.List, entry)
			return false
		case *ast.CompositeLit:
			// Keys are construction; values still get checked.
			for _, el := range n.Elts {
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					fl.expr(kv.Value, locks)
				} else {
					fl.expr(el, locks)
				}
			}
			return false
		case *ast.SelectorExpr:
			fl.checkAccess(n, locks)
		}
		return true
	})
}

// exprsIn applies expr to every expression directly under a statement
// the flow walker has no special handling for.
func (fl *guardFlow) exprsIn(s ast.Stmt, locks lockSet) {
	ast.Inspect(s, func(n ast.Node) bool {
		if e, ok := n.(ast.Expr); ok {
			fl.expr(e, locks)
			return false
		}
		return true
	})
}

// checkAccess reports sel if it reads a guarded field while its mutex
// key is not held.
func (fl *guardFlow) checkAccess(sel *ast.SelectorExpr, locks lockSet) {
	obj, ok := fl.pass.Info().Uses[sel.Sel].(*types.Var)
	if !ok {
		return
	}
	g, guarded := fl.guards[obj]
	if !guarded {
		return
	}
	base, ok := exprKey(sel.X)
	if !ok {
		return
	}
	key := base + "." + g.mutex
	if !locks[key] {
		fl.pass.Reportf(sel.Sel.Pos(), "access to %s.%s without holding %s", base, obj.Name(), key)
	}
}

// lockOp recognizes a x.mu.Lock/RLock/Unlock/RUnlock call and returns
// the mutex path key and the operation name.
func lockOp(e ast.Expr) (key, op string) {
	call, ok := e.(*ast.CallExpr)
	if !ok || len(call.Args) != 0 {
		return "", ""
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", ""
	}
	k, ok := exprKey(sel.X)
	if !ok {
		return "", ""
	}
	return k, sel.Sel.Name
}

// isTerminatingCall reports whether e is a call that never returns
// (panic, or a Fatal-style method).
func (fl *guardFlow) isTerminatingCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		return strings.HasPrefix(fun.Sel.Name, "Fatal")
	}
	return false
}

// exprKey renders a chain of identifiers and field selectors as a
// stable string path ("j.mu", "s.store.mu"); anything else (calls,
// index expressions) is untrackable.
func exprKey(e ast.Expr) (string, bool) {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name, true
	case *ast.ParenExpr:
		return exprKey(e.X)
	case *ast.StarExpr:
		return exprKey(e.X)
	case *ast.SelectorExpr:
		base, ok := exprKey(e.X)
		if !ok {
			return "", false
		}
		return fmt.Sprintf("%s.%s", base, e.Sel.Name), true
	default:
		return "", false
	}
}
