package lint

import (
	"os"
	"path/filepath"
	"regexp"
	"testing"

	"repro/internal/arch"
)

// machinesHeading matches the per-topology sections of MACHINES.md:
// a level-3 heading whose title is exactly one backticked name.
var machinesHeading = regexp.MustCompile("(?m)^### `([a-z0-9-]+)`\\s*$")

// TestMachinesDocCoversEveryTopology is the golden cross-check between
// MACHINES.md's "Shipped topologies" sections and the registered
// topology names, in both directions: a topology added to
// arch.topologyBuilders without documentation fails, and so does a
// documented section whose topology was renamed or removed.
func TestMachinesDocCoversEveryTopology(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("..", "..", "MACHINES.md"))
	if err != nil {
		t.Fatalf("reading MACHINES.md: %v", err)
	}
	documented := map[string]bool{}
	for _, m := range machinesHeading.FindAllStringSubmatch(string(data), -1) {
		documented[m[1]] = true
	}
	if len(documented) == 0 {
		t.Fatal("no `### `name`` topology sections parsed from MACHINES.md")
	}

	names := arch.TopologyNames()
	if len(names) == 0 {
		t.Fatal("arch.TopologyNames returned nothing")
	}
	registered := map[string]bool{}
	for _, n := range names {
		registered[n] = true
		if !documented[n] {
			t.Errorf("topology %q is registered but has no `### `%s`` section in MACHINES.md", n, n)
		}
	}
	for n := range documented {
		if !registered[n] {
			t.Errorf("MACHINES.md documents topology %q but arch registers no such name", n)
		}
	}
}
