package lint

import (
	"go/ast"
	"go/types"
)

// TopoAccessAnalyzer confines LLC geometry knowledge to internal/arch.
// Since the declarative topology model landed, Config.L2 describes only
// the default machine's external cache; the effective hierarchy — its
// last level's size, line size, slicing, and color count — lives behind
// Config.Topo(), Config.Colors() and Config.FrameColor(). Code outside
// internal/arch that reads the L2 field directly bakes the two-level
// assumption back in: on clustered-l3 it sees half the real LLC, on
// sliced-llc4 it confuses per-slice and total capacity, and any color
// arithmetic derived from it disagrees with the hash-sliced frame
// coloring (the Sandy Bridge family) the simulator actually applies.
//
// A read of arch.Config's L2 field outside internal/arch is therefore a
// finding, with one exemption: reads inside a composite literal of an
// arch-declared type (arch.CacheGeometry{Size: base.L2.Size * 4, ...})
// are machine *construction* — defining a new configuration relative to
// an old one — not geometry consumption. Writes to the field are
// construction by the same argument.
var TopoAccessAnalyzer = &Analyzer{
	Name: "topoaccess",
	Doc:  "outside internal/arch, LLC geometry must come from Topo()/Colors()/FrameColor(), not the raw Config.L2 field",
	Run:  runTopoAccess,
}

func runTopoAccess(pass *Pass) {
	if pathHasSuffix(pass.Pkg.Path, "internal/arch") {
		return
	}
	archPkg := pass.Prog.Lookup("internal/arch")
	if archPkg == nil {
		return
	}
	l2 := fieldVar(archPkg, "Config", "L2")
	if l2 == nil {
		return
	}
	info := pass.Pkg.Info

	for _, f := range pass.Pkg.Files {
		// Manual stack so the exemption can look upward from a hit to an
		// enclosing arch composite literal or assignment LHS.
		var stack []ast.Node
		ast.Inspect(f, func(node ast.Node) bool {
			if node == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, node)
			id, ok := node.(*ast.Ident)
			if !ok || info.Uses[id] != l2 {
				return true
			}
			if exemptL2Use(info, archPkg, stack) {
				return true
			}
			pass.Reportf(id.Pos(),
				"direct Config.L2 geometry read outside internal/arch: use Config.Topo().LLC() (TotalSize, Geom, FrameColor) or Config.Colors() so clustered and sliced topologies are honored")
			return true
		})
	}
}

// exemptL2Use reports whether the L2 identifier at the top of the stack
// is machine construction rather than geometry consumption: inside a
// composite literal of an arch type, or on the left of an assignment.
func exemptL2Use(info *types.Info, archPkg *Package, stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		switch outer := stack[i].(type) {
		case *ast.CompositeLit:
			tv, ok := info.Types[outer]
			if !ok {
				continue
			}
			t := tv.Type
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			if named, ok := types.Unalias(t).(*types.Named); ok &&
				named.Obj().Pkg() == archPkg.Types {
				return true
			}
		case *ast.AssignStmt:
			// The hit is a write iff it sits under an LHS expression.
			if i+1 < len(stack) {
				for _, lhs := range outer.Lhs {
					if lhs == stack[i+1] {
						return true
					}
				}
			}
		}
	}
	return false
}
