package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// TestAPIMDCoversEveryErrorCode is the golden cross-check between the
// repository's API.md error table and the server's declared Code*
// constant set, in both directions. The errcode analyzer enforces the
// same contract inside cdpcvet; this test keeps the guarantee alive
// under plain `go test ./...` as well, and pins down the shared table
// parser with a known-good document.
func TestAPIMDCoversEveryErrorCode(t *testing.T) {
	root := filepath.Join("..", "..")
	declared := serverCodes(t, filepath.Join(root, "internal", "server", "api.go"))
	if len(declared) == 0 {
		t.Fatal("no Code* constants found in internal/server/api.go")
	}
	data, err := os.ReadFile(filepath.Join(root, "API.md"))
	if err != nil {
		t.Fatalf("reading API.md: %v", err)
	}
	documented := parseAPIMDCodes(data)
	if len(documented) == 0 {
		t.Fatal("no code rows parsed from API.md's Error responses table")
	}
	for code, name := range declared {
		if !documented[code] {
			t.Errorf("error code %q (%s) is declared but missing from API.md's error table", code, name)
		}
	}
	for code := range documented {
		if _, ok := declared[code]; !ok {
			t.Errorf("API.md documents error code %q but internal/server declares no such constant", code)
		}
	}
}

// serverCodes parses the api file syntactically and returns its Code*
// string constants as value -> constant name.
func serverCodes(t *testing.T, path string) map[string]string {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path, nil, 0)
	if err != nil {
		t.Fatalf("parsing %s: %v", path, err)
	}
	codes := map[string]string{}
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.CONST {
			continue
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for i, name := range vs.Names {
				if !strings.HasPrefix(name.Name, "Code") || len(name.Name) == len("Code") || i >= len(vs.Values) {
					continue
				}
				lit, ok := vs.Values[i].(*ast.BasicLit)
				if !ok || lit.Kind != token.STRING {
					continue
				}
				v, err := strconv.Unquote(lit.Value)
				if err != nil {
					t.Fatalf("unquoting %s: %v", lit.Value, err)
				}
				codes[v] = name.Name
			}
		}
	}
	return codes
}
