package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Package is one type-checked package of the module under analysis.
// Only non-test files are loaded: the invariants cdpcvet enforces are
// about shipped simulation and serving code, and _test.go files are
// where nondeterminism (timing, randomized property inputs) is
// legitimate.
type Package struct {
	Path  string // import path
	Name  string // package name
	Dir   string // absolute directory
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	imports []string // module-internal imports, for topological ordering
}

// Program is a whole loaded module: every package, type-checked in
// dependency order against one shared FileSet. Cross-package analyzers
// (statsconserve couples sim to report, errcode couples server to
// API.md) reach sibling packages through it.
type Program struct {
	Fset     *token.FileSet
	ModPath  string
	ModRoot  string
	Packages []*Package // topological (dependencies first)
	ByPath   map[string]*Package

	cg *CallGraph // built on first CallGraph() call, shared by analyzers
}

// Lookup returns the loaded package whose import path ends with the
// given slash-separated suffix (e.g. "internal/report"), or nil.
func (p *Program) Lookup(suffix string) *Package {
	for _, pkg := range p.Packages {
		if pathHasSuffix(pkg.Path, suffix) {
			return pkg
		}
	}
	return nil
}

// pathHasSuffix reports whether import path has the given suffix on a
// path-segment boundary.
func pathHasSuffix(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

// Load parses and type-checks every non-test package of the module
// rooted at (or above) dir. Imports within the module resolve to the
// packages being loaded; everything else (the standard library) is
// type-checked on demand through the source importer, so no compiled
// export data is required.
func Load(dir string) (*Program, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	modRoot, modPath, err := findModule(abs)
	if err != nil {
		return nil, err
	}
	prog := &Program{
		Fset:    token.NewFileSet(),
		ModPath: modPath,
		ModRoot: modRoot,
		ByPath:  map[string]*Package{},
	}

	var pkgs []*Package
	err = filepath.WalkDir(modRoot, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != modRoot && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		pkg, err := parseDir(prog.Fset, path)
		if err != nil {
			return err
		}
		if pkg == nil {
			return nil
		}
		rel, err := filepath.Rel(modRoot, path)
		if err != nil {
			return err
		}
		pkg.Path = modPath
		if rel != "." {
			pkg.Path = modPath + "/" + filepath.ToSlash(rel)
		}
		for _, f := range pkg.Files {
			for _, imp := range f.Imports {
				ip, _ := strconv.Unquote(imp.Path.Value)
				if ip == modPath || strings.HasPrefix(ip, modPath+"/") {
					pkg.imports = append(pkg.imports, ip)
				}
			}
		}
		pkgs = append(pkgs, pkg)
		prog.ByPath[pkg.Path] = pkg
		return nil
	})
	if err != nil {
		return nil, err
	}

	ordered, err := topoSort(pkgs, prog.ByPath)
	if err != nil {
		return nil, err
	}
	imp := &moduleImporter{
		prog: prog,
		std:  importer.ForCompiler(prog.Fset, "source", nil),
	}
	for _, pkg := range ordered {
		if err := typeCheck(prog.Fset, pkg, imp); err != nil {
			return nil, fmt.Errorf("%s: %w", pkg.Path, err)
		}
		prog.Packages = append(prog.Packages, pkg)
	}
	return prog, nil
}

// findModule walks up from dir to the enclosing go.mod and returns the
// module root and module path.
func findModule(dir string) (root, path string, err error) {
	for d := dir; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module"); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod has no module line", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("lint: no go.mod at or above %s", dir)
		}
		d = parent
	}
}

// parseDir parses the non-test Go files of one directory; nil if the
// directory holds no buildable Go files.
func parseDir(fset *token.FileSet, dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") ||
			strings.HasPrefix(n, ".") || strings.HasPrefix(n, "_") {
			continue
		}
		names = append(names, n)
	}
	if len(names) == 0 {
		return nil, nil
	}
	sort.Strings(names)
	pkg := &Package{Dir: dir}
	for _, n := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, n), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		if pkg.Name == "" {
			pkg.Name = f.Name.Name
		}
		if f.Name.Name != pkg.Name {
			// Mixed-package directory (e.g. a main + package dir); keep the
			// first package's files only.
			continue
		}
		pkg.Files = append(pkg.Files, f)
	}
	return pkg, nil
}

// topoSort orders packages dependencies-first.
func topoSort(pkgs []*Package, byPath map[string]*Package) ([]*Package, error) {
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	const (
		unvisited = iota
		visiting
		done
	)
	state := map[*Package]int{}
	var out []*Package
	var visit func(p *Package) error
	visit = func(p *Package) error {
		switch state[p] {
		case done:
			return nil
		case visiting:
			return fmt.Errorf("lint: import cycle through %s", p.Path)
		}
		state[p] = visiting
		for _, ip := range p.imports {
			if dep, ok := byPath[ip]; ok {
				if err := visit(dep); err != nil {
					return err
				}
			}
		}
		state[p] = done
		out = append(out, p)
		return nil
	}
	for _, p := range pkgs {
		if err := visit(p); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// moduleImporter resolves module-internal imports to the packages
// already checked this run and defers everything else to the source
// importer.
type moduleImporter struct {
	prog *Program
	std  types.Importer
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := m.prog.ByPath[path]; ok {
		if pkg.Types == nil {
			return nil, fmt.Errorf("lint: import %s not yet type-checked (cycle?)", path)
		}
		return pkg.Types, nil
	}
	return m.std.Import(path)
}

// typeCheck runs go/types over one parsed package.
func typeCheck(fset *token.FileSet, pkg *Package, imp types.Importer) error {
	pkg.Info = &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(pkg.Path, fset, pkg.Files, pkg.Info)
	if err != nil {
		return err
	}
	pkg.Types = tpkg
	return nil
}
