package lint

import (
	"go/types"
)

// MemoKeyAnalyzer keeps the scheduler's memo key in lockstep with the
// Spec it summarizes. The memo cache serves whole simulation results by
// specKey equality, so the keying contract has two directions:
//
//   - every exported field of harness.Spec and harness.CoRunner must be
//     consumed in the interprocedural closure of keyOf (through
//     withDefaults, processSpecs, CanSample, or any other helper it
//     calls) — a field keyOf never sees means two specs differing only
//     in that field share a memo slot, and one of them is served a
//     stale result fleet-wide;
//   - every field of specKey must be populated somewhere in that same
//     closure — a key field nothing writes is dead weight that reads as
//     coverage it does not provide.
//
// Unexported Spec fields are out of scope (callers cannot set them), as
// is any package that does not declare all three of Spec, specKey and
// keyOf — the analyzer anchors on that trio and stays silent elsewhere.
var MemoKeyAnalyzer = &Analyzer{
	Name: "memokey",
	Doc:  "every exported Spec/CoRunner field must feed keyOf, and every specKey field must be populated by it",
	Run:  runMemoKey,
}

func runMemoKey(pass *Pass) {
	pkg := pass.Pkg
	specFields := structFields(pkg, "Spec")
	keyFields := structFields(pkg, "specKey")
	keyObj := pkg.Types.Scope().Lookup("keyOf")
	if len(specFields) == 0 || len(keyFields) == 0 || keyObj == nil {
		return
	}
	cg := pass.Prog.CallGraph()
	root := cg.NodeOf(keyObj)
	if root == nil {
		return
	}
	roots := []*CGNode{root}
	reads := cg.ReadClosure(roots)
	writes := cg.WriteClosure(roots)

	check := func(owner string, fields []*types.Var) {
		for _, f := range fields {
			if !f.Exported() || reads[f] {
				continue
			}
			pass.Reportf(f.Pos(),
				"%s.%s is not consumed by keyOf (or any helper it calls): specs differing only in %s would share a memo slot and serve stale results",
				owner, f.Name(), f.Name())
		}
	}
	check("Spec", specFields)
	check("CoRunner", structFields(pkg, "CoRunner"))

	for _, f := range keyFields {
		if writes[f] {
			continue
		}
		pass.Reportf(f.Pos(),
			"specKey.%s is never populated by keyOf: the field suggests keying coverage it does not provide", f.Name())
	}
}
