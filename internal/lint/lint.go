package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named invariant checker, in the mold of
// golang.org/x/tools/go/analysis but self-contained: Run is invoked
// once per loaded package and reports findings through the pass.
type Analyzer struct {
	Name string // short lowercase identifier, used in output and suppressions
	Doc  string // one-line summary of the invariant
	Run  func(*Pass)
}

// Pass carries one (analyzer, package) unit of work.
type Pass struct {
	Analyzer *Analyzer
	Prog     *Program
	Pkg      *Package

	diags *[]Diagnostic
}

// Fset returns the program's shared FileSet.
func (p *Pass) Fset() *token.FileSet { return p.Prog.Fset }

// Info returns the package's type information.
func (p *Pass) Info() *types.Info { return p.Pkg.Info }

// Reportf records a diagnostic at pos unless a suppression comment
// covers it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Prog.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Analyzers returns the full cdpcvet suite.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		DeterminismAnalyzer,
		StatsConserveAnalyzer,
		GuardedByAnalyzer,
		ErrCodeAnalyzer,
		Pow2GeomAnalyzer,
		MemoKeyAnalyzer,
		CancelPollAnalyzer,
		TopoAccessAnalyzer,
		ScaleConserveAnalyzer,
	}
}

// RunAnalyzers runs every analyzer over every package of prog and
// returns the surviving (non-suppressed) diagnostics in file/line
// order, deduplicated so the output is a stable CI artifact.
func RunAnalyzers(prog *Program, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, a := range analyzers {
		for _, pkg := range prog.Packages {
			pass := &Pass{Analyzer: a, Prog: prog, Pkg: pkg, diags: &diags}
			a.Run(pass)
		}
	}
	diags = filterSuppressed(prog, diags)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	// Dedupe identical findings at one position: cross-package analyzers
	// can rediscover the same fact from two passes, and position-equal
	// repeats would make CI diffs churn. After the sort above, the first
	// survivor is the alphabetically first analyzer.
	kept := diags[:0]
	for i, d := range diags {
		if i > 0 {
			p := diags[i-1]
			if p.Pos.Filename == d.Pos.Filename && p.Pos.Line == d.Pos.Line &&
				p.Pos.Column == d.Pos.Column && p.Message == d.Message {
				continue
			}
		}
		kept = append(kept, d)
	}
	return kept
}

// suppression is one //lint:allow comment resolved to the extent of the
// single statement (or struct field / spec) it governs.
type suppression struct {
	analyzer string
	file     string
	from, to int // inclusive line range
}

// filterSuppressed drops diagnostics covered by a
// "//lint:allow <analyzer> (reason)" comment. A suppression is scoped
// to exactly one syntax node: the statement carrying the comment at the
// end of its line, or — for a comment on its own line — the statement
// beginning on the next line. The node's full extent is covered (a
// suppressed multi-line statement is suppressed on every line), and
// nothing else is: a stray or file-leading comment with no adjacent
// statement suppresses nothing. Suppressions are per-analyzer and
// deliberate: the reason in parentheses is for the reviewer.
func filterSuppressed(prog *Program, diags []Diagnostic) []Diagnostic {
	var sups []suppression
	for _, pkg := range prog.Packages {
		for _, f := range pkg.Files {
			sups = append(sups, fileSuppressions(prog.Fset, f)...)
		}
	}
	kept := diags[:0]
	for _, d := range diags {
		ok := true
		for _, s := range sups {
			if s.analyzer == d.Analyzer && s.file == d.Pos.Filename &&
				s.from <= d.Pos.Line && d.Pos.Line <= s.to {
				ok = false
				break
			}
		}
		if ok {
			kept = append(kept, d)
		}
	}
	return kept
}

// fileSuppressions resolves every //lint:allow comment of one file to
// its governed statement's line extent.
func fileSuppressions(fset *token.FileSet, f *ast.File) []suppression {
	// Candidate nodes a suppression can attach to: statements, struct
	// fields and value/import specs — but not blocks or case clauses,
	// whose extents cover code the comment's author never pointed at.
	type candidate struct {
		from, to int
	}
	var cands []candidate
	ast.Inspect(f, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.BlockStmt, *ast.CaseClause, *ast.CommClause:
			return true
		case ast.Stmt, *ast.Field, ast.Spec:
			cands = append(cands, candidate{
				from: fset.Position(n.Pos()).Line,
				to:   fset.Position(n.End()).Line,
			})
		}
		return true
	})

	var sups []suppression
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			rest, ok := strings.CutPrefix(strings.TrimSpace(text), "lint:allow")
			if !ok {
				continue
			}
			fields := strings.Fields(rest)
			if len(fields) == 0 {
				continue
			}
			pos := fset.Position(c.Pos())
			// Attachment, in priority order: the outermost candidate
			// starting on the comment's line (trailing form); the
			// outermost starting on the next line (line-above form); the
			// innermost whose extent covers the comment (a trailing
			// comment inside a multi-line statement).
			best := candidate{}
			found := false
			pick := func(match func(candidate) bool, outermost bool) {
				for _, cand := range cands {
					if !match(cand) {
						continue
					}
					span, bestSpan := cand.to-cand.from, best.to-best.from
					if !found || (outermost && span > bestSpan) || (!outermost && span < bestSpan) {
						best, found = cand, true
					}
				}
			}
			pick(func(c candidate) bool { return c.from == pos.Line }, true)
			if !found {
				pick(func(c candidate) bool { return c.from == pos.Line+1 }, true)
			}
			if !found {
				pick(func(c candidate) bool { return c.from < pos.Line && pos.Line <= c.to }, false)
			}
			if !found {
				continue
			}
			sups = append(sups, suppression{
				analyzer: fields[0],
				file:     pos.Filename,
				from:     best.from,
				to:       best.to,
			})
		}
	}
	return sups
}

// funcBodies collects every function and method declaration of the
// package, keyed by its types.Object — shared plumbing for the
// analyzers that chase intra-package call graphs.
func funcBodies(pkg *Package) map[types.Object]*ast.FuncDecl {
	out := map[types.Object]*ast.FuncDecl{}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if obj := pkg.Info.Defs[fd.Name]; obj != nil {
				out[obj] = fd
			}
		}
	}
	return out
}

// structFields returns the named struct type's fields, or nil.
func structFields(pkg *Package, name string) []*types.Var {
	obj := pkg.Types.Scope().Lookup(name)
	if obj == nil {
		return nil
	}
	st, ok := obj.Type().Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	fields := make([]*types.Var, st.NumFields())
	for i := range fields {
		fields[i] = st.Field(i)
	}
	return fields
}

// isUint64 reports whether t's underlying type is uint64.
func isUint64(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == types.Uint64
}

// isUint64Slice reports whether t's underlying type is []uint64.
func isUint64Slice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	return ok && isUint64(s.Elem())
}
