package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named invariant checker, in the mold of
// golang.org/x/tools/go/analysis but self-contained: Run is invoked
// once per loaded package and reports findings through the pass.
type Analyzer struct {
	Name string // short lowercase identifier, used in output and suppressions
	Doc  string // one-line summary of the invariant
	Run  func(*Pass)
}

// Pass carries one (analyzer, package) unit of work.
type Pass struct {
	Analyzer *Analyzer
	Prog     *Program
	Pkg      *Package

	diags *[]Diagnostic
}

// Fset returns the program's shared FileSet.
func (p *Pass) Fset() *token.FileSet { return p.Prog.Fset }

// Info returns the package's type information.
func (p *Pass) Info() *types.Info { return p.Pkg.Info }

// Reportf records a diagnostic at pos unless a suppression comment
// covers it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Prog.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Analyzers returns the full cdpcvet suite.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		DeterminismAnalyzer,
		StatsConserveAnalyzer,
		GuardedByAnalyzer,
		ErrCodeAnalyzer,
		Pow2GeomAnalyzer,
	}
}

// RunAnalyzers runs every analyzer over every package of prog and
// returns the surviving (non-suppressed) diagnostics in file/line
// order.
func RunAnalyzers(prog *Program, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, a := range analyzers {
		for _, pkg := range prog.Packages {
			pass := &Pass{Analyzer: a, Prog: prog, Pkg: pkg, diags: &diags}
			a.Run(pass)
		}
	}
	diags = filterSuppressed(prog, diags)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}

// filterSuppressed drops diagnostics covered by a
// "//lint:allow <analyzer> (reason)" comment on the same line or the
// line directly above. Suppressions are per-analyzer and deliberate:
// the reason in parentheses is for the reviewer.
func filterSuppressed(prog *Program, diags []Diagnostic) []Diagnostic {
	// allowed["file:line"] = set of analyzer names.
	allowed := map[string]map[string]bool{}
	mark := func(file string, line int, name string) {
		for _, l := range []int{line, line + 1} {
			key := fmt.Sprintf("%s:%d", file, l)
			if allowed[key] == nil {
				allowed[key] = map[string]bool{}
			}
			allowed[key][name] = true
		}
	}
	for _, pkg := range prog.Packages {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimPrefix(c.Text, "//")
					rest, ok := strings.CutPrefix(strings.TrimSpace(text), "lint:allow")
					if !ok {
						continue
					}
					fields := strings.Fields(rest)
					if len(fields) == 0 {
						continue
					}
					pos := prog.Fset.Position(c.Pos())
					mark(pos.Filename, pos.Line, fields[0])
				}
			}
		}
	}
	kept := diags[:0]
	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
		if allowed[key][d.Analyzer] {
			continue
		}
		kept = append(kept, d)
	}
	return kept
}

// funcBodies collects every function and method declaration of the
// package, keyed by its types.Object — shared plumbing for the
// analyzers that chase intra-package call graphs.
func funcBodies(pkg *Package) map[types.Object]*ast.FuncDecl {
	out := map[types.Object]*ast.FuncDecl{}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if obj := pkg.Info.Defs[fd.Name]; obj != nil {
				out[obj] = fd
			}
		}
	}
	return out
}

// structFields returns the named struct type's fields, or nil.
func structFields(pkg *Package, name string) []*types.Var {
	obj := pkg.Types.Scope().Lookup(name)
	if obj == nil {
		return nil
	}
	st, ok := obj.Type().Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	fields := make([]*types.Var, st.NumFields())
	for i := range fields {
		fields[i] = st.Field(i)
	}
	return fields
}

// isUint64 reports whether t's underlying type is uint64.
func isUint64(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == types.Uint64
}
