package lint

import (
	"go/ast"
	"go/types"
	"strconv"
)

// DeterminismAnalyzer enforces the memo-cache soundness contract of the
// simulation and reporting packages (internal/sim, internal/harness,
// internal/report, internal/obs): a Spec fully determines its Result
// and its rendered output, byte for byte. Three bug classes break that
// silently and are rejected here:
//
//   - calls to time.Now (wall-clock time in a result or report);
//   - any use of math/rand or math/rand/v2 (unseeded process-global
//     randomness; the simulator's jitter uses explicit hashes instead);
//   - ranging over a map where the iteration order can flow into the
//     result or output.
//
// A map range is accepted when the analyzer can see it is order-
// insensitive: either every statement in the body is a commutative
// accumulation (+=, -=, *=, |=, &=, ^=, ++, --, or writes indexed by
// the iteration key), or the loop only appends to a slice that is
// sorted later in the same block. Anything else needs an explicit
// "//lint:allow determinism (reason)" with a justification.
var DeterminismAnalyzer = &Analyzer{
	Name: "determinism",
	Doc:  "forbid wall-clock time, global randomness and map-iteration order in simulation results and reports",
	Run:  runDeterminism,
}

// determinismScope is the set of packages whose outputs are memoized or
// diffed byte-for-byte.
var determinismScope = []string{
	"internal/sim",
	"internal/harness",
	"internal/report",
	"internal/obs",
}

func runDeterminism(pass *Pass) {
	inScope := false
	for _, s := range determinismScope {
		if pathHasSuffix(pass.Pkg.Path, s) {
			inScope = true
			break
		}
	}
	if !inScope {
		return
	}
	for _, f := range pass.Pkg.Files {
		for _, imp := range f.Imports {
			path, _ := strconv.Unquote(imp.Path.Value)
			if path == "math/rand" || path == "math/rand/v2" {
				pass.Reportf(imp.Pos(), "import of %s: process-global randomness breaks the deterministic-result contract; derive jitter from explicit hashes", path)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if isPkgFunc(pass.Info(), n.Fun, "time", "Now") {
					pass.Reportf(n.Pos(), "time.Now in a deterministic package: wall-clock time must not flow into results or reports")
				}
			case *ast.RangeStmt:
				checkMapRange(pass, f, n)
			}
			return true
		})
	}
}

// isPkgFunc reports whether fun is a selector resolving to the named
// function of the named standard-library package.
func isPkgFunc(info *types.Info, fun ast.Expr, pkgPath, name string) bool {
	sel, ok := fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	obj := info.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	return obj.Pkg().Path() == pkgPath
}

// checkMapRange flags a range over a map unless the loop body is
// provably order-insensitive.
func checkMapRange(pass *Pass, file *ast.File, rs *ast.RangeStmt) {
	tv, ok := pass.Info().Types[rs.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	if orderInsensitiveBody(pass, rs) || appendThenSorted(pass, file, rs) {
		return
	}
	pass.Reportf(rs.Pos(), "map iteration order flows into results/output; iterate a sorted key slice, accumulate commutatively, or sort afterwards")
}

// orderInsensitiveBody reports whether every statement of the range
// body is a commutative accumulation: op-assignments with commutative
// operators, increments/decrements, assignments whose target is
// indexed by the loop's key variable, or if-statements (min/max
// selection) whose bodies satisfy the same rule.
func orderInsensitiveBody(pass *Pass, rs *ast.RangeStmt) bool {
	keyObj := rangeKeyObj(pass, rs)
	var stmtOK func(s ast.Stmt) bool
	stmtOK = func(s ast.Stmt) bool {
		switch s := s.(type) {
		case *ast.IncDecStmt:
			return true
		case *ast.AssignStmt:
			switch s.Tok.String() {
			case "+=", "-=", "*=", "|=", "&=", "^=":
				// Numeric accumulation commutes; string += is
				// concatenation and very much does not.
				if len(s.Lhs) != 1 {
					return false
				}
				tv, ok := pass.Info().Types[s.Lhs[0]]
				if !ok {
					return false
				}
				b, ok := tv.Type.Underlying().(*types.Basic)
				return ok && b.Info()&types.IsNumeric != 0
			case "=":
				// dst[key] = ... is a per-key write: map keys are unique, so
				// the order the keys arrive in cannot change the outcome
				// (as long as the RHS does not read dst, which accumulation
				// via = would; keep that conservative and require the index
				// to be exactly the key variable).
				if keyObj == nil || len(s.Lhs) != 1 {
					return false
				}
				ix, ok := s.Lhs[0].(*ast.IndexExpr)
				if !ok {
					return false
				}
				id, ok := ix.Index.(*ast.Ident)
				return ok && pass.Info().Uses[id] == keyObj
			default:
				return false
			}
		case *ast.IfStmt:
			if s.Init != nil || s.Else != nil {
				return false
			}
			for _, b := range s.Body.List {
				if !stmtOK(b) {
					return false
				}
			}
			return true
		case *ast.BlockStmt:
			for _, b := range s.List {
				if !stmtOK(b) {
					return false
				}
			}
			return true
		default:
			return false
		}
	}
	for _, s := range rs.Body.List {
		if !stmtOK(s) {
			return false
		}
	}
	return true
}

// rangeKeyObj resolves the loop's key variable object, if any.
func rangeKeyObj(pass *Pass, rs *ast.RangeStmt) types.Object {
	id, ok := rs.Key.(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	if obj := pass.Info().Defs[id]; obj != nil {
		return obj
	}
	return pass.Info().Uses[id]
}

// appendThenSorted recognizes the collect-and-sort idiom: the loop body
// only appends map elements to one slice variable, and a sort call on
// that same variable follows the loop within the enclosing block.
func appendThenSorted(pass *Pass, file *ast.File, rs *ast.RangeStmt) bool {
	target := appendTarget(pass, rs)
	if target == nil {
		return false
	}
	block := enclosingBlock(file, rs)
	if block == nil {
		return false
	}
	seen := false
	for _, s := range block.List {
		if s == ast.Stmt(rs) {
			seen = true
			continue
		}
		if !seen {
			continue
		}
		if sortsVar(pass, s, target) {
			return true
		}
	}
	return false
}

// appendTarget returns the slice variable when every body statement is
// `v = append(v, ...)` for one and the same v, else nil.
func appendTarget(pass *Pass, rs *ast.RangeStmt) types.Object {
	var target types.Object
	for _, s := range rs.Body.List {
		as, ok := s.(*ast.AssignStmt)
		if !ok || as.Tok.String() != "=" || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return nil
		}
		lhs, ok := as.Lhs[0].(*ast.Ident)
		if !ok {
			return nil
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return nil
		}
		fn, ok := call.Fun.(*ast.Ident)
		if !ok || fn.Name != "append" || len(call.Args) < 2 {
			return nil
		}
		first, ok := call.Args[0].(*ast.Ident)
		if !ok {
			return nil
		}
		obj := pass.Info().Uses[lhs]
		if obj == nil || pass.Info().Uses[first] != obj {
			return nil
		}
		if target == nil {
			target = obj
		} else if target != obj {
			return nil
		}
	}
	return target
}

// sortsVar reports whether stmt is a call into package sort or slices
// whose first argument is the given variable.
func sortsVar(pass *Pass, stmt ast.Stmt, v types.Object) bool {
	es, ok := stmt.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj := pass.Info().Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	if p := obj.Pkg().Path(); p != "sort" && p != "slices" {
		return false
	}
	arg, ok := call.Args[0].(*ast.Ident)
	return ok && pass.Info().Uses[arg] == v
}

// enclosingBlock finds the innermost block statement containing n.
func enclosingBlock(file *ast.File, n ast.Node) *ast.BlockStmt {
	var best *ast.BlockStmt
	ast.Inspect(file, func(m ast.Node) bool {
		if m == nil {
			return false
		}
		if m.Pos() > n.Pos() || m.End() < n.End() {
			return m.Pos() <= n.Pos() && m.End() >= n.End()
		}
		if b, ok := m.(*ast.BlockStmt); ok {
			if best == nil || (b.Pos() >= best.Pos() && b.End() <= best.End()) {
				best = b
			}
		}
		return true
	})
	return best
}
