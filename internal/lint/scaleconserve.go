package lint

import (
	"go/types"
)

// ScaleConserveAnalyzer keeps (*Result).Scale total over the counter
// set. Scale is the sampling extrapolator's workhorse: it multiplies a
// measured window's counters up to the span the window represents, and
// every audit invariant is proved to survive it counter by counter. A
// counter that Scale never touches silently breaks that proof the day
// it is added — the sampled result then mixes extrapolated counters
// with raw ones, and conservation (invariant 11) fails only on sampled
// runs, the mode production traffic uses by default.
//
// The check: every counter field of Result, CPUStats and BusStats
// (uint64, or []uint64 for per-slice splits) must be written somewhere
// in the interprocedural closure of (*Result).Scale — assigned,
// op-assigned, or re-derived; clamping and residue absorption count,
// since they are writes. Counters that are deliberately not scaled
// (whole-run address-space counts, sampling metadata describing the
// extrapolation itself) carry a //lint:allow scaleconserve with the
// reason, so the exemption is visible at the declaration.
//
// The other direction — scaled at most once — is enforced dynamically:
// Scale preserves the audit's exact equalities, and a double-scaled
// counter breaks cycle or miss conservation on the first audited
// sampled run.
var ScaleConserveAnalyzer = &Analyzer{
	Name: "scaleconserve",
	Doc:  "every Result/CPUStats/BusStats counter must be scaled (written) in (*Result).Scale",
	Run:  runScaleConserve,
}

func runScaleConserve(pass *Pass) {
	fields := counterFields(pass.Pkg)
	if len(fields) == 0 {
		return
	}
	scale := methodOf(pass.Pkg, "Result", "Scale")
	if scale == nil {
		return
	}
	cg := pass.Prog.CallGraph()
	root := cg.NodeOf(scale)
	if root == nil {
		return
	}
	written := cg.WriteClosure([]*CGNode{root})
	for f, owner := range fields {
		if written[f] {
			continue
		}
		pass.Reportf(f.Pos(),
			"counter %s.%s is not scaled by (*Result).Scale: a sampled run would extrapolate every other counter but leave this one raw, breaking conservation",
			owner, f.Name())
	}
}

// methodOf returns the declared method recv.name of the named type, or
// nil. Pointer and value receivers both match.
func methodOf(pkg *Package, recv, name string) types.Object {
	obj := pkg.Types.Scope().Lookup(recv)
	if obj == nil {
		return nil
	}
	named, ok := types.Unalias(obj.Type()).(*types.Named)
	if !ok {
		return nil
	}
	for i := 0; i < named.NumMethods(); i++ {
		if m := named.Method(i); m.Name() == name {
			return m
		}
	}
	return nil
}
