package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// ErrCodeAnalyzer keeps the server's error-code surface closed and
// documented. Clients dispatch on error.code strings, so the set is a
// compatibility contract: a handler inventing an ad-hoc code ships an
// undocumented API change. Two rules:
//
//   - every value given to ErrorInfo.Code (composite literal or
//     assignment) must be one of the declared Code* constants, never a
//     string literal or computed expression;
//   - the declared Code* constant set must match the code table in
//     API.md's "Error responses" section exactly, in both directions.
var ErrCodeAnalyzer = &Analyzer{
	Name: "errcode",
	Doc:  "server handlers may only return declared error codes, and the declared set must match API.md",
	Run:  runErrCode,
}

// apiCodeRowRe matches one code row of the API.md error table:
// "| `invalid_request` | 400 | ... |".
var apiCodeRowRe = regexp.MustCompile("^\\|\\s*`([a-z_]+)`\\s*\\|")

func runErrCode(pass *Pass) {
	if !pathHasSuffix(pass.Pkg.Path, "internal/server") {
		return
	}
	codes := declaredCodes(pass) // value -> const object
	if len(codes) == 0 {
		return
	}
	checkCodeUses(pass, codes)
	checkAPIMD(pass, codes)
}

// declaredCodes collects the package's Code*-named string constants.
func declaredCodes(pass *Pass) map[string]*types.Const {
	out := map[string]*types.Const{}
	scope := pass.Pkg.Types.Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !strings.HasPrefix(name, "Code") || len(name) == len("Code") {
			continue
		}
		if c.Val().Kind() != constant.String {
			continue
		}
		out[constant.StringVal(c.Val())] = c
	}
	return out
}

// checkCodeUses flags every ErrorInfo.Code value that is not a declared
// Code* constant identifier.
func checkCodeUses(pass *Pass, codes map[string]*types.Const) {
	isCodeConst := func(e ast.Expr) bool {
		var id *ast.Ident
		switch e := e.(type) {
		case *ast.Ident:
			id = e
		case *ast.SelectorExpr:
			id = e.Sel
		default:
			return false
		}
		c, ok := pass.Info().Uses[id].(*types.Const)
		return ok && strings.HasPrefix(c.Name(), "Code")
	}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CompositeLit:
				if !isErrorInfoType(pass, n) {
					return true
				}
				for i, el := range n.Elts {
					if kv, ok := el.(*ast.KeyValueExpr); ok {
						key, ok := kv.Key.(*ast.Ident)
						if ok && key.Name == "Code" && !isCodeConst(kv.Value) {
							pass.Reportf(kv.Value.Pos(), "ErrorInfo.Code must be a declared Code* constant, not an ad-hoc expression")
						}
					} else if i == 0 && !isCodeConst(el) {
						pass.Reportf(el.Pos(), "ErrorInfo.Code must be a declared Code* constant, not an ad-hoc expression")
					}
				}
			case *ast.AssignStmt:
				for i, lhs := range n.Lhs {
					sel, ok := lhs.(*ast.SelectorExpr)
					if !ok || sel.Sel.Name != "Code" || i >= len(n.Rhs) {
						continue
					}
					v, ok := pass.Info().Uses[sel.Sel].(*types.Var)
					if !ok || !v.IsField() || !isErrorInfoOwner(v) {
						continue
					}
					if !isCodeConst(n.Rhs[i]) {
						pass.Reportf(n.Rhs[i].Pos(), "ErrorInfo.Code must be a declared Code* constant, not an ad-hoc expression")
					}
				}
			}
			return true
		})
	}
}

// isErrorInfoType reports whether the composite literal's type is the
// server's ErrorInfo struct.
func isErrorInfoType(pass *Pass, lit *ast.CompositeLit) bool {
	tv, ok := pass.Info().Types[lit]
	if !ok {
		return false
	}
	named, ok := tv.Type.(*types.Named)
	return ok && named.Obj().Name() == "ErrorInfo"
}

// isErrorInfoOwner reports whether the field variable belongs to a
// struct named ErrorInfo (matched by the field's declaring scope).
func isErrorInfoOwner(v *types.Var) bool {
	// The owning named type is not directly reachable from a field var;
	// match on the field set of every ErrorInfo in its package instead.
	scope := v.Pkg().Scope()
	obj := scope.Lookup("ErrorInfo")
	if obj == nil {
		return false
	}
	st, ok := obj.Type().Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if st.Field(i) == v {
			return true
		}
	}
	return false
}

// parseAPIMDCodes extracts the code column of the error table in
// API.md's "Error responses" section.
func parseAPIMDCodes(data []byte) map[string]bool {
	documented := map[string]bool{}
	inSection := false
	for _, line := range strings.Split(string(data), "\n") {
		if strings.HasPrefix(line, "## ") {
			inSection = strings.HasPrefix(line, "## Error responses")
			continue
		}
		if !inSection {
			continue
		}
		if m := apiCodeRowRe.FindStringSubmatch(strings.TrimSpace(line)); m != nil {
			documented[m[1]] = true
		}
	}
	return documented
}

// checkAPIMD cross-checks the declared code set against the error table
// of the module's API.md.
func checkAPIMD(pass *Pass, codes map[string]*types.Const) {
	data, err := os.ReadFile(filepath.Join(pass.Prog.ModRoot, "API.md"))
	if err != nil {
		// No API doc in this module (fixtures opt out by omission).
		return
	}
	documented := parseAPIMDCodes(data)
	for value, c := range codes {
		if !documented[value] {
			pass.Reportf(c.Pos(), "error code %q (%s) is not documented in API.md's error table", value, c.Name())
		}
	}
	var anchor *types.Const
	for _, c := range codes {
		if anchor == nil || c.Pos() < anchor.Pos() {
			anchor = c
		}
	}
	for value := range documented {
		if _, ok := codes[value]; !ok {
			pass.Reportf(anchor.Pos(), "API.md documents error code %q but no Code* constant declares it", value)
		}
	}
}
