package lint

import (
	"go/ast"
	"go/types"
)

// StatsConserveAnalyzer enforces full accounting coverage of the
// simulator's statistics counters. A counter that exists but is neither
// audited nor reported is how drift slips in: the simulator books
// cycles or events into it, nothing cross-checks the books, and nothing
// shows the number to a reader. Concretely, for every uint64 field of
// sim.CPUStats, sim.Result and sim.BusStats:
//
//   - the field must be read somewhere in the transitive intra-package
//     closure of (*Result).Audit — directly in the audit or through a
//     helper method it calls (TotalCycles pulls in MemStallCycles and
//     OverheadCycles, which between them read every cycle bucket);
//   - the field must reach the report package — read directly in a
//     report function, or read by a sim method that report references
//     (method values like (*sim.CPUStats).MemStallCycles count).
//
// Within the report package itself, every field of report.Row must be
// referenced by the columns table, so a counter cannot make it into the
// Row without also making it into the CSV.
//
// The obs package gets the same treatment for attribution: every
// exported uint64 field of obs.Collector must be read in the transitive
// closure of (*Collector).Report, so a counter the simulator feeds
// (CrossDomain and friends) cannot exist without a rendered line.
var StatsConserveAnalyzer = &Analyzer{
	Name: "statsconserve",
	Doc:  "every statistics counter must be covered by the conservation audit and by the report output",
	Run:  runStatsConserve,
}

func runStatsConserve(pass *Pass) {
	switch {
	case pathHasSuffix(pass.Pkg.Path, "internal/sim"):
		checkAuditAndReportCoverage(pass)
	case pathHasSuffix(pass.Pkg.Path, "internal/report"):
		checkRowColumnCoverage(pass)
	case pathHasSuffix(pass.Pkg.Path, "internal/obs"):
		checkCollectorReportCoverage(pass)
	}
}

// checkCollectorReportCoverage requires every exported uint64 field of
// obs.Collector to be read in the transitive intra-package closure of
// (*Collector).Report — the text report is the only universal surface
// attribution counters have, so one that never reaches it is invisible.
func checkCollectorReportCoverage(pass *Pass) {
	var fields []*types.Var
	for _, f := range structFields(pass.Pkg, "Collector") {
		if f.Exported() && isUint64(f.Type()) {
			fields = append(fields, f)
		}
	}
	if len(fields) == 0 {
		return
	}
	bodies := funcBodies(pass.Pkg)
	var report types.Object
	for obj, fd := range bodies {
		if fd.Name.Name != "Report" || fd.Recv == nil {
			continue
		}
		if sig, ok := obj.Type().(*types.Signature); ok && sig.Recv() != nil {
			if named, ok := types.Unalias(derefType(sig.Recv().Type())).(*types.Named); ok &&
				named.Obj().Name() == "Collector" {
				report = obj
				break
			}
		}
	}
	if report == nil {
		pass.Reportf(fields[0].Pos(), "obs package declares attribution counters but no (*Collector).Report method to surface them")
		return
	}
	read := fieldClosure(pass.Pkg, bodies, []types.Object{report})
	for _, f := range fields {
		if !read[f] {
			pass.Reportf(f.Pos(), "counter Collector.%s is never rendered by (*Collector).Report (directly or via a helper it calls)", f.Name())
		}
	}
}

// derefType unwraps one level of pointer.
func derefType(t types.Type) types.Type {
	if p, ok := t.(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

// counterFields returns the counter fields of the named sim structs:
// plain uint64 counters and []uint64 per-slice splits (SliceMisses),
// which owe the same audit/report/scale coverage as scalar counters.
func counterFields(simPkg *Package) map[*types.Var]string {
	out := map[*types.Var]string{}
	for _, name := range []string{"CPUStats", "Result", "BusStats"} {
		for _, f := range structFields(simPkg, name) {
			if isUint64(f.Type()) || isUint64Slice(f.Type()) {
				out[f] = name
			}
		}
	}
	return out
}

func checkAuditAndReportCoverage(pass *Pass) {
	simPkg := pass.Pkg
	fields := counterFields(simPkg)
	if len(fields) == 0 {
		return
	}
	bodies := funcBodies(simPkg)

	var audit types.Object
	for obj, fd := range bodies {
		if fd.Name.Name == "Audit" && fd.Recv != nil {
			audit = obj
			break
		}
	}
	if audit == nil {
		// Report once, anchored at the CPUStats declaration: without an
		// Audit method nothing conserves anything.
		for f, owner := range fields {
			if owner == "CPUStats" {
				pass.Reportf(f.Pos(), "sim package declares counters but no (*Result).Audit method to conserve them")
				return
			}
		}
		return
	}

	audited := fieldClosure(simPkg, bodies, []types.Object{audit})
	for f, owner := range fields {
		if !audited[f] {
			pass.Reportf(f.Pos(), "counter %s.%s is not checked by any (*Result).Audit invariant (directly or via a helper it calls)", owner, f.Name())
		}
	}

	reportPkg := pass.Prog.Lookup("internal/report")
	if reportPkg == nil {
		return
	}
	reported, simMethods := crossPackageReads(reportPkg, simPkg)
	for f := range fieldClosure(simPkg, bodies, simMethods) {
		reported[f] = true
	}
	for f, owner := range fields {
		if !reported[f] {
			pass.Reportf(f.Pos(), "counter %s.%s never reaches the report package: add it to Row/FromResult and the columns table", owner, f.Name())
		}
	}
}

// fieldClosure walks the bodies of roots and, transitively, every
// same-package function they reference, and returns the set of struct
// fields read anywhere in that closure.
func fieldClosure(pkg *Package, bodies map[types.Object]*ast.FuncDecl, roots []types.Object) map[*types.Var]bool {
	read := map[*types.Var]bool{}
	seen := map[types.Object]bool{}
	work := append([]types.Object(nil), roots...)
	for len(work) > 0 {
		fn := work[len(work)-1]
		work = work[:len(work)-1]
		if fn == nil || seen[fn] {
			continue
		}
		seen[fn] = true
		fd, ok := bodies[fn]
		if !ok {
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			switch obj := pkg.Info.Uses[id].(type) {
			case *types.Var:
				if obj.IsField() {
					read[obj] = true
				}
			case *types.Func:
				if _, local := bodies[obj]; local {
					work = append(work, obj)
				}
			}
			return true
		})
	}
	return read
}

// crossPackageReads scans every function of pkg and returns the sim
// struct fields it reads directly plus the sim methods it references
// (calls or method values), for closure expansion on the sim side.
func crossPackageReads(pkg, simPkg *Package) (map[*types.Var]bool, []types.Object) {
	fields := map[*types.Var]bool{}
	var methods []types.Object
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj := pkg.Info.Uses[id]
			if obj == nil || obj.Pkg() != simPkg.Types {
				return true
			}
			switch obj := obj.(type) {
			case *types.Var:
				if obj.IsField() {
					fields[obj] = true
				}
			case *types.Func:
				methods = append(methods, obj)
			}
			return true
		})
	}
	return fields, methods
}

// checkRowColumnCoverage requires every field of report.Row to be
// referenced inside the columns table literal.
func checkRowColumnCoverage(pass *Pass) {
	rowFields := structFields(pass.Pkg, "Row")
	if len(rowFields) == 0 {
		return
	}
	var columnsExpr ast.Expr
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if name.Name == "columns" && i < len(vs.Values) {
						columnsExpr = vs.Values[i]
					}
				}
			}
		}
	}
	if columnsExpr == nil {
		pass.Reportf(rowFields[0].Pos(), "report package has no columns table; Row fields cannot reach the CSV")
		return
	}
	used := map[types.Object]bool{}
	ast.Inspect(columnsExpr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := pass.Info().Uses[id]; obj != nil {
				used[obj] = true
			}
		}
		return true
	})
	for _, f := range rowFields {
		if !used[f] {
			pass.Reportf(f.Pos(), "Row.%s has no column: add it to the columns table so it reaches the CSV header and records", f.Name())
		}
	}
}
