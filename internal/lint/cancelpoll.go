package lint

import (
	"go/ast"
	"go/types"
)

// CancelPollAnalyzer enforces the simulator's cancellation contract:
// every nest-iterating loop reachable from a Run* entry point must
// reach a poll of Options.Cancel. The server threads its context into
// that hook and promises a bounded drain on shutdown; one warm-up or
// replay loop that grinds through nests without polling turns the
// drain deadline into a lie exactly when a job is at its slowest.
//
// Concretely, in the package that declares Options.Cancel:
//
//   - entry points are the exported functions and methods whose name
//     starts with "Run";
//   - a loop qualifies when its body makes an error-returning call
//     that passes a scalar *ir.Nest (or ir.Nest) argument — the
//     signature of per-nest simulation work. Loops that merely
//     collect, index or measure nests (append, span arithmetic,
//     stream construction) do not qualify: they are O(nests)
//     bookkeeping, and a callee with no error result has no path to
//     propagate a Cancel error in the first place;
//   - a qualifying loop passes when its body reads Options.Cancel
//     directly or calls a function from which, transitively over the
//     call graph, some reader of Options.Cancel is reachable — the
//     poll then runs at least once per iteration.
//
// The analyzer anchors on the Options.Cancel declaration and an
// internal/ir package declaring Nest; absent either, it is silent.
var CancelPollAnalyzer = &Analyzer{
	Name: "cancelpoll",
	Doc:  "every nest-iterating loop reachable from a Run* entry point must reach an Options.Cancel poll",
	Run:  runCancelPoll,
}

func runCancelPoll(pass *Pass) {
	pkg := pass.Pkg
	cancel := fieldVar(pkg, "Options", "Cancel")
	if cancel == nil {
		return
	}
	if _, ok := cancel.Type().Underlying().(*types.Signature); !ok {
		return
	}
	irPkg := pass.Prog.Lookup("internal/ir")
	if irPkg == nil {
		return
	}
	nestObj := irPkg.Types.Scope().Lookup("Nest")
	if nestObj == nil {
		return
	}
	nestType := nestObj.Type()

	cg := pass.Prog.CallGraph()

	// Functions that poll: any body reading the Cancel field.
	polls := map[*CGNode]bool{}
	for _, n := range cg.Nodes() {
		if n.Reads(cancel) {
			polls[n] = true
		}
	}

	// Entry points: exported Run* functions/methods of this package.
	var entries []*CGNode
	for _, n := range cg.PkgNodes(pkg) {
		name := n.Decl.Name.Name
		if len(name) >= 3 && name[:3] == "Run" && ast.IsExported(name) {
			entries = append(entries, n)
		}
	}
	if len(entries) == 0 {
		return
	}
	reachable := cg.Reachable(entries)

	isNest := func(t types.Type) bool {
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		return types.Identical(t, nestType)
	}
	returnsError := func(n *CGNode) bool {
		sig, ok := n.Obj.Type().(*types.Signature)
		if !ok {
			return false
		}
		for i := 0; i < sig.Results().Len(); i++ {
			if types.Identical(sig.Results().At(i).Type(), types.Universe.Lookup("error").Type()) {
				return true
			}
		}
		return false
	}
	// calleeNode resolves a call expression to its static callee's graph
	// node (nil for builtins, closures, and out-of-module functions).
	calleeNode := func(call *ast.CallExpr) *CGNode {
		fun := call.Fun
		for {
			if p, ok := fun.(*ast.ParenExpr); ok {
				fun = p.X
				continue
			}
			break
		}
		var id *ast.Ident
		switch f := fun.(type) {
		case *ast.Ident:
			id = f
		case *ast.SelectorExpr:
			id = f.Sel
		default:
			return nil
		}
		if fn, ok := pkg.Info.Uses[id].(*types.Func); ok {
			return cg.NodeOf(fn)
		}
		return nil
	}

	for _, n := range cg.PkgNodes(pkg) {
		if !reachable[n] {
			continue
		}
		ast.Inspect(n.Decl, func(node ast.Node) bool {
			var body *ast.BlockStmt
			switch l := node.(type) {
			case *ast.ForStmt:
				body = l.Body
			case *ast.RangeStmt:
				body = l.Body
			default:
				return true
			}
			nestWork, polled := false, false
			ast.Inspect(body, func(inner ast.Node) bool {
				switch x := inner.(type) {
				case *ast.CallExpr:
					callee := calleeNode(x)
					if callee == nil {
						// Builtin, closure or out-of-module call: cannot
						// carry nest work into the graph, cannot poll.
						return true
					}
					if returnsError(callee) {
						for _, arg := range x.Args {
							if tv, ok := pkg.Info.Types[arg]; ok && isNest(tv.Type) {
								nestWork = true
							}
						}
					}
					if cg.reachesAny(callee, polls) {
						polled = true
					}
				case *ast.Ident:
					if pkg.Info.Uses[x] == cancel {
						polled = true
					}
				}
				return true
			})
			if nestWork && !polled {
				pass.Reportf(node.Pos(),
					"loop runs per-nest work but never reaches an Options.Cancel poll: the server's drain deadline depends on cancellation at nest boundaries")
			}
			return true
		})
	}
}
