package lint

import (
	"fmt"
	"go/token"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// The fixture harness mirrors golang.org/x/tools' analysistest: each
// analyzer has a module under testdata/src/<name> whose files carry
// `// want "regexp"` comments on the lines where a diagnostic is
// expected. The test fails on any unexpected diagnostic and on any
// unmatched expectation, so every fixture exercises both the flagged
// (positive) and allowed (negative) cases at once.

var wantRe = regexp.MustCompile(`want "((?:[^"\\]|\\.)*)"`)

// runFixture loads the fixture module and checks a's diagnostics
// against the want comments.
func runFixture(t *testing.T, a *Analyzer, name string) {
	t.Helper()
	dir := filepath.Join("testdata", "src", name)
	prog, err := Load(dir)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	diags := RunAnalyzers(prog, []*Analyzer{a})

	type want struct {
		re      *regexp.Regexp
		matched bool
	}
	wants := map[string][]*want{} // "file:line" -> expectations
	for _, pkg := range prog.Packages {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					for _, m := range wantRe.FindAllStringSubmatch(c.Text, -1) {
						re, err := regexp.Compile(m[1])
						if err != nil {
							t.Fatalf("bad want regexp %q: %v", m[1], err)
						}
						key := posKey(prog.Fset.Position(c.Pos()))
						wants[key] = append(wants[key], &want{re: re})
					}
				}
			}
		}
	}

	for _, d := range diags {
		key := posKey(d.Pos)
		found := false
		for _, w := range wants[key] {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s: expected diagnostic matching %q, got none", key, w.re)
			}
		}
	}
}

func posKey(pos token.Position) string {
	return fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
}

func TestDeterminismFixture(t *testing.T)   { runFixture(t, DeterminismAnalyzer, "determinism") }
func TestStatsConserveFixture(t *testing.T) { runFixture(t, StatsConserveAnalyzer, "statsconserve") }
func TestGuardedByFixture(t *testing.T)     { runFixture(t, GuardedByAnalyzer, "guardedby") }
func TestErrCodeFixture(t *testing.T)       { runFixture(t, ErrCodeAnalyzer, "errcode") }
func TestPow2GeomFixture(t *testing.T)      { runFixture(t, Pow2GeomAnalyzer, "pow2geom") }

// TestSuppression proves the //lint:allow escape hatch: the suppression
// fixture contains one violation of every analyzer-independent shape
// with an allow comment, and must produce zero diagnostics.
func TestSuppression(t *testing.T) {
	prog, err := Load(filepath.Join("testdata", "src", "suppression"))
	if err != nil {
		t.Fatalf("loading suppression fixture: %v", err)
	}
	diags := RunAnalyzers(prog, Analyzers())
	for _, d := range diags {
		t.Errorf("suppressed site still reported: %s", d)
	}
}

// TestAnalyzersHaveDocs is the suite's own hygiene check.
func TestAnalyzersHaveDocs(t *testing.T) {
	seen := map[string]bool{}
	for _, a := range Analyzers() {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v missing name, doc or run", a)
		}
		if a.Name != strings.ToLower(a.Name) {
			t.Errorf("analyzer name %q must be lowercase", a.Name)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
	if len(seen) < 5 {
		t.Errorf("suite has %d analyzers, want at least 5", len(seen))
	}
}
