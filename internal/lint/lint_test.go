package lint

import (
	"fmt"
	"go/token"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// The fixture harness mirrors golang.org/x/tools' analysistest: each
// analyzer has a module under testdata/src/<name> whose files carry
// `// want "regexp"` comments on the lines where a diagnostic is
// expected. The test fails on any unexpected diagnostic and on any
// unmatched expectation, so every fixture exercises both the flagged
// (positive) and allowed (negative) cases at once.

var wantRe = regexp.MustCompile(`want "((?:[^"\\]|\\.)*)"`)

// runFixture loads the fixture module and checks a's diagnostics
// against the want comments.
func runFixture(t *testing.T, a *Analyzer, name string) {
	t.Helper()
	dir := filepath.Join("testdata", "src", name)
	prog, err := Load(dir)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	diags := RunAnalyzers(prog, []*Analyzer{a})

	type want struct {
		re      *regexp.Regexp
		matched bool
	}
	wants := map[string][]*want{} // "file:line" -> expectations
	for _, pkg := range prog.Packages {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					for _, m := range wantRe.FindAllStringSubmatch(c.Text, -1) {
						re, err := regexp.Compile(m[1])
						if err != nil {
							t.Fatalf("bad want regexp %q: %v", m[1], err)
						}
						key := posKey(prog.Fset.Position(c.Pos()))
						wants[key] = append(wants[key], &want{re: re})
					}
				}
			}
		}
	}

	for _, d := range diags {
		key := posKey(d.Pos)
		found := false
		for _, w := range wants[key] {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s: expected diagnostic matching %q, got none", key, w.re)
			}
		}
	}
}

func posKey(pos token.Position) string {
	return fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
}

func TestDeterminismFixture(t *testing.T)   { runFixture(t, DeterminismAnalyzer, "determinism") }
func TestStatsConserveFixture(t *testing.T) { runFixture(t, StatsConserveAnalyzer, "statsconserve") }
func TestGuardedByFixture(t *testing.T)     { runFixture(t, GuardedByAnalyzer, "guardedby") }
func TestErrCodeFixture(t *testing.T)       { runFixture(t, ErrCodeAnalyzer, "errcode") }
func TestPow2GeomFixture(t *testing.T)      { runFixture(t, Pow2GeomAnalyzer, "pow2geom") }

func TestMemoKeyFixture(t *testing.T)       { runFixture(t, MemoKeyAnalyzer, "memokey") }
func TestCancelPollFixture(t *testing.T)    { runFixture(t, CancelPollAnalyzer, "cancelpoll") }
func TestTopoAccessFixture(t *testing.T)    { runFixture(t, TopoAccessAnalyzer, "topoaccess") }
func TestScaleConserveFixture(t *testing.T) { runFixture(t, ScaleConserveAnalyzer, "scaleconserve") }

// TestSuppressionScope pins the statement-scoped //lint:allow rules: a
// comment covers exactly one statement's full line extent — not its
// neighbor on the next line, not a statement across a blank line, and
// never the whole file.
func TestSuppressionScope(t *testing.T) { runFixture(t, DeterminismAnalyzer, "suppressionscope") }

// TestCallGraph exercises the interprocedural engine over the
// cancelpoll fixture, whose call structure is known by construction.
func TestCallGraph(t *testing.T) {
	prog, err := Load(filepath.Join("testdata", "src", "cancelpoll"))
	if err != nil {
		t.Fatalf("loading cancelpoll fixture: %v", err)
	}
	sim := prog.Lookup("internal/sim")
	if sim == nil {
		t.Fatal("fixture has no internal/sim package")
	}
	cg := prog.CallGraph()
	method := func(name string) *CGNode {
		t.Helper()
		obj := methodOf(sim, "Machine", name)
		if obj == nil {
			t.Fatalf("Machine.%s not found", name)
		}
		n := cg.NodeOf(obj)
		if n == nil {
			t.Fatalf("no call-graph node for Machine.%s", name)
		}
		return n
	}
	run, poll, process, helper := method("Run"), method("poll"), method("process"), method("helper")

	reach := cg.Reachable([]*CGNode{run})
	if !reach[poll] || !reach[process] {
		t.Errorf("Run should reach poll and process: poll=%v process=%v", reach[poll], reach[process])
	}
	if reach[helper] {
		t.Error("helper is never called and must not be reachable from Run")
	}

	cancel := fieldVar(sim, "Options", "Cancel")
	if cancel == nil {
		t.Fatal("Options.Cancel field not found")
	}
	if !poll.Reads(cancel) {
		t.Error("poll reads Options.Cancel; summary says it does not")
	}
	if process.Reads(cancel) {
		t.Error("process never touches Options.Cancel; summary says it does")
	}
	if reads := cg.ReadClosure([]*CGNode{run}); !reads[cancel] {
		t.Error("Run's interprocedural read closure must include Options.Cancel (via poll)")
	}
}

// TestTreeIsClean asserts the repository itself passes all nine
// analyzers — the on-tree findings the new analyzers surfaced were
// fixed or explicitly suppressed, and must stay that way.
func TestTreeIsClean(t *testing.T) {
	prog, err := Load(filepath.Join("..", ".."))
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	for _, d := range RunAnalyzers(prog, Analyzers()) {
		t.Errorf("tree finding: %s", d)
	}
}

// TestSuppression proves the //lint:allow escape hatch: the suppression
// fixture contains one violation of every analyzer-independent shape
// with an allow comment, and must produce zero diagnostics.
func TestSuppression(t *testing.T) {
	prog, err := Load(filepath.Join("testdata", "src", "suppression"))
	if err != nil {
		t.Fatalf("loading suppression fixture: %v", err)
	}
	diags := RunAnalyzers(prog, Analyzers())
	for _, d := range diags {
		t.Errorf("suppressed site still reported: %s", d)
	}
}

// TestAnalyzersHaveDocs is the suite's own hygiene check.
func TestAnalyzersHaveDocs(t *testing.T) {
	seen := map[string]bool{}
	for _, a := range Analyzers() {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v missing name, doc or run", a)
		}
		if a.Name != strings.ToLower(a.Name) {
			t.Errorf("analyzer name %q must be lowercase", a.Name)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
	if len(seen) < 9 {
		t.Errorf("suite has %d analyzers, want at least 9", len(seen))
	}
}
