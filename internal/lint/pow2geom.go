package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
)

// Pow2GeomAnalyzer enforces the power-of-two geometry contract. The
// simulator's per-reference hot path replaces division and modulo with
// shift-and-mask (CacheGeometry.SetOf, the VM's page and color
// arithmetic), which is only correct when cache sizes, line sizes and
// the page size are powers of two — arch.Validate rejects anything
// else, but only at run time, on whichever configuration a test
// happened to exercise. This analyzer moves the check to lint time:
// every value given to CacheGeometry.Size, CacheGeometry.LineSize or
// Config.PageSize (in a composite literal or by assignment) must be
// provably a power of two:
//
//   - a constant expression equal to a positive power of two;
//   - a call to arch.FloorPow2 (the sanctioned rounding helper);
//   - a left shift whose base is a constant power of two;
//   - a copy of an already-validated geometry field (g.Size and
//     friends), which Validate has vouched for.
//
// Arbitrary arithmetic like size/scale is rejected even when every
// tested scale happens to divide evenly — that is exactly the latent
// bug class (scale=3 silently breaking set indexing) this check
// exists for.
var Pow2GeomAnalyzer = &Analyzer{
	Name: "pow2geom",
	Doc:  "cache, TLB and VM geometry must be power-of-two literals or provably-rounded values",
	Run:  runPow2Geom,
}

// pow2Fields lists, per geometry struct, which fields carry the
// power-of-two contract. Level.Slices joins the cache and page
// geometry: slice selection is an XOR hash over index bits, so the
// slice count is structurally 1 << len(masks) — a literal that is not
// a power of two can never validate.
var pow2Fields = map[string]map[string]bool{
	"CacheGeometry": {"Size": true, "LineSize": true},
	"Config":        {"PageSize": true},
	"Level":         {"Slices": true},
}

func runPow2Geom(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CompositeLit:
				structName, ok := geomStructName(pass, pass.Info().Types[n].Type)
				if !ok {
					return true
				}
				fields := pow2Fields[structName]
				st, _ := pass.Info().Types[n].Type.Underlying().(*types.Struct)
				for i, el := range n.Elts {
					var name string
					var value ast.Expr
					if kv, ok := el.(*ast.KeyValueExpr); ok {
						key, ok := kv.Key.(*ast.Ident)
						if !ok {
							continue
						}
						name, value = key.Name, kv.Value
					} else if st != nil && i < st.NumFields() {
						name, value = st.Field(i).Name(), el
					}
					if fields[name] {
						checkPow2(pass, structName, name, value)
					}
				}
			case *ast.AssignStmt:
				for i, lhs := range n.Lhs {
					sel, ok := lhs.(*ast.SelectorExpr)
					if !ok || i >= len(n.Rhs) {
						continue
					}
					v, ok := pass.Info().Uses[sel.Sel].(*types.Var)
					if !ok || !v.IsField() {
						continue
					}
					owner, fieldSet := fieldOwner(v)
					if fieldSet != nil && fieldSet[v.Name()] {
						checkPow2(pass, owner, v.Name(), n.Rhs[i])
					}
				}
			}
			return true
		})
	}
}

// geomStructName maps a type to "CacheGeometry"/"Config" when it is one
// of the geometry structs (by name — the arch package itself and the
// test fixtures both qualify).
func geomStructName(pass *Pass, t types.Type) (string, bool) {
	if t == nil {
		return "", false
	}
	named, ok := t.(*types.Named)
	if !ok {
		return "", false
	}
	name := named.Obj().Name()
	_, tracked := pow2Fields[name]
	return name, tracked
}

// fieldOwner finds which geometry struct (if any) declares the field
// and returns its constrained-field set.
func fieldOwner(v *types.Var) (string, map[string]bool) {
	if v.Pkg() == nil {
		return "", nil
	}
	for name, fields := range pow2Fields {
		obj := v.Pkg().Scope().Lookup(name)
		if obj == nil {
			continue
		}
		st, ok := obj.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			if st.Field(i) == v {
				return name, fields
			}
		}
	}
	return "", nil
}

// checkPow2 reports value unless it is provably a power of two.
func checkPow2(pass *Pass, structName, fieldName string, value ast.Expr) {
	if provablyPow2(pass, value) {
		return
	}
	pass.Reportf(value.Pos(), "%s.%s must be a power of two: use a power-of-two constant or wrap the expression in FloorPow2", structName, fieldName)
}

func provablyPow2(pass *Pass, e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.ParenExpr:
		return provablyPow2(pass, e.X)
	}
	tv, ok := pass.Info().Types[e]
	if ok && tv.Value != nil && tv.Value.Kind() == constant.Int {
		v, exact := constant.Int64Val(tv.Value)
		return exact && v > 0 && v&(v-1) == 0
	}
	switch e := e.(type) {
	case *ast.CallExpr:
		var id *ast.Ident
		switch fun := e.Fun.(type) {
		case *ast.Ident:
			id = fun
		case *ast.SelectorExpr:
			id = fun.Sel
		}
		return id != nil && id.Name == "FloorPow2"
	case *ast.BinaryExpr:
		switch e.Op.String() {
		case "<<":
			// pow2 << k stays a power of two for any in-range k.
			return provablyPow2(pass, e.X)
		case "*":
			// pow2 * pow2 is a power of two.
			return provablyPow2(pass, e.X) && provablyPow2(pass, e.Y)
		}
		return false
	case *ast.SelectorExpr:
		// Copying a field out of an existing geometry struct: Validate
		// already vouched for it.
		v, ok := pass.Info().Uses[e.Sel].(*types.Var)
		if !ok || !v.IsField() {
			return false
		}
		_, fields := fieldOwner(v)
		return fields != nil && fields[v.Name()]
	default:
		return false
	}
}
