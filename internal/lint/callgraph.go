package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file is the interprocedural core of cdpcvet: a whole-module
// call graph over the packages lint.Load type-checked, with a local
// dataflow summary per function. Analyzers combine the two — graph
// reachability unions the per-function summaries into transitive
// facts ("every field keyOf consumes, through any helper it calls",
// "does this loop body reach a Cancel poll") without any analyzer
// re-walking other functions' bodies.
//
// Edges are deliberately conservative in the caller→callee direction:
//
//   - a direct call or method call adds an edge to the resolved callee;
//   - a *reference* to a function (a method value like
//     (*CPUStats).MemStallCycles passed to Result.Total, a function
//     assigned to a field) also adds an edge, since the referenced
//     function may run on the caller's behalf later;
//   - a call through an interface method adds class-hierarchy edges to
//     every module method that implements it (the callee set cannot be
//     narrowed without pointer analysis, and missing an implementation
//     would let a violation hide behind a dispatch).
//
// Over-approximating edges makes "X is consumed somewhere in the
// closure" checks (memokey, statsconserve) err toward silence and
// "X reaches a poll" checks (cancelpoll) err toward trusting a poll
// that a dynamic path might skip; both are the right direction for a
// lint that must not cry wolf on every indirect call.

// CGNode is one module function or method in the call graph.
type CGNode struct {
	Obj  types.Object // the *types.Func (or var-like object) declaring the function
	Pkg  *Package
	Decl *ast.FuncDecl

	// Out and In are the adjacency lists, deduplicated, in first-seen
	// (source) order so graph walks are deterministic.
	Out []*CGNode
	In  []*CGNode

	// refs holds every struct field referenced anywhere in the body
	// (read, written, or named as a composite-literal key) — the
	// "mentions" relation statsconserve's coverage checks want.
	// reads and writes split it by direction: reads are field values
	// flowing out of the struct, writes are assignments into it
	// (assignment LHS, ++/--, op-assign, keyed composite literals).
	// An op-assign like x.F += e is both.
	refs   map[*types.Var]bool
	reads  map[*types.Var]bool
	writes map[*types.Var]bool

	outSet map[*CGNode]bool
}

// Reads reports whether the function's own body reads field f.
func (n *CGNode) Reads(f *types.Var) bool { return n.reads[f] }

// CallGraph is the whole-module graph plus lookup indexes.
type CallGraph struct {
	prog  *Program
	nodes map[types.Object]*CGNode
	order []*CGNode // deterministic (package, file, declaration) order
}

// CallGraph builds (once) and returns the module call graph.
func (p *Program) CallGraph() *CallGraph {
	if p.cg == nil {
		p.cg = buildCallGraph(p)
	}
	return p.cg
}

// NodeOf returns the graph node declaring obj, or nil.
func (cg *CallGraph) NodeOf(obj types.Object) *CGNode { return cg.nodes[obj] }

// Nodes returns every node in deterministic declaration order.
func (cg *CallGraph) Nodes() []*CGNode { return cg.order }

func buildCallGraph(prog *Program) *CallGraph {
	cg := &CallGraph{prog: prog, nodes: map[types.Object]*CGNode{}}

	// Pass 1: a node per function/method declaration, in source order.
	for _, pkg := range prog.Packages {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj := pkg.Info.Defs[fd.Name]
				if obj == nil {
					continue
				}
				n := &CGNode{
					Obj: obj, Pkg: pkg, Decl: fd,
					refs:   map[*types.Var]bool{},
					reads:  map[*types.Var]bool{},
					writes: map[*types.Var]bool{},
					outSet: map[*CGNode]bool{},
				}
				cg.nodes[obj] = n
				cg.order = append(cg.order, n)
			}
		}
	}

	// Concrete named types of the module, for interface dispatch.
	var named []*types.Named
	for _, pkg := range prog.Packages {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() { // Names() is sorted
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			if nt, ok := tn.Type().(*types.Named); ok {
				if _, isIface := nt.Underlying().(*types.Interface); !isIface {
					named = append(named, nt)
				}
			}
		}
	}

	// Pass 2: edges and field summaries.
	for _, n := range cg.order {
		summarize(cg, n, named)
	}
	return cg
}

// summarize walks one function body, filling the node's field summary
// and out-edges (which also populates callees' in-edges).
func summarize(cg *CallGraph, n *CGNode, named []*types.Named) {
	info := n.Pkg.Info

	// Role pre-pass: identifiers that stand in write (or read+write)
	// position, so the main walk can classify field mentions. Keys of
	// keyed struct literals count as writes — `specKey{Workload: w}`
	// populates the field exactly like an assignment would.
	const (
		roleWrite = 1 << iota
		roleRead
	)
	role := map[*ast.Ident]int{}
	markLHS := func(e ast.Expr, r int) {
		// Unwrap to the selector actually being stored through:
		// (*r).PerCPU[i].Field writes Field and reads the path above it
		// (the normal walk books the path reads).
		for {
			switch x := e.(type) {
			case *ast.ParenExpr:
				e = x.X
			case *ast.StarExpr:
				e = x.X
			case *ast.IndexExpr:
				e = x.X
			default:
				if sel, ok := e.(*ast.SelectorExpr); ok {
					role[sel.Sel] |= r
				}
				return
			}
		}
	}
	ast.Inspect(n.Decl, func(node ast.Node) bool {
		switch s := node.(type) {
		case *ast.AssignStmt:
			r := roleWrite
			if s.Tok != token.ASSIGN && s.Tok != token.DEFINE {
				r |= roleRead // op-assign reads the old value too
			}
			for _, lhs := range s.Lhs {
				markLHS(lhs, r)
			}
		case *ast.IncDecStmt:
			markLHS(s.X, roleWrite|roleRead)
		case *ast.CompositeLit:
			for _, el := range s.Elts {
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					if key, ok := kv.Key.(*ast.Ident); ok {
						if v, ok := info.Uses[key].(*types.Var); ok && v.IsField() {
							role[key] |= roleWrite
						}
					}
				}
			}
		}
		return true
	})

	addEdge := func(callee types.Object) {
		target := cg.nodes[callee]
		if target == nil || target == n || n.outSet[target] {
			return
		}
		n.outSet[target] = true
		n.Out = append(n.Out, target)
		target.In = append(target.In, n)
	}

	ast.Inspect(n.Decl, func(node ast.Node) bool {
		switch x := node.(type) {
		case *ast.Ident:
			switch obj := info.Uses[x].(type) {
			case *types.Var:
				if !obj.IsField() {
					return true
				}
				n.refs[obj] = true
				r := role[x]
				if r&roleWrite != 0 {
					n.writes[obj] = true
				}
				if r&roleRead != 0 || r == 0 {
					n.reads[obj] = true
				}
			case *types.Func:
				addEdge(obj)
			}
		case *ast.SelectorExpr:
			// Dispatch through an interface method: add an edge to every
			// module implementation (class-hierarchy analysis).
			sel, ok := info.Selections[x]
			if !ok || sel.Kind() != types.MethodVal {
				return true
			}
			recv := sel.Recv()
			iface, ok := recv.Underlying().(*types.Interface)
			if !ok {
				return true
			}
			name := x.Sel.Name
			for _, nt := range named {
				ptr := types.NewPointer(nt)
				if !types.Implements(nt, iface) && !types.Implements(ptr, iface) {
					continue
				}
				if m, _, _ := types.LookupFieldOrMethod(ptr, true, nt.Obj().Pkg(), name); m != nil {
					addEdge(m)
				}
			}
		}
		return true
	})
}

// Reachable returns every node reachable from roots (roots included),
// in breadth-first deterministic order.
func (cg *CallGraph) Reachable(roots []*CGNode) map[*CGNode]bool {
	seen := map[*CGNode]bool{}
	queue := append([]*CGNode(nil), roots...)
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		if n == nil || seen[n] {
			continue
		}
		seen[n] = true
		queue = append(queue, n.Out...)
	}
	return seen
}

// reachesAny reports whether any of targets is reachable from start
// (start itself counts).
func (cg *CallGraph) reachesAny(start *CGNode, targets map[*CGNode]bool) bool {
	seen := map[*CGNode]bool{}
	queue := []*CGNode{start}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		if n == nil || seen[n] {
			continue
		}
		if targets[n] {
			return true
		}
		seen[n] = true
		queue = append(queue, n.Out...)
	}
	return false
}

// closure unions one per-node summary set over everything reachable
// from roots.
func (cg *CallGraph) closure(roots []*CGNode, pick func(*CGNode) map[*types.Var]bool) map[*types.Var]bool {
	out := map[*types.Var]bool{}
	for n := range cg.Reachable(roots) {
		for f := range pick(n) {
			out[f] = true
		}
	}
	return out
}

// ReadClosure returns every field read anywhere reachable from roots.
func (cg *CallGraph) ReadClosure(roots []*CGNode) map[*types.Var]bool {
	return cg.closure(roots, func(n *CGNode) map[*types.Var]bool { return n.reads })
}

// WriteClosure returns every field written (assigned, ++/--, op-assign
// or populated via a keyed composite literal) anywhere reachable from
// roots.
func (cg *CallGraph) WriteClosure(roots []*CGNode) map[*types.Var]bool {
	return cg.closure(roots, func(n *CGNode) map[*types.Var]bool { return n.writes })
}

// RefClosure returns every field mentioned at all (read or written)
// anywhere reachable from roots — the relation the coverage checks
// ("does this counter reach the audit at all") want.
func (cg *CallGraph) RefClosure(roots []*CGNode) map[*types.Var]bool {
	return cg.closure(roots, func(n *CGNode) map[*types.Var]bool { return n.refs })
}

// PkgNodes returns the graph nodes declared in pkg, in source order.
func (cg *CallGraph) PkgNodes(pkg *Package) []*CGNode {
	var out []*CGNode
	for _, n := range cg.order {
		if n.Pkg == pkg {
			out = append(out, n)
		}
	}
	return out
}

// fieldVar returns the field named name of the named struct type
// declared in pkg, or nil.
func fieldVar(pkg *Package, typeName, name string) *types.Var {
	for _, f := range structFields(pkg, typeName) {
		if f.Name() == name {
			return f
		}
	}
	return nil
}
