// Package lint implements cdpcvet, the repo's static-analysis suite:
// a small go/analysis-style framework (built on the standard library's
// go/ast and go/types, with no external dependencies) plus the
// analyzers that encode this repository's invariants — determinism of
// the simulation and reporting paths, conservation-audit and report
// coverage of every statistics counter, mutex discipline on annotated
// fields, the stable server error-code set, and power-of-two cache/VM
// geometry. The cmd/cdpcvet driver runs every analyzer over the module;
// scripts/verify.sh fails on any diagnostic. See DESIGN.md section 10
// for each analyzer's contract and how to suppress a false positive.
package lint
