module fixgb

go 1.24
