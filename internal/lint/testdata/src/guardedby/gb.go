package gb

import (
	"sort"
	"sync"
)

// S is the guarded struct.
type S struct {
	mu sync.Mutex
	n  int // guarded by mu
	m  int // guarded by ghost -> want "no such field"
}

// Bad reads n with no lock at all.
func (s *S) Bad() int {
	return s.n // want "without holding s.mu"
}

// AfterUnlock releases the lock before the final read.
func (s *S) AfterUnlock() int {
	s.mu.Lock()
	s.n++
	s.mu.Unlock()
	return s.n // want "without holding s.mu"
}

// Leak spawns a goroutine that does not inherit the critical section.
func (s *S) Leak() {
	s.mu.Lock()
	defer s.mu.Unlock()
	go func() {
		s.n++ // want "without holding s.mu"
	}()
}

// Get holds the lock for the whole read (defer-unlock form).
func (s *S) Get() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

// Inc uses the paired lock/unlock form.
func (s *S) Inc() {
	s.mu.Lock()
	s.n++
	s.mu.Unlock()
}

// TryGet exercises the branchy unlock-in-if pattern: both exits
// release, and each access happens while held.
func (s *S) TryGet() (int, bool) {
	s.mu.Lock()
	if s.n > 0 {
		v := s.n
		s.mu.Unlock()
		return v, true
	}
	s.mu.Unlock()
	return 0, false
}

// incLocked follows the *Locked convention: caller holds the mutex.
func (s *S) incLocked() { s.n++ }

// IncTwice shows the convention from the caller's side.
func (s *S) IncTwice() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.incLocked()
	s.incLocked()
}

// New constructs the struct; composite-literal keys are initialization,
// not access.
func New() *S { return &S{n: 1} }

// Sorted uses a synchronous closure under the lock (a comparator runs
// inside the caller's critical section).
func (s *S) Sorted(xs []int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sort.Slice(xs, func(i, j int) bool { return xs[i]+s.n < xs[j] })
}
