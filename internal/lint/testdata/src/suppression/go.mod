module fixsupp

go 1.24
