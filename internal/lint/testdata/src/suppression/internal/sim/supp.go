// Package sim holds one would-be violation per suppression form; each
// carries a lint:allow comment, so the whole suite must stay silent.
package sim

import (
	"sync"
	"time"
)

// Stamp suppresses with a trailing same-line comment.
func Stamp() time.Time {
	return time.Now() //lint:allow determinism (fixture exercises same-line suppression)
}

// Render suppresses with a comment on the line above.
func Render(m map[string]int) string {
	s := ""
	//lint:allow determinism (order is cosmetic in this fixture)
	for k := range m {
		s += k
	}
	return s
}

// CacheGeometry mirrors arch for the pow2geom case.
type CacheGeometry struct {
	Size     int
	LineSize int
	Assoc    int
}

// Odd builds a deliberately non-power geometry.
func Odd() CacheGeometry {
	//lint:allow pow2geom (fixture wants a non-power size)
	return CacheGeometry{Size: 3000, LineSize: 64, Assoc: 1}
}

// S has a guarded counter.
type S struct {
	mu sync.Mutex
	n  int // guarded by mu
}

// Peek reads racily on purpose.
func (s *S) Peek() int {
	return s.n //lint:allow guardedby (approximate read is acceptable here)
}
