module fixscale

go 1.24
