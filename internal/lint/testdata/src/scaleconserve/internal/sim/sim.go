// Package sim exercises the scaleconserve analyzer: every uint64 (or
// []uint64) counter on Result, CPUStats and BusStats must be written in
// the interprocedural closure of (*Result).Scale.
package sim

// CPUStats is per-CPU counters.
type CPUStats struct {
	ExecCycles uint64
	Misses     uint64
	Dropped    uint64 // want "counter CPUStats.Dropped is not scaled"
}

// BusStats is shared-bus counters.
type BusStats struct {
	DataCycles uint64
}

// Result is one run's counters.
type Result struct {
	WallCycles  uint64
	SliceMisses []uint64
	Faults      uint64 //lint:allow scaleconserve (fixture: whole-run count, not a rate)
	PerCPU      []CPUStats
	Bus         BusStats
}

// mulDiv scales x by num/den.
func mulDiv(x, num, den uint64) uint64 {
	return x * num / den
}

// scaleBus is the interprocedural edge: Scale only touches DataCycles
// through it.
func scaleBus(b *BusStats, num, den uint64) {
	b.DataCycles = mulDiv(b.DataCycles, num, den)
}

// Scale extrapolates the counters by num/den.
func (r *Result) Scale(num, den uint64) {
	r.WallCycles = mulDiv(r.WallCycles, num, den)
	for i := range r.PerCPU {
		c := &r.PerCPU[i]
		c.ExecCycles = mulDiv(c.ExecCycles, num, den)
		c.Misses = mulDiv(c.Misses, num, den)
	}
	scaleBus(&r.Bus, num, den)
	// Per-slice splits cannot survive extrapolation exactly; drop them.
	r.SliceMisses = nil
}
