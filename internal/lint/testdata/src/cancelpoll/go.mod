module fixcancel

go 1.24
