// Package sim exercises the cancelpoll analyzer: nest-iterating loops
// reachable from Run* must reach an Options.Cancel poll.
package sim

import "fixcancel/internal/ir"

// Options carries the cancellation hook.
type Options struct {
	Cancel func() error
}

// Machine is the simulator.
type Machine struct {
	opts Options
	work int
}

// poll is the cancellation point.
func (m *Machine) poll() error {
	if m.opts.Cancel != nil {
		return m.opts.Cancel()
	}
	return nil
}

// runNest simulates one nest and polls.
func (m *Machine) runNest(n *ir.Nest) error {
	if err := m.poll(); err != nil {
		return err
	}
	m.work += n.Iterations
	return nil
}

// process does per-nest work without ever polling.
func (m *Machine) process(n *ir.Nest) error {
	m.work += n.Iterations
	return nil
}

// span is nest bookkeeping: no error result, no propagation path for a
// Cancel error, so loops calling it are exempt.
func span(n *ir.Nest, cpu int) (int, int) {
	return cpu, n.Iterations
}

// Run is the entry point the analyzer roots at.
func (m *Machine) Run(p *ir.Program) error {
	// Clean: runNest reaches the poll.
	for _, n := range p.Nests {
		if err := m.runNest(n); err != nil {
			return err
		}
	}
	for _, n := range p.Nests { // want "never reaches an Options.Cancel poll"
		if err := m.process(n); err != nil {
			return err
		}
	}
	// Bookkeeping: span cannot even return a Cancel error.
	total := 0
	for _, n := range p.Nests {
		lo, hi := span(n, 0)
		total += hi - lo
	}
	m.work += total
	//lint:allow cancelpoll (fixture: suppression covers the whole loop below)
	for _, n := range p.Nests {
		if err := m.process(n); err != nil {
			return err
		}
	}
	// Clean: polling inline in the loop body counts.
	for _, n := range p.Nests {
		if m.opts.Cancel != nil {
			if err := m.opts.Cancel(); err != nil {
				return err
			}
		}
		if err := m.process(n); err != nil {
			return err
		}
	}
	return nil
}

// helper is not reachable from any Run* entry point, so its unpolled
// loop is out of scope.
func (m *Machine) helper(p *ir.Program) error {
	for _, n := range p.Nests {
		if err := m.process(n); err != nil {
			return err
		}
	}
	return nil
}
