// Package ir carries the nest type the cancelpoll analyzer anchors on.
package ir

// Nest is one loop nest.
type Nest struct {
	Iterations int
}

// Program is a list of nests.
type Program struct {
	Nests []*Nest
}
