package server

// ErrorInfo is the wire error payload.
type ErrorInfo struct {
	Code    string
	Message string
}

// The declared code set. CodeOK anchors the missing-declaration
// diagnostic for the documented-but-undeclared "ghost" row.
const (
	CodeOK      = "ok"               // want "documents error code \"ghost\""
	CodeMissing = "missing_from_doc" // want "not documented in API.md"
)
