package server

// Good uses declared constants only.
func Good() *ErrorInfo {
	return &ErrorInfo{Code: CodeOK, Message: "fine"}
}

// AlsoGood assigns a declared constant.
func AlsoGood(e *ErrorInfo) {
	e.Code = CodeMissing
}

// Bad invents ad-hoc codes.
func Bad() *ErrorInfo {
	e := &ErrorInfo{Code: "adhoc"} // want "declared Code"
	e.Code = "worse"               // want "declared Code"
	return e
}
