module fixerr

go 1.24
