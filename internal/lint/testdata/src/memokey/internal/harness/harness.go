// Package harness exercises the memokey analyzer: Spec fields must be
// consumed by keyOf (directly or through the helpers it calls), and
// every specKey field must be populated by it.
package harness

// CoRunner is a co-scheduled workload reference.
type CoRunner struct {
	Workload string
	Weight   int // want "CoRunner.Weight is not consumed by keyOf"
}

// Spec describes one run.
type Spec struct {
	Workload  string
	Scale     int
	Prefetch  bool // want "Spec.Prefetch is not consumed by keyOf"
	Debug     bool //lint:allow memokey (presentation-only flag; results are identical either way)
	CoRunners []CoRunner

	// note is unexported: callers cannot set it, so keyOf owes it
	// nothing.
	note string
}

// specKey is the canonical comparable form.
type specKey struct {
	Workload  string
	Scale     int
	CoRunners string
	Stale     bool // want "specKey.Stale is never populated by keyOf"
}

// withDefaults normalizes the spec; keyOf reads Scale only through it,
// which is exactly the interprocedural edge the analyzer must follow.
func (s Spec) withDefaults() Spec {
	if s.Scale == 0 {
		s.Scale = 8
	}
	return s
}

// canonicalCoRunners renders the co-runner list; Workload is consumed
// here, two calls deep from keyOf.
func canonicalCoRunners(list []CoRunner) string {
	out := ""
	for _, cr := range list {
		out += cr.Workload + ";"
	}
	return out
}

func keyOf(s Spec) specKey {
	s = s.withDefaults()
	k := specKey{Workload: s.Workload}
	k.Scale = s.Scale
	k.CoRunners = canonicalCoRunners(s.CoRunners)
	return k
}
