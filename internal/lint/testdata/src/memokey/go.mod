module fixmemokey

go 1.24
