module fixtopo

go 1.24
