// Package harness consumes the arch model and exercises every
// topoaccess case: dirty read, topology-mediated read, construction
// exemptions, and suppression.
package harness

import "fixtopo/internal/arch"

// Bad reads LLC geometry straight off the config.
func Bad(cfg arch.Config) int {
	return cfg.L2.Size // want "direct Config.L2 geometry read outside internal/arch"
}

// Good goes through the topology.
func Good(cfg arch.Config) int {
	return cfg.Topo().LLC().TotalSize()
}

// Construct defines a new machine relative to an old one: reads inside
// an arch composite literal are construction, not consumption.
func Construct(base arch.Config) arch.Config {
	return arch.Config{
		L2:       arch.CacheGeometry{Size: base.L2.Size * 4, LineSize: base.L2.LineSize},
		PageSize: base.PageSize,
	}
}

// Assign overwrites the field; writes are construction too.
func Assign(cfg *arch.Config, g arch.CacheGeometry) {
	cfg.L2 = g
}

// Suppressed documents a deliberate raw read.
func Suppressed(cfg arch.Config) int {
	return cfg.L2.LineSize //lint:allow topoaccess (fixture: line size is topology-invariant here)
}
