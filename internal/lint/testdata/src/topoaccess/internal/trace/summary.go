// Package trace models the trace-driven run path for the topoaccess
// fixture: the online access-pattern summarizer derives per-page color
// hints from machine geometry, and that geometry must come from the
// topology-mediated accessors — a raw L2 read here would compute a
// color count that disagrees with clustered or sliced machines.
package trace

import "fixtopo/internal/arch"

// BadColors bakes the two-level assumption into the summarizer.
func BadColors(cfg arch.Config) int {
	return cfg.L2.Size / cfg.PageSize // want "direct Config.L2 geometry read outside internal/arch"
}

// GoodColors sizes the hint space off the effective LLC.
func GoodColors(cfg arch.Config) int {
	return cfg.Topo().LLC().TotalSize() / cfg.PageSize
}

// Replay drains a recorded stream; the line size guiding its reuse
// arithmetic must come from the topology too.
func Replay(cfg arch.Config, addrs []int) int {
	line := cfg.Topo().LLC().Geom.LineSize
	seen := map[int]bool{}
	for _, a := range addrs {
		seen[a/line] = true
	}
	return len(seen)
}
