// Package arch is a miniature machine model for the topoaccess fixture:
// the only package allowed to read Config.L2 directly.
package arch

// CacheGeometry sizes one cache.
type CacheGeometry struct {
	Size     int
	LineSize int
}

// Level is one level of the effective hierarchy.
type Level struct {
	Geom   CacheGeometry
	Slices int
}

// TotalSize is the level's aggregate capacity across slices.
func (l Level) TotalSize() int { return l.Geom.Size * l.Slices }

// Topology is an ordered list of levels, innermost first.
type Topology struct {
	Levels []Level
}

// LLC returns the last level.
func (t Topology) LLC() Level { return t.Levels[len(t.Levels)-1] }

// Config describes a machine.
type Config struct {
	L2       CacheGeometry
	PageSize int
}

// Topo derives the effective topology; inside arch the raw field read
// is allowed.
func (c Config) Topo() Topology {
	return Topology{Levels: []Level{{Geom: c.L2, Slices: 1}}}
}
