module fixstats

go 1.24
