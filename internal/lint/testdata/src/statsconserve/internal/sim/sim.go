package sim

// CPUStats mirrors the real simulator's counter block, with three
// coverage situations: fully covered, audited-only, reported-only.
type CPUStats struct {
	Good       uint64
	Orphan     uint64 // want "not checked by any"
	Unreported uint64 // want "never reaches the report package"
}

// Result carries the run-level counters.
type Result struct {
	WallCycles uint64
	PerCPU     []CPUStats
}

// Audit checks Good and (through a helper) Unreported, but nothing
// conserves Orphan.
func (r *Result) Audit() []string {
	var v []string
	for i := range r.PerCPU {
		s := &r.PerCPU[i]
		if s.Good > r.WallCycles || sumHelper(s) > r.WallCycles {
			v = append(v, "drift")
		}
	}
	return v
}

func sumHelper(s *CPUStats) uint64 { return s.Unreported }
