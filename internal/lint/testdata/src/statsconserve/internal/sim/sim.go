package sim

// CPUStats mirrors the real simulator's counter block, with three
// coverage situations: fully covered, audited-only, reported-only.
type CPUStats struct {
	Good       uint64
	Orphan     uint64 // want "not checked by any"
	Unreported uint64 // want "never reaches the report package"
	// TraceRefs and TraceDrops model counters added by the trace-driven
	// run path: new paths get no exemption. TraceRefs is audited and
	// reported like any IR-path counter; TraceDrops is reported but
	// escapes the audit, which must be flagged.
	TraceRefs  uint64
	TraceDrops uint64 // want "not checked by any"
}

// Result carries the run-level counters.
type Result struct {
	WallCycles uint64
	PerCPU     []CPUStats
}

// Audit checks Good and (through a helper) Unreported, but nothing
// conserves Orphan.
func (r *Result) Audit() []string {
	var v []string
	for i := range r.PerCPU {
		s := &r.PerCPU[i]
		if s.Good+s.TraceRefs > r.WallCycles || sumHelper(s) > r.WallCycles {
			v = append(v, "drift")
		}
	}
	return v
}

func sumHelper(s *CPUStats) uint64 { return s.Unreported }
