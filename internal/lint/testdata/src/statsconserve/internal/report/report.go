package report

import "fixstats/internal/sim"

// Row flattens a result. NoColumn is declared but never emitted.
type Row struct {
	Good       uint64
	Orphan     uint64
	Wall       uint64
	TraceRefs  uint64
	TraceDrops uint64
	NoColumn   uint64 // want "no column"
}

// FromResult reads the counters the report carries.
func FromResult(r *sim.Result) Row {
	var row Row
	for i := range r.PerCPU {
		row.Good += r.PerCPU[i].Good
		row.Orphan += r.PerCPU[i].Orphan
		row.TraceRefs += r.PerCPU[i].TraceRefs
		row.TraceDrops += r.PerCPU[i].TraceDrops
	}
	row.Wall = r.WallCycles
	return row
}

var columns = []struct {
	name  string
	value func(*Row) uint64
}{
	{"good", func(r *Row) uint64 { return r.Good }},
	{"orphan", func(r *Row) uint64 { return r.Orphan }},
	{"wall", func(r *Row) uint64 { return r.Wall }},
	{"trace_refs", func(r *Row) uint64 { return r.TraceRefs }},
	{"trace_drops", func(r *Row) uint64 { return r.TraceDrops }},
}

// Header keeps columns referenced.
func Header() []string {
	names := make([]string, len(columns))
	for i, c := range columns {
		names[i] = c.name
	}
	return names
}
