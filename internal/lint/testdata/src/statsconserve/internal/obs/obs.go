package obs

// Collector mirrors the real attribution collector's coverage
// situations: rendered directly, rendered through a helper, declared
// but never rendered, and the exemptions (unexported scalars,
// non-uint64 fields, slices).
type Collector struct {
	Shown    uint64
	Helped   uint64
	Orphan   uint64 // want "never rendered by .*Report"
	internal uint64
	Ratio    float64
	PerColor []uint64
}

// Report renders Shown itself and Helped through sumHelper; Orphan is
// fed by the simulator but never reaches the text report.
func (c *Collector) Report(topK int) string {
	if c.Shown+sumHelper(c) > uint64(topK) {
		return "hot"
	}
	return ""
}

func sumHelper(c *Collector) uint64 { return c.Helped + c.internal }

// Keep the exempt fields referenced so the fixture compiles vet-clean.
func (c *Collector) exempt() float64 { return c.Ratio + float64(len(c.PerColor)) }
