// Package other is outside the determinism scope: wall-clock time and
// unordered iteration are fine here.
package other

import "time"

// Now is allowed — this package produces no memoized results.
func Now() time.Time { return time.Now() }

// Dump is allowed for the same reason.
func Dump(m map[string]int) string {
	s := ""
	for k := range m {
		s += k
	}
	return s
}
