package sim

import (
	"fmt"
	"math/rand" // want "process-global randomness"
	"time"
)

// Stamp leaks wall-clock time into a result.
func Stamp() string {
	return time.Now().String() // want "wall-clock time"
}

// Roll uses the process-global generator (flagged at the import).
func Roll() int { return rand.Int() }

// Render lets map iteration order reach the output string.
func Render(counts map[string]int) string {
	out := ""
	for k, v := range counts { // want "map iteration order"
		out += fmt.Sprintf("%s=%d\n", k, v)
	}
	return out
}
