package sim

import "sort"

// proc is a stand-in for a process-table entry.
type proc struct {
	pid    int
	ran    uint64
	budget uint64
}

// RoundRobinBad dispatches straight out of the process table map: the
// order processes receive their quanta — and therefore every cycle
// count in the result — follows map iteration order.
func RoundRobinBad(table map[int]*proc, quantum uint64) []int {
	var order []int
	for pid, p := range table { // want "map iteration order"
		p.ran += quantum
		order = append(order, pid)
	}
	return order
}

// RoundRobinGood derives the dispatch order from the pids themselves:
// collect, sort ascending, then hand out quanta. The schedule is a pure
// function of the table's contents.
func RoundRobinGood(table map[int]*proc, quantum uint64) []int {
	var pids []int
	for pid := range table {
		pids = append(pids, pid)
	}
	sort.Ints(pids)
	for _, pid := range pids {
		table[pid].ran += quantum
	}
	return pids
}

// DrainBudgets only accumulates commutatively per entry; order cannot
// reach the outcome.
func DrainBudgets(table map[int]*proc, quantum uint64) {
	for _, p := range table {
		p.budget -= quantum
		p.ran += quantum
	}
}
