package sim

import "sort"

// Sum accumulates commutatively; iteration order cannot matter.
func Sum(counts map[string]int) int {
	total := 0
	for _, v := range counts {
		total += v
	}
	return total
}

// Count only increments.
func Count(counts map[string]int) int {
	n := 0
	for range counts {
		n++
	}
	return n
}

// Keys collects and then sorts: deterministic despite map iteration.
func Keys(counts map[string]int) []string {
	var keys []string
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Invert performs one write per unique key.
func Invert(m map[int]int) map[int]int {
	out := map[int]int{}
	for k, v := range m {
		out[k] = v
	}
	return out
}
