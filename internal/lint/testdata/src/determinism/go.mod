module fixdet

go 1.24
