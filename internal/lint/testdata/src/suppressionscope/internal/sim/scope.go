//lint:allow determinism (fixture: a file-leading comment attaches to no statement and must suppress nothing)

// Package sim exercises statement-scoped //lint:allow suppressions:
// a comment covers exactly one statement's line extent, never a
// neighbor, never the file.
package sim

import "time"

// Gap: a suppression separated from the next statement by a blank line
// attaches to nothing.
func Gap() time.Time {
	//lint:allow determinism (fixture: detached by the blank line below)

	return time.Now() // want "time.Now in a deterministic package"
}

// Neighbor: a trailing suppression covers exactly its own statement,
// not the line after it.
func Neighbor() (time.Time, time.Time) {
	a := time.Now() //lint:allow determinism (fixture: this statement only)
	b := time.Now() // want "time.Now in a deterministic package"
	return a, b
}

// Wide: a line-above suppression covers the statement's whole line
// extent, including calls on its continuation lines.
func Wide() []time.Time {
	//lint:allow determinism (fixture: covers the full multi-line statement)
	out := []time.Time{
		time.Now(),
		time.Now(),
	}
	return out
}
