module fixscope

go 1.24
