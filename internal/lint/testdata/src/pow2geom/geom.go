package geom

// CacheGeometry mirrors the arch struct of the same name.
type CacheGeometry struct {
	Size     int
	LineSize int
	Assoc    int
}

// Config mirrors arch.Config.
type Config struct {
	PageSize int
	L2       CacheGeometry
}

// Level mirrors the sliced-LLC fields of arch.Level.
type Level struct {
	Geom   CacheGeometry
	Slices int
}

// FloorPow2 rounds down to a power of two (the sanctioned helper).
func FloorPow2(x int) int {
	p := 1
	for p <= x/2 {
		p <<= 1
	}
	return p
}

// Good covers every provable shape: constants, FloorPow2, constant-base
// shifts, validated-field copies, and pow2*pow2 products.
func Good(scale, k int) Config {
	base := CacheGeometry{Size: 1 << 20, LineSize: 128, Assoc: 1}
	c := Config{PageSize: 4096, L2: base}
	c.L2 = CacheGeometry{Size: FloorPow2(1 << 20 / scale), LineSize: base.LineSize, Assoc: 1}
	c.L2.Size = base.Size * 4
	c.PageSize = 1 << k
	return c
}

// Bad covers the rejected shapes: non-power constants and unproven
// arithmetic.
func Bad(scale int) Config {
	c := Config{PageSize: 5000} // want "PageSize must be a power of two"
	c.L2.Size = 1 << 20 / scale // want "Size must be a power of two"
	c.L2.LineSize = 48          // want "LineSize must be a power of two"
	return c
}

// GoodSlices covers the sliced-level shapes the analyzer accepts.
func GoodSlices(nbits int) []Level {
	l := Level{Geom: CacheGeometry{Size: 1 << 19, LineSize: 128, Assoc: 1}, Slices: 4}
	l.Slices = 1 << nbits
	return []Level{l, {Slices: 1}}
}

// BadSlices covers slice counts that can never match an XOR hash.
func BadSlices(n int) Level {
	l := Level{Slices: 6} // want "Slices must be a power of two"
	l.Slices = 3 * n      // want "Slices must be a power of two"
	return l
}
