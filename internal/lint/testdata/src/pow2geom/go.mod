module fixp2

go 1.24
