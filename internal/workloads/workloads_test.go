package workloads

import (
	"testing"

	"repro/internal/compiler"
	"repro/internal/ir"
	"repro/internal/trace"
)

func TestAllWorkloadsValidate(t *testing.T) {
	for _, scale := range []int{1, 16, 32, 64} {
		if err := validateAll(scale); err != nil {
			t.Errorf("scale %d: %v", scale, err)
		}
	}
}

func TestRegistryComplete(t *testing.T) {
	names := Names()
	want := []string{"tomcatv", "swim", "su2cor", "hydro2d", "mgrid", "applu", "turb3d", "apsi", "fpppp", "wave5"}
	if len(names) != len(want) {
		t.Fatalf("registry has %d entries, want %d", len(names), len(want))
	}
	for i, n := range want {
		if names[i] != n {
			t.Errorf("registry[%d] = %s, want %s", i, names[i], n)
		}
	}
}

func TestByName(t *testing.T) {
	m, err := ByName("swim")
	if err != nil || m.Name != "swim" {
		t.Errorf("ByName(swim) = %v, %v", m, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown name accepted")
	}
}

func TestDataSetSizeRatios(t *testing.T) {
	// Table 1 shape: scaled sizes must preserve the paper's ordering and
	// approximate ratios (rounding to grid multiples costs some accuracy).
	sizes := map[string]int{}
	for _, row := range DataSetTable(DefaultScale) {
		sizes[row.Name] = row.Bytes
	}
	// wave5 (40MB) is the largest; fpppp (<1MB) the smallest.
	for name, sz := range sizes {
		if name == "wave5" {
			continue
		}
		if sz > sizes["wave5"] {
			t.Errorf("%s (%d) larger than wave5 (%d)", name, sz, sizes["wave5"])
		}
		if name != "fpppp" && sz < sizes["fpppp"] {
			t.Errorf("%s (%d) smaller than fpppp (%d)", name, sz, sizes["fpppp"])
		}
	}
	// applu (31MB) must exceed hydro2d (8MB) severalfold (paper: 3.9x;
	// hydro2d is sized down to exact half-span arrays, widening this).
	ratio := float64(sizes["applu"]) / float64(sizes["hydro2d"])
	if ratio < 2.5 || ratio > 8 {
		t.Errorf("applu/hydro2d ratio = %.2f, want in [2.5,8]", ratio)
	}
}

func TestScaledSizesNearTargets(t *testing.T) {
	for _, m := range Registry() {
		if m.Name == "fpppp" {
			continue // deliberately tiny
		}
		p := m.Build(DefaultScale)
		target := m.PaperDataMB * (1 << 20) / DefaultScale
		got := float64(p.DataBytes())
		if got < 0.4*target || got > 1.3*target {
			t.Errorf("%s: %d bytes, target %.0f (paper %.1fMB / %d)", m.Name, p.DataBytes(), target, m.PaperDataMB, DefaultScale)
		}
	}
}

func TestAppluHas33Iterations(t *testing.T) {
	p := Applu(DefaultScale)
	for _, ph := range p.Phases {
		for _, n := range ph.Nests {
			if n.Iterations != 33 {
				t.Errorf("applu nest %s has %d iterations, want 33", n.Name, n.Iterations)
			}
			if !n.Tiled {
				t.Errorf("applu nest %s not tiled", n.Name)
			}
		}
	}
}

func TestTurb3dPhaseStructure(t *testing.T) {
	p := Turb3d(DefaultScale)
	occ := []int{}
	for _, ph := range p.Phases {
		occ = append(occ, ph.Occurrences)
	}
	want := []int{11, 66, 100, 120}
	if len(occ) != 4 {
		t.Fatalf("turb3d phases = %d, want 4", len(occ))
	}
	for i := range want {
		if occ[i] != want[i] {
			t.Errorf("phase %d occurs %d times, want %d", i, occ[i], want[i])
		}
	}
}

func TestSu2corPartialAnalyzability(t *testing.T) {
	p := Su2cor(DefaultScale)
	unanalyzable := 0
	for _, a := range p.Arrays {
		if a.Unanalyzable {
			unanalyzable++
		}
	}
	if unanalyzable == 0 || unanalyzable == len(p.Arrays) {
		t.Errorf("su2cor must be partially analyzable, got %d/%d", unanalyzable, len(p.Arrays))
	}
	compiler.Layout(p, compiler.DefaultLayout(128, 32<<10, 4096))
	sum := compiler.Summarize(p)
	for _, ps := range sum.Partitions {
		if ps.Array.Unanalyzable {
			t.Errorf("summary for unanalyzable array %s", ps.Array.Name)
		}
	}
	if len(sum.Partitions) == 0 {
		t.Error("su2cor's gauge arrays should be summarized")
	}
}

func TestApsiSuppression(t *testing.T) {
	p := Apsi(DefaultScale)
	suppressed, parallel := 0, 0
	for _, n := range p.Phases[0].Nests {
		if n.Suppressed {
			suppressed++
		} else if n.Parallel {
			parallel++
		}
	}
	if suppressed < 2 {
		t.Errorf("apsi suppressed nests = %d, want ≥ 2", suppressed)
	}
	if parallel == 0 {
		t.Error("apsi should retain at least one coarse parallel loop")
	}
}

func TestFppppInstructionBound(t *testing.T) {
	p := Fpppp(DefaultScale)
	if p.CodeSize == 0 {
		t.Fatal("fpppp has no code segment")
	}
	n := p.Phases[0].Nests[0]
	if n.Parallel {
		t.Error("fpppp must have no loop-level parallelism")
	}
	if n.InstFootprint == 0 {
		t.Error("fpppp must have an instruction footprint")
	}
	if p.DataBytes() > 64<<10 {
		t.Errorf("fpppp data %d bytes, want tiny", p.DataBytes())
	}
}

func TestTomcatvColorCollision(t *testing.T) {
	// The trait the whole paper hinges on: tomcatv's arrays are whole
	// multiples of the cache span, so under page coloring every array's
	// chunk for a given CPU starts at the same color.
	p := Tomcatv(DefaultScale)
	compiler.Layout(p, compiler.DefaultLayout(128, 32<<10, 4096))
	colors := 16 // 1MB/16 cache, 4KB pages
	c0 := int(p.Arrays[0].Base / 4096 % uint64(colors))
	same := 0
	for _, a := range p.Arrays[1:] {
		if int(a.Base/4096%uint64(colors)) == c0 {
			same++
		}
	}
	if same < len(p.Arrays)-2 {
		t.Errorf("only %d/%d arrays share the start color; collision trait lost", same+1, len(p.Arrays))
	}
}

func TestWorkloadsStreamable(t *testing.T) {
	// Every workload must actually generate references on every CPU that
	// the schedule assigns work, at several CPU counts.
	for _, m := range Registry() {
		p := m.Build(64) // small for speed
		compiler.Layout(p, compiler.DefaultLayout(128, 8<<10, 4096))
		for _, ncpu := range []int{1, 4} {
			total := 0
			var r trace.Ref
			for _, ph := range p.Phases {
				for _, n := range ph.Nests {
					for cpu := 0; cpu < ncpu; cpu++ {
						s := ir.NestStream(p, n, ncpu, cpu)
						for s.Next(&r) {
							total++
						}
					}
				}
			}
			if total == 0 {
				t.Errorf("%s on %d cpus: no references", m.Name, ncpu)
			}
		}
	}
}

func TestGridDivisibility(t *testing.T) {
	for _, m := range Registry() {
		p := m.Build(DefaultScale)
		for _, ph := range p.Phases {
			for _, n := range ph.Nests {
				if !n.Parallel || n.Name == "gather" || n.Name == "push" {
					continue
				}
				if m.Name == "applu" {
					continue // 33 iterations is the point
				}
				if m.Name == "mgrid" && n.Iterations < 64 {
					continue // coarse levels are legitimately small
				}
				if n.Iterations%16 != 0 {
					t.Errorf("%s/%s: %d iterations not divisible by 16", m.Name, n.Name, n.Iterations)
				}
			}
		}
	}
}

func TestTurb3dHasRotateCommunication(t *testing.T) {
	p := Turb3d(DefaultScale)
	compiler.Layout(p, compiler.DefaultLayout(128, 8<<10, 4096))
	sum := compiler.Summarize(p)
	rotates := 0
	for _, c := range sum.Comms {
		if c.Rotate {
			rotates++
		}
	}
	if rotates == 0 {
		t.Error("turb3d's periodic stencil should summarize as rotate communication")
	}
}

func TestReversePartitionSummaries(t *testing.T) {
	// Reverse partitions (§5.1) flow through the summarizer: a reverse
	// nest produces a summary whose regions are the mirror image of the
	// forward ones. (Reverse assignment remaps data to processors, which
	// none of the bundled SPEC analogs do; the feature is exercised here
	// and by the simulator's random-program invariants.)
	p := Hydro2d(DefaultScale)
	rev := p.Phases[0].Nests[3]
	rev.Sched = ir.Schedule{Kind: ir.Even, Reverse: true}
	compiler.Layout(p, compiler.DefaultLayout(128, 8<<10, 4096))
	sum := compiler.Summarize(p)
	var fwd, mirror *compiler.PartitionSummary
	for i := range sum.Partitions {
		ps := &sum.Partitions[i]
		if ps.Array.Name != "hy0" {
			continue
		}
		if ps.Sched.Reverse {
			mirror = ps
		} else {
			fwd = ps
		}
	}
	if fwd == nil || mirror == nil {
		t.Fatal("expected both forward and reverse summaries for hy0")
	}
	fl, fh := fwd.Region(4, 0)
	ml, mh := mirror.Region(4, 3)
	if fl != ml || fh != mh {
		t.Errorf("reverse cpu3 region [%d,%d) != forward cpu0 region [%d,%d)", ml, mh, fl, fh)
	}
}
