package workloads

import "repro/internal/ir"

// Tomcatv models 101.tomcatv: a 2D vectorized mesh-generation code with
// seven large square arrays swept by 5-point stencils every timestep.
// Its per-CPU chunks of all seven arrays start at the same page color
// under page coloring (array sizes are whole multiples of the cache
// span), producing the severe conflict behaviour of Figures 3 and 6.
func Tomcatv(scale int) *ir.Program {
	n := grid(14<<20, 7, scale)
	as := arrays("tc", 7, n)
	x, y, rx, ry, aa, dd, d := as[0], as[1], as[2], as[3], as[4], as[5], as[6]
	main := &ir.Phase{Name: "timestep", Occurrences: 100, Nests: []*ir.Nest{
		stencilNest("rhs", n, n, []*ir.Array{x, y}, []*ir.Array{rx, ry}, 36),
		sweepNest("lhs", n, n, []*ir.Array{x, y, rx, ry}, []*ir.Array{aa, dd}, 30),
		sweepNest("solve", n, n, []*ir.Array{aa, dd, rx, ry}, []*ir.Array{d}, 24),
		sweepNest("update", n, n, []*ir.Array{d, rx, ry}, []*ir.Array{x, y}, 18),
	}}
	return &ir.Program{
		Name:   "tomcatv",
		Arrays: as,
		Init:   initPhase(n, n, as),
		Phases: []*ir.Phase{main},
	}
}

// Swim models 102.swim: shallow-water finite differences over thirteen
// arrays in three sweeps (CALC1/2/3) per timestep. Its 512×512 arrays
// are exact multiples of the external-cache span, so under page coloring
// every array's chunk for a given CPU lands on the same colors — the
// pathology behind its extreme mapping sensitivity and 2.6x CDPC win on
// the AlphaServer (§7). We size each array to exactly one cache span.
func Swim(scale int) *ir.Program {
	span := (1 << 20) / scale // external-cache span, tracks arch.Base
	if span < 16<<10 {
		span = 16 << 10
	}
	unit := 64
	iters := span / 8 / unit
	as := bandArrays("sw", 13, iters, unit)
	u, v, p := as[0], as[1], as[2]
	unew, vnew, pnew := as[3], as[4], as[5]
	uold, vold, pold := as[6], as[7], as[8]
	cu, cv, z, h := as[9], as[10], as[11], as[12]
	main := &ir.Phase{Name: "timestep", Occurrences: 120, Nests: []*ir.Nest{
		stencilNest("calc1", iters, unit, []*ir.Array{u, v, p}, []*ir.Array{cu, cv, z, h}, 42),
		stencilNest("calc2", iters, unit, []*ir.Array{cu, cv, z, h, uold, vold, pold}, []*ir.Array{unew, vnew, pnew}, 48),
		sweepNest("calc3", iters, unit, []*ir.Array{unew, vnew, pnew, u, v, p}, []*ir.Array{uold, vold, pold}, 24),
		sweepNest("copyback", iters, unit, []*ir.Array{unew, vnew, pnew}, []*ir.Array{u, v, p}, 12),
	}}
	return &ir.Program{
		Name:   "swim",
		Arrays: as,
		Init:   initPhase(iters, unit, as),
		Phases: []*ir.Phase{main},
	}
}

// Su2cor models 103.su2cor: quantum-physics Monte Carlo where the gauge
// arrays are analyzable but the fermion vectors are accessed through
// index permutations the compiler cannot summarize. CDPC maps only the
// gauge arrays, and "the mapping happens to conflict with the other data
// structures" (§6.1) — the paper's one slight regression.
func Su2cor(scale int) *ir.Program {
	n := grid(23<<20, 6, scale)
	as := arrays("su", 6, n)
	g0, g1, g2, g3 := as[0], as[1], as[2], as[3]
	f0, f1 := as[4], as[5]
	f0.Unanalyzable = true
	f1.Unanalyzable = true
	gather := &ir.Nest{
		Name:       "gather",
		Parallel:   true,
		Iterations: n,
		InnerIters: n / 8,
		Accesses: []ir.Access{
			// Strided gather over the fermion vectors: the pattern the
			// compiler's affine analysis gives up on.
			{Array: f0, Kind: ir.Load, OuterStride: n, InnerStride: 8},
			{Array: f1, Kind: ir.Store, OuterStride: n, InnerStride: 8},
			colRef(g0, ir.Load, n, 0, 0),
		},
		WorkPerIter: 30,
		Sched:       ir.Schedule{Kind: ir.Even},
	}
	main := &ir.Phase{Name: "sweep", Occurrences: 60, Nests: []*ir.Nest{
		stencilNest("gauge", n, n, []*ir.Array{g0, g1}, []*ir.Array{g2, g3}, 36),
		gather,
		sweepNest("measure", n, n, []*ir.Array{g2, g3}, []*ir.Array{g0, g1}, 24),
	}}
	return &ir.Program{
		Name:   "su2cor",
		Arrays: as,
		Init:   initPhase(n, n, as),
		Phases: []*ir.Phase{main},
	}
}

// Hydro2d models 104.hydro2d: Navier-Stokes on a 2D grid with ten
// arrays, each half a cache span (so pairs of arrays collide in color
// space under page coloring); its 8 MB data set is the first to fit the
// aggregate cache, so CDPC wins from two processors (§6.1).
func Hydro2d(scale int) *ir.Program {
	span := (1 << 20) / scale
	if span < 16<<10 {
		span = 16 << 10
	}
	unit := 64
	iters := span / 2 / 8 / unit // half-span arrays
	as := bandArrays("hy", 10, iters, unit)
	main := &ir.Phase{Name: "timestep", Occurrences: 100, Nests: []*ir.Nest{
		stencilNest("advect", iters, unit, as[0:3], as[3:5], 36),
		stencilNest("pressure", iters, unit, as[3:6], as[6:8], 36),
		sweepNest("viscosity", iters, unit, as[6:9], as[9:10], 24),
		sweepNest("update", iters, unit, []*ir.Array{as[9], as[3]}, as[0:3], 18),
	}}
	return &ir.Program{
		Name:   "hydro2d",
		Arrays: as,
		Init:   initPhase(iters, unit, as),
		Phases: []*ir.Phase{main},
	}
}

// Mgrid models 107.mgrid: multigrid V-cycles over a level hierarchy.
// High reuse at the fine level keeps replacement misses low, so CDPC
// shows only slight improvements at eight or more processors (§6.1).
func Mgrid(scale int) *ir.Program {
	n := grid(7<<20, 4, scale) // fine level; coarse levels are fractions
	u := &ir.Array{Name: "mg_u", ElemSize: 8, Elems: n * n}
	v := &ir.Array{Name: "mg_v", ElemSize: 8, Elems: n * n}
	r := &ir.Array{Name: "mg_r", ElemSize: 8, Elems: n * n}
	c1 := &ir.Array{Name: "mg_c1", ElemSize: 8, Elems: (n / 2) * (n / 2)}
	c2 := &ir.Array{Name: "mg_c2", ElemSize: 8, Elems: (n / 4) * (n / 4)}
	restrictNest := &ir.Nest{
		Name:       "restrict",
		Parallel:   true,
		Iterations: n / 2,
		InnerIters: n / 2,
		Accesses: []ir.Access{
			// Read every other fine point, write the coarse grid.
			{Array: r, Kind: ir.Load, OuterStride: 2 * n, InnerStride: 2},
			{Array: c1, Kind: ir.Store, OuterStride: n / 2, InnerStride: 1},
		},
		WorkPerIter: 18,
		Sched:       ir.Schedule{Kind: ir.Even},
	}
	coarse := &ir.Nest{
		Name:       "coarse-relax",
		Parallel:   true,
		Iterations: n / 4,
		InnerIters: n / 4,
		Accesses: []ir.Access{
			{Array: c1, Kind: ir.Load, OuterStride: n / 4, InnerStride: 1},
			{Array: c2, Kind: ir.Store, OuterStride: n / 4, InnerStride: 1},
		},
		WorkPerIter: 18,
		Sched:       ir.Schedule{Kind: ir.Even},
	}
	main := &ir.Phase{Name: "vcycle", Occurrences: 40, Nests: []*ir.Nest{
		stencilNest("relax", n, n, []*ir.Array{u, r}, []*ir.Array{v}, 60),
		stencilNest("residual", n, n, []*ir.Array{v, u}, []*ir.Array{r}, 60),
		restrictNest,
		coarse,
		sweepNest("prolong", n, n, []*ir.Array{v}, []*ir.Array{u}, 30),
	}}
	return &ir.Program{
		Name:   "mgrid",
		Arrays: []*ir.Array{u, v, r, c1, c2},
		Init:   initPhase(n, n, []*ir.Array{u, v, r}),
		Phases: []*ir.Phase{main},
	}
}

// Applu models 110.applu: SSOR on a 3D grid whose parallel loops have
// only 33 iterations (so 16 processors are no better than 11, §4.1) and
// whose tiling — introduced to cut synchronization — prevents prefetch
// software-pipelining (§6.2). Its 31 MB data set keeps it capacity-bound
// on the 1 MB configuration; CDPC only pays off at 4 MB (§6.1).
func Applu(scale int) *ir.Program {
	const iters = 33
	unit := (31 << 20) / scale / 5 / 8 / iters
	unit = (unit / 512) * 512 // page-align the partition unit
	if unit < 512 {
		unit = 512
	}
	elems := unit * iters
	as := make([]*ir.Array, 5)
	names := []string{"ap_a", "ap_b", "ap_c", "ap_u", "ap_rsd"}
	for i := range as {
		as[i] = &ir.Array{Name: names[i], ElemSize: 8, Elems: elems}
	}
	mk := func(name string, srcs, dsts []*ir.Array) *ir.Nest {
		var acc []ir.Access
		for _, s := range srcs {
			acc = append(acc, ir.Access{Array: s, Kind: ir.Load, OuterStride: unit, InnerStride: 1})
		}
		for _, d := range dsts {
			acc = append(acc, ir.Access{Array: d, Kind: ir.Store, OuterStride: unit, InnerStride: 1})
		}
		return &ir.Nest{
			Name:        name,
			Parallel:    true,
			Iterations:  iters,
			InnerIters:  unit,
			Accesses:    acc,
			WorkPerIter: 54,
			Tiled:       true,
			Sched:       ir.Schedule{Kind: ir.Blocked},
		}
	}
	initN := mk("touch", nil, as)
	initN.Tiled = false
	main := &ir.Phase{Name: "ssor", Occurrences: 50, Nests: []*ir.Nest{
		mk("jacld", []*ir.Array{as[0], as[1], as[3]}, []*ir.Array{as[4]}),
		mk("blts", []*ir.Array{as[4], as[2]}, []*ir.Array{as[3]}),
		mk("rhs", []*ir.Array{as[3], as[0]}, []*ir.Array{as[1], as[2]}),
	}}
	return &ir.Program{
		Name:   "applu",
		Arrays: as,
		Init:   &ir.Phase{Name: "init", Occurrences: 1, Nests: []*ir.Nest{initN}},
		Phases: []*ir.Phase{main},
	}
}

// Turb3d models 125.turb3d: a turbulence FFT code with four distinct
// phases occurring 11, 66, 100 and 120 times in the steady state (§3.2's
// phase example). Transposes keep every sweep column-partitioned, giving
// the good locality and small replacement-miss counts of Figure 6; its
// power-of-two FFT arrays are span multiples (mild start-color
// collisions that CDPC cleans up above four processors).
func Turb3d(scale int) *ir.Program {
	n := pow2Side(24<<20, 9, scale)
	as := arrays("tb", 9, n)
	u, v, w := as[0], as[1], as[2]
	t0, t1, t2 := as[3], as[4], as[5]
	ox, oy, oz := as[6], as[7], as[8]
	phases := []*ir.Phase{
		{Name: "fftx", Occurrences: 11, Nests: []*ir.Nest{
			sweepNest("fftx", n, n, []*ir.Array{u, v, w}, []*ir.Array{ox, oy, oz}, 72),
		}},
		{Name: "transpose", Occurrences: 66, Nests: []*ir.Nest{
			sweepNest("transpose", n, n, []*ir.Array{ox, oy, oz}, []*ir.Array{t0, t1, t2}, 18),
		}},
		{Name: "ffty", Occurrences: 100, Nests: []*ir.Nest{
			sweepNest("ffty", n, n, []*ir.Array{t0, t1, t2}, []*ir.Array{t0, t1, t2}, 72),
		}},
		{Name: "nonlinear", Occurrences: 120, Nests: []*ir.Nest{
			// Turbulence in a periodic box: the stencil wraps around the
			// domain, which the compiler summarizes as rotate
			// communication (§5.1).
			periodic(stencilNest("nonlinear", n, n, []*ir.Array{t0, t1, t2}, []*ir.Array{u, v, w}, 60)),
		}},
	}
	return &ir.Program{
		Name:   "turb3d",
		Arrays: as,
		Init:   initPhase(n, n, as),
		Phases: phases,
	}
}

// Apsi models 141.apsi: a mesoscale weather code whose loop-level
// parallelism is too fine-grained to exploit, so the compiler suppresses
// it (the master runs the loops alone, §4.1): no speedup and no CDPC
// sensitivity.
func Apsi(scale int) *ir.Program {
	n := grid(9<<20, 6, scale)
	as := arrays("ap", 6, n)
	suppress := func(nest *ir.Nest) *ir.Nest {
		nest.Suppressed = true
		return nest
	}
	main := &ir.Phase{Name: "timestep", Occurrences: 80, Nests: []*ir.Nest{
		suppress(stencilNest("advection", n, n, as[0:2], as[2:4], 30)),
		suppress(sweepNest("diffusion", n, n, as[2:4], as[4:6], 24)),
		sweepNest("filter", n, n, as[4:5], as[5:6], 18), // the one coarse loop
	}}
	return &ir.Program{
		Name:   "apsi",
		Arrays: as,
		Init:   initPhase(n, n, as),
		Phases: []*ir.Phase{main},
	}
}

// Fpppp models 145.fpppp: multi-electron integrals with essentially no
// loop-level parallelism and a tiny data set; it is limited entirely by
// instruction fetches served from the external cache and puts no load on
// the bus (§4.1). Page mapping policy is irrelevant to it (Table 2 shows
// identical times under every policy).
func Fpppp(scale int) *ir.Program {
	n := 32
	a := &ir.Array{Name: "fp_ints", ElemSize: 8, Elems: n * n}
	b := &ir.Array{Name: "fp_out", ElemSize: 8, Elems: n * n}
	codeSize := 512 << 10 / scale
	if codeSize < 16<<10 {
		codeSize = 16 << 10
	}
	nest := &ir.Nest{
		Name:       "integrals",
		Parallel:   false,
		Iterations: 8,
		InnerIters: 16,
		Accesses: []ir.Access{
			{Array: a, Kind: ir.Load, OuterStride: n, InnerStride: 1},
			{Array: b, Kind: ir.Store, OuterStride: n, InnerStride: 1},
		},
		WorkPerIter:   40,
		InstFootprint: codeSize / 16, // the giant basic blocks walk the text
	}
	return &ir.Program{
		Name:     "fpppp",
		Arrays:   []*ir.Array{a, b},
		Phases:   []*ir.Phase{{Name: "scf", Occurrences: 30, Nests: []*ir.Nest{nest}}},
		CodeSize: codeSize,
	}
}

// Wave5 models 146.wave5: a particle-in-cell plasma code. The particle
// push scatters through index arrays (unanalyzable), parts of the field
// solve are too fine-grained and run suppressed, and its 40 MB data set
// dwarfs every cache configuration — so no page mapping policy moves it
// much (§7).
func Wave5(scale int) *ir.Program {
	n := grid(40<<20, 8, scale)
	as := arrays("wv", 8, n)
	ex, ey := as[0], as[1]
	px, py, vx, vy := as[2], as[3], as[4], as[5]
	rho, phi := as[6], as[7]
	for _, particle := range []*ir.Array{px, py, vx, vy} {
		particle.Unanalyzable = true
	}
	push := &ir.Nest{
		Name:       "push",
		Parallel:   true,
		Iterations: n,
		InnerIters: n / 4,
		Accesses: []ir.Access{
			{Array: px, Kind: ir.Load, OuterStride: n, InnerStride: 4},
			{Array: py, Kind: ir.Load, OuterStride: n, InnerStride: 4},
			{Array: vx, Kind: ir.Store, OuterStride: n, InnerStride: 4},
			{Array: vy, Kind: ir.Store, OuterStride: n, InnerStride: 4},
			colRef(ex, ir.Load, n, 0, 0),
			colRef(ey, ir.Load, n, 0, 0),
		},
		WorkPerIter: 36,
		Sched:       ir.Schedule{Kind: ir.Even},
	}
	fieldFine := stencilNest("field-fine", n, n, []*ir.Array{rho}, []*ir.Array{phi}, 24)
	fieldFine.Suppressed = true
	main := &ir.Phase{Name: "step", Occurrences: 60, Nests: []*ir.Nest{
		push,
		fieldFine,
		stencilNest("field", n, n, []*ir.Array{phi}, []*ir.Array{ex, ey}, 30),
		sweepNest("deposit", n, n, []*ir.Array{ex, ey}, []*ir.Array{rho}, 18),
	}}
	return &ir.Program{
		Name:   "wave5",
		Arrays: as,
		Init:   initPhase(n, n, []*ir.Array{ex, ey, rho, phi}),
		Phases: []*ir.Phase{main},
	}
}
