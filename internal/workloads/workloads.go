package workloads

import (
	"fmt"

	"repro/internal/ir"
)

// DefaultScale divides the paper's data-set and cache sizes; 16 keeps
// full experiment sweeps in seconds while preserving every ratio.
const DefaultScale = 16

// Meta describes a workload for the harness and the Table 1 report.
type Meta struct {
	Name string
	// PaperDataMB is the reference data-set size from Table 1.
	PaperDataMB float64
	// SpecRefSeconds is the SPEC95 reference time used in ratio
	// calculations (SparcStation 10 reference, per SPEC95).
	SpecRefSeconds float64
	// Traits summarizes the paper-reported behaviour being reproduced.
	Traits string

	Build func(scale int) *ir.Program
}

// Registry lists all ten workloads in SPEC95fp order.
func Registry() []Meta {
	return []Meta{
		{"tomcatv", 14, 3700, "7 arrays; stencil; large CDPC win; bus-bound at 16p", Tomcatv},
		{"swim", 14, 8600, "13 arrays; shallow water; CDPC win from 8p; alignment-sensitive", Swim},
		{"su2cor", 23, 1400, "partially analyzable; CDPC slightly degrades", Su2cor},
		{"hydro2d", 8, 2400, "stencil; CDPC win from 2p; fits 4MB cache", Hydro2d},
		{"mgrid", 7, 1800, "multigrid levels; few replacement misses", Mgrid},
		{"applu", 31, 2200, "33-iteration loops; tiled (prefetch-hostile); capacity-bound", Applu},
		{"turb3d", 24, 4100, "4 phases x {11,66,100,120}; good locality", Turb3d},
		{"apsi", 9, 2100, "fine-grain parallelism suppressed; no speedup", Apsi},
		{"fpppp", 0.5, 9600, "no loop parallelism; instruction-bound", Fpppp},
		{"wave5", 40, 3000, "particle scatter unanalyzable; suppressed loops", Wave5},
	}
}

// ByName returns the named workload's metadata.
func ByName(name string) (Meta, error) {
	for _, m := range Registry() {
		if m.Name == name {
			return m, nil
		}
	}
	return Meta{}, fmt.Errorf("workloads: unknown workload %q", name)
}

// Names returns all workload names, sorted as in the registry.
func Names() []string {
	var names []string
	for _, m := range Registry() {
		names = append(names, m.Name)
	}
	return names
}

// grid builds square arrays sized so that count arrays total
// targetBytes/scale, with the side rounded to a multiple of 16 so that
// partitions divide evenly across 1–16 CPUs.
func grid(targetBytes, count, scale int) int {
	if scale < 1 {
		scale = 1
	}
	bytesPer := targetBytes / scale / count
	n := 16
	for (n+16)*(n+16)*8 <= bytesPer {
		n += 16
	}
	// Round to the NEAREST multiple of 16, not down: sizes track the
	// paper's Table 1 targets more closely.
	if over := n + 16; (over*over*8 - bytesPer) < (bytesPer - n*n*8) {
		n = over
	}
	return n
}

// arrays builds count named square arrays of side n.
func arrays(prefix string, count, n int) []*ir.Array {
	out := make([]*ir.Array, count)
	for i := range out {
		out[i] = &ir.Array{Name: fmt.Sprintf("%s%d", prefix, i), ElemSize: 8, Elems: n * n}
	}
	return out
}

// colRef makes a column-partitioned access: element(i,j) = i·unit + j +
// colOff·unit + rowOff, where i is the distributed column index and j the
// position within the column (unit elements per column).
func colRef(a *ir.Array, kind ir.RefKind, unit, colOff, rowOff int) ir.Access {
	return ir.Access{Array: a, Kind: kind, OuterStride: unit, InnerStride: 1, Offset: colOff*unit + rowOff}
}

// pow2Side returns the power-of-two side closest to the grid() side for
// the same target: arrays whose byte size is an exact multiple of the
// cache span reproduce the start-color collisions behind the paper's
// biggest CDPC wins (tomcatv, swim, turb3d).
func pow2Side(targetBytes, count, scale int) int {
	want := grid(targetBytes, count, scale)
	n := 16
	for n*2 <= want {
		n *= 2
	}
	if 2*n-want < want-n {
		n *= 2
	}
	return n
}

// stencilNest builds a parallel column sweep (iters columns of unit
// elements) reading the given sources with a column stencil (i-1, i,
// i+1) and writing the destinations.
func stencilNest(name string, iters, unit int, srcs, dsts []*ir.Array, work int) *ir.Nest {
	var acc []ir.Access
	for _, s := range srcs {
		acc = append(acc,
			colRef(s, ir.Load, unit, 0, 0),
			colRef(s, ir.Load, unit, -1, 0),
			colRef(s, ir.Load, unit, 1, 0),
		)
	}
	for _, d := range dsts {
		acc = append(acc, colRef(d, ir.Store, unit, 0, 0))
	}
	return &ir.Nest{
		Name:        name,
		Parallel:    true,
		Iterations:  iters,
		InnerIters:  unit,
		Accesses:    acc,
		WorkPerIter: work,
		Sched:       ir.Schedule{Kind: ir.Even},
	}
}

// sweepNest builds a parallel column sweep with plain (no-stencil) reads
// and writes.
func sweepNest(name string, iters, unit int, srcs, dsts []*ir.Array, work int) *ir.Nest {
	var acc []ir.Access
	for _, s := range srcs {
		acc = append(acc, colRef(s, ir.Load, unit, 0, 0))
	}
	for _, d := range dsts {
		acc = append(acc, colRef(d, ir.Store, unit, 0, 0))
	}
	return &ir.Nest{
		Name:        name,
		Parallel:    true,
		Iterations:  iters,
		InnerIters:  unit,
		Accesses:    acc,
		WorkPerIter: work,
		Sched:       ir.Schedule{Kind: ir.Even},
	}
}

// periodic marks a nest's offset accesses as wrapping (periodic
// boundary conditions → rotate communication, §5.1).
func periodic(n *ir.Nest) *ir.Nest {
	for i := range n.Accesses {
		if n.Accesses[i].Offset != 0 {
			n.Accesses[i].Wrap = true
		}
	}
	return n
}

// initPhase builds the parallel first-touch initialization over all
// arrays (SUIF parallelizes the init loops, so under bin hopping each
// CPU's pages are faulted interleaved — the §2.1 fault-order effect).
func initPhase(iters, unit int, as []*ir.Array) *ir.Phase {
	var acc []ir.Access
	for _, a := range as {
		acc = append(acc, colRef(a, ir.Store, unit, 0, 0))
	}
	return &ir.Phase{
		Name:        "init",
		Occurrences: 1,
		Nests: []*ir.Nest{{
			Name:        "first-touch",
			Parallel:    true,
			Iterations:  iters,
			InnerIters:  unit,
			Accesses:    acc,
			WorkPerIter: 1,
			Sched:       ir.Schedule{Kind: ir.Even},
		}},
	}
}

// bandArrays builds count 1-D arrays of exactly iters·unit elements
// each (for workloads whose arrays must hit an exact byte size).
func bandArrays(prefix string, count, iters, unit int) []*ir.Array {
	out := make([]*ir.Array, count)
	for i := range out {
		out[i] = &ir.Array{Name: fmt.Sprintf("%s%d", prefix, i), ElemSize: 8, Elems: iters * unit}
	}
	return out
}

// validateAll is a build-time sanity check used by tests.
func validateAll(scale int) error {
	for _, m := range Registry() {
		p := m.Build(scale)
		if err := p.Validate(); err != nil {
			return fmt.Errorf("%s: %w", m.Name, err)
		}
	}
	return nil
}

// DataSetTable returns (name, bytes) pairs for the Table 1 report, in
// registry order.
func DataSetTable(scale int) []struct {
	Name  string
	Bytes int
} {
	var out []struct {
		Name  string
		Bytes int
	}
	for _, m := range Registry() {
		p := m.Build(scale)
		out = append(out, struct {
			Name  string
			Bytes int
		}{m.Name, p.DataBytes()})
	}
	return out
}
