// Package workloads defines ten synthetic analogs of the SPEC95fp
// benchmark suite, written in the compiler IR. Each program reproduces
// the traits the paper reports for its namesake — data-set size ratio
// (Table 1), array count, phase structure, parallelism profile, and
// pathologies (applu's 33-iteration loops and tiling, su2cor's
// non-analyzable accesses, fpppp's instruction-bound sequential code,
// apsi/wave5's suppressed fine-grain parallelism) — scaled down by the
// same factor as the machine so that working-set : cache ratios match
// the paper's (§3.1, Table 1).
package workloads
