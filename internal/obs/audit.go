package obs

import (
	"fmt"
	"strings"
)

// Violation is one failed conservation invariant, reported by the audit
// pass after a run. The invariants turn silent accounting drift —
// cycles booked twice, misses classified into no bucket, bus occupancy
// exceeding wall time — into hard failures.
type Violation struct {
	// Check names the invariant, e.g. "cycle-conservation".
	Check string
	// Detail states the observed values.
	Detail string
}

// String implements fmt.Stringer.
func (v Violation) String() string { return v.Check + ": " + v.Detail }

// AuditError converts a violation list into a single error, or nil when
// the list is empty — the form command-line tools and the experiment
// harness propagate.
func AuditError(vs []Violation) error {
	if len(vs) == 0 {
		return nil
	}
	var b strings.Builder
	fmt.Fprintf(&b, "audit: %d invariant violation(s)", len(vs))
	for _, v := range vs {
		b.WriteString("\n  ")
		b.WriteString(v.String())
	}
	return fmt.Errorf("%s", b.String())
}
