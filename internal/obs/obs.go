package obs

import (
	"fmt"
	"sort"
)

// MissClass labels one external-cache miss for attribution. It mirrors
// the simulator's classification (coherence class plus the shadow-cache
// conflict/capacity split) and adds the instruction-fetch class that the
// machine-wide counters fold into plain L2 misses.
type MissClass uint8

// The attribution classes.
const (
	Cold MissClass = iota
	Conflict
	Capacity
	TrueShare
	FalseShare
	InstFetch

	// NumClasses sizes ClassCounts.
	NumClasses
)

// String implements fmt.Stringer.
func (c MissClass) String() string {
	switch c {
	case Cold:
		return "cold"
	case Conflict:
		return "conflict"
	case Capacity:
		return "capacity"
	case TrueShare:
		return "true-share"
	case FalseShare:
		return "false-share"
	case InstFetch:
		return "inst-fetch"
	default:
		return fmt.Sprintf("MissClass(%d)", uint8(c))
	}
}

// ClassCounts is a per-class miss histogram.
type ClassCounts [NumClasses]uint64

// Total sums all classes.
func (c *ClassCounts) Total() uint64 {
	var t uint64
	for _, n := range c {
		t += n
	}
	return t
}

// PageStats is the attribution record of one virtual page of one
// process (virtual pages are per-address-space, so attribution keys on
// the pair; PID is 0 on single-process machines).
type PageStats struct {
	PID    int
	VPN    uint64
	Color  int // frame color at the page's most recent miss
	Misses ClassCounts
	// StallCycles is the total miss stall attributed to this page.
	StallCycles uint64
}

// pageKey identifies one process's virtual page.
type pageKey struct {
	pid int
	vpn uint64
}

// Options configures a Collector.
type Options struct {
	// Tracer, when non-nil, receives the structured event stream (page
	// faults, hint outcomes, recolorings, conflict-miss bursts).
	Tracer Tracer
	// BurstThreshold is how many conflict misses a single page takes,
	// without an intervening non-conflict miss, before a ConflictBurst
	// event is emitted; 0 uses DefaultBurstThreshold.
	BurstThreshold uint32
}

// DefaultBurstThreshold is the conflict-run length that counts as a
// burst: half a page's worth of lines thrashing is well past noise.
const DefaultBurstThreshold = 32

// Collector accumulates attribution for one simulation run. Attach it
// via sim.Options.Obs (or harness.Spec.Obs); the simulator fills it
// during Run and snapshots the set-level and allocator state at the end.
// Not safe for concurrent use, and not reusable across runs.
type Collector struct {
	tracer Tracer
	burstN uint32

	colors       int
	sets         int
	setsPerColor int
	slices       int
	sliceSets    int

	perColor      []ClassCounts
	perColorStall []uint64
	pages         map[pageKey]*PageStats
	burst         map[pageKey]uint32

	// Per-set external-cache profile, summed over CPUs (filled by the
	// simulator at the end of the run from the cache SetProfiles).
	SetMisses        []uint64
	SetEvictions     []uint64
	SetInvalidations []uint64
	// SetOccupancy is the fraction of valid ways per set at run end,
	// averaged over CPUs.
	SetOccupancy []float64

	// Per-slice attribution on sliced-LLC topologies (nil otherwise):
	// SliceMisses aggregates SetMisses by slice (global set numbering is
	// slice-major, so slice = set / sliceSets), SliceOccupancy averages
	// SetOccupancy the same way. Filled by RecordSetProfile after
	// InitSlices has sized them.
	SliceMisses    []uint64
	SliceOccupancy []float64

	// Allocator/VM snapshot at run end.
	ColorMapped []int // mapped pages per color
	ColorFree   []int // free frames per color
	Faults      uint64
	HintedFault uint64
	HonoredHint uint64
	Recolorings uint64

	// CrossDomain counts data misses whose evicted victim belonged to
	// another isolation domain (or another process, unpartitioned) —
	// the co-scheduled collision pathology. perColorCross breaks the
	// count down by the victim frame's color; on a partitioned run both
	// must stay zero (the simulator's audit invariant 12).
	CrossDomain   uint64
	perColorCross []uint64
}

// NewCollector creates an empty collector.
func NewCollector(o Options) *Collector {
	n := o.BurstThreshold
	if n == 0 {
		n = DefaultBurstThreshold
	}
	return &Collector{
		tracer: o.Tracer,
		burstN: n,
		pages:  make(map[pageKey]*PageStats),
		burst:  make(map[pageKey]uint32),
	}
}

// Init sizes the per-color tables for the machine under test; the
// simulator calls it from New. setsPerColor is the number of external-
// cache sets one page-color region spans (pageSize / lineSize).
func (c *Collector) Init(colors, sets, setsPerColor int) {
	c.colors = colors
	c.sets = sets
	c.setsPerColor = setsPerColor
	c.perColor = make([]ClassCounts, colors)
	c.perColorStall = make([]uint64, colors)
	c.perColorCross = make([]uint64, colors)
}

// Colors returns the color count the collector was initialized with.
func (c *Collector) Colors() int { return c.colors }

// InitSlices declares a sliced LLC: slices hash-selected slices of
// sliceSets sets each. The simulator calls it after Init when the
// topology's last level is sliced; RecordSetProfile then derives the
// per-slice aggregates from the slice-major set profile.
func (c *Collector) InitSlices(slices, sliceSets int) {
	c.slices = slices
	c.sliceSets = sliceSets
}

// Slices returns the LLC slice count (0 when unsliced).
func (c *Collector) Slices() int { return c.slices }

// ResetAttribution discards miss attribution accumulated so far. The
// simulator calls it at the start of the measured pass so the collector
// covers exactly the region the Result's counters cover — init and
// warm-up misses are dropped. The event stream is left intact: warm-up
// events carry cycle stamps and remain meaningful as history.
func (c *Collector) ResetAttribution() {
	for i := range c.perColor {
		c.perColor[i] = ClassCounts{}
		c.perColorStall[i] = 0
		c.perColorCross[i] = 0
	}
	c.CrossDomain = 0
	clear(c.pages)
	clear(c.burst)
}

// RecordMiss attributes one external-cache miss to (vpn, color, class)
// and advances the conflict-burst detector. Process 0 owns the page
// (the single-process legacy path).
func (c *Collector) RecordMiss(cpu int, cycle, vpn uint64, color int, class MissClass, stall uint64) {
	c.RecordMissPID(0, cpu, cycle, vpn, color, class, stall)
}

// RecordMissPID attributes one external-cache miss of process pid to
// (vpn, color, class) and advances the conflict-burst detector.
func (c *Collector) RecordMissPID(pid, cpu int, cycle, vpn uint64, color int, class MissClass, stall uint64) {
	if color >= 0 && color < len(c.perColor) {
		c.perColor[color][class]++
		c.perColorStall[color] += stall
	}
	k := pageKey{pid, vpn}
	p := c.pages[k]
	if p == nil {
		p = &PageStats{PID: pid, VPN: vpn}
		c.pages[k] = p
	}
	p.Color = color
	p.Misses[class]++
	p.StallCycles += stall

	if class == Conflict {
		c.burst[k]++
		if c.burst[k] >= c.burstN {
			c.emit(Event{Kind: EvConflictBurst, Cycle: cycle, CPU: cpu, PID: pid, VPN: vpn,
				Color: color, Prev: -1, Count: uint64(c.burst[k])})
			c.burst[k] = 0
		}
	} else if c.burst[k] != 0 {
		c.burst[k] = 0
	}
}

// RecordCrossDomainPID attributes one cross-domain conflict miss:
// process pid's miss on vpn evicted a victim frame of victimColor that
// belonged to a foreign isolation domain (or foreign process). Called
// by the simulator after the matching RecordMissPID.
func (c *Collector) RecordCrossDomainPID(pid, cpu int, cycle, vpn uint64, victimColor int) {
	c.CrossDomain++
	if victimColor >= 0 && victimColor < len(c.perColorCross) {
		c.perColorCross[victimColor]++
	}
}

// CrossByColor returns the cross-domain conflict counts keyed by the
// victim frame's color.
func (c *Collector) CrossByColor() []uint64 { return c.perColorCross }

// RecordFault records a serviced page fault of process 0 and its hint
// outcome (the single-process legacy path).
func (c *Collector) RecordFault(cpu int, cycle, vpn uint64, color int, hinted, honored bool) {
	c.RecordFaultPID(0, cpu, cycle, vpn, color, hinted, honored)
}

// RecordFaultPID records a serviced page fault of process pid and its
// hint outcome.
func (c *Collector) RecordFaultPID(pid, cpu int, cycle, vpn uint64, color int, hinted, honored bool) {
	kind := EvPageFault
	switch {
	case hinted && honored:
		kind = EvHintHonored
	case hinted:
		kind = EvHintDenied
	}
	c.emit(Event{Kind: kind, Cycle: cycle, CPU: cpu, PID: pid, VPN: vpn, Color: color, Prev: -1})
}

// RecordRecolor records a dynamic-policy page move (with its TLB
// shootdown) from oldColor to newColor.
func (c *Collector) RecordRecolor(cpu int, cycle, vpn uint64, oldColor, newColor int) {
	c.Recolorings++
	if p := c.pages[pageKey{0, vpn}]; p != nil {
		p.Color = newColor
	}
	c.emit(Event{Kind: EvRecolor, Cycle: cycle, CPU: cpu, VPN: vpn, Color: newColor, Prev: oldColor})
}

// RecordSetProfile installs the per-set external-cache counters the
// simulator aggregated over CPUs at the end of the run.
func (c *Collector) RecordSetProfile(misses, evictions, invalidations []uint64, occupancy []float64) {
	c.SetMisses = misses
	c.SetEvictions = evictions
	c.SetInvalidations = invalidations
	c.SetOccupancy = occupancy
	if c.slices <= 0 || c.sliceSets <= 0 {
		return
	}
	c.SliceMisses = make([]uint64, c.slices)
	c.SliceOccupancy = make([]float64, c.slices)
	for s, n := range misses {
		if sl := s / c.sliceSets; sl < c.slices {
			c.SliceMisses[sl] += n
		}
	}
	for s, o := range occupancy {
		if sl := s / c.sliceSets; sl < c.slices {
			c.SliceOccupancy[sl] += o / float64(c.sliceSets)
		}
	}
}

// RecordAllocation installs the end-of-run VM/allocator snapshot.
func (c *Collector) RecordAllocation(mapped, free []int, faults, hinted, honored uint64) {
	c.ColorMapped = mapped
	c.ColorFree = free
	c.Faults = faults
	c.HintedFault = hinted
	c.HonoredHint = honored
}

func (c *Collector) emit(e Event) {
	if c.tracer != nil {
		c.tracer.Trace(e)
	}
}

// PerColor returns the per-color miss histograms (indexed by color).
func (c *Collector) PerColor() []ClassCounts { return c.perColor }

// ColorStall returns the per-color attributed miss-stall cycles.
func (c *Collector) ColorStall() []uint64 { return c.perColorStall }

// Page returns vpn's attribution record for process 0, or nil if the
// page never missed.
func (c *Collector) Page(vpn uint64) *PageStats { return c.pages[pageKey{0, vpn}] }

// PagePID returns vpn's attribution record for process pid, or nil if
// the page never missed.
func (c *Collector) PagePID(pid int, vpn uint64) *PageStats { return c.pages[pageKey{pid, vpn}] }

// Pages returns how many distinct pages took at least one miss.
func (c *Collector) Pages() int { return len(c.pages) }

// TopPages returns the k hottest pages by total miss count (ties broken
// by ascending process id then VPN, so output is deterministic).
func (c *Collector) TopPages(k int) []PageStats {
	all := make([]PageStats, 0, len(c.pages))
	for _, p := range c.pages {
		all = append(all, *p)
	}
	sort.Slice(all, func(i, j int) bool {
		ti, tj := all[i].Misses.Total(), all[j].Misses.Total()
		if ti != tj {
			return ti > tj
		}
		if all[i].PID != all[j].PID {
			return all[i].PID < all[j].PID
		}
		return all[i].VPN < all[j].VPN
	})
	if k > len(all) {
		k = len(all)
	}
	return all[:k]
}

// Heat reshapes a per-set counter slice into the color×set matrix the
// heatmap renders: row r is color r, column j is the j-th set within
// that color's page region. Under a physically indexed cache the set
// index's high bits above the within-page sets are exactly the page
// color, so set s belongs to color s/setsPerColor.
func (c *Collector) Heat(perSet []uint64) [][]float64 {
	if c.setsPerColor == 0 || len(perSet) == 0 {
		return nil
	}
	rows := make([][]float64, c.colors)
	for r := range rows {
		rows[r] = make([]float64, c.setsPerColor)
		for j := 0; j < c.setsPerColor; j++ {
			s := r*c.setsPerColor + j
			if s < len(perSet) {
				rows[r][j] = float64(perSet[s])
			}
		}
	}
	return rows
}
