package obs

import (
	"strings"
	"testing"
)

func TestRingWrapAndDropped(t *testing.T) {
	r := NewRing(3)
	for i := 0; i < 5; i++ {
		r.Trace(Event{Kind: EvPageFault, VPN: uint64(i)})
	}
	ev := r.Events()
	if len(ev) != 3 {
		t.Fatalf("len(Events) = %d, want 3", len(ev))
	}
	// Oldest-first: events 2,3,4 survive; 0 and 1 were overwritten.
	for i, want := range []uint64{2, 3, 4} {
		if ev[i].VPN != want {
			t.Errorf("event %d vpn = %d, want %d", i, ev[i].VPN, want)
		}
	}
	if r.Dropped() != 2 {
		t.Errorf("Dropped = %d, want 2", r.Dropped())
	}
}

func TestRingUnderfill(t *testing.T) {
	r := NewRing(8)
	r.Trace(Event{Kind: EvRecolor, VPN: 7})
	if got := r.Events(); len(got) != 1 || got[0].VPN != 7 {
		t.Fatalf("Events = %+v, want single vpn=7", got)
	}
	if r.Dropped() != 0 {
		t.Errorf("Dropped = %d, want 0", r.Dropped())
	}
}

func TestConflictBurstEmission(t *testing.T) {
	ring := NewRing(16)
	c := NewCollector(Options{Tracer: ring, BurstThreshold: 4})
	c.Init(4, 64, 16)

	// Three conflicts then a capacity miss: run resets, no burst.
	for i := 0; i < 3; i++ {
		c.RecordMiss(0, uint64(i), 5, 1, Conflict, 10)
	}
	c.RecordMiss(0, 3, 5, 1, Capacity, 10)
	if n := len(ring.Events()); n != 0 {
		t.Fatalf("burst emitted after broken run: %d events", n)
	}

	// Four consecutive conflicts on one page: exactly one burst event.
	for i := 0; i < 4; i++ {
		c.RecordMiss(1, uint64(10+i), 5, 1, Conflict, 10)
	}
	ev := ring.Events()
	if len(ev) != 1 || ev[0].Kind != EvConflictBurst {
		t.Fatalf("events = %+v, want one conflict-burst", ev)
	}
	if ev[0].VPN != 5 || ev[0].Count != 4 {
		t.Errorf("burst event = %+v, want vpn=5 count=4", ev[0])
	}

	// Counter reset after emission: 4 more conflicts fire again.
	for i := 0; i < 4; i++ {
		c.RecordMiss(1, uint64(20+i), 5, 1, Conflict, 10)
	}
	if n := len(ring.Events()); n != 2 {
		t.Errorf("second burst not emitted: %d events", n)
	}
}

func TestAttributionAccounting(t *testing.T) {
	c := NewCollector(Options{})
	c.Init(2, 32, 16)
	c.RecordMiss(0, 1, 4, 0, Cold, 100)
	c.RecordMiss(0, 2, 4, 0, Conflict, 200)
	c.RecordMiss(1, 3, 7, 1, InstFetch, 50)

	pc := c.PerColor()
	if pc[0][Cold] != 1 || pc[0][Conflict] != 1 || pc[1][InstFetch] != 1 {
		t.Errorf("per-color counts wrong: %+v", pc)
	}
	if st := c.ColorStall(); st[0] != 300 || st[1] != 50 {
		t.Errorf("per-color stall = %v, want [300 50]", st)
	}
	p := c.Page(4)
	if p == nil || p.Misses.Total() != 2 || p.StallCycles != 300 {
		t.Errorf("page 4 stats = %+v", p)
	}
	if c.Page(99) != nil {
		t.Error("unknown page should be nil")
	}
}

func TestTopPagesOrdering(t *testing.T) {
	c := NewCollector(Options{})
	c.Init(2, 32, 16)
	// vpn 3: 3 misses; vpn 1 and 2: 1 miss each (tie broken by vpn).
	for i := 0; i < 3; i++ {
		c.RecordMiss(0, uint64(i), 3, 1, Capacity, 1)
	}
	c.RecordMiss(0, 10, 2, 0, Cold, 1)
	c.RecordMiss(0, 11, 1, 1, Cold, 1)

	top := c.TopPages(2)
	if len(top) != 2 {
		t.Fatalf("TopPages(2) returned %d", len(top))
	}
	if top[0].VPN != 3 {
		t.Errorf("hottest page vpn = %d, want 3", top[0].VPN)
	}
	if top[1].VPN != 1 {
		t.Errorf("tie should break to lower vpn, got %d", top[1].VPN)
	}
	if got := c.TopPages(100); len(got) != 3 {
		t.Errorf("TopPages(100) = %d pages, want all 3", len(got))
	}
}

func TestHeatDimensions(t *testing.T) {
	c := NewCollector(Options{})
	c.Init(4, 64, 16) // 4 colors x 16 sets per color
	perSet := make([]uint64, 64)
	perSet[0] = 5  // color 0, offset 0
	perSet[17] = 9 // color 1, offset 1
	perSet[63] = 1 // color 3, offset 15
	rows := c.Heat(perSet)
	if len(rows) != 4 || len(rows[0]) != 16 {
		t.Fatalf("Heat dims = %dx%d, want 4x16", len(rows), len(rows[0]))
	}
	if rows[0][0] != 5 || rows[1][1] != 9 || rows[3][15] != 1 {
		t.Errorf("Heat misplaced values: %+v", rows)
	}
}

func TestAuditError(t *testing.T) {
	if err := AuditError(nil); err != nil {
		t.Errorf("AuditError(nil) = %v, want nil", err)
	}
	err := AuditError([]Violation{
		{Check: "cycle-conservation", Detail: "cpu 0 drifted"},
		{Check: "bus-occupancy", Detail: "over wall"},
	})
	if err == nil {
		t.Fatal("AuditError should be non-nil for violations")
	}
	msg := err.Error()
	if !strings.Contains(msg, "2 invariant violation") ||
		!strings.Contains(msg, "cycle-conservation") ||
		!strings.Contains(msg, "bus-occupancy") {
		t.Errorf("error message missing parts:\n%s", msg)
	}
}

func TestEventStrings(t *testing.T) {
	cases := []struct {
		e    Event
		want string
	}{
		{Event{Kind: EvPageFault, Cycle: 10, CPU: 1, VPN: 5, Color: 2}, "page-fault"},
		{Event{Kind: EvHintHonored, VPN: 1}, "hint-honored"},
		{Event{Kind: EvHintDenied, VPN: 1}, "hint-denied"},
		{Event{Kind: EvRecolor, VPN: 1, Prev: 3, Color: 4}, "recolor"},
		{Event{Kind: EvConflictBurst, VPN: 1, Count: 32}, "conflict-burst"},
	}
	for _, tc := range cases {
		if got := tc.e.String(); !strings.Contains(got, tc.want) {
			t.Errorf("Event.String() = %q, want substring %q", got, tc.want)
		}
	}
}

func TestReportSmoke(t *testing.T) {
	ring := NewRing(4)
	c := NewCollector(Options{Tracer: ring})
	c.Init(2, 32, 16)
	c.RecordFault(0, 1, 4, 0, true, true)
	c.RecordMiss(0, 2, 4, 0, Cold, 100)
	c.RecordRecolor(0, 3, 4, 0, 1)
	perSet := make([]uint64, 32)
	perSet[3] = 7
	c.RecordSetProfile(perSet, make([]uint64, 32), make([]uint64, 32), make([]float64, 32))
	c.RecordAllocation([]int{1, 0}, []int{9, 10}, 1, 1, 1)

	out := c.Report(5)
	for _, want := range []string{"color", "hot pages", "heatmap", "recolorings 1"} {
		if !strings.Contains(out, want) {
			t.Errorf("Report missing %q:\n%s", want, out)
		}
	}
	if c.Recolorings != 1 || c.Page(4).Color != 1 {
		t.Errorf("recolor bookkeeping wrong: recolorings=%d color=%d",
			c.Recolorings, c.Page(4).Color)
	}
}
