// Package obs is the simulator's opt-in observability layer: per-color
// and per-virtual-page miss attribution, per-set external-cache profile
// aggregation, a structured event stream behind a Tracer, and the
// conservation-invariant Violation type the audit pass reports.
//
// The paper's whole argument rests on knowing which pages and colors
// cause conflict misses (Figures 4–5 attribute misses to pages before
// and after coloring); this package is the instrument that produces that
// attribution for any run. It is deliberately a leaf package: the
// simulator pushes events into a Collector, and nothing here reaches
// back into simulator state, which is what keeps an instrumented run
// byte-identical to a plain one.
package obs
