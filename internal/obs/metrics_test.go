package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRegistryCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("cdpcd_jobs_total", "jobs accepted")
	c.Inc()
	c.Add(2)
	if got := c.Value(); got != 3 {
		t.Fatalf("counter = %d, want 3", got)
	}
	if again := r.Counter("cdpcd_jobs_total", ""); again != c {
		t.Fatalf("re-registration returned a different counter")
	}
	r.Gauge("cdpcd_queue_depth", "queued jobs", func() float64 { return 7 })

	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE cdpcd_jobs_total counter",
		"cdpcd_jobs_total 3",
		"# TYPE cdpcd_queue_depth gauge",
		"cdpcd_queue_depth 7",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestRegistryLabelsAndOrdering(t *testing.T) {
	r := NewRegistry()
	r.Counter(`http_requests_total{route="POST /v1/jobs",code="202"}`, "requests").Add(5)
	r.Counter(`http_requests_total{route="GET /metrics",code="200"}`, "requests").Inc()

	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, `http_requests_total{route="POST /v1/jobs",code="202"} 5`) {
		t.Errorf("labeled counter missing:\n%s", out)
	}
	// Deterministic: GET sorts before POST.
	gi := strings.Index(out, `route="GET /metrics"`)
	pi := strings.Index(out, `route="POST /v1/jobs"`)
	if gi < 0 || pi < 0 || gi > pi {
		t.Errorf("exposition not name-ordered (GET at %d, POST at %d)", gi, pi)
	}
}

func TestHistogramBucketsCumulative(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram(`lat{route="POST /v1/simulate"}`, "latency", []float64{0.001, 0.01, 0.1})
	h.Observe(500 * time.Microsecond) // bucket le=0.001
	h.Observe(5 * time.Millisecond)   // bucket le=0.01
	h.Observe(2 * time.Second)        // +Inf
	if h.Count() != 3 {
		t.Fatalf("count = %d, want 3", h.Count())
	}

	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`lat_bucket{route="POST /v1/simulate",le="0.001"} 1`,
		`lat_bucket{route="POST /v1/simulate",le="0.01"} 2`,
		`lat_bucket{route="POST /v1/simulate",le="0.1"} 2`,
		`lat_bucket{route="POST /v1/simulate",le="+Inf"} 3`,
		`lat_count{route="POST /v1/simulate"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramBoundaryInclusive(t *testing.T) {
	h := NewHistogram([]float64{0.01})
	h.Observe(10 * time.Millisecond) // exactly the bound → le="0.01"
	if got := h.counts[0].Load(); got != 1 {
		t.Fatalf("boundary observation landed in +Inf (bucket=%d, inf=%d)", got, h.inf.Load())
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("c", "").Inc()
				r.Histogram("h", "", nil).Observe(time.Millisecond)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c", "").Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	if got := r.Histogram("h", "", nil).Count(); got != 8000 {
		t.Fatalf("histogram count = %d, want 8000", got)
	}
}
