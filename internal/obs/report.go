package obs

import (
	"fmt"
	"strings"

	"repro/internal/textplot"
)

// Report renders the collector's attribution as text: the per-color
// miss table (the Figure-4/5 view of where conflicts live), the topK
// hottest pages, and the color×set miss heatmap built from the per-set
// external-cache profile.
func (c *Collector) Report(topK int) string {
	var b strings.Builder

	b.WriteString("per-color miss attribution:\n")
	t := textplot.NewTable("color", "pages", "free", "cold", "conflict", "capacity", "true-sh", "false-sh", "inst", "total", "stall(K)")
	for color := 0; color < len(c.perColor); color++ {
		cc := &c.perColor[color]
		mapped, free := "-", "-"
		if color < len(c.ColorMapped) {
			mapped = fmt.Sprint(c.ColorMapped[color])
		}
		if color < len(c.ColorFree) {
			free = fmt.Sprint(c.ColorFree[color])
		}
		t.Row(color, mapped, free,
			cc[Cold], cc[Conflict], cc[Capacity], cc[TrueShare], cc[FalseShare], cc[InstFetch],
			cc.Total(), float64(c.perColorStall[color])/1e3)
	}
	b.WriteString(t.String())

	if topK > 0 && len(c.pages) > 0 {
		fmt.Fprintf(&b, "\nhot pages (top %d of %d missing pages):\n", topK, len(c.pages))
		pt := textplot.NewTable("vpn", "color", "cold", "conflict", "capacity", "true-sh", "false-sh", "inst", "total", "stall(K)")
		for _, p := range c.TopPages(topK) {
			pt.Row(p.VPN, p.Color,
				p.Misses[Cold], p.Misses[Conflict], p.Misses[Capacity],
				p.Misses[TrueShare], p.Misses[FalseShare], p.Misses[InstFetch],
				p.Misses.Total(), float64(p.StallCycles)/1e3)
		}
		b.WriteString(pt.String())
	}

	if heat := c.Heat(c.SetMisses); heat != nil {
		b.WriteString("\nexternal-cache miss heatmap (rows: page colors; columns: sets within the color):\n")
		labels := make([]string, len(heat))
		for i := range labels {
			labels[i] = fmt.Sprintf("c%02d", i)
		}
		b.WriteString(textplot.Heatmap(labels, heat, ""))
	}

	// Per-slice attribution appears only on sliced topologies (InitSlices
	// called and the set profile filled): unsliced reports stay
	// byte-identical.
	if len(c.SliceMisses) > 0 {
		b.WriteString("\nper-slice LLC attribution:\n")
		st := textplot.NewTable("slice", "misses", "occupancy")
		for s, n := range c.SliceMisses {
			occ := 0.0
			if s < len(c.SliceOccupancy) {
				occ = c.SliceOccupancy[s]
			}
			st.Row(fmt.Sprintf("s%d", s), n, fmt.Sprintf("%.1f%%", 100*occ))
		}
		b.WriteString(st.String())
	}

	fmt.Fprintf(&b, "\nfaults %d (hinted %d, honored %d), recolorings %d\n",
		c.Faults, c.HintedFault, c.HonoredHint, c.Recolorings)

	// Cross-domain attribution appears only when something crossed: the
	// line is additive, so single-process (and clean partitioned) reports
	// stay byte-identical.
	if c.CrossDomain > 0 {
		fmt.Fprintf(&b, "cross-domain conflicts %d (by victim color:", c.CrossDomain)
		for color, n := range c.perColorCross {
			if n > 0 {
				fmt.Fprintf(&b, " c%02d=%d", color, n)
			}
		}
		b.WriteString(")\n")
	}
	return b.String()
}
