package obs

import "fmt"

// EventKind labels one structured observability event.
type EventKind uint8

// The event kinds.
const (
	// EvPageFault: an unhinted page fault was serviced.
	EvPageFault EventKind = iota
	// EvHintHonored: a hinted fault got its preferred color.
	EvHintHonored
	// EvHintDenied: a hinted fault fell back to another color (memory
	// pressure on the preferred pool).
	EvHintDenied
	// EvRecolor: the dynamic policy moved a page (TLB shootdown on every
	// CPU).
	EvRecolor
	// EvConflictBurst: one page took BurstThreshold conflict misses in a
	// row — the signature of a mapping collision the coloring policy
	// should have prevented.
	EvConflictBurst
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case EvPageFault:
		return "page-fault"
	case EvHintHonored:
		return "hint-honored"
	case EvHintDenied:
		return "hint-denied"
	case EvRecolor:
		return "recolor"
	case EvConflictBurst:
		return "conflict-burst"
	default:
		return fmt.Sprintf("EventKind(%d)", uint8(k))
	}
}

// Event is one entry of the structured event stream.
type Event struct {
	Kind  EventKind
	Cycle uint64 // the acting CPU's clock when the event happened
	CPU   int
	PID   int // owning process id; 0 on single-process machines
	VPN   uint64
	Color int    // granted / new / bursting color
	Prev  int    // recolor: the old color; -1 otherwise
	Count uint64 // conflict-burst: conflict misses in the run
}

// String renders the event compactly for trace dumps. The process tag
// appears only on multiprocess machines (PID != 0), keeping
// single-process trace output unchanged.
func (e Event) String() string {
	var pid string
	if e.PID != 0 {
		pid = fmt.Sprintf(" pid=%d", e.PID)
	}
	switch e.Kind {
	case EvRecolor:
		return fmt.Sprintf("@%-10d cpu%-2d %-14s vpn=%d color %d -> %d%s", e.Cycle, e.CPU, e.Kind, e.VPN, e.Prev, e.Color, pid)
	case EvConflictBurst:
		return fmt.Sprintf("@%-10d cpu%-2d %-14s vpn=%d color=%d run=%d%s", e.Cycle, e.CPU, e.Kind, e.VPN, e.Color, e.Count, pid)
	default:
		return fmt.Sprintf("@%-10d cpu%-2d %-14s vpn=%d color=%d%s", e.Cycle, e.CPU, e.Kind, e.VPN, e.Color, pid)
	}
}

// Tracer receives the event stream. Implementations must not call back
// into the simulator.
type Tracer interface {
	Trace(Event)
}

// Ring is a fixed-capacity Tracer that keeps the most recent events and
// counts what it had to drop — the sink for long runs where only the
// tail matters.
type Ring struct {
	buf     []Event
	next    int
	filled  bool
	dropped uint64
}

// NewRing creates a ring holding up to capacity events.
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		capacity = 1
	}
	return &Ring{buf: make([]Event, 0, capacity)}
}

// Trace implements Tracer.
func (r *Ring) Trace(e Event) {
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, e)
		return
	}
	r.buf[r.next] = e
	r.next = (r.next + 1) % len(r.buf)
	r.filled = true
	r.dropped++
}

// Events returns the retained events, oldest first.
func (r *Ring) Events() []Event {
	if !r.filled {
		out := make([]Event, len(r.buf))
		copy(out, r.buf)
		return out
	}
	out := make([]Event, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// Dropped returns how many events fell off the front of the ring.
func (r *Ring) Dropped() uint64 { return r.dropped }
