package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the service-facing half of the observability layer: a
// tiny metrics registry (counters, gauges, histograms) with a
// Prometheus-style text exposition. The cdpcd daemon registers its
// queue, scheduler-cache and per-endpoint latency metrics here and
// serves them from /metrics. Like the rest of the package it is
// deliberately passive — recording a sample is a few atomic adds, and
// nothing in the registry reaches back into simulator or server state.

// Counter is a monotonically increasing uint64 metric. The zero value
// is ready to use, but counters are normally obtained from a Registry
// so they appear in the exposition.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// DefaultLatencyBuckets are the histogram bounds (in seconds) used for
// request latencies: 100µs to ~100s in powers of ~4, wide enough to
// span a memo-cache hit and a paper-sized simulation in one histogram.
var DefaultLatencyBuckets = []float64{
	0.0001, 0.0004, 0.0016, 0.0064, 0.0256, 0.1024, 0.4096, 1.6384, 6.5536, 26.2144, 104.8576,
}

// Histogram is a fixed-bucket latency histogram. Observations are
// counted into the first bucket whose upper bound is >= the sample;
// samples beyond the last bound land in the implicit +Inf bucket.
type Histogram struct {
	bounds []float64 // upper bounds, ascending, seconds
	counts []atomic.Uint64
	inf    atomic.Uint64
	sumNS  atomic.Uint64 // sum of observations in nanoseconds
	n      atomic.Uint64
}

// NewHistogram creates a histogram with the given ascending upper
// bounds in seconds; nil bounds use DefaultLatencyBuckets.
func NewHistogram(bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefaultLatencyBuckets
	}
	return &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds))}
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	s := d.Seconds()
	i := sort.SearchFloat64s(h.bounds, s)
	if i < len(h.counts) {
		h.counts[i].Add(1)
	} else {
		h.inf.Add(1)
	}
	h.sumNS.Add(uint64(d.Nanoseconds()))
	h.n.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.n.Load() }

// Sum returns the total observed time.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sumNS.Load()) }

// metric is one named entry in a Registry's exposition.
type metric struct {
	name string // full exposition name, may carry {label="..."} pairs
	help string
	kind string // "counter", "gauge", "histogram"

	counter *Counter
	gauge   func() float64
	hist    *Histogram
}

// Registry holds named metrics and renders them in the Prometheus text
// format. Registration is idempotent by full name (the second Counter
// call with the same name returns the first counter), which lets
// callers mint per-route or per-code metrics lazily on the request
// path. Output is ordered by name so /metrics is deterministic.
type Registry struct {
	mu      sync.Mutex
	byName  map[string]*metric // guarded by mu
	metrics []*metric          // guarded by mu
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*metric)}
}

// Counter returns the counter registered under name, creating it on
// first use. name may include a {label="value"} suffix.
func (r *Registry) Counter(name, help string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.getLocked(name, help, "counter")
	return m.counter
}

// Gauge registers a gauge whose value is read from f at exposition
// time (queue depth, in-flight count, cache hit rate).
func (r *Registry) Gauge(name, help string, f func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.getLocked(name, help, "gauge")
	m.gauge = f
}

// Histogram returns the histogram registered under name, creating it
// with the given bounds (nil = DefaultLatencyBuckets) on first use.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.getLocked(name, help, "histogram")
	if m.hist == nil {
		m.hist = NewHistogram(bounds)
	}
	return m.hist
}

// getLocked looks up or registers a metric. The registry lock must be
// held by the caller, which also covers its follow-up writes to the
// returned record (a concurrent WriteText could otherwise observe a
// half-initialized gauge or histogram).
func (r *Registry) getLocked(name, help, kind string) *metric {
	if m, ok := r.byName[name]; ok {
		return m
	}
	m := &metric{name: name, help: help, kind: kind}
	if kind == "counter" {
		m.counter = &Counter{}
	}
	r.byName[name] = m
	r.metrics = append(r.metrics, m)
	sort.Slice(r.metrics, func(i, j int) bool { return r.metrics[i].name < r.metrics[j].name })
	return m
}

// WriteText renders every registered metric in the Prometheus text
// exposition format (one `name value` line per sample, histograms as
// cumulative `_bucket{le=...}` series plus `_sum` and `_count`).
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	ms := make([]*metric, len(r.metrics))
	copy(ms, r.metrics)
	r.mu.Unlock()

	for _, m := range ms {
		base, labels := splitLabels(m.name)
		if m.help != "" {
			fmt.Fprintf(w, "# HELP %s %s\n", base, m.help)
		}
		fmt.Fprintf(w, "# TYPE %s %s\n", base, m.kind)
		switch {
		case m.counter != nil:
			fmt.Fprintf(w, "%s %d\n", m.name, m.counter.Value())
		case m.gauge != nil:
			fmt.Fprintf(w, "%s %s\n", m.name, formatFloat(m.gauge()))
		case m.hist != nil:
			var cum uint64
			for i, b := range m.hist.bounds {
				cum += m.hist.counts[i].Load()
				fmt.Fprintf(w, "%s_bucket%s %d\n", base, withLE(labels, formatFloat(b)), cum)
			}
			cum += m.hist.inf.Load()
			fmt.Fprintf(w, "%s_bucket%s %d\n", base, withLE(labels, "+Inf"), cum)
			fmt.Fprintf(w, "%s_sum%s %s\n", base, labels, formatFloat(m.hist.Sum().Seconds()))
			fmt.Fprintf(w, "%s_count%s %d\n", base, labels, m.hist.Count())
		}
	}
	return nil
}

// splitLabels separates a full metric name into its base name and an
// optional {label="..."} block.
func splitLabels(name string) (base, labels string) {
	for i := 0; i < len(name); i++ {
		if name[i] == '{' {
			return name[:i], name[i:]
		}
	}
	return name, ""
}

// withLE merges an le="bound" label into an existing (possibly empty)
// label block.
func withLE(labels, bound string) string {
	le := fmt.Sprintf("le=%q", bound)
	if labels == "" {
		return "{" + le + "}"
	}
	return labels[:len(labels)-1] + "," + le + "}"
}

// formatFloat renders a float without the exponent noise %v would add
// for typical metric magnitudes.
func formatFloat(f float64) string {
	if f == math.Trunc(f) && math.Abs(f) < 1e15 {
		return fmt.Sprintf("%d", int64(f))
	}
	return fmt.Sprintf("%g", f)
}
