package compiler

import (
	"testing"

	"repro/internal/ir"
)

// stencilProgram builds a two-array stencil: forall i, inner j:
// b[i*64+j] = a[i*64+j-1] + a[i*64+j] + a[i*64+j+1].
func stencilProgram() *ir.Program {
	a := &ir.Array{Name: "a", ElemSize: 8, Elems: 64 * 64}
	b := &ir.Array{Name: "b", ElemSize: 8, Elems: 64 * 64}
	nest := &ir.Nest{
		Name:       "stencil",
		Parallel:   true,
		Iterations: 64,
		InnerIters: 64,
		Accesses: []ir.Access{
			{Array: a, Kind: ir.Load, OuterStride: 64, InnerStride: 1, Offset: -1},
			{Array: a, Kind: ir.Load, OuterStride: 64, InnerStride: 1},
			{Array: a, Kind: ir.Load, OuterStride: 64, InnerStride: 1, Offset: 1},
			{Array: b, Kind: ir.Store, OuterStride: 64, InnerStride: 1},
		},
		WorkPerIter: 3,
		Sched:       ir.Schedule{Kind: ir.Even},
	}
	return &ir.Program{
		Name:   "stencil",
		Arrays: []*ir.Array{a, b},
		Phases: []*ir.Phase{{Name: "main", Occurrences: 1, Nests: []*ir.Nest{nest}}},
	}
}

func TestLayoutAligned(t *testing.T) {
	prog := stencilProgram()
	if err := Layout(prog, DefaultLayout(128, 32<<10, 4096)); err != nil {
		t.Fatal(err)
	}
	for _, a := range prog.Arrays {
		if a.Base == 0 {
			t.Errorf("array %s not placed", a.Name)
		}
		if a.Base%128 != 0 {
			t.Errorf("array %s base %#x not line-aligned", a.Name, a.Base)
		}
	}
	// Arrays must not overlap.
	a, b := prog.Arrays[0], prog.Arrays[1]
	if a.EndAddr() > b.Base && b.EndAddr() > a.Base {
		t.Errorf("arrays overlap: %v %v", a, b)
	}
	if prog.CodeBase < b.EndAddr() {
		t.Error("code segment overlaps data")
	}
	if prog.CodeBase%4096 != 0 {
		t.Error("code segment not page-aligned")
	}
}

func TestLayoutUnalignedSplitsLines(t *testing.T) {
	prog := stencilProgram()
	opts := LayoutOptions{Align: false, Pad: false, LineSize: 128, PageSize: 4096}
	if err := Layout(prog, opts); err != nil {
		t.Fatal(err)
	}
	if prog.Arrays[1].Base%128 == 0 {
		t.Error("unaligned layout produced an aligned second array")
	}
}

func TestLayoutPaddingSeparatesGroupAccessedStarts(t *testing.T) {
	prog := stencilProgram()
	l1 := 8 << 10
	if err := Layout(prog, DefaultLayout(128, l1, 4096)); err != nil {
		t.Fatal(err)
	}
	a, b := prog.Arrays[0], prog.Arrays[1]
	if a.Base%uint64(l1) == b.Base%uint64(l1) {
		t.Errorf("group-accessed arrays start at same on-chip location: %#x %#x", a.Base, b.Base)
	}
}

func TestLayoutRejectsBadOptions(t *testing.T) {
	if err := Layout(stencilProgram(), LayoutOptions{}); err == nil {
		t.Error("zero options accepted")
	}
}

func TestSummarizePartitions(t *testing.T) {
	prog := stencilProgram()
	Layout(prog, DefaultLayout(128, 32<<10, 4096))
	sum := Summarize(prog)
	// Two arrays, each with a single (sched, stride) signature.
	if len(sum.Partitions) != 2 {
		t.Fatalf("partitions = %d, want 2", len(sum.Partitions))
	}
	for _, ps := range sum.Partitions {
		if ps.UnitElems != 64 || ps.Iterations != 64 {
			t.Errorf("partition %s unit=%d iters=%d, want 64/64", ps.Array.Name, ps.UnitElems, ps.Iterations)
		}
	}
}

func TestSummarizeCommPatterns(t *testing.T) {
	sum := Summarize(stencilProgram())
	offsets := map[int]bool{}
	for _, c := range sum.Comms {
		if c.Array.Name != "a" {
			t.Errorf("comm on %s, want a", c.Array.Name)
		}
		offsets[c.OffsetElems] = true
	}
	if !offsets[-1] || !offsets[1] {
		t.Errorf("comm offsets = %v, want ±1", offsets)
	}
}

func TestSummarizeGroups(t *testing.T) {
	sum := Summarize(stencilProgram())
	if len(sum.Groups) != 1 || sum.Groups[0] != (GroupAccess{A: "a", B: "b"}) {
		t.Errorf("groups = %v, want [{a b}]", sum.Groups)
	}
	if !sum.Grouped("b", "a") || sum.Grouped("a", "zzz") {
		t.Error("Grouped lookup broken")
	}
}

func TestSummarizeSkipsUnanalyzable(t *testing.T) {
	prog := stencilProgram()
	prog.Arrays[0].Unanalyzable = true
	sum := Summarize(prog)
	for _, ps := range sum.Partitions {
		if ps.Array.Name == "a" {
			t.Error("unanalyzable array got a partition summary")
		}
	}
	if len(sum.Partitions) != 1 {
		t.Errorf("partitions = %d, want 1", len(sum.Partitions))
	}
}

func TestSummarizeSkipsSequentialNests(t *testing.T) {
	prog := stencilProgram()
	prog.Phases[0].Nests[0].Parallel = false
	sum := Summarize(prog)
	if len(sum.Partitions) != 0 {
		t.Errorf("sequential nest produced %d partitions", len(sum.Partitions))
	}
	// Group info is still collected: it feeds padding.
	if len(sum.Groups) != 1 {
		t.Errorf("groups = %d, want 1", len(sum.Groups))
	}
}

func TestSummarizeDeduplicates(t *testing.T) {
	prog := stencilProgram()
	// Clone the nest into a second phase: identical signatures must not
	// duplicate summaries.
	prog.Phases = append(prog.Phases, &ir.Phase{
		Name: "again", Occurrences: 2, Nests: prog.Phases[0].Nests,
	})
	sum := Summarize(prog)
	if len(sum.Partitions) != 2 {
		t.Errorf("partitions = %d, want 2 (deduplicated)", len(sum.Partitions))
	}
}

func TestRegionContiguityAndCoverage(t *testing.T) {
	prog := stencilProgram()
	Layout(prog, DefaultLayout(128, 32<<10, 4096))
	sum := Summarize(prog)
	ps := sum.Partitions[0]
	var prevHi uint64
	for cpu := 0; cpu < 4; cpu++ {
		lo, hi := ps.Region(4, cpu)
		if lo >= hi {
			t.Fatalf("cpu %d empty region", cpu)
		}
		if cpu > 0 && lo != prevHi {
			t.Errorf("cpu %d region starts at %#x, want %#x (contiguous)", cpu, lo, prevHi)
		}
		prevHi = hi
	}
	if want := ps.Array.EndAddr(); prevHi != want {
		t.Errorf("last region ends at %#x, want %#x", prevHi, want)
	}
}

func TestInsertPrefetches(t *testing.T) {
	prog := stencilProgram()
	n := InsertPrefetches(prog, DefaultPrefetch())
	if n != 4 {
		t.Errorf("marked %d accesses, want 4", n)
	}
	// Body estimate: 4 accesses + 3 work = 7 cycles; 220/7+1 = 32, capped
	// at InnerIters/2 = 32.
	for _, ac := range prog.Phases[0].Nests[0].Accesses {
		if !ac.Prefetch || ac.PrefetchDistance != 32 {
			t.Errorf("access on %s: prefetch=%v dist=%d, want 32", ac.Array.Name, ac.Prefetch, ac.PrefetchDistance)
		}
	}
}

func TestPrefetchDistanceScalesWithBody(t *testing.T) {
	heavy := stencilProgram()
	heavy.Phases[0].Nests[0].WorkPerIter = 100
	InsertPrefetches(heavy, DefaultPrefetch())
	light := stencilProgram()
	InsertPrefetches(light, DefaultPrefetch())
	dh := heavy.Phases[0].Nests[0].Accesses[0].PrefetchDistance
	dl := light.Phases[0].Nests[0].Accesses[0].PrefetchDistance
	if dh >= dl {
		t.Errorf("heavy-body distance %d should be below light-body %d", dh, dl)
	}
	if dh < 1 {
		t.Errorf("distance must be at least 1, got %d", dh)
	}
}

func TestInsertPrefetchesSkipsNonStreaming(t *testing.T) {
	prog := stencilProgram()
	prog.Phases[0].Nests[0].Accesses[0].InnerStride = 0
	n := InsertPrefetches(prog, DefaultPrefetch())
	if n != 3 {
		t.Errorf("marked %d, want 3 (register-resident access skipped)", n)
	}
	if prog.Phases[0].Nests[0].Accesses[0].Prefetch {
		t.Error("zero-stride access prefetched")
	}
}

func TestTiledNestGetsShortDistance(t *testing.T) {
	prog := stencilProgram()
	prog.Phases[0].Nests[0].Tiled = true
	InsertPrefetches(prog, DefaultPrefetch())
	if d := prog.Phases[0].Nests[0].Accesses[0].PrefetchDistance; d != 0 {
		t.Errorf("tiled distance = %d, want 0 (issued too late to help)", d)
	}
}

func TestClearPrefetches(t *testing.T) {
	prog := stencilProgram()
	InsertPrefetches(prog, DefaultPrefetch())
	ClearPrefetches(prog)
	for _, ac := range prog.Phases[0].Nests[0].Accesses {
		if ac.Prefetch || ac.PrefetchDistance != 0 {
			t.Error("prefetch marks survived ClearPrefetches")
		}
	}
}

func TestGroupAccessesIncludesInitPhase(t *testing.T) {
	prog := stencilProgram()
	c := &ir.Array{Name: "c", ElemSize: 8, Elems: 64}
	prog.Arrays = append(prog.Arrays, c)
	prog.Init = &ir.Phase{Name: "init", Occurrences: 1, Nests: []*ir.Nest{{
		Name: "init", Parallel: true, Iterations: 8, InnerIters: 8,
		Accesses: []ir.Access{
			{Array: c, Kind: ir.Store, OuterStride: 8, InnerStride: 1},
			{Array: prog.Arrays[0], Kind: ir.Store, OuterStride: 8, InnerStride: 1},
		},
	}}}
	groups := GroupAccesses(prog)
	found := false
	for _, g := range groups {
		if g == (GroupAccess{A: "a", B: "c"}) {
			found = true
		}
	}
	if !found {
		t.Errorf("init-phase group not recorded: %v", groups)
	}
}
