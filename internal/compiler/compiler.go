package compiler

import (
	"fmt"
	"sort"

	"repro/internal/ir"
)

// LayoutOptions controls the data-layout pass.
type LayoutOptions struct {
	// Align starts every array on a cache-line boundary, eliminating
	// false sharing between data structures (§5.4).
	Align bool
	// Pad inserts small pads between group-accessed arrays so their
	// starting addresses map to different on-chip cache sets (§5.4).
	Pad bool

	// ExternalPad applies the §2.2 padding baseline: pads between arrays
	// sized to stagger their starting locations across the EXTERNAL
	// cache. Padding operates on the virtual address space, so it only
	// reaches the physical cache when the OS preserves virtual layout —
	// under page coloring it works, but "pads that are larger than a
	// page size are ineffective if the operating system has a bin
	// hopping policy" (§2.2). The ext-padding experiment demonstrates
	// exactly that.
	ExternalPad bool
	// ExternalCacheSize is the external-cache span ExternalPad staggers
	// across.
	ExternalCacheSize int

	LineSize        int // external/on-chip cache line for alignment
	OnChipCacheSize int // L1 size used to stagger starting addresses
	PageSize        int
}

// DefaultLayout returns the options SUIF uses: aligned and padded.
func DefaultLayout(lineSize, l1Size, pageSize int) LayoutOptions {
	return LayoutOptions{Align: true, Pad: true, LineSize: lineSize, OnChipCacheSize: l1Size, PageSize: pageSize}
}

// Layout assigns virtual base addresses to the program's arrays and code
// segment. All data structures are dynamically allocated at start-up
// time (§5.4); the virtual data segment starts at dataBase.
//
// With Align off, arrays are packed end-to-end at odd byte offsets, the
// "neither aligned nor padded" configuration of Figure 9.
func Layout(prog *ir.Program, opts LayoutOptions) error {
	if opts.LineSize <= 0 || opts.PageSize <= 0 {
		return fmt.Errorf("compiler: layout needs positive line (%d) and page (%d) sizes", opts.LineSize, opts.PageSize)
	}
	groups := GroupAccesses(prog)
	cur := uint64(opts.PageSize) // leave page 0 unused
	for i, a := range prog.Arrays {
		if opts.Align {
			cur = roundUp(cur, uint64(opts.LineSize))
		} else if i > 0 {
			// Deliberate misalignment: split a cache line with the
			// previous array, the unaligned baseline of Figure 9.
			cur += uint64(opts.LineSize / 2)
		}
		if opts.Pad && opts.OnChipCacheSize > 0 {
			cur = padForOnChip(cur, a, groups, prog, opts)
		}
		if opts.ExternalPad && opts.ExternalCacheSize > 0 {
			// Page-granular external staggering plus a sub-page offset
			// that keeps the §5.4 on-chip stagger intact (page-aligned
			// starts would collide all arrays in the virtually indexed
			// L1 — the padding baseline still aligns and pads on-chip).
			cur = padForExternal(cur, i, opts)
			cur += uint64((i * 3 * opts.LineSize) % opts.PageSize)
		}
		a.Base = cur
		cur += uint64(a.SizeBytes())
	}
	// Code segment on its own pages after the data.
	cur = roundUp(cur, uint64(opts.PageSize))
	prog.CodeBase = cur
	if prog.CodeSize == 0 {
		prog.CodeSize = 64 << 10
	}
	return nil
}

// padForOnChip advances cur so that a's start does not map to the same
// on-chip cache location as any already-placed array it is
// group-accessed with (§5.4: "the starting addresses of data structures
// that are used together never map to the same location in the on-chip
// cache").
func padForOnChip(cur uint64, a *ir.Array, groups []GroupAccess, prog *ir.Program, opts LayoutOptions) uint64 {
	span := uint64(opts.OnChipCacheSize)
	line := uint64(opts.LineSize)
	conflictsWith := func(pos uint64) bool {
		for _, g := range groups {
			var other *ir.Array
			switch a.Name {
			case g.A:
				other = prog.ArrayByName(g.B)
			case g.B:
				other = prog.ArrayByName(g.A)
			default:
				continue
			}
			if other == nil || other == a || other.Base == 0 {
				continue // unknown or not placed yet
			}
			if pos%span == other.Base%span {
				return true
			}
		}
		return false
	}
	for i := 0; i < int(span/line) && conflictsWith(cur); i++ {
		cur += line
	}
	return cur
}

// padForExternal advances cur so that the i-th array starts at an
// evenly spread page slot within the external-cache span — the §2.2
// padding baseline. The pads are whole pages, which is exactly why the
// technique dies under bin hopping: fault-order coloring erases any
// virtual-address relationship coarser than a page.
func padForExternal(cur uint64, i int, opts LayoutOptions) uint64 {
	span := uint64(opts.ExternalCacheSize)
	page := uint64(opts.PageSize)
	slots := span / page
	if slots == 0 {
		return cur
	}
	want := (uint64(i) * 5 % slots) * page
	cur = roundUp(cur, page)
	if rem := cur % span; rem != want {
		if want > rem {
			cur += want - rem
		} else {
			cur += span - rem + want
		}
	}
	return cur
}

func roundUp(x, to uint64) uint64 { return (x + to - 1) / to * to }

// PartitionSummary is the §5.1 array-partitioning record: "the starting
// address of the array, its total size, the size of the data partition
// unit and the data partitioning policy".
type PartitionSummary struct {
	Array *ir.Array
	Sched ir.Schedule

	Iterations int // outer trips distributed over the processors
	UnitElems  int // elements per outer iteration (the partition unit)
	SpanElems  int // elements actually covered per outer iteration
}

// Region returns the byte range of the array accessed by cpu under this
// partition on p processors, before communication widening.
func (ps PartitionSummary) Region(p, cpu int) (lo, hi uint64) {
	ilo, ihi := ps.Sched.Span(ps.Iterations, p, cpu)
	if ilo >= ihi {
		return 0, 0
	}
	es := uint64(ps.Array.ElemSize)
	loE := ilo * ps.UnitElems
	hiE := (ihi-1)*ps.UnitElems + ps.SpanElems
	if hiE > ps.Array.Elems {
		hiE = ps.Array.Elems
	}
	return ps.Array.Base + uint64(loE)*es, ps.Array.Base + uint64(hiE)*es
}

// CommPattern records boundary communication on an array: a shift of
// OffsetElems elements between neighboring processors (§5.1 supports
// shift and rotate).
type CommPattern struct {
	Array       *ir.Array
	OffsetElems int // signed; |offset| elements cross the boundary
	Rotate      bool
}

// GroupAccess records a pair of arrays accessed within the same loops.
type GroupAccess struct {
	A, B string // array names, A < B
}

// Summary is everything the compiler passes to the CDPC runtime.
type Summary struct {
	Partitions []PartitionSummary
	Comms      []CommPattern
	Groups     []GroupAccess
}

// Grouped reports whether arrays a and b are group-accessed.
func (s *Summary) Grouped(a, b string) bool {
	if b < a {
		a, b = b, a
	}
	for _, g := range s.Groups {
		if g.A == a && g.B == b {
			return true
		}
	}
	return false
}

// MaxCommElems returns the largest |offset| of any communication pattern
// on the array (0 when none).
func (s *Summary) MaxCommElems(array *ir.Array) int {
	lo, hi := s.CommReach(array)
	if lo > hi {
		return lo
	}
	return hi
}

// CommReach returns how far, in elements, a processor's accesses reach
// below (loReach) and above (hiReach) its own partition of the array,
// derived from the signed shift offsets: a[i-1] reaches one element down,
// a[i+1] one element up.
func (s *Summary) CommReach(array *ir.Array) (loReach, hiReach int) {
	for _, c := range s.Comms {
		if c.Array != array {
			continue
		}
		if c.OffsetElems < 0 {
			if o := -c.OffsetElems; o > loReach {
				loReach = o
			}
		} else if c.OffsetElems > hiReach {
			hiReach = c.OffsetElems
		}
	}
	return loReach, hiReach
}

// Rotates reports whether the array has rotate (wrap-around)
// communication: the boundary reach wraps past the array ends, linking
// the first and last processors (§5.1).
func (s *Summary) Rotates(array *ir.Array) bool {
	for _, c := range s.Comms {
		if c.Array == array && c.Rotate {
			return true
		}
	}
	return false
}

// Summarize extracts the §5.1 access-pattern summary from the program.
// Arrays marked Unanalyzable yield no partition summaries — CDPC will
// skip them, reproducing su2cor's partial-coverage behaviour (§6.1).
func Summarize(prog *ir.Program) *Summary {
	s := &Summary{}
	type partKey struct {
		array string
		sched ir.Schedule
		iters int
		unit  int
		span  int
	}
	type commKey struct {
		array  string
		offset int
		rotate bool
	}
	seenPart := map[partKey]bool{}
	seenComm := map[commKey]bool{}
	seenGroup := map[GroupAccess]bool{}

	for _, ph := range prog.Phases {
		for _, n := range ph.Nests {
			recordGroups(n, seenGroup, s)
			if !n.Parallel || n.Suppressed {
				continue // only statically scheduled parallel nests are predictable
			}
			for _, ac := range n.Accesses {
				if ac.Array.Unanalyzable {
					continue
				}
				if ac.OuterStride <= 0 {
					continue // not distributed over this array
				}
				span := (n.InnerIters-1)*ac.InnerStride + 1
				if span > ac.OuterStride {
					span = ac.OuterStride // overlapping inner spans: treat as dense
				}
				pk := partKey{ac.Array.Name, n.Sched, n.Iterations, ac.OuterStride, span}
				if !seenPart[pk] {
					seenPart[pk] = true
					s.Partitions = append(s.Partitions, PartitionSummary{
						Array:      ac.Array,
						Sched:      n.Sched,
						Iterations: n.Iterations,
						UnitElems:  ac.OuterStride,
						SpanElems:  span,
					})
				}
				if ac.Offset != 0 {
					ck := commKey{ac.Array.Name, ac.Offset, ac.Wrap}
					if !seenComm[ck] {
						seenComm[ck] = true
						s.Comms = append(s.Comms, CommPattern{Array: ac.Array, OffsetElems: ac.Offset, Rotate: ac.Wrap})
					}
				}
			}
		}
	}
	sort.Slice(s.Groups, func(i, j int) bool {
		if s.Groups[i].A != s.Groups[j].A {
			return s.Groups[i].A < s.Groups[j].A
		}
		return s.Groups[i].B < s.Groups[j].B
	})
	return s
}

// GroupAccesses returns the group-access pairs of the whole program
// without building a full summary; the layout pass uses it for padding.
func GroupAccesses(prog *ir.Program) []GroupAccess {
	s := &Summary{}
	seen := map[GroupAccess]bool{}
	phases := prog.Phases
	if prog.Init != nil {
		phases = append([]*ir.Phase{prog.Init}, phases...)
	}
	for _, ph := range phases {
		for _, n := range ph.Nests {
			recordGroups(n, seen, s)
		}
	}
	return s.Groups
}

func recordGroups(n *ir.Nest, seen map[GroupAccess]bool, s *Summary) {
	for i := 0; i < len(n.Accesses); i++ {
		for j := i + 1; j < len(n.Accesses); j++ {
			a, b := n.Accesses[i].Array.Name, n.Accesses[j].Array.Name
			if a == b {
				continue
			}
			if b < a {
				a, b = b, a
			}
			g := GroupAccess{A: a, B: b}
			if !seen[g] {
				seen[g] = true
				s.Groups = append(s.Groups, g)
			}
		}
	}
}

// PrefetchOptions tunes the prefetch-insertion pass.
type PrefetchOptions struct {
	// LatencyCycles is the miss latency the software pipeline must hide;
	// the per-nest prefetch distance is derived from it and the nest's
	// estimated cycles per inner iteration.
	LatencyCycles int
	// TiledDistance is the (insufficient) lead achieved in tiled nests,
	// where tiling inhibits the software pipeline (applu, §6.2).
	TiledDistance int
}

// DefaultPrefetch matches the paper's setting: hide a ~500 ns (200-cycle)
// memory latency.
func DefaultPrefetch() PrefetchOptions { return PrefetchOptions{LatencyCycles: 220, TiledDistance: 0} }

// nestDistance estimates the inner-iteration lead needed to hide the
// latency: latency divided by the loop body's cycle estimate, capped so
// the prologue does not dominate short loops.
func nestDistance(n *ir.Nest, opts PrefetchOptions) int {
	if n.Tiled {
		return opts.TiledDistance
	}
	bodyCycles := len(n.Accesses) + n.WorkPerIter
	if bodyCycles < 1 {
		bodyCycles = 1
	}
	d := opts.LatencyCycles/bodyCycles + 1
	if max := n.InnerIters / 2; d > max {
		d = max
	}
	if d < 1 {
		d = 1
	}
	return d
}

// InsertPrefetches marks, in place, the accesses the locality analysis
// predicts will miss: streaming references (non-zero inner stride) whose
// reuse distance exceeds the on-chip cache. References with zero inner
// stride are register- or L1-resident and are not prefetched, "inserting
// prefetches only for those references that are likely to suffer misses"
// (§6.2). Returns the number of marked accesses.
func InsertPrefetches(prog *ir.Program, opts PrefetchOptions) int {
	marked := 0
	for _, ph := range prog.Phases {
		for _, n := range ph.Nests {
			d := nestDistance(n, opts)
			for i := range n.Accesses {
				ac := &n.Accesses[i]
				if ac.InnerStride == 0 {
					continue
				}
				ac.Prefetch = true
				ac.PrefetchDistance = d
				marked++
			}
		}
	}
	return marked
}

// ClearPrefetches removes all prefetch marks (for A/B experiment runs).
func ClearPrefetches(prog *ir.Program) {
	for _, ph := range prog.Phases {
		for _, n := range ph.Nests {
			for i := range n.Accesses {
				n.Accesses[i].Prefetch = false
				n.Accesses[i].PrefetchDistance = 0
			}
		}
	}
}
