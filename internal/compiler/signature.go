package compiler

import (
	"fmt"
	"strings"

	"repro/internal/ir"
)

// PhaseSignature is a phase's access-pattern fingerprint: per nest, the
// loop shape (iteration counts, parallelism, schedule) and per access
// the array identity, reference kind, strides, offset and prefetch
// marking. Two phases with equal signatures execute the same reference
// streams over the same virtual addresses on every processor, so one
// representative window stands for all of them ("Memory Access
// Vectors": clustering by access-pattern signature preserves sampling
// fidelity for cache and TLB behavior). Array identity — name, base,
// extent — is deliberately part of the vector: a phase sweeping the
// same stencil over different arrays touches different page colors and
// must not be merged.
type PhaseSignature struct {
	// Key is the canonical rendering compared for cluster membership.
	Key string
	// Nests, Accesses and FootprintBytes summarize the vector for
	// reports: nest count, total static references per inner iteration,
	// and the summed extent of the arrays referenced.
	Nests          int
	Accesses       int
	FootprintBytes int
}

// Signature computes the access-pattern signature of one phase. Layout
// must have run (bases assigned): the signature keys on virtual
// placement, not just shape.
func Signature(ph *ir.Phase) PhaseSignature {
	var b strings.Builder
	sig := PhaseSignature{Nests: len(ph.Nests)}
	seen := make(map[string]bool)
	for _, n := range ph.Nests {
		fmt.Fprintf(&b, "nest{par=%t sup=%t it=%d in=%d work=%d inst=%d sched=%d rev=%t",
			n.Parallel, n.Suppressed, n.Iterations, n.InnerIters, n.WorkPerIter,
			n.InstFootprint, n.Sched.Kind, n.Sched.Reverse)
		for _, ac := range n.Accesses {
			sig.Accesses++
			a := ac.Array
			fmt.Fprintf(&b, " ref{%s@%d+%d k=%d os=%d is=%d off=%d wrap=%t pf=%t}",
				a.Name, a.Base, a.Elems*a.ElemSize, ac.Kind,
				ac.OuterStride, ac.InnerStride, ac.Offset, ac.Wrap, ac.Prefetch)
			if !seen[a.Name] {
				seen[a.Name] = true
				sig.FootprintBytes += a.SizeBytes()
			}
		}
		b.WriteString("}")
	}
	sig.Key = b.String()
	return sig
}

// PhaseCluster groups the phases one representative window stands for.
type PhaseCluster struct {
	// Rep indexes prog.Phases: the first member, whose nests are the
	// ones actually simulated.
	Rep int
	// Members lists every phase index in the cluster, in program order
	// (Rep first).
	Members []int
	// Weight is the summed occurrence count of the members — the factor
	// the representative's extrapolated statistics are multiplied by.
	Weight int
}

// ClusterPhases partitions a program's steady-state phases into
// signature-equal clusters, preserving program order. Most workloads
// collapse to one cluster per distinct phase (turb3d's four phases all
// differ); the win appears when a program repeats the same loop shape
// over the same data as separate phases, and is bounded below by the
// identity clustering — never fewer simulated windows than distinct
// access patterns.
func ClusterPhases(prog *ir.Program) []PhaseCluster {
	var out []PhaseCluster
	index := make(map[string]int) // signature key -> cluster position
	for i, ph := range prog.Phases {
		key := Signature(ph).Key
		if at, ok := index[key]; ok {
			out[at].Members = append(out[at].Members, i)
			out[at].Weight += ph.Occurrences
			continue
		}
		index[key] = len(out)
		out = append(out, PhaseCluster{Rep: i, Members: []int{i}, Weight: ph.Occurrences})
	}
	return out
}
