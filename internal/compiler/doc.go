// Package compiler implements the SUIF-side analyses of the paper: data
// layout with alignment and inter-array padding (§5.4), access-pattern
// summarization for CDPC (§5.1 — array partitioning, communication
// patterns, group access information), and compiler-inserted prefetching
// (§6.2). All analyses operate on the ir.Program that also drives the
// simulator, so summaries describe the real access pattern by
// construction.
package compiler
