// Package coherence implements an invalidation-based (MESI-style)
// coherence directory over the per-CPU external caches, plus the
// word-granularity bookkeeping needed to classify coherence misses into
// true and false sharing following Dubois et al., the classification the
// paper's Figure 2 memory-system graph uses (§4.1).
//
// The directory is the single source of truth for which CPUs hold a line;
// the simulator mirrors its invalidation decisions into the per-CPU cache
// models.
package coherence
