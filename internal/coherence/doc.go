// Package coherence implements an invalidation-based (MESI-style)
// coherence directory over the last-level cache instances of the
// machine's topology, plus the word-granularity bookkeeping needed to
// classify coherence misses into true and false sharing following
// Dubois et al., the classification the paper's Figure 2 memory-system
// graph uses (§4.1).
//
// Directory nodes are cache units, not CPUs: on the default topology
// every CPU owns a private external cache (one node per CPU, the
// paper's machine), while a clustered or machine-shared LLC registers
// one node per instance and sharing within a cluster never touches the
// directory. The directory is the single source of truth for which
// units hold a line; the simulator mirrors its invalidation decisions
// into the per-unit cache models.
package coherence
