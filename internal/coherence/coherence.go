package coherence

import "fmt"

// Class classifies the outcome of a memory access at the external-cache
// level.
type Class uint8

const (
	// Hit: the line was present in the requesting CPU's external cache.
	Hit Class = iota
	// Cold: first access to the line by any CPU.
	Cold
	// TrueShare: miss caused by invalidation, and the word accessed was
	// written by another CPU — genuine communication.
	TrueShare
	// FalseShare: miss caused by invalidation of a line whose accessed
	// word was not written by another CPU — an artifact of line size.
	FalseShare
	// Replacement: the CPU once held the line and lost it to its own
	// eviction; split into conflict/capacity by the caller's shadow cache.
	Replacement
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case Hit:
		return "hit"
	case Cold:
		return "cold"
	case TrueShare:
		return "true-share"
	case FalseShare:
		return "false-share"
	case Replacement:
		return "replacement"
	default:
		return fmt.Sprintf("Class(%d)", uint8(c))
	}
}

const wordSize = 8 // classification granularity (double-precision words)

// lineState tracks one physical cache line.
type lineState struct {
	owners     uint64 // bitmask of CPUs holding the line
	dirtyOwner int8   // CPU holding it modified, -1 if none
	// wordWriter[i] is the CPU that last wrote word i, -1 if never.
	wordWriter []int8
	// lostTo[cpu] is the CPU whose write invalidated cpu's copy, -1 when
	// the copy was lost to cpu's own eviction (or never held).
	lostTo []int8
	// held[cpu] records that cpu has held the line at some point, to
	// distinguish Replacement from Cold per-CPU: the paper counts a
	// first-touch by a CPU of a line another CPU already fetched as a
	// replacement-class (shared-data distribution) miss only when the
	// requester lost it; an outright first touch by this CPU with no
	// invalidation is treated as Cold for this CPU.
	held uint64
}

// Outcome describes what the protocol did for one access.
type Outcome struct {
	Class       Class
	DirtyRemote bool  // data supplied by another CPU's cache (higher latency)
	Invalidated []int // CPUs whose copies were invalidated (write path)
	Upgrade     bool  // write hit on a shared line: ownership-only bus transaction
	// Downgraded is the CPU whose dirty copy was flushed to memory to
	// supply a read (the line stays cached there in shared, clean
	// state); -1 when no downgrade happened. The simulator must clean
	// that CPU's cached line, or its eventual eviction would charge a
	// second writeback for data memory already holds.
	Downgraded int
}

// Directory tracks all lines. Not safe for concurrent use; the simulator
// is single-threaded event-driven.
type Directory struct {
	ncpu     int
	lineSize uint64
	lineMask uint64 // lineSize - 1; line size is a validated power of two
	lines    map[uint64]*lineState

	// scratch to avoid per-access allocation
	invalScratch []int
}

// New creates a directory for ncpu CPUs and the given external-cache line
// size in bytes.
func New(ncpu, lineSize int) *Directory {
	if ncpu <= 0 || ncpu > 64 {
		panic(fmt.Sprintf("coherence: ncpu %d out of range [1,64]", ncpu))
	}
	return &Directory{
		ncpu:         ncpu,
		lineSize:     uint64(lineSize),
		lineMask:     uint64(lineSize - 1),
		lines:        make(map[uint64]*lineState),
		invalScratch: make([]int, 0, ncpu),
	}
}

func (d *Directory) lineOf(addr uint64) uint64 { return addr &^ (d.lineSize - 1) }

func (d *Directory) state(la uint64) *lineState {
	s, ok := d.lines[la]
	if !ok {
		s = &lineState{
			dirtyOwner: -1,
			wordWriter: make([]int8, d.lineSize/wordSize),
			lostTo:     make([]int8, d.ncpu),
		}
		for i := range s.wordWriter {
			s.wordWriter[i] = -1
		}
		for i := range s.lostTo {
			s.lostTo[i] = -1
		}
		d.lines[la] = s
	}
	return s
}

// classifyMiss determines the miss class for cpu accessing word w of line s.
func (d *Directory) classifyMiss(s *lineState, cpu int, word int) Class {
	if s.held == 0 && s.owners == 0 {
		return Cold
	}
	if s.held&(1<<uint(cpu)) == 0 {
		// This CPU never held the line; another CPU touched it first.
		// If the word was produced by another CPU this is communication.
		if w := s.wordWriter[word]; w >= 0 && int(w) != cpu {
			return TrueShare
		}
		return Cold
	}
	if inv := s.lostTo[cpu]; inv >= 0 {
		if w := s.wordWriter[word]; w >= 0 && int(w) != cpu {
			return TrueShare
		}
		return FalseShare
	}
	return Replacement
}

// wordIndex clamps the accessed word within the line.
func (d *Directory) wordIndex(addr uint64) int {
	return int((addr & d.lineMask) / wordSize) // wordSize is a constant power of two
}

// Access performs the protocol action for cpu touching addr. present
// reports whether the requesting CPU's external cache currently holds the
// line (the simulator knows; the directory double-checks its mirror).
func (d *Directory) Access(cpu int, addr uint64, write bool) Outcome {
	la := d.lineOf(addr)
	s := d.state(la)
	word := d.wordIndex(addr)
	bit := uint64(1) << uint(cpu)

	out := Outcome{Downgraded: -1}
	if s.owners&bit != 0 {
		out.Class = Hit
		if write && s.owners != bit {
			// Write hit on a shared line: upgrade + invalidate others.
			out.Upgrade = true
			out.Invalidated = d.invalidateOthers(s, cpu)
		}
	} else {
		out.Class = d.classifyMiss(s, cpu, word)
		if s.dirtyOwner >= 0 && int(s.dirtyOwner) != cpu {
			out.DirtyRemote = true
		}
		if write {
			out.Invalidated = d.invalidateOthers(s, cpu)
		} else if s.dirtyOwner >= 0 && int(s.dirtyOwner) != cpu {
			// Read of a dirty remote line: owner downgrades to shared,
			// memory (and requester) get the data.
			out.Downgraded = int(s.dirtyOwner)
			s.dirtyOwner = -1
		}
		s.owners |= bit
		s.held |= bit
		s.lostTo[cpu] = -1
	}

	if write {
		s.dirtyOwner = int8(cpu)
		s.wordWriter[word] = int8(cpu)
	}
	return out
}

// invalidateOthers removes every owner except cpu, recording cpu as the
// invalidator, and returns the list of invalidated CPUs.
func (d *Directory) invalidateOthers(s *lineState, cpu int) []int {
	d.invalScratch = d.invalScratch[:0]
	for p := 0; p < d.ncpu; p++ {
		if p == cpu {
			continue
		}
		if s.owners&(1<<uint(p)) != 0 {
			s.owners &^= 1 << uint(p)
			s.lostTo[p] = int8(cpu)
			d.invalScratch = append(d.invalScratch, p)
		}
	}
	if len(d.invalScratch) == 0 {
		return nil
	}
	// Copy: callers may retain across Access calls in principle.
	out := make([]int, len(d.invalScratch))
	copy(out, d.invalScratch)
	return out
}

// Evict records that cpu's external cache displaced the line containing
// addr (capacity/conflict, not coherence); a later re-fetch by cpu is a
// Replacement miss.
func (d *Directory) Evict(cpu int, addr uint64) {
	la := d.lineOf(addr)
	s, ok := d.lines[la]
	if !ok {
		return
	}
	bit := uint64(1) << uint(cpu)
	if s.owners&bit == 0 {
		return
	}
	s.owners &^= bit
	s.lostTo[cpu] = -1 // self-inflicted loss
	if int(s.dirtyOwner) == cpu {
		s.dirtyOwner = -1 // written back to memory
	}
}

// Holders returns how many CPUs currently hold addr's line; for tests.
func (d *Directory) Holders(addr uint64) int {
	s, ok := d.lines[d.lineOf(addr)]
	if !ok {
		return 0
	}
	n := 0
	for b := s.owners; b != 0; b &= b - 1 {
		n++
	}
	return n
}

// Forget drops all protocol state for the line containing addr; used
// when a page is recolored and its old frame's lines cease to exist.
func (d *Directory) Forget(addr uint64) {
	delete(d.lines, d.lineOf(addr))
}

// Reset drops all line state (between independent runs).
func (d *Directory) Reset() { d.lines = make(map[uint64]*lineState) }
