package coherence

import "testing"

const line = 128

func TestColdMiss(t *testing.T) {
	d := New(4, line)
	out := d.Access(0, 0x1000, false)
	if out.Class != Cold {
		t.Errorf("class = %v, want cold", out.Class)
	}
	if out.DirtyRemote || out.Upgrade || out.Invalidated != nil {
		t.Errorf("unexpected protocol action: %+v", out)
	}
}

func TestHitAfterFill(t *testing.T) {
	d := New(4, line)
	d.Access(0, 0x1000, false)
	if out := d.Access(0, 0x1040, false); out.Class != Hit {
		t.Errorf("same-line access class = %v, want hit", out.Class)
	}
}

func TestReadSharing(t *testing.T) {
	d := New(4, line)
	d.Access(0, 0x1000, false)
	out := d.Access(1, 0x1000, false)
	// CPU1 never held the line and the word was never written: cold.
	if out.Class != Cold {
		t.Errorf("class = %v, want cold", out.Class)
	}
	if d.Holders(0x1000) != 2 {
		t.Errorf("holders = %d, want 2", d.Holders(0x1000))
	}
}

func TestTrueSharingOnProducedWord(t *testing.T) {
	d := New(4, line)
	d.Access(0, 0x1000, true) // CPU0 produces word 0
	out := d.Access(1, 0x1000, false)
	if out.Class != TrueShare {
		t.Errorf("class = %v, want true-share", out.Class)
	}
	if !out.DirtyRemote {
		t.Error("dirty line should be supplied by remote cache")
	}
}

func TestFalseSharingOnUnrelatedWord(t *testing.T) {
	d := New(4, line)
	// CPU1 reads word 8 of the line, CPU0 writes word 0, CPU1 re-reads word 8.
	d.Access(1, 0x1040, false)
	out0 := d.Access(0, 0x1000, true)
	if len(out0.Invalidated) != 1 || out0.Invalidated[0] != 1 {
		t.Fatalf("write should invalidate CPU1, got %+v", out0)
	}
	out1 := d.Access(1, 0x1040, false)
	if out1.Class != FalseShare {
		t.Errorf("class = %v, want false-share", out1.Class)
	}
}

func TestTrueSharingAfterInvalidation(t *testing.T) {
	d := New(4, line)
	d.Access(1, 0x1000, false) // CPU1 reads word 0
	d.Access(0, 0x1000, true)  // CPU0 writes word 0, invalidating CPU1
	out := d.Access(1, 0x1000, false)
	if out.Class != TrueShare {
		t.Errorf("class = %v, want true-share", out.Class)
	}
}

func TestUpgradeOnWriteHitShared(t *testing.T) {
	d := New(4, line)
	d.Access(0, 0x1000, false)
	d.Access(1, 0x1000, false)
	out := d.Access(0, 0x1000, true)
	if out.Class != Hit || !out.Upgrade {
		t.Errorf("write hit on shared line: %+v, want hit+upgrade", out)
	}
	if len(out.Invalidated) != 1 || out.Invalidated[0] != 1 {
		t.Errorf("invalidated = %v, want [1]", out.Invalidated)
	}
}

func TestNoUpgradeOnExclusiveWriteHit(t *testing.T) {
	d := New(4, line)
	d.Access(0, 0x1000, true)
	out := d.Access(0, 0x1000, true)
	if out.Class != Hit || out.Upgrade {
		t.Errorf("exclusive write hit: %+v, want plain hit", out)
	}
}

func TestEvictionLeadsToReplacementMiss(t *testing.T) {
	d := New(4, line)
	d.Access(0, 0x1000, false)
	d.Evict(0, 0x1000)
	out := d.Access(0, 0x1000, false)
	if out.Class != Replacement {
		t.Errorf("class = %v, want replacement", out.Class)
	}
}

func TestEvictOfDirtyLineCleansIt(t *testing.T) {
	d := New(4, line)
	d.Access(0, 0x1000, true)
	d.Evict(0, 0x1000) // writeback to memory
	out := d.Access(1, 0x1000, false)
	if out.DirtyRemote {
		t.Error("line was written back; should come from memory")
	}
}

func TestReadDowngradesDirtyOwner(t *testing.T) {
	d := New(4, line)
	d.Access(0, 0x1000, true)
	d.Access(1, 0x1000, false) // downgrade CPU0 to shared-clean
	out := d.Access(2, 0x1000, false)
	if out.DirtyRemote {
		t.Error("second reader should be served from memory after downgrade")
	}
}

func TestWriteMissInvalidatesAllSharers(t *testing.T) {
	d := New(8, line)
	for cpu := 0; cpu < 4; cpu++ {
		d.Access(cpu, 0x2000, false)
	}
	out := d.Access(5, 0x2000, true)
	if len(out.Invalidated) != 4 {
		t.Errorf("invalidated %d CPUs, want 4", len(out.Invalidated))
	}
	if d.Holders(0x2000) != 1 {
		t.Errorf("holders = %d, want 1", d.Holders(0x2000))
	}
}

func TestEvictUnknownLineIsNoop(t *testing.T) {
	d := New(2, line)
	d.Evict(0, 0xdead000) // must not panic
	d.Access(0, 0x1000, false)
	d.Evict(1, 0x1000) // CPU1 doesn't hold it
	if d.Holders(0x1000) != 1 {
		t.Error("evict by non-holder changed ownership")
	}
}

func TestPingPong(t *testing.T) {
	// Two CPUs alternately writing the same word: every access after the
	// first should be a true-sharing miss with remote supply.
	d := New(2, line)
	d.Access(0, 0x3000, true)
	for i := 0; i < 10; i++ {
		cpu := (i + 1) % 2
		out := d.Access(cpu, 0x3000, true)
		if out.Class != TrueShare {
			t.Fatalf("iter %d: class = %v, want true-share", i, out.Class)
		}
		if !out.DirtyRemote {
			t.Fatalf("iter %d: expected dirty-remote supply", i)
		}
	}
}

func TestResetForgetsState(t *testing.T) {
	d := New(2, line)
	d.Access(0, 0x1000, true)
	d.Reset()
	if out := d.Access(1, 0x1000, false); out.Class != Cold {
		t.Errorf("class after reset = %v, want cold", out.Class)
	}
}

func TestNewPanicsOnTooManyCPUs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for 65 CPUs")
		}
	}()
	New(65, line)
}

func TestDowngradeReportsDirtyOwner(t *testing.T) {
	d := New(4, line)
	d.Access(2, 0x1000, true) // CPU2 dirties the line
	out := d.Access(0, 0x1000, false)
	if !out.DirtyRemote {
		t.Fatal("read of dirty remote line should be supplied by owner")
	}
	// The flush-to-memory that serves the read leaves the owner's cached
	// copy clean; the simulator must be told which CPU to clean or the
	// line's eventual eviction double-charges a writeback.
	if out.Downgraded != 2 {
		t.Errorf("Downgraded = %d, want 2", out.Downgraded)
	}
	// A second read sees a clean line: no downgrade.
	if out := d.Access(1, 0x1000, false); out.Downgraded != -1 {
		t.Errorf("clean supply Downgraded = %d, want -1", out.Downgraded)
	}
}

func TestNoDowngradeOnWrite(t *testing.T) {
	d := New(2, line)
	d.Access(0, 0x2000, true)
	// A write takes exclusive ownership via invalidation, not a
	// downgrade: the previous owner's line is gone entirely.
	out := d.Access(1, 0x2000, true)
	if out.Downgraded != -1 {
		t.Errorf("write Downgraded = %d, want -1", out.Downgraded)
	}
	if len(out.Invalidated) != 1 || out.Invalidated[0] != 0 {
		t.Errorf("expected CPU0 invalidated, got %v", out.Invalidated)
	}
	// Cold accesses also report no downgrade (zero-value trap guard).
	if out := d.Access(0, 0x9000, false); out.Downgraded != -1 {
		t.Errorf("cold Downgraded = %d, want -1", out.Downgraded)
	}
}
