package report

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/obs"
	"repro/internal/sim"
)

// Row flattens one simulation result into named scalar metrics.
type Row struct {
	Workload string `json:"workload"`
	Machine  string `json:"machine"`
	Policy   string `json:"policy"`
	// Proc identifies the process a multiprocess row describes ("1",
	// "2", ... or "total" for the machine-wide sum); empty on
	// single-process rows, so existing sweep output is unchanged.
	Proc     string  `json:"proc,omitempty"`
	CPUs     int     `json:"cpus"`
	Prefetch bool    `json:"prefetch"`
	Wall     uint64  `json:"wall_cycles"`
	Combined uint64  `json:"combined_cycles"`
	MCPI     float64 `json:"mcpi"`
	BusUtil  float64 `json:"bus_utilization"`

	Instructions   uint64 `json:"instructions"`
	ExecCycles     uint64 `json:"exec_cycles"`
	MemStall       uint64 `json:"mem_stall_cycles"`
	Overhead       uint64 `json:"overhead_cycles"`
	L2Misses       uint64 `json:"l2_misses"`
	ColdMisses     uint64 `json:"cold_misses"`
	ConflictMisses uint64 `json:"conflict_misses"`
	CapacityMisses uint64 `json:"capacity_misses"`
	TrueSharing    uint64 `json:"true_sharing_misses"`
	FalseSharing   uint64 `json:"false_sharing_misses"`
	PageFaults     uint64 `json:"page_faults"`
	HintedFaults   uint64 `json:"hinted_faults"`
	HonoredHints   uint64 `json:"honored_hints"`
	Recolorings    uint64 `json:"recolorings"`
	// ContextSwitches counts time-slice scheduler dispatches that
	// replaced a different process on a CPU (zero on single-process and
	// space-partitioned runs).
	ContextSwitches uint64 `json:"context_switches"`
	// CrossDomainConflicts counts conflict misses that evicted a victim
	// of another isolation domain (unpartitioned: another process);
	// exactly zero on Isolated rows, by audit invariant 12.
	CrossDomainConflicts uint64 `json:"cross_domain_conflicts"`
	// Isolated marks rows produced under color-partitioned isolation
	// domains.
	Isolated bool `json:"isolated,omitempty"`

	InstMisses        uint64 `json:"inst_misses"`
	Upgrades          uint64 `json:"upgrades"`
	TLBMisses         uint64 `json:"tlb_misses"`
	PrefetchesIssued  uint64 `json:"prefetches_issued"`
	PrefetchesDropped uint64 `json:"prefetches_dropped"`
	PrefetchedHits    uint64 `json:"prefetched_hits"`
	RemoteSupplies    uint64 `json:"remote_supplies"`
	BusQueueCycles    uint64 `json:"bus_queue_cycles"`
	WriteBufferStall  uint64 `json:"write_buffer_stall"`
	// CPUPageFaults sums the per-CPU measured-phase fault counters; it
	// differs from PageFaults, which is the address space's whole-run
	// fault count including initialization and warmup.
	CPUPageFaults uint64 `json:"cpu_page_faults"`

	// SliceSplit renders Result.SliceMisses — the per-LLC-slice miss
	// split on hash-sliced topologies — as semicolon-joined counts
	// ("1200;1180;1210;1195", slice order). Empty on unsliced
	// topologies and sampled rows, matching the sim-side contract.
	SliceSplit string `json:"slice_split,omitempty"`

	// Fidelity reports how the row's counters were produced: "full"
	// (every reference detail-simulated) or "sampled" (representative
	// windows, extrapolated). The sampling counters below are zero on
	// full-fidelity rows.
	Fidelity string `json:"fidelity"`
	// WarmupRefs counts functional warm-up and pre-touch references that
	// populated state without booking cycles.
	WarmupRefs uint64 `json:"warmup_refs"`
	// SampledWindows counts measured nest windows.
	SampledWindows uint64 `json:"sampled_windows"`
	// SampledIters and RepresentedIters are the detail-simulated and
	// extrapolated-to outer-iteration totals; their ratio is the
	// effective sampling rate.
	SampledIters     uint64 `json:"sampled_iters"`
	RepresentedIters uint64 `json:"represented_iters"`
}

// FromResult flattens a result.
func FromResult(r *sim.Result, prefetch bool) Row {
	tot := func(f func(*sim.CPUStats) uint64) uint64 { return r.Total(f) }
	return Row{
		Workload: r.Workload,
		Machine:  r.Machine,
		Policy:   r.Policy,
		CPUs:     r.NumCPUs,
		Prefetch: prefetch,
		Wall:     r.WallCycles,
		Combined: r.CombinedCycles(),
		MCPI:     r.MCPI(),
		BusUtil:  r.BusUtilization(),

		Instructions:         tot(func(s *sim.CPUStats) uint64 { return s.Instructions }),
		ExecCycles:           tot(func(s *sim.CPUStats) uint64 { return s.ExecCycles }),
		MemStall:             tot((*sim.CPUStats).MemStallCycles),
		Overhead:             tot((*sim.CPUStats).OverheadCycles),
		L2Misses:             tot(func(s *sim.CPUStats) uint64 { return s.L2Misses }),
		ColdMisses:           tot(func(s *sim.CPUStats) uint64 { return s.ColdMisses }),
		ConflictMisses:       tot(func(s *sim.CPUStats) uint64 { return s.ConflictMisses }),
		CapacityMisses:       tot(func(s *sim.CPUStats) uint64 { return s.CapacityMisses }),
		TrueSharing:          tot(func(s *sim.CPUStats) uint64 { return s.TrueShareMisses }),
		FalseSharing:         tot(func(s *sim.CPUStats) uint64 { return s.FalseShareMisses }),
		PageFaults:           r.PageFaults,
		HintedFaults:         r.HintedFaults,
		HonoredHints:         r.HonoredHints,
		Recolorings:          tot(func(s *sim.CPUStats) uint64 { return s.Recolorings }),
		ContextSwitches:      tot(func(s *sim.CPUStats) uint64 { return s.ContextSwitches }),
		CrossDomainConflicts: tot(func(s *sim.CPUStats) uint64 { return s.CrossDomainConflicts }),
		Isolated:             r.Isolated,

		InstMisses:        tot(func(s *sim.CPUStats) uint64 { return s.InstMisses }),
		Upgrades:          tot(func(s *sim.CPUStats) uint64 { return s.Upgrades }),
		TLBMisses:         tot(func(s *sim.CPUStats) uint64 { return s.TLBMisses }),
		PrefetchesIssued:  tot(func(s *sim.CPUStats) uint64 { return s.PrefetchesIssued }),
		PrefetchesDropped: tot(func(s *sim.CPUStats) uint64 { return s.PrefetchesDropped }),
		PrefetchedHits:    tot(func(s *sim.CPUStats) uint64 { return s.PrefetchedHits }),
		RemoteSupplies:    tot(func(s *sim.CPUStats) uint64 { return s.RemoteSupplies }),
		BusQueueCycles:    tot(func(s *sim.CPUStats) uint64 { return s.BusQueueCycles }),
		WriteBufferStall:  tot(func(s *sim.CPUStats) uint64 { return s.StallWriteBuffer }),
		CPUPageFaults:     tot(func(s *sim.CPUStats) uint64 { return s.PageFaults }),

		SliceSplit: sliceSplit(r.SliceMisses),

		Fidelity:         r.Fidelity,
		WarmupRefs:       r.WarmupRefs,
		SampledWindows:   r.SampledWindows,
		SampledIters:     r.SampledIters,
		RepresentedIters: r.RepresentedIters,
	}
}

// sliceSplit joins per-slice miss counts with semicolons (CSV-safe);
// empty when the result carries no split.
func sliceSplit(misses []uint64) string {
	var b []byte
	for i, m := range misses {
		if i > 0 {
			b = append(b, ';')
		}
		b = fmt.Append(b, m)
	}
	return string(b)
}

// FromMulti flattens a multiprocess result into one row per process
// (Proc "1", "2", ... in process-table order) followed by the
// machine-total row (Proc "total").
func FromMulti(mr *sim.MultiResult, prefetch bool) []Row {
	rows := make([]Row, 0, len(mr.PerProcess)+1)
	for i, r := range mr.PerProcess {
		row := FromResult(r, prefetch)
		row.Proc = fmt.Sprint(i + 1)
		rows = append(rows, row)
	}
	total := FromResult(mr.Total, prefetch)
	total.Proc = "total"
	return append(rows, total)
}

// column couples a CSV header name with its Row formatter. Header and
// record are both generated from this one table, so their order cannot
// drift apart (the bug the old hand-maintained pair invited: counters
// that CPUStats tracked but no column carried).
type column struct {
	name  string
	value func(*Row) string
}

func u(f func(*Row) uint64) func(*Row) string {
	return func(r *Row) string { return fmt.Sprint(f(r)) }
}

var columns = []column{
	{"workload", func(r *Row) string { return r.Workload }},
	{"machine", func(r *Row) string { return r.Machine }},
	{"policy", func(r *Row) string { return r.Policy }},
	{"proc", func(r *Row) string { return r.Proc }},
	{"cpus", func(r *Row) string { return fmt.Sprint(r.CPUs) }},
	{"prefetch", func(r *Row) string { return fmt.Sprint(r.Prefetch) }},
	{"wall_cycles", u(func(r *Row) uint64 { return r.Wall })},
	{"combined_cycles", u(func(r *Row) uint64 { return r.Combined })},
	{"mcpi", func(r *Row) string { return fmt.Sprintf("%.4f", r.MCPI) }},
	{"bus_utilization", func(r *Row) string { return fmt.Sprintf("%.4f", r.BusUtil) }},
	{"instructions", u(func(r *Row) uint64 { return r.Instructions })},
	{"exec_cycles", u(func(r *Row) uint64 { return r.ExecCycles })},
	{"mem_stall_cycles", u(func(r *Row) uint64 { return r.MemStall })},
	{"overhead_cycles", u(func(r *Row) uint64 { return r.Overhead })},
	{"l2_misses", u(func(r *Row) uint64 { return r.L2Misses })},
	{"cold_misses", u(func(r *Row) uint64 { return r.ColdMisses })},
	{"conflict_misses", u(func(r *Row) uint64 { return r.ConflictMisses })},
	{"capacity_misses", u(func(r *Row) uint64 { return r.CapacityMisses })},
	{"true_sharing_misses", u(func(r *Row) uint64 { return r.TrueSharing })},
	{"false_sharing_misses", u(func(r *Row) uint64 { return r.FalseSharing })},
	{"page_faults", u(func(r *Row) uint64 { return r.PageFaults })},
	{"hinted_faults", u(func(r *Row) uint64 { return r.HintedFaults })},
	{"honored_hints", u(func(r *Row) uint64 { return r.HonoredHints })},
	{"recolorings", u(func(r *Row) uint64 { return r.Recolorings })},
	{"context_switches", u(func(r *Row) uint64 { return r.ContextSwitches })},
	{"cross_domain_conflicts", u(func(r *Row) uint64 { return r.CrossDomainConflicts })},
	{"isolated", func(r *Row) string { return fmt.Sprint(r.Isolated) }},
	{"inst_misses", u(func(r *Row) uint64 { return r.InstMisses })},
	{"upgrades", u(func(r *Row) uint64 { return r.Upgrades })},
	{"tlb_misses", u(func(r *Row) uint64 { return r.TLBMisses })},
	{"prefetches_issued", u(func(r *Row) uint64 { return r.PrefetchesIssued })},
	{"prefetches_dropped", u(func(r *Row) uint64 { return r.PrefetchesDropped })},
	{"prefetched_hits", u(func(r *Row) uint64 { return r.PrefetchedHits })},
	{"remote_supplies", u(func(r *Row) uint64 { return r.RemoteSupplies })},
	{"bus_queue_cycles", u(func(r *Row) uint64 { return r.BusQueueCycles })},
	{"write_buffer_stall", u(func(r *Row) uint64 { return r.WriteBufferStall })},
	{"cpu_page_faults", u(func(r *Row) uint64 { return r.CPUPageFaults })},
	{"slice_split", func(r *Row) string { return r.SliceSplit }},
	{"fidelity", func(r *Row) string { return r.Fidelity }},
	{"warmup_refs", u(func(r *Row) uint64 { return r.WarmupRefs })},
	{"sampled_windows", u(func(r *Row) uint64 { return r.SampledWindows })},
	{"sampled_iters", u(func(r *Row) uint64 { return r.SampledIters })},
	{"represented_iters", u(func(r *Row) uint64 { return r.RepresentedIters })},
}

// Header returns the CSV column names in emission order.
func Header() []string {
	names := make([]string, len(columns))
	for i, c := range columns {
		names[i] = c.name
	}
	return names
}

func (r Row) record() []string {
	rec := make([]string, len(columns))
	for i, c := range columns {
		rec[i] = c.value(&r)
	}
	return rec
}

// WriteCSV emits a header plus one record per row.
func WriteCSV(w io.Writer, rows []Row) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(Header()); err != nil {
		return err
	}
	for _, r := range rows {
		if err := cw.Write(r.record()); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteJSON emits the rows as a JSON array.
func WriteJSON(w io.Writer, rows []Row) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rows)
}

// WriteColorCSV emits the collector's per-color miss attribution: one
// record per color with the class split, attributed stall cycles, and
// the end-of-run mapped/free frame counts.
func WriteColorCSV(w io.Writer, c *obs.Collector) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"color", "mapped_pages", "free_frames",
		"cold", "conflict", "capacity", "true_share", "false_share", "inst_fetch",
		"total", "stall_cycles",
	}); err != nil {
		return err
	}
	perColor := c.PerColor()
	stall := c.ColorStall()
	for color := range perColor {
		cc := &perColor[color]
		mapped, free := 0, 0
		if color < len(c.ColorMapped) {
			mapped = c.ColorMapped[color]
		}
		if color < len(c.ColorFree) {
			free = c.ColorFree[color]
		}
		rec := []string{
			fmt.Sprint(color), fmt.Sprint(mapped), fmt.Sprint(free),
			fmt.Sprint(cc[obs.Cold]), fmt.Sprint(cc[obs.Conflict]), fmt.Sprint(cc[obs.Capacity]),
			fmt.Sprint(cc[obs.TrueShare]), fmt.Sprint(cc[obs.FalseShare]), fmt.Sprint(cc[obs.InstFetch]),
			fmt.Sprint(cc.Total()), fmt.Sprint(stall[color]),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WritePageCSV emits the collector's k hottest pages, one record per
// virtual page with its class split and attributed stall.
func WritePageCSV(w io.Writer, c *obs.Collector, k int) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"vpn", "color",
		"cold", "conflict", "capacity", "true_share", "false_share", "inst_fetch",
		"total", "stall_cycles",
	}); err != nil {
		return err
	}
	for _, p := range c.TopPages(k) {
		rec := []string{
			fmt.Sprint(p.VPN), fmt.Sprint(p.Color),
			fmt.Sprint(p.Misses[obs.Cold]), fmt.Sprint(p.Misses[obs.Conflict]), fmt.Sprint(p.Misses[obs.Capacity]),
			fmt.Sprint(p.Misses[obs.TrueShare]), fmt.Sprint(p.Misses[obs.FalseShare]), fmt.Sprint(p.Misses[obs.InstFetch]),
			fmt.Sprint(p.Misses.Total()), fmt.Sprint(p.StallCycles),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
