// Package report renders simulation results in machine-readable forms
// (CSV and JSON) for external plotting and analysis, complementing the
// human-readable tables of internal/textplot.
package report

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/sim"
)

// Row flattens one simulation result into named scalar metrics.
type Row struct {
	Workload string  `json:"workload"`
	Machine  string  `json:"machine"`
	Policy   string  `json:"policy"`
	CPUs     int     `json:"cpus"`
	Prefetch bool    `json:"prefetch"`
	Wall     uint64  `json:"wall_cycles"`
	Combined uint64  `json:"combined_cycles"`
	MCPI     float64 `json:"mcpi"`
	BusUtil  float64 `json:"bus_utilization"`

	Instructions   uint64 `json:"instructions"`
	ExecCycles     uint64 `json:"exec_cycles"`
	MemStall       uint64 `json:"mem_stall_cycles"`
	Overhead       uint64 `json:"overhead_cycles"`
	L2Misses       uint64 `json:"l2_misses"`
	ColdMisses     uint64 `json:"cold_misses"`
	ConflictMisses uint64 `json:"conflict_misses"`
	CapacityMisses uint64 `json:"capacity_misses"`
	TrueSharing    uint64 `json:"true_sharing_misses"`
	FalseSharing   uint64 `json:"false_sharing_misses"`
	PageFaults     uint64 `json:"page_faults"`
	HintedFaults   uint64 `json:"hinted_faults"`
	HonoredHints   uint64 `json:"honored_hints"`
	Recolorings    uint64 `json:"recolorings"`
}

// FromResult flattens a result.
func FromResult(r *sim.Result, prefetch bool) Row {
	tot := func(f func(*sim.CPUStats) uint64) uint64 { return r.Total(f) }
	return Row{
		Workload: r.Workload,
		Machine:  r.Machine,
		Policy:   r.Policy,
		CPUs:     r.NumCPUs,
		Prefetch: prefetch,
		Wall:     r.WallCycles,
		Combined: r.CombinedCycles(),
		MCPI:     r.MCPI(),
		BusUtil:  r.BusUtilization(),

		Instructions:   tot(func(s *sim.CPUStats) uint64 { return s.Instructions }),
		ExecCycles:     tot(func(s *sim.CPUStats) uint64 { return s.ExecCycles }),
		MemStall:       tot((*sim.CPUStats).MemStallCycles),
		Overhead:       tot((*sim.CPUStats).OverheadCycles),
		L2Misses:       tot(func(s *sim.CPUStats) uint64 { return s.L2Misses }),
		ColdMisses:     tot(func(s *sim.CPUStats) uint64 { return s.ColdMisses }),
		ConflictMisses: tot(func(s *sim.CPUStats) uint64 { return s.ConflictMisses }),
		CapacityMisses: tot(func(s *sim.CPUStats) uint64 { return s.CapacityMisses }),
		TrueSharing:    tot(func(s *sim.CPUStats) uint64 { return s.TrueShareMisses }),
		FalseSharing:   tot(func(s *sim.CPUStats) uint64 { return s.FalseShareMisses }),
		PageFaults:     r.PageFaults,
		HintedFaults:   r.HintedFaults,
		HonoredHints:   r.HonoredHints,
		Recolorings:    tot(func(s *sim.CPUStats) uint64 { return s.Recolorings }),
	}
}

// csvHeader lists the columns in Row field order.
var csvHeader = []string{
	"workload", "machine", "policy", "cpus", "prefetch",
	"wall_cycles", "combined_cycles", "mcpi", "bus_utilization",
	"instructions", "exec_cycles", "mem_stall_cycles", "overhead_cycles",
	"l2_misses", "cold_misses", "conflict_misses", "capacity_misses",
	"true_sharing_misses", "false_sharing_misses",
	"page_faults", "hinted_faults", "honored_hints", "recolorings",
}

func (r Row) record() []string {
	return []string{
		r.Workload, r.Machine, r.Policy,
		fmt.Sprint(r.CPUs), fmt.Sprint(r.Prefetch),
		fmt.Sprint(r.Wall), fmt.Sprint(r.Combined),
		fmt.Sprintf("%.4f", r.MCPI), fmt.Sprintf("%.4f", r.BusUtil),
		fmt.Sprint(r.Instructions), fmt.Sprint(r.ExecCycles),
		fmt.Sprint(r.MemStall), fmt.Sprint(r.Overhead),
		fmt.Sprint(r.L2Misses), fmt.Sprint(r.ColdMisses),
		fmt.Sprint(r.ConflictMisses), fmt.Sprint(r.CapacityMisses),
		fmt.Sprint(r.TrueSharing), fmt.Sprint(r.FalseSharing),
		fmt.Sprint(r.PageFaults), fmt.Sprint(r.HintedFaults),
		fmt.Sprint(r.HonoredHints), fmt.Sprint(r.Recolorings),
	}
}

// WriteCSV emits a header plus one record per row.
func WriteCSV(w io.Writer, rows []Row) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	for _, r := range rows {
		if err := cw.Write(r.record()); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteJSON emits the rows as a JSON array.
func WriteJSON(w io.Writer, rows []Row) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rows)
}
