// Package report renders simulation results in machine-readable forms
// (CSV and JSON) for external plotting and analysis, complementing the
// human-readable tables of internal/textplot. It also emits the
// per-color and per-page attribution an obs.Collector gathers (the
// paper's Figures 4–5 page-to-miss attribution, §4.2).
package report
