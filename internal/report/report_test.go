package report

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/sim"
)

func sampleResult() *sim.Result {
	r := &sim.Result{
		Workload:   "tomcatv",
		Machine:    "simos-1/16",
		Policy:     "cdpc",
		NumCPUs:    2,
		WallCycles: 1000,
		PerCPU:     make([]sim.CPUStats, 2),
	}
	r.PerCPU[0].Instructions = 100
	r.PerCPU[0].ExecCycles = 100
	r.PerCPU[0].StallCapacity = 50
	r.PerCPU[0].L2Misses = 5
	r.PerCPU[1].Instructions = 200
	r.PerCPU[1].ExecCycles = 200
	return r
}

func TestFromResult(t *testing.T) {
	row := FromResult(sampleResult(), true)
	if row.Workload != "tomcatv" || row.CPUs != 2 || !row.Prefetch {
		t.Errorf("identity fields wrong: %+v", row)
	}
	if row.Instructions != 300 {
		t.Errorf("instructions = %d, want 300", row.Instructions)
	}
	if row.Combined != 2000 {
		t.Errorf("combined = %d, want 2000", row.Combined)
	}
	if row.MemStall != 50 || row.L2Misses != 5 {
		t.Errorf("stall/miss totals wrong: %+v", row)
	}
}

func TestWriteCSVRoundTrip(t *testing.T) {
	rows := []Row{FromResult(sampleResult(), false)}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 2 {
		t.Fatalf("records = %d, want header + 1", len(records))
	}
	if len(records[0]) != len(records[1]) {
		t.Errorf("header width %d != record width %d", len(records[0]), len(records[1]))
	}
	if records[1][0] != "tomcatv" {
		t.Errorf("first field = %q", records[1][0])
	}
	// Header column count must match the Row record.
	if len(records[0]) != len(rows[0].record()) {
		t.Error("header/record mismatch")
	}
}

func TestWriteJSON(t *testing.T) {
	rows := []Row{FromResult(sampleResult(), false)}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, rows); err != nil {
		t.Fatal(err)
	}
	var decoded []Row
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	if len(decoded) != 1 || decoded[0] != rows[0] {
		t.Errorf("round trip mismatch: %+v", decoded)
	}
	if !strings.Contains(buf.String(), `"wall_cycles": 1000`) {
		t.Error("expected snake_case JSON keys")
	}
}

// TestColumnsCoverRowFields pins the single-table design: every numeric
// counter of Row must be exported through the column table, so a field
// added to Row without a column (the dropped-counter bug) fails here.
func TestColumnsCoverRowFields(t *testing.T) {
	if len(Header()) != len(columns) {
		t.Fatalf("Header() = %d names, columns = %d", len(Header()), len(columns))
	}
	row := FromResult(sampleResult(), false)
	if got, want := len(row.record()), len(columns); got != want {
		t.Fatalf("record width %d != column count %d", got, want)
	}
	nfields := reflect.TypeOf(Row{}).NumField()
	if len(columns) != nfields {
		t.Errorf("columns = %d but Row has %d fields: a counter is being dropped", len(columns), nfields)
	}
	// Column names must be unique.
	seen := map[string]bool{}
	for _, name := range Header() {
		if seen[name] {
			t.Errorf("duplicate column %q", name)
		}
		seen[name] = true
	}
	// The counters restored by the accounting audit must all be present.
	for _, name := range []string{"inst_misses", "upgrades", "tlb_misses",
		"prefetches_issued", "prefetches_dropped", "prefetched_hits",
		"remote_supplies", "bus_queue_cycles", "write_buffer_stall"} {
		if !seen[name] {
			t.Errorf("missing column %q", name)
		}
	}
}

// TestNewCountersFlow fills every restored counter and checks it
// survives into the CSV record.
func TestNewCountersFlow(t *testing.T) {
	r := sampleResult()
	r.PerCPU[0].InstMisses = 3
	r.PerCPU[0].Upgrades = 4
	r.PerCPU[0].TLBMisses = 5
	r.PerCPU[0].PrefetchesIssued = 6
	r.PerCPU[0].PrefetchesDropped = 7
	r.PerCPU[0].PrefetchedHits = 8
	r.PerCPU[0].RemoteSupplies = 9
	r.PerCPU[0].BusQueueCycles = 10
	r.PerCPU[0].StallWriteBuffer = 11
	row := FromResult(r, false)
	rec := row.record()
	idx := map[string]int{}
	for i, name := range Header() {
		idx[name] = i
	}
	for name, want := range map[string]string{
		"inst_misses": "3", "upgrades": "4", "tlb_misses": "5",
		"prefetches_issued": "6", "prefetches_dropped": "7",
		"prefetched_hits": "8", "remote_supplies": "9",
		"bus_queue_cycles": "10", "write_buffer_stall": "11",
	} {
		if rec[idx[name]] != want {
			t.Errorf("%s = %q, want %q", name, rec[idx[name]], want)
		}
	}
}

func TestColorAndPageCSV(t *testing.T) {
	c := obs.NewCollector(obs.Options{})
	c.Init(2, 32, 16)
	c.RecordMiss(0, 1, 5, 1, obs.Conflict, 40)
	c.RecordAllocation([]int{3, 4}, []int{7, 8}, 2, 1, 1)

	var buf bytes.Buffer
	if err := WriteColorCSV(&buf, c); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 { // header + 2 colors
		t.Fatalf("color csv rows = %d, want 3", len(recs))
	}
	if recs[0][0] != "color" || recs[2][4] != "1" { // color 1's conflict column
		t.Errorf("color csv contents wrong: %v", recs)
	}

	buf.Reset()
	if err := WritePageCSV(&buf, c, 10); err != nil {
		t.Fatal(err)
	}
	recs, err = csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[1][0] != "5" {
		t.Errorf("page csv contents wrong: %v", recs)
	}
}
