package report

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/sim"
)

func sampleResult() *sim.Result {
	r := &sim.Result{
		Workload:   "tomcatv",
		Machine:    "simos-1/16",
		Policy:     "cdpc",
		NumCPUs:    2,
		WallCycles: 1000,
		PerCPU:     make([]sim.CPUStats, 2),
	}
	r.PerCPU[0].Instructions = 100
	r.PerCPU[0].ExecCycles = 100
	r.PerCPU[0].StallCapacity = 50
	r.PerCPU[0].L2Misses = 5
	r.PerCPU[1].Instructions = 200
	r.PerCPU[1].ExecCycles = 200
	return r
}

func TestFromResult(t *testing.T) {
	row := FromResult(sampleResult(), true)
	if row.Workload != "tomcatv" || row.CPUs != 2 || !row.Prefetch {
		t.Errorf("identity fields wrong: %+v", row)
	}
	if row.Instructions != 300 {
		t.Errorf("instructions = %d, want 300", row.Instructions)
	}
	if row.Combined != 2000 {
		t.Errorf("combined = %d, want 2000", row.Combined)
	}
	if row.MemStall != 50 || row.L2Misses != 5 {
		t.Errorf("stall/miss totals wrong: %+v", row)
	}
}

func TestWriteCSVRoundTrip(t *testing.T) {
	rows := []Row{FromResult(sampleResult(), false)}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 2 {
		t.Fatalf("records = %d, want header + 1", len(records))
	}
	if len(records[0]) != len(records[1]) {
		t.Errorf("header width %d != record width %d", len(records[0]), len(records[1]))
	}
	if records[1][0] != "tomcatv" {
		t.Errorf("first field = %q", records[1][0])
	}
	// Header column count must match the Row record.
	if len(records[0]) != len(rows[0].record()) {
		t.Error("header/record mismatch")
	}
}

func TestWriteJSON(t *testing.T) {
	rows := []Row{FromResult(sampleResult(), false)}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, rows); err != nil {
		t.Fatal(err)
	}
	var decoded []Row
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	if len(decoded) != 1 || decoded[0] != rows[0] {
		t.Errorf("round trip mismatch: %+v", decoded)
	}
	if !strings.Contains(buf.String(), `"wall_cycles": 1000`) {
		t.Error("expected snake_case JSON keys")
	}
}
