package arch

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// WriteJSON serializes the configuration (for saving custom machines).
func (c Config) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(c)
}

// ReadConfig parses a machine configuration from JSON and validates it.
// Fields left at zero inherit nothing — a config file must be complete;
// start from `cdpcsim -dump-machine` output and edit.
func ReadConfig(r io.Reader) (Config, error) {
	var c Config
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&c); err != nil {
		return Config{}, fmt.Errorf("arch: bad machine config: %w", err)
	}
	if err := c.Validate(); err != nil {
		return Config{}, err
	}
	return c, nil
}

// LoadConfigFile reads and validates a machine configuration file.
func LoadConfigFile(path string) (Config, error) {
	f, err := os.Open(path)
	if err != nil {
		return Config{}, err
	}
	defer f.Close()
	return ReadConfig(f)
}
