package arch

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// ReadTopology parses a cache topology from JSON. Only structural
// checks happen here — a topology is validated against a machine shape
// (CPU count, page size, L1 line size) when it is applied to a Config,
// through exactly the same Topology.Validate path the built-in named
// topologies go through. Unlike the built-ins, a file topology carries
// absolute geometries: it does not rescale with -scale.
func ReadTopology(r io.Reader) (Topology, error) {
	var t Topology
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&t); err != nil {
		return Topology{}, fmt.Errorf("arch: bad topology file: %w", err)
	}
	if t.Name == "" {
		return Topology{}, fmt.Errorf("arch: topology file has no Name")
	}
	if len(t.Levels) == 0 {
		return Topology{}, fmt.Errorf("arch: topology %q has no levels", t.Name)
	}
	return t, nil
}

// LoadTopologyFile reads a topology description file (see ReadTopology).
func LoadTopologyFile(path string) (Topology, error) {
	f, err := os.Open(path)
	if err != nil {
		return Topology{}, err
	}
	defer f.Close()
	return ReadTopology(f)
}

// RegisterTopology adds t to the selectable topology set under t.Name,
// so file-loaded topologies flow through the same entry points —
// KnownTopology, ApplyTopology, Config.Validate — as the shipped named
// ones. The registered builder returns t as-is for every Config (file
// topologies are absolute; they do not derive geometry from the machine
// they are applied to). Names must be unique: collisions with built-ins
// or earlier registrations are rejected rather than shadowed.
func RegisterTopology(t Topology) error {
	if t.Name == "" || t.Name == "default" {
		return fmt.Errorf("arch: cannot register topology with name %q", t.Name)
	}
	if len(t.Levels) == 0 {
		return fmt.Errorf("arch: topology %q has no levels", t.Name)
	}
	if _, ok := topologyBuilders[t.Name]; ok {
		return fmt.Errorf("arch: topology %q already registered", t.Name)
	}
	topologyBuilders[t.Name] = func(Config) Topology { return t }
	return nil
}
