package arch

import (
	"strings"
	"testing"
)

// fileTopoJSON is a complete single-level topology that is valid under
// Base(8, 16): 128-byte lines over the 32-byte L1 lines, a 64 KB
// direct-mapped LLC slice well above the 4 KB page.
const fileTopoJSON = `{
  "Name": "file-l2-64k",
  "Levels": [
    {
      "Name": "L2",
      "Geom": {"Size": 65536, "LineSize": 128, "Assoc": 1},
      "CPUsPerCache": 1,
      "HitCycles": 20,
      "Inclusive": true,
      "Slices": 1
    }
  ]
}`

// TestReadTopologyAndRegister: a file topology loads, registers, and
// then flows through the exact entry points named topologies use —
// KnownTopology, ApplyTopology (name folding included) and
// Config.Validate.
func TestReadTopologyAndRegister(t *testing.T) {
	topo, err := ReadTopology(strings.NewReader(fileTopoJSON))
	if err != nil {
		t.Fatal(err)
	}
	// Registration is process-global, so tolerate re-runs (-count>1).
	if !KnownTopology(topo.Name) {
		if err := RegisterTopology(topo); err != nil {
			t.Fatal(err)
		}
	}
	if !KnownTopology(topo.Name) {
		t.Fatal("registered topology not known")
	}
	found := false
	for _, n := range TopologyNames() {
		if n == topo.Name {
			found = true
		}
	}
	if !found {
		t.Fatal("registered topology missing from TopologyNames")
	}

	cfg, err := ApplyTopology(Base(8, 16), topo.Name)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(cfg.Name, topo.Name) {
		t.Errorf("machine name %q does not carry the topology", cfg.Name)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("applied config invalid: %v", err)
	}
	if got := cfg.Topo().LLC().Geom.Size; got != 65536 {
		t.Errorf("LLC size %d, want the file's absolute 65536", got)
	}

	// A registered topology still fails machine validation when it does
	// not fit the machine — the same check path, not a bypass.
	misfit := topo
	misfit.Name = "file-l2-64k-quad"
	misfit.Levels = append([]Level(nil), topo.Levels...)
	misfit.Levels[0].CPUsPerCache = 4
	if !KnownTopology(misfit.Name) {
		if err := RegisterTopology(misfit); err != nil {
			t.Fatal(err)
		}
	}
	bad, err := ApplyTopology(Base(3, 16), misfit.Name)
	if err != nil {
		t.Fatal(err)
	}
	if err := bad.Validate(); err == nil {
		t.Error("4-CPU-cluster file topology validated on a 3-CPU machine")
	}
}

// TestRegisterTopologyRejects covers the collision and structural
// rejections.
func TestRegisterTopologyRejects(t *testing.T) {
	if err := RegisterTopology(Topology{Name: "", Levels: []Level{{}}}); err == nil {
		t.Error("registered empty name")
	}
	if err := RegisterTopology(Topology{Name: "default", Levels: []Level{{}}}); err == nil {
		t.Error("shadowed the default topology")
	}
	if err := RegisterTopology(Topology{Name: "clustered-l3", Levels: []Level{{}}}); err == nil {
		t.Error("shadowed a built-in topology")
	}
	if err := RegisterTopology(Topology{Name: "file-no-levels"}); err == nil {
		t.Error("registered a topology with no levels")
	}
}

// TestReadTopologyRejects is the loader's rejection table.
func TestReadTopologyRejects(t *testing.T) {
	cases := []struct{ name, json string }{
		{"empty", ``},
		{"unknown field", `{"Name":"x","Levels":[],"Bogus":1}`},
		{"no name", `{"Levels":[{"Name":"L2"}]}`},
		{"no levels", `{"Name":"x","Levels":[]}`},
	}
	for _, tc := range cases {
		if _, err := ReadTopology(strings.NewReader(tc.json)); err == nil {
			t.Errorf("%s: loaded without error", tc.name)
		}
	}
}
