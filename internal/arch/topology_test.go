package arch

import (
	"bytes"
	"strings"
	"testing"
)

func TestSliceHash(t *testing.T) {
	h := XorFoldHash(2, 12, 28)
	if got := h.Slices(); got != 4 {
		t.Fatalf("Slices() = %d, want 4", got)
	}
	if err := h.Validate(4096); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// Interleaved masks: bit 12 feeds index bit 0, bit 13 index bit 1,
	// bit 14 index bit 0 again...
	if h.Masks[0]&(1<<12) == 0 || h.Masks[1]&(1<<13) == 0 || h.Masks[0]&(1<<14) == 0 {
		t.Fatalf("unexpected mask interleave: %#x", h.Masks)
	}
	// A single address bit flips exactly the index bit whose mask holds it.
	if h.SliceOf(0) != 0 {
		t.Fatalf("SliceOf(0) = %d", h.SliceOf(0))
	}
	if h.SliceOf(1<<12) != 1 {
		t.Fatalf("SliceOf(1<<12) = %d, want 1", h.SliceOf(1<<12))
	}
	if h.SliceOf(1<<13) != 2 {
		t.Fatalf("SliceOf(1<<13) = %d, want 2", h.SliceOf(1<<13))
	}
	if h.SliceOf(1<<12|1<<14) != 0 {
		t.Fatalf("parity should cancel: got %d", h.SliceOf(1<<12|1<<14))
	}
}

func TestSliceHashValidate(t *testing.T) {
	if err := (SliceHash{}).Validate(4096); err == nil {
		t.Error("empty hash validated")
	}
	if err := (SliceHash{Masks: []uint64{1 << 6}}).Validate(4096); err == nil {
		t.Error("sub-page mask bit validated; a page would straddle slices")
	}
	if err := (SliceHash{Masks: []uint64{0}}).Validate(4096); err == nil {
		t.Error("zero mask validated")
	}
}

// TestSliceHashColorPartition is the property test: slice-hash color
// classes partition the frame space — every frame gets exactly one
// color in [0, Colors), every line of a page lands in its page's slice,
// and within a slice the color is the classic frame-mod arithmetic.
func TestSliceHashColorPartition(t *testing.T) {
	cfg := Base(4, 16)
	cfg, err := ApplyTopology(cfg, "sliced-llc4")
	if err != nil {
		t.Fatal(err)
	}
	llc := cfg.Topology.LLC()
	colors := cfg.Colors()
	sc := llc.SliceColors(cfg.PageSize)
	if colors != llc.Slices*sc {
		t.Fatalf("Colors() = %d, want slices(%d) * sliceColors(%d)", colors, llc.Slices, sc)
	}
	frames := uint64(cfg.MemoryMB) << 20 >> cfg.PageShift()
	seen := make([]uint64, colors)
	for f := uint64(0); f < frames; f++ {
		c := cfg.FrameColor(f)
		if c < 0 || c >= colors {
			t.Fatalf("frame %d: color %d out of [0,%d)", f, c, colors)
		}
		seen[c]++
		// Slice-major numbering: color / sliceColors is the slice,
		// color % sliceColors the within-slice color.
		base := f << cfg.PageShift()
		if got, want := c/sc, llc.SliceOf(base); got != want {
			t.Fatalf("frame %d: color %d encodes slice %d, hash says %d", f, c, got, want)
		}
		if got, want := c%sc, int(f%uint64(sc)); got != want {
			t.Fatalf("frame %d: within-slice color %d, want %d", f, got, want)
		}
		// Every line of the page must hash to the page's slice.
		for off := 0; off < cfg.PageSize; off += llc.Geom.LineSize {
			if llc.SliceOf(base+uint64(off)) != llc.SliceOf(base) {
				t.Fatalf("frame %d: line at offset %d changes slice", f, off)
			}
		}
	}
	// Partition: classes are non-empty and cover the frame space evenly
	// enough that no class is starved (the hash folds many bits, so the
	// split is near-uniform; assert within 2x of fair share).
	fair := frames / uint64(colors)
	var total uint64
	for c, n := range seen {
		total += n
		if n == 0 {
			t.Errorf("color %d: no frames", c)
		}
		if n > 2*fair {
			t.Errorf("color %d: %d frames, more than 2x fair share %d", c, n, fair)
		}
	}
	if total != frames {
		t.Fatalf("classes sum to %d, want %d", total, frames)
	}
}

func TestDefaultTopologyMatchesConfig(t *testing.T) {
	cfg := Base(4, 16)
	topo := cfg.Topo()
	if topo.Name != "default" || len(topo.Levels) != 1 {
		t.Fatalf("unexpected default topology %+v", topo)
	}
	llc := topo.LLC()
	if llc.Geom != cfg.L2 || llc.HitCycles != cfg.L2HitCycles || llc.CPUsPerCache != 1 || llc.Slices != 1 {
		t.Fatalf("default LLC %+v does not mirror cfg.L2", llc)
	}
	if llc.Colors(cfg.PageSize) != cfg.Colors() {
		t.Fatalf("default topology colors %d != cfg colors %d", llc.Colors(cfg.PageSize), cfg.Colors())
	}
	for f := uint64(0); f < 64; f++ {
		if cfg.FrameColor(f) != int(f%uint64(cfg.Colors())) {
			t.Fatalf("frame %d: default FrameColor diverged", f)
		}
	}
}

func TestApplyTopology(t *testing.T) {
	cfg := Base(8, 16)
	for _, name := range TopologyNames() {
		c, err := ApplyTopology(cfg, name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := c.Validate(); err != nil {
			t.Fatalf("%s: applied config invalid: %v", name, err)
		}
		if name != "default" && !strings.Contains(c.Name, name) {
			t.Errorf("%s: machine name %q does not carry the topology", name, c.Name)
		}
		// Round-trip through JSON: named topologies must survive machine
		// files.
		var buf bytes.Buffer
		if err := c.WriteJSON(&buf); err != nil {
			t.Fatalf("%s: WriteJSON: %v", name, err)
		}
		rt, err := ReadConfig(&buf)
		if err != nil {
			t.Fatalf("%s: ReadConfig: %v", name, err)
		}
		if rt.Colors() != c.Colors() {
			t.Errorf("%s: colors changed over JSON round-trip: %d != %d", name, rt.Colors(), c.Colors())
		}
	}
	if _, err := ApplyTopology(cfg, "no-such"); err == nil {
		t.Error("unknown topology applied")
	}
	if !KnownTopology("") || !KnownTopology("default") || KnownTopology("no-such") {
		t.Error("KnownTopology misclassifies")
	}
}

func TestTopologyValidate(t *testing.T) {
	cfg := Base(4, 16)
	bad := []Topology{
		{Name: "empty"},
		{Name: "cluster", Levels: []Level{{Name: "L2", Geom: cfg.L2, CPUsPerCache: 3, HitCycles: 1, Slices: 1}}},
		{Name: "shrinking-line", Levels: []Level{
			{Name: "L2", Geom: CacheGeometry{Size: 64 << 10, LineSize: 128, Assoc: 1}, CPUsPerCache: 1, HitCycles: 1, Slices: 1},
			{Name: "L3", Geom: CacheGeometry{Size: 128 << 10, LineSize: 64, Assoc: 1}, CPUsPerCache: 4, HitCycles: 2, Slices: 1},
		}},
		{Name: "narrowing-share", Levels: []Level{
			{Name: "L2", Geom: cfg.L2, CPUsPerCache: 4, HitCycles: 1, Slices: 1},
			{Name: "L3", Geom: cfg.L2, CPUsPerCache: 2, HitCycles: 2, Slices: 1},
		}},
		{Name: "sliced-no-hash", Levels: []Level{{Name: "LLC", Geom: cfg.L2, CPUsPerCache: 4, HitCycles: 1, Slices: 4}}},
		{Name: "hash-mismatch", Levels: []Level{func() Level {
			h := XorFoldHash(1, 12, 20)
			return Level{Name: "LLC", Geom: cfg.L2, CPUsPerCache: 4, HitCycles: 1, Slices: 4, Hash: &h}
		}()}},
		{Name: "unsliced-with-hash", Levels: []Level{func() Level {
			h := XorFoldHash(1, 12, 20)
			return Level{Name: "LLC", Geom: cfg.L2, CPUsPerCache: 4, HitCycles: 1, Slices: 1, Hash: &h}
		}()}},
	}
	for _, topo := range bad {
		if err := topo.Validate(cfg.NumCPUs, cfg.PageSize, cfg.L1D.LineSize); err == nil {
			t.Errorf("%s: validated", topo.Name)
		}
	}
}
