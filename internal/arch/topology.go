package arch

import (
	"fmt"
	"math/bits"
	"sort"
)

// SliceHash selects a last-level-cache slice from a physical address by
// XOR-folding address bits: bit i of the slice index is the parity of
// popcount(addr & Masks[i]). This is the family of hash functions used
// by sliced LLCs since Sandy Bridge ("Cracking Intel Sandy Bridge's
// Cache Hash Function"): each slice-index bit is the XOR of a fixed set
// of physical address bits.
//
// Every mask bit must sit at or above the page-offset width, so all
// lines of one physical page hash to the same slice — that is what
// keeps "page color" well defined on a sliced cache: a page's color is
// (slice, within-slice color), and the OS can still steer placement by
// choosing frames.
type SliceHash struct {
	Masks []uint64
}

// Slices returns the number of slices the hash selects among.
func (h SliceHash) Slices() int { return 1 << len(h.Masks) }

// SliceOf returns the slice index for a physical address.
func (h SliceHash) SliceOf(addr uint64) int {
	s := 0
	for i, m := range h.Masks {
		s |= (bits.OnesCount64(addr&m) & 1) << i
	}
	return s
}

// Validate checks the hash against the page size: masks must be
// non-empty and every mask bit must lie at or above the page offset, so
// slice selection is a pure function of the frame number.
func (h SliceHash) Validate(pageSize int) error {
	if len(h.Masks) == 0 {
		return fmt.Errorf("arch: slice hash needs at least one mask")
	}
	if len(h.Masks) > 8 {
		return fmt.Errorf("arch: slice hash with %d index bits (max 8)", len(h.Masks))
	}
	pageMask := uint64(pageSize - 1)
	for i, m := range h.Masks {
		if m == 0 {
			return fmt.Errorf("arch: slice hash mask %d is zero", i)
		}
		if m&pageMask != 0 {
			return fmt.Errorf("arch: slice hash mask %d (%#x) uses bits below the %d-byte page offset; a page would straddle slices", i, m, pageSize)
		}
	}
	return nil
}

// XorFoldHash builds an n-bit slice hash over the physical address bits
// [lowBit, highBit): index bit i XORs every (len-th) bit starting at
// lowBit+i, interleaving the bits round-robin across index bits. It is
// the shape of the measured Sandy Bridge functions (each index bit the
// parity of a comb of high address bits) without copying any one die's
// exact constants.
func XorFoldHash(nbits int, lowBit, highBit uint) SliceHash {
	masks := make([]uint64, nbits)
	for b := lowBit; b < highBit; b++ {
		masks[int(b-lowBit)%nbits] |= 1 << b
	}
	return SliceHash{Masks: masks}
}

// Level is one physically indexed cache level of a Topology, from the
// innermost level beyond the on-chip L1s out to the LLC. The virtually
// indexed split L1s stay outside the topology: page mapping cannot help
// them (§2.1), so every Config keeps its L1D/L1I fields.
type Level struct {
	// Name labels the level in reports ("L2", "L3").
	Name string
	// Geom is the geometry of ONE slice of ONE cache instance at this
	// level. An unsliced level's instance is exactly Geom; a sliced
	// level's instance is Slices copies of Geom selected by Hash.
	Geom CacheGeometry
	// CPUsPerCache is the sharing cluster width: how many consecutive
	// CPUs share each cache instance. 1 is private per CPU, NumCPUs is
	// machine-shared. Must divide NumCPUs.
	CPUsPerCache int
	// HitCycles is the stall charged when this level services an on-chip
	// miss.
	HitCycles int
	// Inclusive marks the level inclusion-managed: an eviction at the
	// level above (or, for the LLC, at this level) back-invalidates this
	// level's copies. A non-inclusive level keeps lines the LLC evicted
	// and can service them later without a bus transaction.
	Inclusive bool
	// Slices is the number of hash-selected slices per cache instance;
	// 1 is a conventional set-indexed cache. Must equal Hash.Slices().
	Slices int
	// Hash selects the slice for sliced levels; nil when Slices is 1.
	Hash *SliceHash `json:",omitempty"`
}

// Colors returns the number of page colors the level offers: slices
// times the per-slice colors (per-slice size / (page size * assoc),
// §2.1 generalized). Minimum 1.
func (l Level) Colors(pageSize int) int {
	return l.Slices * l.SliceColors(pageSize)
}

// TotalSize returns the full capacity of one cache instance at this
// level: the per-slice geometry times the slice count. This — not
// Geom.Size — is the number layout decisions (external-cache padding,
// blocking factors) should compare working sets against.
func (l Level) TotalSize() int { return l.Geom.Size * l.Slices }

// SliceColors returns the page colors within one slice.
func (l Level) SliceColors(pageSize int) int {
	n := l.Geom.Size / (pageSize * l.Geom.Assoc)
	if n < 1 {
		return 1
	}
	return n
}

// SliceOf returns the slice index serving a physical address (0 for
// unsliced levels).
func (l Level) SliceOf(addr uint64) int {
	if l.Hash == nil {
		return 0
	}
	return l.Hash.SliceOf(addr)
}

// FrameColor returns the page color of a physical frame number at this
// level: the hash-selected slice (constant across the page — Validate
// guarantees no mask bit is below the page offset) concatenated with
// the within-slice color, slice-major. For an unsliced level this is
// the classic frame-number-mod-colors of contiguous physical memory.
func (l Level) FrameColor(frame uint64, pageSize int) int {
	sc := l.SliceColors(pageSize)
	within := int(frame % uint64(sc))
	if l.Hash == nil {
		return within
	}
	return l.Hash.SliceOf(frame*uint64(pageSize))*sc + within
}

// Validate checks one level against the machine shape.
func (l Level) Validate(numCPUs, pageSize int) error {
	if err := l.Geom.Validate(); err != nil {
		return fmt.Errorf("arch: level %s: %w", l.Name, err)
	}
	if l.CPUsPerCache <= 0 || numCPUs%l.CPUsPerCache != 0 {
		return fmt.Errorf("arch: level %s: CPUsPerCache %d must divide NumCPUs %d", l.Name, l.CPUsPerCache, numCPUs)
	}
	if l.HitCycles < 0 {
		return fmt.Errorf("arch: level %s: negative hit latency", l.Name)
	}
	switch {
	case l.Slices < 1:
		return fmt.Errorf("arch: level %s: Slices must be at least 1", l.Name)
	case l.Slices == 1:
		if l.Hash != nil {
			return fmt.Errorf("arch: level %s: unsliced level carries a slice hash", l.Name)
		}
	default:
		if l.Slices&(l.Slices-1) != 0 {
			return fmt.Errorf("arch: level %s: slice count %d not a power of two", l.Name, l.Slices)
		}
		if l.Hash == nil {
			return fmt.Errorf("arch: level %s: %d slices need a slice hash", l.Name, l.Slices)
		}
		if err := l.Hash.Validate(pageSize); err != nil {
			return err
		}
		if got := l.Hash.Slices(); got != l.Slices {
			return fmt.Errorf("arch: level %s: hash selects %d slices but Slices is %d", l.Name, got, l.Slices)
		}
	}
	return nil
}

// Topology is a declarative description of the physically indexed cache
// hierarchy: an ordered list of levels from the innermost (closest to
// the CPU, just beyond the split virtually indexed L1s) to the LLC.
// The LLC — the last level — is where the coherence protocol lives and
// where page colors are defined; inner levels are latency filters
// maintained under the LLC.
//
// A nil Config.Topology means the default topology: the paper's single
// per-CPU physically indexed external cache, expressed by the Config's
// L2 geometry and L2HitCycles fields (see DefaultTopology). All default
// paths are byte-identical to the pre-topology simulator.
type Topology struct {
	// Name identifies the topology in reports and flags.
	Name   string
	Levels []Level
}

// LLC returns the last (coherence- and color-defining) level.
func (t Topology) LLC() Level { return t.Levels[len(t.Levels)-1] }

// Validate checks the whole topology against the machine shape: every
// level valid, line sizes non-decreasing inner to outer with each
// outer line a multiple of the inner (back-invalidation walks inner
// lines within an outer victim), sharing widths non-decreasing (a
// cluster's cache cannot be private to fewer CPUs than the level
// below it spans), and the LLC's per-slice size at least a page.
func (t Topology) Validate(numCPUs, pageSize, l1LineSize int) error {
	if len(t.Levels) == 0 {
		return fmt.Errorf("arch: topology %q has no levels", t.Name)
	}
	prevLine, prevShare := l1LineSize, 1
	for i, l := range t.Levels {
		if err := l.Validate(numCPUs, pageSize); err != nil {
			return err
		}
		if l.Slices > 1 && i != len(t.Levels)-1 {
			return fmt.Errorf("arch: level %s: only the last level may be sliced", l.Name)
		}
		if l.Geom.LineSize < prevLine || l.Geom.LineSize%prevLine != 0 {
			return fmt.Errorf("arch: level %s line size %d must be a multiple of the inner level's %d", l.Name, l.Geom.LineSize, prevLine)
		}
		if l.CPUsPerCache < prevShare {
			return fmt.Errorf("arch: level %s shared by %d CPUs but the inner level spans %d", l.Name, l.CPUsPerCache, prevShare)
		}
		prevLine, prevShare = l.Geom.LineSize, l.CPUsPerCache
	}
	if llc := t.LLC(); llc.Geom.Size < pageSize {
		return fmt.Errorf("arch: LLC slice (%d) smaller than a page (%d)", llc.Geom.Size, pageSize)
	}
	return nil
}

// DefaultTopology expresses a Config's classic two-level machine — per-
// CPU virtually indexed L1s over a per-CPU physically indexed external
// cache — as a one-level topology. It is what every simulator path sees
// when Config.Topology is nil.
func DefaultTopology(c Config) Topology {
	return Topology{
		Name: "default",
		Levels: []Level{{
			Name:         "L2",
			Geom:         c.L2,
			CPUsPerCache: 1,
			HitCycles:    c.L2HitCycles,
			Inclusive:    true,
			Slices:       1,
		}},
	}
}

// Topo resolves the effective topology: the configured one, or the
// default expression of the L2 fields.
func (c Config) Topo() Topology {
	if c.Topology != nil {
		return *c.Topology
	}
	return DefaultTopology(c)
}

// FrameColor returns the page color of a physical frame number under
// the effective topology's LLC. For the default (unsliced) topology it
// is frame mod Colors(), the layout of contiguous physical memory under
// a physically indexed cache.
func (c Config) FrameColor(frame uint64) int {
	if c.Topology == nil {
		return int(frame % uint64(c.Colors()))
	}
	return c.Topology.LLC().FrameColor(frame, c.PageSize)
}

// topologyBuilders maps topology names to constructors. Constructors
// derive every geometry from the Config they are applied to (its L2
// geometry carries the machine scale), so a named topology composes
// with -scale and both machine presets. "default" is the nil topology.
var topologyBuilders = map[string]func(Config) Topology{
	"default":      nil,
	"clustered-l3": clusteredL3,
	"sliced-llc4":  slicedLLC4,
}

// TopologyNames lists the selectable topology names, sorted.
func TopologyNames() []string {
	names := make([]string, 0, len(topologyBuilders))
	for n := range topologyBuilders {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// KnownTopology reports whether name selects a shipped topology
// ("" means default).
func KnownTopology(name string) bool {
	if name == "" {
		return true
	}
	_, ok := topologyBuilders[name]
	return ok
}

// ApplyTopology returns cfg with the named topology installed (and the
// name folded into the machine name so results are distinguishable).
// "default" and "" return cfg unchanged.
func ApplyTopology(cfg Config, name string) (Config, error) {
	if name == "" || name == "default" {
		return cfg, nil
	}
	build, ok := topologyBuilders[name]
	if !ok {
		return Config{}, fmt.Errorf("arch: unknown topology %q (have %v)", name, TopologyNames())
	}
	t := build(cfg)
	cfg.Topology = &t
	cfg.Name = cfg.Name + "+" + name
	return cfg, nil
}

// clusteredL3 is the 3-level configuration: a private per-CPU L2 of
// half the base external cache, under a 4-CPU-cluster shared L3 of
// twice the base external cache. Latencies straddle the base machine's
// external hit cost: the private L2 is closer, the shared L3 farther.
func clusteredL3(cfg Config) Topology {
	cluster := 4
	if cfg.NumCPUs < cluster {
		cluster = cfg.NumCPUs
	}
	return Topology{
		Name: "clustered-l3",
		Levels: []Level{
			{
				Name:         "L2",
				Geom:         CacheGeometry{Size: FloorPow2(maxInt(cfg.L2.Size/2, 16<<10)), LineSize: cfg.L2.LineSize, Assoc: 4},
				CPUsPerCache: 1,
				HitCycles:    maxInt(cfg.L2HitCycles/2, 1),
				Inclusive:    true,
				Slices:       1,
			},
			{
				Name:         "L3",
				Geom:         CacheGeometry{Size: FloorPow2(cfg.L2.Size) * 2, LineSize: cfg.L2.LineSize, Assoc: 4},
				CPUsPerCache: cluster,
				HitCycles:    cfg.L2HitCycles * 2,
				Inclusive:    true,
				Slices:       1,
			},
		},
	}
}

// slicedLLC4 is the modern sliced-LLC configuration: one machine-shared
// last-level cache of four hash-selected slices, each half the base
// external cache, 2-way. The slice hash XOR-folds the physical address
// bits from the page offset up through bit 27, the published shape of
// the Sandy Bridge function scaled to the simulated memory.
func slicedLLC4(cfg Config) Topology {
	h := XorFoldHash(2, cfg.PageShift(), 28)
	return Topology{
		Name: "sliced-llc4",
		Levels: []Level{{
			Name:         "LLC",
			Geom:         CacheGeometry{Size: FloorPow2(maxInt(cfg.L2.Size/2, 16<<10)), LineSize: cfg.L2.LineSize, Assoc: 2},
			CPUsPerCache: cfg.NumCPUs,
			HitCycles:    cfg.L2HitCycles * 2,
			Inclusive:    true,
			Slices:       4,
			Hash:         &h,
		}},
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
