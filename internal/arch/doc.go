// Package arch defines the machine parameters used throughout the
// simulator: cache geometries, bus bandwidth, memory latencies, page size
// and the color arithmetic that connects physically indexed caches to
// virtual-memory pages (the §2 mechanism: physical address bits select
// the external-cache bin, so the OS's frame choice decides cache
// placement).
//
// Two presets are provided: Base, modeled on the paper's SimOS
// configuration (400 MHz single-issue R4400s, 32 KB 2-way split L1,
// 1 MB direct-mapped external cache, 1.2 GB/s split-transaction bus), and
// Alpha, modeled on the 350 MHz AlphaServer 8400 used for validation
// (4 MB direct-mapped external cache). Scale derives proportionally
// smaller machines so that full experiments finish in seconds.
//
// Everything beyond the virtually indexed L1s is described by a
// declarative Topology: an ordered list of physically indexed cache
// Levels (per-level geometry, sharing-cluster width, latency,
// inclusivity, and an optional XOR-of-address-bits slice hash on the
// last level). A nil Config.Topology means DefaultTopology — the
// paper's single per-CPU external cache, byte-identical to the
// pre-topology simulator — and named alternatives (ApplyTopology,
// TopologyNames) reshape the hierarchy while Config.Colors and
// Config.FrameColor keep every placement policy working in the
// effective color space. MACHINES.md is the schema and configuration
// reference.
package arch
