package arch

import "fmt"

// CacheGeometry describes one cache level.
type CacheGeometry struct {
	Size     int // total bytes
	LineSize int // bytes per line
	Assoc    int // ways; 1 = direct-mapped
}

// Lines returns the number of lines in the cache.
func (g CacheGeometry) Lines() int { return g.Size / g.LineSize }

// Sets returns the number of sets.
func (g CacheGeometry) Sets() int { return g.Size / (g.LineSize * g.Assoc) }

// LineShift returns log2(LineSize). Validate guarantees the line size is
// a power of two, so shifting by it replaces 64-bit division on the
// simulator's per-reference hot path.
func (g CacheGeometry) LineShift() uint { return Log2(g.LineSize) }

// SetOf maps an address to its set index.
func (g CacheGeometry) SetOf(addr uint64) int {
	return int((addr >> g.LineShift()) & uint64(g.Sets()-1))
}

// TagOf returns the tag for addr.
func (g CacheGeometry) TagOf(addr uint64) uint64 {
	return addr >> g.LineShift() >> Log2(g.Sets())
}

// LineAddr returns addr rounded down to its line boundary.
func (g CacheGeometry) LineAddr(addr uint64) uint64 {
	return addr &^ uint64(g.LineSize-1)
}

// Log2 returns log2(x) for a positive power of two x (0 otherwise).
func Log2(x int) uint {
	var s uint
	for x > 1 {
		x >>= 1
		s++
	}
	return s
}

// FloorPow2 rounds x down to the nearest power of two (minimum 1).
// Scaled geometry must pass through here: dividing a cache size by an
// arbitrary scale factor can yield a non-power-of-two, which would turn
// every downstream shift-and-mask index computation into silent
// garbage. For power-of-two scales this is the identity, so the
// paper's configurations are unchanged.
func FloorPow2(x int) int {
	if x < 1 {
		return 1
	}
	p := 1
	for p <= x/2 {
		p <<= 1
	}
	return p
}

// Validate reports whether the geometry is internally consistent
// (power-of-two sizes, line divides size, associativity sane). Requiring
// a power-of-two set count here — once, at configuration time — is what
// lets every address→set and address→page computation downstream be a
// shift-and-mask instead of a 64-bit division.
func (g CacheGeometry) Validate() error {
	switch {
	case g.Size <= 0 || g.LineSize <= 0 || g.Assoc <= 0:
		return fmt.Errorf("arch: non-positive cache parameter %+v", g)
	case g.Size%(g.LineSize*g.Assoc) != 0:
		return fmt.Errorf("arch: size %d not divisible by line*assoc (%d*%d)", g.Size, g.LineSize, g.Assoc)
	case g.Size&(g.Size-1) != 0:
		return fmt.Errorf("arch: size %d not a power of two", g.Size)
	case g.LineSize&(g.LineSize-1) != 0:
		return fmt.Errorf("arch: line size %d not a power of two", g.LineSize)
	}
	if sets := g.Sets(); sets&(sets-1) != 0 {
		return fmt.Errorf("arch: set count %d (size %d / line %d / assoc %d) not a power of two", sets, g.Size, g.LineSize, g.Assoc)
	}
	return nil
}

// Config is a full machine description.
type Config struct {
	Name    string
	NumCPUs int

	ClockMHz int // processor clock; 1 instruction per cycle (single-issue)

	L1D CacheGeometry // on-chip, virtually indexed: page mapping cannot help it
	L1I CacheGeometry
	L2  CacheGeometry // external, physically indexed: page colors matter here

	// Topology, when non-nil, replaces the implicit single-level external
	// cache described by L2/L2HitCycles with a declarative multi-level,
	// possibly sliced hierarchy (see Topology). Nil means the default
	// topology — the paper's machine — and keeps every simulator path
	// byte-identical to the pre-topology code.
	Topology *Topology `json:",omitempty"`

	PageSize int

	// Latencies in CPU cycles.
	L1HitCycles     int // charged as part of execution (0 extra stall)
	L2HitCycles     int // stall on an L1 miss that hits in L2
	MemCycles       int // stall for a line fetched from memory (no contention)
	RemoteCycles    int // stall for a line fetched dirty from another CPU's cache
	TLBMissCycles   int // software TLB refill (kernel time)
	PageFaultCycles int // kernel page-fault service (kernel time)
	BarrierCycles   int // software barrier cost per CPU per episode
	ForkCycles      int // master dispatching a parallel region
	// ForkSkewCycles is the per-slave dispatch serialization: the master
	// releases slaves one at a time, so CPU i starts i*skew cycles after
	// CPU 0. Without it, identical per-CPU mappings make every CPU miss
	// on the same cycle and the bus sees worst-case convoys that real
	// machines' dispatch and DRAM jitter break up.
	ForkSkewCycles int

	// Bus: split-transaction, finite bandwidth.
	BusBytesPerCycle float64 // 1.2 GB/s at 400 MHz = 3 bytes/cycle
	BusOverhead      int     // fixed arbitration+address cycles per transaction

	// MemJitterCycles bounds the deterministic pseudo-random variation
	// added to each memory access's latency, modeling DRAM bank and
	// refresh timing variance. Without it, CPUs with identical cache
	// layouts (e.g. under CDPC) march in perfect lockstep and every miss
	// becomes a worst-case bus convoy that no real machine sustains.
	MemJitterCycles int

	TLBEntries int

	// WriteBufferEntries bounds the per-CPU write-back buffer: dirty
	// victims wait there for the bus, and a full buffer stalls the CPU
	// until the oldest write-back drains. 0 disables the limit.
	WriteBufferEntries int

	// Prefetch engine (R10000-style, §6.2).
	MaxOutstandingPrefetches int // a further prefetch stalls the CPU

	MemoryMB int // physical memory size
}

// Colors returns the number of page colors of the last-level cache:
// cache size / (page size * associativity) (§2.1), generalized to
// slices × per-slice colors under an explicit topology.
func (c Config) Colors() int {
	if c.Topology != nil {
		return c.Topology.LLC().Colors(c.PageSize)
	}
	n := c.L2.Size / (c.PageSize * c.L2.Assoc)
	if n < 1 {
		return 1
	}
	return n
}

// PagesPerCache returns how many pages fit in one last-level cache
// instance (all slices included).
func (c Config) PagesPerCache() int {
	if c.Topology != nil {
		llc := c.Topology.LLC()
		return llc.Slices * llc.Geom.Size / c.PageSize
	}
	return c.L2.Size / c.PageSize
}

// PageShift returns log2(PageSize).
func (c Config) PageShift() uint { return Log2(c.PageSize) }

// CyclesFromNS converts a wall-clock latency to cycles at this clock.
func (c Config) CyclesFromNS(ns int) int { return ns * c.ClockMHz / 1000 }

// Validate checks the full configuration.
func (c Config) Validate() error {
	if c.NumCPUs <= 0 {
		return fmt.Errorf("arch: NumCPUs must be positive, got %d", c.NumCPUs)
	}
	if c.PageSize <= 0 || c.PageSize&(c.PageSize-1) != 0 {
		return fmt.Errorf("arch: page size %d must be a positive power of two", c.PageSize)
	}
	for _, g := range []CacheGeometry{c.L1D, c.L1I, c.L2} {
		if err := g.Validate(); err != nil {
			return err
		}
	}
	if c.L2.Size < c.PageSize {
		return fmt.Errorf("arch: L2 (%d) smaller than a page (%d)", c.L2.Size, c.PageSize)
	}
	if c.Topology != nil {
		if err := c.Topology.Validate(c.NumCPUs, c.PageSize, c.L1D.LineSize); err != nil {
			return err
		}
	}
	if c.BusBytesPerCycle <= 0 {
		return fmt.Errorf("arch: bus bandwidth must be positive")
	}
	if c.MemoryMB <= 0 {
		return fmt.Errorf("arch: memory size must be positive")
	}
	return nil
}

// Base returns the paper's simulated base machine (§3.2) scaled by 1/scale.
// scale=1 is the paper's exact configuration: 400 MHz R4400s, 32 KB 2-way
// split L1 with 32 B lines, 1 MB direct-mapped L2 with 128 B lines,
// 500 ns memory / 750 ns remote latency, 1.2 GB/s bus.
//
// Scaling divides cache and memory sizes but keeps the 4 KB page size, so
// the number of colors shrinks proportionally; data sets are scaled by the
// same factor in package workloads, preserving the working-set-to-cache
// ratios that drive every result in the paper.
func Base(ncpu, scale int) Config {
	if scale < 1 {
		scale = 1
	}
	c := Config{
		Name:    fmt.Sprintf("simos-1/%d", scale),
		NumCPUs: ncpu,

		ClockMHz: 400,

		L1D: CacheGeometry{Size: FloorPow2(max(32<<10/scale, 4<<10)), LineSize: 32, Assoc: 2},
		L1I: CacheGeometry{Size: FloorPow2(max(32<<10/scale, 4<<10)), LineSize: 32, Assoc: 2},
		L2:  CacheGeometry{Size: FloorPow2(max(1<<20/scale, 16<<10)), LineSize: 128, Assoc: 1},

		PageSize: 4 << 10,

		L1HitCycles:     1,
		L2HitCycles:     20,  // ~50 ns external SRAM
		MemCycles:       200, // 500 ns
		RemoteCycles:    300, // 750 ns
		TLBMissCycles:   60,
		PageFaultCycles: 4000,
		BarrierCycles:   200,
		ForkCycles:      400,
		ForkSkewCycles:  45,

		BusBytesPerCycle: 3.0, // 1.2 GB/s at 400 MHz
		BusOverhead:      8,
		MemJitterCycles:  24,

		TLBEntries: 64,

		WriteBufferEntries: 8,

		MaxOutstandingPrefetches: 4,

		MemoryMB: max(512/scale, 8),
	}
	return c
}

// Alpha returns the validation machine of §7 scaled by 1/scale: a 350 MHz
// AlphaServer 8400 with a 4 MB direct-mapped external cache per CPU.
func Alpha(ncpu, scale int) Config {
	c := Base(ncpu, scale)
	c.Name = fmt.Sprintf("alpha-1/%d", scale)
	c.ClockMHz = 350
	c.L2 = CacheGeometry{Size: FloorPow2(max(4<<20/scale, 16<<10)), LineSize: 64, Assoc: 1}
	c.L1D = CacheGeometry{Size: 8 << 10, LineSize: 32, Assoc: 1}
	c.L1I = c.L1D
	c.MemCycles = 180
	c.RemoteCycles = 280
	c.BusBytesPerCycle = 4.5 // the 8400's bus is wider than the base machine's
	return c
}

// WithL2 returns a copy of c with the external-cache geometry replaced
// (used by the Figure 7 associativity and size sweeps).
func (c Config) WithL2(g CacheGeometry) Config {
	c.L2 = g
	return c
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
