package arch

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"
)

func TestCacheGeometryDerived(t *testing.T) {
	g := CacheGeometry{Size: 1 << 20, LineSize: 128, Assoc: 1}
	if got := g.Lines(); got != 8192 {
		t.Errorf("Lines() = %d, want 8192", got)
	}
	if got := g.Sets(); got != 8192 {
		t.Errorf("Sets() = %d, want 8192", got)
	}
	g2 := CacheGeometry{Size: 1 << 20, LineSize: 128, Assoc: 2}
	if got := g2.Sets(); got != 4096 {
		t.Errorf("2-way Sets() = %d, want 4096", got)
	}
}

func TestSetOfWrapsAtCacheSize(t *testing.T) {
	g := CacheGeometry{Size: 64 << 10, LineSize: 64, Assoc: 1}
	// Addresses that differ by exactly the cache size map to the same set.
	for _, a := range []uint64{0, 4096, 65536 - 64} {
		if g.SetOf(a) != g.SetOf(a+uint64(g.Size)) {
			t.Errorf("SetOf(%#x) != SetOf(+size)", a)
		}
	}
	if g.SetOf(0) == g.SetOf(64) {
		t.Error("adjacent lines should occupy distinct sets")
	}
}

func TestTagDisambiguatesConflictingLines(t *testing.T) {
	g := CacheGeometry{Size: 32 << 10, LineSize: 64, Assoc: 1}
	a, b := uint64(0x1000), uint64(0x1000)+uint64(g.Size)
	if g.SetOf(a) != g.SetOf(b) {
		t.Fatal("expected same set")
	}
	if g.TagOf(a) == g.TagOf(b) {
		t.Error("conflicting lines must have distinct tags")
	}
}

func TestColorsMatchPaperExamples(t *testing.T) {
	// §2.1: 1MB cache, 4KB pages: 256 colors direct-mapped, 128 two-way.
	c := Base(1, 1)
	if got := c.Colors(); got != 256 {
		t.Errorf("direct-mapped colors = %d, want 256", got)
	}
	c.L2.Assoc = 2
	if got := c.Colors(); got != 128 {
		t.Errorf("two-way colors = %d, want 128", got)
	}
}

func TestBaseAndAlphaValidate(t *testing.T) {
	for _, scale := range []int{1, 4, 16, 64} {
		for _, ncpu := range []int{1, 2, 4, 8, 16} {
			for _, cfg := range []Config{Base(ncpu, scale), Alpha(ncpu, scale)} {
				if err := cfg.Validate(); err != nil {
					t.Errorf("%s ncpu=%d: %v", cfg.Name, ncpu, err)
				}
			}
		}
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	good := Base(4, 16)
	cases := map[string]func(*Config){
		"zero cpus":      func(c *Config) { c.NumCPUs = 0 },
		"odd page size":  func(c *Config) { c.PageSize = 3000 },
		"bad L2 line":    func(c *Config) { c.L2.LineSize = 96 },
		"tiny L2":        func(c *Config) { c.L2.Size = 2048; c.L2.LineSize = 64 },
		"no bus":         func(c *Config) { c.BusBytesPerCycle = 0 },
		"no memory":      func(c *Config) { c.MemoryMB = 0 },
		"non-pow2 cache": func(c *Config) { c.L1D.Size = 3 << 10; c.L1D.Assoc = 1; c.L1D.LineSize = 32 },
	}
	for name, mutate := range cases {
		c := good
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: Validate accepted a broken config", name)
		}
	}
}

func TestCyclesFromNS(t *testing.T) {
	c := Base(1, 1)
	if got := c.CyclesFromNS(500); got != 200 {
		t.Errorf("500ns at 400MHz = %d cycles, want 200", got)
	}
	if got := c.CyclesFromNS(750); got != 300 {
		t.Errorf("750ns at 400MHz = %d cycles, want 300", got)
	}
}

func TestScalePreservesColorRatio(t *testing.T) {
	// Scaling the machine divides the color count by the same factor, so the
	// data-set-pages : colors ratio is preserved when workloads scale too.
	full := Base(8, 1)
	quarter := Base(8, 4)
	if full.Colors() != 4*quarter.Colors() {
		t.Errorf("colors: full=%d quarter=%d, want 4x", full.Colors(), quarter.Colors())
	}
}

func TestLineAddrProperty(t *testing.T) {
	g := CacheGeometry{Size: 64 << 10, LineSize: 128, Assoc: 2}
	f := func(a uint64) bool {
		la := g.LineAddr(a)
		return la%uint64(g.LineSize) == 0 && la <= a && a-la < uint64(g.LineSize)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSetTagRoundTripProperty(t *testing.T) {
	// (set, tag) uniquely identifies a line address.
	g := CacheGeometry{Size: 32 << 10, LineSize: 64, Assoc: 4}
	rng := rand.New(rand.NewSource(1))
	seen := map[[2]uint64]uint64{}
	for i := 0; i < 10000; i++ {
		a := g.LineAddr(uint64(rng.Int63n(1 << 30)))
		key := [2]uint64{uint64(g.SetOf(a)), g.TagOf(a)}
		if prev, ok := seen[key]; ok && prev != a {
			t.Fatalf("collision: %#x and %#x share (set,tag)=%v", prev, a, key)
		}
		seen[key] = a
	}
}

func TestWithL2DoesNotMutateReceiver(t *testing.T) {
	c := Base(4, 16)
	orig := c.L2
	_ = c.WithL2(CacheGeometry{Size: 256 << 10, LineSize: 64, Assoc: 2})
	if c.L2 != orig {
		t.Error("WithL2 mutated the receiver")
	}
}

func TestConfigJSONRoundTrip(t *testing.T) {
	orig := Base(8, 16)
	var buf bytes.Buffer
	if err := orig.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadConfig(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got != orig {
		t.Errorf("round trip changed config:\n%+v\nvs\n%+v", got, orig)
	}
}

func TestReadConfigRejectsInvalid(t *testing.T) {
	cases := map[string]string{
		"unknown field": `{"Name":"x","Bogus":1}`,
		"empty":         `{}`,
		"bad json":      `{`,
	}
	for name, src := range cases {
		if _, err := ReadConfig(strings.NewReader(src)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestLoadConfigFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.json")
	var buf bytes.Buffer
	if err := Alpha(4, 16).WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	c, err := LoadConfigFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumCPUs != 4 || c.ClockMHz != 350 {
		t.Errorf("loaded %+v", c)
	}
	if _, err := LoadConfigFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
}
