package harness

import (
	"fmt"
	"strings"

	"repro/internal/obs"
	"repro/internal/sim"
)

// runMulti executes one co-scheduled spec, through the scheduler when
// one is configured, auditing every per-process result and the machine
// total when auditing is on.
func (o ExpOptions) runMulti(s Spec) (*sim.MultiResult, error) {
	var mr *sim.MultiResult
	var err error
	if o.Runner != nil {
		mr, err = o.Runner.RunMulti(s)
	} else {
		mr, err = RunMulti(s)
	}
	if err != nil {
		return mr, err
	}
	if o.Audit {
		if err := obs.AuditError(mr.Audit()); err != nil {
			return mr, fmt.Errorf("%s/%s x%d on %d cpus: %w",
				s.Workload, s.Variant, 1+len(s.CoRunners), s.CPUs, err)
		}
	}
	return mr, nil
}

// warmMulti pre-executes co-scheduled specs on the scheduler's pool
// (see warm). A no-op without a scheduler.
func (o ExpOptions) warmMulti(specs []Spec) {
	if o.Runner != nil {
		o.Runner.WarmMulti(specs)
	}
}

// multiprogWays returns the co-scheduling degrees the extension sweeps:
// the paper-motivated 2- and 4-way mixes, one degree in quick mode, or
// the explicit -procs override.
func (o ExpOptions) multiprogWays() []int {
	if o.Procs > 1 {
		return []int{o.Procs}
	}
	if o.Quick {
		return []int{2}
	}
	return []int{2, 4}
}

// multiprogVariants is the policy ladder the multiprogramming extension
// compares: the unmodified-OS first-touch baseline, the two OS policies
// of §2.1, and CDPC.
var multiprogVariants = []Variant{FirstTouch, BinHopping, PageColoring, CDPC}

// ExtMultiprog is the multiprogramming extension: the paper's
// comparison baselines exist because real machines run more than one
// process against one physically indexed external cache (§2, §5
// "memory pressure"), yet every figure simulates a dedicated machine.
// Here n identical instances of a conflict-heavy workload are
// co-scheduled on one machine — drawing frames from the single shared
// allocator, interfering through the shared L2 tags and bus — under
// each page mapping policy, and the whole-machine MCPI is compared.
// First-touch is the policy multiprogramming degrades hardest: frames
// freed by an exited or descheduled co-runner are reused in arbitrary
// colors, so the conflict misses one process's mapping decisions create
// land in another process's time.
func ExtMultiprog(o ExpOptions) (string, error) {
	names := []string{"tomcatv", "swim"}
	if o.Quick {
		names = names[:1]
	}
	const cpus = 8

	spec := func(name string, v Variant, ways int, sched SchedKind) Spec {
		return Spec{
			Workload:  name,
			Scale:     o.Scale,
			CPUs:      cpus,
			Variant:   v,
			CoRunners: make([]CoRunner, ways-1), // zero CoRunner = same workload+variant
			Sched:     sched,
		}
	}

	var specs []Spec
	for _, name := range names {
		for _, ways := range o.multiprogWays() {
			for _, v := range multiprogVariants {
				specs = append(specs, spec(name, v, ways, SchedTimeSlice))
			}
		}
	}
	o.warmMulti(specs)

	var b strings.Builder
	b.WriteString("Extension — CDPC under multiprogramming (time-sliced co-scheduling)\n")
	fmt.Fprintf(&b, "n instances of the same workload share one %d-CPU machine, one frame\n", cpus)
	b.WriteString("allocator and one physically indexed external cache; the scheduler\n")
	b.WriteString("gang-switches the machine between them, flushing TLBs and on-chip\n")
	b.WriteString("caches at each switch. MCPI is memory stall per instruction over the\n")
	b.WriteString("whole machine; per-process MCPI is each instance's own counters.\n\n")

	for _, name := range names {
		for _, ways := range o.multiprogWays() {
			results := map[Variant]*sim.MultiResult{}
			for _, v := range multiprogVariants {
				mr, err := o.runMulti(spec(name, v, ways, SchedTimeSlice))
				if err != nil {
					return "", err
				}
				results[v] = mr
			}
			ft := results[FirstTouch]
			fmt.Fprintf(&b, "%s x%d (%d CPUs, %s):\n", name, ways, cpus, ft.Sched)
			fmt.Fprintf(&b, "  %-14s %12s %10s %12s %12s  %s\n",
				"policy", "wall(M)", "MCPI", "conflicts", "vs f-touch", "per-proc MCPI")
			for _, v := range multiprogVariants {
				mr := results[v]
				var per []string
				for _, r := range mr.PerProcess {
					per = append(per, fmt.Sprintf("%.3f", r.MCPI()))
				}
				fmt.Fprintf(&b, "  %-14s %12.1f %10.3f %12d %12.2f  [%s]\n",
					v,
					float64(mr.Total.WallCycles)/1e6,
					mr.Total.MCPI(),
					mr.Total.Total(func(s *sim.CPUStats) uint64 { return s.ConflictMisses }),
					mr.Total.Speedup(ft.Total),
					strings.Join(per, " "))
			}
			b.WriteString("\n")
		}
	}

	b.WriteString("CDPC keeps its single-process ordering under co-scheduling: hints are\n")
	b.WriteString("per-process and the shared allocator arbitrates color competition, so\n")
	b.WriteString("each instance still gets a conflict-free mapping while first-touch and\n")
	b.WriteString("bin hopping inherit whatever colors the co-runner's faults left free.\n")

	if err := extIsolationMatrix(&b, o, names); err != nil {
		return "", err
	}
	return b.String(), nil
}

// isolationWays returns the co-scheduling degrees the isolation matrix
// sweeps: 2/4/8-way (8-way exercises one process per CPU), one degree
// in quick mode, or the explicit -procs override.
func (o ExpOptions) isolationWays() []int {
	if o.Procs > 1 {
		return []int{o.Procs}
	}
	if o.Quick {
		return []int{2}
	}
	return []int{2, 4, 8}
}

// extIsolationMatrix appends the isolation-domain study to the
// multiprogramming extension: the same co-scheduled mixes run shared
// (one global color space — the collision pathology, worst for plain
// page coloring because every instance computes the identical
// virtual→color mapping) and isolated (per-domain exclusive color
// subsets; cross-domain conflicts provably zero, enforced by audit
// invariant 12), trading per-process cache capacity for freedom from
// co-runner interference.
func extIsolationMatrix(b *strings.Builder, o ExpOptions, names []string) error {
	const cpus = 8
	variants := []Variant{PageColoring, CDPC}

	spec := func(name string, v Variant, ways int, isolate bool) Spec {
		return Spec{
			Workload:  name,
			Scale:     o.Scale,
			CPUs:      cpus,
			Variant:   v,
			CoRunners: make([]CoRunner, ways-1),
			Sched:     SchedTimeSlice,
			Isolate:   isolate,
		}
	}

	var specs []Spec
	for _, name := range names {
		for _, ways := range o.isolationWays() {
			for _, v := range variants {
				specs = append(specs, spec(name, v, ways, false), spec(name, v, ways, true))
			}
		}
	}
	o.warmMulti(specs)

	b.WriteString("\nIsolation domains — color-partitioned co-scheduling\n")
	b.WriteString("Each process gets an exclusive color subset (its isolation domain);\n")
	b.WriteString("every allocation, CDPC hint included, is folded into the owner's\n")
	b.WriteString("partition. Cross-domain conflict evictions (xdom) are impossible by\n")
	b.WriteString("construction — audit invariant 12 checks the count is exactly zero —\n")
	b.WriteString("at the price of an n-times smaller effective cache per process.\n\n")

	xdom := func(mr *sim.MultiResult) uint64 {
		return mr.Total.Total(func(s *sim.CPUStats) uint64 { return s.CrossDomainConflicts })
	}
	for _, name := range names {
		for _, ways := range o.isolationWays() {
			fmt.Fprintf(b, "%s x%d (%d CPUs, timeslice):\n", name, ways, cpus)
			fmt.Fprintf(b, "  %-14s %-9s %12s %10s %12s %8s\n",
				"policy", "mode", "wall(M)", "MCPI", "conflicts", "xdom")
			for _, v := range variants {
				for _, isolate := range []bool{false, true} {
					mr, err := o.runMulti(spec(name, v, ways, isolate))
					if err != nil {
						return err
					}
					mode := "shared"
					if isolate {
						mode = "isolated"
					}
					fmt.Fprintf(b, "  %-14s %-9s %12.1f %10.3f %12d %8d\n",
						v, mode,
						float64(mr.Total.WallCycles)/1e6,
						mr.Total.MCPI(),
						mr.Total.Total(func(s *sim.CPUStats) uint64 { return s.ConflictMisses }),
						xdom(mr))
				}
			}
			b.WriteString("\n")
		}
	}

	b.WriteString("Partitioning removes co-runner interference at its root: identical\n")
	b.WriteString("virtual→color mappings land in disjoint subsets, so no process can\n")
	b.WriteString("evict another's lines — the zero xdom column doubles as a\n")
	b.WriteString("side-channel-freedom statement (no cross-domain cache-set contention\n")
	b.WriteString("for a prime+probe observer). The price is an n-times smaller color\n")
	b.WriteString("space per process: cheap where conflicts were already intra-process\n")
	b.WriteString("(page coloring), ruinous at high degree for CDPC, whose conflict-free\n")
	b.WriteString("mapping needs the colors partitioning takes away.\n")
	return nil
}
