package harness

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/arch"
	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/vm"
	"repro/internal/workloads"
)

// Variant selects the page mapping configuration under test.
type Variant string

// The variants the paper compares.
const (
	// PageColoring is IRIX's native policy (§2.1).
	PageColoring Variant = "page-coloring"
	// BinHopping is Digital UNIX's native policy (§2.1).
	BinHopping Variant = "bin-hopping"
	// BinHoppingUnaligned is bin hopping with data structures neither
	// aligned nor padded (the fourth bar of Figure 9).
	BinHoppingUnaligned Variant = "bin-hopping-unaligned"
	// CDPC installs compiler hints through the madvise-style kernel
	// interface over a page-coloring fallback (the IRIX implementation,
	// §5.3).
	CDPC Variant = "cdpc"
	// CDPCTouch realizes CDPC by touching pages in hint order on top of
	// bin hopping, with all faults serialized at startup (the Digital
	// UNIX implementation, §5.3).
	CDPCTouch Variant = "cdpc-touch"
	// ColoringTouch realizes page coloring the same way: pages touched in
	// ascending virtual order over bin hopping (used for Figure 9, where
	// both non-native policies are emulated this way on the AlphaServer).
	ColoringTouch Variant = "coloring-touch"
	// DynamicRecoloring is the run-time alternative of §2.1/§2.2: page
	// coloring plus miss-counter conflict detection and page moves, with
	// the multiprocessor costs the paper predicts (copy, TLB shootdowns,
	// invalidations). An extension study — the paper notes this had not
	// been evaluated on multiprocessors.
	DynamicRecoloring Variant = "dynamic-recoloring"
	// PaddedColoring is the §2.2 compiler padding baseline over page
	// coloring: array starts staggered across the external cache in the
	// virtual address space, which coloring faithfully transfers to the
	// physical cache.
	PaddedColoring Variant = "padded-coloring"
	// PaddedBinHopping is the same padding over bin hopping, where the
	// paper predicts page-sized pads are ineffective (§2.2).
	PaddedBinHopping Variant = "padded-bin-hopping"
	// FirstTouch is the unmodified-OS baseline (§2): no color preference
	// at all, each fault takes whatever frame heads the free list. Under
	// multiprogramming this is the policy co-runners degrade hardest,
	// because exited processes' frames are reused in arbitrary colors.
	FirstTouch Variant = "first-touch"
)

// Variants lists all supported variants.
func Variants() []Variant {
	return []Variant{PageColoring, BinHopping, BinHoppingUnaligned, CDPC, CDPCTouch, ColoringTouch, DynamicRecoloring, PaddedColoring, PaddedBinHopping, FirstTouch}
}

// SchedKind selects the space-sharing discipline for multiprocess runs.
type SchedKind string

// The scheduling disciplines (see sim.SchedPolicy).
const (
	// SchedTimeSlice gang-schedules processes round-robin on the whole
	// machine, flushing the virtually indexed per-CPU state at each
	// switch. The default.
	SchedTimeSlice SchedKind = "timeslice"
	// SchedPartition gives each process an equal contiguous block of
	// CPUs for its whole lifetime.
	SchedPartition SchedKind = "partition"
)

// simSched maps a SchedKind to the simulator's scheduler options.
func simSched(k SchedKind, quantum uint64) (sim.SchedOptions, error) {
	switch k {
	case "", SchedTimeSlice:
		return sim.SchedOptions{Policy: sim.SchedTimeSlice, Quantum: quantum}, nil
	case SchedPartition:
		return sim.SchedOptions{Policy: sim.SchedPartition, Quantum: quantum}, nil
	default:
		return sim.SchedOptions{}, fmt.Errorf("harness: unknown scheduling discipline %q", k)
	}
}

// CanCoSchedule reports whether a variant can run under the
// space-sharing scheduler. Variants built on machine-wide mechanisms —
// a global touch order serializing first faults, or the dynamic
// recolorer watching one address space — have no per-process meaning
// and are rejected by RunMulti.
func CanCoSchedule(v Variant) bool {
	switch v {
	case CDPCTouch, ColoringTouch, DynamicRecoloring:
		return false
	}
	return true
}

// CoRunner describes one additional process co-scheduled with a Spec's
// primary workload. Zero fields inherit from the primary spec, so
// CoRunner{} co-runs a second instance of the same workload and
// variant — except Domain, which is never inherited: an isolation
// domain is an identity, not a configuration default.
type CoRunner struct {
	Workload string
	Variant  Variant
	// Domain is the co-runner's isolation domain label under
	// Spec.Isolate; equal labels > 0 share a partition, 0 means a domain
	// of the co-runner's own.
	Domain int
}

// TraceWorkload is an external reference trace packaged as a runnable
// workload: a decoded binary trace plus a label for results. Build one
// with NewTraceWorkload so the content hash — the scheduler's memo key
// and the server's trace identifier — is computed once up front.
type TraceWorkload struct {
	// Name labels the trace in results (typically the source file name
	// or the server's content address).
	Name string
	// File is the decoded binary trace (see internal/trace).
	File *trace.File

	// hash caches File's content address.
	hash string
}

// NewTraceWorkload wraps a decoded trace under a result label.
func NewTraceWorkload(name string, f *trace.File) *TraceWorkload {
	return &TraceWorkload{Name: name, File: f, hash: f.Hash()}
}

// contentHash returns the trace's content address, computing it on the
// fly for zero-value construction (NewTraceWorkload precomputes).
func (t *TraceWorkload) contentHash() string {
	if t.hash != "" {
		return t.hash
	}
	return t.File.Hash()
}

// CanTraceVariant reports whether a variant works on an external
// trace. A trace fixes the virtual address of every reference, so only
// variants that steer physical placement at fault time qualify; the
// ones needing the compiler — layout transforms (padding, unaligned),
// hint-ordered touching, virtual-order touching — cannot apply. The
// CDPC variant qualifies through the online access-pattern summarizer
// (trace.PreferredColors), which infers the per-page color preferences
// the compiler summary would have carried.
func CanTraceVariant(v Variant) bool {
	switch v {
	case "", PageColoring, BinHopping, FirstTouch, CDPC, DynamicRecoloring:
		return true
	}
	return false
}

// MachineKind selects a machine preset.
type MachineKind string

// Machine presets.
const (
	// BaseMachine is the SimOS configuration of §3.2.
	BaseMachine MachineKind = "base"
	// AlphaMachine is the AlphaServer 8400 configuration of §7.
	AlphaMachine MachineKind = "alpha"
)

// Spec describes one simulation run.
type Spec struct {
	Workload string
	Scale    int // machine+data scale divisor; 0 → workloads.DefaultScale
	CPUs     int
	Machine  MachineKind // "" → base
	Variant  Variant     // "" → page coloring
	Prefetch bool        // compiler-inserted prefetching (§6.2)

	// Trace, when non-nil, runs an external reference trace instead of
	// a bundled IR workload; Workload is then only a fallback label and
	// no compiler pipeline runs. CPUs defaults to the trace's own CPU
	// count and must be at least that wide. Only placement-time variants
	// apply (CanTraceVariant); sampling, co-runners and prefetching are
	// rejected. The scheduler memoizes trace-backed specs by the trace's
	// content hash.
	Trace *TraceWorkload

	// L2Override replaces the external-cache geometry (Figure 7 sweeps).
	L2Override *arch.CacheGeometry

	// Topology selects a named cache topology (arch.TopologyNames) to
	// install over the resolved machine: "" or "default" keeps the
	// classic single shared-level model, other names reshape the external
	// hierarchy (clustered mid-level caches, sliced LLCs). Applied after
	// L2Override, so geometry sweeps compose — the topology builders
	// derive their level sizes from the overridden cfg.L2. Unknown names
	// are rejected by every Run entry point.
	Topology string

	// ConfigOverride replaces the whole machine configuration (custom
	// machines loaded from JSON); Machine/Scale/CPUs are then ignored
	// except that NumCPUs is taken from the override.
	ConfigOverride *arch.Config

	// CDPCOptions selects algorithm ablations (bench_ablation).
	CDPCOptions core.Options
	// DisableClassification turns off conflict/capacity splitting.
	DisableClassification bool

	// Obs, when non-nil, collects miss attribution and the structured
	// event stream during the run (see internal/obs). Observation never
	// changes the Result. The scheduler's memo cache ignores this field
	// and runs instrumented specs directly, so a memoized result can
	// never stand in for a run that was supposed to fill a collector.
	Obs *obs.Collector

	// Sampled requests phase-sampled execution: representative windows
	// per nest with functional warm-up, clustered by the compiler's
	// access-pattern signatures and extrapolated to full-run statistics
	// (sim.SamplingOptions). Incompatible spec shapes — an observability
	// collector, co-runners, or dynamic recoloring — are normalized back
	// to full fidelity by withDefaults; callers that must reject instead
	// (the server's explicit "sampled" requests) check CanSample first.
	Sampled bool

	// CoRunners lists additional processes co-scheduled with the primary
	// workload. Non-empty CoRunners routes execution through RunMulti's
	// multiprogramming methodology (no warm-up discard, phases once,
	// unweighted); Run and RunCtx reject such specs.
	CoRunners []CoRunner
	// Sched selects the space-sharing discipline for multiprocess runs
	// ("" → time-slicing). Ignored without co-runners.
	Sched SchedKind
	// Quantum overrides the time-slice length in cycles; 0 uses
	// sim.DefaultQuantum.
	Quantum uint64

	// Isolate runs the process mix under color-partitioned isolation
	// domains: the frame allocator grants each domain an exclusive color
	// subset and clamps every allocation (policy preference, CDPC hint,
	// pressure fallback) to the owner's partition, making cross-domain
	// conflict misses impossible (audit invariant 12). Ignored without
	// co-runners; unpartitioned runs are byte-identical with this off.
	Isolate bool
	// Domain is the primary process's isolation domain label under
	// Isolate (see CoRunner.Domain); 0 means a domain of its own.
	Domain int
}

// processSpecs expands a spec into one derived Spec per process: the
// primary first, then each co-runner with unset fields inherited from
// the primary. All processes share the machine configuration and scale.
func (s Spec) processSpecs() []Spec {
	s = s.withDefaults()
	out := make([]Spec, 0, 1+len(s.CoRunners))
	primary := s
	primary.CoRunners = nil
	primary.Obs = nil
	out = append(out, primary)
	for _, cr := range s.CoRunners {
		ps := primary
		if cr.Workload != "" {
			ps.Workload = cr.Workload
		}
		if cr.Variant != "" {
			ps.Variant = cr.Variant
		}
		// Domain is never inherited: a zero co-runner domain means "own
		// domain", not "the primary's domain".
		ps.Domain = cr.Domain
		out = append(out, ps)
	}
	return out
}

func (s Spec) withDefaults() Spec {
	if s.Scale == 0 {
		s.Scale = workloads.DefaultScale
	}
	if s.CPUs == 0 {
		if s.Trace != nil {
			s.CPUs = s.Trace.File.NumCPUs()
		} else {
			s.CPUs = 1
		}
	}
	if s.Machine == "" {
		s.Machine = BaseMachine
	}
	if s.Variant == "" {
		s.Variant = PageColoring
	}
	if s.Sampled && !CanSample(s) {
		s.Sampled = false
	}
	return s
}

// CanSample reports whether a spec can run phase-sampled. Observed
// runs need the full reference trace for the event stream, co-runners
// share a timeline no window can be cut out of, dynamic recoloring
// reacts to per-page miss counts a window cannot reproduce, and an
// external trace has no phase structure to cluster windows from.
func CanSample(s Spec) bool {
	return s.Obs == nil && len(s.CoRunners) == 0 && s.Variant != DynamicRecoloring && s.Trace == nil
}

// Config resolves the machine configuration for a spec. An unknown
// Topology name is ignored here (Config cannot error); the Run entry
// points reject it via validateSpec first.
func (s Spec) Config() arch.Config {
	s = s.withDefaults()
	var cfg arch.Config
	if s.ConfigOverride != nil {
		cfg = *s.ConfigOverride
	} else {
		if s.Machine == AlphaMachine {
			cfg = arch.Alpha(s.CPUs, s.Scale)
		} else {
			cfg = arch.Base(s.CPUs, s.Scale)
		}
		if s.L2Override != nil {
			cfg = cfg.WithL2(*s.L2Override)
		}
	}
	if s.Topology != "" && s.Topology != "default" {
		if c, err := arch.ApplyTopology(cfg, s.Topology); err == nil {
			cfg = c
		}
	}
	return cfg
}

// validateSpec rejects spec fields whose resolution Config would have
// to swallow silently — an unknown topology name, or a trace-backed
// spec combined with machinery that needs a compiled program. It
// expects withDefaults to have been applied.
func validateSpec(s Spec) error {
	if !arch.KnownTopology(s.Topology) {
		return fmt.Errorf("harness: unknown topology %q (have %s)",
			s.Topology, strings.Join(arch.TopologyNames(), ", "))
	}
	if s.Trace != nil {
		if len(s.CoRunners) > 0 {
			return fmt.Errorf("harness: trace-backed specs cannot have co-runners")
		}
		if s.Prefetch {
			return fmt.Errorf("harness: prefetch insertion needs a compiled program; traces record their reference stream")
		}
		if !CanTraceVariant(s.Variant) {
			return fmt.Errorf("harness: variant %q needs compiler layout or touch-order output and cannot run an external trace", s.Variant)
		}
		if n := s.Trace.File.NumCPUs(); n > s.CPUs {
			return fmt.Errorf("harness: trace %q carries %d CPU streams but the spec machine has %d CPUs", s.Trace.Name, n, s.CPUs)
		}
	}
	return nil
}

// Prepare builds the workload program and runs the compiler pipeline for
// a spec, returning the program, its summary, and the machine config.
func Prepare(s Spec) (*ir.Program, *compiler.Summary, arch.Config, error) {
	s = s.withDefaults()
	if err := validateSpec(s); err != nil {
		return nil, nil, arch.Config{}, err
	}
	meta, err := workloads.ByName(s.Workload)
	if err != nil {
		return nil, nil, arch.Config{}, err
	}
	prog := meta.Build(s.Scale)
	cfg := s.Config()

	layout := layoutFor(s.Variant, cfg)
	if err := compiler.Layout(prog, layout); err != nil {
		return nil, nil, arch.Config{}, err
	}
	if s.Prefetch {
		compiler.InsertPrefetches(prog, compiler.DefaultPrefetch())
	}
	return prog, compiler.Summarize(prog), cfg, nil
}

// Run executes one spec end to end.
func Run(s Spec) (*sim.Result, error) {
	return RunCtx(context.Background(), s)
}

// RunCtx is Run with cancellation: ctx is polled at nest boundaries
// inside the simulator, so a canceled or expired context aborts the
// simulation at the next synchronization point with ctx's error. The
// cdpcd server threads every request's context through here.
func RunCtx(ctx context.Context, s Spec) (*sim.Result, error) {
	s = s.withDefaults()
	if s.Trace != nil {
		return runTraceCtx(ctx, s)
	}
	prog, sum, cfg, err := Prepare(s)
	if err != nil {
		return nil, err
	}
	return runPrepared(ctx, prog, sum, cfg, s)
}

// runTraceCtx executes a trace-backed spec: no compiler pipeline runs;
// the variant resolves to its placement policy directly, and the CDPC
// variant substitutes the online access-pattern summarizer
// (trace.PreferredColors) for the compiler's per-page color summary —
// CDPC without the compiler.
func runTraceCtx(ctx context.Context, s Spec) (*sim.Result, error) {
	if err := validateSpec(s); err != nil {
		return nil, err
	}
	cfg := s.Config()
	opts := sim.Options{Config: cfg, DisableClassification: s.DisableClassification, Obs: s.Obs}
	if ctx.Done() != nil {
		opts.Cancel = ctx.Err
	}
	colors := cfg.Colors()
	var hints map[uint64]int
	switch s.Variant {
	case PageColoring:
		opts.Policy = vm.PageColoring{Colors: colors}
	case BinHopping:
		opts.Policy = &vm.BinHopping{Colors: colors}
	case FirstTouch:
		// The allocator does not exist yet; sim.New binds it.
		opts.Policy = &vm.FirstTouch{}
	case CDPC:
		opts.Policy = vm.PageColoring{Colors: colors} // fallback for unhinted pages
		hints = trace.PreferredColors(s.Trace.File, cfg.PageSize, colors, 0)
	case DynamicRecoloring:
		opts.Policy = vm.PageColoring{Colors: colors}
		policy := vm.DefaultRecolorPolicy()
		opts.Recolor = &policy
	default:
		return nil, fmt.Errorf("harness: unknown variant %q", s.Variant)
	}
	m, err := sim.New(opts)
	if err != nil {
		return nil, err
	}
	res, err := m.RunSource(sim.NewTraceSource(s.Trace.Name, s.Trace.File, hints))
	if err != nil {
		return nil, err
	}
	res.Policy = string(s.Variant)
	return res, nil
}

// RunProgram executes a custom (e.g. text-format) program under the
// spec's machine and variant; the Workload field is ignored. The program
// goes through the same compiler pipeline as the bundled workloads.
func RunProgram(prog *ir.Program, s Spec) (*sim.Result, error) {
	return RunProgramCtx(context.Background(), prog, s)
}

// RunProgramCtx is RunProgram with cancellation (see RunCtx).
func RunProgramCtx(ctx context.Context, prog *ir.Program, s Spec) (*sim.Result, error) {
	s = s.withDefaults()
	if err := validateSpec(s); err != nil {
		return nil, err
	}
	cfg := s.Config()
	layout := layoutFor(s.Variant, cfg)
	if err := compiler.Layout(prog, layout); err != nil {
		return nil, err
	}
	if s.Prefetch {
		compiler.InsertPrefetches(prog, compiler.DefaultPrefetch())
	}
	return runPrepared(ctx, prog, compiler.Summarize(prog), cfg, s)
}

// variantKnobs is the variant-specific slice of the simulator options:
// the placement policy plus the per-process hint/touch/recolor inputs.
type variantKnobs struct {
	Policy     vm.Policy
	Hints      map[uint64]int
	TouchOrder []uint64
	Recolor    *vm.RecolorPolicy
}

// variantOptions maps a spec's variant to the simulator knobs it needs.
// Shared by the single-process path (which installs them machine-wide)
// and RunMulti (which installs policy and hints per process).
func variantOptions(prog *ir.Program, sum *compiler.Summary, cfg arch.Config, s Spec) (variantKnobs, error) {
	var k variantKnobs
	colors := cfg.Colors()

	needHints := s.Variant == CDPC || s.Variant == CDPCTouch
	var hints *core.Hints
	if needHints {
		var err error
		hints, err = core.ComputeHintsOpt(prog, sum, core.Params{
			NumCPUs:   cfg.NumCPUs,
			NumColors: colors,
			PageSize:  cfg.PageSize,
		}, s.CDPCOptions)
		if err != nil {
			return k, err
		}
	}

	switch s.Variant {
	case PageColoring:
		k.Policy = vm.PageColoring{Colors: colors}
	case BinHopping, BinHoppingUnaligned:
		k.Policy = &vm.BinHopping{Colors: colors}
	case CDPC:
		k.Policy = vm.PageColoring{Colors: colors} // fallback for unhinted pages
		k.Hints = hints.Colors
	case CDPCTouch:
		k.Policy = &vm.BinHopping{Colors: colors}
		k.TouchOrder = hints.Order
	case ColoringTouch:
		k.Policy = &vm.BinHopping{Colors: colors}
		k.TouchOrder = ascendingDataPages(prog, cfg.PageSize)
	case DynamicRecoloring:
		k.Policy = vm.PageColoring{Colors: colors}
		policy := vm.DefaultRecolorPolicy()
		k.Recolor = &policy
	case PaddedColoring:
		k.Policy = vm.PageColoring{Colors: colors}
	case PaddedBinHopping:
		k.Policy = &vm.BinHopping{Colors: colors}
	case FirstTouch:
		// The allocator does not exist yet; sim.New binds it.
		k.Policy = &vm.FirstTouch{}
	default:
		return k, fmt.Errorf("harness: unknown variant %q", s.Variant)
	}
	return k, nil
}

// runPrepared maps the variant to simulator options and runs.
func runPrepared(ctx context.Context, prog *ir.Program, sum *compiler.Summary, cfg arch.Config, s Spec) (*sim.Result, error) {
	if len(s.CoRunners) > 0 {
		return nil, fmt.Errorf("harness: spec has co-runners; use RunMulti")
	}
	opts := sim.Options{Config: cfg, DisableClassification: s.DisableClassification, Obs: s.Obs}
	if s.Sampled {
		opts.Sampling = sim.SamplingOptions{Enabled: true, Clusters: samplingClusters(prog)}
	}
	if ctx.Done() != nil {
		// Only contexts that can actually be canceled pay for the
		// nest-boundary poll; Background keeps the serial path untouched.
		opts.Cancel = ctx.Err
	}
	k, err := variantOptions(prog, sum, cfg, s)
	if err != nil {
		return nil, err
	}
	opts.Policy, opts.Hints, opts.TouchOrder, opts.Recolor = k.Policy, k.Hints, k.TouchOrder, k.Recolor

	m, err := sim.New(opts)
	if err != nil {
		return nil, err
	}
	res, err := m.Run(prog)
	if err != nil {
		return nil, err
	}
	res.Policy = string(s.Variant)
	if s.Prefetch {
		res.Policy += "+pf"
	}
	return res, nil
}

// RunMulti executes a spec and its co-runners as one multiprogrammed
// machine under the spec's space-sharing discipline.
func RunMulti(s Spec) (*sim.MultiResult, error) {
	return RunMultiCtx(context.Background(), s)
}

// RunMultiCtx is RunMulti with cancellation (see RunCtx). Every process
// is prepared through the regular compiler pipeline; placement policy
// and CDPC hints are installed per process, and all processes draw
// frames from the machine's single shared allocator. Variants that need
// machine-wide mechanisms (touch ordering, dynamic recoloring) cannot
// be co-scheduled and are rejected.
func RunMultiCtx(ctx context.Context, s Spec) (*sim.MultiResult, error) {
	s = s.withDefaults()
	if s.Trace != nil {
		return nil, fmt.Errorf("harness: trace-backed specs are single-process; use Run")
	}
	if err := validateSpec(s); err != nil {
		return nil, err
	}
	sched, err := simSched(s.Sched, s.Quantum)
	if err != nil {
		return nil, err
	}
	list := s.processSpecs()
	procs := make([]sim.ProcessOptions, len(list))
	for i, ps := range list {
		if !CanCoSchedule(ps.Variant) {
			return nil, fmt.Errorf("harness: variant %q needs machine-wide state and cannot be co-scheduled", ps.Variant)
		}
		prog, sum, cfg, err := Prepare(ps)
		if err != nil {
			return nil, err
		}
		k, err := variantOptions(prog, sum, cfg, ps)
		if err != nil {
			return nil, err
		}
		procs[i] = sim.ProcessOptions{Prog: prog, Policy: k.Policy, Hints: k.Hints, Domain: ps.Domain}
	}
	opts := sim.Options{Config: s.Config(), DisableClassification: s.DisableClassification, Obs: s.Obs, Isolate: s.Isolate}
	if ctx.Done() != nil {
		opts.Cancel = ctx.Err
	}
	m, err := sim.New(opts)
	if err != nil {
		return nil, err
	}
	mr, err := m.RunProcesses(procs, sched)
	if err != nil {
		return nil, err
	}
	// Label results with the variant names, as the single-process path
	// does (PolicyName would collapse CDPC into its fallback policy).
	variants := make([]string, len(list))
	for i, ps := range list {
		variants[i] = string(ps.Variant)
		if ps.Prefetch {
			variants[i] += "+pf"
		}
		mr.PerProcess[i].Policy = variants[i]
	}
	mr.Total.Policy = strings.Join(variants, "+")
	return mr, nil
}

// samplingClusters converts the compiler's access-pattern phase
// clustering into the simulator's representation. Layout has already
// run on prog (Prepare), so signatures key on final virtual placement.
func samplingClusters(prog *ir.Program) []sim.PhaseCluster {
	cc := compiler.ClusterPhases(prog)
	out := make([]sim.PhaseCluster, len(cc))
	for i, c := range cc {
		out[i] = sim.PhaseCluster{Rep: c.Rep, Members: c.Members}
	}
	return out
}

// ascendingDataPages lists every data page in virtual-address order: the
// touch order that reproduces page coloring on a bin-hopping kernel.
func ascendingDataPages(prog *ir.Program, pageSize int) []uint64 {
	var vpns []uint64
	ps := uint64(pageSize)
	for _, a := range prog.Arrays {
		for vpn := a.Base / ps; vpn*ps < a.EndAddr(); vpn++ {
			if len(vpns) > 0 && vpns[len(vpns)-1] == vpn {
				continue // arrays sharing a boundary page
			}
			vpns = append(vpns, vpn)
		}
	}
	return vpns
}

// FastRun executes a spec on the cache-counting-only fast simulator
// (SimOS's high-speed mode, §3.2): miss counts without timing.
func FastRun(s Spec) (*sim.FastResult, error) {
	s = s.withDefaults()
	prog, sum, cfg, err := Prepare(s)
	if err != nil {
		return nil, err
	}
	opts := sim.Options{Config: cfg}
	colors := cfg.Colors()
	switch s.Variant {
	case BinHopping, BinHoppingUnaligned:
		opts.Policy = &vm.BinHopping{Colors: colors}
	case CDPC:
		h, err := core.ComputeHintsOpt(prog, sum, core.Params{NumCPUs: cfg.NumCPUs, NumColors: colors, PageSize: cfg.PageSize}, s.CDPCOptions)
		if err != nil {
			return nil, err
		}
		opts.Policy = vm.PageColoring{Colors: colors}
		opts.Hints = h.Colors
	default:
		opts.Policy = vm.PageColoring{Colors: colors}
	}
	return sim.FastRun(prog, opts)
}

// Hints computes the CDPC hints for a spec without running the simulator
// (the access-map tool and algorithm examples use this).
func Hints(s Spec) (*core.Hints, *ir.Program, error) {
	s = s.withDefaults()
	prog, sum, cfg, err := Prepare(s)
	if err != nil {
		return nil, nil, err
	}
	h, err := core.ComputeHintsOpt(prog, sum, core.Params{
		NumCPUs:   cfg.NumCPUs,
		NumColors: cfg.Colors(),
		PageSize:  cfg.PageSize,
	}, s.CDPCOptions)
	if err != nil {
		return nil, nil, err
	}
	return h, prog, nil
}
