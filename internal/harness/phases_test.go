package harness

import (
	"math"
	"strings"
	"testing"
)

func TestExtPhasesReportsEveryPhase(t *testing.T) {
	out, err := ExtPhases(ExpOptions{Quick: true, Scale: 64})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"representative-execution-window validation",
		"mean inst (M)", "inst stddev%", "miss stddev%",
		"tomcatv", "turb3d", // the quick workloads
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
	// turb3d has four phases; each must appear as its own row.
	if got := strings.Count(out, "turb3d"); got < 2 {
		t.Errorf("turb3d appears %d times; expected one row per phase", got)
	}
}

func TestExtPhasesDeterministic(t *testing.T) {
	o := ExpOptions{Quick: true, Scale: 64}
	a, err := ExtPhases(o)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ExtPhases(o)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("ExtPhases output varies between identical runs")
	}
}

func TestMeanCV(t *testing.T) {
	cases := []struct {
		name     string
		xs       []float64
		mean, cv float64
	}{
		{"empty", nil, 0, 0},
		{"constant", []float64{5, 5, 5, 5}, 5, 0},
		{"zero mean", []float64{1, -1}, 0, 0},
		// mean 3, population stddev sqrt(2/..): xs={1,5}: mean 3,
		// stddev 2, cv 2/3.
		{"spread", []float64{1, 5}, 3, 2.0 / 3.0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mean, cv := meanCV(tc.xs)
			if math.Abs(mean-tc.mean) > 1e-12 || math.Abs(cv-tc.cv) > 1e-12 {
				t.Errorf("meanCV(%v) = (%g, %g), want (%g, %g)", tc.xs, mean, cv, tc.mean, tc.cv)
			}
		})
	}
}
