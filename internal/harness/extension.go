package harness

import (
	"fmt"
	"strings"

	"repro/internal/sim"
)

// ExtDynamic is the extension study the paper calls out as open: "to
// our knowledge, the performance of dynamic policies for multiprocessors
// has not been studied" (§2.1). It compares page coloring, dynamic
// recoloring on top of page coloring, and CDPC on the conflict-heavy
// workloads, reporting the recoloring counts and overheads alongside the
// end-to-end times.
func ExtDynamic(o ExpOptions) (string, error) {
	var b strings.Builder
	b.WriteString("Extension — dynamic page recoloring vs CDPC (base machine)\n")
	b.WriteString("The dynamic policy detects conflicts reactively (per-page miss counters)\n")
	b.WriteString("and moves pages at run time, paying copy + TLB-shootdown + invalidation\n")
	b.WriteString("costs; CDPC places pages correctly before the first fault.\n\n")

	names := []string{"tomcatv", "swim", "hydro2d"}
	if o.Quick {
		names = names[:1]
	}
	cpus := []int{4, 8, 16}
	if o.Quick {
		cpus = []int{8}
	}

	var specs []Spec
	for _, name := range names {
		for _, p := range cpus {
			specs = append(specs,
				Spec{Workload: name, Scale: o.Scale, CPUs: p, Variant: PageColoring},
				Spec{Workload: name, Scale: o.Scale, CPUs: p, Variant: DynamicRecoloring},
				Spec{Workload: name, Scale: o.Scale, CPUs: p, Variant: CDPC})
		}
	}
	o.warm(specs)

	type row struct {
		workload                string
		p                       int
		base, dyn, cdpc         *sim.Result
		recolorings, dynKernelM float64
	}
	var rows []row
	for _, name := range names {
		for _, p := range cpus {
			base, err := o.run(Spec{Workload: name, Scale: o.Scale, CPUs: p, Variant: PageColoring})
			if err != nil {
				return "", err
			}
			dyn, err := o.run(Spec{Workload: name, Scale: o.Scale, CPUs: p, Variant: DynamicRecoloring})
			if err != nil {
				return "", err
			}
			cdpc, err := o.run(Spec{Workload: name, Scale: o.Scale, CPUs: p, Variant: CDPC})
			if err != nil {
				return "", err
			}
			rows = append(rows, row{
				workload:    name,
				p:           p,
				base:        base,
				dyn:         dyn,
				cdpc:        cdpc,
				recolorings: float64(dyn.Total(func(s *sim.CPUStats) uint64 { return s.Recolorings })),
				dynKernelM:  float64(dyn.Total(func(s *sim.CPUStats) uint64 { return s.KernelCycles })) / 1e6,
			})
		}
	}

	fmt.Fprintf(&b, "%-8s %-4s %12s %12s %12s %10s %10s %9s\n",
		"workload", "cpus", "coloring(M)", "dynamic(M)", "cdpc(M)", "dyn-speedup", "cdpc-speedup", "recolors*")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s %-4d %12.1f %12.1f %12.1f %10.2f %10.2f %9.0f\n",
			r.workload, r.p,
			float64(r.base.WallCycles)/1e6,
			float64(r.dyn.WallCycles)/1e6,
			float64(r.cdpc.WallCycles)/1e6,
			r.dyn.Speedup(r.base),
			r.cdpc.Speedup(r.base),
			r.recolorings)
	}
	b.WriteString("\n*recolors is occurrence-weighted like all steady-state counters.\n")
	b.WriteString("The dynamic policy recovers part of CDPC's benefit where conflicts are\n")
	b.WriteString("detectable and fixable, but converges reactively and pays per-move costs;\n")
	b.WriteString("CDPC's compile-time knowledge gets the mapping right before the first miss.\n")
	return b.String(), nil
}

// ExtPadding reproduces the §2.2 padding argument: compiler padding
// staggers array starts across the external cache in the VIRTUAL address
// space, so it eliminates conflicts under page coloring (which preserves
// virtual layout in color space) but is erased by bin hopping, whose
// fault-order coloring makes "pads that are larger than a page size
// ineffective".
func ExtPadding(o ExpOptions) (string, error) {
	names := []string{"tomcatv", "swim"}
	if o.Quick {
		names = names[:1]
	}
	cpus := []int{8, 16}
	if o.Quick {
		cpus = cpus[:1]
	}

	var specs []Spec
	for _, name := range names {
		for _, p := range cpus {
			for _, v := range []Variant{PageColoring, PaddedColoring, BinHopping, PaddedBinHopping, CDPC} {
				specs = append(specs, Spec{Workload: name, Scale: o.Scale, CPUs: p, Variant: v})
			}
		}
	}
	o.warm(specs)

	var b strings.Builder
	b.WriteString("Extension — the §2.2 padding baseline vs the OS page mapping policy\n\n")
	t := fmt.Sprintf("%-8s %-4s %12s %12s %12s %12s %12s %10s %10s\n",
		"workload", "cpus", "coloring(M)", "+padding(M)", "binhop(M)", "+padding(M)", "cdpc(M)", "pad/colr", "pad/binhop")
	b.WriteString(t)
	for _, name := range names {
		for _, p := range cpus {
			results := map[Variant]*sim.Result{}
			for _, v := range []Variant{PageColoring, PaddedColoring, BinHopping, PaddedBinHopping, CDPC} {
				r, err := o.run(Spec{Workload: name, Scale: o.Scale, CPUs: p, Variant: v})
				if err != nil {
					return "", err
				}
				results[v] = r
			}
			mc := func(v Variant) float64 { return float64(results[v].WallCycles) / 1e6 }
			fmt.Fprintf(&b, "%-8s %-4d %12.1f %12.1f %12.1f %12.1f %12.1f %10.2f %10.2f\n",
				name, p,
				mc(PageColoring), mc(PaddedColoring), mc(BinHopping), mc(PaddedBinHopping), mc(CDPC),
				results[PaddedColoring].Speedup(results[PageColoring]),
				results[PaddedBinHopping].Speedup(results[BinHopping]))
		}
	}
	b.WriteString("\npadding speeds up page coloring (the virtual staggering survives the\n")
	b.WriteString("mapping). Under bin hopping the DESIGNED effect is erased — page-sized\n")
	b.WriteString("pads cannot steer fault-order coloring — leaving only an uncontrolled\n")
	b.WriteString("perturbation of the fault interleaving, which can swing either way (the\n")
	b.WriteString("§2.1 unpredictability of racing faults). Either way, padding cannot\n")
	b.WriteString("replace a mapping-aware technique like CDPC (§2.2).\n")
	return b.String(), nil
}

// ExtTopology is the cache-topology extension study: the same placement
// policies on reshaped external hierarchies. The paper's analysis
// assumes one shared physically indexed level; the declarative topology
// model re-runs the comparison on a clustered three-level hierarchy and
// on an address-hashed sliced LLC, where the effective color space is
// the slice hash composed with within-slice set indexing. CDPC computes
// its hints from cfg.Colors(), so the hint space follows the topology
// automatically — the study measures whether its lead over the OS
// policies survives the reshaping.
func ExtTopology(o ExpOptions) (string, error) {
	names := []string{"tomcatv", "swim", "hydro2d"}
	if o.Quick {
		names = names[:1]
	}
	cpus := []int{4, 8}
	if o.Quick {
		cpus = []int{8}
	}
	topos := []string{"default", "clustered-l3", "sliced-llc4"}
	variants := []Variant{PageColoring, BinHopping, CDPC}

	var specs []Spec
	for _, name := range names {
		for _, p := range cpus {
			for _, topo := range topos {
				for _, v := range variants {
					specs = append(specs, Spec{Workload: name, Scale: o.Scale, CPUs: p, Variant: v, Topology: topo})
				}
			}
		}
	}
	o.warm(specs)

	var b strings.Builder
	b.WriteString("Extension — page mapping policies across cache topologies\n")
	b.WriteString("default: one shared external level (the paper's machine model).\n")
	b.WriteString("clustered-l3: private L2 per CPU under a 4-CPU-clustered inclusive L3.\n")
	b.WriteString("sliced-llc4: one shared LLC in 4 slices selected by an XOR hash of\n")
	b.WriteString("physical address bits; colors become (slice, within-slice set region).\n\n")
	fmt.Fprintf(&b, "%-8s %-4s %-13s %12s %12s %12s %10s\n",
		"workload", "cpus", "topology", "coloring(M)", "binhop(M)", "cdpc(M)", "cdpc/colr")
	var sliced *sim.Result
	for _, name := range names {
		for _, p := range cpus {
			for _, topo := range topos {
				results := map[Variant]*sim.Result{}
				for _, v := range variants {
					r, err := o.run(Spec{Workload: name, Scale: o.Scale, CPUs: p, Variant: v, Topology: topo})
					if err != nil {
						return "", err
					}
					results[v] = r
				}
				if topo == "sliced-llc4" && sliced == nil {
					sliced = results[CDPC]
				}
				mc := func(v Variant) float64 { return float64(results[v].WallCycles) / 1e6 }
				fmt.Fprintf(&b, "%-8s %-4d %-13s %12.1f %12.1f %12.1f %10.2f\n",
					name, p, topo,
					mc(PageColoring), mc(BinHopping), mc(CDPC),
					results[CDPC].Speedup(results[PageColoring]))
			}
		}
	}
	if sliced != nil && len(sliced.SliceMisses) > 0 {
		var total uint64
		for _, n := range sliced.SliceMisses {
			total += n
		}
		fmt.Fprintf(&b, "\nsliced-llc4 per-slice miss split (%s/cdpc, %d cpus):", sliced.Workload, sliced.NumCPUs)
		for s, n := range sliced.SliceMisses {
			pct := 0.0
			if total > 0 {
				pct = 100 * float64(n) / float64(total)
			}
			fmt.Fprintf(&b, " s%d=%.1f%%", s, pct)
		}
		b.WriteString("\n(the audit holds the split's sum to the machine-wide miss total)\n")
	}
	b.WriteString("\nthe topology reshapes the conclusion, not just the numbers: private\n")
	b.WriteString("mid-level caches absorb the conflict misses CDPC exists to prevent,\n")
	b.WriteString("and an address-bit slice hash already scatters pages across slices —\n")
	b.WriteString("a hardware randomization that erodes both the coloring pathology and\n")
	b.WriteString("the compiler's leverage over it, which is exactly the trade sliced\n")
	b.WriteString("LLC designs make. The paper's large CDPC wins are a property of the\n")
	b.WriteString("single shared direct-indexed level its machines had.\n")
	return b.String(), nil
}
