package harness

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/arch"
	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/sim"
)

// Scheduler runs Specs on a bounded worker pool and memoizes every
// result, so that experiments sharing a configuration (the page-coloring
// baselines of Figures 2, 6 and 8, the per-variant runs of Table 2) pay
// for each simulation exactly once per process. Run is pure — a Spec
// fully determines its Result — which is what makes both the
// parallelism and the memoization sound.
//
// The intended shape is a run/render split: an experiment first Warms
// the full set of Specs it will need (executed concurrently, completion
// order irrelevant), then renders its output serially through Run, which
// returns memoized results in the experiment's own deterministic order.
// Output is therefore byte-identical to a fully serial execution.
type Scheduler struct {
	workers int

	// hits counts Run/RunCtx calls served from (or coalesced onto) the
	// memo cache; misses counts calls that executed a new simulation.
	// Instrumented specs bypass the cache and count as misses.
	hits   atomic.Uint64
	misses atomic.Uint64

	mu     sync.Mutex
	memo   map[specKey]*memoEntry      // guarded by mu
	multis map[specKey]*multiMemoEntry // guarded by mu
	progs  map[progKey]*progEntry      // guarded by mu
}

// memoEntry is one memoized (possibly in-flight) simulation. done is
// closed when res/err are valid; duplicate submissions of the same Spec
// block on it instead of re-running.
type memoEntry struct {
	done chan struct{}
	res  *sim.Result
	err  error
}

// multiMemoEntry is one memoized (possibly in-flight) multiprocess
// run; the multiprogramming analog of memoEntry.
type multiMemoEntry struct {
	done chan struct{}
	res  *sim.MultiResult
	err  error
}

// progEntry is one memoized compiled program. Programs are immutable
// after the compiler pipeline (Layout and InsertPrefetches assign bases
// and prefetch streams once; the simulator only reads them), so a single
// *ir.Program is safely shared by concurrent simulations.
type progEntry struct {
	done chan struct{}
	prog *ir.Program
	sum  *compiler.Summary
	err  error
}

// specKey is the canonical, comparable form of a Spec: defaults applied
// and pointer overrides flattened to value + presence flag.
type specKey struct {
	Workload              string
	Scale                 int
	CPUs                  int
	Machine               MachineKind
	Variant               Variant
	Prefetch              bool
	HasL2                 bool
	L2                    arch.CacheGeometry
	HasConfig             bool
	Config                arch.Config
	CDPCOptions           core.Options
	DisableClassification bool

	// Topology is the named cache topology, normalized so the empty
	// string and "default" (the same machine) share one memo slot.
	Topology string

	// Sampled distinguishes phase-sampled results from full-fidelity
	// ones: the two are different estimates of the same run and must
	// never share a memo slot. keyOf sees the spec after withDefaults,
	// which has already normalized unsupported combinations to full, so
	// a sampled key always denotes a run that actually sampled.
	Sampled bool

	// CoRunners is the canonical "workload/variant@domain;..." rendering
	// of the spec's co-runner list (inheritance resolved), empty for
	// single-process specs; Sched and Quantum are normalized so that
	// equivalent multiprocess specs share one cache slot.
	CoRunners string
	Sched     SchedKind
	Quantum   uint64

	// Isolate and Domain distinguish color-partitioned runs (and their
	// domain groupings) from unpartitioned ones: the two produce
	// different frame placements and must never share a memo slot.
	Isolate bool
	Domain  int

	// TraceName and TraceHash identify a trace-backed spec's workload:
	// the hash is the trace's content address (sha256 of its canonical
	// serialization), so two uploads of the same reference stream share
	// one memo slot while same-named traces with different content never
	// collide.
	TraceName string
	TraceHash string
}

func keyOf(s Spec) specKey {
	s = s.withDefaults()
	k := specKey{
		Workload:              s.Workload,
		Scale:                 s.Scale,
		CPUs:                  s.CPUs,
		Machine:               s.Machine,
		Variant:               s.Variant,
		Prefetch:              s.Prefetch,
		CDPCOptions:           s.CDPCOptions,
		DisableClassification: s.DisableClassification,
		Sampled:               s.Sampled,
	}
	if s.Topology != "default" {
		k.Topology = s.Topology
	}
	if s.L2Override != nil {
		k.HasL2, k.L2 = true, *s.L2Override
	}
	if s.ConfigOverride != nil {
		k.HasConfig, k.Config = true, *s.ConfigOverride
	}
	if len(s.CoRunners) > 0 {
		list := s.processSpecs()
		var b []byte
		for i, ps := range list[1:] {
			if i > 0 {
				b = append(b, ';')
			}
			b = append(b, ps.Workload...)
			b = append(b, '/')
			b = append(b, ps.Variant...)
			b = append(b, '@')
			b = fmt.Appendf(b, "%d", ps.Domain)
		}
		k.CoRunners = string(b)
		k.Sched = s.Sched
		if k.Sched == "" {
			k.Sched = SchedTimeSlice
		}
		if k.Sched == SchedTimeSlice {
			k.Quantum = s.Quantum
			if k.Quantum == 0 {
				k.Quantum = sim.DefaultQuantum
			}
		}
		k.Isolate = s.Isolate
		if s.Isolate {
			k.Domain = s.Domain
		}
	}
	if s.Trace != nil {
		k.TraceName = s.Trace.Name
		k.TraceHash = s.Trace.contentHash()
	}
	return k
}

// progKey identifies a compiled program: the workload and scale that
// build it plus everything the compiler pipeline depends on. Using the
// resolved LayoutOptions value captures every layout-relevant machine
// parameter (line size, L1 size, page size, external pad span) without
// enumerating them here.
type progKey struct {
	Workload string
	Scale    int
	Layout   compiler.LayoutOptions
	Prefetch bool
}

// NewScheduler creates a scheduler running at most workers simulations
// concurrently; workers <= 0 selects runtime.GOMAXPROCS(0).
func NewScheduler(workers int) *Scheduler {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Scheduler{
		workers: workers,
		memo:    make(map[specKey]*memoEntry),
		multis:  make(map[specKey]*multiMemoEntry),
		progs:   make(map[progKey]*progEntry),
	}
}

// Workers reports the pool size.
func (sc *Scheduler) Workers() int { return sc.workers }

// Run returns the result for spec, computing it on the calling
// goroutine if no memoized or in-flight run exists. Concurrent callers
// with the same Spec coalesce onto one simulation.
func (sc *Scheduler) Run(spec Spec) (*sim.Result, error) {
	return sc.RunCtx(context.Background(), spec)
}

// RunCtx is Run with cancellation. ctx is polled at nest boundaries
// inside the simulation, so a canceled or expired context frees the
// calling worker at the next synchronization point. Cancellation never
// poisons the memo cache: a run that dies on its owner's context error
// is removed from the cache, and callers that were coalesced onto it
// retry under their own (still live) context instead of inheriting the
// stranger's cancellation.
func (sc *Scheduler) RunCtx(ctx context.Context, spec Spec) (*sim.Result, error) {
	if spec.Obs != nil {
		// Instrumented specs are never memoized: a cached result could
		// not have filled this run's collector. The program cache is
		// still shared (observation does not perturb compiled programs).
		sc.misses.Add(1)
		return sc.runSpec(ctx, spec)
	}
	key := keyOf(spec)
	for {
		sc.mu.Lock()
		if e, ok := sc.memo[key]; ok {
			sc.mu.Unlock()
			select {
			case <-e.done:
			case <-ctx.Done():
				// Stop waiting for someone else's run; the run itself
				// continues for its other waiters.
				return nil, ctx.Err()
			}
			if e.err != nil && isContextErr(e.err) {
				// The owning run was canceled (and the entry already
				// removed); re-enter the lookup and run it ourselves.
				continue
			}
			sc.hits.Add(1)
			return e.res, e.err
		}
		e := &memoEntry{done: make(chan struct{})}
		sc.memo[key] = e
		sc.mu.Unlock()
		sc.misses.Add(1)

		e.res, e.err = sc.runSpec(ctx, spec)
		if e.err != nil && isContextErr(e.err) {
			sc.mu.Lock()
			delete(sc.memo, key)
			sc.mu.Unlock()
		}
		close(e.done)
		return e.res, e.err
	}
}

// RunMulti returns the multiprocess result for a spec with co-runners,
// memoized exactly like Run memoizes single-process specs. The memo key
// incorporates the resolved co-runner list, the scheduling discipline
// and the quantum, so co-scheduled runs are cached per multiprogramming
// mix, never conflated with each other or with solo runs.
func (sc *Scheduler) RunMulti(spec Spec) (*sim.MultiResult, error) {
	return sc.RunMultiCtx(context.Background(), spec)
}

// RunMultiCtx is RunMulti with cancellation, following RunCtx's
// coalescing and cancel-unpoisoning rules.
func (sc *Scheduler) RunMultiCtx(ctx context.Context, spec Spec) (*sim.MultiResult, error) {
	if spec.Obs != nil {
		sc.misses.Add(1)
		return RunMultiCtx(ctx, spec)
	}
	key := keyOf(spec)
	for {
		sc.mu.Lock()
		if e, ok := sc.multis[key]; ok {
			sc.mu.Unlock()
			select {
			case <-e.done:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			if e.err != nil && isContextErr(e.err) {
				continue
			}
			sc.hits.Add(1)
			return e.res, e.err
		}
		e := &multiMemoEntry{done: make(chan struct{})}
		sc.multis[key] = e
		sc.mu.Unlock()
		sc.misses.Add(1)

		e.res, e.err = RunMultiCtx(ctx, spec)
		if e.err != nil && isContextErr(e.err) {
			sc.mu.Lock()
			delete(sc.multis, key)
			sc.mu.Unlock()
		}
		close(e.done)
		return e.res, e.err
	}
}

// HasMultiResult reports whether spec's multiprocess result is already
// memoized and complete (the RunMulti analog of HasResult).
func (sc *Scheduler) HasMultiResult(spec Spec) bool {
	if spec.Obs != nil {
		return false
	}
	key := keyOf(spec)
	sc.mu.Lock()
	e, ok := sc.multis[key]
	sc.mu.Unlock()
	if !ok {
		return false
	}
	select {
	case <-e.done:
		return e.err == nil
	default:
		return false
	}
}

// WarmMulti pre-executes multiprocess specs on the worker pool, the
// RunMulti analog of Warm: errors are memoized and resurface from
// RunMulti at the deterministic render point.
func (sc *Scheduler) WarmMulti(specs []Spec) {
	if len(specs) == 0 {
		return
	}
	n := sc.workers
	if n > len(specs) {
		n = len(specs)
	}
	if n <= 1 {
		for _, s := range specs {
			sc.RunMulti(s) //nolint:errcheck // resurfaces at render time
		}
		return
	}
	ch := make(chan Spec)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for s := range ch {
				sc.RunMulti(s) //nolint:errcheck // resurfaces at render time
			}
		}()
	}
	for _, s := range specs {
		ch <- s
	}
	close(ch)
	wg.Wait()
}

// isContextErr reports whether err stems from context cancellation or
// expiry — the errors that describe the requester, not the spec, and so
// must never be memoized.
func isContextErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// CacheStats returns how many Run calls were served from (or coalesced
// onto) the memo cache and how many executed a new simulation.
func (sc *Scheduler) CacheStats() (hits, misses uint64) {
	return sc.hits.Load(), sc.misses.Load()
}

// HasResult reports whether spec's result is already memoized and
// complete, i.e. whether a Run would return without simulating.
// Instrumented specs always report false (they bypass the cache).
func (sc *Scheduler) HasResult(spec Spec) bool {
	if spec.Obs != nil {
		return false
	}
	key := keyOf(spec)
	sc.mu.Lock()
	e, ok := sc.memo[key]
	sc.mu.Unlock()
	if !ok {
		return false
	}
	select {
	case <-e.done:
		return e.err == nil
	default:
		return false
	}
}

// Warm executes the given specs on the worker pool and blocks until all
// have completed. Errors are not returned here: they are memoized and
// resurface from Run at the same (deterministic) point a serial
// execution would hit them, keeping failure behaviour identical.
func (sc *Scheduler) Warm(specs []Spec) {
	if len(specs) == 0 {
		return
	}
	n := sc.workers
	if n > len(specs) {
		n = len(specs)
	}
	if n <= 1 {
		// Degenerate pool: stay on this goroutine so single-worker runs
		// have exactly the serial execution profile.
		for _, s := range specs {
			sc.Run(s) //nolint:errcheck // resurfaces at render time
		}
		return
	}
	ch := make(chan Spec)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for s := range ch {
				sc.Run(s) //nolint:errcheck // resurfaces at render time
			}
		}()
	}
	for _, s := range specs {
		ch <- s
	}
	close(ch)
	wg.Wait()
}

// Runs reports how many distinct simulations the scheduler has executed
// (or has in flight) — i.e. the memo cache size.
func (sc *Scheduler) Runs() int {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return len(sc.memo) + len(sc.multis)
}

// runSpec is Run's slow path: prepare (through the program cache) and
// simulate. It mirrors the package-level Run exactly. Trace-backed
// specs skip the program cache entirely — there is no compiled program
// to share, and their Workload field is only a label.
func (sc *Scheduler) runSpec(ctx context.Context, spec Spec) (*sim.Result, error) {
	spec = spec.withDefaults()
	if spec.Trace != nil {
		return runTraceCtx(ctx, spec)
	}
	prog, sum, cfg, err := sc.prepare(spec)
	if err != nil {
		return nil, err
	}
	return runPrepared(ctx, prog, sum, cfg, spec)
}

// prepare resolves the spec's compiled program through the shared
// program cache, so parallel runs of the same workload don't redo the
// build + compiler pipeline. The layout key makes variants that need a
// different memory layout (unaligned, externally padded) compile their
// own copy.
func (sc *Scheduler) prepare(s Spec) (*ir.Program, *compiler.Summary, arch.Config, error) {
	cfg := s.Config()
	key := progKey{
		Workload: s.Workload,
		Scale:    s.Scale,
		Layout:   layoutFor(s.Variant, cfg),
		Prefetch: s.Prefetch,
	}
	sc.mu.Lock()
	if e, ok := sc.progs[key]; ok {
		sc.mu.Unlock()
		<-e.done
		return e.prog, e.sum, cfg, e.err
	}
	e := &progEntry{done: make(chan struct{})}
	sc.progs[key] = e
	sc.mu.Unlock()

	e.prog, e.sum, _, e.err = Prepare(s)
	close(e.done)
	return e.prog, e.sum, cfg, e.err
}

// layoutFor returns the layout options a variant selects under a
// machine config; Prepare and RunProgram both build layouts through
// it. Geometry comes from the effective topology's LLC — line size and
// total capacity — so padded variants pad against the cache the frames
// actually map into (a clustered L3 or the sum of hash-selected
// slices), not the default machine's per-CPU external cache.
func layoutFor(v Variant, cfg arch.Config) compiler.LayoutOptions {
	llc := cfg.Topo().LLC()
	layout := compiler.DefaultLayout(llc.Geom.LineSize, cfg.L1D.Size, cfg.PageSize)
	switch v {
	case BinHoppingUnaligned:
		layout.Align = false
		layout.Pad = false
	case PaddedColoring, PaddedBinHopping:
		layout.ExternalPad = true
		layout.ExternalCacheSize = llc.TotalSize()
	}
	return layout
}
