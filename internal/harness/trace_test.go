package harness

import (
	"os"
	"testing"

	"repro/internal/sim"
	"repro/internal/trace"
)

// loadBundledTrace converts the bundled irregular text trace (generated
// by cmd/tracegen; see its doc comment for the pathology it encodes).
func loadBundledTrace(t *testing.T) *trace.File {
	t.Helper()
	f, err := os.Open("../../examples/traces/irregular.txt")
	if err != nil {
		t.Fatalf("open bundled trace: %v", err)
	}
	defer f.Close()
	tf, err := trace.ConvertText(f)
	if err != nil {
		t.Fatalf("convert bundled trace: %v", err)
	}
	return tf
}

func conflicts(r *sim.Result) uint64 {
	return r.Total(func(c *sim.CPUStats) uint64 { return c.ConflictMisses })
}

// TestTraceOnlineSummarizerBeatsFirstTouch is the headline trace-driven
// demo: on the bundled irregular trace — hot pages congruent mod the
// color count, first-touch order poisoned by interleaved cold faults —
// the online access-pattern summarizer's color hints (CDPC without the
// compiler) eliminate nearly all conflict misses that first-touch
// placement suffers.
func TestTraceOnlineSummarizerBeatsFirstTouch(t *testing.T) {
	tf := loadBundledTrace(t)
	base := Spec{Trace: NewTraceWorkload("irregular", tf)}

	ft := base
	ft.Variant = FirstTouch
	ftRes, err := Run(ft)
	if err != nil {
		t.Fatalf("first-touch: %v", err)
	}
	cd := base
	cd.Variant = CDPC
	cdRes, err := Run(cd)
	if err != nil {
		t.Fatalf("cdpc: %v", err)
	}

	for _, r := range []*sim.Result{ftRes, cdRes} {
		if r.NumCPUs != tf.NumCPUs() {
			t.Errorf("%s: NumCPUs = %d, want trace width %d", r.Policy, r.NumCPUs, tf.NumCPUs())
		}
		if r.Fidelity != sim.FidelityFull {
			t.Errorf("%s: fidelity %q, want full", r.Policy, r.Fidelity)
		}
		if v := r.Audit(); len(v) != 0 {
			t.Errorf("%s: audit violations: %v", r.Policy, v)
		}
	}

	ftConf, cdConf := conflicts(ftRes), conflicts(cdRes)
	if ftConf < 1000 {
		t.Fatalf("first-touch conflict misses = %d; trace no longer exercises the pathology", ftConf)
	}
	if cdConf*10 > ftConf {
		t.Errorf("cdpc conflict misses = %d, want <10%% of first-touch's %d", cdConf, ftConf)
	}
	if cdRes.HintedFaults == 0 || cdRes.HonoredHints != cdRes.HintedFaults {
		t.Errorf("cdpc hints: %d hinted, %d honored; want all honored on an uncontended machine",
			cdRes.HintedFaults, cdRes.HonoredHints)
	}
	if cdRes.WallCycles >= ftRes.WallCycles {
		t.Errorf("cdpc wall clock %d >= first-touch %d; expected speedup", cdRes.WallCycles, ftRes.WallCycles)
	}
}

func TestTraceSpecValidation(t *testing.T) {
	tf := loadBundledTrace(t)
	w := NewTraceWorkload("irregular", tf)
	cases := []struct {
		name string
		spec Spec
	}{
		{"co-runners", Spec{Trace: w, CoRunners: []CoRunner{{Workload: "tomcatv"}}}},
		{"prefetch", Spec{Trace: w, Prefetch: true}},
		{"cdpc-touch", Spec{Trace: w, Variant: CDPCTouch}},
		{"too few cpus", Spec{Trace: w, CPUs: 1}},
	}
	for _, tc := range cases {
		if _, err := Run(tc.spec); err == nil {
			t.Errorf("%s: Run accepted an invalid trace spec", tc.name)
		}
	}
	if _, err := RunMulti(Spec{Trace: w}); err == nil {
		t.Error("RunMulti accepted a trace-backed spec")
	}
}

// Trace-backed specs must memoize by content hash: same bytes share a
// key regardless of display name; different bytes never collide.
func TestTraceMemoKeys(t *testing.T) {
	tf := loadBundledTrace(t)
	other, err := trace.ConvertText(traceText(t, "0 0x1000 r\n0 0x2000 w\n"))
	if err != nil {
		t.Fatalf("convert: %v", err)
	}
	a := keyOf(Spec{Trace: NewTraceWorkload("a", tf)})
	b := keyOf(Spec{Trace: NewTraceWorkload("b", tf)})
	c := keyOf(Spec{Trace: NewTraceWorkload("a", other), CPUs: 2})
	if a.TraceHash != b.TraceHash || a.TraceHash == "" {
		t.Errorf("same trace bytes, different hashes: %q vs %q", a.TraceHash, b.TraceHash)
	}
	if a.TraceHash == c.TraceHash {
		t.Error("different trace bytes share a memo hash")
	}
	if a == b {
		t.Error("keys with different display names should still differ on TraceName")
	}

	// The scheduler must hit its memo cache for a re-submitted trace spec.
	sc := NewScheduler(2)
	spec := Spec{Trace: NewTraceWorkload("irregular", tf), Variant: PageColoring}
	r1, err := sc.Run(spec)
	if err != nil {
		t.Fatalf("scheduler trace run: %v", err)
	}
	r2, err := sc.Run(spec)
	if err != nil {
		t.Fatalf("repeat scheduler trace run: %v", err)
	}
	if r1 != r2 {
		t.Error("identical trace specs did not share a memoized result")
	}
}

func traceText(t *testing.T, s string) *os.File {
	t.Helper()
	f, err := os.CreateTemp(t.TempDir(), "trace*.txt")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(s); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Seek(0, 0); err != nil {
		t.Fatal(err)
	}
	return f
}
