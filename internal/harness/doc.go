// Package harness assembles full experiment runs: it builds a workload,
// runs the compiler pipeline (layout, summaries, optional prefetch
// insertion), computes CDPC hints when requested, constructs the machine
// and executes the simulation. Every table and figure reproduction in
// cmd/experiments and bench_test.go goes through this package
// (Figures 6–9 and Tables 1–2 of the paper, plus the extension
// studies), as does every cdpcd request via the Scheduler.
//
// The Scheduler is the concurrent execution engine: a fixed worker
// pool with a Spec-keyed memo cache (in-flight runs coalesce) and a
// shared compiled-program cache. RunCtx threads context cancellation
// into the simulator, which polls at loop-nest boundaries; canceled
// runs never poison the memo cache.
package harness
