package harness

import (
	"testing"

	"repro/internal/workloads"
)

// TestSampledFidelity is the tentpole acceptance gate: across all ten
// workloads, phase-sampled simulation must land within the 2% MCPI
// error budget of full-fidelity simulation, pass the full audit, and
// carry honest sampling accounting. CPUs=2 keeps the parallel
// machinery (fork, barriers, coherence) in the sampled path while
// leaving per-CPU spans long enough for windows to engage.
func TestSampledFidelity(t *testing.T) {
	for _, w := range workloads.Names() {
		w := w
		t.Run(w, func(t *testing.T) {
			full, err := Run(Spec{Workload: w, CPUs: 2})
			if err != nil {
				t.Fatalf("full run: %v", err)
			}
			sam, err := Run(Spec{Workload: w, CPUs: 2, Sampled: true})
			if err != nil {
				t.Fatalf("sampled run: %v", err)
			}
			if sam.Fidelity != "sampled" {
				t.Fatalf("fidelity = %q, want sampled", sam.Fidelity)
			}
			if vs := sam.Audit(); vs != nil {
				t.Fatalf("sampled result fails audit: %v", vs)
			}
			if sam.SampledWindows == 0 || sam.RepresentedIters == 0 || sam.WarmupRefs == 0 {
				t.Fatalf("sampling counters not recorded: windows=%d represented=%d warm=%d",
					sam.SampledWindows, sam.RepresentedIters, sam.WarmupRefs)
			}
			fm, sm := full.MCPI(), sam.MCPI()
			relErr := (sm - fm) / fm
			if relErr < 0 {
				relErr = -relErr
			}
			t.Logf("%s: full MCPI %.4f, sampled MCPI %.4f, err %.2f%%, faults %d/%d, windows %d, iters %d/%d",
				w, fm, sm, 100*relErr, full.PageFaults, sam.PageFaults,
				sam.SampledWindows, sam.SampledIters, sam.RepresentedIters)
			if relErr > 0.02 {
				t.Errorf("%s: sampled MCPI %.4f vs full %.4f: error %.2f%% exceeds 2%% budget",
					w, sm, fm, 100*relErr)
			}
			if sam.PageFaults != full.PageFaults {
				t.Logf("note: fault counts differ (full %d, sampled %d)", full.PageFaults, sam.PageFaults)
			}
		})
	}
}
