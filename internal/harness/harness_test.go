package harness

import (
	"strconv"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/vm"
	"repro/internal/workloads"
)

func run(t *testing.T, s Spec) *sim.Result {
	t.Helper()
	r, err := Run(s)
	if err != nil {
		t.Fatalf("%+v: %v", s, err)
	}
	return r
}

func TestAllVariantsExecute(t *testing.T) {
	for _, v := range Variants() {
		r := run(t, Spec{Workload: "tomcatv", CPUs: 2, Variant: v})
		if r.WallCycles == 0 {
			t.Errorf("%s: zero wall clock", v)
		}
		wantPolicy := string(v)
		if r.Policy != wantPolicy {
			t.Errorf("%s: result policy %q", v, r.Policy)
		}
	}
}

func TestUnknownWorkloadAndVariant(t *testing.T) {
	if _, err := Run(Spec{Workload: "nope", CPUs: 1}); err == nil {
		t.Error("unknown workload accepted")
	}
	if _, err := Run(Spec{Workload: "tomcatv", CPUs: 1, Variant: "bogus"}); err == nil {
		t.Error("unknown variant accepted")
	}
}

func TestDefaultsApplied(t *testing.T) {
	r := run(t, Spec{Workload: "fpppp"})
	if r.NumCPUs != 1 {
		t.Errorf("default CPUs = %d, want 1", r.NumCPUs)
	}
	if r.Policy != string(PageColoring) {
		t.Errorf("default policy = %s", r.Policy)
	}
}

// TestHeadlineTomcatv asserts the paper's flagship result: CDPC far
// outperforms page coloring at 16 CPUs on the base machine ("as much as
// a factor of two in some cases"; our scaled machine amplifies it).
func TestHeadlineTomcatv(t *testing.T) {
	base := run(t, Spec{Workload: "tomcatv", CPUs: 16, Variant: PageColoring})
	cdpc := run(t, Spec{Workload: "tomcatv", CPUs: 16, Variant: CDPC})
	if sp := cdpc.Speedup(base); sp < 1.5 {
		t.Errorf("tomcatv@16 CDPC speedup = %.2f, want ≥ 1.5", sp)
	}
	// CDPC also relieves the saturated bus (§6.2's bandwidth argument).
	if cdpc.BusUtilization() >= base.BusUtilization() {
		t.Errorf("CDPC did not reduce bus utilization: %.2f vs %.2f",
			cdpc.BusUtilization(), base.BusUtilization())
	}
	// And eliminates most conflict misses.
	conf := func(r *sim.Result) uint64 {
		return r.Total(func(s *sim.CPUStats) uint64 { return s.ConflictMisses })
	}
	if conf(cdpc)*2 > conf(base) {
		t.Errorf("conflicts not halved: %d vs %d", conf(cdpc), conf(base))
	}
}

// TestSwimGainsGrowWithCPUs: the paper reports swim's CDPC gains begin
// at eight processors (§6.1) and that page coloring saturates the bus.
func TestSwimGainsGrowWithCPUs(t *testing.T) {
	sp := func(p int) float64 {
		base := run(t, Spec{Workload: "swim", CPUs: p, Variant: PageColoring})
		cdpc := run(t, Spec{Workload: "swim", CPUs: p, Variant: CDPC})
		return cdpc.Speedup(base)
	}
	s2, s8 := sp(2), sp(8)
	if s8 < 1.5 {
		t.Errorf("swim@8 CDPC speedup %.2f, want large", s8)
	}
	if s8 <= s2 {
		t.Errorf("swim gains should grow with CPUs: p2=%.2f p8=%.2f", s2, s8)
	}
}

// TestSu2corNearNeutral: CDPC maps only su2cor's analyzable arrays and
// may conflict with the rest; the paper reports a slight degradation.
// Assert it stays slight in either direction.
func TestSu2corNearNeutral(t *testing.T) {
	base := run(t, Spec{Workload: "su2cor", CPUs: 8, Variant: PageColoring})
	cdpc := run(t, Spec{Workload: "su2cor", CPUs: 8, Variant: CDPC})
	if sp := cdpc.Speedup(base); sp < 0.80 || sp > 1.25 {
		t.Errorf("su2cor@8 CDPC speedup %.2f, want near 1.0", sp)
	}
}

// TestPolicyInsensitiveWorkloads: apsi, fpppp and wave5 should barely
// move across policies (Table 2 shows identical times for fpppp).
func TestPolicyInsensitiveWorkloads(t *testing.T) {
	for _, name := range []string{"apsi", "fpppp", "wave5"} {
		base := run(t, Spec{Workload: name, CPUs: 8, Variant: PageColoring})
		cdpc := run(t, Spec{Workload: name, CPUs: 8, Variant: CDPC})
		if sp := cdpc.Speedup(base); sp < 0.9 || sp > 1.15 {
			t.Errorf("%s@8 CDPC speedup %.2f, want ≈ 1.0", name, sp)
		}
	}
}

// TestNeitherStaticPolicyDominates: the paper's §1 claim. Across the
// suite at 8 CPUs, each static policy must win somewhere.
func TestNeitherStaticPolicyDominates(t *testing.T) {
	coloringWins, binhopWins := 0, 0
	for _, name := range []string{"tomcatv", "swim", "applu", "turb3d", "mgrid"} {
		pc := run(t, Spec{Workload: name, CPUs: 8, Variant: PageColoring})
		bh := run(t, Spec{Workload: name, CPUs: 8, Variant: BinHopping})
		switch {
		case float64(pc.WallCycles) < 0.98*float64(bh.WallCycles):
			coloringWins++
		case float64(bh.WallCycles) < 0.98*float64(pc.WallCycles):
			binhopWins++
		}
	}
	if coloringWins == 0 || binhopWins == 0 {
		t.Errorf("one static policy dominates: coloring wins %d, bin hopping wins %d", coloringWins, binhopWins)
	}
}

// TestCDPCTouchMatchesKernelCDPC: the Digital UNIX touch-order
// implementation should land close to the kernel-hint implementation in
// steady state (startup costs are excluded from the measured window).
func TestCDPCTouchMatchesKernelCDPC(t *testing.T) {
	k := run(t, Spec{Workload: "tomcatv", CPUs: 8, Variant: CDPC})
	touch := run(t, Spec{Workload: "tomcatv", CPUs: 8, Variant: CDPCTouch})
	ratio := float64(touch.WallCycles) / float64(k.WallCycles)
	if ratio < 0.8 || ratio > 1.2 {
		t.Errorf("touch-order CDPC off by %.2fx from kernel CDPC", ratio)
	}
}

func TestUnalignedLayoutHurts(t *testing.T) {
	// swim is the paper's most alignment-sensitive code (§7).
	aligned := run(t, Spec{Workload: "swim", CPUs: 8, Variant: BinHopping})
	unaligned := run(t, Spec{Workload: "swim", CPUs: 8, Variant: BinHoppingUnaligned})
	fs := func(r *sim.Result) uint64 {
		return r.Total(func(s *sim.CPUStats) uint64 { return s.FalseShareMisses })
	}
	if fs(unaligned) <= fs(aligned) {
		t.Errorf("unaligned layout should add false sharing: %d vs %d", fs(unaligned), fs(aligned))
	}
}

func TestHintsExposed(t *testing.T) {
	h, prog, err := Hints(Spec{Workload: "tomcatv", CPUs: 8, Variant: CDPC})
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Order) == 0 || prog == nil {
		t.Fatal("no hints computed")
	}
	if len(h.Order) != len(h.Colors) {
		t.Errorf("order %d vs colors %d", len(h.Order), len(h.Colors))
	}
}

func TestSpecRatingAndGeoMean(t *testing.T) {
	uni := &sim.Result{WallCycles: 1000}
	r8 := &sim.Result{WallCycles: 250}
	if got := SpecRating(uni, r8); got != anchorRating*4 {
		t.Errorf("SpecRating = %v, want %v", got, anchorRating*4)
	}
	if got := GeoMean([]float64{2, 8}); got != 4 {
		t.Errorf("GeoMean = %v, want 4", got)
	}
	if GeoMean(nil) != 0 || GeoMean([]float64{1, 0}) != 0 {
		t.Error("GeoMean degenerate cases")
	}
}

func TestExperimentRegistry(t *testing.T) {
	ids := SortedExperimentIDs()
	want := []string{"ext-dynamic", "ext-multiprog", "ext-padding", "ext-phases", "ext-pressure", "ext-sampling", "ext-topology", "fig2", "fig3", "fig5", "fig6", "fig7", "fig8", "fig9", "table1", "table2"}
	if len(ids) != len(want) {
		t.Fatalf("experiments = %v", ids)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Errorf("ids[%d] = %s, want %s", i, ids[i], want[i])
		}
	}
	if _, err := ExperimentByID("fig6"); err != nil {
		t.Error(err)
	}
	if _, err := ExperimentByID("fig99"); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestTable1ListsAllWorkloads(t *testing.T) {
	out, err := Table1(ExpOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range workloads.Names() {
		if !strings.Contains(out, name) {
			t.Errorf("table1 missing %s", name)
		}
	}
}

// TestAccessMapDensityImproves quantifies Figures 3 vs 5: CDPC's
// coloring order makes each CPU's touched pages dense.
func TestAccessMapDensityImproves(t *testing.T) {
	virt, err := Fig3(ExpOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cdpc, err := Fig5(ExpOptions{})
	if err != nil {
		t.Fatal(err)
	}
	dv := meanDensities(t, virt)
	dc := meanDensities(t, cdpc)
	if len(dv) != 3 || len(dc) != 3 {
		t.Fatalf("densities: %v %v", dv, dc)
	}
	for i := range dv {
		if dc[i] < 2*dv[i] {
			t.Errorf("workload %d: CDPC density %.2f not ≥ 2x virtual-order %.2f", i, dc[i], dv[i])
		}
	}
}

func meanDensities(t *testing.T, out string) []float64 {
	t.Helper()
	const prefix = "  mean per-CPU density (pages touched / span): "
	var ds []float64
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, prefix) {
			continue
		}
		d, err := strconv.ParseFloat(strings.TrimSpace(strings.TrimPrefix(line, prefix)), 64)
		if err != nil {
			t.Fatalf("bad density line %q: %v", line, err)
		}
		ds = append(ds, d)
	}
	return ds
}

// TestDynamicRecoloringVariant runs the extension variant end to end:
// it must execute, recolor, and (per the paper's §2.1 argument) not beat
// CDPC on a conflict-heavy workload.
func TestDynamicRecoloringVariant(t *testing.T) {
	dyn := run(t, Spec{Workload: "tomcatv", CPUs: 8, Variant: DynamicRecoloring})
	if dyn.Total(func(s *sim.CPUStats) uint64 { return s.Recolorings }) == 0 {
		t.Error("dynamic variant performed no recolorings")
	}
	cdpc := run(t, Spec{Workload: "tomcatv", CPUs: 8, Variant: CDPC})
	if dyn.WallCycles <= cdpc.WallCycles {
		t.Errorf("dynamic (%d) beat CDPC (%d); the paper's cost argument should hold", dyn.WallCycles, cdpc.WallCycles)
	}
}

// TestExtPhasesStableOccurrences asserts the §3.2 validation: phase
// occurrences vary by far less than 1% in our deterministic steady
// state.
func TestExtPhasesStableOccurrences(t *testing.T) {
	out, err := ExtPhases(ExpOptions{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(out, "\n") {
		if !strings.Contains(line, "%") || strings.Contains(line, "stddev") || strings.Contains(line, "paper") {
			continue
		}
		if strings.Contains(line, "10.") || strings.Contains(line, "99.") {
			t.Errorf("suspiciously large variation: %q", line)
		}
	}
}

// TestPaddingBaselineDiesUnderBinHopping asserts §2.2: compiler padding
// eliminates conflicts under page coloring (virtual staggering survives
// the mapping) but is erased by bin hopping's fault-order coloring.
func TestPaddingBaselineDiesUnderBinHopping(t *testing.T) {
	coloring := run(t, Spec{Workload: "tomcatv", CPUs: 8, Variant: PageColoring})
	padded := run(t, Spec{Workload: "tomcatv", CPUs: 8, Variant: PaddedColoring})
	if sp := padded.Speedup(coloring); sp < 1.2 {
		t.Errorf("padding over coloring = %.2fx, want a substantial win", sp)
	}
	binhop := run(t, Spec{Workload: "tomcatv", CPUs: 8, Variant: BinHopping})
	paddedBH := run(t, Spec{Workload: "tomcatv", CPUs: 8, Variant: PaddedBinHopping})
	if sp := paddedBH.Speedup(binhop); sp < 0.85 || sp > 1.15 {
		t.Errorf("padding over bin hopping = %.2fx, want ≈ 1.0 (page-sized pads are erased)", sp)
	}
}

// TestPressureDegradesGracefully asserts §5 step 3: with every color's
// pool drained except a few, CDPC's hints go unhonored but performance
// never falls below the fallback policy's.
func TestPressureDegradesGracefully(t *testing.T) {
	spec := Spec{Workload: "tomcatv", CPUs: 8, Variant: CDPC}
	cfg := spec.Config()
	prog, sum, _, err := Prepare(spec)
	if err != nil {
		t.Fatal(err)
	}
	hints, err := core.ComputeHints(prog, sum, core.Params{NumCPUs: cfg.NumCPUs, NumColors: cfg.Colors(), PageSize: cfg.PageSize})
	if err != nil {
		t.Fatal(err)
	}
	exhausted := make([]int, cfg.Colors()/2)
	for i := range exhausted {
		exhausted[i] = i
	}
	m, err := sim.New(sim.Options{
		Config:        cfg,
		Policy:        vm.PageColoring{Colors: cfg.Colors()},
		Hints:         hints.Colors,
		ExhaustColors: exhausted,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run(prog)
	if err != nil {
		t.Fatal(err)
	}
	if res.HonoredHints >= res.HintedFaults {
		t.Errorf("pressure did not defeat any hints: %d/%d", res.HonoredHints, res.HintedFaults)
	}
	if res.HonoredHints == 0 {
		t.Error("hints to unexhausted colors should still be honored")
	}
	baseline := run(t, Spec{Workload: "tomcatv", CPUs: 8, Variant: PageColoring})
	if float64(res.WallCycles) > 1.25*float64(baseline.WallCycles) {
		t.Errorf("pressured CDPC (%d) far worse than the fallback policy (%d)", res.WallCycles, baseline.WallCycles)
	}
}
