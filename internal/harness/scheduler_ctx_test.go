package harness

import (
	"context"
	"errors"
	"testing"
	"time"
)

// ctxSpec is a run big enough (~0.5s) that a context deadline can
// reliably land mid-simulation.
func ctxSpec() Spec {
	return Spec{Workload: "tomcatv", CPUs: 16, Scale: 4}
}

func TestRunCtxDeadlineAborts(t *testing.T) {
	sc := NewScheduler(2)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := sc.RunCtx(ctx, ctxSpec())
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("cancellation took %s; nest-boundary polling not effective", elapsed)
	}
}

func TestRunCtxCancelDoesNotPoisonMemo(t *testing.T) {
	sc := NewScheduler(2)
	spec := ctxSpec()

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	if _, err := sc.RunCtx(ctx, spec); !errors.Is(err, context.Canceled) {
		t.Fatalf("first run: err = %v, want Canceled", err)
	}

	// The canceled run must not be memoized: a fresh context succeeds.
	res, err := sc.RunCtx(context.Background(), spec)
	if err != nil {
		t.Fatalf("second run inherited the cancellation: %v", err)
	}
	if res.WallCycles == 0 {
		t.Fatal("second run produced no cycles")
	}

	// And the retry's (successful) result is now cached.
	if !sc.HasResult(spec) {
		t.Error("successful retry not memoized")
	}
}

func TestRunCtxWaiterStopsOnOwnCancel(t *testing.T) {
	sc := NewScheduler(2)
	spec := ctxSpec()

	// Owner starts a long run with a context that stays alive.
	ownerDone := make(chan error, 1)
	go func() {
		_, err := sc.RunCtx(context.Background(), spec)
		ownerDone <- err
	}()
	// Give the owner time to claim the memo entry.
	for i := 0; i < 100 && func() bool { h, m := sc.CacheStats(); return h+m == 0 }(); i++ {
		time.Sleep(5 * time.Millisecond)
	}

	// A waiter with a short deadline abandons the wait; the owner's run
	// is unaffected.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, err := sc.RunCtx(ctx, spec); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("waiter err = %v, want DeadlineExceeded", err)
	}
	if err := <-ownerDone; err != nil {
		t.Fatalf("owner's run failed: %v", err)
	}
}

func TestHasResult(t *testing.T) {
	sc := NewScheduler(1)
	spec := Spec{Workload: "tomcatv", CPUs: 1, Scale: 64}
	if sc.HasResult(spec) {
		t.Fatal("HasResult true before any run")
	}
	if _, err := sc.Run(spec); err != nil {
		t.Fatal(err)
	}
	if !sc.HasResult(spec) {
		t.Fatal("HasResult false after a completed run")
	}
	hits, misses := sc.CacheStats()
	if hits != 0 || misses != 1 {
		t.Fatalf("CacheStats = (%d, %d), want (0, 1)", hits, misses)
	}
	if _, err := sc.Run(spec); err != nil {
		t.Fatal(err)
	}
	if hits, _ := sc.CacheStats(); hits != 1 {
		t.Fatalf("hits = %d after repeat run, want 1", hits)
	}
}
