package harness

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/arch"
	"repro/internal/ir"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/textplot"
	"repro/internal/workloads"
)

// ExpOptions configures experiment reproduction runs.
type ExpOptions struct {
	// Scale divides the paper's machine and data sizes; 0 uses the
	// default (1/16).
	Scale int
	// Quick restricts CPU counts and workloads for fast runs.
	Quick bool
	// Runner, when set, executes simulations through a memoizing
	// parallel scheduler: each experiment warms its full spec set on the
	// worker pool, then renders serially from the memo cache, so output
	// is byte-identical to a serial run. Nil runs everything inline.
	Runner *Scheduler
	// Audit, when set, checks every result's conservation invariants
	// (sim.Result.Audit) and fails the experiment on any violation —
	// silent counter drift becomes a hard error.
	Audit bool
	// Procs overrides the co-scheduling degree of the multiprogramming
	// extension (ext-multiprog): N > 1 runs exactly N instances instead
	// of the default 2- and 4-way sweep.
	Procs int
	// Sampled runs every compatible simulation in phase-sampled mode
	// (representative windows with functional warm-up) for ~10x
	// throughput at <2% MCPI error. Specs that need the full reference
	// stream (attribution, co-scheduling, dynamic recoloring) silently
	// keep full fidelity.
	Sampled bool
	// Topology runs every simulation on the named cache topology
	// (MACHINES.md) instead of the preset's default hierarchy. Specs
	// that pick a topology themselves (ext-topology's matrix) keep
	// their own choice. Unknown names fail at run time like any
	// invalid spec.
	Topology string
}

// run executes one spec, through the scheduler when one is configured,
// and audits the result when auditing is on.
func (o ExpOptions) run(s Spec) (*sim.Result, error) {
	var res *sim.Result
	var err error
	if o.Sampled && CanSample(s) {
		s.Sampled = true
	}
	if o.Topology != "" && s.Topology == "" {
		s.Topology = o.Topology
	}
	if o.Runner != nil {
		res, err = o.Runner.Run(s)
	} else {
		res, err = Run(s)
	}
	if err != nil {
		return res, err
	}
	if err := o.audit(res); err != nil {
		return res, fmt.Errorf("%s/%s on %d cpus: %w", s.Workload, s.Variant, s.CPUs, err)
	}
	return res, nil
}

// audit applies the conservation-invariant check to a result when
// auditing is enabled; nil otherwise.
func (o ExpOptions) audit(res *sim.Result) error {
	if !o.Audit {
		return nil
	}
	return obs.AuditError(res.Audit())
}

// warm pre-executes specs on the scheduler's pool so the render loop
// that follows hits only memoized results. Errors are deliberately not
// surfaced here: they reappear from run at the same deterministic point
// a serial execution would fail. A no-op without a scheduler.
func (o ExpOptions) warm(specs []Spec) {
	if o.Runner == nil {
		return
	}
	if o.Sampled || o.Topology != "" {
		// Mirror run's fidelity and topology mapping so the warmed memo
		// keys match the keys the render loop will ask for.
		mapped := make([]Spec, len(specs))
		for i, s := range specs {
			if o.Sampled && CanSample(s) {
				s.Sampled = true
			}
			if o.Topology != "" && s.Topology == "" {
				s.Topology = o.Topology
			}
			mapped[i] = s
		}
		specs = mapped
	}
	o.Runner.Warm(specs)
}

func (o ExpOptions) scale() int {
	if o.Scale == 0 {
		return workloads.DefaultScale
	}
	return o.Scale
}

func (o ExpOptions) cpuCounts() []int {
	if o.Quick {
		return []int{1, 8}
	}
	return []int{1, 2, 4, 8, 16}
}

func (o ExpOptions) alphaCPUCounts() []int {
	if o.Quick {
		return []int{1, 8}
	}
	return []int{1, 2, 4, 8}
}

func (o ExpOptions) workloadNames() []string {
	if o.Quick {
		return []string{"tomcatv", "swim", "applu"}
	}
	return workloads.Names()
}

// Experiment is one reproducible table or figure.
type Experiment struct {
	ID    string
	Title string
	Run   func(o ExpOptions) (string, error)
}

// Experiments lists every table and figure reproduction, in paper order.
func Experiments() []Experiment {
	return []Experiment{
		{"table1", "Table 1: reference data set sizes of SPEC95fp", Table1},
		{"fig2", "Figure 2: high-level characterization of the workloads", Fig2},
		{"fig3", "Figure 3: page-level access patterns (page coloring)", Fig3},
		{"fig5", "Figure 5: access patterns in CDPC coloring order", Fig5},
		{"fig6", "Figure 6: impact of compiler-directed page coloring", Fig6},
		{"fig7", "Figure 7: CDPC on 2-way associative and 4MB caches", Fig7},
		{"fig8", "Figure 8: CDPC combined with compiler-inserted prefetching", Fig8},
		{"fig9", "Figure 9: page mapping policies on the AlphaServer config", Fig9},
		{"table2", "Table 2: execution time and SPEC95fp rating (8 CPUs)", Table2},
		{"ext-dynamic", "Extension: dynamic page recoloring vs CDPC", ExtDynamic},
		{"ext-padding", "Extension: the compiler padding baseline vs OS policy (§2.2)", ExtPadding},
		{"ext-phases", "Extension: representative-execution-window validation (§3.2)", ExtPhases},
		{"ext-pressure", "Extension: CDPC under memory pressure (§5 step 3)", ExtPressure},
		{"ext-multiprog", "Extension: CDPC vs first-touch/bin-hopping under co-scheduling", ExtMultiprog},
		{"ext-sampling", "Extension: phase-sampled execution vs full fidelity (error budget)", ExtSampling},
		{"ext-topology", "Extension: page mapping policies across cache topologies", ExtTopology},
	}
}

// ExperimentByID returns the experiment with the given id.
func ExperimentByID(id string) (Experiment, error) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("harness: unknown experiment %q", id)
}

// Table1 reports the scaled data-set sizes next to the paper's (§3.1).
func Table1(o ExpOptions) (string, error) {
	t := textplot.NewTable("Benchmark", "Paper (MB)", fmt.Sprintf("Scaled 1/%d (KB)", o.scale()), "Ratio kept")
	for _, m := range workloads.Registry() {
		p := m.Build(o.scale())
		scaledKB := float64(p.DataBytes()) / 1024
		target := m.PaperDataMB * 1024 / float64(o.scale())
		t.Row(m.Name, m.PaperDataMB, scaledKB, fmt.Sprintf("%.0f%%", 100*scaledKB/target))
	}
	return "Table 1 — Reference data set sizes (scaled by 1/" +
		fmt.Sprint(o.scale()) + ", ratios to cache size preserved)\n\n" + t.String(), nil
}

// Fig2 reproduces the four views of Figure 2 for every workload under
// the base machine and IRIX-style page coloring.
func Fig2(o ExpOptions) (string, error) {
	var b strings.Builder
	b.WriteString("Figure 2 — High-level characterization (1MB-class direct-mapped cache, page coloring)\n")
	b.WriteString("Bars: E=execution  M=memory stall  O=overhead; constant combined height = linear speedup\n\n")

	var specs []Spec
	for _, name := range o.workloadNames() {
		for _, p := range o.cpuCounts() {
			specs = append(specs, Spec{Workload: name, Scale: o.scale(), CPUs: p, Variant: PageColoring})
		}
	}
	o.warm(specs)

	breakdown := textplot.NewTable("workload", "cpus", "combined(Mcyc)", "exec%", "mem%", "kernel%", "imbal%", "seq%", "suppr%", "sync%", "MCPI", "bus%")
	chart := textplot.NewBarChart(50)
	for _, spec := range specs {
		name, p := spec.Workload, spec.CPUs
		res, err := o.run(spec)
		if err != nil {
			return "", err
		}
		exec := res.Total(func(s *sim.CPUStats) uint64 { return s.ExecCycles })
		mem := res.Total((*sim.CPUStats).MemStallCycles)
		kernel := res.Total(func(s *sim.CPUStats) uint64 { return s.KernelCycles })
		imbal := res.Total(func(s *sim.CPUStats) uint64 { return s.ImbalanceCycles })
		seq := res.Total(func(s *sim.CPUStats) uint64 { return s.SequentialCycles })
		sup := res.Total(func(s *sim.CPUStats) uint64 { return s.SuppressedCycles })
		sync := res.Total(func(s *sim.CPUStats) uint64 { return s.SyncCycles })
		comb := float64(res.CombinedCycles())
		pct := func(x uint64) string { return fmt.Sprintf("%.1f", 100*float64(x)/comb) }
		breakdown.Row(name, p, fmt.Sprintf("%.1f", comb/1e6),
			pct(exec), pct(mem), pct(kernel), pct(imbal), pct(seq), pct(sup), pct(sync),
			res.MCPI(), fmt.Sprintf("%.0f", 100*res.BusUtilization()))
		chart.Add(fmt.Sprintf("%s p=%d", name, p), fmt.Sprintf("%.0f Mcyc", comb/1e6),
			textplot.Segment{Glyph: 'E', Value: float64(exec)},
			textplot.Segment{Glyph: 'M', Value: float64(mem)},
			textplot.Segment{Glyph: 'O', Value: float64(kernel + imbal + seq + sup + sync)},
		)
	}
	b.WriteString(chart.String())
	b.WriteString("\n")
	b.WriteString(breakdown.String())
	return b.String(), nil
}

// accessMapWorkloads are the three applications plotted in Figures 3 and 5.
var accessMapWorkloads = []string{"tomcatv", "swim", "hydro2d"}

// Fig3 plots which virtual pages each CPU touches during the steady
// state, in virtual-address order — the sparse patterns that defeat page
// coloring (§4.2).
func Fig3(o ExpOptions) (string, error) {
	return accessMaps(o, false)
}

// Fig5 plots the same accesses in CDPC's coloring order: dense per-CPU
// runs (§5.2).
func Fig5(o ExpOptions) (string, error) {
	return accessMaps(o, true)
}

func accessMaps(o ExpOptions, cdpcOrder bool) (string, error) {
	const ncpu = 16
	var b strings.Builder
	if cdpcOrder {
		b.WriteString("Figure 5 — Access patterns in CDPC coloring order (16 CPUs)\n")
	} else {
		b.WriteString("Figure 3 — Page-level access patterns, virtual-address order (16 CPUs, page coloring)\n")
	}
	b.WriteString("Each row is one CPU; each column one page; '#' = page accessed in steady state.\n\n")
	for _, name := range accessMapWorkloads {
		spec := Spec{Workload: name, Scale: o.scale(), CPUs: ncpu, Variant: CDPC}
		hints, prog, err := Hints(spec)
		if err != nil {
			return "", err
		}
		cfg := spec.Config()
		order := pageUniverse(prog, cfg.PageSize)
		if cdpcOrder {
			order = withCDPCOrder(hints.Order, order)
		}
		density := 0.0
		fmt.Fprintf(&b, "%s (%d pages, %d colors):\n", name, len(order), cfg.Colors())
		for cpu := 0; cpu < ncpu; cpu++ {
			touched := ir.TouchedPages(prog, ncpu, cpu, cfg.PageSize)
			row := make([]byte, len(order))
			for i := range row {
				row[i] = '.'
			}
			lo, hi, n := len(order), -1, 0
			for i, vpn := range order {
				if !touched[vpn] {
					continue
				}
				row[i] = '#'
				if i < lo {
					lo = i
				}
				if i > hi {
					hi = i
				}
				n++
			}
			if n > 0 {
				density += float64(n) / float64(hi-lo+1)
			}
			fmt.Fprintf(&b, "  cpu%02d |%s|\n", cpu, condense(row, 96))
		}
		fmt.Fprintf(&b, "  mean per-CPU density (pages touched / span): %.2f\n\n", density/ncpu)
	}
	return b.String(), nil
}

// pageUniverse lists all data pages in virtual order.
func pageUniverse(prog *ir.Program, pageSize int) []uint64 {
	return ascendingDataPages(prog, pageSize)
}

// withCDPCOrder places hinted pages first in hint order, then any
// remaining (unhinted) pages in virtual order.
func withCDPCOrder(hintOrder, universe []uint64) []uint64 {
	seen := map[uint64]bool{}
	out := make([]uint64, 0, len(universe))
	for _, vpn := range hintOrder {
		out = append(out, vpn)
		seen[vpn] = true
	}
	for _, vpn := range universe {
		if !seen[vpn] {
			out = append(out, vpn)
		}
	}
	return out
}

// condense shrinks a 0/1 row to the given width, marking a bucket when
// any page in it was touched.
func condense(row []byte, width int) string {
	if len(row) <= width {
		return string(row)
	}
	out := make([]byte, width)
	for i := range out {
		out[i] = '.'
		lo := i * len(row) / width
		hi := (i + 1) * len(row) / width
		for _, c := range row[lo:hi] {
			if c == '#' {
				out[i] = '#'
				break
			}
		}
	}
	return string(out)
}

// fig6Workloads excludes apsi and fpppp, which the paper omits because
// CDPC has no effect on them.
func fig6Workloads(o ExpOptions) []string {
	var names []string
	for _, n := range o.workloadNames() {
		if n == "apsi" || n == "fpppp" {
			continue
		}
		names = append(names, n)
	}
	return names
}

// Fig6 compares page coloring with CDPC on the base machine.
func Fig6(o ExpOptions) (string, error) {
	var b strings.Builder
	b.WriteString("Figure 6 — Impact of CDPC (direct-mapped 1MB-class cache)\n")
	b.WriteString("Left bar: page coloring; right bar: CDPC. E=exec M=mem O=overhead\n\n")
	var specs []Spec
	for _, name := range fig6Workloads(o) {
		for _, p := range o.cpuCounts() {
			specs = append(specs,
				Spec{Workload: name, Scale: o.scale(), CPUs: p, Variant: PageColoring},
				Spec{Workload: name, Scale: o.scale(), CPUs: p, Variant: CDPC})
		}
	}
	o.warm(specs)

	t := textplot.NewTable("workload", "cpus", "coloring(Mcyc)", "cdpc(Mcyc)", "speedup", "repl-stall-cut%", "conflict-cut%")
	chart := textplot.NewBarChart(48)
	for i := 0; i < len(specs); i += 2 {
		name, p := specs[i].Workload, specs[i].CPUs
		base, err := o.run(specs[i])
		if err != nil {
			return "", err
		}
		cdpc, err := o.run(specs[i+1])
		if err != nil {
			return "", err
		}
		addComparisonBars(chart, name, p, base, cdpc)
		t.Row(name, p,
			fmt.Sprintf("%.1f", float64(base.CombinedCycles())/1e6),
			fmt.Sprintf("%.1f", float64(cdpc.CombinedCycles())/1e6),
			fmt.Sprintf("%.2f", cdpc.Speedup(base)),
			cutPct(base.Total((*sim.CPUStats).ReplacementStall), cdpc.Total((*sim.CPUStats).ReplacementStall)),
			cutPct(base.Total(func(s *sim.CPUStats) uint64 { return s.ConflictMisses }),
				cdpc.Total(func(s *sim.CPUStats) uint64 { return s.ConflictMisses })))
	}
	b.WriteString(chart.String())
	b.WriteString("\n")
	b.WriteString(t.String())
	return b.String(), nil
}

func addComparisonBars(chart *textplot.BarChart, name string, p int, results ...*sim.Result) {
	for _, res := range results {
		exec := res.Total(func(s *sim.CPUStats) uint64 { return s.ExecCycles })
		mem := res.Total((*sim.CPUStats).MemStallCycles)
		over := res.Total((*sim.CPUStats).OverheadCycles)
		chart.Add(fmt.Sprintf("%s p=%-2d %s", name, p, res.Policy), fmt.Sprintf("%.0f Mcyc", float64(res.CombinedCycles())/1e6),
			textplot.Segment{Glyph: 'E', Value: float64(exec)},
			textplot.Segment{Glyph: 'M', Value: float64(mem)},
			textplot.Segment{Glyph: 'O', Value: float64(over)},
		)
	}
}

func cutPct(before, after uint64) string {
	if before == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.0f", 100*(1-float64(after)/float64(before)))
}

// fig7Workloads are the five applications the paper carries into the
// cache-configuration study.
func fig7Workloads(o ExpOptions) []string {
	if o.Quick {
		return []string{"tomcatv", "applu"}
	}
	return []string{"tomcatv", "swim", "hydro2d", "su2cor", "applu"}
}

// Fig7 repeats the CDPC comparison on a two-way set-associative cache
// and on a 4MB-class direct-mapped cache.
func Fig7(o ExpOptions) (string, error) {
	var b strings.Builder
	b.WriteString("Figure 7 — CDPC with a 2-way associative cache and with a 4MB-class cache\n\n")
	base := arch.Base(1, o.scale())
	configs := []struct {
		label string
		geom  arch.CacheGeometry
	}{
		{"1MB-class 2-way", arch.CacheGeometry{Size: base.L2.Size, LineSize: base.L2.LineSize, Assoc: 2}},
		{"4MB-class DM", arch.CacheGeometry{Size: base.L2.Size * 4, LineSize: base.L2.LineSize, Assoc: 1}},
	}
	type cell struct {
		label      string
		base, cdpc Spec
	}
	var cells []cell
	for i := range configs {
		geom := &configs[i].geom
		for _, name := range fig7Workloads(o) {
			for _, p := range o.cpuCounts() {
				cells = append(cells, cell{
					label: configs[i].label,
					base:  Spec{Workload: name, Scale: o.scale(), CPUs: p, Variant: PageColoring, L2Override: geom},
					cdpc:  Spec{Workload: name, Scale: o.scale(), CPUs: p, Variant: CDPC, L2Override: geom},
				})
			}
		}
	}
	specs := make([]Spec, 0, 2*len(cells))
	for _, c := range cells {
		specs = append(specs, c.base, c.cdpc)
	}
	o.warm(specs)

	t := textplot.NewTable("config", "workload", "cpus", "coloring(Mcyc)", "cdpc(Mcyc)", "speedup")
	for _, c := range cells {
		baseRes, err := o.run(c.base)
		if err != nil {
			return "", err
		}
		cdpcRes, err := o.run(c.cdpc)
		if err != nil {
			return "", err
		}
		t.Row(c.label, c.base.Workload, c.base.CPUs,
			fmt.Sprintf("%.1f", float64(baseRes.CombinedCycles())/1e6),
			fmt.Sprintf("%.1f", float64(cdpcRes.CombinedCycles())/1e6),
			fmt.Sprintf("%.2f", cdpcRes.Speedup(baseRes)))
	}
	b.WriteString(t.String())
	return b.String(), nil
}

// Fig8 combines CDPC with compiler-inserted prefetching, including the
// §6.2 complementarity decomposition.
func Fig8(o ExpOptions) (string, error) {
	var b strings.Builder
	b.WriteString("Figure 8 — CDPC combined with prefetching (base machine)\n\n")
	var specs []Spec
	for _, name := range fig7Workloads(o) {
		for _, p := range o.cpuCounts() {
			specs = append(specs,
				Spec{Workload: name, Scale: o.scale(), CPUs: p, Variant: PageColoring},
				Spec{Workload: name, Scale: o.scale(), CPUs: p, Variant: CDPC},
				Spec{Workload: name, Scale: o.scale(), CPUs: p, Variant: PageColoring, Prefetch: true},
				Spec{Workload: name, Scale: o.scale(), CPUs: p, Variant: CDPC, Prefetch: true})
		}
	}
	o.warm(specs)

	t := textplot.NewTable("workload", "cpus", "coloring", "cdpc", "pf-only", "cdpc+pf", "speedup(cdpc)", "speedup(pf)", "speedup(both)")
	for i := 0; i < len(specs); i += 4 {
		rs := make([]*sim.Result, 4)
		for j := range rs {
			r, err := o.run(specs[i+j])
			if err != nil {
				return "", err
			}
			rs[j] = r
		}
		mc := func(r *sim.Result) string { return fmt.Sprintf("%.1f", float64(r.CombinedCycles())/1e6) }
		t.Row(specs[i].Workload, specs[i].CPUs, mc(rs[0]), mc(rs[1]), mc(rs[2]), mc(rs[3]),
			fmt.Sprintf("%.2f", rs[1].Speedup(rs[0])),
			fmt.Sprintf("%.2f", rs[2].Speedup(rs[0])),
			fmt.Sprintf("%.2f", rs[3].Speedup(rs[0])))
	}
	b.WriteString(t.String())
	return b.String(), nil
}

// alphaVariants are the four bars of Figure 9. Both page coloring and
// CDPC are realized by touching pages in order over the native
// bin-hopping kernel, as on the real Digital UNIX system (§7).
func alphaVariants() []Variant {
	return []Variant{BinHopping, ColoringTouch, CDPCTouch, BinHoppingUnaligned}
}

// Fig9 validates the technique on the AlphaServer configuration.
func Fig9(o ExpOptions) (string, error) {
	var b strings.Builder
	b.WriteString("Figure 9 — AlphaServer-class validation (4MB-class direct-mapped cache)\n")
	b.WriteString("Both coloring and CDPC are emulated by touch ordering over bin hopping, as on Digital UNIX.\n\n")
	var specs []Spec
	for _, name := range o.workloadNames() {
		for _, p := range o.alphaCPUCounts() {
			for _, v := range alphaVariants() {
				specs = append(specs, Spec{Workload: name, Scale: o.scale(), CPUs: p, Machine: AlphaMachine, Variant: v})
			}
		}
	}
	o.warm(specs)

	t := textplot.NewTable("workload", "cpus", "bin-hop(Mcyc)", "coloring(Mcyc)", "cdpc(Mcyc)", "unaligned(Mcyc)", "cdpc/binhop", "cdpc/coloring")
	for _, name := range o.workloadNames() {
		for _, p := range o.alphaCPUCounts() {
			rs := map[Variant]*sim.Result{}
			for _, v := range alphaVariants() {
				r, err := o.run(Spec{Workload: name, Scale: o.scale(), CPUs: p, Machine: AlphaMachine, Variant: v})
				if err != nil {
					return "", err
				}
				rs[v] = r
			}
			mc := func(v Variant) string { return fmt.Sprintf("%.1f", float64(rs[v].CombinedCycles())/1e6) }
			t.Row(name, p, mc(BinHopping), mc(ColoringTouch), mc(CDPCTouch), mc(BinHoppingUnaligned),
				fmt.Sprintf("%.2f", rs[CDPCTouch].Speedup(rs[BinHopping])),
				fmt.Sprintf("%.2f", rs[CDPCTouch].Speedup(rs[ColoringTouch])))
		}
	}
	b.WriteString(t.String())
	return b.String(), nil
}

// anchorRating is the uniprocessor SPEC95fp-style rating assigned to the
// best uniprocessor time of each workload; the paper's SPEC95fp rating
// under bin hopping implies a uniprocessor geometric mean near 13.7
// (57.4 ÷ 4.2 speedup). Absolute ratings are anchored, relative ones are
// measured — see EXPERIMENTS.md.
const anchorRating = 13.7

// SpecRating computes the anchored rating of a run against the best
// uniprocessor result for the same workload.
func SpecRating(uniBest, r *sim.Result) float64 {
	if r.WallCycles == 0 {
		return 0
	}
	return anchorRating * float64(uniBest.WallCycles) / float64(r.WallCycles)
}

// GeoMean returns the geometric mean of xs.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// Table2 reports per-workload times and the SPEC95fp-style rating at 8
// CPUs for bin hopping, page coloring and CDPC on the AlphaServer
// configuration, plus the headline percentage improvements.
func Table2(o ExpOptions) (string, error) {
	cpus := 8
	if o.Quick {
		cpus = 4
	}
	variants := []Variant{BinHopping, ColoringTouch, CDPCTouch}
	names := o.workloadNames()

	var specs []Spec
	for _, name := range names {
		for _, v := range variants {
			specs = append(specs,
				Spec{Workload: name, Scale: o.scale(), CPUs: 1, Machine: AlphaMachine, Variant: v},
				Spec{Workload: name, Scale: o.scale(), CPUs: cpus, Machine: AlphaMachine, Variant: v})
		}
	}
	o.warm(specs)

	uniBest := map[string]*sim.Result{}
	results := map[string]map[Variant]*sim.Result{}
	for _, name := range names {
		results[name] = map[Variant]*sim.Result{}
		for _, v := range variants {
			uni, err := o.run(Spec{Workload: name, Scale: o.scale(), CPUs: 1, Machine: AlphaMachine, Variant: v})
			if err != nil {
				return "", err
			}
			if b, ok := uniBest[name]; !ok || uni.WallCycles < b.WallCycles {
				uniBest[name] = uni
			}
			r, err := o.run(Spec{Workload: name, Scale: o.scale(), CPUs: cpus, Machine: AlphaMachine, Variant: v})
			if err != nil {
				return "", err
			}
			results[name][v] = r
		}
	}

	t := textplot.NewTable("Benchmark", "BinHop(Mcyc)", "Coloring(Mcyc)", "CDPC(Mcyc)", "BinHop ratio", "Coloring ratio", "CDPC ratio")
	ratings := map[Variant][]float64{}
	for _, name := range names {
		row := []interface{}{name}
		for _, v := range variants {
			row = append(row, fmt.Sprintf("%.1f", float64(results[name][v].WallCycles)/1e6))
		}
		for _, v := range variants {
			rating := SpecRating(uniBest[name], results[name][v])
			ratings[v] = append(ratings[v], rating)
			row = append(row, fmt.Sprintf("%.1f", rating))
		}
		t.Row(row...)
	}
	gm := map[Variant]float64{}
	for _, v := range variants {
		gm[v] = GeoMean(ratings[v])
	}
	t.Row("SPEC95fp (geomean)", "", "", "",
		fmt.Sprintf("%.1f", gm[BinHopping]), fmt.Sprintf("%.1f", gm[ColoringTouch]), fmt.Sprintf("%.1f", gm[CDPCTouch]))

	var b strings.Builder
	fmt.Fprintf(&b, "Table 2 — Execution time and SPEC95fp-style rating (%d CPUs, AlphaServer config)\n\n", cpus)
	b.WriteString(t.String())
	fmt.Fprintf(&b, "\nCDPC over bin hopping: %+.0f%%   (paper: +8%%)\n", 100*(gm[CDPCTouch]/gm[BinHopping]-1))
	fmt.Fprintf(&b, "CDPC over page coloring: %+.0f%%  (paper: +20%%)\n", 100*(gm[CDPCTouch]/gm[ColoringTouch]-1))
	return b.String(), nil
}

// SortedExperimentIDs returns all experiment ids.
func SortedExperimentIDs() []string {
	var ids []string
	for _, e := range Experiments() {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return ids
}
