package harness

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/workloads"
)

// TestGoldenDefaultTopology is the byte-identical guard for the
// generalized-topology refactor: every workload, run on the default
// (implicit) topology, must reproduce exactly the counter fingerprints
// recorded from the pre-refactor two-level simulator. The fingerprint
// covers the wall clock, every per-CPU miss class and cycle bucket
// total, bus occupancy and the fault counters — any change to event
// order, latency charging or placement shows up in at least one of
// them (memory jitter alone cascades a single reordered miss into the
// wall clock).
//
// Regenerate with WRITE_GOLDEN=1 go test -run TestGoldenDefaultTopology
// ./internal/harness — but only after deliberately changing simulator
// behavior; the file is the contract that the default path did NOT
// change.
func TestGoldenDefaultTopology(t *testing.T) {
	if testing.Short() {
		t.Skip("golden sweep simulates every workload; skipped in -short")
	}
	path := filepath.Join("testdata", "golden_default.json")
	got := map[string]string{}
	for _, w := range workloads.Names() {
		res, err := Run(Spec{Workload: w, CPUs: 4, Scale: 32})
		if err != nil {
			t.Fatalf("%s: %v", w, err)
		}
		got[w] = fingerprint(res)
	}
	// CDPC exercises the hint pipeline end to end; one workload suffices
	// since hints only change placement inputs, not simulator mechanics.
	res, err := Run(Spec{Workload: "tomcatv", CPUs: 4, Scale: 32, Variant: CDPC})
	if err != nil {
		t.Fatalf("tomcatv/cdpc: %v", err)
	}
	got["tomcatv/cdpc"] = fingerprint(res)

	if os.Getenv("WRITE_GOLDEN") != "" {
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", path)
		return
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden file (regenerate with WRITE_GOLDEN=1): %v", err)
	}
	want := map[string]string{}
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	for name, wf := range want {
		if got[name] != wf {
			t.Errorf("%s: default topology diverged from pre-refactor result\n got %s\nwant %s", name, got[name], wf)
		}
	}
	for name := range got {
		if _, ok := want[name]; !ok {
			t.Errorf("%s: missing from golden file; regenerate with WRITE_GOLDEN=1", name)
		}
	}
}

// fingerprint renders the counters that pin a Result byte-for-byte.
// Fields are enumerated explicitly (not reflected) so adding new
// counters to CPUStats later cannot silently invalidate the file.
func fingerprint(r *sim.Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "wall=%d bus=%d/%d/%d faults=%d hinted=%d honored=%d",
		r.WallCycles, r.Bus.DataCycles, r.Bus.WritebackCycles, r.Bus.UpgradeCycles,
		r.PageFaults, r.HintedFaults, r.HonoredHints)
	for i := range r.PerCPU {
		s := &r.PerCPU[i]
		fmt.Fprintf(&b, " cpu%d=[inst=%d exec=%d l2=%d cold=%d conf=%d cap=%d true=%d false=%d instm=%d onchip=%d kern=%d sync=%d imb=%d seq=%d tlb=%d pf=%d up=%d rem=%d bq=%d wb=%d]",
			i, s.Instructions, s.ExecCycles, s.L2Misses, s.ColdMisses, s.ConflictMisses,
			s.CapacityMisses, s.TrueShareMisses, s.FalseShareMisses, s.InstMisses,
			s.StallOnChip, s.KernelCycles, s.SyncCycles, s.ImbalanceCycles, s.SequentialCycles,
			s.TLBMisses, s.PageFaults, s.Upgrades, s.RemoteSupplies, s.BusQueueCycles, s.StallWriteBuffer)
	}
	return b.String()
}
