package harness

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/vm"
)

// ExtPressure studies graceful degradation under memory pressure (§5
// step 3): hints are suggestions, and when the preferred color's frame
// pool is empty the fault falls back to another color. As more colors
// are exhausted, the honored fraction falls and CDPC's advantage shrinks
// toward the page-coloring baseline — but never below it, because
// unhonored hints simply revert to the default policy's behaviour.
func ExtPressure(o ExpOptions) (string, error) {
	name := "tomcatv"
	cpus := 16
	if o.Quick {
		cpus = 8
	}

	var b strings.Builder
	b.WriteString("Extension — CDPC under memory pressure (§5 step 3: hints are hints)\n")
	fmt.Fprintf(&b, "%s on %d CPUs; N of the machine's colors have empty frame pools.\n\n", name, cpus)
	fmt.Fprintf(&b, "%-18s %12s %10s %12s\n", "exhausted colors", "wall(Mcyc)", "honored%", "vs coloring")

	// Only the baseline is a standard Spec; the pressured runs below need
	// raw simulator access (ExhaustColors) and stay serial.
	baseline, err := o.run(Spec{Workload: name, Scale: o.Scale, CPUs: cpus, Variant: PageColoring})
	if err != nil {
		return "", err
	}

	spec := Spec{Workload: name, Scale: o.Scale, CPUs: cpus, Variant: CDPC}
	cfg := spec.Config()
	fractions := []int{0, 4, 8, 12}
	for _, n := range fractions {
		prog, sum, _, err := Prepare(spec)
		if err != nil {
			return "", err
		}
		hints, err := core.ComputeHints(prog, sum, core.Params{
			NumCPUs: cfg.NumCPUs, NumColors: cfg.Colors(), PageSize: cfg.PageSize,
		})
		if err != nil {
			return "", err
		}
		var exhausted []int
		for c := 0; c < n && c < cfg.Colors(); c++ {
			exhausted = append(exhausted, c)
		}
		m, err := sim.New(sim.Options{
			Config:        cfg,
			Policy:        vm.PageColoring{Colors: cfg.Colors()},
			Hints:         hints.Colors,
			ExhaustColors: exhausted,
		})
		if err != nil {
			return "", err
		}
		res, err := m.Run(prog)
		if err != nil {
			return "", err
		}
		if err := o.audit(res); err != nil {
			return "", fmt.Errorf("pressure run (%d exhausted colors): %w", n, err)
		}
		honored := 0.0
		if res.HintedFaults > 0 {
			honored = 100 * float64(res.HonoredHints) / float64(res.HintedFaults)
		}
		fmt.Fprintf(&b, "%-18d %12.1f %9.0f%% %12.2f\n",
			n, float64(res.WallCycles)/1e6, honored,
			res.Speedup(baseline))
	}
	b.WriteString("\nCDPC degrades gracefully: the win shrinks as pools empty, and a fully\n")
	b.WriteString("pressured system simply behaves like the default policy — the property\n")
	b.WriteString("that makes the hint interface safe to integrate in a commercial OS (§5.3).\n")
	return b.String(), nil
}
