package harness

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/sim"
)

// samplingErrorBudget is the acceptance bound on the sampled-vs-full
// MCPI deviation: every workload must reproduce the full simulator's
// MCPI to within 2%. EXPERIMENTS.md records the measured per-workload
// errors; TestSampledFidelity and the verify.sh smoke run assert the
// bound.
const samplingErrorBudget = 0.02

// ExtSampling validates the phase-sampled execution mode against the
// full simulator: for every workload it runs both fidelities on the
// same spec and reports the MCPI deviation, the detailed-iteration
// coverage, and the off-chip miss totals. The sampled run must land
// within the 2% error budget on every row; a violation fails the
// experiment rather than printing a quietly wrong table.
func ExtSampling(o ExpOptions) (string, error) {
	names := o.workloadNames()
	const cpus = 2

	var specs []Spec
	for _, name := range names {
		s := Spec{Workload: name, Scale: o.Scale, CPUs: cpus}
		specs = append(specs, s, sampledCopy(s))
	}
	o.warmRaw(specs)

	var b strings.Builder
	b.WriteString("Extension — phase-sampled execution vs full fidelity\n")
	fmt.Fprintf(&b, "Representative windows with functional warm-up on %d CPUs; budget %.0f%% MCPI error:\n\n", cpus, 100*samplingErrorBudget)
	fmt.Fprintf(&b, "%-8s %10s %10s %8s %12s %12s %10s\n",
		"workload", "full MCPI", "samp MCPI", "err%", "full misses", "samp misses", "detailed%")

	worst := 0.0
	worstName := ""
	for _, name := range names {
		s := Spec{Workload: name, Scale: o.Scale, CPUs: cpus}
		full, err := o.runRaw(s)
		if err != nil {
			return "", err
		}
		sampled, err := o.runRaw(sampledCopy(s))
		if err != nil {
			return "", err
		}
		if sampled.Fidelity != sim.FidelitySampled {
			return "", fmt.Errorf("harness: %s: sampled run reported fidelity %q", name, sampled.Fidelity)
		}
		relErr := math.Abs(sampled.MCPI()-full.MCPI()) / full.MCPI()
		if relErr > worst {
			worst, worstName = relErr, name
		}
		misses := func(r *sim.Result) uint64 {
			return r.Total(func(cs *sim.CPUStats) uint64 { return cs.L2Misses })
		}
		coverage := 100 * float64(sampled.SampledIters) / float64(sampled.RepresentedIters)
		fmt.Fprintf(&b, "%-8s %10.4f %10.4f %7.2f%% %12d %12d %9.1f%%\n",
			name, full.MCPI(), sampled.MCPI(), 100*relErr, misses(full), misses(sampled), coverage)
		if relErr > samplingErrorBudget {
			return "", fmt.Errorf("harness: %s: sampled MCPI error %.2f%% exceeds the %.0f%% budget",
				name, 100*relErr, 100*samplingErrorBudget)
		}
	}
	fmt.Fprintf(&b, "\nworst case %.2f%% (%s), budget %.0f%%. Fault counts match full fidelity\n",
		100*worst, worstName, 100*samplingErrorBudget)
	b.WriteString("exactly (first-touch order is replayed at page granularity); miss-class\n")
	b.WriteString("splits shift toward cold (windows see cold what steady state would re-hit).\n")
	return b.String(), nil
}

// sampledCopy returns the spec with sampling requested — the experiment
// compares fidelities directly, so it bypasses the ExpOptions.Sampled
// mapping and pins each run's mode explicitly.
func sampledCopy(s Spec) Spec {
	s.Sampled = true
	return s
}

// runRaw executes a spec without the ExpOptions.Sampled rewrite (the
// fidelity comparison needs both modes regardless of the global flag),
// still honoring the scheduler and audit settings.
func (o ExpOptions) runRaw(s Spec) (*sim.Result, error) {
	o.Sampled = false
	return o.run(s)
}

// warmRaw is warm without the fidelity rewrite, for the same reason.
func (o ExpOptions) warmRaw(specs []Spec) {
	o.Sampled = false
	o.warm(specs)
}
