package harness

import (
	"strings"
	"testing"
)

// extOpts shrinks the extension studies to test size: quick sweeps at
// 1/64 scale keep every run tens of milliseconds.
func extOpts() ExpOptions {
	return ExpOptions{Quick: true, Scale: 64}
}

func TestExtDynamicReportsAllPolicies(t *testing.T) {
	out, err := ExtDynamic(extOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"dynamic page recoloring vs CDPC",
		"coloring(M)", "dynamic(M)", "cdpc(M)", "recolors",
		"tomcatv", // the quick workload
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
	// The table body must contain a data row: workload name followed by
	// the CPU count used in quick mode.
	if !strings.Contains(out, "tomcatv  8") {
		t.Errorf("no tomcatv/8-cpu data row in:\n%s", out)
	}
}

func TestExtDynamicSchedulerOutputIdentical(t *testing.T) {
	serial, err := ExtDynamic(extOpts())
	if err != nil {
		t.Fatal(err)
	}
	o := extOpts()
	o.Runner = NewScheduler(4)
	o.Audit = true
	pooled, err := ExtDynamic(o)
	if err != nil {
		t.Fatal(err)
	}
	if serial != pooled {
		t.Error("scheduler run not byte-identical to serial run")
	}
}

func TestExtPaddingShowsPaddingContrast(t *testing.T) {
	out, err := ExtPadding(extOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"padding baseline vs the OS page mapping policy",
		"coloring(M)", "+padding(M)", "binhop(M)", "cdpc(M)",
		"pad/colr", "pad/binhop",
		"tomcatv",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestExtPaddingWithSchedulerAndAudit(t *testing.T) {
	o := extOpts()
	o.Runner = NewScheduler(4)
	o.Audit = true
	out, err := ExtPadding(o)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "tomcatv") {
		t.Errorf("no data row in:\n%s", out)
	}
	if runs := o.Runner.Runs(); runs == 0 {
		t.Error("scheduler executed no runs")
	}
}
