package harness

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/sim"
	"repro/internal/vm"
)

// ExtPhases validates the representative-execution-window method of
// §3.2: different occurrences of each steady-state phase must behave
// alike, or weighting one occurrence by the phase's count would be
// unsound. The paper found per-phase standard deviations below 1% of the
// mean for instructions and miss rate in all benchmarks but wave5.
func ExtPhases(o ExpOptions) (string, error) {
	names := []string{"tomcatv", "turb3d", "swim", "wave5"}
	if o.Quick {
		names = names[:2]
	}
	const repeats = 4
	cpus := 8

	var b strings.Builder
	b.WriteString("Extension — representative-execution-window validation (§3.2)\n")
	fmt.Fprintf(&b, "Each steady-state phase executed %d times on %d CPUs; per-phase variation:\n\n", repeats, cpus)
	fmt.Fprintf(&b, "%-8s %-12s %6s %16s %14s %14s\n", "workload", "phase", "occurs", "mean inst (M)", "inst stddev%", "miss stddev%")

	for _, name := range names {
		prog, _, cfg, err := Prepare(Spec{Workload: name, Scale: o.Scale, CPUs: cpus})
		if err != nil {
			return "", err
		}
		m, err := sim.New(sim.Options{Config: cfg, Policy: vm.PageColoring{Colors: cfg.Colors()}})
		if err != nil {
			return "", err
		}
		samples, err := m.SamplePhases(prog, repeats)
		if err != nil {
			return "", err
		}
		for pi, phaseSamples := range samples {
			var inst, miss []float64
			for _, s := range phaseSamples {
				inst = append(inst, float64(s.Instructions))
				miss = append(miss, float64(s.L2Misses))
			}
			mi, cvI := meanCV(inst)
			_, cvM := meanCV(miss)
			fmt.Fprintf(&b, "%-8s %-12s %6d %16.2f %13.2f%% %13.2f%%\n",
				name, phaseSamples[0].Phase, prog.Phases[pi].Occurrences, mi/1e6, 100*cvI, 100*cvM)
		}
	}
	b.WriteString("\npaper: stddev < 1% of mean for instructions and miss rate in all but one\n")
	b.WriteString("case (one wave5 phase varied 4% in instructions, 30% in misses; our wave5\n")
	b.WriteString("analog is deterministic, so only cache-state carryover variation appears).\n")
	return b.String(), nil
}

// meanCV returns the mean and the coefficient of variation (stddev/mean).
func meanCV(xs []float64) (mean, cv float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	if mean == 0 {
		return 0, 0
	}
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	return mean, math.Sqrt(ss/float64(len(xs))) / mean
}
