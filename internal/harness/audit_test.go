package harness

import (
	"testing"

	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// TestAuditMatrix runs a bounded workload x variant seed matrix and
// checks the conservation invariants (cycles, misses, bus occupancy)
// hold on every cell. Scale 32 keeps each simulation small; the shared
// scheduler keeps program builds to one per workload.
func TestAuditMatrix(t *testing.T) {
	names := workloads.Names()
	variants := Variants()
	cpuCounts := []int{1, 4}
	if testing.Short() {
		names = []string{"tomcatv", "fpppp"}
		cpuCounts = []int{4}
	}

	sc := NewScheduler(0)
	for _, w := range names {
		for _, v := range variants {
			for _, n := range cpuCounts {
				spec := Spec{Workload: w, Scale: 32, CPUs: n, Variant: v}
				res, err := sc.Run(spec)
				if err != nil {
					t.Fatalf("%s/%s on %d cpus: %v", w, v, n, err)
				}
				if vs := res.Audit(); len(vs) != 0 {
					t.Errorf("%s/%s on %d cpus: %v", w, v, n, obs.AuditError(vs))
				}
			}
		}
	}
}

// TestSchedulerBypassesMemoForInstrumentedSpecs: an instrumented spec
// must fill its collector even when an identical bare spec was already
// memoized, and the instrumented result must equal the memoized one.
func TestSchedulerBypassesMemoForInstrumentedSpecs(t *testing.T) {
	sc := NewScheduler(0)
	spec := Spec{Workload: "fpppp", Scale: 32, CPUs: 2, Variant: PageColoring}
	bare, err := sc.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	runs := sc.Runs()

	spec.Obs = obs.NewCollector(obs.Options{})
	observed, err := sc.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Runs() != runs {
		t.Errorf("instrumented run entered the memo cache: %d -> %d entries", runs, sc.Runs())
	}
	total := uint64(0)
	for _, cc := range spec.Obs.PerColor() {
		total += cc.Total()
	}
	if total == 0 {
		t.Error("collector not filled: memoized result substituted for an instrumented run")
	}
	if bare.WallCycles != observed.WallCycles || bare.MCPI() != observed.MCPI() {
		t.Errorf("instrumented result diverged: wall %d vs %d", bare.WallCycles, observed.WallCycles)
	}
}

// TestConflictAttributionTomcatv is the Figure-4 acceptance check: under
// naive page coloring the tomcatv stencil takes heavy conflict misses,
// and compiler-directed coloring eliminates most of them. The per-color
// attribution must both see the conflicts and agree with the Result's
// own counters.
func TestConflictAttributionTomcatv(t *testing.T) {
	conflicts := func(v Variant) (uint64, *sim.Result) {
		col := obs.NewCollector(obs.Options{})
		res, err := Run(Spec{Workload: "tomcatv", CPUs: 8, Variant: v, Obs: col})
		if err != nil {
			t.Fatal(err)
		}
		var n uint64
		for _, cc := range col.PerColor() {
			n += cc[obs.Conflict]
		}
		// Attribution counts each simulated miss once; the Result weights
		// phases by their occurrence count. tomcatv is a single phase, so
		// the ratio must be exactly that weight.
		want := res.Total(func(s *sim.CPUStats) uint64 { return s.ConflictMisses })
		switch {
		case n == 0 && want != 0:
			t.Errorf("%s: result has %d conflict misses but attribution saw none", v, want)
		case n != 0 && want%n != 0:
			t.Errorf("%s: attributed %d conflict misses, result has %d (not an occurrence multiple)", v, n, want)
		}
		return n, res
	}

	pc, _ := conflicts(PageColoring)
	cdpc, _ := conflicts(CDPC)
	if pc == 0 {
		t.Fatal("page coloring shows no conflict misses on tomcatv")
	}
	if cdpc*2 >= pc {
		t.Errorf("CDPC should eliminate most conflicts: page-coloring %d, cdpc %d", pc, cdpc)
	}
}
