package harness

import (
	"reflect"
	"strings"
	"testing"
)

// schedulerSpecs is a mixed workload set covering every program-cache
// class (default layout, unaligned, externally padded, prefetch) plus
// duplicate entries, so warming exercises both memo coalescing and the
// shared compiled-program path.
func schedulerSpecs() []Spec {
	return []Spec{
		{Workload: "tomcatv", CPUs: 1, Variant: PageColoring},
		{Workload: "tomcatv", CPUs: 2, Variant: CDPC},
		{Workload: "tomcatv", CPUs: 2, Variant: CDPC}, // duplicate: must coalesce
		{Workload: "swim", CPUs: 2, Variant: BinHopping},
		{Workload: "swim", CPUs: 2, Variant: BinHoppingUnaligned},
		{Workload: "swim", CPUs: 2, Variant: PaddedColoring},
		{Workload: "applu", CPUs: 1, Variant: CDPC, Prefetch: true},
		{Workload: "applu", CPUs: 2, Machine: AlphaMachine, Variant: CDPCTouch},
	}
}

// TestSchedulerMatchesSerial is the determinism regression test: every
// spec run through the parallel scheduler (twice) must produce a Result
// identical field-for-field to a fresh serial Run.
func TestSchedulerMatchesSerial(t *testing.T) {
	specs := schedulerSpecs()
	sched := NewScheduler(4)
	sched.Warm(specs)

	for _, s := range specs {
		serial, err := Run(s)
		if err != nil {
			t.Fatalf("serial Run(%+v): %v", s, err)
		}
		pooled, err := sched.Run(s)
		if err != nil {
			t.Fatalf("scheduler Run(%+v): %v", s, err)
		}
		if !reflect.DeepEqual(serial, pooled) {
			t.Errorf("scheduler result diverges from serial for %s/%s p=%d:\nserial: %+v\npooled: %+v",
				s.Workload, s.Variant, s.CPUs, serial, pooled)
		}
		// And a second pass through the scheduler must return the very
		// same memoized result.
		again, err := sched.Run(s)
		if err != nil {
			t.Fatalf("second scheduler Run(%+v): %v", s, err)
		}
		if again != pooled {
			t.Errorf("memo miss on repeat Run for %s/%s p=%d", s.Workload, s.Variant, s.CPUs)
		}
	}
}

// TestSchedulerMemoizes checks that duplicate specs coalesce onto one
// simulation and that the memo is keyed on spec values, not pointers.
func TestSchedulerMemoizes(t *testing.T) {
	sched := NewScheduler(2)
	specs := schedulerSpecs()
	sched.Warm(specs)
	distinct := map[specKey]bool{}
	for _, s := range specs {
		distinct[keyOf(s)] = true
	}
	if got := sched.Runs(); got != len(distinct) {
		t.Errorf("scheduler ran %d simulations, want %d distinct", got, len(distinct))
	}

	// An L2 override spec built with a different *pointer* but the same
	// geometry must hit the memo.
	g1 := Spec{Workload: "tomcatv", CPUs: 1, Variant: PageColoring}.Config().L2
	g2 := g1
	r1, err := sched.Run(Spec{Workload: "tomcatv", CPUs: 1, Variant: PageColoring, L2Override: &g1})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := sched.Run(Spec{Workload: "tomcatv", CPUs: 1, Variant: PageColoring, L2Override: &g2})
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Error("equal-valued L2Override specs did not share a memo entry")
	}
}

// TestSchedulerSharedProgramDeterminism pins the program-cache
// guarantee: variants that share a compiled program (coloring and CDPC
// of the same workload) must behave exactly as if each had compiled its
// own, and repeated warms must not change anything.
func TestSchedulerSharedProgramDeterminism(t *testing.T) {
	specs := []Spec{
		{Workload: "hydro2d", CPUs: 2, Variant: PageColoring},
		{Workload: "hydro2d", CPUs: 2, Variant: CDPC},
		{Workload: "hydro2d", CPUs: 2, Variant: DynamicRecoloring},
	}
	sched := NewScheduler(len(specs))
	sched.Warm(specs)
	sched.Warm(specs) // idempotent
	for _, s := range specs {
		serial, err := Run(s)
		if err != nil {
			t.Fatal(err)
		}
		pooled, err := sched.Run(s)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(serial, pooled) {
			t.Errorf("shared-program run diverges for %s", s.Variant)
		}
	}
}

// TestExperimentOutputIdentical renders a full experiment serially and
// through the scheduler and requires byte-identical text.
func TestExperimentOutputIdentical(t *testing.T) {
	for _, id := range []string{"fig6", "table2"} {
		e, err := ExperimentByID(id)
		if err != nil {
			t.Fatal(err)
		}
		serial, err := e.Run(ExpOptions{Quick: true})
		if err != nil {
			t.Fatalf("%s serial: %v", id, err)
		}
		pooled, err := e.Run(ExpOptions{Quick: true, Runner: NewScheduler(4)})
		if err != nil {
			t.Fatalf("%s pooled: %v", id, err)
		}
		if serial != pooled {
			t.Errorf("%s output differs between serial and scheduled runs:\n--- serial ---\n%s\n--- pooled ---\n%s",
				id, serial, pooled)
		}
	}
}

// TestSchedulerErrorDeterminism: a bad spec must fail identically
// through the scheduler, and the error must be memoized.
func TestSchedulerErrorDeterminism(t *testing.T) {
	bad := Spec{Workload: "no-such-workload", CPUs: 1}
	_, serialErr := Run(bad)
	if serialErr == nil {
		t.Fatal("expected serial error")
	}
	sched := NewScheduler(2)
	sched.Warm([]Spec{bad}) // must not panic or surface anything
	_, err1 := sched.Run(bad)
	_, err2 := sched.Run(bad)
	if err1 == nil || err2 == nil {
		t.Fatal("expected scheduler error")
	}
	if err1.Error() != serialErr.Error() || err1 != err2 {
		t.Errorf("error not memoized deterministically: serial=%v pooled=%v, %v", serialErr, err1, err2)
	}
	if !strings.Contains(err1.Error(), "no-such-workload") {
		t.Errorf("unexpected error: %v", err1)
	}
}

// TestMemoKeyDistinguishesIsolation pins the memo-key contract for the
// color-partitioning fields: the same mix run shared, isolated, and
// isolated with different domain labels are three distinct entries,
// while domain labels without isolation still key the co-runner list.
func TestMemoKeyDistinguishesIsolation(t *testing.T) {
	base := Spec{Workload: "tomcatv", Scale: 64, CPUs: 4, Variant: CDPC,
		CoRunners: []CoRunner{{}}}

	iso := base
	iso.Isolate = true

	grouped := iso
	grouped.Domain = 1
	grouped.CoRunners = []CoRunner{{Domain: 1}}

	keys := map[specKey]string{}
	for _, tc := range []struct {
		name string
		s    Spec
	}{
		{"shared", base}, {"isolated", iso}, {"isolated-grouped", grouped},
	} {
		k := keyOf(tc.s)
		if prev, dup := keys[k]; dup {
			t.Errorf("%s and %s share a memo key", prev, tc.name)
		}
		keys[k] = tc.name
	}

	// Equal-valued specs still collide onto one entry.
	if keyOf(iso) != keyOf(iso) {
		t.Error("equal isolated specs produced different keys")
	}
}
