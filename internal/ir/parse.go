package ir

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Text program format: a line-oriented notation for writing workloads
// without Go code, consumed by the cmd/ tools (`cdpcsim -program f.cdp`).
// The grammar mirrors the IR one-to-one:
//
//	# comment
//	program NAME
//	code BYTES                       (optional instruction segment)
//	array NAME elems=N [elemsize=8] [unanalyzable]
//
//	init parallel iters=N inner=M [work=W] [sched=even|blocked[,reverse]]
//	  store NAME outer=S [inner=1] [offset=0] [wrap]
//
//	phase NAME occurs=K
//	  nest NAME parallel|sequential|suppressed iters=N inner=M [work=W]
//	       [sched=...] [tiled] [instfootprint=B]
//	    load NAME outer=S [inner=1] [offset=0] [wrap] [prefetch=D]
//	    store NAME ...
//
// Indentation is decorative; structure comes from the keywords. Parse
// reports errors with line numbers.

// Parse reads a program in the text format.
func Parse(r io.Reader) (*Program, error) {
	p := &parser{
		prog:   &Program{},
		arrays: map[string]*Array{},
	}
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if i := strings.IndexByte(text, '#'); i >= 0 {
			text = strings.TrimSpace(text[:i])
		}
		if text == "" {
			continue
		}
		if err := p.line(text); err != nil {
			return nil, fmt.Errorf("line %d: %w", line, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := p.prog.Validate(); err != nil {
		return nil, err
	}
	return p.prog, nil
}

// ParseString parses a program from a string.
func ParseString(s string) (*Program, error) { return Parse(strings.NewReader(s)) }

type parser struct {
	prog   *Program
	arrays map[string]*Array

	phase *Phase // current phase (or the init phase)
	nest  *Nest  // current nest
}

func (p *parser) line(text string) error {
	fields := strings.Fields(text)
	keyword, rest := fields[0], fields[1:]
	switch keyword {
	case "program":
		if len(rest) != 1 {
			return fmt.Errorf("program wants exactly a name")
		}
		p.prog.Name = rest[0]
		return nil
	case "code":
		if len(rest) != 1 {
			return fmt.Errorf("code wants a byte count")
		}
		n, err := strconv.Atoi(rest[0])
		if err != nil || n <= 0 {
			return fmt.Errorf("bad code size %q", rest[0])
		}
		p.prog.CodeSize = n
		return nil
	case "array":
		return p.array(rest)
	case "init":
		ph := &Phase{Name: "init", Occurrences: 1}
		p.prog.Init = ph
		p.phase = ph
		return p.nestDecl(append([]string{"first-touch"}, rest...))
	case "phase":
		return p.phaseDecl(rest)
	case "nest":
		if p.phase == nil {
			return fmt.Errorf("nest outside a phase")
		}
		return p.nestDecl(rest)
	case "load", "store":
		return p.access(keyword, rest)
	default:
		return fmt.Errorf("unknown keyword %q", keyword)
	}
}

func (p *parser) array(rest []string) error {
	if len(rest) < 2 {
		return fmt.Errorf("array wants a name and elems=N")
	}
	a := &Array{Name: rest[0], ElemSize: 8}
	for _, tok := range rest[1:] {
		key, val, hasVal := cut(tok)
		switch key {
		case "elems":
			n, err := atoiPos(val, hasVal)
			if err != nil {
				return fmt.Errorf("array %s: %w", a.Name, err)
			}
			a.Elems = n
		case "elemsize":
			n, err := atoiPos(val, hasVal)
			if err != nil {
				return fmt.Errorf("array %s: %w", a.Name, err)
			}
			a.ElemSize = n
		case "unanalyzable":
			a.Unanalyzable = true
		default:
			return fmt.Errorf("array %s: unknown attribute %q", a.Name, tok)
		}
	}
	if a.Elems <= 0 {
		return fmt.Errorf("array %s: elems required", a.Name)
	}
	if p.arrays[a.Name] != nil {
		return fmt.Errorf("duplicate array %q", a.Name)
	}
	p.arrays[a.Name] = a
	p.prog.Arrays = append(p.prog.Arrays, a)
	return nil
}

func (p *parser) phaseDecl(rest []string) error {
	if len(rest) < 1 {
		return fmt.Errorf("phase wants a name")
	}
	ph := &Phase{Name: rest[0], Occurrences: 1}
	for _, tok := range rest[1:] {
		key, val, hasVal := cut(tok)
		if key != "occurs" {
			return fmt.Errorf("phase %s: unknown attribute %q", ph.Name, tok)
		}
		n, err := atoiPos(val, hasVal)
		if err != nil {
			return fmt.Errorf("phase %s: %w", ph.Name, err)
		}
		ph.Occurrences = n
	}
	p.prog.Phases = append(p.prog.Phases, ph)
	p.phase = ph
	p.nest = nil
	return nil
}

func (p *parser) nestDecl(rest []string) error {
	if len(rest) < 2 {
		return fmt.Errorf("nest wants a name and a parallelism mode")
	}
	n := &Nest{Name: rest[0], InnerIters: 1}
	for _, tok := range rest[1:] {
		key, val, hasVal := cut(tok)
		switch key {
		case "parallel":
			n.Parallel = true
		case "sequential":
			n.Parallel = false
		case "suppressed":
			n.Parallel = true
			n.Suppressed = true
		case "tiled":
			n.Tiled = true
		case "iters":
			v, err := atoiPos(val, hasVal)
			if err != nil {
				return fmt.Errorf("nest %s: %w", n.Name, err)
			}
			n.Iterations = v
		case "inner":
			v, err := atoiPos(val, hasVal)
			if err != nil {
				return fmt.Errorf("nest %s: %w", n.Name, err)
			}
			n.InnerIters = v
		case "work":
			v, err := atoiPos(val, hasVal)
			if err != nil {
				return fmt.Errorf("nest %s: %w", n.Name, err)
			}
			n.WorkPerIter = v
		case "instfootprint":
			v, err := atoiPos(val, hasVal)
			if err != nil {
				return fmt.Errorf("nest %s: %w", n.Name, err)
			}
			n.InstFootprint = v
		case "sched":
			if !hasVal {
				return fmt.Errorf("nest %s: sched wants a value", n.Name)
			}
			sched, err := parseSched(val)
			if err != nil {
				return fmt.Errorf("nest %s: %w", n.Name, err)
			}
			n.Sched = sched
		default:
			return fmt.Errorf("nest %s: unknown attribute %q", n.Name, tok)
		}
	}
	p.phase.Nests = append(p.phase.Nests, n)
	p.nest = n
	return nil
}

func (p *parser) access(kind string, rest []string) error {
	if p.nest == nil {
		return fmt.Errorf("%s outside a nest", kind)
	}
	if len(rest) < 1 {
		return fmt.Errorf("%s wants an array name", kind)
	}
	a := p.arrays[rest[0]]
	if a == nil {
		return fmt.Errorf("%s of unknown array %q", kind, rest[0])
	}
	ac := Access{Array: a, InnerStride: 1}
	if kind == "store" {
		ac.Kind = Store
	}
	for _, tok := range rest[1:] {
		key, val, hasVal := cut(tok)
		switch key {
		case "outer":
			v, err := atoiPos(val, hasVal)
			if err != nil {
				return err
			}
			ac.OuterStride = v
		case "inner":
			v, err := atoiAny(val, hasVal)
			if err != nil {
				return err
			}
			ac.InnerStride = v
		case "offset":
			v, err := atoiAny(val, hasVal)
			if err != nil {
				return err
			}
			ac.Offset = v
		case "wrap":
			ac.Wrap = true
		case "prefetch":
			v, err := atoiAny(val, hasVal)
			if err != nil {
				return err
			}
			ac.Prefetch = true
			ac.PrefetchDistance = v
		default:
			return fmt.Errorf("%s %s: unknown attribute %q", kind, a.Name, tok)
		}
	}
	if ac.OuterStride == 0 {
		return fmt.Errorf("%s %s: outer stride is required", kind, a.Name)
	}
	p.nest.Accesses = append(p.nest.Accesses, ac)
	return nil
}

func parseSched(val string) (Schedule, error) {
	var s Schedule
	for _, part := range strings.Split(val, ",") {
		switch part {
		case "even":
			s.Kind = Even
		case "blocked":
			s.Kind = Blocked
		case "reverse":
			s.Reverse = true
		default:
			return s, fmt.Errorf("unknown sched %q", part)
		}
	}
	return s, nil
}

func cut(tok string) (key, val string, hasVal bool) {
	if i := strings.IndexByte(tok, '='); i >= 0 {
		return tok[:i], tok[i+1:], true
	}
	return tok, "", false
}

func atoiPos(val string, hasVal bool) (int, error) {
	n, err := atoiAny(val, hasVal)
	if err != nil {
		return 0, err
	}
	if n <= 0 {
		return 0, fmt.Errorf("value %q must be positive", val)
	}
	return n, nil
}

func atoiAny(val string, hasVal bool) (int, error) {
	if !hasVal {
		return 0, fmt.Errorf("missing value")
	}
	n, err := strconv.Atoi(val)
	if err != nil {
		return 0, fmt.Errorf("bad integer %q", val)
	}
	return n, nil
}

// Format renders a program in the text format; Parse(Format(p)) is
// structurally identical to p (array bases are layout products and are
// not serialized).
func Format(p *Program) string {
	var b strings.Builder
	if p.Name != "" {
		fmt.Fprintf(&b, "program %s\n", p.Name)
	}
	if p.CodeSize > 0 {
		fmt.Fprintf(&b, "code %d\n", p.CodeSize)
	}
	for _, a := range p.Arrays {
		fmt.Fprintf(&b, "array %s elems=%d", a.Name, a.Elems)
		if a.ElemSize != 8 {
			fmt.Fprintf(&b, " elemsize=%d", a.ElemSize)
		}
		if a.Unanalyzable {
			b.WriteString(" unanalyzable")
		}
		b.WriteByte('\n')
	}
	if p.Init != nil && len(p.Init.Nests) == 1 {
		n := p.Init.Nests[0]
		b.WriteString("init")
		formatNestAttrs(&b, n)
		b.WriteByte('\n')
		formatAccesses(&b, n)
	}
	for _, ph := range p.Phases {
		fmt.Fprintf(&b, "phase %s occurs=%d\n", ph.Name, ph.Occurrences)
		for _, n := range ph.Nests {
			fmt.Fprintf(&b, "  nest %s", n.Name)
			formatNestAttrs(&b, n)
			b.WriteByte('\n')
			formatAccesses(&b, n)
		}
	}
	return b.String()
}

func formatNestAttrs(b *strings.Builder, n *Nest) {
	switch {
	case n.Suppressed:
		b.WriteString(" suppressed")
	case n.Parallel:
		b.WriteString(" parallel")
	default:
		b.WriteString(" sequential")
	}
	fmt.Fprintf(b, " iters=%d inner=%d", n.Iterations, n.InnerIters)
	if n.WorkPerIter > 0 {
		fmt.Fprintf(b, " work=%d", n.WorkPerIter)
	}
	sched := []string{n.Sched.Kind.String()}
	if n.Sched.Reverse {
		sched = append(sched, "reverse")
	}
	sort.Strings(sched[1:])
	fmt.Fprintf(b, " sched=%s", strings.Join(sched, ","))
	if n.Tiled {
		b.WriteString(" tiled")
	}
	if n.InstFootprint > 0 {
		fmt.Fprintf(b, " instfootprint=%d", n.InstFootprint)
	}
}

func formatAccesses(b *strings.Builder, n *Nest) {
	for _, ac := range n.Accesses {
		kind := "load"
		if ac.Kind == Store {
			kind = "store"
		}
		fmt.Fprintf(b, "    %s %s outer=%d", kind, ac.Array.Name, ac.OuterStride)
		if ac.InnerStride != 1 {
			fmt.Fprintf(b, " inner=%d", ac.InnerStride)
		}
		if ac.Offset != 0 {
			fmt.Fprintf(b, " offset=%d", ac.Offset)
		}
		if ac.Wrap {
			b.WriteString(" wrap")
		}
		if ac.Prefetch {
			fmt.Fprintf(b, " prefetch=%d", ac.PrefetchDistance)
		}
		b.WriteByte('\n')
	}
}
