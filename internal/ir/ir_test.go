package ir

import (
	"testing"
	"testing/quick"

	"repro/internal/trace"
)

func TestScheduleBlockedSpans(t *testing.T) {
	s := Schedule{Kind: Blocked}
	// 33 iterations on 16 CPUs: applu's pathology — ceil = 3, so only 11
	// CPUs get work (§4.1: "16 processors do not execute such loops more
	// efficiently than 11").
	busy := 0
	total := 0
	for cpu := 0; cpu < 16; cpu++ {
		lo, hi := s.Span(33, 16, cpu)
		if hi > lo {
			busy++
			total += hi - lo
		}
	}
	if busy != 11 {
		t.Errorf("busy CPUs = %d, want 11", busy)
	}
	if total != 33 {
		t.Errorf("covered iterations = %d, want 33", total)
	}
}

func TestScheduleEvenSpans(t *testing.T) {
	s := Schedule{Kind: Even}
	// 10 iterations on 4 CPUs: 3,3,2,2.
	want := [][2]int{{0, 3}, {3, 6}, {6, 8}, {8, 10}}
	for cpu, w := range want {
		lo, hi := s.Span(10, 4, cpu)
		if lo != w[0] || hi != w[1] {
			t.Errorf("cpu %d span = [%d,%d), want [%d,%d)", cpu, lo, hi, w[0], w[1])
		}
	}
}

func TestScheduleReverse(t *testing.T) {
	fwd := Schedule{Kind: Even}
	rev := Schedule{Kind: Even, Reverse: true}
	for cpu := 0; cpu < 4; cpu++ {
		flo, fhi := fwd.Span(10, 4, cpu)
		rlo, rhi := rev.Span(10, 4, 3-cpu)
		if flo != rlo || fhi != rhi {
			t.Errorf("reverse mismatch at cpu %d", cpu)
		}
	}
}

func TestSchedulePartitionProperty(t *testing.T) {
	// Property: spans of all CPUs are disjoint, ordered and cover [0, n).
	f := func(n16 uint16, p8 uint8) bool {
		n := int(n16%2000) + 1
		p := int(p8%16) + 1
		for _, s := range []Schedule{{Kind: Blocked}, {Kind: Even}, {Kind: Even, Reverse: true}, {Kind: Blocked, Reverse: true}} {
			covered := 0
			spans := make([][2]int, 0, p)
			for cpu := 0; cpu < p; cpu++ {
				lo, hi := s.Span(n, p, cpu)
				if lo > hi || lo < 0 || hi > n {
					return false
				}
				covered += hi - lo
				spans = append(spans, [2]int{lo, hi})
			}
			if covered != n {
				return false
			}
			// Disjointness: sort by lo and check no overlap.
			for i := range spans {
				for j := range spans {
					if i == j || spans[i][0] == spans[i][1] || spans[j][0] == spans[j][1] {
						continue
					}
					if spans[i][0] < spans[j][1] && spans[j][0] < spans[i][1] {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSpanDegenerateInputs(t *testing.T) {
	s := Schedule{Kind: Blocked}
	if lo, hi := s.Span(10, 0, 0); lo != 0 || hi != 0 {
		t.Error("zero processors should yield empty span")
	}
	if lo, hi := s.Span(10, 4, 7); lo != 0 || hi != 0 {
		t.Error("out-of-range cpu should yield empty span")
	}
}

func TestAccessVAddrClamped(t *testing.T) {
	a := &Array{Name: "x", ElemSize: 8, Elems: 100, Base: 0x10000}
	ac := Access{Array: a, OuterStride: 10, InnerStride: 1, Offset: -5}
	if got := ac.VAddr(0, 0); got != 0x10000 {
		t.Errorf("negative element should clamp to base, got %#x", got)
	}
	ac2 := Access{Array: a, OuterStride: 10, InnerStride: 1, Offset: 5}
	if got := ac2.VAddr(99, 99); got != 0x10000+99*8 {
		t.Errorf("overflow element should clamp to last, got %#x", got)
	}
}

func testProgram() *Program {
	a := &Array{Name: "a", ElemSize: 8, Elems: 1024, Base: 0}
	b := &Array{Name: "b", ElemSize: 8, Elems: 1024, Base: 8192}
	nest := &Nest{
		Name:       "sweep",
		Parallel:   true,
		Iterations: 32,
		InnerIters: 32,
		Accesses: []Access{
			{Array: a, Kind: Load, OuterStride: 32, InnerStride: 1},
			{Array: b, Kind: Store, OuterStride: 32, InnerStride: 1},
		},
		WorkPerIter: 4,
		Sched:       Schedule{Kind: Even},
	}
	return &Program{
		Name:   "test",
		Arrays: []*Array{a, b},
		Phases: []*Phase{{Name: "main", Occurrences: 1, Nests: []*Nest{nest}}},
	}
}

func TestNestStreamRefCount(t *testing.T) {
	prog := testProgram()
	n := prog.Phases[0].Nests[0]
	// 4 CPUs, 32 iterations each with 32 inner iters and 2 accesses:
	// each CPU emits 8*32*2 = 512 refs.
	for cpu := 0; cpu < 4; cpu++ {
		if got := NestRefs(prog, n, 4, cpu); got != 512 {
			t.Errorf("cpu %d refs = %d, want 512", cpu, got)
		}
	}
}

func TestSequentialNestRunsOnMaster(t *testing.T) {
	prog := testProgram()
	n := prog.Phases[0].Nests[0]
	n.Parallel = false
	if got := NestRefs(prog, n, 4, 0); got != 2048 {
		t.Errorf("master refs = %d, want 2048", got)
	}
	for cpu := 1; cpu < 4; cpu++ {
		if got := NestRefs(prog, n, 4, cpu); got != 0 {
			t.Errorf("slave cpu %d refs = %d, want 0", cpu, got)
		}
	}
}

func TestSuppressedNestRunsOnMaster(t *testing.T) {
	prog := testProgram()
	n := prog.Phases[0].Nests[0]
	n.Suppressed = true
	if got := NestRefs(prog, n, 4, 0); got != 2048 {
		t.Errorf("master refs = %d, want 2048", got)
	}
	if got := NestRefs(prog, n, 4, 1); got != 0 {
		t.Errorf("slave refs = %d, want 0", got)
	}
}

func TestStreamAddressesAreDisjointAcrossCPUs(t *testing.T) {
	prog := testProgram()
	n := prog.Phases[0].Nests[0]
	seen := map[uint64]int{}
	var r trace.Ref
	for cpu := 0; cpu < 4; cpu++ {
		s := NestStream(prog, n, 4, cpu)
		for s.Next(&r) {
			if prev, ok := seen[r.VAddr]; ok && prev != cpu {
				t.Fatalf("address %#x touched by CPUs %d and %d", r.VAddr, prev, cpu)
			}
			seen[r.VAddr] = cpu
		}
	}
	if len(seen) != 2048 {
		t.Errorf("distinct addresses = %d, want 2048", len(seen))
	}
}

func TestWorkAttachedOncePerInnerIteration(t *testing.T) {
	prog := testProgram()
	n := prog.Phases[0].Nests[0]
	s := NestStream(prog, n, 4, 0)
	var r trace.Ref
	var work uint64
	for s.Next(&r) {
		work += uint64(r.Work)
	}
	// 8 outer * 32 inner * 4 work = 1024.
	if work != 1024 {
		t.Errorf("total work = %d, want 1024", work)
	}
}

func TestPrefetchEmissionLineCrossing(t *testing.T) {
	// With an inner stride spanning a full prefetch line (16 elems × 8 B
	// = 128 B), every inner iteration targets a new line and emits.
	prog := testProgram()
	n := prog.Phases[0].Nests[0]
	n.Accesses[0].InnerStride = 16
	n.Accesses[0].OuterStride = 16 * 32
	n.Accesses[0].Prefetch = true
	n.Accesses[0].PrefetchDistance = 8
	s := NestStream(prog, n, 4, 0)
	var r trace.Ref
	prefetches, demands := 0, 0
	for s.Next(&r) {
		switch r.Kind {
		case trace.Prefetch:
			prefetches++
		case trace.Read:
			demands++
		}
	}
	// Per outer iteration: inner j in [0,24) gets a prefetch (j+8 < 32).
	if prefetches != 8*24 {
		t.Errorf("prefetches = %d, want 192", prefetches)
	}
	if demands != 8*32 {
		t.Errorf("demand reads = %d, want 256", demands)
	}
}

func TestPrefetchEmissionOncePerLine(t *testing.T) {
	// Unit-stride stream: one prefetch per 16 elements (128-B line), not
	// one per element.
	prog := testProgram()
	n := prog.Phases[0].Nests[0]
	n.Accesses[0].Prefetch = true
	n.Accesses[0].PrefetchDistance = 8
	s := NestStream(prog, n, 1, 0)
	var r trace.Ref
	prefetches := 0
	for s.Next(&r) {
		if r.Kind == trace.Prefetch {
			prefetches++
			if e := (int(r.VAddr) - int(n.Accesses[0].Array.Base)) / 8; e%16 != 0 {
				t.Fatalf("prefetch target element %d not line-leading", e)
			}
		}
	}
	// 32 outer iterations cover 32 elements each; targets j+8 with
	// element ≡ 0 (mod 16): two per outer iteration (32·i+16 at j=16-8,
	// and 32·i+0 is never a target since j+8 ≥ 8). Expect in [32, 64].
	if prefetches == 0 || prefetches > 64 {
		t.Errorf("prefetches = %d, want one per line (≤64)", prefetches)
	}
}

func TestPrefetchTargetsFutureAddress(t *testing.T) {
	prog := testProgram()
	n := prog.Phases[0].Nests[0]
	n.Accesses[0].InnerStride = 16 // every iteration crosses a line
	n.Accesses[0].OuterStride = 16 * 32
	n.Accesses[0].Prefetch = true
	n.Accesses[0].PrefetchDistance = 4
	s := NestStream(prog, n, 1, 0)
	var r trace.Ref
	// First emitted ref is the prefetch for (i=0, j=4).
	if !s.Next(&r) || r.Kind != trace.Prefetch {
		t.Fatalf("first ref = %+v, want prefetch", r)
	}
	want := n.Accesses[0].VAddr(0, 4)
	if r.VAddr != want {
		t.Errorf("prefetch addr = %#x, want %#x", r.VAddr, want)
	}
}

func TestInstructionStream(t *testing.T) {
	prog := testProgram()
	prog.CodeBase = 1 << 30
	prog.CodeSize = 1024
	n := prog.Phases[0].Nests[0]
	n.InstFootprint = 128 // 4 I-refs per inner iteration
	s := NestStream(prog, n, 1, 0)
	var r trace.Ref
	inst := 0
	for s.Next(&r) {
		if r.Kind == trace.Inst {
			inst++
			if r.VAddr < prog.CodeBase || r.VAddr >= prog.CodeBase+uint64(prog.CodeSize) {
				t.Fatalf("inst fetch outside code segment: %#x", r.VAddr)
			}
		}
	}
	if want := 32 * 32 * 4; inst != want {
		t.Errorf("inst refs = %d, want %d", inst, want)
	}
}

func TestTouchedPagesPartition(t *testing.T) {
	prog := testProgram()
	// CPU 0 of 4 touches the first quarter of both arrays: elements
	// [0,256) of each → bytes [0,2048) of a and [8192,10240) of b.
	pages := TouchedPages(prog, 4, 0, 4096)
	if !pages[0] || !pages[2] {
		t.Errorf("expected pages 0 and 2, got %v", pages)
	}
	if pages[1] || pages[3] {
		t.Errorf("unexpected pages: %v", pages)
	}
}

func TestProgramValidate(t *testing.T) {
	prog := testProgram()
	if err := prog.Validate(); err != nil {
		t.Fatalf("valid program rejected: %v", err)
	}
	bad := testProgram()
	bad.Phases[0].Nests[0].Iterations = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero iterations accepted")
	}
	bad2 := testProgram()
	bad2.Arrays = append(bad2.Arrays, &Array{Name: "a", ElemSize: 8, Elems: 1})
	if err := bad2.Validate(); err == nil {
		t.Error("duplicate array name accepted")
	}
	bad3 := testProgram()
	bad3.Phases[0].Occurrences = 0
	if err := bad3.Validate(); err == nil {
		t.Error("zero occurrences accepted")
	}
	bad4 := testProgram()
	bad4.Phases[0].Nests[0].Suppressed = true
	bad4.Phases[0].Nests[0].Parallel = false
	if err := bad4.Validate(); err == nil {
		t.Error("suppressed non-parallel nest accepted")
	}
}

func TestDataBytes(t *testing.T) {
	prog := testProgram()
	if got := prog.DataBytes(); got != 2*1024*8 {
		t.Errorf("DataBytes = %d, want 16384", got)
	}
}

func TestArrayByName(t *testing.T) {
	prog := testProgram()
	if prog.ArrayByName("b") == nil || prog.ArrayByName("zzz") != nil {
		t.Error("ArrayByName lookup broken")
	}
}
