package ir

import (
	"strings"
	"testing"
)

// FuzzParse drives the text-format parser with arbitrary input. The
// parser's contract under hostile bytes is: never panic, and when it
// does accept an input, the Format/Parse round trip must normalize —
// re-parsing the formatted program succeeds and formatting is a fixed
// point from then on. (The server feeds untrusted request bodies
// straight into ParseString, so "never panic" is a load-bearing
// property, not a nicety.)
func FuzzParse(f *testing.F) {
	f.Add(sampleProgram)
	f.Add("program x\narray a elems=8\nphase p occurs=1\nnest n parallel iters=1 inner=1\nload a outer=1\n")
	f.Add("program t\narray a elems=16\nphase p occurs=3\nnest n suppressed iters=2 inner=2\nload a outer=2 inner=-1 offset=-3\n")
	f.Add("init parallel iters=4 inner=8\n  store a outer=8\n")
	f.Add("# comment only\n\nprogram c\n")
	f.Add("program x\narray a elems=8 elemsize=4 unanalyzable\nphase p occurs=2\nnest n sequential iters=1 inner=1 instfootprint=64\nload a outer=1 wrap prefetch=8\n")
	f.Add("nest n parallel iters=1\nload zz outer=1\n")
	f.Add("array \x00 elems=1\n")
	f.Add(strings.Repeat("phase p occurs=1\n", 40))

	f.Fuzz(func(t *testing.T, src string) {
		p, err := ParseString(src)
		if err != nil {
			return
		}
		text := Format(p)
		p2, err := ParseString(text)
		if err != nil {
			t.Fatalf("accepted program fails to re-parse after Format: %v\ninput:\n%s\nformatted:\n%s", err, src, text)
		}
		if text2 := Format(p2); text2 != text {
			t.Fatalf("Format not a fixed point\n--- first ---\n%s--- second ---\n%s", text, text2)
		}
	})
}

// TestParseMalformed is the deterministic companion of FuzzParse: a
// table of malformed inputs that must all be rejected with an error
// (never a panic, never silent acceptance). It extends the grammar
// errors of TestParseErrors with structural, numeric and byte-level
// abuse.
func TestParseMalformed(t *testing.T) {
	cases := map[string]string{
		"empty input":           "",
		"comment only":          "# nothing here\n\n   # still nothing\n",
		"no arrays":             "program x\nphase p occurs=1\n",
		"no phases":             "program x\narray a elems=8\n",
		"program extra tokens":  "program x y\narray a elems=8\n",
		"code non-numeric":      "program x\ncode lots\narray a elems=8\n",
		"code zero":             "program x\ncode 0\narray a elems=8\n",
		"code missing value":    "program x\ncode\narray a elems=8\n",
		"array bare":            "program x\narray\n",
		"array no elems":        "program x\narray a\n",
		"array elems flag-only": "program x\narray a elems\n",
		"array elems negative":  "program x\narray a elems=-8\n",
		"array elems overflow":  "program x\narray a elems=99999999999999999999\n",
		"elemsize zero":         "program x\narray a elems=8 elemsize=0\n",
		"phase bare":            "program x\narray a elems=8\nphase\n",
		"phase occurs zero":     "program x\narray a elems=8\nphase p occurs=0\n",
		"phase bad attr":        "program x\narray a elems=8\nphase p repeat=2\n",
		"nest bare":             "program x\narray a elems=8\nphase p occurs=1\nnest n\n",
		"nest inner zero": "program x\narray a elems=8\nphase p occurs=1\n" +
			"nest n parallel iters=1 inner=0\nload a outer=1\n",
		"nest iters overflow": "program x\narray a elems=8\nphase p occurs=1\n" +
			"nest n parallel iters=10000000000000000000000 inner=1\nload a outer=1\n",
		"sched empty": "program x\narray a elems=8\nphase p occurs=1\n" +
			"nest n parallel iters=1 inner=1 sched=\nload a outer=1\n",
		"sched trailing comma": "program x\narray a elems=8\nphase p occurs=1\n" +
			"nest n parallel iters=1 inner=1 sched=even,\nload a outer=1\n",
		"access bare": "program x\narray a elems=8\nphase p occurs=1\n" +
			"nest n parallel iters=1 inner=1\nload\n",
		"access bad attr": "program x\narray a elems=8\nphase p occurs=1\n" +
			"nest n parallel iters=1 inner=1\nload a outer=1 stride=2\n",
		"prefetch flag-only": "program x\narray a elems=8\nphase p occurs=1\n" +
			"nest n parallel iters=1 inner=1\nload a outer=1 prefetch\n",
		"init without access": "program x\narray a elems=8\ninit parallel iters=1 inner=1\n" +
			"phase p occurs=1\nnest n parallel iters=1 inner=1\nload a outer=1\n",
		"nul keyword":   "\x00program x\narray a elems=8\n",
		"utf8 keyword":  "prögram x\narray a elems=8\n",
		"crlf bad line": "program x\r\nfrobnicate\r\n",
	}
	for name, src := range cases {
		if _, err := ParseString(src); err == nil {
			t.Errorf("%s: accepted\n%s", name, src)
		}
	}
}

// TestParseAcceptsEdgeForms pins down inputs that look suspicious but
// are legal, so the malformed table cannot silently over-reject.
func TestParseAcceptsEdgeForms(t *testing.T) {
	cases := map[string]string{
		"crlf line endings": "program x\r\narray a elems=8\r\nphase p occurs=1\r\n" +
			"nest n parallel iters=1 inner=1\r\nload a outer=1\r\n",
		"trailing comment": "program x # the name\narray a elems=8\nphase p occurs=1\n" +
			"nest n parallel iters=1 inner=1\nload a outer=1 # stride note\n",
		"negative access attrs": "program x\narray a elems=8\nphase p occurs=1\n" +
			"nest n parallel iters=1 inner=1\nload a outer=1 inner=-2 offset=-5\n",
		"footprint-only nest": "program x\narray a elems=8\nphase p occurs=1\n" +
			"nest n sequential iters=1 inner=1 instfootprint=4096\n",
		"deep indentation": "program x\n\t array a elems=8\n  phase p occurs=1\n" +
			"\t\tnest n parallel iters=1 inner=1\n      load a outer=1\n",
	}
	for name, src := range cases {
		p, err := ParseString(src)
		if err != nil {
			t.Errorf("%s: rejected: %v\n%s", name, err, src)
			continue
		}
		if _, err := ParseString(Format(p)); err != nil {
			t.Errorf("%s: round trip failed: %v", name, err)
		}
	}
}
