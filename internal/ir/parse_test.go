package ir

import (
	"strings"
	"testing"
)

const sampleProgram = `
# A small stencil in the text format.
program mini
code 16384

array a elems=4096
array b elems=4096
array idx elems=512 elemsize=4 unanalyzable

init parallel iters=16 inner=256 work=1 sched=even
  store a outer=256
  store b outer=256

phase main occurs=50
  nest sweep parallel iters=16 inner=256 work=12 sched=even
    load a outer=256 offset=-1
    load a outer=256
    load a outer=256 offset=1 wrap
    store b outer=256
  nest gather parallel iters=16 inner=32 work=6 sched=blocked,reverse tiled
    load idx outer=256 inner=8
    store b outer=256
phase tail occurs=2
  nest finish sequential iters=1 inner=256 instfootprint=4096
    load b outer=256 prefetch=8
`

func TestParseSample(t *testing.T) {
	p, err := ParseString(sampleProgram)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "mini" || p.CodeSize != 16384 {
		t.Errorf("header: %q %d", p.Name, p.CodeSize)
	}
	if len(p.Arrays) != 3 {
		t.Fatalf("arrays = %d", len(p.Arrays))
	}
	idx := p.ArrayByName("idx")
	if idx == nil || !idx.Unanalyzable || idx.ElemSize != 4 {
		t.Errorf("idx = %+v", idx)
	}
	if p.Init == nil || len(p.Init.Nests) != 1 || !p.Init.Nests[0].Parallel {
		t.Error("init phase wrong")
	}
	if len(p.Phases) != 2 {
		t.Fatalf("phases = %d", len(p.Phases))
	}
	main := p.Phases[0]
	if main.Occurrences != 50 || len(main.Nests) != 2 {
		t.Errorf("main = %d occurs, %d nests", main.Occurrences, len(main.Nests))
	}
	sweep := main.Nests[0]
	if len(sweep.Accesses) != 4 {
		t.Fatalf("sweep accesses = %d", len(sweep.Accesses))
	}
	if !sweep.Accesses[2].Wrap || sweep.Accesses[2].Offset != 1 {
		t.Errorf("wrap access = %+v", sweep.Accesses[2])
	}
	gather := main.Nests[1]
	if gather.Sched.Kind != Blocked || !gather.Sched.Reverse || !gather.Tiled {
		t.Errorf("gather sched = %+v tiled=%v", gather.Sched, gather.Tiled)
	}
	if gather.Accesses[0].InnerStride != 8 {
		t.Errorf("gather stride = %d", gather.Accesses[0].InnerStride)
	}
	finish := p.Phases[1].Nests[0]
	if finish.Parallel || finish.InstFootprint != 4096 {
		t.Errorf("finish = %+v", finish)
	}
	if !finish.Accesses[0].Prefetch || finish.Accesses[0].PrefetchDistance != 8 {
		t.Errorf("prefetch access = %+v", finish.Accesses[0])
	}
}

func TestFormatRoundTrip(t *testing.T) {
	p1, err := ParseString(sampleProgram)
	if err != nil {
		t.Fatal(err)
	}
	text := Format(p1)
	p2, err := ParseString(text)
	if err != nil {
		t.Fatalf("re-parse of formatted program failed: %v\n%s", err, text)
	}
	if Format(p2) != text {
		t.Errorf("format not a fixed point:\n--- first ---\n%s--- second ---\n%s", text, Format(p2))
	}
	// Structural spot checks survive the round trip.
	if p2.Phases[0].Nests[1].Sched.Reverse != true {
		t.Error("reverse lost in round trip")
	}
	if !p2.Phases[0].Nests[0].Accesses[2].Wrap {
		t.Error("wrap lost in round trip")
	}
	if p2.Init == nil {
		t.Error("init lost in round trip")
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"unknown keyword":  "program x\nfrobnicate y\n",
		"dup array":        "program x\narray a elems=8\narray a elems=8\n",
		"unknown array":    "program x\narray a elems=8\nphase p occurs=1\nnest n parallel iters=1 inner=1\nload zz outer=1\n",
		"access w/o nest":  "program x\narray a elems=8\nload a outer=1\n",
		"nest w/o phase":   "program x\narray a elems=8\nnest n parallel iters=1 inner=1\n",
		"bad int":          "program x\narray a elems=zonk\n",
		"negative iters":   "program x\narray a elems=8\nphase p occurs=1\nnest n parallel iters=-4 inner=1\nload a outer=1\n",
		"bad sched":        "program x\narray a elems=8\nphase p occurs=1\nnest n parallel iters=1 inner=1 sched=zigzag\nload a outer=1\n",
		"no accesses":      "program x\narray a elems=8\nphase p occurs=1\nnest n parallel iters=1 inner=1\n",
		"unknown nestattr": "program x\narray a elems=8\nphase p occurs=1\nnest n parallel iters=1 inner=1 color=7\nload a outer=1\n",
	}
	for name, src := range cases {
		if _, err := ParseString(src); err == nil {
			t.Errorf("%s: accepted\n%s", name, src)
		}
	}
}

func TestParsedProgramRuns(t *testing.T) {
	// End-to-end: a parsed program must stream references.
	p, err := ParseString(sampleProgram)
	if err != nil {
		t.Fatal(err)
	}
	// Assign bases manually (normally the compiler layout does this).
	base := uint64(4096)
	for _, a := range p.Arrays {
		a.Base = base
		base += uint64(a.SizeBytes()) + 4096
	}
	p.CodeBase = base
	total := 0
	for _, ph := range p.Phases {
		for _, n := range ph.Nests {
			total += NestRefs(p, n, 4, 0)
		}
	}
	if total == 0 {
		t.Error("parsed program generates no references")
	}
}

func TestFormatWorkloadStyle(t *testing.T) {
	// Formatting must not emit lines Parse rejects, even for edge attrs.
	p, err := ParseString("program t\narray a elems=16\nphase p occurs=3\nnest n suppressed iters=2 inner=2\nload a outer=2 inner=-1 offset=-3\n")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ParseString(Format(p)); err != nil {
		t.Fatalf("negative attrs break round trip: %v\n%s", err, Format(p))
	}
	if !strings.Contains(Format(p), "suppressed") {
		t.Error("suppressed not serialized")
	}
}
