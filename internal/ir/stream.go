package ir

import "repro/internal/trace"

// iCacheLine is the granularity at which the instruction stream is
// emitted for nests with a significant instruction footprint.
const iCacheLine = 32

// prefetchLine is the external-cache line size the compiler schedules
// prefetches for: one prefetch per line, not per element (the compiler
// knows the target machine's line size; §6.2's algorithm prefetches only
// references likely to miss, and unrolls so each line is prefetched once).
const prefetchLine = 128

// NestStream returns cpu's reference stream for nest n executed on p
// processors. Sequential and suppressed nests run entirely on CPU 0; the
// other CPUs get an empty stream and the simulator charges their idle
// time as sequential or suppressed overhead (§4.1).
//
// Per inner iteration the stream emits, in order: software prefetches
// (for accesses the compiler marked, at their pipelined lead distance),
// instruction fetches (if the nest has an InstFootprint), and the demand
// accesses. The nest's WorkPerIter non-memory instructions ride on the
// first reference of each inner iteration.
func NestStream(prog *Program, n *Nest, p, cpu int) trace.Stream {
	lo, hi := nestSpan(n, p, cpu)
	if lo >= hi {
		return trace.Empty
	}
	cur := &nestCursor{prog: prog, nest: n, i: lo, hi: hi}
	return trace.FuncStream(cur.next)
}

// nestSpan returns cpu's outer-iteration range.
func nestSpan(n *Nest, p, cpu int) (lo, hi int) {
	if !n.Parallel || n.Suppressed || p == 1 {
		if cpu == 0 {
			return 0, n.Iterations
		}
		return 0, 0
	}
	return n.Sched.Span(n.Iterations, p, cpu)
}

// NestSpan returns cpu's outer-iteration range for nest n on p
// processors: [0, Iterations) on CPU 0 and empty elsewhere for
// sequential and suppressed nests, the schedule's span otherwise. The
// sampling planner uses it to place representative windows inside each
// CPU's own span, so a window touches the same columns (and therefore
// the same page colors) the full run would.
func NestSpan(n *Nest, p, cpu int) (lo, hi int) {
	return nestSpan(n, p, cpu)
}

// NestWindowStream is NestStream restricted to the outer-iteration
// window [lo, hi), clamped to cpu's span. The cursor starts cold (inner
// iteration 0, instruction cursor at the code base), exactly as a full
// stream does at its own first iteration; phase-sampled simulation runs
// a functional warm-up window immediately before the measured window to
// reconstruct the cache and TLB state those skipped iterations would
// have left behind.
func NestWindowStream(prog *Program, n *Nest, p, cpu, lo, hi int) trace.Stream {
	slo, shi := nestSpan(n, p, cpu)
	if lo < slo {
		lo = slo
	}
	if hi > shi {
		hi = shi
	}
	if lo >= hi {
		return trace.Empty
	}
	cur := &nestCursor{prog: prog, nest: n, i: lo, hi: hi}
	return trace.FuncStream(cur.next)
}

// NestWarmStream is NestWindowStream decimated to cache-line
// granularity: inner iterations advance by the largest step that still
// touches every line of every access at least once per lineBytes
// (jump = lineBytes / max |inner stride in bytes|, at least 1).
// Functional warm-up consumes this stream instead of the full one —
// caches, TLBs and the directory hold line- and page-granular state,
// so one reference per line reconstructs exactly the state a
// per-element sweep would, at a fraction of the interpreter cost.
// Instruction fetches are scaled up by the same jump so the cyclic
// code sweep covers the same bytes per emitted iteration as the full
// stream does across the skipped ones.
func NestWarmStream(prog *Program, n *Nest, p, cpu, lo, hi, lineBytes int) trace.Stream {
	slo, shi := nestSpan(n, p, cpu)
	if lo < slo {
		lo = slo
	}
	if hi > shi {
		hi = shi
	}
	if lo >= hi {
		return trace.Empty
	}
	maxStride := 0
	for i := range n.Accesses {
		b := n.Accesses[i].InnerStride * n.Accesses[i].Array.ElemSize
		if b < 0 {
			b = -b
		}
		if b > maxStride {
			maxStride = b
		}
	}
	jump := 1
	switch {
	case maxStride == 0:
		// Scalar accesses only: every inner iteration touches the same
		// elements, so one iteration warms them all.
		jump = n.InnerIters
	case lineBytes > maxStride:
		jump = lineBytes / maxStride
	}
	if jump < 1 {
		jump = 1
	}
	cur := &nestCursor{prog: prog, nest: n, i: lo, hi: hi, jump: jump}
	return trace.FuncStream(cur.next)
}

// NestRefs returns the total references cpu will emit for the nest;
// used for quick workload sizing in tests and the harness.
func NestRefs(prog *Program, n *Nest, p, cpu int) int {
	s := NestStream(prog, n, p, cpu)
	return trace.Count(s)
}

// nestCursor is the lazy interpreter state for one (nest, cpu).
type nestCursor struct {
	prog *Program
	nest *Nest

	i, hi int // outer iteration cursor and bound
	j     int // inner iteration
	jump  int // inner-iteration step (0 → 1; >1 for warm decimation)
	stage int // 0 = prefetches, 1 = inst fetches, 2 = demand accesses
	k     int // index within stage

	instOff   int // cyclic cursor into the code segment
	instLeft  int // bytes of code still to fetch this iteration
	firstWork bool
}

func (c *nestCursor) next(r *trace.Ref) bool {
	n := c.nest
	for c.i < c.hi {
		switch c.stage {
		case 0: // software prefetches
			for c.k < len(n.Accesses) {
				ac := n.Accesses[c.k]
				c.k++
				if !ac.Prefetch {
					continue
				}
				jf := c.j + ac.PrefetchDistance
				if jf >= n.InnerIters {
					continue // pipeline drain: no prefetch issued
				}
				// One prefetch per cache line: emit only when the target
				// is the first element of its line for this stream.
				strideBytes := ac.InnerStride * ac.Array.ElemSize
				if strideBytes < 0 {
					strideBytes = -strideBytes
				}
				if strideBytes < prefetchLine {
					off := (ac.Element(c.i, jf) * ac.Array.ElemSize) % prefetchLine
					if off >= strideBytes {
						continue
					}
				}
				*r = trace.Ref{Kind: trace.Prefetch, VAddr: ac.VAddr(c.i, jf), Size: uint8(ac.Array.ElemSize)}
				return true
			}
			c.stage, c.k = 1, 0
			c.instLeft = n.InstFootprint
			if c.jump > 1 {
				c.instLeft *= c.jump
			}
			c.firstWork = true
		case 1: // instruction fetches
			if c.instLeft > 0 && c.prog.CodeSize > 0 {
				*r = trace.Ref{Kind: trace.Inst, VAddr: c.prog.CodeBase + uint64(c.instOff), Size: 4, Work: iCacheLine / 4}
				c.instOff = (c.instOff + iCacheLine) % c.prog.CodeSize
				c.instLeft -= iCacheLine
				return true
			}
			c.stage, c.k = 2, 0
		case 2: // demand accesses
			if c.k < len(n.Accesses) {
				ac := n.Accesses[c.k]
				c.k++
				kind := trace.Read
				if ac.Kind == Store {
					kind = trace.Write
				}
				var work uint32
				if c.firstWork {
					work = uint32(n.WorkPerIter)
					c.firstWork = false
				}
				*r = trace.Ref{Kind: kind, VAddr: ac.VAddr(c.i, c.j), Size: uint8(ac.Array.ElemSize), Work: work}
				return true
			}
			// Inner iteration done.
			c.stage, c.k = 0, 0
			if c.jump > 1 {
				c.j += c.jump
			} else {
				c.j++
			}
			if c.j >= n.InnerIters {
				c.j = 0
				c.i++
			}
			// A body with no accesses and no code would spin forever;
			// Validate rejects it, but guard anyway.
			if len(n.Accesses) == 0 && n.InstFootprint == 0 {
				c.i = c.hi
			}
		}
	}
	return false
}

// TouchedPages returns the set of virtual page numbers cpu touches while
// executing the program's steady state on p processors. This drives the
// Figure 3 / Figure 5 access-pattern plots without running the timing
// simulator.
func TouchedPages(prog *Program, p, cpu, pageSize int) map[uint64]bool {
	pages := make(map[uint64]bool)
	var r trace.Ref
	for _, ph := range prog.Phases {
		for _, n := range ph.Nests {
			s := NestStream(prog, n, p, cpu)
			for s.Next(&r) {
				if r.Kind == trace.Read || r.Kind == trace.Write {
					pages[r.VAddr/uint64(pageSize)] = true
				}
			}
		}
	}
	return pages
}
