package ir

import "fmt"

// Array is one program data structure, laid out contiguously in the
// virtual address space by the compiler's layout pass.
type Array struct {
	Name     string
	ElemSize int // bytes per element (8 = double precision)
	Elems    int // total elements

	// Base is the virtual base address; zero until the layout pass runs.
	Base uint64

	// Unanalyzable marks arrays whose accesses the compiler could not
	// summarize (su2cor's pathology, §6.1): CDPC skips them, and their
	// mapping may conflict with the hinted arrays.
	Unanalyzable bool
}

// SizeBytes returns the array's total footprint.
func (a *Array) SizeBytes() int { return a.ElemSize * a.Elems }

// EndAddr returns one past the last byte (after layout).
func (a *Array) EndAddr() uint64 { return a.Base + uint64(a.SizeBytes()) }

// String implements fmt.Stringer.
func (a *Array) String() string {
	return fmt.Sprintf("%s[%d x %dB @ %#x]", a.Name, a.Elems, a.ElemSize, a.Base)
}

// RefKind distinguishes loads from stores.
type RefKind uint8

const (
	// Load is a read access.
	Load RefKind = iota
	// Store is a write access.
	Store
)

// Access is one affine array reference inside a nest body. For outer
// (distributed) iteration i and inner iteration j it touches element
// OuterStride·i + InnerStride·j + Offset.
type Access struct {
	Array *Array
	Kind  RefKind

	OuterStride int
	InnerStride int
	Offset      int

	// Wrap makes the element index wrap modulo the array size instead of
	// clamping at the boundaries — periodic boundary conditions, which
	// the compiler summarizes as rotate communication (§5.1).
	Wrap bool

	// Prefetch is set by the compiler's prefetch pass (§6.2) for
	// references its locality analysis predicts will miss.
	Prefetch bool
	// PrefetchDistance is the number of inner iterations of lead time the
	// software pipeline achieved; tiled nests get too little (applu).
	PrefetchDistance int
}

// Element returns the element index touched at (i, j).
func (ac Access) Element(i, j int) int {
	return ac.OuterStride*i + ac.InnerStride*j + ac.Offset
}

// VAddr returns the virtual address touched at (i, j). Out-of-range
// element indices wrap modulo the array for Wrap accesses (periodic
// boundaries → rotate communication) and clamp otherwise (modeling
// Fortran boundary conditionals without burdening the affine form).
func (ac Access) VAddr(i, j int) uint64 {
	e := ac.Element(i, j)
	if ac.Wrap {
		e %= ac.Array.Elems
		if e < 0 {
			e += ac.Array.Elems
		}
	} else {
		if e < 0 {
			e = 0
		}
		if e >= ac.Array.Elems {
			e = ac.Array.Elems - 1
		}
	}
	return ac.Array.Base + uint64(e*ac.Array.ElemSize)
}

// PartitionKind is the static scheduling policy for a parallel nest
// (§5.1: even and blocked partitions are the supported policies).
type PartitionKind uint8

const (
	// Blocked gives each processor ceil(N/p) consecutive iterations.
	Blocked PartitionKind = iota
	// Even gives each processor either floor(N/p) or ceil(N/p)
	// consecutive iterations, as close to equal as possible.
	Even
)

// String implements fmt.Stringer.
func (k PartitionKind) String() string {
	if k == Blocked {
		return "blocked"
	}
	return "even"
}

// Schedule is the compiler's static assignment of a nest's distributed
// iterations to processors.
type Schedule struct {
	Kind PartitionKind
	// Reverse assigns chunks from processor p-1 down to 0 (§5.1's reverse
	// partitions).
	Reverse bool
}

// Span returns the half-open iteration range [lo, hi) that cpu executes
// out of n iterations on p processors.
func (s Schedule) Span(n, p, cpu int) (lo, hi int) {
	if p <= 0 || cpu < 0 || cpu >= p {
		return 0, 0
	}
	chunk := cpu
	if s.Reverse {
		chunk = p - 1 - cpu
	}
	switch s.Kind {
	case Blocked:
		size := (n + p - 1) / p
		lo = chunk * size
		hi = lo + size
	default: // Even
		base, rem := n/p, n%p
		lo = chunk*base + min(chunk, rem)
		hi = lo + base
		if chunk < rem {
			hi++
		}
	}
	if lo > n {
		lo = n
	}
	if hi > n {
		hi = n
	}
	return lo, hi
}

// Nest is one loop nest: a distributed outer loop of Iterations trips,
// an inner loop of InnerIters trips, and a body of affine accesses.
type Nest struct {
	Name string

	// Parallel marks nests the compiler parallelized. Suppressed marks
	// nests that are parallelizable but executed by the master alone
	// because their grain is too fine (apsi, wave5 — §4.1).
	Parallel   bool
	Suppressed bool

	Iterations int // outer (distributed) trip count
	InnerIters int // inner trip count per outer iteration

	Accesses []Access

	// WorkPerIter is the non-memory instruction count per inner iteration.
	WorkPerIter int

	// Tiled marks nests whose loop tiling (introduced to cut
	// synchronization) inhibits prefetch software-pipelining (applu, §6.2).
	Tiled bool

	// InstFootprint is the bytes of instruction text executed per inner
	// iteration; zero means the loop body fits trivially in the I-cache
	// and the instruction stream is not simulated (all but fpppp).
	InstFootprint int

	Sched Schedule
}

// Validate checks internal consistency.
func (n *Nest) Validate() error {
	if n.Iterations <= 0 || n.InnerIters <= 0 {
		return fmt.Errorf("ir: nest %q has non-positive trip counts", n.Name)
	}
	if len(n.Accesses) == 0 && n.InstFootprint == 0 {
		return fmt.Errorf("ir: nest %q has no accesses", n.Name)
	}
	if n.Suppressed && !n.Parallel {
		return fmt.Errorf("ir: nest %q suppressed but not parallel", n.Name)
	}
	for _, ac := range n.Accesses {
		if ac.Array == nil {
			return fmt.Errorf("ir: nest %q has access with nil array", n.Name)
		}
	}
	return nil
}

// Phase is a region of the steady state with a repetition weight (§3.2).
type Phase struct {
	Name        string
	Occurrences int
	Nests       []*Nest
}

// Program is a whole application.
type Program struct {
	Name   string
	Arrays []*Array
	Phases []*Phase

	// Init, if non-nil, is the initialization phase: executed once before
	// measurement begins (it takes the first-touch page faults; §3.2
	// notes initialization is excluded from the steady state).
	Init *Phase

	// CodeBase/CodeSize describe the instruction segment (used by nests
	// with InstFootprint > 0).
	CodeBase uint64
	CodeSize int
}

// Validate checks the whole program.
func (p *Program) Validate() error {
	if len(p.Arrays) == 0 {
		return fmt.Errorf("ir: program %q has no arrays", p.Name)
	}
	if len(p.Phases) == 0 {
		return fmt.Errorf("ir: program %q has no phases", p.Name)
	}
	seen := map[string]bool{}
	for _, a := range p.Arrays {
		if a.ElemSize <= 0 || a.Elems <= 0 {
			return fmt.Errorf("ir: array %s has non-positive size", a.Name)
		}
		if seen[a.Name] {
			return fmt.Errorf("ir: duplicate array name %q", a.Name)
		}
		seen[a.Name] = true
	}
	phases := p.Phases
	if p.Init != nil {
		phases = append([]*Phase{p.Init}, phases...)
	}
	for _, ph := range phases {
		if ph.Occurrences <= 0 {
			return fmt.Errorf("ir: phase %q has occurrences %d", ph.Name, ph.Occurrences)
		}
		for _, n := range ph.Nests {
			if err := n.Validate(); err != nil {
				return err
			}
		}
	}
	return nil
}

// DataBytes returns the total data footprint (Table 1's "data set size").
func (p *Program) DataBytes() int {
	total := 0
	for _, a := range p.Arrays {
		total += a.SizeBytes()
	}
	return total
}

// ArrayByName returns the named array or nil.
func (p *Program) ArrayByName(name string) *Array {
	for _, a := range p.Arrays {
		if a.Name == name {
			return a
		}
	}
	return nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
