// Package ir defines the affine loop-nest program representation shared
// by the compiler analyses and the machine simulator. A Program is the
// single source of truth: the same loop nests that generate the
// per-processor reference streams executed by the simulator are the ones
// the compiler summarizes for CDPC, so "the compiler knows the access
// pattern" (§5.1) is genuine rather than asserted.
//
// The model captures exactly what the paper's technique consumes: arrays,
// statically scheduled parallel loops over a distributed dimension, affine
// per-iteration accesses (element = OuterStride·i + InnerStride·j +
// Offset), boundary communication, and phase structure with occurrence
// weights (§3.2's representative execution windows).
package ir
