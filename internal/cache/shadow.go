package cache

import "container/list"

// Shadow is a fully-associative LRU cache of the same capacity (in lines)
// as a real cache. A replacement miss in the real cache that would have
// hit in the shadow is a conflict miss (caused by limited associativity);
// one that also misses in the shadow is a capacity miss. This is the
// standard classification the paper's "replacement = capacity + conflict"
// breakdown relies on (§4.1).
type Shadow struct {
	capacity int
	lineSize uint64
	index    map[uint64]*list.Element
	order    *list.List // front = MRU
}

// NewShadow creates a shadow cache holding capacity lines of lineSize
// bytes.
func NewShadow(capacity, lineSize int) *Shadow {
	return &Shadow{
		capacity: capacity,
		lineSize: uint64(lineSize),
		index:    make(map[uint64]*list.Element, capacity),
		order:    list.New(),
	}
}

// Access touches addr's line and reports whether it was present.
func (s *Shadow) Access(addr uint64) bool {
	la := addr &^ (s.lineSize - 1)
	if e, ok := s.index[la]; ok {
		s.order.MoveToFront(e)
		return true
	}
	if s.order.Len() >= s.capacity {
		lru := s.order.Back()
		delete(s.index, lru.Value.(uint64))
		s.order.Remove(lru)
	}
	s.index[la] = s.order.PushFront(la)
	return false
}

// Remove drops addr's line (coherence invalidation must be mirrored here,
// otherwise a later coherence re-fetch would be misclassified).
func (s *Shadow) Remove(addr uint64) {
	la := addr &^ (s.lineSize - 1)
	if e, ok := s.index[la]; ok {
		delete(s.index, la)
		s.order.Remove(e)
	}
}

// Len returns the number of resident lines.
func (s *Shadow) Len() int { return s.order.Len() }
