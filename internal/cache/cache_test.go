package cache

import (
	"math/rand"
	"testing"

	"repro/internal/arch"
)

func dm(size, line int) arch.CacheGeometry {
	return arch.CacheGeometry{Size: size, LineSize: line, Assoc: 1}
}

func TestDirectMappedConflict(t *testing.T) {
	c := New(dm(1<<10, 64)) // 16 sets
	a := uint64(0)
	b := a + 1<<10 // same set, different tag
	if r := c.Access(a, false); r.Hit {
		t.Fatal("cold access hit")
	}
	if r := c.Access(b, false); r.Hit {
		t.Fatal("conflicting access hit")
	} else if !r.Evicted || r.VictimAddr != a {
		t.Fatalf("expected eviction of %#x, got %+v", a, r)
	}
	if r := c.Access(a, false); r.Hit {
		t.Fatal("a should have been evicted by b")
	}
}

func TestTwoWayAbsorbsPairConflict(t *testing.T) {
	g := arch.CacheGeometry{Size: 1 << 10, LineSize: 64, Assoc: 2}
	c := New(g)
	a, b := uint64(0), uint64(1<<10) // adjusted: same set in 2-way? sets = 8, set stride = 512
	b = a + uint64(g.Sets()*g.LineSize)
	c.Access(a, false)
	c.Access(b, false)
	if r := c.Access(a, false); !r.Hit {
		t.Error("two-way cache should hold both conflicting lines")
	}
	if r := c.Access(b, false); !r.Hit {
		t.Error("b should still be resident")
	}
}

func TestLRUOrdering(t *testing.T) {
	g := arch.CacheGeometry{Size: 4 * 64, LineSize: 64, Assoc: 4} // one set, 4 ways
	c := New(g)
	addrs := []uint64{0, 64, 128, 192}
	for _, a := range addrs {
		c.Access(a, false)
	}
	c.Access(0, false)         // make 0 MRU; LRU is now 64
	r := c.Access(4*64, false) // new line evicts LRU
	if !r.Evicted || r.VictimAddr != 64 {
		t.Errorf("expected LRU victim 64, got %+v", r)
	}
	if !c.Probe(0) || !c.Probe(128) || !c.Probe(192) {
		t.Error("non-LRU lines should survive")
	}
}

func TestWriteBackDirtyVictim(t *testing.T) {
	c := New(dm(1<<10, 64))
	c.Access(0, true) // dirty
	r := c.Access(1<<10, false)
	if !r.Evicted || !r.VictimDirty {
		t.Errorf("dirty victim should require writeback, got %+v", r)
	}
	// A read-only line evicts clean.
	c2 := New(dm(1<<10, 64))
	c2.Access(0, false)
	if r := c2.Access(1<<10, false); r.VictimDirty {
		t.Error("clean victim flagged dirty")
	}
}

func TestHitMarksDirty(t *testing.T) {
	c := New(dm(1<<10, 64))
	c.Access(0, false)
	c.Access(8, true) // write hit on same line
	if r := c.Access(1<<10, false); !r.VictimDirty {
		t.Error("write hit should have dirtied the line")
	}
}

func TestInvalidate(t *testing.T) {
	c := New(dm(1<<10, 64))
	c.Access(0, true)
	present, dirty := c.Invalidate(32) // same line as 0
	if !present || !dirty {
		t.Errorf("Invalidate = (%v,%v), want (true,true)", present, dirty)
	}
	if c.Probe(0) {
		t.Error("line still present after invalidate")
	}
	if present, _ := c.Invalidate(0); present {
		t.Error("double invalidate reported presence")
	}
}

func TestCleanClearsDirtyBit(t *testing.T) {
	c := New(dm(1<<10, 64))
	c.Access(0, true)
	c.Clean(0)
	if r := c.Access(1<<10, false); r.VictimDirty {
		t.Error("Clean did not clear dirty bit")
	}
}

func TestProbeDoesNotDisturbLRU(t *testing.T) {
	g := arch.CacheGeometry{Size: 2 * 64, LineSize: 64, Assoc: 2}
	c := New(g)
	c.Access(0, false)
	c.Access(128, false) // same set (1 set), 0 is now LRU
	c.Probe(0)           // must NOT promote 0
	r := c.Access(256, false)
	if r.VictimAddr != 0 {
		t.Errorf("Probe disturbed LRU: victim %#x, want 0", r.VictimAddr)
	}
}

func TestFlushEmptiesCache(t *testing.T) {
	c := New(dm(1<<10, 64))
	for a := uint64(0); a < 1<<10; a += 64 {
		c.Access(a, true)
	}
	c.Flush()
	if got := c.Utilization(); got != 0 {
		t.Errorf("utilization after flush = %v, want 0", got)
	}
}

func TestUtilization(t *testing.T) {
	c := New(dm(1<<10, 64)) // 16 sets
	for a := uint64(0); a < 512; a += 64 {
		c.Access(a, false) // fill 8 of 16 sets
	}
	if got := c.Utilization(); got != 0.5 {
		t.Errorf("utilization = %v, want 0.5", got)
	}
}

func TestSameLineDifferentOffsetsHit(t *testing.T) {
	c := New(dm(1<<10, 64))
	c.Access(100, false)
	if r := c.Access(127, false); !r.Hit {
		t.Error("same-line access should hit")
	}
	if r := c.Access(128, false); r.Hit {
		t.Error("next line should miss")
	}
}

func TestCacheMatchesShadowWhenFullyAssociative(t *testing.T) {
	// Property: a fully-associative Cache and a Shadow of equal capacity
	// agree on every access outcome (both are true LRU).
	g := arch.CacheGeometry{Size: 16 * 64, LineSize: 64, Assoc: 16}
	c := New(g)
	s := NewShadow(16, 64)
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 20000; i++ {
		addr := uint64(rng.Intn(64)) * 64
		hit := c.Access(addr, false).Hit
		shadowHit := s.Access(addr)
		if hit != shadowHit {
			t.Fatalf("iteration %d addr %#x: cache hit=%v shadow hit=%v", i, addr, hit, shadowHit)
		}
	}
}

func TestShadowEvictsLRU(t *testing.T) {
	s := NewShadow(2, 64)
	s.Access(0)
	s.Access(64)
	s.Access(0)   // 64 is LRU
	s.Access(128) // evicts 64
	if !s.Access(0) {
		t.Error("0 should still be resident")
	}
	if s.Access(64) {
		t.Error("64 should have been evicted")
	}
}

func TestShadowRemove(t *testing.T) {
	s := NewShadow(4, 64)
	s.Access(0)
	s.Remove(32) // same line
	if s.Access(0) {
		t.Error("removed line reported as hit")
	}
	s.Remove(999999) // absent: must not panic
	if s.Len() != 1 {
		t.Errorf("Len = %d, want 1", s.Len())
	}
}

func TestHitRateCounters(t *testing.T) {
	c := New(dm(1<<10, 64))
	c.Access(0, false)
	c.Access(0, false)
	c.Access(64, false)
	if c.Accesses != 3 || c.Hits != 1 {
		t.Errorf("counters = %d/%d, want 3/1", c.Hits, c.Accesses)
	}
}

func BenchmarkCacheAccess(b *testing.B) {
	c := New(arch.CacheGeometry{Size: 64 << 10, LineSize: 128, Assoc: 2})
	rng := rand.New(rand.NewSource(7))
	addrs := make([]uint64, 4096)
	for i := range addrs {
		addrs[i] = uint64(rng.Intn(1 << 20))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(addrs[i&4095], i&7 == 0)
	}
}

func BenchmarkShadowAccess(b *testing.B) {
	s := NewShadow(512, 128)
	rng := rand.New(rand.NewSource(7))
	addrs := make([]uint64, 4096)
	for i := range addrs {
		addrs[i] = uint64(rng.Intn(1 << 20))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Access(addrs[i&4095])
	}
}

func TestSetProfile(t *testing.T) {
	c := New(dm(1<<10, 64)) // 16 sets
	if c.Profile() != nil {
		t.Fatal("profile should be nil before EnableSetProfile")
	}
	c.EnableSetProfile()
	p := c.Profile()
	if p == nil || len(p.Misses) != 16 {
		t.Fatalf("profile = %+v, want 16 sets", p)
	}

	c.Access(0, false)     // miss, set 0
	c.Access(0, false)     // hit: no profile change
	c.Access(1<<10, false) // miss, set 0, evicts 0
	c.Access(2*64, false)  // miss, set 2
	if p.Misses[0] != 2 || p.Misses[2] != 1 {
		t.Errorf("misses = %v", p.Misses)
	}
	if p.Evictions[0] != 1 || p.Evictions[2] != 0 {
		t.Errorf("evictions = %v", p.Evictions)
	}

	c.Invalidate(2 * 64)
	c.Invalidate(5 * 64) // not present: no count
	if p.Invalidations[2] != 1 || p.Invalidations[5] != 0 {
		t.Errorf("invalidations = %v", p.Invalidations)
	}

	occ := c.SetOccupancy()
	if len(occ) != 16 {
		t.Fatalf("occupancy sets = %d", len(occ))
	}
	// Direct-mapped: set 0 holds one line (full), set 2 was invalidated.
	if occ[0] != 1 || occ[2] != 0 {
		t.Errorf("occupancy = %v", occ)
	}
}

func TestSetProfileDisabledIsFree(t *testing.T) {
	// Without EnableSetProfile the hot path must not allocate or count.
	c := New(dm(1<<10, 64))
	c.Access(0, false)
	c.Access(1<<10, false)
	c.Invalidate(0)
	if c.Profile() != nil {
		t.Error("profile materialized without being enabled")
	}
}
