// Package cache implements the set-associative cache model used for both
// the on-chip (virtually indexed) and external (physically indexed)
// caches, and a fully-associative shadow cache used to split replacement
// misses into conflict and capacity misses — the decomposition behind
// the paper's Figure 2 memory-system breakdown (§4.1) and the conflict
// bars of Figures 6–8.
package cache
