// Package cache implements the set-associative cache model used for
// every level of the simulated hierarchy — the on-chip (virtually
// indexed) L1s, the mid-level latency filters, and each slice of the
// physically indexed last-level cache (a sliced LLC is several
// instances of this model selected by an address-bit hash; see
// arch.SliceHash and MACHINES.md) — and a fully-associative shadow
// cache used to split replacement misses into conflict and capacity
// misses, the decomposition behind the paper's Figure 2 memory-system
// breakdown (§4.1) and the conflict bars of Figures 6–8.
package cache
