package cache

import (
	"repro/internal/arch"
)

// way is one line slot; ways within a set are ordered most-recently-used
// first, so eviction always takes the last element.
type way struct {
	lineAddr uint64 // line-aligned address; zero is valid so track presence
	valid    bool
	dirty    bool
}

// Cache is a set-associative, write-back, write-allocate cache with true
// LRU replacement. It is indexed by whatever address is passed in —
// virtual for on-chip caches, physical for the external cache — which is
// exactly the distinction that makes page colors matter (§2.1).
type Cache struct {
	Geom arch.CacheGeometry
	sets [][]way

	// Precomputed indexing: arch.Validate guarantees power-of-two line
	// size and set count, so the per-access address→(line, set) split is
	// a shift and a mask, never a 64-bit division.
	lineShift uint
	lineMask  uint64 // low bits within a line
	setMask   uint64 // set index mask after the line shift

	// counters
	Accesses uint64
	Hits     uint64

	// prof, when enabled, records per-set miss/eviction/invalidation
	// counts for the observability layer; nil by default so the hot path
	// pays only an untaken branch on misses.
	prof *SetProfile
}

// SetProfile holds per-set event counters, indexed by set number.
type SetProfile struct {
	Misses        []uint64 // allocations into the set (demand misses)
	Evictions     []uint64 // valid lines displaced from the set
	Invalidations []uint64 // lines removed by coherence actions
}

// New creates an empty cache with the given geometry.
func New(g arch.CacheGeometry) *Cache {
	sets := make([][]way, g.Sets())
	backing := make([]way, g.Sets()*g.Assoc)
	for i := range sets {
		sets[i] = backing[i*g.Assoc : (i+1)*g.Assoc : (i+1)*g.Assoc]
	}
	return &Cache{
		Geom:      g,
		sets:      sets,
		lineShift: g.LineShift(),
		lineMask:  uint64(g.LineSize - 1),
		setMask:   uint64(g.Sets() - 1),
	}
}

// lineAddr and setOf are the division-free forms of Geom.LineAddr and
// Geom.SetOf used on every access.
func (c *Cache) lineAddr(addr uint64) uint64 { return addr &^ c.lineMask }
func (c *Cache) setOf(addr uint64) uint64    { return (addr >> c.lineShift) & c.setMask }

// Result reports the outcome of an Access.
type Result struct {
	Hit         bool
	Evicted     bool   // a valid line was displaced
	VictimAddr  uint64 // line address of the displaced line
	VictimDirty bool   // displaced line requires a writeback
}

// Access looks up addr, allocating on miss, and returns the outcome.
// write marks the (resulting) line dirty.
func (c *Cache) Access(addr uint64, write bool) Result {
	c.Accesses++
	la := c.lineAddr(addr)
	si := c.setOf(addr)
	set := c.sets[si]
	for i := range set {
		if set[i].valid && set[i].lineAddr == la {
			c.Hits++
			w := set[i]
			w.dirty = w.dirty || write
			copy(set[1:i+1], set[:i]) // move to MRU
			set[0] = w
			return Result{Hit: true}
		}
	}
	// Miss: evict LRU way.
	last := len(set) - 1
	res := Result{}
	if set[last].valid {
		res.Evicted = true
		res.VictimAddr = set[last].lineAddr
		res.VictimDirty = set[last].dirty
	}
	copy(set[1:], set[:last])
	set[0] = way{lineAddr: la, valid: true, dirty: write}
	if c.prof != nil {
		c.prof.Misses[si]++
		if res.Evicted {
			c.prof.Evictions[si]++
		}
	}
	return res
}

// Probe reports whether addr is present without disturbing LRU state.
func (c *Cache) Probe(addr uint64) bool {
	la := c.lineAddr(addr)
	set := c.sets[c.setOf(addr)]
	for i := range set {
		if set[i].valid && set[i].lineAddr == la {
			return true
		}
	}
	return false
}

// Invalidate removes addr's line if present, returning (present, dirty).
// Used by the coherence protocol when another CPU writes the line.
func (c *Cache) Invalidate(addr uint64) (present, dirty bool) {
	la := c.lineAddr(addr)
	set := c.sets[c.setOf(addr)]
	for i := range set {
		if set[i].valid && set[i].lineAddr == la {
			dirty = set[i].dirty
			copy(set[i:], set[i+1:]) // compact, keeping LRU order
			set[len(set)-1] = way{}
			if c.prof != nil {
				c.prof.Invalidations[c.setOf(addr)]++
			}
			return true, dirty
		}
	}
	return false, false
}

// Clean clears the dirty bit of addr's line if present (after a writeback
// or a downgrade to shared state).
func (c *Cache) Clean(addr uint64) {
	la := c.lineAddr(addr)
	set := c.sets[c.setOf(addr)]
	for i := range set {
		if set[i].valid && set[i].lineAddr == la {
			set[i].dirty = false
			return
		}
	}
}

// MarkDirty sets the dirty bit of addr's line if present without
// touching LRU state; used when an on-chip dirty victim is written back
// into the (inclusive) external cache.
func (c *Cache) MarkDirty(addr uint64) {
	la := c.lineAddr(addr)
	set := c.sets[c.setOf(addr)]
	for i := range set {
		if set[i].valid && set[i].lineAddr == la {
			set[i].dirty = true
			return
		}
	}
}

// Flush empties the cache (program start).
func (c *Cache) Flush() {
	for _, set := range c.sets {
		for i := range set {
			set[i] = way{}
		}
	}
}

// EnableSetProfile starts per-set event counting (observability layer).
func (c *Cache) EnableSetProfile() {
	n := len(c.sets)
	c.prof = &SetProfile{
		Misses:        make([]uint64, n),
		Evictions:     make([]uint64, n),
		Invalidations: make([]uint64, n),
	}
}

// Profile returns the per-set counters, nil unless EnableSetProfile was
// called.
func (c *Cache) Profile() *SetProfile { return c.prof }

// SetOccupancy returns the fraction of valid ways in each set.
func (c *Cache) SetOccupancy() []float64 {
	occ := make([]float64, len(c.sets))
	for si, set := range c.sets {
		valid := 0
		for i := range set {
			if set[i].valid {
				valid++
			}
		}
		occ[si] = float64(valid) / float64(len(set))
	}
	return occ
}

// Utilization returns the fraction of sets holding at least one valid
// line; the paper's Figure 3 argument is that sparse access patterns
// leave external-cache regions unused.
func (c *Cache) Utilization() float64 {
	used := 0
	for _, set := range c.sets {
		for i := range set {
			if set[i].valid {
				used++
				break
			}
		}
	}
	return float64(used) / float64(len(c.sets))
}
