package trace

import "fmt"

// Kind classifies a reference.
type Kind uint8

const (
	// Read is a data load.
	Read Kind = iota
	// Write is a data store.
	Write
	// Inst is an instruction fetch (fpppp is bound by these, §4.1).
	Inst
	// Prefetch is a non-binding software prefetch (R10000-style, §6.2):
	// dropped on a TLB miss, fills the external cache only.
	Prefetch
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Read:
		return "read"
	case Write:
		return "write"
	case Inst:
		return "inst"
	case Prefetch:
		return "prefetch"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// IsData reports whether the reference touches the data segment.
func (k Kind) IsData() bool { return k != Inst }

// Ref is a single memory reference in a CPU's instruction stream.
type Ref struct {
	Kind  Kind
	VAddr uint64 // virtual address
	Size  uint8  // bytes (8 for double-precision array elements)
	// Work is the number of non-memory instructions executed since the
	// previous reference; the simulator charges them at 1 cycle each.
	Work uint32
}

// Stream produces the reference sequence of one CPU for one execution
// region. Next returns false when the region is exhausted.
type Stream interface {
	Next(r *Ref) bool
}

// SliceStream adapts a []Ref to a Stream; used heavily in tests.
type SliceStream struct {
	Refs []Ref
	pos  int
}

// Next implements Stream.
func (s *SliceStream) Next(r *Ref) bool {
	if s.pos >= len(s.Refs) {
		return false
	}
	*r = s.Refs[s.pos]
	s.pos++
	return true
}

// Reset rewinds the stream to the beginning.
func (s *SliceStream) Reset() { s.pos = 0 }

// FuncStream adapts a generator function to a Stream.
type FuncStream func(r *Ref) bool

// Next implements Stream.
func (f FuncStream) Next(r *Ref) bool { return f(r) }

// Empty is a Stream that yields nothing (idle CPU in a region).
var Empty Stream = FuncStream(func(*Ref) bool { return false })

// Concat chains streams end to end.
func Concat(streams ...Stream) Stream {
	i := 0
	return FuncStream(func(r *Ref) bool {
		for i < len(streams) {
			if streams[i].Next(r) {
				return true
			}
			i++
		}
		return false
	})
}

// Count drains s and returns the number of references; for tests.
func Count(s Stream) int {
	var r Ref
	n := 0
	for s.Next(&r) {
		n++
	}
	return n
}
