package trace

import (
	"strings"
	"testing"
)

// TestConvertText parses the documented text form — comments, blank
// lines, hex and decimal addresses, long and short op names, optional
// size and work fields — and checks the resulting streams.
func TestConvertText(t *testing.T) {
	const text = `
# pointer-chase fragment: cpu addr op [size [work]]
0 0x1000 r
0 0x1008 w 4
1 4096 read 8 12
1 0x2000 inst
0 0x3000 p 16 3   # trailing comment

1 0x2008 write
`
	f, err := ConvertText(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if f.NumCPUs() != 2 {
		t.Fatalf("NumCPUs = %d, want 2", f.NumCPUs())
	}
	want := [][]Ref{
		{
			{Kind: Read, VAddr: 0x1000, Size: 8},
			{Kind: Write, VAddr: 0x1008, Size: 4},
			{Kind: Prefetch, VAddr: 0x3000, Size: 16, Work: 3},
		},
		{
			{Kind: Read, VAddr: 4096, Size: 8, Work: 12},
			{Kind: Inst, VAddr: 0x2000, Size: 8},
			{Kind: Write, VAddr: 0x2008, Size: 8},
		},
	}
	for cpu, refs := range want {
		if f.Refs(cpu) != uint64(len(refs)) {
			t.Fatalf("cpu %d: %d refs, want %d", cpu, f.Refs(cpu), len(refs))
		}
		s := f.Stream(cpu)
		var r Ref
		for i, w := range refs {
			if !s.Next(&r) || r != w {
				t.Fatalf("cpu %d ref %d: got %+v, want %+v", cpu, i, r, w)
			}
		}
	}
}

// TestConvertTextRoundTrip: text → binary → text-equivalent streams
// must survive a second binary round-trip untouched (the converter
// half of the encode→decode property).
func TestConvertTextRoundTrip(t *testing.T) {
	const text = "0 0x10 r\n1 0x8000000000 w 2 7\n0 0x18 r\n"
	f, err := ConvertText(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	rt, err := DecodeBytes(f.AppendBinary(nil))
	if err != nil {
		t.Fatal(err)
	}
	if rt.Hash() != f.Hash() || rt.TotalRefs() != 3 {
		t.Fatalf("round-trip changed content: %d refs, hashes %v vs %v", rt.TotalRefs(), rt.Hash(), f.Hash())
	}
}

// TestConvertTextErrors is the rejection table for malformed text.
func TestConvertTextErrors(t *testing.T) {
	cases := []struct {
		name, text, want string
	}{
		{"empty", "", "no references"},
		{"comments only", "# nothing\n\n", "no references"},
		{"too few fields", "0 0x10\n", "want 'cpu addr op"},
		{"too many fields", "0 0x10 r 8 0 9\n", "want 'cpu addr op"},
		{"bad cpu", "x 0x10 r\n", "bad cpu"},
		{"negative cpu", "-1 0x10 r\n", "bad cpu"},
		{"cpu out of range", "64 0x10 r\n", "out of range"},
		{"bad address", "0 zzz r\n", "bad address"},
		{"bad op", "0 0x10 q\n", "bad op"},
		{"zero size", "0 0x10 r 0\n", "bad size"},
		{"huge size", "0 0x10 r 300\n", "bad size"},
		{"bad work", "0 0x10 r 8 -3\n", "bad work"},
	}
	for _, tc := range cases {
		_, err := ConvertText(strings.NewReader(tc.text))
		if err == nil {
			t.Errorf("%s: converted without error", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

// TestPreferredColorsSpreadsHotPages: pages that all collide on one
// color by address must come out spread across all colors, hottest
// pages first, and the assignment must be deterministic.
func TestPreferredColorsSpreadsHotPages(t *testing.T) {
	const (
		pageSize = 4096
		colors   = 16
		hot      = 12
	)
	enc, err := NewEncoder(1)
	if err != nil {
		t.Fatal(err)
	}
	// 12 hot pages whose VPNs are congruent mod 16 (all one color under
	// vpn-mod-colors mapping), touched round-robin many times.
	for round := 0; round < 50; round++ {
		for i := 0; i < hot; i++ {
			vaddr := uint64(i*colors) * pageSize
			if err := enc.Add(0, Ref{Kind: Read, VAddr: vaddr, Size: 8}); err != nil {
				t.Fatal(err)
			}
		}
	}
	f := enc.File()

	hints := PreferredColors(f, pageSize, colors, 0)
	if len(hints) != hot {
		t.Fatalf("%d hinted pages, want %d", len(hints), hot)
	}
	used := map[int]int{}
	for vpn, c := range hints {
		if c < 0 || c >= colors {
			t.Fatalf("vpn %d: color %d out of range", vpn, c)
		}
		used[c]++
	}
	for c, n := range used {
		if n != 1 {
			t.Errorf("color %d assigned %d hot pages; equal heat must spread one per color", c, n)
		}
	}
	again := PreferredColors(f, pageSize, colors, 0)
	for vpn, c := range hints {
		if again[vpn] != c {
			t.Fatalf("vpn %d: non-deterministic assignment (%d vs %d)", vpn, c, again[vpn])
		}
	}
}

// TestPreferredColorsPrefixAndDegenerate covers the sampling bound and
// the no-op cases.
func TestPreferredColorsPrefixAndDegenerate(t *testing.T) {
	enc, err := NewEncoder(1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := enc.Add(0, Ref{Kind: Read, VAddr: uint64(i) * 4096, Size: 8}); err != nil {
			t.Fatal(err)
		}
	}
	f := enc.File()
	if got := PreferredColors(f, 4096, 4, 3); len(got) != 3 {
		t.Errorf("prefix 3 sampled %d pages, want 3", len(got))
	}
	if PreferredColors(f, 4096, 1, 0) != nil {
		t.Error("single color produced hints")
	}
	if PreferredColors(f, 4095, 4, 0) != nil {
		t.Error("non-power-of-two page size produced hints")
	}
}
