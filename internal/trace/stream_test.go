package trace

import "testing"

// TestConcatEdgeCases: Concat of nothing and Concat of exhausted
// streams both yield the empty stream, and Concat composes with
// itself.
func TestConcatEdgeCases(t *testing.T) {
	var r Ref
	if Concat().Next(&r) {
		t.Error("Concat() yielded a ref")
	}
	a := &SliceStream{Refs: []Ref{{VAddr: 1}}}
	if got := Count(a); got != 1 {
		t.Fatalf("Count = %d", got)
	}
	if Concat(a).Next(&r) {
		t.Error("Concat over an exhausted stream yielded a ref")
	}
	nested := Concat(Concat(refs(1), refs(2)), refs(3, 4))
	var got []uint64
	for nested.Next(&r) {
		got = append(got, r.VAddr)
	}
	if len(got) != 4 || got[0] != 1 || got[3] != 4 {
		t.Errorf("nested Concat order = %v", got)
	}
}

// TestSliceStreamResetMidStream: Reset rewinds from any position, and
// the replay is identical to the first pass.
func TestSliceStreamResetMidStream(t *testing.T) {
	s := &SliceStream{Refs: []Ref{{VAddr: 10}, {VAddr: 20}, {VAddr: 30}}}
	var r Ref
	if !s.Next(&r) || !s.Next(&r) || r.VAddr != 20 {
		t.Fatalf("setup read = %+v", r)
	}
	s.Reset()
	for i, want := range []uint64{10, 20, 30} {
		if !s.Next(&r) || r.VAddr != want {
			t.Fatalf("replay ref %d = %+v, want VAddr %d", i, r, want)
		}
	}
	if s.Next(&r) {
		t.Error("replay yields past the end")
	}
	s.Reset()
	if Count(s) != 3 {
		t.Error("second Reset did not rewind")
	}
}

// TestFuncStreamInfiniteTruncated: a FuncStream generator works under
// Concat and can be bounded by its own state.
func TestFuncStreamInfiniteTruncated(t *testing.T) {
	n := 0
	gen := FuncStream(func(r *Ref) bool {
		if n >= 5 {
			return false
		}
		r.Kind = Write
		r.VAddr = uint64(100 + n)
		r.Size = 4
		n++
		return true
	})
	c := Concat(gen, refs(999))
	var r Ref
	var got []uint64
	for c.Next(&r) {
		got = append(got, r.VAddr)
	}
	if len(got) != 6 || got[0] != 100 || got[4] != 104 || got[5] != 999 {
		t.Errorf("generator under Concat = %v", got)
	}
}
