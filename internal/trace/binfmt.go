package trace

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"io"
)

// Binary per-CPU trace format ("CDPCTRC1"), the on-disk and on-the-wire
// shape of an external address stream:
//
//	magic   8 bytes  "CDPCTRC1"
//	ncpus   uvarint  1..MaxFileCPUs
//	then, per CPU in order:
//	  nrefs    uvarint  reference count of this CPU's block
//	  blockLen uvarint  encoded byte length of the block
//	  block    blockLen bytes
//	nothing may follow the last block.
//
// Within a block each reference is delta-encoded against per-CPU state
// (previous address starts at 0, previous size at 8):
//
//	ctl     1 byte   bits 0-1 Kind, bit 2 "size follows",
//	                 bit 3 "work follows", bits 4-7 reserved (zero)
//	delta   zigzag uvarint  VAddr - previous VAddr (two's-complement wrap)
//	size    uvarint  only when bit 2 is set; becomes the new previous size
//	work    uvarint  only when bit 3 is set (else 0); must fit uint32
//
// Decode validates everything up front — magic, CPU count, reserved
// bits, varint termination, field ranges, and that every block holds
// exactly its declared reference count with no trailing bytes — because
// trace.Stream has no error channel: once a File exists, its streams
// are infallible. The File keeps only the compressed blocks; streams
// decode on the fly, so a run never materializes the reference slice.
const (
	// Magic is the 8-byte file signature of the binary trace format.
	Magic = "CDPCTRC1"
	// MaxFileCPUs caps the per-CPU stream count a trace file may carry.
	MaxFileCPUs = 64

	ctlKindMask = 0x03
	ctlSize     = 0x04
	ctlWork     = 0x08
	ctlReserved = 0xf0

	initialSize = 8
)

// File is a decoded (validated) binary trace: one reference stream per
// CPU, held in compressed form. The zero File is empty and unusable;
// build one with Decode, an Encoder, or ConvertText.
type File struct {
	counts []uint64
	blocks [][]byte
}

// NumCPUs returns the number of per-CPU streams in the trace.
func (f *File) NumCPUs() int { return len(f.blocks) }

// Refs returns the reference count of one CPU's stream.
func (f *File) Refs(cpu int) uint64 { return f.counts[cpu] }

// TotalRefs returns the reference count summed over all CPUs.
func (f *File) TotalRefs() uint64 {
	var n uint64
	for _, c := range f.counts {
		n += c
	}
	return n
}

// EncodedSize returns the serialized byte length of the trace.
func (f *File) EncodedSize() int {
	n := len(Magic) + uvarintLen(uint64(len(f.blocks)))
	for cpu, b := range f.blocks {
		n += uvarintLen(f.counts[cpu]) + uvarintLen(uint64(len(b))) + len(b)
	}
	return n
}

// AppendBinary serializes the trace onto b.
func (f *File) AppendBinary(b []byte) []byte {
	b = append(b, Magic...)
	b = binary.AppendUvarint(b, uint64(len(f.blocks)))
	for cpu, blk := range f.blocks {
		b = binary.AppendUvarint(b, f.counts[cpu])
		b = binary.AppendUvarint(b, uint64(len(blk)))
		b = append(b, blk...)
	}
	return b
}

// WriteTo serializes the trace; it implements io.WriterTo.
func (f *File) WriteTo(w io.Writer) (int64, error) {
	n, err := w.Write(f.AppendBinary(make([]byte, 0, f.EncodedSize())))
	return int64(n), err
}

// Hash returns the hex SHA-256 of the serialized trace. Two Files hash
// equal exactly when their reference sequences and CPU shapes agree,
// so the hash is a content address (the scheduler's memo key and the
// server's trace store both key on it).
func (f *File) Hash() string {
	sum := sha256.Sum256(f.AppendBinary(make([]byte, 0, f.EncodedSize())))
	return hex.EncodeToString(sum[:])
}

// Stream returns an independent cursor over one CPU's references,
// decoding from the compressed block as it goes. CPUs at or beyond
// NumCPUs yield the empty stream, so a machine wider than the trace
// simply idles its extra processors.
func (f *File) Stream(cpu int) Stream {
	if cpu < 0 || cpu >= len(f.blocks) {
		return Empty
	}
	return &blockStream{data: f.blocks[cpu], left: f.counts[cpu], size: initialSize}
}

// blockStream decodes one CPU's block. Decode validated the block, so
// the fast path here trusts it; a short varint (impossible after
// validation) just ends the stream.
type blockStream struct {
	data []byte
	left uint64
	prev uint64
	size uint8
}

// Next implements Stream.
func (s *blockStream) Next(r *Ref) bool {
	if s.left == 0 || len(s.data) == 0 {
		return false
	}
	ctl := s.data[0]
	s.data = s.data[1:]
	zz, n := binary.Uvarint(s.data)
	if n <= 0 {
		s.left = 0
		return false
	}
	s.data = s.data[n:]
	s.prev += uint64(unzigzag(zz))
	if ctl&ctlSize != 0 {
		v, n := binary.Uvarint(s.data)
		if n <= 0 {
			s.left = 0
			return false
		}
		s.data = s.data[n:]
		s.size = uint8(v)
	}
	var work uint32
	if ctl&ctlWork != 0 {
		v, n := binary.Uvarint(s.data)
		if n <= 0 {
			s.left = 0
			return false
		}
		s.data = s.data[n:]
		work = uint32(v)
	}
	r.Kind = Kind(ctl & ctlKindMask)
	r.VAddr = s.prev
	r.Size = s.size
	r.Work = work
	s.left--
	return true
}

// DecodeBytes parses and fully validates a serialized binary trace.
// Validation includes varint canonicality, so an accepted trace
// re-serializes to its exact input bytes and Hash is a true content
// address.
func DecodeBytes(data []byte) (*File, error) {
	if len(data) < len(Magic) || string(data[:len(Magic)]) != Magic {
		return nil, fmt.Errorf("trace: bad magic (want %q)", Magic)
	}
	data = data[len(Magic):]
	ncpus, n := readUvarint(data)
	if n <= 0 {
		return nil, fmt.Errorf("trace: truncated CPU count")
	}
	data = data[n:]
	if ncpus < 1 || ncpus > MaxFileCPUs {
		return nil, fmt.Errorf("trace: %d CPUs (want 1..%d)", ncpus, MaxFileCPUs)
	}
	f := &File{counts: make([]uint64, ncpus), blocks: make([][]byte, ncpus)}
	for cpu := 0; cpu < int(ncpus); cpu++ {
		nrefs, n := readUvarint(data)
		if n <= 0 {
			return nil, fmt.Errorf("trace: cpu %d: truncated reference count", cpu)
		}
		data = data[n:]
		blockLen, n := readUvarint(data)
		if n <= 0 {
			return nil, fmt.Errorf("trace: cpu %d: truncated block length", cpu)
		}
		data = data[n:]
		if blockLen > uint64(len(data)) {
			return nil, fmt.Errorf("trace: cpu %d: block length %d exceeds remaining %d bytes", cpu, blockLen, len(data))
		}
		block := data[:blockLen]
		data = data[blockLen:]
		if err := validateBlock(cpu, block, nrefs); err != nil {
			return nil, err
		}
		f.counts[cpu] = nrefs
		f.blocks[cpu] = block
	}
	if len(data) != 0 {
		return nil, fmt.Errorf("trace: %d trailing bytes after the last block", len(data))
	}
	return f, nil
}

// Decode reads and validates a serialized binary trace. The whole
// input is read: the format's blocks are length-prefixed, so bounded-
// memory callers (the server) cap the reader before decoding.
func Decode(r io.Reader) (*File, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("trace: reading: %w", err)
	}
	return DecodeBytes(data)
}

// validateBlock walks one CPU's block and checks that it decodes to
// exactly nrefs well-formed references with no trailing bytes.
func validateBlock(cpu int, block []byte, nrefs uint64) error {
	bad := func(ref uint64, format string, args ...any) error {
		return fmt.Errorf("trace: cpu %d ref %d: %s", cpu, ref, fmt.Sprintf(format, args...))
	}
	for i := uint64(0); i < nrefs; i++ {
		if len(block) == 0 {
			return bad(i, "block ends %d references early", nrefs-i)
		}
		ctl := block[0]
		block = block[1:]
		if ctl&ctlReserved != 0 {
			return bad(i, "reserved control bits %#02x set", ctl&ctlReserved)
		}
		_, n := readUvarint(block)
		if n <= 0 {
			return bad(i, "bad address delta varint")
		}
		block = block[n:]
		if ctl&ctlSize != 0 {
			v, n := readUvarint(block)
			if n <= 0 {
				return bad(i, "bad size varint")
			}
			if v > 255 {
				return bad(i, "size %d exceeds 255", v)
			}
			block = block[n:]
		}
		if ctl&ctlWork != 0 {
			v, n := readUvarint(block)
			if n <= 0 {
				return bad(i, "bad work varint")
			}
			if v > 1<<32-1 {
				return bad(i, "work %d exceeds uint32", v)
			}
			block = block[n:]
		}
	}
	if len(block) != 0 {
		return fmt.Errorf("trace: cpu %d: %d trailing bytes after %d references", cpu, len(block), nrefs)
	}
	return nil
}

// Encoder builds a binary trace incrementally, one reference at a
// time per CPU; File finalizes it. The per-CPU delta state mirrors
// the decoder's.
type Encoder struct {
	counts []uint64
	bufs   [][]byte
	prev   []uint64
	size   []uint8
}

// NewEncoder returns an encoder for a trace with ncpus streams.
func NewEncoder(ncpus int) (*Encoder, error) {
	if ncpus < 1 || ncpus > MaxFileCPUs {
		return nil, fmt.Errorf("trace: %d CPUs (want 1..%d)", ncpus, MaxFileCPUs)
	}
	e := &Encoder{
		counts: make([]uint64, ncpus),
		bufs:   make([][]byte, ncpus),
		prev:   make([]uint64, ncpus),
		size:   make([]uint8, ncpus),
	}
	for i := range e.size {
		e.size[i] = initialSize
	}
	return e, nil
}

// Add appends one reference to a CPU's stream.
func (e *Encoder) Add(cpu int, r Ref) error {
	if cpu < 0 || cpu >= len(e.bufs) {
		return fmt.Errorf("trace: cpu %d out of range (trace has %d)", cpu, len(e.bufs))
	}
	if r.Kind > Prefetch {
		return fmt.Errorf("trace: cpu %d: unknown reference kind %d", cpu, r.Kind)
	}
	ctl := byte(r.Kind)
	if r.Size != e.size[cpu] {
		ctl |= ctlSize
	}
	if r.Work != 0 {
		ctl |= ctlWork
	}
	b := append(e.bufs[cpu], ctl)
	b = binary.AppendUvarint(b, zigzag(int64(r.VAddr-e.prev[cpu])))
	if ctl&ctlSize != 0 {
		b = binary.AppendUvarint(b, uint64(r.Size))
		e.size[cpu] = r.Size
	}
	if ctl&ctlWork != 0 {
		b = binary.AppendUvarint(b, uint64(r.Work))
	}
	e.bufs[cpu] = b
	e.prev[cpu] = r.VAddr
	e.counts[cpu]++
	return nil
}

// AddStream drains a Stream into a CPU's block.
func (e *Encoder) AddStream(cpu int, s Stream) error {
	var r Ref
	for s.Next(&r) {
		if err := e.Add(cpu, r); err != nil {
			return err
		}
	}
	return nil
}

// File finalizes the encoder. The returned File aliases the encoder's
// buffers; do not Add afterwards.
func (e *Encoder) File() *File {
	f := &File{counts: e.counts, blocks: e.bufs}
	for i, b := range f.blocks {
		if b == nil {
			f.blocks[i] = []byte{}
		}
	}
	return f
}

// readUvarint decodes a canonical uvarint: truncated, overlong and
// non-minimal encodings all return n == 0, so every accepted field has
// exactly one byte representation.
func readUvarint(b []byte) (uint64, int) {
	v, n := binary.Uvarint(b)
	if n <= 0 || uvarintLen(v) != n {
		return 0, 0
	}
	return v, n
}

func zigzag(d int64) uint64   { return uint64(d<<1) ^ uint64(d>>63) }
func unzigzag(z uint64) int64 { return int64(z>>1) ^ -int64(z&1) }
func uvarintLen(v uint64) int { return len(binary.AppendUvarint(nil, v)) }
