package trace

import "sort"

// DefaultSummaryPrefix is the per-CPU reference budget the online
// summarizer samples when the caller passes no explicit prefix. A
// million references per CPU sees every page of any working set the
// simulated caches could hold while keeping the sampling pass a small
// fraction of the simulation itself.
const DefaultSummaryPrefix = 1 << 20

// PreferredColors is the online access-pattern summarizer: CDPC
// without the compiler. External traces carry no compiler summaries,
// so the careful-mapping hints the paper derives from data-usage
// analysis (§2.2) are reconstructed from the addresses themselves: a
// sampled prefix of each CPU's stream is tallied into per-page access
// heat, and the pages are then assigned preferred colors hottest
// first, each taking the color with the least accumulated heat. Hot
// pages therefore spread evenly across the cache's colors regardless
// of their virtual addresses or fault order — exactly the equalized
// page-to-color distribution compiler-directed coloring achieves on
// IR workloads — and the result feeds the existing hint machinery
// (AddressSpace.Advise) unchanged.
//
// prefix bounds the references sampled per CPU (0 means
// DefaultSummaryPrefix); pageSize must be a positive power of two.
// With fewer than two colors there is nothing to steer, and the
// result is nil.
func PreferredColors(f *File, pageSize, colors int, prefix uint64) map[uint64]int {
	if colors < 2 || pageSize <= 0 || pageSize&(pageSize-1) != 0 {
		return nil
	}
	if prefix == 0 {
		prefix = DefaultSummaryPrefix
	}
	shift := uint(0)
	for 1<<shift != pageSize {
		shift++
	}

	heat := map[uint64]uint64{}
	var r Ref
	for cpu := 0; cpu < f.NumCPUs(); cpu++ {
		s := f.Stream(cpu)
		for n := uint64(0); n < prefix && s.Next(&r); n++ {
			heat[r.VAddr>>shift]++
		}
	}
	if len(heat) == 0 {
		return nil
	}

	// Deterministic assignment order: hottest first, VPN breaking ties,
	// so the hint map is a pure function of the trace content.
	pages := make([]uint64, 0, len(heat))
	for vpn := range heat {
		pages = append(pages, vpn)
	}
	sort.Slice(pages, func(i, j int) bool {
		hi, hj := heat[pages[i]], heat[pages[j]]
		if hi != hj {
			return hi > hj
		}
		return pages[i] < pages[j]
	})

	hints := make(map[uint64]int, len(pages))
	load := make([]uint64, colors)
	for _, vpn := range pages {
		best := 0
		for c := 1; c < colors; c++ {
			if load[c] < load[best] {
				best = c
			}
		}
		hints[vpn] = best
		load[best] += heat[vpn]
	}
	return hints
}
