package trace

import (
	"bytes"
	"strings"
	"testing"
)

// lcg is a tiny deterministic generator for property tests.
type lcg uint64

func (g *lcg) next() uint64 {
	*g = *g*6364136223846793005 + 1442695040888963407
	return uint64(*g) >> 1
}

// genRefs builds a pseudo-random but deterministic reference sequence
// exercising every Kind, forward and backward deltas, size changes and
// work fields.
func genRefs(seed uint64, n int) []Ref {
	g := lcg(seed)
	sizes := []uint8{1, 2, 4, 8, 16, 128}
	refs := make([]Ref, n)
	addr := uint64(0x10000)
	for i := range refs {
		switch g.next() % 4 {
		case 0:
			addr += g.next() % 4096
		case 1:
			addr -= g.next() % 4096
		case 2:
			addr = g.next() % (1 << 40)
		case 3:
			addr += 8
		}
		refs[i] = Ref{
			Kind:  Kind(g.next() % 4),
			VAddr: addr,
			Size:  sizes[g.next()%uint64(len(sizes))],
		}
		if g.next()%3 == 0 {
			refs[i].Work = uint32(g.next() % 1000)
		}
	}
	return refs
}

func encodeCPUs(t *testing.T, percpu [][]Ref) *File {
	t.Helper()
	enc, err := NewEncoder(len(percpu))
	if err != nil {
		t.Fatal(err)
	}
	for cpu, refs := range percpu {
		for _, r := range refs {
			if err := enc.Add(cpu, r); err != nil {
				t.Fatal(err)
			}
		}
	}
	return enc.File()
}

// TestRoundTripProperty is the converter's encode→decode property
// test: serializing a File and decoding it back must reproduce the
// exact reference sequence of every CPU, across seeds and shapes
// (including an empty per-CPU block).
func TestRoundTripProperty(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		percpu := [][]Ref{
			genRefs(seed, 500),
			genRefs(seed*77, 1),
			nil, // a CPU that never references memory
			genRefs(seed*991, 137),
		}
		f := encodeCPUs(t, percpu)

		var buf bytes.Buffer
		if _, err := f.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		got, err := DecodeBytes(buf.Bytes())
		if err != nil {
			t.Fatalf("seed %d: decoding round-trip: %v", seed, err)
		}
		if got.NumCPUs() != len(percpu) {
			t.Fatalf("seed %d: %d CPUs after round-trip, want %d", seed, got.NumCPUs(), len(percpu))
		}
		for cpu, want := range percpu {
			if got.Refs(cpu) != uint64(len(want)) {
				t.Fatalf("seed %d cpu %d: %d refs, want %d", seed, cpu, got.Refs(cpu), len(want))
			}
			s := got.Stream(cpu)
			var r Ref
			for i, w := range want {
				if !s.Next(&r) {
					t.Fatalf("seed %d cpu %d: stream ended at ref %d of %d", seed, cpu, i, len(want))
				}
				if r != w {
					t.Fatalf("seed %d cpu %d ref %d: got %+v, want %+v", seed, cpu, i, r, w)
				}
			}
			if s.Next(&r) {
				t.Fatalf("seed %d cpu %d: stream yields past its %d refs", seed, cpu, len(want))
			}
		}
		if got.Hash() != f.Hash() {
			t.Fatalf("seed %d: content hash changed over round-trip", seed)
		}
	}
}

// TestStreamsAreIndependent verifies two cursors over the same CPU do
// not share decode state.
func TestStreamsAreIndependent(t *testing.T) {
	refs := genRefs(42, 64)
	f := encodeCPUs(t, [][]Ref{refs})
	a, b := f.Stream(0), f.Stream(0)
	var ra, rb Ref
	for i := range refs {
		if !a.Next(&ra) || !b.Next(&rb) || ra != rb || ra != refs[i] {
			t.Fatalf("ref %d: cursors diverged: %+v vs %+v (want %+v)", i, ra, rb, refs[i])
		}
	}
}

// TestStreamOutOfRange: CPUs beyond the trace idle on the empty stream.
func TestStreamOutOfRange(t *testing.T) {
	f := encodeCPUs(t, [][]Ref{genRefs(7, 3)})
	var r Ref
	if f.Stream(1).Next(&r) || f.Stream(-1).Next(&r) {
		t.Fatal("out-of-range CPU stream yielded a reference")
	}
}

// corrupt returns a valid serialized trace for mutation-based decode
// tests.
func corpusBytes(t *testing.T) []byte {
	t.Helper()
	f := encodeCPUs(t, [][]Ref{genRefs(3, 20), genRefs(5, 10)})
	return f.AppendBinary(nil)
}

// TestDecodeMalformed is the malformed/truncation table: every entry
// must be rejected with an error, never a panic or a silent partial
// File.
func TestDecodeMalformed(t *testing.T) {
	valid := corpusBytes(t)
	cases := []struct {
		name string
		data []byte
		want string
	}{
		{"empty", nil, "bad magic"},
		{"short magic", []byte("CDPC"), "bad magic"},
		{"wrong magic", []byte("NOTATRACE-------"), "bad magic"},
		{"magic only", []byte(Magic), "truncated CPU count"},
		{"zero cpus", append([]byte(Magic), 0), "0 CPUs"},
		{"too many cpus", append([]byte(Magic), 200, 1), "200 CPUs"},
		{"missing ref count", append([]byte(Magic), 1), "truncated reference count"},
		{"non-canonical cpu count", append([]byte(Magic), 0x81, 0x00), "truncated CPU count"},
		{"non-canonical delta", append([]byte(Magic), 1, 1, 3, 0x00, 0x80, 0x00), "bad address delta varint"},
		{"missing block length", append([]byte(Magic), 1, 1), "truncated block length"},
		{"block length overruns", append([]byte(Magic), 1, 1, 50, 0x00, 0x00), "exceeds remaining"},
		{"reserved control bits", append([]byte(Magic), 1, 1, 2, 0x10, 0x00), "reserved control bits"},
		{"block ends early", append([]byte(Magic), 1, 2, 2, 0x00, 0x00), "references early"},
		{"dangling delta varint", append([]byte(Magic), 1, 1, 2, 0x00, 0x80), "bad address delta varint"},
		{"missing size field", append([]byte(Magic), 1, 1, 2, 0x04, 0x00), "bad size varint"},
		{"size out of range", append([]byte(Magic), 1, 1, 4, 0x04, 0x00, 0x80, 0x02), "exceeds 255"},
		{"missing work field", append([]byte(Magic), 1, 1, 2, 0x08, 0x00), "bad work varint"},
		{"work out of range", append([]byte(Magic), 1, 1, 7, 0x08, 0x00, 0x80, 0x80, 0x80, 0x80, 0x10), "exceeds uint32"},
		{"trailing block bytes", append([]byte(Magic), 1, 1, 4, 0x00, 0x00, 0x00, 0x00), "trailing bytes after 1 references"},
		{"trailing file bytes", append(append([]byte{}, valid...), 0xff), "trailing bytes after the last block"},
		{"truncated mid-file", valid[:len(valid)-3], ""},
	}
	for _, tc := range cases {
		_, err := DecodeBytes(tc.data)
		if err == nil {
			t.Errorf("%s: decoded without error", tc.name)
			continue
		}
		if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

// TestDecodeTruncationSweep drops every possible tail from a valid
// trace; only the full input may decode.
func TestDecodeTruncationSweep(t *testing.T) {
	valid := corpusBytes(t)
	for cut := 0; cut < len(valid); cut++ {
		if _, err := DecodeBytes(valid[:cut]); err == nil {
			t.Fatalf("truncation to %d of %d bytes decoded without error", cut, len(valid))
		}
	}
	if _, err := DecodeBytes(valid); err != nil {
		t.Fatalf("full input failed to decode: %v", err)
	}
}

// TestEncoderRejects covers the encoder's own range checks.
func TestEncoderRejects(t *testing.T) {
	if _, err := NewEncoder(0); err == nil {
		t.Error("0-CPU encoder accepted")
	}
	if _, err := NewEncoder(MaxFileCPUs + 1); err == nil {
		t.Error("oversized encoder accepted")
	}
	enc, err := NewEncoder(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := enc.Add(1, Ref{Size: 8}); err == nil {
		t.Error("out-of-range CPU accepted")
	}
	if err := enc.Add(0, Ref{Kind: Kind(9), Size: 8}); err == nil {
		t.Error("unknown kind accepted")
	}
}
