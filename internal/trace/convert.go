package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ConvertText parses the common whitespace-separated text trace form
// into a binary File:
//
//	cpu addr op [size [work]]
//
// with one reference per line. cpu is a decimal CPU index, addr a
// virtual address (0x-prefixed hex, 0-prefixed octal, or decimal), op
// one of r/read, w/write, i/inst, p/prefetch. size (bytes, default 8)
// and work (non-memory instructions since the previous reference,
// default 0) are optional decimals. Blank lines are skipped and '#'
// starts a comment. The CPU count of the resulting trace is the
// largest CPU index seen plus one.
func ConvertText(r io.Reader) (*File, error) {
	type pending struct {
		cpu int
		ref Ref
	}
	var refs []pending
	ncpus := 0

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		bad := func(format string, args ...any) error {
			return fmt.Errorf("trace: line %d: %s", lineno, fmt.Sprintf(format, args...))
		}
		if len(fields) < 3 || len(fields) > 5 {
			return nil, bad("want 'cpu addr op [size [work]]', got %d fields", len(fields))
		}
		cpu, err := strconv.Atoi(fields[0])
		if err != nil || cpu < 0 {
			return nil, bad("bad cpu %q", fields[0])
		}
		if cpu >= MaxFileCPUs {
			return nil, bad("cpu %d out of range (max %d)", cpu, MaxFileCPUs-1)
		}
		addr, err := strconv.ParseUint(fields[1], 0, 64)
		if err != nil {
			return nil, bad("bad address %q", fields[1])
		}
		var kind Kind
		switch strings.ToLower(fields[2]) {
		case "r", "read":
			kind = Read
		case "w", "write":
			kind = Write
		case "i", "inst":
			kind = Inst
		case "p", "prefetch":
			kind = Prefetch
		default:
			return nil, bad("bad op %q (want r, w, i or p)", fields[2])
		}
		ref := Ref{Kind: kind, VAddr: addr, Size: initialSize}
		if len(fields) >= 4 {
			size, err := strconv.ParseUint(fields[3], 10, 8)
			if err != nil || size == 0 {
				return nil, bad("bad size %q (want 1..255)", fields[3])
			}
			ref.Size = uint8(size)
		}
		if len(fields) == 5 {
			work, err := strconv.ParseUint(fields[4], 10, 32)
			if err != nil {
				return nil, bad("bad work %q", fields[4])
			}
			ref.Work = uint32(work)
		}
		refs = append(refs, pending{cpu: cpu, ref: ref})
		if cpu+1 > ncpus {
			ncpus = cpu + 1
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: reading text trace: %w", err)
	}
	if ncpus == 0 {
		return nil, fmt.Errorf("trace: text trace holds no references")
	}
	enc, err := NewEncoder(ncpus)
	if err != nil {
		return nil, err
	}
	for _, p := range refs {
		if err := enc.Add(p.cpu, p.ref); err != nil {
			return nil, err
		}
	}
	return enc.File(), nil
}
