// Package trace defines the memory-reference model shared by the workload
// interpreter and the machine simulator. A workload is executed as a set
// of per-CPU reference streams; the simulator consumes them in timestamp
// order and charges cache, bus and memory costs — the trace-driven
// stand-in for the paper's SimOS execution environment (§3.2).
package trace
