package trace

// Reuse-distance analysis: the LRU stack distance of each reference is
// the number of distinct cache lines touched since the line's previous
// access. The resulting histogram gives the miss ratio of a
// fully-associative LRU cache of ANY size in one pass — the working-set
// curves that justify the paper's capacity-vs-conflict split (§4.1) and
// this repository's scaled data-set sizes (DESIGN.md).
//
// The computation uses the classic timestamp + Fenwick-tree algorithm:
// O(n log n) over the reference count.

// DistanceHistogram buckets stack distances by powers of two:
// Buckets[i] counts references with distance in [2^i, 2^(i+1)), except
// Buckets[0] which counts distances 0 and 1. Cold counts first-ever
// accesses (infinite distance).
type DistanceHistogram struct {
	Buckets []uint64
	Cold    uint64
	Total   uint64
}

// MissRatioAt returns the miss ratio of a fully-associative LRU cache
// holding `lines` lines: the fraction of references whose stack distance
// is ≥ lines (bucket granularity makes this an upper-bound estimate).
func (h *DistanceHistogram) MissRatioAt(lines int) float64 {
	if h.Total == 0 {
		return 0
	}
	misses := h.Cold
	for i, n := range h.Buckets {
		lo := 1 << uint(i)
		if i == 0 {
			lo = 0
		}
		if lo >= lines {
			misses += n
		}
	}
	return float64(misses) / float64(h.Total)
}

// fenwick is a binary indexed tree over reference timestamps; a 1 marks
// the most recent access of some line.
type fenwick struct {
	tree []int
}

func newFenwick(n int) *fenwick { return &fenwick{tree: make([]int, n+1)} }

func (f *fenwick) add(i, delta int) {
	for i++; i < len(f.tree); i += i & (-i) {
		f.tree[i] += delta
	}
}

// sum returns the prefix sum over [0, i].
func (f *fenwick) sum(i int) int {
	s := 0
	for i++; i > 0; i -= i & (-i) {
		s += f.tree[i]
	}
	return s
}

// grow doubles the tree capacity, preserving marks.
func (f *fenwick) grow() *fenwick {
	old := f
	nf := newFenwick((len(old.tree) - 1) * 2)
	// Recover point values by prefix-sum differencing.
	prev := 0
	for i := 0; i < len(old.tree)-1; i++ {
		s := old.sum(i)
		if v := s - prev; v != 0 {
			nf.add(i, v)
		}
		prev = s
	}
	return nf
}

// LineDistances computes the stack-distance histogram of s at the given
// line granularity.
func LineDistances(s Stream, lineSize int) *DistanceHistogram {
	h := &DistanceHistogram{Buckets: make([]uint64, 40)}
	mask := ^uint64(lineSize - 1)
	lastAccess := make(map[uint64]int) // line -> timestamp of latest access
	ft := newFenwick(1 << 12)
	t := 0
	var r Ref
	for s.Next(&r) {
		if !r.Kind.IsData() || r.Kind == Prefetch {
			continue
		}
		h.Total++
		line := r.VAddr & mask
		if t+1 >= len(ft.tree) {
			ft = ft.grow()
		}
		if prev, seen := lastAccess[line]; seen {
			// Distinct lines touched strictly after prev = marks in
			// (prev, t): each line's latest access is marked once.
			dist := ft.sum(t) - ft.sum(prev)
			h.bucket(dist)
			ft.add(prev, -1)
		} else {
			h.Cold++
		}
		ft.add(t, 1)
		lastAccess[line] = t
		t++
	}
	return h
}

func (h *DistanceHistogram) bucket(dist int) {
	i := 0
	for v := dist; v > 1; v >>= 1 {
		i++
	}
	if i >= len(h.Buckets) {
		i = len(h.Buckets) - 1
	}
	h.Buckets[i]++
}

// DistinctLines returns the number of distinct lines (the footprint).
func (h *DistanceHistogram) DistinctLines() uint64 { return h.Cold }
