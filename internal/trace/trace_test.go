package trace

import "testing"

func TestKindStrings(t *testing.T) {
	cases := map[Kind]string{
		Read:     "read",
		Write:    "write",
		Inst:     "inst",
		Prefetch: "prefetch",
		Kind(99): "Kind(99)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", k, got, want)
		}
	}
}

func TestIsData(t *testing.T) {
	if Inst.IsData() {
		t.Error("Inst reported as data")
	}
	for _, k := range []Kind{Read, Write, Prefetch} {
		if !k.IsData() {
			t.Errorf("%v should be data", k)
		}
	}
}

func TestSliceStream(t *testing.T) {
	s := &SliceStream{Refs: []Ref{{VAddr: 1}, {VAddr: 2}}}
	var r Ref
	if !s.Next(&r) || r.VAddr != 1 {
		t.Fatalf("first = %+v", r)
	}
	if !s.Next(&r) || r.VAddr != 2 {
		t.Fatalf("second = %+v", r)
	}
	if s.Next(&r) {
		t.Error("stream should be exhausted")
	}
	s.Reset()
	if !s.Next(&r) || r.VAddr != 1 {
		t.Error("Reset did not rewind")
	}
}

func TestEmpty(t *testing.T) {
	var r Ref
	if Empty.Next(&r) {
		t.Error("Empty yielded a ref")
	}
}

func TestConcat(t *testing.T) {
	a := &SliceStream{Refs: []Ref{{VAddr: 1}}}
	b := &SliceStream{Refs: []Ref{{VAddr: 2}, {VAddr: 3}}}
	c := Concat(a, Empty, b)
	var got []uint64
	var r Ref
	for c.Next(&r) {
		got = append(got, r.VAddr)
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("Concat order = %v", got)
	}
}

func TestCount(t *testing.T) {
	if got := Count(&SliceStream{Refs: make([]Ref, 7)}); got != 7 {
		t.Errorf("Count = %d, want 7", got)
	}
	if got := Count(Empty); got != 0 {
		t.Errorf("Count(Empty) = %d", got)
	}
}

func TestFuncStream(t *testing.T) {
	n := 0
	s := FuncStream(func(r *Ref) bool {
		if n >= 3 {
			return false
		}
		r.VAddr = uint64(n)
		n++
		return true
	})
	if got := Count(s); got != 3 {
		t.Errorf("FuncStream count = %d", got)
	}
}

func refs(addrs ...uint64) Stream {
	rs := make([]Ref, len(addrs))
	for i, a := range addrs {
		rs[i] = Ref{Kind: Read, VAddr: a, Size: 8}
	}
	return &SliceStream{Refs: rs}
}

func TestLineDistancesCold(t *testing.T) {
	h := LineDistances(refs(0, 64, 128), 64)
	if h.Cold != 3 || h.Total != 3 {
		t.Errorf("cold=%d total=%d, want 3/3", h.Cold, h.Total)
	}
	if h.DistinctLines() != 3 {
		t.Errorf("footprint = %d", h.DistinctLines())
	}
}

func TestLineDistancesImmediateReuse(t *testing.T) {
	// 0, 0: second access has distance 0 (no distinct lines between).
	h := LineDistances(refs(0, 8), 64) // same line
	if h.Cold != 1 {
		t.Fatalf("cold = %d", h.Cold)
	}
	if h.Buckets[0] != 1 {
		t.Errorf("distance-0 bucket = %d, want 1", h.Buckets[0])
	}
	// A 1-line cache captures the reuse: miss ratio = cold / total.
	if got := h.MissRatioAt(1); got != 0.5 {
		t.Errorf("MissRatioAt(1) = %v, want 0.5", got)
	}
}

func TestLineDistancesInterleaved(t *testing.T) {
	// A B A: A's reuse distance is 1 (B in between).
	h := LineDistances(refs(0, 64, 0), 64)
	if h.Buckets[1]+h.Buckets[0] != 1 {
		t.Errorf("buckets = %v, want one small-distance reuse", h.Buckets)
	}
	// Cache of 2 lines holds A across B: only the 2 cold misses remain.
	if got := h.MissRatioAt(4); got != 2.0/3.0 {
		t.Errorf("MissRatioAt(4) = %v, want 2/3", got)
	}
}

func TestLineDistancesCyclicSweep(t *testing.T) {
	// Sweep N lines repeatedly: reuse distance is always N-1 distinct
	// lines, so caches smaller than N miss everything and caches ≥ N hit
	// everything after the cold pass.
	const n = 64
	var addrs []uint64
	for pass := 0; pass < 3; pass++ {
		for i := 0; i < n; i++ {
			addrs = append(addrs, uint64(i*64))
		}
	}
	h := LineDistances(refs(addrs...), 64)
	if h.Cold != n {
		t.Fatalf("cold = %d, want %d", h.Cold, n)
	}
	if got := h.MissRatioAt(2 * n); got != float64(n)/float64(3*n) {
		t.Errorf("large cache miss ratio = %v, want cold-only %v", got, 1.0/3.0)
	}
	if got := h.MissRatioAt(2); got != 1.0 {
		t.Errorf("tiny cache miss ratio = %v, want 1.0", got)
	}
}

func TestLineDistancesGrowth(t *testing.T) {
	// Force several Fenwick growths and verify against a brute-force LRU
	// stack.
	var addrs []uint64
	for i := 0; i < 20000; i++ {
		addrs = append(addrs, uint64((i*7919)%512)*64)
	}
	h := LineDistances(refs(addrs...), 64)
	if h.Total != 20000 {
		t.Fatalf("total = %d", h.Total)
	}
	if h.Cold != 512 {
		t.Errorf("cold = %d, want 512 distinct lines", h.Cold)
	}
	// Every non-cold distance must be < 512.
	var beyond uint64
	for i, n := range h.Buckets {
		if 1<<uint(i) >= 1024 {
			beyond += n
		}
	}
	if beyond != 0 {
		t.Errorf("%d distances beyond the 512-line footprint", beyond)
	}
}

func TestLineDistancesSkipsNonData(t *testing.T) {
	s := &SliceStream{Refs: []Ref{
		{Kind: Inst, VAddr: 0},
		{Kind: Prefetch, VAddr: 64},
		{Kind: Read, VAddr: 128},
	}}
	h := LineDistances(s, 64)
	if h.Total != 1 {
		t.Errorf("total = %d, want 1 (inst and prefetch skipped)", h.Total)
	}
}
