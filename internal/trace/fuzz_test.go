package trace

import (
	"bytes"
	"testing"
)

// FuzzDecodeTrace throws arbitrary bytes at the binary-format decoder.
// The contract under fuzzing: never panic, never hang, and — because
// Stream has no error channel — anything Decode accepts must stream
// exactly the declared number of well-formed references per CPU and
// re-serialize to the byte-identical input (the format has no slack a
// fuzzer could hide malformed state in).
func FuzzDecodeTrace(f *testing.F) {
	// Seed corpus: the valid shapes plus near-miss corruptions of each.
	f.Add([]byte(Magic))
	f.Add(append([]byte(Magic), 1, 0, 0))
	f.Add(append([]byte(Magic), 2, 1, 2, 0x00, 0x00, 0, 0))
	f.Add(append([]byte(Magic), 1, 1, 4, 0x0f, 0x02, 0x10, 0x05))
	f.Add([]byte("CDPCTRC2\x01\x00\x00"))
	enc, err := NewEncoder(2)
	if err != nil {
		f.Fatal(err)
	}
	for cpu, refs := range [][]Ref{genRefs(11, 40), genRefs(13, 25)} {
		for _, r := range refs {
			if err := enc.Add(cpu, r); err != nil {
				f.Fatal(err)
			}
		}
	}
	f.Add(enc.File().AppendBinary(nil))

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := DecodeBytes(data)
		if err != nil {
			return
		}
		var r Ref
		total := uint64(0)
		for cpu := 0; cpu < tr.NumCPUs(); cpu++ {
			n := uint64(0)
			s := tr.Stream(cpu)
			for s.Next(&r) {
				if r.Kind > Prefetch {
					t.Fatalf("cpu %d: accepted trace streams unknown kind %d", cpu, r.Kind)
				}
				n++
			}
			if n != tr.Refs(cpu) {
				t.Fatalf("cpu %d: streamed %d refs, header declares %d", cpu, n, tr.Refs(cpu))
			}
			total += n
		}
		if total != tr.TotalRefs() {
			t.Fatalf("TotalRefs %d != summed %d", tr.TotalRefs(), total)
		}
		if !bytes.Equal(tr.AppendBinary(nil), data) {
			t.Fatal("accepted trace does not re-serialize to its input")
		}
	})
}
