// Package tlb models a per-CPU translation lookaside buffer with LRU
// replacement. TLB refills are charged as kernel time (the paper's kernel
// overhead is "primarily servicing TLB faults", §4.1), and software
// prefetches to unmapped pages are dropped rather than faulting (§6.2).
package tlb

import "container/list"

// TLB is a fully-associative, LRU translation buffer keyed by virtual
// page number.
type TLB struct {
	entries int
	index   map[uint64]*list.Element
	order   *list.List // front = MRU

	Lookups uint64
	Misses  uint64
}

// New creates a TLB with the given number of entries.
func New(entries int) *TLB {
	if entries <= 0 {
		panic("tlb: entries must be positive")
	}
	return &TLB{
		entries: entries,
		index:   make(map[uint64]*list.Element, entries),
		order:   list.New(),
	}
}

// Lookup touches vpn and reports whether a translation was present;
// on a miss the translation is installed (hardware refill semantics are
// charged by the caller).
func (t *TLB) Lookup(vpn uint64) bool {
	t.Lookups++
	if e, ok := t.index[vpn]; ok {
		t.order.MoveToFront(e)
		return true
	}
	t.Misses++
	if t.order.Len() >= t.entries {
		lru := t.order.Back()
		delete(t.index, lru.Value.(uint64))
		t.order.Remove(lru)
	}
	t.index[vpn] = t.order.PushFront(vpn)
	return false
}

// Probe reports whether vpn is mapped without refilling or touching LRU
// state; used to decide whether a prefetch is dropped.
func (t *TLB) Probe(vpn uint64) bool {
	_, ok := t.index[vpn]
	return ok
}

// Invalidate drops the translation for vpn if present (single-page
// shootdown during a recoloring).
func (t *TLB) Invalidate(vpn uint64) {
	if e, ok := t.index[vpn]; ok {
		delete(t.index, vpn)
		t.order.Remove(e)
	}
}

// Flush empties the TLB (context switch / recoloring).
func (t *TLB) Flush() {
	t.index = make(map[uint64]*list.Element, t.entries)
	t.order.Init()
}

// Len returns the number of resident translations.
func (t *TLB) Len() int { return t.order.Len() }

// MissRate returns misses/lookups.
func (t *TLB) MissRate() float64 {
	if t.Lookups == 0 {
		return 0
	}
	return float64(t.Misses) / float64(t.Lookups)
}
