package tlb

// TLB is a fully-associative, LRU translation buffer keyed by virtual
// page number. The LRU order lives in a fixed array-backed doubly linked
// list so that the simulator's per-reference lookup path allocates
// nothing: entries are preallocated slots recycled through a free list,
// exactly preserving true-LRU replacement order.
type TLB struct {
	entries int
	index   map[uint64]int // vpn -> slot
	slots   []slot
	head    int // MRU slot, -1 when empty
	tail    int // LRU slot, -1 when empty
	free    int // first free slot, -1 when full
	used    int

	Lookups uint64
	Misses  uint64
}

// slot is one translation in the intrusive LRU list.
type slot struct {
	vpn        uint64
	prev, next int // list neighbours (-1 = none); next chains the free list
}

// New creates a TLB with the given number of entries.
func New(entries int) *TLB {
	if entries <= 0 {
		panic("tlb: entries must be positive")
	}
	t := &TLB{
		entries: entries,
		index:   make(map[uint64]int, entries),
		slots:   make([]slot, entries),
	}
	t.reset()
	return t
}

// reset re-chains every slot onto the free list and empties the index.
func (t *TLB) reset() {
	for i := range t.slots {
		t.slots[i] = slot{prev: -1, next: i + 1}
	}
	t.slots[len(t.slots)-1].next = -1
	t.head, t.tail, t.free, t.used = -1, -1, 0, 0
}

// unlink removes slot i from the LRU list.
func (t *TLB) unlink(i int) {
	s := &t.slots[i]
	if s.prev >= 0 {
		t.slots[s.prev].next = s.next
	} else {
		t.head = s.next
	}
	if s.next >= 0 {
		t.slots[s.next].prev = s.prev
	} else {
		t.tail = s.prev
	}
}

// pushFront makes slot i the MRU entry.
func (t *TLB) pushFront(i int) {
	s := &t.slots[i]
	s.prev, s.next = -1, t.head
	if t.head >= 0 {
		t.slots[t.head].prev = i
	}
	t.head = i
	if t.tail < 0 {
		t.tail = i
	}
}

// Lookup touches vpn and reports whether a translation was present;
// on a miss the translation is installed (hardware refill semantics are
// charged by the caller).
func (t *TLB) Lookup(vpn uint64) bool {
	t.Lookups++
	// MRU fast path: a hit on the front entry needs no reordering and no
	// map probe — the common case for the simulator's page-local streams.
	if t.head >= 0 && t.slots[t.head].vpn == vpn {
		return true
	}
	if i, ok := t.index[vpn]; ok {
		if t.head != i {
			t.unlink(i)
			t.pushFront(i)
		}
		return true
	}
	t.Misses++
	var i int
	if t.free >= 0 {
		i = t.free
		t.free = t.slots[i].next
		t.used++
	} else {
		i = t.tail // evict LRU
		delete(t.index, t.slots[i].vpn)
		t.unlink(i)
	}
	t.slots[i].vpn = vpn
	t.pushFront(i)
	t.index[vpn] = i
	return false
}

// Probe reports whether vpn is mapped without refilling or touching LRU
// state; used to decide whether a prefetch is dropped.
func (t *TLB) Probe(vpn uint64) bool {
	_, ok := t.index[vpn]
	return ok
}

// Invalidate drops the translation for vpn if present (single-page
// shootdown during a recoloring).
func (t *TLB) Invalidate(vpn uint64) {
	if i, ok := t.index[vpn]; ok {
		delete(t.index, vpn)
		t.unlink(i)
		t.slots[i].next = t.free
		t.free = i
		t.used--
	}
}

// Flush empties the TLB (context switch / recoloring).
func (t *TLB) Flush() {
	clear(t.index)
	t.reset()
}

// Len returns the number of resident translations.
func (t *TLB) Len() int { return t.used }

// MissRate returns misses/lookups.
func (t *TLB) MissRate() float64 {
	if t.Lookups == 0 {
		return 0
	}
	return float64(t.Misses) / float64(t.Lookups)
}
