package tlb

import "testing"

func TestMissThenHit(t *testing.T) {
	tb := New(4)
	if tb.Lookup(10) {
		t.Error("cold lookup hit")
	}
	if !tb.Lookup(10) {
		t.Error("second lookup missed")
	}
	if tb.Lookups != 2 || tb.Misses != 1 {
		t.Errorf("counters %d/%d, want 2/1", tb.Misses, tb.Lookups)
	}
}

func TestLRUEviction(t *testing.T) {
	tb := New(2)
	tb.Lookup(1)
	tb.Lookup(2)
	tb.Lookup(1) // 2 becomes LRU
	tb.Lookup(3) // evicts 2
	if !tb.Probe(1) || tb.Probe(2) || !tb.Probe(3) {
		t.Errorf("resident set wrong: 1=%v 2=%v 3=%v", tb.Probe(1), tb.Probe(2), tb.Probe(3))
	}
}

func TestProbeDoesNotRefill(t *testing.T) {
	tb := New(4)
	if tb.Probe(7) {
		t.Error("probe of absent vpn returned true")
	}
	if tb.Len() != 0 {
		t.Error("probe installed a translation")
	}
	if tb.Misses != 0 {
		t.Error("probe counted as miss")
	}
}

func TestFlush(t *testing.T) {
	tb := New(4)
	tb.Lookup(1)
	tb.Lookup(2)
	tb.Flush()
	if tb.Len() != 0 {
		t.Error("flush left entries")
	}
	if tb.Lookup(1) {
		t.Error("hit after flush")
	}
}

func TestMissRate(t *testing.T) {
	tb := New(8)
	if tb.MissRate() != 0 {
		t.Error("empty TLB should report 0 miss rate")
	}
	tb.Lookup(1)
	tb.Lookup(1)
	tb.Lookup(1)
	tb.Lookup(2)
	if got := tb.MissRate(); got != 0.5 {
		t.Errorf("MissRate = %v, want 0.5", got)
	}
}

func TestCapacityBound(t *testing.T) {
	tb := New(16)
	for v := uint64(0); v < 100; v++ {
		tb.Lookup(v)
	}
	if tb.Len() != 16 {
		t.Errorf("Len = %d, want 16", tb.Len())
	}
	// The 16 most recent should be resident.
	for v := uint64(84); v < 100; v++ {
		if !tb.Probe(v) {
			t.Errorf("vpn %d should be resident", v)
		}
	}
}
