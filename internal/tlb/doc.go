// Package tlb models a per-CPU translation lookaside buffer with LRU
// replacement. TLB refills are charged as kernel time (the paper's kernel
// overhead is "primarily servicing TLB faults", §4.1), and software
// prefetches to unmapped pages are dropped rather than faulting (§6.2).
package tlb
