package bus

import (
	"testing"
	"testing/quick"
)

func TestUncontendedTransfer(t *testing.T) {
	b := New(3.0, 8) // base machine: 1.2 GB/s at 400 MHz
	done := b.Acquire(100, 128, Data)
	// 128 bytes at 3 B/cycle = ceil(42.67) = 43 cycles + 8 overhead.
	if want := uint64(100 + 8 + 43); done != want {
		t.Errorf("done = %d, want %d", done, want)
	}
	if b.AvgWait() != 0 {
		t.Errorf("unexpected queueing on idle bus: %v", b.AvgWait())
	}
}

func TestContentionQueues(t *testing.T) {
	b := New(4.0, 0)
	d1 := b.Acquire(0, 64, Data) // holds [0,16)
	d2 := b.Acquire(0, 64, Data) // must wait until 16
	if d1 != 16 || d2 != 32 {
		t.Errorf("done = %d,%d; want 16,32", d1, d2)
	}
	if b.AvgWait() != 8 { // (0 + 16) / 2
		t.Errorf("AvgWait = %v, want 8", b.AvgWait())
	}
}

func TestLateRequestDoesNotQueue(t *testing.T) {
	b := New(4.0, 0)
	b.Acquire(0, 64, Data)           // busy until 16
	done := b.Acquire(100, 64, Data) // bus long idle
	if done != 116 {
		t.Errorf("done = %d, want 116", done)
	}
}

func TestUpgradeHasNoDataCycles(t *testing.T) {
	b := New(4.0, 8)
	done := b.Acquire(0, 0, Upgrade)
	if done != 8 {
		t.Errorf("upgrade done = %d, want overhead only (8)", done)
	}
	if b.Occupancy(Upgrade) != 8 || b.Occupancy(Data) != 0 {
		t.Error("occupancy not attributed to Upgrade")
	}
}

func TestOccupancyCategories(t *testing.T) {
	b := New(4.0, 0)
	b.Acquire(0, 64, Data)
	b.Acquire(0, 64, Writeback)
	b.Acquire(0, 64, Writeback)
	if b.Occupancy(Data) != 16 || b.Occupancy(Writeback) != 32 {
		t.Errorf("occupancy data=%d wb=%d, want 16/32", b.Occupancy(Data), b.Occupancy(Writeback))
	}
	if b.Transactions(Writeback) != 2 {
		t.Errorf("writeback count = %d, want 2", b.Transactions(Writeback))
	}
	if b.TotalOccupied() != 48 {
		t.Errorf("total = %d, want 48", b.TotalOccupied())
	}
}

func TestUtilizationClamped(t *testing.T) {
	b := New(1.0, 0)
	b.Acquire(0, 100, Data)
	if u := b.Utilization(50); u != 1 {
		t.Errorf("utilization should clamp to 1, got %v", u)
	}
	if u := b.Utilization(200); u != 0.5 {
		t.Errorf("utilization = %v, want 0.5", u)
	}
	if u := b.Utilization(0); u != 0 {
		t.Errorf("zero horizon utilization = %v, want 0", u)
	}
}

func TestReset(t *testing.T) {
	b := New(4.0, 2)
	b.Acquire(0, 64, Data)
	b.Reset()
	if b.TotalOccupied() != 0 || b.AvgWait() != 0 {
		t.Error("Reset did not clear counters")
	}
	if done := b.Acquire(0, 0, Upgrade); done != 2 {
		t.Errorf("bus still busy after Reset: done=%d", done)
	}
}

func TestMonotonicCompletionProperty(t *testing.T) {
	// Back-to-back transactions complete in issue order and never overlap.
	f := func(sizes []uint8) bool {
		b := New(3.0, 4)
		var prev uint64
		for i, s := range sizes {
			done := b.Acquire(uint64(i), int(s), Data)
			if done <= prev {
				return false
			}
			prev = done
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCategoryString(t *testing.T) {
	if Data.String() != "data" || Writeback.String() != "writeback" || Upgrade.String() != "upgrade" {
		t.Error("unexpected Category strings")
	}
}
