package bus

import "fmt"

// Category classifies a bus transaction for occupancy accounting.
type Category uint8

const (
	// Data is a cache-line fetch (request + reply).
	Data Category = iota
	// Writeback is a dirty-line eviction transfer.
	Writeback
	// Upgrade is an ownership request with no data transfer.
	Upgrade

	numCategories
)

// String implements fmt.Stringer.
func (c Category) String() string {
	switch c {
	case Data:
		return "data"
	case Writeback:
		return "writeback"
	case Upgrade:
		return "upgrade"
	default:
		return fmt.Sprintf("Category(%d)", uint8(c))
	}
}

// Bus is the shared interconnect. It is a single busy-until resource:
// a transaction issued at time t starts at max(t, busyUntil) and occupies
// the bus for its transfer time.
type Bus struct {
	bytesPerCycle float64
	overhead      uint64 // fixed arbitration + address cycles per transaction

	busyUntil uint64

	occupied  [numCategories]uint64 // cycles the bus was held, per category
	count     [numCategories]uint64
	waitTotal uint64 // queueing cycles summed over transactions
}

// New creates a bus with the given bandwidth and per-transaction overhead.
func New(bytesPerCycle float64, overheadCycles int) *Bus {
	if bytesPerCycle <= 0 {
		panic("bus: bandwidth must be positive")
	}
	return &Bus{bytesPerCycle: bytesPerCycle, overhead: uint64(overheadCycles)}
}

// cyclesFor returns the occupancy of a transaction moving n bytes.
func (b *Bus) cyclesFor(bytes int) uint64 {
	data := uint64(0)
	if bytes > 0 {
		data = uint64((float64(bytes) + b.bytesPerCycle - 1) / b.bytesPerCycle)
	}
	return b.overhead + data
}

// HoldCycles returns how long a transaction of the given size occupies
// the bus; callers use it to separate queueing delay from transfer time.
func (b *Bus) HoldCycles(bytes int) uint64 { return b.cyclesFor(bytes) }

// Acquire issues a transaction at time now and returns the cycle at which
// it completes. Queueing delay (start - now) is included.
func (b *Bus) Acquire(now uint64, bytes int, cat Category) (done uint64) {
	start := now
	if b.busyUntil > start {
		start = b.busyUntil
	}
	b.waitTotal += start - now
	hold := b.cyclesFor(bytes)
	b.busyUntil = start + hold
	b.occupied[cat] += hold
	b.count[cat]++
	return b.busyUntil
}

// Occupancy reports the cycles the bus was held for cat.
func (b *Bus) Occupancy(cat Category) uint64 { return b.occupied[cat] }

// Transactions reports the number of transactions of cat.
func (b *Bus) Transactions(cat Category) uint64 { return b.count[cat] }

// TotalOccupied returns total held cycles across categories.
func (b *Bus) TotalOccupied() uint64 {
	var t uint64
	for _, o := range b.occupied {
		t += o
	}
	return t
}

// Utilization returns the fraction of [0, horizon) the bus was occupied.
func (b *Bus) Utilization(horizon uint64) float64 {
	if horizon == 0 {
		return 0
	}
	u := float64(b.TotalOccupied()) / float64(horizon)
	if u > 1 {
		u = 1
	}
	return u
}

// AvgWait returns the mean queueing delay per transaction in cycles.
func (b *Bus) AvgWait() float64 {
	var n uint64
	for _, c := range b.count {
		n += c
	}
	if n == 0 {
		return 0
	}
	return float64(b.waitTotal) / float64(n)
}

// Reset clears counters and the busy state (between measurement phases).
func (b *Bus) Reset() {
	b.busyUntil = 0
	b.waitTotal = 0
	for i := range b.occupied {
		b.occupied[i] = 0
		b.count[i] = 0
	}
}
