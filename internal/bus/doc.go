// Package bus models the shared split-transaction memory bus: finite
// bandwidth, FIFO arbitration, and occupancy accounting split into the
// three categories the paper's bus-utilization graph reports (data
// transfers, writebacks, and shared-to-exclusive upgrades). Contention
// lengthens observed miss latency, reproducing the §4.1 effect where
// tomcatv's MCPI more than doubles at 16 CPUs even as its miss rate falls.
package bus
