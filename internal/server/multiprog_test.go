package server

import (
	"net/http"
	"testing"
)

// multiReq co-schedules two tomcatv instances on a small machine.
func multiReq() JobRequest {
	return JobRequest{
		Workload:  "tomcatv",
		CPUs:      4,
		Scale:     64,
		Variant:   "cdpc",
		CoRunners: []CoRunnerRequest{{}},
	}
}

func TestMultiprocessJob(t *testing.T) {
	ts := newTestServer(t, Config{Workers: 2})
	var res JobResult
	if code := ts.do(t, "POST", "/v1/simulate", multiReq(), &res); code != http.StatusOK {
		t.Fatalf("multiprocess simulate: status %d (%+v)", code, res)
	}
	if res.Sched != "timeslice" {
		t.Errorf("sched %q, want timeslice", res.Sched)
	}
	if len(res.Processes) != 2 {
		t.Fatalf("%d per-process results, want 2", len(res.Processes))
	}
	if res.WallCycles == 0 {
		t.Error("multiprocess total produced no cycles")
	}
	var faults uint64
	for i, p := range res.Processes {
		if p.WallCycles == 0 {
			t.Errorf("process %d ran no cycles", i+1)
		}
		if len(p.Processes) != 0 {
			t.Errorf("process %d carries nested processes", i+1)
		}
		faults += p.PageFaults
	}
	if faults != res.PageFaults {
		t.Errorf("per-process faults %d != total %d", faults, res.PageFaults)
	}

	// A repeat of the same mix is served from the multiprocess memo.
	var again JobResult
	if code := ts.do(t, "POST", "/v1/simulate", multiReq(), &again); code != http.StatusOK {
		t.Fatalf("repeat: status %d", code)
	}
	if !again.Cached {
		t.Error("identical multiprocess mix not served from cache")
	}
	if again.WallCycles != res.WallCycles {
		t.Errorf("cached multiprocess result differs: %d vs %d cycles", again.WallCycles, res.WallCycles)
	}

	// A different discipline is a different cache entry, not a hit.
	part := multiReq()
	part.Sched = "partition"
	part.CPUs = 4
	var pres JobResult
	if code := ts.do(t, "POST", "/v1/simulate", part, &pres); code != http.StatusOK {
		t.Fatalf("partition: status %d", code)
	}
	if pres.Cached {
		t.Error("partition run claimed the timeslice cache entry")
	}
	if pres.Sched != "partition" {
		t.Errorf("sched %q, want partition", pres.Sched)
	}
}

func TestCoScheduleValidation(t *testing.T) {
	ts := newTestServer(t, Config{Workers: 1})
	co := []CoRunnerRequest{{}}
	cases := []struct {
		name     string
		req      JobRequest
		wantCode string
	}{
		{"sched without co-runners", JobRequest{Workload: "tomcatv", Sched: "timeslice"}, CodeBadCoSchedule},
		{"quantum without co-runners", JobRequest{Workload: "tomcatv", QuantumCycles: 1000}, CodeBadCoSchedule},
		{"custom program co-scheduled", JobRequest{Program: "program p\narray a elems=64\nphase m occurs=1\n  nest n parallel iters=4 inner=4 work=1 sched=even\n    load a outer=4\n", CoRunners: co}, CodeBadCoSchedule},
		{"too many processes", JobRequest{Workload: "tomcatv", CoRunners: make([]CoRunnerRequest, maxProcs)}, CodeBadCoSchedule},
		{"unknown discipline", JobRequest{Workload: "tomcatv", CoRunners: co, Sched: "gang"}, CodeBadCoSchedule},
		{"indivisible partition", JobRequest{Workload: "tomcatv", CPUs: 4, CoRunners: []CoRunnerRequest{{}, {}}, Sched: "partition"}, CodeBadCoSchedule},
		{"machine-wide primary variant", JobRequest{Workload: "tomcatv", Variant: "dynamic-recoloring", CoRunners: co}, CodeBadCoSchedule},
		{"machine-wide co-runner variant", JobRequest{Workload: "tomcatv", CoRunners: []CoRunnerRequest{{Variant: "coloring-touch"}}}, CodeBadCoSchedule},
		{"unknown co-runner variant", JobRequest{Workload: "tomcatv", CoRunners: []CoRunnerRequest{{Variant: "round-robin"}}}, CodeBadCoSchedule},
		{"unknown co-runner workload", JobRequest{Workload: "tomcatv", CoRunners: []CoRunnerRequest{{Workload: "linpack"}}}, CodeUnknownWorkload},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var er ErrorResponse
			code := ts.do(t, "POST", "/v1/jobs", tc.req, &er)
			if code != http.StatusBadRequest {
				t.Fatalf("status %d, want 400", code)
			}
			if er.Error.Code != tc.wantCode {
				t.Fatalf("code %q, want %q (%s)", er.Error.Code, tc.wantCode, er.Error.Message)
			}
		})
	}
}

// TestOutOfMemoryTyped drives the simulated machine out of physical
// frames (a 32MB sweep against the 8MB scale-64 machine) and requires
// the typed out_of_memory code instead of a generic failure.
func TestOutOfMemoryTyped(t *testing.T) {
	prog := `
program oomsweep
array big elems=4194304
phase main occurs=1
  nest sweep parallel iters=8192 inner=1 work=1 sched=even
    load big outer=512
`
	ts := newTestServer(t, Config{Workers: 1})
	req := JobRequest{Program: prog, CPUs: 1, Scale: 64}
	var er ErrorResponse
	code := ts.do(t, "POST", "/v1/simulate", req, &er)
	if code != http.StatusUnprocessableEntity {
		t.Fatalf("status %d, want 422 (%+v)", code, er)
	}
	if er.Error.Code != CodeOutOfMemory {
		t.Fatalf("code %q, want %q (%s)", er.Error.Code, CodeOutOfMemory, er.Error.Message)
	}
}
