package server

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/arch"
	"repro/internal/harness"
	"repro/internal/ir"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// This file defines the wire format of the cdpcd HTTP API: request and
// response JSON schemas, typed error codes, and request validation.
// API.md is the human-readable contract for everything here; the
// routes_test keeps the two in sync.

// JobRequest is the body of POST /v1/simulate and POST /v1/jobs. A
// request names either a bundled workload or carries a custom program
// in the text program format (see examples/progfile); the remaining
// fields select the machine and mapping policy exactly like the
// cdpcsim command-line flags of the same names.
type JobRequest struct {
	// Workload is a bundled SPEC95fp-analog name (GET /v1/workloads
	// lists them). Mutually exclusive with Program.
	Workload string `json:"workload,omitempty"`
	// Program is a custom workload in the text program format.
	// Program-carrying requests always simulate fresh (their IR is not
	// part of the memo key), so repeated custom jobs re-run.
	Program string `json:"program,omitempty"`
	// TraceID runs an uploaded binary reference trace (POST /v1/traces)
	// instead of a compiled workload. Mutually exclusive with Workload
	// and Program. Trace jobs support the placement-time variants only
	// (the cdpc variant substitutes the online access-pattern summarizer
	// for the compiler's color hints), always run full fidelity, and
	// cannot be co-scheduled or prefetched. Results are memo-cached by
	// the trace's content hash.
	TraceID string `json:"trace_id,omitempty"`
	// CPUs is the processor count (1–16); 0 means 8.
	CPUs int `json:"cpus,omitempty"`
	// Scale divides the paper's machine and data sizes; 0 means the
	// default 16. Accepted range 1–256.
	Scale int `json:"scale,omitempty"`
	// Machine is a preset: "base" (default) or "alpha".
	Machine string `json:"machine,omitempty"`
	// Topology reshapes the external cache hierarchy by name ("" or
	// "default" keeps the preset's single shared level; see MACHINES.md
	// for the shipped configurations). Applied after machine/scale
	// selection, exactly like the cdpcsim -topology flag.
	Topology string `json:"topology,omitempty"`
	// Variant is the page mapping configuration; "" means
	// "page-coloring".
	Variant string `json:"variant,omitempty"`
	// Prefetch enables compiler-inserted prefetching (§6.2).
	Prefetch bool `json:"prefetch,omitempty"`
	// Attr additionally collects per-color and per-page miss
	// attribution. Instrumented runs bypass the memo cache (the PR 2
	// rule: a cached result cannot have filled this run's collector),
	// so attr requests always cost a full simulation.
	Attr bool `json:"attr,omitempty"`
	// TimeoutMS caps this job's simulation time in milliseconds; 0 uses
	// the server default. Values above the server maximum are clamped.
	TimeoutMS int `json:"timeout_ms,omitempty"`

	// Fidelity selects the simulation mode: "full" (every reference
	// detail-simulated) or "sampled" (representative windows per loop
	// nest, functional warm-up, statistics extrapolated by phase weight —
	// ~10x faster, <2% MCPI error on the bundled workloads). Empty picks
	// the endpoint default: async jobs (POST /v1/jobs) run sampled when
	// the request is compatible, synchronous /v1/simulate runs full.
	// Attribution, co-scheduled and dynamic-recoloring requests cannot be
	// sampled; asking for "sampled" on one fails with bad_fidelity.
	Fidelity string `json:"fidelity,omitempty"`

	// CoRunners lists additional processes co-scheduled with the primary
	// workload on one multiprogrammed machine (all drawing frames from
	// the shared allocator). Each entry inherits unset fields from the
	// request, so `{}` co-runs a second instance of the same
	// workload/variant. Only bundled workloads can be co-scheduled.
	CoRunners []CoRunnerRequest `json:"co_runners,omitempty"`
	// Sched selects the space-sharing discipline for multiprocess jobs:
	// "timeslice" (default) or "partition". Requires co_runners.
	Sched string `json:"sched,omitempty"`
	// QuantumCycles overrides the time-slice length in cycles; 0 uses
	// the simulator default. Requires co_runners.
	QuantumCycles uint64 `json:"quantum_cycles,omitempty"`
	// Isolate color-partitions a multiprocess job: each isolation
	// domain allocates frames only from an exclusive page-color subset,
	// making cross-domain cache conflicts impossible (the result carries
	// isolated: true and cross_domain_conflicts: 0). Requires
	// co_runners.
	Isolate bool `json:"isolate,omitempty"`
	// IsolationDomain labels the primary process's isolation domain
	// under isolate: 0 (default) gives the process a domain of its own,
	// equal positive labels co-locate processes in one shared domain.
	// Requires isolate.
	IsolationDomain int `json:"isolation_domain,omitempty"`
}

// CoRunnerRequest describes one co-scheduled process of a multiprocess
// job. Empty fields inherit from the primary request — except
// isolation_domain, which is an identity, not a configuration default,
// and is never inherited.
type CoRunnerRequest struct {
	Workload string `json:"workload,omitempty"`
	Variant  string `json:"variant,omitempty"`
	// IsolationDomain labels this process's isolation domain under
	// isolate (same semantics as the primary's field).
	IsolationDomain int `json:"isolation_domain,omitempty"`
}

// JobState is the lifecycle state of a submitted job.
type JobState string

// The job lifecycle: Queued → Running → one of Done / Failed /
// Canceled. Sync jobs pass through the same states.
const (
	StateQueued   JobState = "queued"
	StateRunning  JobState = "running"
	StateDone     JobState = "done"
	StateFailed   JobState = "failed"
	StateCanceled JobState = "canceled"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// JobStatus is the body of GET /v1/jobs/{id} (and the 202 response of
// POST /v1/jobs, with only ID/State/Submitted populated).
type JobStatus struct {
	ID        string      `json:"id"`
	State     JobState    `json:"state"`
	Request   *JobRequest `json:"request,omitempty"`
	Submitted time.Time   `json:"submitted"`
	Started   *time.Time  `json:"started,omitempty"`
	Finished  *time.Time  `json:"finished,omitempty"`
	Result    *JobResult  `json:"result,omitempty"`
	Error     *ErrorInfo  `json:"error,omitempty"`
}

// JobList is the body of GET /v1/jobs.
type JobList struct {
	Jobs []JobStatus `json:"jobs"`
}

// JobResult is the simulation outcome: the paper's headline statistics
// plus optional attribution. It is a summary of sim.Result, not a dump
// — per-CPU breakdowns stay behind the library API.
type JobResult struct {
	Workload string `json:"workload"`
	Machine  string `json:"machine"`
	Policy   string `json:"policy"`
	CPUs     int    `json:"cpus"`

	WallCycles     uint64  `json:"wall_cycles"`
	CombinedCycles uint64  `json:"combined_cycles"`
	MCPI           float64 `json:"mcpi"`
	BusUtilization float64 `json:"bus_utilization"`

	L2Misses       uint64 `json:"l2_misses"`
	ColdMisses     uint64 `json:"cold_misses"`
	ConflictMisses uint64 `json:"conflict_misses"`
	CapacityMisses uint64 `json:"capacity_misses"`
	SharingMisses  uint64 `json:"sharing_misses"`

	PageFaults   uint64 `json:"page_faults"`
	HintedFaults uint64 `json:"hinted_faults"`
	HonoredHints uint64 `json:"honored_hints"`

	// CrossDomainConflicts counts data misses that evicted a line owned
	// by another isolation domain (unpartitioned: another process) —
	// exactly zero when Isolated. Omitted on single-process jobs.
	CrossDomainConflicts uint64 `json:"cross_domain_conflicts,omitempty"`
	// Isolated reports that the job ran color-partitioned (isolate was
	// set and the allocator assigned per-domain color subsets).
	Isolated bool `json:"isolated,omitempty"`

	// Fidelity reports how the result was produced: "full" or "sampled"
	// (see JobRequest.Fidelity). A request that asked for sampled
	// execution but ran an incompatible spec would have been rejected at
	// validation, so this always reflects the effective mode.
	Fidelity string `json:"fidelity"`

	// Cached reports that this result was served from the scheduler's
	// memo cache rather than a fresh simulation.
	Cached bool `json:"cached"`
	// SimMS is the wall time the request spent simulating (≈0 when
	// Cached).
	SimMS float64 `json:"sim_ms"`

	// Sched is the space-sharing discipline of a multiprocess job
	// ("timeslice" or "partition"); empty on single-process jobs.
	Sched string `json:"sched,omitempty"`
	// Processes carries the per-process results of a multiprocess job in
	// process-table order (the top-level fields then describe the
	// machine total); empty on single-process jobs.
	Processes []JobResult `json:"processes,omitempty"`

	// Attribution is present when the request set attr.
	Attribution *Attribution `json:"attribution,omitempty"`
}

// Attribution is the obs-collector summary attached to attr requests.
type Attribution struct {
	// PerColorMisses is the total external-cache misses attributed to
	// each page color.
	PerColorMisses []uint64 `json:"per_color_misses"`
	// TopPages lists the hottest pages by miss count.
	TopPages []PageAttr `json:"top_pages"`
}

// PageAttr is one page's attribution record.
type PageAttr struct {
	// PID is the owning process of a multiprocess job's page (1-based
	// process-table order); 0 on single-process jobs.
	PID         int    `json:"pid,omitempty"`
	VPN         uint64 `json:"vpn"`
	Color       int    `json:"color"`
	Misses      uint64 `json:"misses"`
	Conflict    uint64 `json:"conflict_misses"`
	StallCycles uint64 `json:"stall_cycles"`
}

// ErrorInfo is the typed error payload carried inside ErrorResponse
// and inside failed jobs' status.
type ErrorInfo struct {
	// Code is a stable machine-readable identifier (see API.md for the
	// full table).
	Code string `json:"code"`
	// Message is human-readable detail.
	Message string `json:"message"`
	// Field names the offending request field for validation errors.
	Field string `json:"field,omitempty"`
	// RetryAfterSec accompanies queue_full / shutting_down responses
	// and mirrors the Retry-After header.
	RetryAfterSec int `json:"retry_after_sec,omitempty"`
}

// ErrorResponse is the body of every non-2xx response.
type ErrorResponse struct {
	Error ErrorInfo `json:"error"`
}

// The error codes the API returns. Every non-2xx body carries exactly
// one of these in error.code.
const (
	CodeInvalidRequest  = "invalid_request"  // 400: malformed JSON or out-of-range field
	CodeUnknownWorkload = "unknown_workload" // 400: workload not in the registry
	CodeBadProgram      = "bad_program"      // 400: custom program failed to parse or validate
	CodeNotFound        = "not_found"        // 404: no such job (or route)
	CodeQueueFull       = "queue_full"       // 429: bounded queue at capacity
	CodeShuttingDown    = "shutting_down"    // 503: server draining, not accepting work
	CodeTimeout         = "timeout"          // job exceeded its deadline (job error, or 504 on sync)
	CodeCanceled        = "canceled"         // job canceled by DELETE or client disconnect
	CodeSimFailed       = "sim_failed"       // simulation returned an error
	CodeBadCoSchedule   = "bad_coschedule"   // 400: invalid co-runner list or scheduling discipline
	CodeBadIsolation    = "bad_isolation"    // 400: isolation fields on a non-co-scheduled job, or out-of-range isolation_domain
	CodeBadFidelity     = "bad_fidelity"     // 400: unknown fidelity, or sampled requested for an incompatible spec
	CodeBadTopology     = "bad_topology"     // 400: unknown cache topology name
	CodeBadTrace        = "bad_trace"        // 400: uploaded bytes are not a valid binary trace
	CodeTraceTooLarge   = "trace_too_large"  // 413: uploaded trace exceeds the size limit
	CodeUnknownTrace    = "unknown_trace"    // 400: trace_id not in the store (never uploaded, or evicted)
	CodeOutOfMemory     = "out_of_memory"    // simulated machine ran out of physical frames (job error)
	CodeInternal        = "internal"         // 500: handler panic or unexpected failure
)

// WorkloadsResponse is the body of GET /v1/workloads: everything a
// client needs to construct a valid JobRequest.
type WorkloadsResponse struct {
	Workloads  []WorkloadInfo `json:"workloads"`
	Variants   []string       `json:"variants"`
	Machines   []string       `json:"machines"`
	Topologies []string       `json:"topologies"`
}

// WorkloadInfo describes one bundled workload.
type WorkloadInfo struct {
	Name        string  `json:"name"`
	Description string  `json:"description"`
	PaperDataMB float64 `json:"paper_data_mb"`
}

// maxScale bounds the accepted scale divisor; beyond this the scaled
// machine degenerates (fewer colors than CPUs).
const maxScale = 256

// maxCPUs mirrors the simulator's supported processor range.
const maxCPUs = 16

// validate checks a JobRequest and resolves it into a harness.Spec
// (and a parsed program for custom requests). Validation is strict so
// that queue slots are never wasted on requests that cannot run.
func (req *JobRequest) validate() (harness.Spec, *ir.Program, *ErrorInfo) {
	var spec harness.Spec
	nsources := 0
	for _, set := range []bool{req.Workload != "", req.Program != "", req.TraceID != ""} {
		if set {
			nsources++
		}
	}
	if nsources == 0 {
		return spec, nil, &ErrorInfo{Code: CodeInvalidRequest, Field: "workload",
			Message: "one of workload, program or trace_id is required"}
	}
	if nsources > 1 {
		return spec, nil, &ErrorInfo{Code: CodeInvalidRequest, Field: "workload",
			Message: "workload, program and trace_id are mutually exclusive"}
	}
	if req.TraceID != "" {
		if errInfo := req.validateTrace(); errInfo != nil {
			return spec, nil, errInfo
		}
	}
	if req.CPUs < 0 || req.CPUs > maxCPUs {
		return spec, nil, &ErrorInfo{Code: CodeInvalidRequest, Field: "cpus",
			Message: fmt.Sprintf("cpus must be 1-%d (or 0 for the default 8)", maxCPUs)}
	}
	if req.Scale < 0 || req.Scale > maxScale {
		return spec, nil, &ErrorInfo{Code: CodeInvalidRequest, Field: "scale",
			Message: fmt.Sprintf("scale must be 1-%d (or 0 for the default %d)", maxScale, workloads.DefaultScale)}
	}
	if req.TimeoutMS < 0 {
		return spec, nil, &ErrorInfo{Code: CodeInvalidRequest, Field: "timeout_ms",
			Message: "timeout_ms must be >= 0"}
	}
	switch req.Machine {
	case "", string(harness.BaseMachine), string(harness.AlphaMachine):
	default:
		return spec, nil, &ErrorInfo{Code: CodeInvalidRequest, Field: "machine",
			Message: fmt.Sprintf("unknown machine %q (base, alpha)", req.Machine)}
	}
	if !arch.KnownTopology(req.Topology) {
		return spec, nil, &ErrorInfo{Code: CodeBadTopology, Field: "topology",
			Message: fmt.Sprintf("unknown topology %q (have %s)", req.Topology, strings.Join(arch.TopologyNames(), ", "))}
	}
	if req.Variant != "" {
		ok := false
		for _, v := range harness.Variants() {
			if harness.Variant(req.Variant) == v {
				ok = true
				break
			}
		}
		if !ok {
			return spec, nil, &ErrorInfo{Code: CodeInvalidRequest, Field: "variant",
				Message: fmt.Sprintf("unknown variant %q", req.Variant)}
		}
	}

	var prog *ir.Program
	if req.Program != "" {
		p, err := ir.ParseString(req.Program)
		if err != nil {
			return spec, nil, &ErrorInfo{Code: CodeBadProgram, Field: "program", Message: err.Error()}
		}
		prog = p
	} else if req.Workload != "" {
		if _, err := workloads.ByName(req.Workload); err != nil {
			return spec, nil, &ErrorInfo{Code: CodeUnknownWorkload, Field: "workload", Message: err.Error()}
		}
	}

	cpus := req.CPUs
	if cpus == 0 && req.TraceID == "" {
		// Trace jobs leave 0: the width defaults to the trace's own CPU
		// count once the id resolves (admit checks it fits the machine).
		cpus = 8
	}
	spec = harness.Spec{
		Workload: req.Workload,
		Scale:    req.Scale,
		CPUs:     cpus,
		Machine:  harness.MachineKind(req.Machine),
		Topology: req.Topology,
		Variant:  harness.Variant(req.Variant),
		Prefetch: req.Prefetch,
	}
	if errInfo := req.validateCoSchedule(cpus); errInfo != nil {
		return spec, nil, errInfo
	}
	if errInfo := req.validateIsolation(); errInfo != nil {
		return spec, nil, errInfo
	}
	switch req.Fidelity {
	case "", string(sim.FidelityFull):
	case string(sim.FidelitySampled):
		switch {
		case req.Attr:
			return spec, nil, &ErrorInfo{Code: CodeBadFidelity, Field: "fidelity",
				Message: "attribution requires the full reference trace; sampled runs cannot attr"}
		case len(req.CoRunners) > 0:
			return spec, nil, &ErrorInfo{Code: CodeBadFidelity, Field: "fidelity",
				Message: "co-scheduled jobs cannot be sampled"}
		case req.Variant == string(harness.DynamicRecoloring):
			return spec, nil, &ErrorInfo{Code: CodeBadFidelity, Field: "fidelity",
				Message: "dynamic recoloring reacts to per-page miss counts and cannot be sampled"}
		}
		spec.Sampled = true
	default:
		return spec, nil, &ErrorInfo{Code: CodeBadFidelity, Field: "fidelity",
			Message: fmt.Sprintf("unknown fidelity %q (full, sampled)", req.Fidelity)}
	}
	for _, cr := range req.CoRunners {
		spec.CoRunners = append(spec.CoRunners, harness.CoRunner{
			Workload: cr.Workload,
			Variant:  harness.Variant(cr.Variant),
			Domain:   cr.IsolationDomain,
		})
	}
	spec.Sched = harness.SchedKind(req.Sched)
	spec.Quantum = req.QuantumCycles
	spec.Isolate = req.Isolate
	spec.Domain = req.IsolationDomain
	return spec, prog, nil
}

// validateTrace checks the fields a trace-backed job cannot carry: a
// recorded reference stream has no compiler pipeline (no prefetch
// insertion, no layout/touch-order variants), no phase structure to
// sample, and no process to co-schedule. Store membership of the id is
// checked at admission, not here.
func (req *JobRequest) validateTrace() *ErrorInfo {
	if len(req.CoRunners) > 0 {
		return &ErrorInfo{Code: CodeBadCoSchedule, Field: "co_runners",
			Message: "trace jobs cannot be co-scheduled"}
	}
	if req.Prefetch {
		return &ErrorInfo{Code: CodeInvalidRequest, Field: "prefetch",
			Message: "prefetch insertion needs a compiled program; traces record their reference stream"}
	}
	if req.Fidelity == string(sim.FidelitySampled) {
		return &ErrorInfo{Code: CodeBadFidelity, Field: "fidelity",
			Message: "trace jobs have no phase structure to sample; use full"}
	}
	if req.Variant != "" && !harness.CanTraceVariant(harness.Variant(req.Variant)) {
		return &ErrorInfo{Code: CodeInvalidRequest, Field: "variant",
			Message: fmt.Sprintf("variant %q needs compiler layout or touch-order output and cannot run a trace", req.Variant)}
	}
	return nil
}

// maxProcs bounds the process table of a multiprocess job; beyond the
// paper-motivated 2- and 4-way mixes an 8-way mix already saturates the
// time-slice scheduler's interference effects.
const maxProcs = 8

// validateCoSchedule checks the multiprocess fields of a request
// against the space-sharing scheduler's constraints. All violations
// carry CodeBadCoSchedule (except an unknown co-runner workload, which
// keeps CodeUnknownWorkload for consistency with the primary field).
func (req *JobRequest) validateCoSchedule(cpus int) *ErrorInfo {
	if len(req.CoRunners) == 0 {
		if req.Sched != "" || req.QuantumCycles > 0 {
			return &ErrorInfo{Code: CodeBadCoSchedule, Field: "sched",
				Message: "sched and quantum_cycles require co_runners"}
		}
		return nil
	}
	if req.Program != "" {
		return &ErrorInfo{Code: CodeBadCoSchedule, Field: "co_runners",
			Message: "custom programs cannot be co-scheduled; use bundled workloads"}
	}
	nprocs := 1 + len(req.CoRunners)
	if nprocs > maxProcs {
		return &ErrorInfo{Code: CodeBadCoSchedule, Field: "co_runners",
			Message: fmt.Sprintf("%d processes exceed the %d-process limit", nprocs, maxProcs)}
	}
	switch req.Sched {
	case "", string(harness.SchedTimeSlice):
	case string(harness.SchedPartition):
		if nprocs > cpus || cpus%nprocs != 0 {
			return &ErrorInfo{Code: CodeBadCoSchedule, Field: "sched",
				Message: fmt.Sprintf("partition scheduling needs %d cpus divisible into %d equal blocks", cpus, nprocs)}
		}
	default:
		return &ErrorInfo{Code: CodeBadCoSchedule, Field: "sched",
			Message: fmt.Sprintf("unknown scheduling discipline %q (timeslice, partition)", req.Sched)}
	}
	if req.Variant != "" && !harness.CanCoSchedule(harness.Variant(req.Variant)) {
		return &ErrorInfo{Code: CodeBadCoSchedule, Field: "variant",
			Message: fmt.Sprintf("variant %q needs machine-wide state and cannot be co-scheduled", req.Variant)}
	}
	for i, cr := range req.CoRunners {
		field := fmt.Sprintf("co_runners[%d]", i)
		if cr.Variant != "" {
			known := false
			for _, v := range harness.Variants() {
				if harness.Variant(cr.Variant) == v {
					known = true
					break
				}
			}
			if !known {
				return &ErrorInfo{Code: CodeBadCoSchedule, Field: field + ".variant",
					Message: fmt.Sprintf("unknown variant %q", cr.Variant)}
			}
			if !harness.CanCoSchedule(harness.Variant(cr.Variant)) {
				return &ErrorInfo{Code: CodeBadCoSchedule, Field: field + ".variant",
					Message: fmt.Sprintf("variant %q needs machine-wide state and cannot be co-scheduled", cr.Variant)}
			}
		}
		if cr.Workload != "" {
			if _, err := workloads.ByName(cr.Workload); err != nil {
				return &ErrorInfo{Code: CodeUnknownWorkload, Field: field + ".workload",
					Message: err.Error()}
			}
		}
	}
	return nil
}

// validateIsolation checks the color-partitioning fields. All
// violations carry CodeBadIsolation: isolation is a property of a
// co-scheduled mix, so the fields are meaningless (and rejected, never
// silently ignored) on single-process jobs, and domain labels are
// bounded by the process count — with nprocs processes there can be no
// more than nprocs distinct domains, so larger labels are always typos.
func (req *JobRequest) validateIsolation() *ErrorInfo {
	nprocs := 1 + len(req.CoRunners)
	if len(req.CoRunners) == 0 && (req.Isolate || req.IsolationDomain != 0) {
		return &ErrorInfo{Code: CodeBadIsolation, Field: "isolate",
			Message: "isolate and isolation_domain require co_runners"}
	}
	if !req.Isolate {
		if req.IsolationDomain != 0 {
			return &ErrorInfo{Code: CodeBadIsolation, Field: "isolation_domain",
				Message: "isolation_domain requires isolate"}
		}
		for i, cr := range req.CoRunners {
			if cr.IsolationDomain != 0 {
				return &ErrorInfo{Code: CodeBadIsolation,
					Field:   fmt.Sprintf("co_runners[%d].isolation_domain", i),
					Message: "isolation_domain requires isolate"}
			}
		}
		return nil
	}
	if req.IsolationDomain < 0 || req.IsolationDomain > nprocs {
		return &ErrorInfo{Code: CodeBadIsolation, Field: "isolation_domain",
			Message: fmt.Sprintf("isolation_domain %d out of range [0, %d]", req.IsolationDomain, nprocs)}
	}
	for i, cr := range req.CoRunners {
		if cr.IsolationDomain < 0 || cr.IsolationDomain > nprocs {
			return &ErrorInfo{Code: CodeBadIsolation,
				Field:   fmt.Sprintf("co_runners[%d].isolation_domain", i),
				Message: fmt.Sprintf("isolation_domain %d out of range [0, %d]", cr.IsolationDomain, nprocs)}
		}
	}
	return nil
}

// summarizeMulti converts a multiprocess result into the wire
// JobResult: the machine total at the top level, the per-process
// summaries (in process-table order) under processes.
func summarizeMulti(mr *sim.MultiResult, cached bool, simTime time.Duration) *JobResult {
	out := summarize(mr.Total, cached, simTime)
	out.Sched = mr.Sched
	for _, r := range mr.PerProcess {
		p := summarize(r, cached, 0)
		out.Processes = append(out.Processes, *p)
	}
	return out
}

// summarize converts a sim.Result into the wire JobResult.
func summarize(res *sim.Result, cached bool, simTime time.Duration) *JobResult {
	return &JobResult{
		Workload:       res.Workload,
		Machine:        res.Machine,
		Policy:         res.Policy,
		CPUs:           res.NumCPUs,
		WallCycles:     res.WallCycles,
		CombinedCycles: res.CombinedCycles(),
		MCPI:           res.MCPI(),
		BusUtilization: res.BusUtilization(),
		L2Misses:       res.Total(func(s *sim.CPUStats) uint64 { return s.L2Misses }),
		ColdMisses:     res.Total(func(s *sim.CPUStats) uint64 { return s.ColdMisses }),
		ConflictMisses: res.Total(func(s *sim.CPUStats) uint64 { return s.ConflictMisses }),
		CapacityMisses: res.Total(func(s *sim.CPUStats) uint64 { return s.CapacityMisses }),
		SharingMisses: res.Total(func(s *sim.CPUStats) uint64 {
			return s.TrueShareMisses + s.FalseShareMisses
		}),
		PageFaults:   res.PageFaults,
		HintedFaults: res.HintedFaults,
		HonoredHints: res.HonoredHints,
		CrossDomainConflicts: res.Total(func(s *sim.CPUStats) uint64 {
			return s.CrossDomainConflicts
		}),
		Isolated: res.Isolated,
		Fidelity: res.Fidelity,
		Cached:   cached,
		SimMS:    float64(simTime.Microseconds()) / 1000,
	}
}
