package server

import (
	"fmt"
	"net/http"
	"runtime/debug"
	"time"
)

// instrument wraps a handler with the per-endpoint observability the
// /metrics endpoint exports: request counters labeled by route and
// status code, a latency histogram per route, and panic recovery that
// turns a handler crash into a typed 500 instead of a dropped
// connection.
func (s *Server) instrument(pattern string, next http.HandlerFunc) http.Handler {
	hist := s.reg.Histogram(
		fmt.Sprintf("cdpcd_http_request_seconds{route=%q}", pattern),
		"request latency by route", nil)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		defer func() {
			if p := recover(); p != nil {
				s.logf("panic in %s: %v\n%s", pattern, p, debug.Stack())
				if !rec.wrote {
					writeError(rec, http.StatusInternalServerError, ErrorInfo{
						Code: CodeInternal, Message: fmt.Sprint(p)})
				}
			}
			s.reg.Counter(
				fmt.Sprintf("cdpcd_http_requests_total{route=%q,code=\"%d\"}", pattern, rec.code),
				"requests by route and status code").Inc()
			hist.Observe(time.Since(start))
		}()
		next(rec, r)
	})
}

// statusRecorder captures the response code for the request counter.
type statusRecorder struct {
	http.ResponseWriter
	code  int
	wrote bool
}

// WriteHeader records the status code.
func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.wrote = true
	r.ResponseWriter.WriteHeader(code)
}

// Write marks the response started.
func (r *statusRecorder) Write(b []byte) (int, error) {
	r.wrote = true
	return r.ResponseWriter.Write(b)
}
