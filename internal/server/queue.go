package server

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/harness"
	"repro/internal/memory"
	"repro/internal/obs"
	"repro/internal/sim"
)

// queue is the bounded admission queue plus the worker pool that
// drains it. Backpressure is explicit and newest-first: an arriving
// job that finds the buffer full is rejected with errQueueFull (the
// handler turns that into 429 + Retry-After) — accepted jobs are never
// dropped. Shutdown closes admission first, then lets the workers
// drain everything already accepted.
type queue struct {
	ch      chan *job
	sched   *harness.Scheduler
	baseCtx context.Context // canceled when the drain deadline expires

	mu     sync.Mutex
	closed bool // guarded by mu

	wg       sync.WaitGroup
	inFlight atomic.Int64

	// metrics
	depth     atomic.Int64
	accepted  *obs.Counter
	rejected  *obs.Counter
	completed *obs.Counter
	failed    *obs.Counter
	canceled  *obs.Counter
	simTime   *obs.Histogram
}

// errQueueFull reports that the bounded queue is at capacity.
var errQueueFull = errors.New("server: queue full")

// errShuttingDown reports that admission is closed.
var errShuttingDown = errors.New("server: shutting down")

// newQueue creates the queue and starts workers goroutines draining it.
func newQueue(baseCtx context.Context, sched *harness.Scheduler, capacity, workers int, reg *obs.Registry) *queue {
	q := &queue{
		ch:        make(chan *job, capacity),
		sched:     sched,
		baseCtx:   baseCtx,
		accepted:  reg.Counter("cdpcd_jobs_accepted_total", "jobs admitted to the queue"),
		rejected:  reg.Counter("cdpcd_jobs_rejected_total", "submissions rejected with 429 (queue full)"),
		completed: reg.Counter("cdpcd_jobs_completed_total", "jobs finished successfully"),
		failed:    reg.Counter("cdpcd_jobs_failed_total", "jobs finished with an error"),
		canceled:  reg.Counter("cdpcd_jobs_canceled_total", "jobs canceled or timed out"),
		simTime:   reg.Histogram("cdpcd_simulation_seconds", "wall time per executed simulation", nil),
	}
	reg.Gauge("cdpcd_queue_depth", "jobs waiting in the bounded queue", func() float64 {
		return float64(q.depth.Load())
	})
	reg.Gauge("cdpcd_jobs_in_flight", "jobs currently executing", func() float64 {
		return float64(q.inFlight.Load())
	})
	reg.Gauge("cdpcd_queue_capacity", "bounded queue capacity", func() float64 {
		return float64(capacity)
	})
	reg.Gauge("cdpcd_workers", "worker pool size", func() float64 {
		return float64(workers)
	})
	for i := 0; i < workers; i++ {
		q.wg.Add(1)
		go q.worker()
	}
	return q
}

// submit admits a job or rejects it without blocking. The admission
// check and the channel send happen under the lock so a concurrent
// close cannot strand a job in a closed channel.
func (q *queue) submit(j *job) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return errShuttingDown
	}
	select {
	case q.ch <- j:
		q.depth.Add(1)
		q.accepted.Inc()
		return nil
	default:
		q.rejected.Inc()
		return errQueueFull
	}
}

// close stops admission. Jobs already accepted keep draining.
func (q *queue) close() {
	q.mu.Lock()
	if !q.closed {
		q.closed = true
		close(q.ch)
	}
	q.mu.Unlock()
}

// wait blocks until every accepted job has finished, or ctx expires.
// It returns nil on a complete drain.
func (q *queue) wait(ctx context.Context) error {
	done := make(chan struct{})
	go func() {
		q.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// worker drains the queue until it is closed and empty.
func (q *queue) worker() {
	defer q.wg.Done()
	for j := range q.ch {
		q.depth.Add(-1)
		q.runJob(j)
	}
}

// runJob executes one job end to end: per-job timeout, cancellation,
// memo-cached simulation, result summarization and terminal-state
// accounting.
func (q *queue) runJob(j *job) {
	ctx, cancel := context.WithCancel(q.baseCtx)
	if j.timeout > 0 {
		ctx, cancel = context.WithTimeout(q.baseCtx, j.timeout)
	}
	defer cancel()

	if !j.markRunning(cancel) {
		// Canceled while queued; requestCancel already finished it.
		q.canceled.Inc()
		return
	}
	q.inFlight.Add(1)
	defer q.inFlight.Add(-1)

	spec := j.spec
	var collector *obs.Collector
	if j.req.Attr {
		collector = obs.NewCollector(obs.Options{})
		spec.Obs = collector
	}

	// The memo cache only serves spec-keyed bundled workloads; custom
	// programs and instrumented runs always simulate fresh. Multiprocess
	// jobs have their own memo keyed on the co-runner mix.
	multi := len(spec.CoRunners) > 0
	var cached bool
	if multi {
		cached = !j.req.Attr && q.sched.HasMultiResult(spec)
	} else {
		cached = j.prog == nil && !j.req.Attr && q.sched.HasResult(spec)
	}
	start := time.Now()
	var res *sim.Result
	var mres *sim.MultiResult
	var err error
	switch {
	case multi:
		mres, err = q.sched.RunMultiCtx(ctx, spec)
	case j.prog != nil:
		res, err = harness.RunProgramCtx(ctx, j.prog, spec)
	default:
		res, err = q.sched.RunCtx(ctx, spec)
	}
	simTime := time.Since(start)

	if err != nil {
		q.finishErr(j, err)
		return
	}
	q.simTime.Observe(simTime)
	var out *JobResult
	if multi {
		out = summarizeMulti(mres, cached, simTime)
	} else {
		out = summarize(res, cached, simTime)
	}
	if collector != nil {
		out.Attribution = attributionOf(collector)
	}
	j.finish(StateDone, out, nil)
	q.completed.Inc()
}

// finishErr maps a simulation error to the job's terminal state:
// deadline → timeout, cancellation → canceled, frame exhaustion →
// failed with the typed out_of_memory code, anything else → failed.
func (q *queue) finishErr(j *job, err error) {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		j.finish(StateCanceled, nil, &ErrorInfo{Code: CodeTimeout,
			Message: "job exceeded its deadline: " + err.Error()})
		q.canceled.Inc()
	case errors.Is(err, context.Canceled):
		j.finish(StateCanceled, nil, &ErrorInfo{Code: CodeCanceled, Message: err.Error()})
		q.canceled.Inc()
	case errors.Is(err, memory.ErrOutOfMemory):
		j.finish(StateFailed, nil, &ErrorInfo{Code: CodeOutOfMemory,
			Message: "simulated machine ran out of physical frames: " + err.Error()})
		q.failed.Inc()
	default:
		j.finish(StateFailed, nil, &ErrorInfo{Code: CodeSimFailed, Message: err.Error()})
		q.failed.Inc()
	}
}

// attributionOf summarizes an obs collector for the wire.
func attributionOf(c *obs.Collector) *Attribution {
	per := c.PerColor()
	a := &Attribution{PerColorMisses: make([]uint64, len(per))}
	for i := range per {
		a.PerColorMisses[i] = per[i].Total()
	}
	for _, p := range c.TopPages(topPagesN) {
		a.TopPages = append(a.TopPages, PageAttr{
			PID:         p.PID,
			VPN:         p.VPN,
			Color:       p.Color,
			Misses:      p.Misses.Total(),
			Conflict:    p.Misses[obs.Conflict],
			StallCycles: p.StallCycles,
		})
	}
	return a
}

// topPagesN is how many hottest pages an attr result carries.
const topPagesN = 10
